// Reproduces the in-text claim of Sec. III-D: "Evaluation of the quantized
// RNN benchmarks shows no deterioration of the end-to-end error when
// replacing the activation function with our proposed interpolation."
//
// Sweeps the PLA interval count and measures the end-to-end output error of
// a quantized LSTM(+FC head) against the float reference over a sequence —
// once with ideal (double-precision) activations inside the fixed-point
// network and once with the PLA. The PLA column converges to the ideal one
// well before the chosen 32 intervals: Q3.12 quantization, not the
// interpolation, dominates the end-to-end error.
#include <cmath>
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"

using namespace rnnasip;
using activation::ActFunc;
using activation::PlaSpec;
using activation::PlaTable;

namespace {

/// Max |error| of the fixed-point LSTM+FC stack vs the float reference over
/// a T-step sequence, with the given activation tables.
double e2e_error(const PlaTable& tt, const PlaTable& st) {
  Rng rng(0xE2E);
  const auto lf = nn::random_lstm(rng, 12, 24, 0.3f);
  const auto ff = nn::random_fc(rng, 24, 8, nn::ActKind::kNone);
  const auto lq = nn::quantize_lstm(lf);
  const auto fq = nn::quantize_fc(ff);

  nn::LstmStateF sf{nn::VectorF(24, 0.0f), nn::VectorF(24, 0.0f)};
  nn::LstmStateQ sq{nn::VectorQ(24, 0), nn::VectorQ(24, 0)};
  double max_err = 0;
  for (int t = 0; t < 16; ++t) {
    const auto xf = nn::random_vector(rng, 12, 1.0f);
    const auto hf = nn::lstm_step(lf, xf, sf);
    const auto of = nn::fc_forward(ff, hf);
    const auto hq = nn::lstm_step_fixp(lq, nn::quantize_vector(xf), sq, tt, st);
    const auto oq = nn::fc_forward_fixp(fq, hq, tt, st);
    for (size_t i = 0; i < of.size(); ++i) {
      max_err = std::max(max_err, std::abs(dequantize(oq[i]) - of[i]));
    }
  }
  return max_err;
}

}  // namespace

int main() {
  std::printf("======================================================================\n");
  std::printf("Sec. III-D in-text — end-to-end error vs PLA interval count\n");
  std::printf("Paper: 'no deterioration of the end-to-end error' at 32 intervals\n");
  std::printf("======================================================================\n\n");

  // Reference: ideal activations = a PLA so fine it is quantization-exact.
  const auto ideal_t = PlaTable::build({ActFunc::kTanh, 4, 2048});
  const auto ideal_s = PlaTable::build({ActFunc::kSigmoid, 5, 2048});
  const double ideal = e2e_error(ideal_t, ideal_s);

  Table t({"intervals M", "tanh MSE", "e2e max err", "vs ideal-act e2e"});
  for (int m : {2, 4, 8, 16, 32, 64, 128}) {
    const auto tt = PlaTable::build(PlaSpec::for_range(ActFunc::kTanh, 4.0, m));
    const auto st = PlaTable::build(PlaSpec::for_range(ActFunc::kSigmoid, 8.0, m));
    const double err = e2e_error(tt, st);
    t.add_row({std::to_string(m), fmt_sci(activation::measure_error(tt).mse(), 1),
               fmt_double(err, 4), fmt_double(err / ideal, 2) + "x"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("ideal-activation end-to-end max error (Q3.12 floor): %.4f\n\n", ideal);
  std::printf("Reading: at the paper's 32-interval design point the end-to-end\n");
  std::printf("error sits within ~2x of the Q3.12 quantization floor and more than\n");
  std::printf("two orders of magnitude below the signal range — the 'no\n");
  std::printf("deterioration' regime; by 64 intervals it is indistinguishable.\n");
  return 0;
}
