// Extension ablation: two-dimensional tiling via batched inference.
//
// Sec. II-A notes that m x n tiling cuts loads from O(mn) to O(m+n) but is
// unavailable to single-sample Linear/LSTM inference. Batched RRM inference
// (several users per scheduling interval) restores the second dimension;
// this bench sweeps the batch size on a DQN-sized FC layer and reports
// cycles/MAC and loads/MAC for the batched kernel vs running the unbatched
// level-c kernel `batch` times.
#include <cstdio>

#include "bench/bench_io.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/iss/core.h"
#include "src/kernels/fc_batch.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"

using namespace rnnasip;
using kernels::OptLevel;

namespace {

struct Run {
  uint64_t cycles = 0;
  uint64_t loads = 0;
};

Run run_batched(const nn::FcParamsQ& fc, int batch) {
  iss::Memory mem(16u << 20);
  iss::Core core(&mem);
  kernels::DeviceAllocator alloc(&mem);
  const int cin = fc.w.cols, cout = fc.w.rows;
  const uint32_t x = alloc.alloc(static_cast<uint32_t>(2 * batch * cin), 4);
  const uint32_t o = alloc.alloc(static_cast<uint32_t>(2 * batch * cout), 4);
  const auto L = kernels::alloc_fc_batch(alloc, fc, batch, x, o);
  assembler::ProgramBuilder b(kernels::kTextBase);
  kernels::FcBatchEmitOptions opt;
  if (batch >= 2) {
    kernels::emit_fc_batch(b, L, opt);
  } else {
    kernels::FcEmitOptions fo;
    fo.level = OptLevel::kOutputTiling;
    kernels::emit_fc(b, L.fc, fo);
  }
  b.ebreak();
  const auto prog = b.build();
  core.load_program(prog);
  core.reset(prog.base);
  const auto res = core.run();
  RNNASIP_CHECK_MSG(res.ok(), res.trap_message);
  Run r;
  r.cycles = core.stats().total_cycles();
  for (const auto& [op, s] : core.stats().by_opcode()) {
    if (isa::opcode_info(op).unit == isa::Unit::kLoad) r.loads += s.instrs;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::parse(argc, argv);
  std::printf("=====================================================================\n");
  std::printf("Ablation — batched FC inference (two-dimensional tiling, Sec. II-A)\n");
  std::printf("FC 320x64 (wang18's first-layer scale), pv.sdotsp schedule\n");
  std::printf("=====================================================================\n\n");

  Rng rng(io.seed(0xBA7));
  const int cin = 320, cout = 64;
  const auto fc = nn::quantize_fc(nn::random_fc(rng, cin, cout, nn::ActKind::kReLU));
  const uint64_t macs1 = static_cast<uint64_t>(cin) * cout;

  const auto single = run_batched(fc, 1);

  Table t({"batch", "cycles/MAC", "loads/MAC", "vs 1-at-a-time", "theory loads/MAC"});
  obs::Json rows = obs::Json::array();
  for (int batch : {1, 2, 4, 8, 16}) {
    const auto r = run_batched(fc, batch);
    const uint64_t macs = macs1 * static_cast<uint64_t>(batch);
    const double vs = static_cast<double>(single.cycles) * batch / r.cycles;
    // The register file admits (n, bt) = (4, 2) for batch >= 2.
    const double theory = batch >= 2 ? (4 + 2) / (2.0 * 4 * 2) : (1 + 4) / (2.0 * 4);
    t.add_row({std::to_string(batch),
               fmt_double(static_cast<double>(r.cycles) / macs, 3),
               fmt_double(static_cast<double>(r.loads) / macs, 3),
               fmt_double(vs, 2) + "x", fmt_double(theory, 3)});
    obs::Json row = obs::Json::object();
    row.set("batch", static_cast<uint64_t>(batch));
    row.set("cycles", r.cycles);
    row.set("loads", r.loads);
    row.set("cycles_per_mac", static_cast<double>(r.cycles) / static_cast<double>(macs));
    row.set("loads_per_mac", static_cast<double>(r.loads) / static_cast<double>(macs));
    row.set("speedup_vs_single", vs);
    rows.push(std::move(row));
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Batching converts the paper's 'unavailable' second tiling dimension\n");
  std::printf("into a further ~25%% cycle saving at the same ISA level — relevant\n");
  std::printf("when one base station schedules several users per interval.\n");

  if (io.json_enabled()) {
    obs::Json data = obs::Json::object();
    data.set("cin", static_cast<uint64_t>(cin));
    data.set("cout", static_cast<uint64_t>(cout));
    data.set("rows", std::move(rows));
    io.write_json("batch", std::move(data));
  }
  return 0;
}
