// Forward-looking ablation: scaling the extended core into a PULP-style
// cluster (the conclusion's "open-source IP for future systems-on-chip").
// N cores share a banked TCDM through a logarithmic interconnect; a bank
// conflict costs one wait state. First-order contention model:
//
//   E[wait states per access] ~= (N - 1) / (2 B)   (B banks, uniform access)
//
// Per-core cycles interpolate linearly between the measured 0- and 1-wait-
// state suite runs (loads/stores dominate, so the response is linear in the
// expected wait — bench_memory_sensitivity confirms). Power scales per
// active core plus an interconnect share; area adds cores and banks.
#include <cmath>
#include <cstdio>

#include "src/common/table.h"
#include "src/impl_model/impl_model.h"
#include "src/rrm/suite.h"

using namespace rnnasip;
using namespace rnnasip::impl_model;
using kernels::OptLevel;

int main() {
  std::printf("=====================================================================\n");
  std::printf("Ablation — clustering the extended core (shared TCDM, 16 banks)\n");
  std::printf("=====================================================================\n\n");

  rrm::RunOptions opt0;
  opt0.verify = false;
  rrm::RunOptions opt1 = opt0;
  opt1.core_config.timing.mem_wait_states = 1;

  const auto base = rrm::run_suite(OptLevel::kBaseline, opt0);
  const auto e0 = rrm::run_suite(OptLevel::kInputTiling, opt0);
  const auto e1 = rrm::run_suite(OptLevel::kInputTiling, opt1);
  const auto pm = PowerModel::calibrate(activity_from_stats(base.total),
                                        activity_from_stats(e0.total));
  const double p_core = pm.power_mw(activity_from_stats(e0.total));

  const double banks = 16.0;
  AreaModel area;
  Table t({"cores", "E[wait]", "cyc/core (k)", "agg MMAC/s", "power mW", "GMAC/s/W",
           "kGE"});
  for (int n : {1, 2, 4, 8, 16}) {
    const double ews = (n - 1) / (2.0 * banks);
    const double cycles =
        static_cast<double>(e0.total_cycles) +
        ews * static_cast<double>(e1.total_cycles - e0.total_cycles);
    const double mmacs_per_core =
        static_cast<double>(e0.total_macs) / cycles * 380.0;  // MHz
    const double agg = mmacs_per_core * n;
    // Interconnect/arbitration overhead grows with the tree depth.
    const double power = p_core * n * (1.0 + 0.02 * std::log2(static_cast<double>(n) * 2));
    const double kge = area.extended_core_kge() * n + 2.0 * banks;  // banks + routing
    t.add_row({std::to_string(n), fmt_double(ews, 3), fmt_double(cycles / 1000, 0),
               fmt_double(agg, 0), fmt_double(power, 2),
               fmt_double(gmac_per_s_per_w(agg, power), 0), fmt_double(kge, 0)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Aggregate throughput scales near-linearly (2.3 GMAC/s at 4 cores,\n");
  std::printf("the DeltaRNN/FPGA class of Sec. II-A at microcontroller cost);\n");
  std::printf("efficiency erodes gently from bank contention and the interconnect.\n");
  return 0;
}
