// Forward-looking ablation: scaling the extended core into a PULP-style
// cluster (the conclusion's "open-source IP for future systems-on-chip").
// N cores share a banked TCDM through a logarithmic interconnect; a bank
// conflict costs one wait state. First-order contention model:
//
//   E[wait states per access] ~= (N - 1) / (2 B)   (B banks, uniform access)
//
// Per-core cycles interpolate linearly between the measured 0- and 1-wait-
// state suite runs (loads/stores dominate, so the response is linear in the
// expected wait — bench_memory_sensitivity confirms). Power scales per
// active core plus an interconnect share; area adds cores and banks.
//
// The analytic model is cross-checked against the cycle-accurate serving
// subsystem (src/serve): a 1-core FIFO serving run at level e — zero bank
// conflicts by construction, the model's N=1 point — must land within 15%
// of the analytic per-core estimate, or the bench aborts. bench_serving
// covers the multi-core points with measured per-core clocks.
#include <cmath>
#include <cstdio>

#include "bench/bench_io.h"
#include "src/common/check.h"
#include "src/common/table.h"
#include "src/impl_model/impl_model.h"
#include "src/rrm/engine.h"
#include "src/serve/scheduler.h"

using namespace rnnasip;
using namespace rnnasip::impl_model;
using kernels::OptLevel;

namespace {

// Measured reference for the model's zero-conflict point: serve exactly one
// request per suite network on a single level-e core and sum the real
// execution cycles. This is the same program path the analytic estimate
// interpolates from, but measured through the serving subsystem end to end.
uint64_t measured_one_core_suite_cycles(uint64_t seed, ExecBackend backend) {
  serve::ClusterConfig cc;
  cc.backend = backend;
  cc.cores = 1;
  cc.level = OptLevel::kInputTiling;
  cc.batch = 1;
  cc.seed = seed;
  std::vector<std::string> names;
  for (const auto& def : rrm::rrm_suite()) names.push_back(def.name);
  serve::Cluster cluster(cc, names);

  serve::Workload wl;
  for (const auto& name : names) {
    serve::Job j;
    j.id = wl.jobs.size();
    j.network = name;
    j.arrival = 0;
    j.input = cluster.network(name).make_input(0);
    wl.jobs.push_back(std::move(j));
  }
  serve::Scheduler sched(&cluster, serve::Policy::kFifo);
  const auto r = sched.run(wl);
  uint64_t cycles = 0;
  for (const auto& c : r.completions) cycles += c.exec_cycles;
  return cycles;
}

}  // namespace

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::parse(argc, argv);
  std::printf("=====================================================================\n");
  std::printf("Ablation — clustering the extended core (shared TCDM, 16 banks)\n");
  std::printf("=====================================================================\n\n");

  rrm::Engine::Config cfg0;
  cfg0.seed = io.seed(cfg0.seed);
  cfg0.backend = io.backend();
  rrm::Engine::Config cfg1 = cfg0;
  cfg1.core_config.timing.mem_wait_states = 1;
  rrm::Engine eng0(cfg0);
  rrm::Engine eng1(cfg1);
  rrm::Request proto;
  proto.verify = false;
  // The power model derives per-opcode activity factors from ExecStats,
  // which only the interpreter collects; observe routes every request to
  // the ISS on any backend instead of silently modeling zero activity.
  proto.observe = true;

  const auto base = eng0.run_suite(OptLevel::kBaseline, proto);
  const auto e0 = eng0.run_suite(OptLevel::kInputTiling, proto);
  const auto e1 = eng1.run_suite(OptLevel::kInputTiling, proto);
  const auto pm = PowerModel::calibrate(activity_from_stats(base.total),
                                        activity_from_stats(e0.total));
  const double p_core = pm.power_mw(activity_from_stats(e0.total));

  // Anchor the interpolation at its N=1 (zero-conflict) point against the
  // cycle-accurate serving subsystem before trusting any scaled row.
  const uint64_t measured = measured_one_core_suite_cycles(cfg0.seed, io.backend());
  const double anchor_err =
      std::abs(static_cast<double>(measured) - static_cast<double>(e0.total_cycles)) /
      static_cast<double>(e0.total_cycles);
  std::printf("model anchor: analytic %llu cyc vs measured serving %llu cyc "
              "(%.2f%% apart)\n\n",
              static_cast<unsigned long long>(e0.total_cycles),
              static_cast<unsigned long long>(measured), 100.0 * anchor_err);
  RNNASIP_CHECK_MSG(anchor_err <= 0.15,
                    "analytic cluster model drifted " << 100.0 * anchor_err
                                                      << "% from measured serving run");

  const double banks = 16.0;
  AreaModel area;
  Table t({"cores", "E[wait]", "cyc/core (k)", "agg MMAC/s", "power mW", "GMAC/s/W",
           "kGE"});
  obs::Json rows = obs::Json::array();
  for (int n : {1, 2, 4, 8, 16}) {
    const double ews = (n - 1) / (2.0 * banks);
    const double cycles =
        static_cast<double>(e0.total_cycles) +
        ews * static_cast<double>(e1.total_cycles - e0.total_cycles);
    const double mmacs_per_core =
        static_cast<double>(e0.total_macs) / cycles * 380.0;  // MHz
    const double agg = mmacs_per_core * n;
    // Interconnect/arbitration overhead grows with the tree depth.
    const double power = p_core * n * (1.0 + 0.02 * std::log2(static_cast<double>(n) * 2));
    const double kge = area.extended_core_kge() * n + 2.0 * banks;  // banks + routing
    t.add_row({std::to_string(n), fmt_double(ews, 3), fmt_double(cycles / 1000, 0),
               fmt_double(agg, 0), fmt_double(power, 2),
               fmt_double(gmac_per_s_per_w(agg, power), 0), fmt_double(kge, 0)});
    obs::Json row = obs::Json::object();
    row.set("cores", static_cast<uint64_t>(n));
    row.set("expected_wait_states", ews);
    row.set("cycles_per_core", cycles);
    row.set("agg_mmac_per_s", agg);
    row.set("power_mw", power);
    row.set("gmac_per_s_per_w", gmac_per_s_per_w(agg, power));
    rows.push(std::move(row));
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Aggregate throughput scales near-linearly (2.3 GMAC/s at 4 cores,\n");
  std::printf("the DeltaRNN/FPGA class of Sec. II-A at microcontroller cost);\n");
  std::printf("efficiency erodes gently from bank contention and the interconnect.\n");

  if (io.json_enabled()) {
    obs::Json data = obs::Json::object();
    data.set("seed", cfg0.seed);
    data.set("analytic_one_core_cycles", e0.total_cycles);
    data.set("measured_one_core_cycles", measured);
    data.set("anchor_error", anchor_err);
    data.set("rows", std::move(rows));
    io.write_json("cluster", std::move(data));
  }
  return 0;
}
