// Ablation: RV32C code-size reduction on the generated network programs —
// the "C" of the paper's RV32IMC baseline quantified. The optimized kernels
// are dominated by Xpulp/RNN instructions with no compressed forms, so the
// reduction shrinks as the optimization level rises: a real ISA-design
// observation (specialized encodings trade code density for throughput).
#include <cstdio>

#include "src/asm/compress_pass.h"
#include "src/common/table.h"
#include "src/iss/core.h"
#include "src/rrm/suite.h"

using namespace rnnasip;
using kernels::OptLevel;

int main() {
  std::printf("=====================================================================\n");
  std::printf("Ablation — RVC text-size reduction per network and level\n");
  std::printf("=====================================================================\n\n");

  Table t({"network", "a bytes", "a compressed", "a save", "e bytes", "e compressed",
           "e save"});
  double save_a_total = 0, save_e_total = 0;
  int count = 0;
  for (const auto& def : rrm::rrm_suite()) {
    rrm::RrmNetwork net(def);
    std::vector<std::string> row = {def.name};
    double save_a = 0, save_e = 0;
    for (auto level : {OptLevel::kBaseline, OptLevel::kInputTiling}) {
      iss::Memory mem(16u << 20);
      iss::Core core(&mem);
      const auto built = net.build(&mem, level, core.tanh_table(), core.sig_table());
      const auto cp = assembler::compress_program(built.program);
      const double save =
          100.0 * (1.0 - static_cast<double>(cp.text_bytes) / built.program.size_bytes());
      row.push_back(fmt_count(built.program.size_bytes()));
      row.push_back(fmt_count(cp.text_bytes));
      row.push_back(fmt_double(save, 1) + "%");
      (level == OptLevel::kBaseline ? save_a : save_e) = save;
    }
    save_a_total += save_a;
    save_e_total += save_e;
    ++count;
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Average text saving: %.1f%% at the baseline level, %.1f%% fully\n",
              save_a_total / count, save_e_total / count);
  std::printf("optimized — the RNN/Xpulp instructions have no 16-bit forms, so the\n");
  std::printf("throughput extensions cost code density (and gain far more cycles).\n");
  return 0;
}
