// Regenerates the Sec. IV "Core Implementation Results": throughput,
// power with component breakdown, energy efficiency, and area — from the
// measured suite activity through the calibrated implementation model,
// printed side by side with the paper's published numbers.
#include <cstdio>

#include "bench/bench_io.h"
#include "src/common/table.h"
#include "src/impl_model/impl_model.h"
#include "src/rrm/engine.h"

using namespace rnnasip;
using namespace rnnasip::impl_model;
using kernels::OptLevel;

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::parse(argc, argv);
  std::printf("=====================================================================\n");
  std::printf("Sec. IV — core implementation results (GF22FDX, 0.65 V, 380 MHz)\n");
  std::printf("=====================================================================\n\n");

  rrm::Engine::Config cfg;
  cfg.seed = io.seed(cfg.seed);
  cfg.backend = io.backend();
  rrm::Engine eng(cfg);
  rrm::Request proto;
  proto.verify = false;
  // The power model derives per-opcode activity factors from ExecStats,
  // which only the interpreter collects; observe routes every request to
  // the ISS on any backend instead of silently modeling zero activity.
  proto.observe = true;
  const auto base = eng.run_suite(OptLevel::kBaseline, proto);
  const auto ext = eng.run_suite(OptLevel::kInputTiling, proto);

  const auto a_base = activity_from_stats(base.total);
  const auto a_ext = activity_from_stats(ext.total);
  const auto pm = PowerModel::calibrate(a_base, a_ext);

  const double mm_base = mmac_per_s(base.total_macs, base.total_cycles);
  const double mm_ext = mmac_per_s(ext.total_macs, ext.total_cycles);
  const double p_base = pm.power_mw(a_base);
  const double p_ext = pm.power_mw(a_ext);
  const double eff_base = gmac_per_s_per_w(mm_base, p_base);
  const double eff_ext = gmac_per_s_per_w(mm_ext, p_ext);

  Table t({"metric", "baseline (meas)", "extended (meas)", "paper base", "paper ext"});
  t.add_row({"throughput MMAC/s", fmt_double(mm_base, 0), fmt_double(mm_ext, 0), "21",
             "566"});
  t.add_row({"power mW", fmt_double(p_base, 2), fmt_double(p_ext, 2), "1.73", "2.61"});
  t.add_row({"effic. GMAC/s/W", fmt_double(eff_base, 0), fmt_double(eff_ext, 0), "-",
             "218"});
  t.add_row({"throughput impr.", "1x", fmt_double(mm_ext / mm_base, 1) + "x", "1x",
             "15x"});
  t.add_row({"efficiency impr.", "1x", fmt_double(eff_ext / eff_base, 1) + "x", "1x",
             "10x"});
  std::printf("%s\n", t.to_string().c_str());

  const auto bb = pm.breakdown_mw(a_base);
  const auto be = pm.breakdown_mw(a_ext);
  Table br({"component", "baseline mW", "extended mW", "delta mW", "paper delta"});
  br.add_row({"idle/clock/ctrl", fmt_double(bb.idle, 2), fmt_double(be.idle, 2), "0.00",
              "-"});
  br.add_row({"ALU+MAC", fmt_double(bb.mac + bb.alu, 2), fmt_double(be.mac + be.alu, 2),
              fmt_double(be.mac + be.alu - bb.mac - bb.alu, 2), "+0.57 (33%)"});
  br.add_row({"GPR", fmt_double(bb.gpr, 2), fmt_double(be.gpr, 2),
              fmt_double(be.gpr - bb.gpr, 2), "+0.16 (9%)"});
  br.add_row({"LSU", fmt_double(bb.lsu, 2), fmt_double(be.lsu, 2),
              fmt_double(be.lsu - bb.lsu, 2), "+0.05 (3%)"});
  br.add_row({"ext. decoder+act", fmt_double(bb.ext_dec + bb.act, 3),
              fmt_double(be.ext_dec + be.act, 3),
              fmt_double(be.ext_dec + be.act - bb.ext_dec - bb.act, 3), "+0.005"});
  std::printf("Power breakdown:\n%s\n", br.to_string().c_str());

  AreaModel area;
  Table ar({"quantity", "model", "paper"});
  ar.add_row({"baseline core kGE", fmt_double(area.baseline_core_kge, 1), "-"});
  ar.add_row({"extension kGE", fmt_double(area.extension_kge(), 1), "2.3"});
  ar.add_row({"overhead %", fmt_double(100 * area.overhead_fraction(), 1), "3.4"});
  ar.add_row({"extended core um^2", fmt_double(area.extended_core_um2(), 0), "-"});
  std::printf("Area (GF22FDX, 8-track LVT):\n%s\n", ar.to_string().c_str());
  std::printf("Critical path: unchanged (LSU -> memory, write-back stage); the\n");
  std::printf("extension datapath sits off the existing MAC/LSU paths, 380 MHz.\n\n");

  // Per-network energy per inference at the extended level.
  Table en({"network", "kcycles", "latency us", "energy uJ", "MMAC/s"});
  for (const auto& r : ext.nets) {
    const auto a = activity_from_stats(r.stats);
    const double p = pm.power_mw(a);
    en.add_row({r.name, fmt_double(static_cast<double>(r.cycles) / 1000.0, 1),
                fmt_double(static_cast<double>(r.cycles) / 380.0, 1),
                fmt_double(energy_per_run_uj(r.cycles, p), 3),
                fmt_double(mmac_per_s(r.nominal_macs, r.cycles), 0)});
  }
  std::printf("Per-network inference cost on the extended core:\n%s\n",
              en.to_string().c_str());
  std::printf("(RRM deadline context: all networks finish well inside the\n");
  std::printf(" millisecond-scale scheduling intervals cited in Sec. I.)\n");

  if (io.json_enabled()) {
    obs::Json data = obs::Json::object();
    data.set("seed", eng.config().seed);
    data.set("throughput_mmac_per_s_base", mm_base);
    data.set("throughput_mmac_per_s_ext", mm_ext);
    data.set("power_mw_base", p_base);
    data.set("power_mw_ext", p_ext);
    data.set("efficiency_gmac_per_s_per_w_base", eff_base);
    data.set("efficiency_gmac_per_s_per_w_ext", eff_ext);
    obs::Json nets = obs::Json::array();
    for (const auto& r : ext.nets) {
      const double p = pm.power_mw(activity_from_stats(r.stats));
      obs::Json e = obs::Json::object();
      e.set("name", r.name);
      e.set("cycles", r.cycles);
      e.set("latency_us", static_cast<double>(r.cycles) / 380.0);
      e.set("energy_uj", energy_per_run_uj(r.cycles, p));
      nets.push(std::move(e));
    }
    data.set("networks", std::move(nets));
    io.write_json("core_results", std::move(data));
  }
  return 0;
}
