// Architecture ablation: ISA extension vs microarchitecture. A natural
// question about the paper's approach: could a generic in-order dual-issue
// core (memory + ALU pairing, no new instructions) match the fused
// pl.sdotsp route? This bench runs the suite with an optimistic dual-issue
// bound at every optimization level. Findings:
//   * dual-issue helps the *unextended* levels (their inner loops alternate
//     loads and MACs, which pair well),
//   * it adds almost nothing on top of level d/e — pl.sdotsp already fuses
//     the memory and MAC slots into one instruction,
//   * the single-issue extended core beats the dual-issue unextended core,
//     at 3.4% area instead of a second issue port and register-file ports.
#include <cstdio>

#include "bench/bench_io.h"
#include "src/common/table.h"
#include "src/rrm/engine.h"

using namespace rnnasip;
using kernels::OptLevel;

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::parse(argc, argv);
  std::printf("=====================================================================\n");
  std::printf("Ablation — ISA extension vs dual-issue microarchitecture (upper\n");
  std::printf("bound: any independent ALU/MUL/SIMD pairs with a preceding mem op)\n");
  std::printf("=====================================================================\n\n");

  rrm::Engine::Config single_cfg;
  single_cfg.seed = io.seed(single_cfg.seed);
  single_cfg.backend = io.backend();
  rrm::Engine::Config dual_cfg = single_cfg;
  dual_cfg.core_config.timing.dual_issue = true;
  rrm::Engine single_eng(single_cfg);
  rrm::Engine dual_eng(dual_cfg);
  rrm::Request proto;
  proto.verify = false;

  Table t({"level", "single kcyc", "dual kcyc", "dual gain", "speedup single",
           "speedup dual"});
  uint64_t base_single = 0;
  obs::Json levels_json = obs::Json::array();
  for (auto level : kernels::kAllOptLevels) {
    const auto s = single_eng.run_suite(level, proto);
    const auto d = dual_eng.run_suite(level, proto);
    if (level == OptLevel::kBaseline) {
      base_single = s.total_cycles;
    }
    t.add_row({std::string(1, kernels::opt_level_letter(level)),
               fmt_count(s.total_cycles / 1000), fmt_count(d.total_cycles / 1000),
               fmt_double(static_cast<double>(s.total_cycles) / d.total_cycles, 2) + "x",
               fmt_double(static_cast<double>(base_single) / s.total_cycles, 1) + "x",
               fmt_double(static_cast<double>(base_single) / d.total_cycles, 1) + "x"});
    obs::Json l = obs::Json::object();
    l.set("level", std::string(1, kernels::opt_level_letter(level)));
    l.set("single_cycles", s.total_cycles);
    l.set("dual_cycles", d.total_cycles);
    l.set("dual_issue_saved", d.total.dual_issue_saved());
    levels_json.push(std::move(l));
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Reading: dual-issue compresses level c (its software-pipelined loads\n");
  std::printf("pair with independent sdots, 1.46x) but not level b (every sdot\n");
  std::printf("depends on the load right before it), and is inert on d/e —\n");
  std::printf("pl.sdotsp already owns both slots. The extended single-issue core\n");
  std::printf("(670 kcyc) still beats the best dual-issue unextended point\n");
  std::printf("(759 kcyc), with 2.3 kGE instead of a second issue pipeline.\n");

  if (io.json_enabled()) {
    obs::Json data = obs::Json::object();
    data.set("levels", std::move(levels_json));
    io.write_json("dual_issue", std::move(data));
  }
  return 0;
}
