// Ablation: operating-point exploration (DVFS) around the paper's
// 0.65 V / 380 MHz point — the near-threshold trade-off the RI5CY lineage
// [32] targets. At lower voltage the extended core trades throughput for
// energy efficiency; the table shows where the paper's RRM deadlines still
// hold.
#include <cstdio>

#include "src/common/table.h"
#include "src/impl_model/impl_model.h"
#include "src/rrm/suite.h"

using namespace rnnasip;
using namespace rnnasip::impl_model;
using kernels::OptLevel;

int main() {
  std::printf("=====================================================================\n");
  std::printf("Ablation — voltage/frequency scaling of the extended core\n");
  std::printf("(anchor: 0.65 V / 380 MHz, the paper's Sec. IV operating point)\n");
  std::printf("=====================================================================\n\n");

  rrm::RunOptions opt;
  opt.verify = false;
  const auto base = rrm::run_suite(OptLevel::kBaseline, opt);
  const auto ext = rrm::run_suite(OptLevel::kInputTiling, opt);
  const auto pm = PowerModel::calibrate(activity_from_stats(base.total),
                                        activity_from_stats(ext.total));
  const double p_anchor = pm.power_mw(activity_from_stats(ext.total));
  const double mac_per_cycle =
      static_cast<double>(ext.total_macs) / static_cast<double>(ext.total_cycles);

  DvfsModel dvfs;
  Table t({"Vdd", "fmax MHz", "MMAC/s", "power mW", "GMAC/s/W", "suite latency us"});
  for (double v : {0.50, 0.55, 0.60, 0.65, 0.70, 0.80}) {
    const auto op = dvfs.point_at(v);
    if (op.freq_hz <= 0) continue;
    const double mmacs = mac_per_cycle * op.freq_hz * 1e-6;
    const double p = dvfs.scale_power_mw(p_anchor, v);
    t.add_row({fmt_double(v, 2), fmt_double(op.freq_hz * 1e-6, 0), fmt_double(mmacs, 0),
               fmt_double(p, 2), fmt_double(gmac_per_s_per_w(mmacs, p), 0),
               fmt_double(static_cast<double>(ext.total_cycles) / (op.freq_hz * 1e-6), 0)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Lower voltage buys efficiency quadratically while the whole RRM\n");
  std::printf("suite still fits comfortably inside a millisecond interval — the\n");
  std::printf("dense-deployment cost argument of Sec. I.\n");
  return 0;
}
