// Ablation: operating-point exploration (DVFS) around the paper's
// 0.65 V / 380 MHz point — the near-threshold trade-off the RI5CY lineage
// [32] targets. At lower voltage the extended core trades throughput for
// energy efficiency; the table shows where the paper's RRM deadlines still
// hold.
#include <cstdio>

#include "bench/bench_io.h"
#include "src/common/table.h"
#include "src/impl_model/impl_model.h"
#include "src/rrm/engine.h"

using namespace rnnasip;
using namespace rnnasip::impl_model;
using kernels::OptLevel;

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::parse(argc, argv);
  std::printf("=====================================================================\n");
  std::printf("Ablation — voltage/frequency scaling of the extended core\n");
  std::printf("(anchor: 0.65 V / 380 MHz, the paper's Sec. IV operating point)\n");
  std::printf("=====================================================================\n\n");

  rrm::Engine::Config cfg;
  cfg.seed = io.seed(cfg.seed);
  cfg.backend = io.backend();
  rrm::Engine eng(cfg);
  rrm::Request proto;
  proto.verify = false;
  // The power model derives per-opcode activity factors from ExecStats,
  // which only the interpreter collects; observe routes every request to
  // the ISS on any backend instead of silently modeling zero activity.
  proto.observe = true;
  const auto base = eng.run_suite(OptLevel::kBaseline, proto);
  const auto ext = eng.run_suite(OptLevel::kInputTiling, proto);
  const auto pm = PowerModel::calibrate(activity_from_stats(base.total),
                                        activity_from_stats(ext.total));
  const double p_anchor = pm.power_mw(activity_from_stats(ext.total));
  const double mac_per_cycle =
      static_cast<double>(ext.total_macs) / static_cast<double>(ext.total_cycles);

  DvfsModel dvfs;
  Table t({"Vdd", "fmax MHz", "MMAC/s", "power mW", "GMAC/s/W", "suite latency us"});
  obs::Json points = obs::Json::array();
  for (double v : {0.50, 0.55, 0.60, 0.65, 0.70, 0.80}) {
    const auto op = dvfs.point_at(v);
    if (op.freq_hz <= 0) continue;
    const double mmacs = mac_per_cycle * op.freq_hz * 1e-6;
    const double p = dvfs.scale_power_mw(p_anchor, v);
    const double lat_us = static_cast<double>(ext.total_cycles) / (op.freq_hz * 1e-6);
    t.add_row({fmt_double(v, 2), fmt_double(op.freq_hz * 1e-6, 0), fmt_double(mmacs, 0),
               fmt_double(p, 2), fmt_double(gmac_per_s_per_w(mmacs, p), 0),
               fmt_double(lat_us, 0)});
    obs::Json e = obs::Json::object();
    e.set("vdd", v);
    e.set("fmax_mhz", op.freq_hz * 1e-6);
    e.set("mmac_per_s", mmacs);
    e.set("power_mw", p);
    e.set("gmac_per_s_per_w", gmac_per_s_per_w(mmacs, p));
    e.set("suite_latency_us", lat_us);
    points.push(std::move(e));
  }
  std::printf("%s\n", t.to_string().c_str());
  if (io.json_enabled()) {
    obs::Json data = obs::Json::object();
    data.set("seed", eng.config().seed);
    data.set("base_total_cycles", base.total_cycles);
    data.set("ext_total_cycles", ext.total_cycles);
    data.set("mac_per_cycle", mac_per_cycle);
    data.set("points", std::move(points));
    io.write_json("dvfs", std::move(data));
  }
  std::printf("Lower voltage buys efficiency quadratically while the whole RRM\n");
  std::printf("suite still fits comfortably inside a millisecond interval — the\n");
  std::printf("dense-deployment cost argument of Sec. I.\n");
  return 0;
}
