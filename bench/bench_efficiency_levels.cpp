// Ablation: throughput / power / energy-efficiency at every optimization
// level — the Pareto view behind the paper's Sec. IV headline (the 15x
// throughput costs 1.5x power, netting 10x efficiency; intermediate levels
// show where each factor comes from).
#include <cstdio>

#include "bench/bench_io.h"
#include "src/common/table.h"
#include "src/impl_model/impl_model.h"
#include "src/rrm/engine.h"

using namespace rnnasip;
using namespace rnnasip::impl_model;
using kernels::OptLevel;

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::parse(argc, argv);
  std::printf("=====================================================================\n");
  std::printf("Ablation — throughput/power/efficiency per optimization level\n");
  std::printf("=====================================================================\n\n");

  rrm::Engine::Config cfg;
  cfg.seed = io.seed(cfg.seed);
  cfg.backend = io.backend();
  rrm::Engine eng(cfg);
  rrm::Request proto;
  proto.verify = false;
  // The power model derives per-opcode activity factors from ExecStats,
  // which only the interpreter collects; observe routes every request to
  // the ISS on any backend instead of silently modeling zero activity.
  proto.observe = true;

  std::vector<rrm::SuiteResult> res;
  for (auto level : kernels::kAllOptLevels) res.push_back(eng.run_suite(level, proto));

  const auto pm = PowerModel::calibrate(activity_from_stats(res.front().total),
                                        activity_from_stats(res.back().total));

  Table t({"level", "MMAC/s", "power mW", "GMAC/s/W", "thr. impr", "eff. impr",
           "energy/suite uJ"});
  obs::Json levels_json = obs::Json::array();
  double mm0 = 0, eff0 = 0;
  for (size_t i = 0; i < res.size(); ++i) {
    const auto a = activity_from_stats(res[i].total);
    const double mm = mmac_per_s(res[i].total_macs, res[i].total_cycles);
    const double p = pm.power_mw(a);
    const double eff = gmac_per_s_per_w(mm, p);
    if (i == 0) {
      mm0 = mm;
      eff0 = eff;
    }
    t.add_row({std::string(1, kernels::opt_level_letter(kernels::kAllOptLevels[i])),
               fmt_double(mm, 0), fmt_double(p, 2), fmt_double(eff, 0),
               fmt_double(mm / mm0, 1) + "x", fmt_double(eff / eff0, 1) + "x",
               fmt_double(energy_per_run_uj(res[i].total_cycles, p), 2)});
    obs::Json l = obs::Json::object();
    l.set("level", std::string(1, kernels::opt_level_letter(kernels::kAllOptLevels[i])));
    l.set("cycles", res[i].total_cycles);
    l.set("mmac_per_s", mm);
    l.set("power_mw", p);
    l.set("gmac_per_s_per_w", eff);
    l.set("energy_per_suite_uj", energy_per_run_uj(res[i].total_cycles, p));
    levels_json.push(std::move(l));
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Paper anchors: level a = 1.73 mW; level e = 566 MMAC/s, 2.61 mW,\n");
  std::printf("218 GMAC/s/W; improvements 15x throughput / 10x efficiency.\n");
  std::printf("Every optimization level is a strict Pareto improvement: each step\n");
  std::printf("raises power but raises throughput faster.\n");

  if (io.json_enabled()) {
    obs::Json data = obs::Json::object();
    data.set("levels", std::move(levels_json));
    io.write_json("efficiency_levels", std::move(data));
  }
  return 0;
}
