// SEU fault-injection sweep over the RRM suite: fault rate x target x
// optimization level, reporting an AVF-style degradation table.
//
// For every configuration the full 10-network suite runs under a
// deterministic bit-flip campaign (src/fault). Reported per row:
//   flips     total injected bit flips across the suite,
//   compl     networks that ran every timestep to ebreak (rest trapped or
//             hit the cycle watchdog — never a process abort),
//   degr      networks with any visible corruption (trap, watchdog, or
//             output divergence from the golden model),
//   AVF       degr / networks-with-flips: the fraction of hit networks in
//             which the fault became architecturally visible,
//   flip%     mean decision-flip rate (wrong RRM action) over completed runs,
//   RMSE      mean device-vs-golden output RMSE over completed runs.
// The same seed reproduces the same table; the final block demonstrates it.
//
// A second table classifies *detection coverage* at level e: each network
// re-runs as an ABFT-instrumented single forward pass (integrity build +
// CheckedRun, rollback off) under the same campaign targets, and every hit
// network is attributed to exactly one detector —
//   clean   completed with outputs bit-identical to the golden model
//           (flips masked by the program),
//   abft    flagged by a layer-boundary checksum mismatch,
//   trap    architectural trap (illegal access/instruction),
//   wdog    killed by the cycle watchdog (runaway control flow),
//   undet   completed, outputs diverged, no detector fired — the silent-
//           corruption residue the integrity layer is built to minimize.
#include <cstdio>
#include <vector>

#include "bench/bench_io.h"
#include "src/common/table.h"
#include "src/integrity/integrity.h"
#include "src/kernels/layout.h"
#include "src/rrm/engine.h"

using namespace rnnasip;
using kernels::OptLevel;

namespace {

struct RowStats {
  int completed = 0;
  int degraded = 0;
  int with_flips = 0;
  double flip_sum = 0;
  double rmse_sum = 0;
  int rmse_n = 0;
};

RowStats summarize(const rrm::SuiteResult& s) {
  RowStats r;
  for (const auto& n : s.nets) {
    r.completed += n.completed ? 1 : 0;
    r.degraded += n.degraded() ? 1 : 0;
    r.with_flips += n.faults_injected > 0 ? 1 : 0;
    if (n.steps_completed > 0) {
      r.flip_sum += n.decision_flip_rate;
      if (n.output_error.count() > 0) {
        r.rmse_sum += n.output_error.rmse();
        ++r.rmse_n;
      }
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::parse(argc, argv);
  // Every run in this bench is a fault campaign; the translated backend has
  // no injection hooks and refuses faulted requests (docs/BACKENDS.md), so
  // reject the flag up front instead of failing mid-sweep.
  if (io.has_backend() && io.backend() == ExecBackend::kTranslated) {
    std::fprintf(stderr,
                 "bench_fault_sweep: fault-injection campaigns require the ISS "
                 "backend (the translated backend has no injection hooks); "
                 "re-run with --backend=iss\n");
    return 2;
  }
  std::printf("=====================================================================\n");
  std::printf("SEU sweep — fault rate x target x opt level over the 10-net RRM suite\n");
  std::printf("=====================================================================\n\n");

  const std::vector<fault::Target> targets = {
      fault::Target::kTcdm, fault::Target::kRegFile, fault::Target::kSprWeights,
      fault::Target::kPlaLut, fault::Target::kInstr};
  const std::vector<double> rates = {1e-5, 1e-4, 1e-3};
  const std::vector<OptLevel> levels = {OptLevel::kXpulpSimd, OptLevel::kInputTiling};

  rrm::Engine::Config cfg;
  cfg.seed = io.seed(cfg.seed);
  rrm::Engine eng(cfg);
  rrm::Request base;
  base.timesteps = 2;
  base.verify = true;

  // Fault-free reference per level (also proves the suite itself verifies).
  std::printf("fault-free reference:\n");
  for (auto level : levels) {
    const auto ref = eng.run_suite(level, base);
    std::printf("  level %c: %llu cycles, %d/10 completed, verified: %s\n",
                kernels::opt_level_letter(level),
                static_cast<unsigned long long>(ref.total_cycles), ref.nets_completed,
                ref.all_verified ? "yes" : "NO");
  }
  std::printf("\n");

  Table t({"target", "rate", "lvl", "flips", "compl", "degr", "AVF", "flip%", "RMSE"});
  for (auto target : targets) {
    for (double rate : rates) {
      for (auto level : levels) {
        rrm::Request req = base;
        req.fault.seed = 0x5EEDu + static_cast<uint64_t>(target) * 131;
        req.fault.rate_of(target) = rate;
        const auto s = eng.run_suite(level, req);
        const RowStats r = summarize(s);
        const double avf =
            r.with_flips > 0 ? static_cast<double>(r.degraded) / r.with_flips : 0.0;
        t.add_row({fault::target_name(target), fmt_double(rate, 5),
                   std::string(1, kernels::opt_level_letter(level)),
                   std::to_string(s.faults_injected), std::to_string(r.completed) + "/10",
                   std::to_string(r.degraded), fmt_double(avf, 2),
                   fmt_double(100.0 * r.flip_sum / 10.0, 1),
                   r.rmse_n > 0 ? fmt_double(r.rmse_sum / r.rmse_n, 4) : "-"});
      }
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  // Detection coverage: the same campaign targets against ABFT-instrumented
  // single forward passes at level e (the serving integrity deployment
  // point). Rollback is off so every detection surfaces as an attribution
  // instead of being healed.
  std::printf("detection coverage at level e (10 instrumented nets per row):\n");
  Table cov({"target", "rate", "flips", "clean", "abft", "trap", "wdog", "undet"});
  for (auto target : targets) {
    for (double rate : rates) {
      int clean = 0, abft = 0, trap = 0, wdog = 0, undet = 0;
      uint64_t flips = 0;
      uint64_t net_index = 0;
      for (const auto& def : rrm::rrm_suite()) {
        iss::Memory mem(8u << 20);
        iss::Core core(&mem);
        const rrm::RrmNetwork net(def, cfg.seed);
        auto built = net.build(&mem, OptLevel::kInputTiling, core.tanh_table(),
                               core.sig_table(), /*max_tile=*/8, /*param_base=*/0,
                               /*integrity=*/true);
        core.load_program(built.program);
        const auto input = net.make_input(0);
        const auto golden = integrity::golden_checks(net, core.tanh_table(),
                                                     core.sig_table(), input);

        fault::FaultSpec spec;
        spec.seed = 0x5EEDu + static_cast<uint64_t>(target) * 131 + net_index * 977;
        spec.rate_of(target) = rate;
        spec.tcdm = {kernels::kDataBase, kernels::kDataBase + built.data_bytes};
        if (target == fault::Target::kInstr) {
          spec.text = {built.program.base,
                       built.program.base + built.program.size_bytes()};
        }
        fault::FaultInjector inj(spec);

        exec::IssBackend backend(&core);
        integrity::CheckedRunConfig rc;
        rc.rollback = false;
        rc.watchdog_cycles = rrm::kDefaultCampaignWatchdog;
        integrity::CheckedRun run(&backend, &mem, &built, rc);
        run.set_golden(golden);
        run.begin(input);
        inj.arm(&core, &mem);
        integrity::CheckedRun::State st;
        while ((st = run.step()) == integrity::CheckedRun::State::kBoundary) {
        }
        inj.disarm();
        flips += inj.flips();
        if (st == integrity::CheckedRun::State::kDone) {
          (run.outputs() == golden.outputs.back() ? clean : undet) += 1;
        } else if (run.integrity_failed()) {
          ++abft;
        } else if (run.last_result().exit == iss::RunResult::Exit::kWatchdog ||
                   run.last_result().exit == iss::RunResult::Exit::kMaxInstrs) {
          ++wdog;
        } else {
          ++trap;
        }
        ++net_index;
      }
      cov.add_row({fault::target_name(target), fmt_double(rate, 5),
                   std::to_string(flips), std::to_string(clean), std::to_string(abft),
                   std::to_string(trap), std::to_string(wdog), std::to_string(undet)});
    }
  }
  std::printf("%s\n", cov.to_string().c_str());

  // Determinism: the same seed must reproduce the same campaign bit-exactly.
  rrm::Request det = base;
  det.fault.rate_of(fault::Target::kInstr) = 1e-4;
  det.fault.rate_of(fault::Target::kTcdm) = 1e-4;
  const auto a = eng.run_suite(OptLevel::kInputTiling, det);
  const auto b = eng.run_suite(OptLevel::kInputTiling, det);
  bool same = a.faults_injected == b.faults_injected && a.total_cycles == b.total_cycles &&
              a.nets_completed == b.nets_completed && a.nets_degraded == b.nets_degraded;
  for (size_t i = 0; same && i < a.nets.size(); ++i) {
    same = a.nets[i].completed == b.nets[i].completed &&
           a.nets[i].cycles == b.nets[i].cycles &&
           a.nets[i].decision_flip_rate == b.nets[i].decision_flip_rate;
  }
  std::printf("same-seed campaign reproduces bit-exactly: %s\n", same ? "yes" : "NO");
  return same ? 0 : 1;
}
