// Regenerates Fig. 2: tanh mean-square error of the piecewise-linear
// approximation over interpolation range x number of intervals, under Q3.12
// quantization. Prints the MSE grid (log10), the paper's chosen design
// point, and a chord-vs-least-squares fit ablation.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_io.h"
#include "src/activation/pla.h"
#include "src/common/table.h"
#include "src/impl_model/impl_model.h"

using namespace rnnasip;
using activation::ActFunc;
using activation::FitMethod;
using activation::PlaSpec;
using activation::PlaTable;

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::parse(argc, argv);
  std::printf("======================================================================\n");
  std::printf("Fig. 2 — tanh MSE vs interpolation range and #intervals (Q3.12)\n");
  std::printf("Paper design point: range ±4, 32 intervals -> MSE 9.81e-7, max ±3.8e-4\n");
  std::printf("======================================================================\n\n");

  const std::vector<double> ranges = {0.5, 1.0, 2.0, 4.0, 8.0};
  const std::vector<int> intervals = {2, 4, 8, 16, 32, 64, 128};

  std::vector<std::string> header = {"range\\M"};
  for (int m : intervals) header.push_back(std::to_string(m));
  Table grid(header);
  for (double r : ranges) {
    std::vector<std::string> row = {fmt_double(r, 1)};
    for (int m : intervals) {
      const auto spec = PlaSpec::for_range(ActFunc::kTanh, r, m);
      const auto stats = activation::measure_error(PlaTable::build(spec));
      row.push_back(fmt_double(std::log10(stats.mse()), 2));
    }
    grid.add_row(std::move(row));
  }
  std::printf("log10(MSE) grid (chord fit, as in hardware):\n%s\n",
              grid.to_string().c_str());

  // The design point, both fits, plus sigmoid with its wider range.
  Table pts({"function", "range", "M", "fit", "MSE", "max |err|"});
  struct Pt {
    ActFunc f;
    int log2, m;
    FitMethod fit;
    const char* fname;
    const char* fitname;
  };
  const Pt pts_list[] = {
      {ActFunc::kTanh, 9, 32, FitMethod::kChord, "tanh", "chord"},
      {ActFunc::kTanh, 9, 32, FitMethod::kLeastSquares, "tanh", "lsq"},
      {ActFunc::kTanh, 9, 64, FitMethod::kChord, "tanh", "chord"},
      {ActFunc::kSigmoid, 10, 32, FitMethod::kChord, "sig", "chord"},
      {ActFunc::kSigmoid, 10, 32, FitMethod::kLeastSquares, "sig", "lsq"},
  };
  for (const auto& p : pts_list) {
    const auto stats = activation::measure_error(
        PlaTable::build({p.f, p.log2, p.m, q3_12, p.fit}));
    const double range =
        static_cast<double>(p.m) * static_cast<double>(1 << p.log2) / 4096.0;
    pts.add_row({p.fname, fmt_double(range, 1), std::to_string(p.m), p.fitname,
                 fmt_sci(stats.mse(), 2), fmt_sci(stats.max_abs_error(), 2)});
  }
  std::printf("Design points (paper: tanh ±4 / 32 -> MSE 9.81e-7, max 3.8e-4):\n%s\n",
              pts.to_string().c_str());

  // Area/accuracy trade of the LUT depth (the axis Fig. 2 implies): the
  // paper's M = 32 sits where MSE flattens while the unit stays ~1.7 kGE.
  impl_model::AreaModel area;
  Table at({"M", "tanh MSE", "act unit kGE", "extension kGE", "core overhead"});
  for (int m : {8, 16, 32, 64, 128}) {
    const auto stats =
        activation::measure_error(PlaTable::build(PlaSpec::for_range(ActFunc::kTanh, 4.0, m)));
    const double ext = area.extension_kge_with_intervals(m);
    at.add_row({std::to_string(m), fmt_sci(stats.mse(), 1), fmt_double(area.act_unit_kge(m), 2),
                fmt_double(ext, 2),
                fmt_double(100.0 * ext / (area.baseline_core_kge + ext), 1) + "%"});
  }
  std::printf("LUT depth vs area (paper design point M = 32, 2.3 kGE, 3.4%%):\n%s\n",
              at.to_string().c_str());

  const auto chosen = activation::measure_error(
      PlaTable::build({ActFunc::kTanh, 9, 32, q3_12, FitMethod::kChord}));
  std::printf("Chosen HW configuration (tanh, ±4, 32 intervals, 16-bit LUT entries):\n");
  std::printf("  measured: MSE %.3e, max |err| %.3e, LUT cost %d bits/function\n",
              chosen.mse(), chosen.max_abs_error(),
              PlaTable::build({ActFunc::kTanh, 9, 32}).lut_bits());
  std::printf("  paper   : MSE 9.81e-07, max |err| 3.8e-04\n");

  if (io.json_enabled()) {
    obs::Json data = obs::Json::object();
    obs::Json grid_json = obs::Json::array();
    for (double r : ranges) {
      for (int m : intervals) {
        const auto spec = PlaSpec::for_range(ActFunc::kTanh, r, m);
        const auto stats = activation::measure_error(PlaTable::build(spec));
        obs::Json cell = obs::Json::object();
        cell.set("range", r);
        cell.set("intervals", m);
        cell.set("mse", stats.mse());
        cell.set("max_abs_error", stats.max_abs_error());
        grid_json.push(std::move(cell));
      }
    }
    data.set("grid", std::move(grid_json));
    obs::Json design = obs::Json::object();
    design.set("mse", chosen.mse());
    design.set("max_abs_error", chosen.max_abs_error());
    design.set("lut_bits", PlaTable::build({ActFunc::kTanh, 9, 32}).lut_bits());
    data.set("design_point", std::move(design));
    io.write_json("fig2", std::move(data));
  }
  return 0;
}
