// Regenerates Fig. 3: per-network speedup vs the RV32IMC baseline for every
// optimization level, in the paper's network order, plus the Sec. III-D
// tanh/sig ablation on the LSTM networks.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_io.h"
#include "src/common/table.h"
#include "src/rrm/engine.h"

using namespace rnnasip;
using kernels::OptLevel;

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::parse(argc, argv);
  std::printf("=====================================================================\n");
  std::printf("Fig. 3 — per-network speedup vs RISC-V IMC baseline\n");
  std::printf("Paper final column (level e): avg 15.0x; small nets [3],[33] lowest;\n");
  std::printf("large FC DQNs ([9],[11],[17]) highest; LSTMs gain from tanh/sig HW.\n");
  std::printf("=====================================================================\n\n");

  rrm::Engine::Config cfg;
  cfg.seed = io.seed(cfg.seed);
  cfg.backend = io.backend();
  rrm::Engine eng(cfg);
  rrm::Request proto;
  proto.verify = true;

  std::map<OptLevel, rrm::SuiteResult> results;
  for (auto level : kernels::kAllOptLevels) results.emplace(level, eng.run_suite(level, proto));

  Table t({"network", "ref", "type", "b (+Xpulp)", "c (+OutFM/act)", "d (+pl.sdot)",
           "e (+InFM)"});
  double sum_e = 0;
  const auto& base = results.at(OptLevel::kBaseline);
  for (size_t i = 0; i < base.nets.size(); ++i) {
    const auto& def = rrm::rrm_suite()[i];
    std::vector<std::string> row = {def.name, def.reference, def.type};
    for (auto level : {OptLevel::kXpulpSimd, OptLevel::kOutputTiling,
                       OptLevel::kLoadCompute, OptLevel::kInputTiling}) {
      const double s = static_cast<double>(base.nets[i].cycles) /
                       static_cast<double>(results.at(level).nets[i].cycles);
      row.push_back(fmt_double(s, 1));
      if (level == OptLevel::kInputTiling) sum_e += s;
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Average final speedup over networks: %.1fx (paper avg bar: ~16.7x;\n",
              sum_e / static_cast<double>(base.nets.size()));
  std::printf("cycle-weighted suite speedup: %.1fx, paper Table I: 15.0x)\n\n",
              static_cast<double>(base.total_cycles) /
                  static_cast<double>(results.at(OptLevel::kInputTiling).total_cycles));

  // ---- Sec. III-D ablation: tanh/sig share within the LSTM networks ----
  std::printf("tanh/sig ablation on the LSTM networks (paper Sec. III-D:\n");
  std::printf("activations are 10.3%% [13] and 33.6%% [14] of SW cycles; the HW\n");
  std::printf("instructions cut LSTM cycles 51.2k -> 44.5k = 13.0%%):\n\n");
  Table abl({"network", "SW act kcyc (lvl b)", "lvl b kcyc", "share", "lvl c act kcyc"});
  obs::Json abl_json = obs::Json::array();
  for (const char* name : {"challita17", "naparstek17"}) {
    // SW activation cycles: measured exactly by the observability layer —
    // the act_tanh/act_sig regions attribute every cycle spent inside the
    // generated routines (including their load-use stalls).
    rrm::Request req_b;
    req_b.network = name;
    req_b.level = OptLevel::kXpulpSimd;
    req_b.observe = true;
    rrm::Request req_c;
    req_c.network = name;
    req_c.level = OptLevel::kOutputTiling;
    // The hw-act column reads per-opcode ExecStats, which only the
    // interpreter collects; observe routes this request to the ISS on any
    // backend instead of silently reading zeros from the translated path.
    req_c.observe = true;
    const auto rb = eng.run(req_b).result;
    const auto rc = eng.run(req_c).result;
    uint64_t sw_act_cycles = 0;
    const auto inc = rb.obs->inclusive();
    for (size_t r = 0; r < rb.obs->map.size(); ++r) {
      const auto& d = rb.obs->map.defs()[r];
      if (d.name == "act_tanh" || d.name == "act_sig") sw_act_cycles += inc[r].cycles;
    }
    const double sw_act_kcyc = static_cast<double>(sw_act_cycles) / 1000.0;
    double hw_act_kcyc = 0;
    const auto& opc = rc.stats.by_opcode();
    for (auto op : {isa::Opcode::kPlTanh, isa::Opcode::kPlSig}) {
      if (auto it = opc.find(op); it != opc.end())
        hw_act_kcyc += static_cast<double>(it->second.cycles) / 1000.0;
    }
    abl.add_row({name, fmt_double(sw_act_kcyc, 1),
                 fmt_double(static_cast<double>(rb.cycles) / 1000.0, 1),
                 fmt_double(100.0 * sw_act_kcyc * 1000.0 / rb.cycles, 1) + "%",
                 fmt_double(hw_act_kcyc, 2)});
    obs::Json e = obs::Json::object();
    e.set("network", std::string(name));
    e.set("sw_act_cycles", sw_act_cycles);
    e.set("level_b_cycles", rb.cycles);
    e.set("sw_act_share",
          static_cast<double>(sw_act_cycles) / static_cast<double>(rb.cycles));
    e.set("hw_act_cycles", static_cast<uint64_t>(hw_act_kcyc * 1000.0));
    abl_json.push(std::move(e));
  }
  std::printf("%s\n", abl.to_string().c_str());

  bool all_ok = true;
  for (const auto& [level, s] : results) all_ok = all_ok && s.all_verified;
  std::printf("All runs verified bit-exact against the golden model: %s\n",
              all_ok ? "yes" : "NO");

  if (io.json_enabled()) {
    obs::Json data = obs::Json::object();
    obs::Json nets = obs::Json::array();
    for (size_t i = 0; i < base.nets.size(); ++i) {
      const auto& def = rrm::rrm_suite()[i];
      obs::Json e = obs::Json::object();
      e.set("name", def.name);
      e.set("type", def.type);
      obs::Json speedups = obs::Json::object();
      for (auto level : {OptLevel::kXpulpSimd, OptLevel::kOutputTiling,
                         OptLevel::kLoadCompute, OptLevel::kInputTiling}) {
        speedups.set(std::string(1, kernels::opt_level_letter(level)),
                     static_cast<double>(base.nets[i].cycles) /
                         static_cast<double>(results.at(level).nets[i].cycles));
      }
      e.set("speedup", std::move(speedups));
      nets.push(std::move(e));
    }
    data.set("networks", std::move(nets));
    data.set("act_ablation", std::move(abl_json));
    data.set("all_verified", all_ok);
    io.write_json("fig3", std::move(data));
  }
  return all_ok ? 0 : 1;
}
