// Regenerates Fig. 3: per-network speedup vs the RV32IMC baseline for every
// optimization level, in the paper's network order, plus the Sec. III-D
// tanh/sig ablation on the LSTM networks.
#include <cstdio>
#include <map>
#include <vector>

#include "src/common/table.h"
#include "src/rrm/suite.h"

using namespace rnnasip;
using kernels::OptLevel;

int main() {
  std::printf("=====================================================================\n");
  std::printf("Fig. 3 — per-network speedup vs RISC-V IMC baseline\n");
  std::printf("Paper final column (level e): avg 15.0x; small nets [3],[33] lowest;\n");
  std::printf("large FC DQNs ([9],[11],[17]) highest; LSTMs gain from tanh/sig HW.\n");
  std::printf("=====================================================================\n\n");

  rrm::RunOptions opt;
  opt.verify = true;

  std::map<OptLevel, rrm::SuiteResult> results;
  for (auto level : kernels::kAllOptLevels) results.emplace(level, rrm::run_suite(level, opt));

  Table t({"network", "ref", "type", "b (+Xpulp)", "c (+OutFM/act)", "d (+pl.sdot)",
           "e (+InFM)"});
  double sum_e = 0;
  const auto& base = results.at(OptLevel::kBaseline);
  for (size_t i = 0; i < base.nets.size(); ++i) {
    const auto& def = rrm::rrm_suite()[i];
    std::vector<std::string> row = {def.name, def.reference, def.type};
    for (auto level : {OptLevel::kXpulpSimd, OptLevel::kOutputTiling,
                       OptLevel::kLoadCompute, OptLevel::kInputTiling}) {
      const double s = static_cast<double>(base.nets[i].cycles) /
                       static_cast<double>(results.at(level).nets[i].cycles);
      row.push_back(fmt_double(s, 1));
      if (level == OptLevel::kInputTiling) sum_e += s;
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Average final speedup over networks: %.1fx (paper avg bar: ~16.7x;\n",
              sum_e / static_cast<double>(base.nets.size()));
  std::printf("cycle-weighted suite speedup: %.1fx, paper Table I: 15.0x)\n\n",
              static_cast<double>(base.total_cycles) /
                  static_cast<double>(results.at(OptLevel::kInputTiling).total_cycles));

  // ---- Sec. III-D ablation: tanh/sig share within the LSTM networks ----
  std::printf("tanh/sig ablation on the LSTM networks (paper Sec. III-D:\n");
  std::printf("activations are 10.3%% [13] and 33.6%% [14] of SW cycles; the HW\n");
  std::printf("instructions cut LSTM cycles 51.2k -> 44.5k = 13.0%%):\n\n");
  Table abl({"network", "SW act kcyc (lvl b)", "lvl b kcyc", "share", "lvl c act kcyc"});
  for (const char* name : {"challita17", "naparstek17"}) {
    rrm::RrmNetwork net(rrm::find_network(name));
    const auto rb = rrm::run_network(net, OptLevel::kXpulpSimd, opt);
    const auto rc = rrm::run_network(net, OptLevel::kOutputTiling, opt);
    // SW activation cycles: everything spent inside the routines — count the
    // routine-only opcodes (jal calls plus the routine body mix is folded
    // into generic opcodes, so measure via a separate run with zero-size
    // estimate: jal count x ~27 cycles/call).
    uint64_t calls = 0;
    const auto& ops = rb.stats.by_opcode();
    if (auto it = ops.find(isa::Opcode::kJal); it != ops.end()) calls = it->second.instrs;
    const double sw_act_kcyc = static_cast<double>(calls) * 27.0 / 1000.0;
    double hw_act_kcyc = 0;
    const auto& opc = rc.stats.by_opcode();
    for (auto op : {isa::Opcode::kPlTanh, isa::Opcode::kPlSig}) {
      if (auto it = opc.find(op); it != opc.end())
        hw_act_kcyc += static_cast<double>(it->second.cycles) / 1000.0;
    }
    abl.add_row({name, fmt_double(sw_act_kcyc, 1),
                 fmt_double(static_cast<double>(rb.cycles) / 1000.0, 1),
                 fmt_double(100.0 * sw_act_kcyc * 1000.0 / rb.cycles, 1) + "%",
                 fmt_double(hw_act_kcyc, 2)});
  }
  std::printf("%s\n", abl.to_string().c_str());

  bool all_ok = true;
  for (const auto& [level, s] : results) all_ok = all_ok && s.all_verified;
  std::printf("All runs verified bit-exact against the golden model: %s\n",
              all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
