// Extension ablation: the INT8 path ("even eight and fewer bits", Sec. II-A
// [27]). pv.sdotsp.b retires 4 MACs/cycle vs pv.sdotsp.h's 2; this bench
// reports the throughput gain and the quantization cost on a DQN-sized
// layer — the trade the paper avoids by choosing Q3.12 ("does not require
// fixed-point aware retraining").
#include <cmath>
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/iss/core.h"
#include "src/kernels/fc.h"
#include "src/kernels/fc8.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"

using namespace rnnasip;

namespace {

uint64_t cycles16(const nn::FcParamsQ& fc, const std::vector<int16_t>& x,
                  kernels::OptLevel level) {
  iss::Memory mem(16u << 20);
  iss::Core core(&mem);
  kernels::DeviceAllocator alloc(&mem);
  const uint32_t xa = alloc.alloc(static_cast<uint32_t>(2 * x.size()), 4);
  const uint32_t oa = alloc.alloc(static_cast<uint32_t>(2 * fc.b.size()), 4);
  const auto L = kernels::alloc_fc(alloc, fc, xa, oa);
  assembler::ProgramBuilder b(kernels::kTextBase);
  kernels::FcEmitOptions fo;
  fo.level = level;
  kernels::emit_fc(b, L, fo);
  b.ebreak();
  const auto prog = b.build();
  core.load_program(prog);
  mem.write_halves(xa, x);
  core.reset(prog.base);
  RNNASIP_CHECK(core.run().ok());
  return core.stats().total_cycles();
}

uint64_t cycles8(const nn::FcParams8& fc, const std::vector<int8_t>& x) {
  iss::Memory mem(16u << 20);
  iss::Core core(&mem);
  kernels::DeviceAllocator alloc(&mem);
  const uint32_t xa = alloc.alloc(static_cast<uint32_t>(x.size()) + 4, 4);
  const uint32_t oa = alloc.alloc(static_cast<uint32_t>(fc.b.size()) + 4, 4);
  const auto L = kernels::alloc_fc8(alloc, fc, xa, oa);
  assembler::ProgramBuilder b(kernels::kTextBase);
  kernels::emit_fc8(b, L);
  b.ebreak();
  const auto prog = b.build();
  core.load_program(prog);
  std::vector<uint8_t> xb(x.size());
  for (size_t i = 0; i < x.size(); ++i) xb[i] = static_cast<uint8_t>(x[i]);
  mem.write_block(xa, xb);
  core.reset(prog.base);
  RNNASIP_CHECK(core.run().ok());
  return core.stats().total_cycles();
}

}  // namespace

int main() {
  std::printf("=====================================================================\n");
  std::printf("Ablation — INT8 (Q1.6, pv.sdotsp.b) vs INT16 (Q3.12, pv.sdotsp.h)\n");
  std::printf("=====================================================================\n\n");

  Rng rng(0x81);
  Table t({"layer", "MACs", "c16 cyc/MAC", "int8 cyc/MAC", "speedup", "max err 16",
           "max err 8"});
  struct Shape {
    int cin, cout;
  };
  for (const auto& s : {Shape{64, 16}, Shape{160, 64}, Shape{320, 64}, Shape{600, 100}}) {
    const auto fc_f = nn::random_fc(rng, s.cin, s.cout, nn::ActKind::kNone, 0.15f);
    const auto x_f = nn::random_vector(rng, s.cin, 0.9f);
    const auto ref = nn::fc_forward(fc_f, x_f);

    const uint64_t c16 = cycles16(nn::quantize_fc(fc_f), nn::quantize_vector(x_f),
                                  kernels::OptLevel::kOutputTiling);
    const uint64_t c8 = cycles8(nn::quantize_fc8(fc_f), nn::quantize_vector8(x_f));

    const auto o16 = nn::fc_forward_fixp(
        nn::quantize_fc(fc_f), nn::quantize_vector(x_f),
        activation::PlaTable::build({activation::ActFunc::kTanh, 9, 32}),
        activation::PlaTable::build({activation::ActFunc::kSigmoid, 10, 32}));
    const auto o8 = nn::fc_forward_fixp8(nn::quantize_fc8(fc_f), nn::quantize_vector8(x_f));
    double e16 = 0, e8 = 0;
    for (size_t i = 0; i < ref.size(); ++i) {
      e16 = std::max(e16, std::abs(dequantize(o16[i]) - static_cast<double>(ref[i])));
      e8 = std::max(e8,
                    std::abs(dequantize(o8[i], nn::q1_6) - static_cast<double>(ref[i])));
    }

    const uint64_t macs = static_cast<uint64_t>(s.cin) * s.cout;
    t.add_row({std::to_string(s.cin) + "x" + std::to_string(s.cout),
               fmt_count(macs), fmt_double(static_cast<double>(c16) / macs, 3),
               fmt_double(static_cast<double>(c8) / macs, 3),
               fmt_double(static_cast<double>(c16) / c8, 2) + "x", fmt_double(e16, 4),
               fmt_double(e8, 3)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("INT8 roughly doubles throughput (4 MACs per sdot) but adds an order\n");
  std::printf("of magnitude of quantization error — without retraining, exactly the\n");
  std::printf("cost the paper's Q3.12 choice avoids (Sec. III-A). With QAT [27] the\n");
  std::printf("int8 path would make the extended core a ~1.2 GMAC/s engine.\n");
  return 0;
}
