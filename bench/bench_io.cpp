#include "bench/bench_io.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "src/common/check.h"

namespace rnnasip::bench {

BenchIo BenchIo::parse(int& argc, char** argv) {
  BenchIo io;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::strcmp(argv[r], "--json") == 0 && r + 1 < argc) {
      io.path_ = argv[++r];
    } else if (std::strcmp(argv[r], "--trace") == 0 && r + 1 < argc) {
      io.trace_path_ = argv[++r];
    } else if (std::strcmp(argv[r], "--flamegraph") == 0 && r + 1 < argc) {
      io.flamegraph_path_ = argv[++r];
    } else if (std::strcmp(argv[r], "--seed") == 0 && r + 1 < argc) {
      io.seed_ = std::strtoull(argv[++r], nullptr, 0);
      io.has_seed_ = true;
    } else if (std::strcmp(argv[r], "--sample-every") == 0 && r + 1 < argc) {
      io.sample_every_ = std::strtoull(argv[++r], nullptr, 0);
      if (io.sample_every_ == 0) io.sample_every_ = 1;
    } else if (std::strcmp(argv[r], "--backend") == 0 && r + 1 < argc) {
      const auto parsed = parse_backend(argv[++r]);
      RNNASIP_CHECK_MSG(parsed.has_value(),
                        "unknown --backend (want iss|translated): " << argv[r]);
      io.backend_ = *parsed;
      io.has_backend_ = true;
    } else if (std::strcmp(argv[r], "--telemetry") == 0) {
      io.telemetry_ = true;
    } else if (std::strcmp(argv[r], "--observe") == 0) {
      io.observe_ = true;
    } else if (std::strcmp(argv[r], "--wall-time") == 0) {
      io.wall_time_ = true;
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return io;
}

bool BenchIo::write_json(const std::string& name, obs::Json data) const {
  if (path_.empty()) return false;
  obs::Json root = obs::Json::object();
  root.set("schema_version", kBenchSchemaVersion);
  root.set("bench", name);
  // Additive: only explicit --backend runs carry the field, so default
  // envelopes stay byte-identical to the pre-backend schema.
  if (has_backend_) root.set("backend", backend_name(backend_));
  root.set("data", std::move(data));
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  RNNASIP_CHECK_MSG(out.good(), "cannot open " << path_ << " for writing");
  const std::string s = root.dump_pretty();
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
  out.close();
  RNNASIP_CHECK_MSG(out.good(), "short write to " << path_);
  std::fprintf(stderr, "wrote %s\n", path_.c_str());
  return true;
}

void BenchIo::write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  RNNASIP_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.close();
  RNNASIP_CHECK_MSG(out.good(), "short write to " << path);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

obs::Json stats_to_json(const iss::ExecStats& stats) {
  obs::Json j = obs::Json::object();
  j.set("cycles", stats.total_cycles());
  j.set("instrs", stats.total_instrs());
  j.set("macs", stats.total_macs());
  obs::Json stalls = obs::Json::object();
  for (size_t s = 0; s < iss::kStallCauseCount; ++s) {
    const auto cause = static_cast<iss::StallCause>(s);
    stalls.set(iss::stall_cause_name(cause), stats.stall_cycles(cause));
  }
  j.set("stall_cycles", std::move(stalls));
  j.set("dual_issue_saved", stats.dual_issue_saved());
  j.set("hwloop_overhead_cycles", stats.hwloop_overhead_cycles());
  j.set("traps", stats.traps());
  j.set("watchdogs", stats.watchdogs());
  j.set("identity_holds", stats.identity_holds());
  obs::Json groups = obs::Json::object();
  for (const auto& [name, st] : stats.by_display_group()) {
    obs::Json g = obs::Json::object();
    g.set("instrs", st.instrs);
    g.set("cycles", st.cycles);
    groups.set(name, std::move(g));
  }
  j.set("by_group", std::move(groups));
  return j;
}

obs::Json suite_to_json(const rrm::SuiteResult& suite) {
  obs::Json j = obs::Json::object();
  j.set("total_cycles", suite.total_cycles);
  j.set("total_instrs", suite.total_instrs);
  j.set("total_macs", suite.total_macs);
  j.set("all_verified", suite.all_verified);
  j.set("nets_completed", suite.nets_completed);
  j.set("nets_degraded", suite.nets_degraded);
  obs::Json nets = obs::Json::array();
  for (const auto& n : suite.nets) {
    obs::Json e = obs::Json::object();
    e.set("name", n.name);
    e.set("cycles", n.cycles);
    e.set("instrs", n.instrs);
    e.set("macs", n.nominal_macs);
    e.set("verified", n.verified);
    e.set("completed", n.completed);
    if (n.cycles) {
      e.set("mac_per_cycle",
            static_cast<double>(n.nominal_macs) / static_cast<double>(n.cycles));
    }
    nets.push(std::move(e));
  }
  j.set("networks", std::move(nets));
  j.set("stats", stats_to_json(suite.total));
  return j;
}

}  // namespace rnnasip::bench
