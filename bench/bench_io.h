// Shared I/O harness for the bench binaries.
//
// Every bench prints its human-readable tables to stdout as before; with
//   --json <path>
// it additionally writes a schema-versioned machine-readable envelope
//
//   {"schema_version": 1, "bench": "<name>", "data": {...}}
//
// to <path> (conventionally BENCH_<name>.json). The JSON body must be
// byte-identical across two runs with the same seed — so host wall-clock
// time is only included when --wall-time is passed explicitly.
#pragma once

#include <string>

#include "src/exec/backend.h"
#include "src/iss/stats.h"
#include "src/obs/json.h"
#include "src/rrm/suite.h"

namespace rnnasip::bench {

class BenchIo {
 public:
  /// Strip the harness flags (--json <path>, --wall-time, --observe,
  /// --trace <path>, --flamegraph <path>, --telemetry, --sample-every <n>,
  /// --seed <n>, --backend <iss|translated>) from argv, leaving the
  /// bench's own flags in place. argc/argv are edited in place.
  static BenchIo parse(int& argc, char** argv);

  bool json_enabled() const { return !path_.empty(); }
  bool wall_time() const { return wall_time_; }
  const std::string& path() const { return path_; }

  /// --observe: attach the region profiler / print per-region rollups.
  bool observe() const { return observe_; }
  /// --trace <path>: Perfetto timeline destination ("" when absent).
  const std::string& trace_path() const { return trace_path_; }
  bool trace_enabled() const { return !trace_path_.empty(); }
  /// --flamegraph <path>: collapsed-stack destination ("" when absent).
  /// Implies region observation, like --trace.
  const std::string& flamegraph_path() const { return flamegraph_path_; }
  bool flamegraph_enabled() const { return !flamegraph_path_.empty(); }
  /// --telemetry: serving benches attach request spans + metrics registry.
  bool telemetry() const { return telemetry_; }
  /// --sample-every <n>: span-timeline sampling stride (default 1 = all).
  uint64_t sample_every() const { return sample_every_; }
  /// --seed <n> (decimal or 0x hex), else `fallback`.
  uint64_t seed(uint64_t fallback) const { return has_seed_ ? seed_ : fallback; }
  bool has_seed() const { return has_seed_; }

  /// --backend <iss|translated>: execution backend for benches that run
  /// device programs (Engine/Cluster-based). Default kIss; the JSON
  /// envelope records the backend only when the flag was passed
  /// explicitly, keeping default-run envelopes byte-identical.
  ExecBackend backend() const { return backend_; }
  bool has_backend() const { return has_backend_; }

  /// Write `text` to `path` (any text artifact: collapsed stacks, traces).
  static void write_text(const std::string& path, const std::string& text);

  /// Write {"schema_version":..,"bench":name,"data":data} to path().
  /// No-op (returns false) when --json was not passed.
  bool write_json(const std::string& name, obs::Json data) const;

 private:
  std::string path_;
  std::string trace_path_;
  std::string flamegraph_path_;
  uint64_t seed_ = 0;
  uint64_t sample_every_ = 1;
  ExecBackend backend_ = ExecBackend::kIss;
  bool has_backend_ = false;
  bool has_seed_ = false;
  bool observe_ = false;
  bool wall_time_ = false;
  bool telemetry_ = false;
};

inline constexpr int kBenchSchemaVersion = 1;

/// ExecStats as JSON: totals, stall taxonomy, derived counters, and the
/// per-display-group opcode breakdown.
obs::Json stats_to_json(const iss::ExecStats& stats);

/// One suite run as JSON: per-network cycles/instrs/MACs/verified plus the
/// merged ExecStats breakdown.
obs::Json suite_to_json(const rrm::SuiteResult& suite);

}  // namespace rnnasip::bench
