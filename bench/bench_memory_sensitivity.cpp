// Ablation: sensitivity of the optimization stack to data-memory latency.
//
// The paper's core talks to a single-cycle TCDM; this bench adds wait
// states to every data access and re-measures the suite at each
// optimization level. The result quantifies an architectural dependency the
// paper leaves implicit: the fully-optimized kernels touch memory on nearly
// *every* cycle (pl.sdotsp folds a load into each MAC), so wait states
// dilute the extension speedup — from 15x at the paper's single-cycle
// scratchpad toward the
// compute-bound floor. The tightly-coupled memory is not an incidental
// detail of the platform; it is what lets the ISA extensions pay off.
#include <cstdio>

#include "src/common/table.h"
#include "src/rrm/suite.h"

using namespace rnnasip;
using kernels::OptLevel;

int main() {
  std::printf("=====================================================================\n");
  std::printf("Ablation — suite cycles vs data-memory wait states (paper: 0)\n");
  std::printf("=====================================================================\n\n");

  Table t({"wait states", "a kcyc", "e kcyc", "speedup e vs a", "b kcyc", "d kcyc"});
  for (uint32_t ws : {0u, 1u, 2u, 4u}) {
    rrm::RunOptions opt;
    opt.verify = false;
    opt.core_config.timing.mem_wait_states = ws;
    const auto a = rrm::run_suite(OptLevel::kBaseline, opt);
    const auto b = rrm::run_suite(OptLevel::kXpulpSimd, opt);
    const auto d = rrm::run_suite(OptLevel::kLoadCompute, opt);
    const auto e = rrm::run_suite(OptLevel::kInputTiling, opt);
    t.add_row({std::to_string(ws), fmt_count(a.total_cycles / 1000),
               fmt_count(e.total_cycles / 1000),
               fmt_double(static_cast<double>(a.total_cycles) / e.total_cycles, 1) + "x",
               fmt_count(b.total_cycles / 1000), fmt_count(d.total_cycles / 1000)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("The speedup shrinks with memory latency: the extended kernels make a\n");
  std::printf("memory access on ~90%% of cycles (the folded pl.sdotsp fetch) vs the\n");
  std::printf("baseline's ~45%%, so wait states hit them relatively harder. The\n");
  std::printf("single-cycle TCDM the paper assumes is a load-bearing design choice.\n");
  return 0;
}
