// Ablation: sensitivity of the optimization stack to data-memory latency.
//
// The paper's core talks to a single-cycle TCDM; this bench adds wait
// states to every data access and re-measures the suite at each
// optimization level. The result quantifies an architectural dependency the
// paper leaves implicit: the fully-optimized kernels touch memory on nearly
// *every* cycle (pl.sdotsp folds a load into each MAC), so wait states
// dilute the extension speedup — from 15x at the paper's single-cycle
// scratchpad toward the
// compute-bound floor. The tightly-coupled memory is not an incidental
// detail of the platform; it is what lets the ISA extensions pay off.
#include <cstdio>

#include "bench/bench_io.h"
#include "src/common/table.h"
#include "src/rrm/engine.h"

using namespace rnnasip;
using kernels::OptLevel;

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::parse(argc, argv);
  std::printf("=====================================================================\n");
  std::printf("Ablation — suite cycles vs data-memory wait states (paper: 0)\n");
  std::printf("=====================================================================\n\n");

  Table t({"wait states", "a kcyc", "e kcyc", "speedup e vs a", "b kcyc", "d kcyc"});
  obs::Json rows_json = obs::Json::array();
  for (uint32_t ws : {0u, 1u, 2u, 4u}) {
    rrm::Engine::Config cfg;
    cfg.seed = io.seed(cfg.seed);
    cfg.backend = io.backend();
    cfg.core_config.timing.mem_wait_states = ws;
    rrm::Engine eng(cfg);
    rrm::Request proto;
    proto.verify = false;
    const auto a = eng.run_suite(OptLevel::kBaseline, proto);
    const auto b = eng.run_suite(OptLevel::kXpulpSimd, proto);
    const auto d = eng.run_suite(OptLevel::kLoadCompute, proto);
    const auto e = eng.run_suite(OptLevel::kInputTiling, proto);
    t.add_row({std::to_string(ws), fmt_count(a.total_cycles / 1000),
               fmt_count(e.total_cycles / 1000),
               fmt_double(static_cast<double>(a.total_cycles) / e.total_cycles, 1) + "x",
               fmt_count(b.total_cycles / 1000), fmt_count(d.total_cycles / 1000)});
    obs::Json r = obs::Json::object();
    r.set("wait_states", ws);
    r.set("a_cycles", a.total_cycles);
    r.set("b_cycles", b.total_cycles);
    r.set("d_cycles", d.total_cycles);
    r.set("e_cycles", e.total_cycles);
    // The stall taxonomy shows exactly where the wait states land.
    r.set("e_mem_wait_cycles", e.total.stall_cycles(iss::StallCause::kMemWait));
    rows_json.push(std::move(r));
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("The speedup shrinks with memory latency: the extended kernels make a\n");
  std::printf("memory access on ~90%% of cycles (the folded pl.sdotsp fetch) vs the\n");
  std::printf("baseline's ~45%%, so wait states hit them relatively harder. The\n");
  std::printf("single-cycle TCDM the paper assumes is a load-bearing design choice.\n");

  if (io.json_enabled()) {
    obs::Json data = obs::Json::object();
    data.set("rows", std::move(rows_json));
    io.write_json("memory_sensitivity", std::move(data));
  }
  return 0;
}
