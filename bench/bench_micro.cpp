// Micro-benchmarks of the simulator infrastructure itself (google-benchmark):
// decoder throughput, ISS simulation speed, kernel generation cost, and PLA
// evaluation. These characterize the tooling, not the paper's results.
#include <benchmark/benchmark.h>

#include "src/activation/pla.h"
#include "src/common/rng.h"
#include "src/isa/isa.h"
#include "src/iss/core.h"
#include "src/kernels/network.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"
#include "src/rrm/engine.h"

using namespace rnnasip;

namespace {

void BM_Decode32(benchmark::State& state) {
  // A realistic instruction word mix.
  std::vector<uint32_t> words;
  assembler::ProgramBuilder b;
  auto end = b.make_label();
  b.li(isa::kA0, 0x10000);
  b.lp_setupi(0, 16, end);
  b.p_lw(isa::kA1, 4, isa::kA0);
  b.pv_sdotsp_h(isa::kA2, isa::kA1, isa::kA1);
  b.bind(end);
  b.pl_tanh(isa::kA3, isa::kA2);
  b.add(isa::kA4, isa::kA3, isa::kA2);
  b.ebreak();
  words = b.build().encode_words();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::decode(words[i]));
    i = (i + 1) % words.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Decode32);

void BM_IssSimulationSpeed(benchmark::State& state) {
  // Instructions simulated per second on a dense matvec kernel.
  iss::Memory mem(8u << 20);
  iss::Core core(&mem);
  Rng rng(1);
  const auto fc = nn::quantize_fc(nn::random_fc(rng, 200, 80, nn::ActKind::kNone));
  kernels::NetworkProgramBuilder nb(&mem, kernels::OptLevel::kInputTiling,
                                    core.tanh_table(), core.sig_table());
  nb.add_fc(fc);
  const auto net = nb.finalize();
  core.load_program(net.program);
  const auto x = nn::quantize_vector(nn::random_vector(rng, 200, 1.0f));
  mem.write_halves(net.input_addr, x);
  uint64_t instrs = 0;
  for (auto _ : state) {
    core.reset(net.program.base);
    const auto r = core.run();
    if (!r.ok()) {
      state.SkipWithError(r.describe().c_str());
      break;
    }
    instrs += r.instrs;
  }
  state.SetItemsProcessed(static_cast<int64_t>(instrs));
  state.SetLabel("simulated instructions/s");
}
BENCHMARK(BM_IssSimulationSpeed);

void BM_KernelGeneration(benchmark::State& state) {
  // Cost of building a full network program (allocation + emission + fixups).
  Rng rng(2);
  const auto fc1 = nn::quantize_fc(nn::random_fc(rng, 160, 500, nn::ActKind::kReLU));
  const auto fc2 = nn::quantize_fc(nn::random_fc(rng, 500, 300, nn::ActKind::kReLU));
  const auto fc3 = nn::quantize_fc(nn::random_fc(rng, 300, 64, nn::ActKind::kNone));
  iss::Memory mem(16u << 20);
  iss::Core core(&mem);
  for (auto _ : state) {
    kernels::NetworkProgramBuilder nb(&mem, kernels::OptLevel::kInputTiling,
                                      core.tanh_table(), core.sig_table());
    nb.add_fc(fc1);
    nb.add_fc(fc2);
    nb.add_fc(fc3);
    benchmark::DoNotOptimize(nb.finalize());
  }
}
BENCHMARK(BM_KernelGeneration);

void BM_PlaEval(benchmark::State& state) {
  const auto tbl = activation::PlaTable::build({activation::ActFunc::kTanh, 9, 32});
  int32_t x = -32768;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tbl.eval_raw(x));
    x = (x + 7) & 0xFFFF;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlaEval);

void BM_GoldenLstmStep(benchmark::State& state) {
  Rng rng(3);
  const auto lstm = nn::quantize_lstm(nn::random_lstm(rng, 32, 64, 0.3f));
  const auto tt = activation::PlaTable::build({activation::ActFunc::kTanh, 9, 32});
  const auto st = activation::PlaTable::build({activation::ActFunc::kSigmoid, 10, 32});
  nn::LstmStateQ s{nn::VectorQ(64, 0), nn::VectorQ(64, 0)};
  const auto x = nn::quantize_vector(nn::random_vector(rng, 32, 1.0f));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::lstm_step_fixp(lstm, x, s, tt, st));
  }
}
BENCHMARK(BM_GoldenLstmStep);

void BM_SuiteNetworkEndToEnd(benchmark::State& state) {
  // Full build+run+verify of one mid-size network (suite-runner unit cost).
  rrm::Engine eng;
  rrm::Request req;
  req.network = "nasir18";
  req.level = kernels::OptLevel::kLoadCompute;
  req.verify = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run(req));
  }
}
BENCHMARK(BM_SuiteNetworkEndToEnd);

}  // namespace

BENCHMARK_MAIN();
