// Design-choice ablation: the 16-bit Q-format (Sec. III-A: "Q3.12 offers a
// good compromise between accuracy/robustness and energy-efficiency/
// throughput, and most importantly does not require fixed-point aware
// retraining").
//
// Sweeps the integer/fraction split on an FC stack with realistic
// magnitudes. More fraction bits = finer resolution but a smaller headroom:
// formats with too little range saturate on the pre-activation sums, too
// little fraction is coarse. Cycles are identical for every format — the
// choice is purely numeric, which is the paper's point.
#include <cmath>
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"

using namespace rnnasip;

namespace {

/// Quantize FC params/input at `fmt`, run the fixed-point golden pipeline
/// (2 layers), and return the max abs error vs the float reference.
double stack_error(QFormat fmt, double input_scale) {
  Rng rng(0x0F0);
  const auto f1 = nn::random_fc(rng, 64, 32, nn::ActKind::kReLU, 0.25f);
  const auto f2 = nn::random_fc(rng, 32, 8, nn::ActKind::kNone, 0.25f);
  const auto xf = nn::random_vector(rng, 64, static_cast<float>(input_scale));

  auto quantize_fc_fmt = [&](const nn::FcParamsF& p) {
    nn::FcParamsQ q;
    q.w = nn::quantize_matrix(p.w, fmt);
    q.b = nn::quantize_vector(p.b, fmt);
    q.act = p.act;
    return q;
  };
  const auto tt = activation::PlaTable::build({activation::ActFunc::kTanh, 9, 32});
  const auto st = activation::PlaTable::build({activation::ActFunc::kSigmoid, 10, 32});

  const auto x_q = nn::quantize_vector(xf, fmt);
  const auto h_q =
      nn::fc_forward_fixp(quantize_fc_fmt(f1), x_q, tt, st, fmt.frac_bits);
  const auto o_q =
      nn::fc_forward_fixp(quantize_fc_fmt(f2), h_q, tt, st, fmt.frac_bits);

  const auto h_f = nn::fc_forward(f1, xf);
  const auto o_f = nn::fc_forward(f2, h_f);
  double err = 0;
  for (size_t i = 0; i < o_f.size(); ++i) {
    err = std::max(err, std::abs(dequantize(o_q[i], fmt) - static_cast<double>(o_f[i])));
  }
  return err;
}

}  // namespace

int main() {
  std::printf("=====================================================================\n");
  std::printf("Ablation — 16-bit Q-format sweep (paper operating point: Q3.12)\n");
  std::printf("=====================================================================\n\n");

  Table t({"format", "range", "resolution", "err (|x|<=1)", "err (|x|<=4)"});
  for (int ib : {1, 2, 3, 5, 7}) {
    const QFormat fmt{ib, 15 - ib};
    t.add_row({fmt.to_string(), "±" + fmt_double(-fmt.min_value(), 0),
               fmt_sci(fmt.resolution(), 1), fmt_sci(stack_error(fmt, 1.0), 1),
               fmt_sci(stack_error(fmt, 4.0), 1)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Every format costs the same cycles; only numerics differ. Q1.14 has\n");
  std::printf("the finest resolution but saturates once pre-activations exceed ±2;\n");
  std::printf("Q7.8 never saturates here but is ~16x coarser. Q3.12 (range ±8,\n");
  std::printf("resolution 2.4e-4) is the robust middle — the paper's choice, made\n");
  std::printf("without retraining the networks.\n");
  return 0;
}
