// Extension ablation: RNN-flavor flexibility. The paper's core argument for
// a programmable solution (Sec. I) is that RRM algorithms evolve faster
// than base-station silicon; this bench runs an LSTM and a GRU of equal
// hidden size through every optimization level and shows both enjoy the
// same speedup structure — the extensions are cell-agnostic.
#include <cstdio>
#include <map>

#include "bench/bench_io.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/iss/core.h"
#include "src/kernels/network.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"
#include "src/obs/profile.h"

using namespace rnnasip;
using kernels::OptLevel;

namespace {

struct CellRun {
  uint64_t cycles;
  uint64_t macs;
  /// Inclusive cycles of each gate region (gate_i, gate_r, ...), measured
  /// by the observability layer over all 4 timesteps.
  std::map<std::string, uint64_t> gate_cycles;
};

template <typename AddLayer>
CellRun run_cell(OptLevel level, int input, const AddLayer& add, int in_count) {
  iss::Memory mem(8u << 20);
  iss::Core core(&mem);
  kernels::NetworkProgramBuilder b(&mem, level, core.tanh_table(), core.sig_table());
  add(b);
  const auto net = b.finalize();
  core.load_program(net.program);
  kernels::reset_state(mem, net);
  obs::RegionProfiler prof(&net.regions, net.program.base);
  prof.attach(core);
  Rng rng(static_cast<uint64_t>(input) * 7 + 1);
  for (int t = 0; t < 4; ++t) {
    std::vector<int16_t> x(static_cast<size_t>(in_count));
    for (auto& v : x) v = static_cast<int16_t>(quantize(rng.next_in(-1.0, 1.0)));
    kernels::run_forward(core, mem, net, x);
  }
  prof.finish();
  CellRun r{core.stats().total_cycles(), net.nominal_macs * 4, {}};
  // Gate regions contain only their matvec, so self + nested kernel regions
  // == inclusive; sum self counters of each gate's subtree the simple way.
  obs::NetObservation ob;
  ob.map = net.regions;
  ob.counters = prof.counters();
  const auto inc = ob.inclusive();
  for (size_t i = 0; i < ob.map.size(); ++i) {
    const auto& d = ob.map.defs()[i];
    if (d.kind == obs::RegionKind::kGate) r.gate_cycles[d.name] = inc[i].cycles;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::parse(argc, argv);
  std::printf("=====================================================================\n");
  std::printf("RNN-flavor ablation — LSTM vs GRU across optimization levels\n");
  std::printf("(4 timesteps each; GRU has 3 gates to the LSTM's 4, so ~25%% fewer\n");
  std::printf("MACs at equal hidden size — the speedup structure must match)\n");
  std::printf("=====================================================================\n\n");

  const int m = 32, n = 64;
  Rng rng(0xF1A);
  const auto lstm = nn::quantize_lstm(nn::random_lstm(rng, m, n, 0.3f));
  const auto gru = nn::quantize_gru(nn::random_gru(rng, m, n, 0.3f));

  Table t({"level", "LSTM kcyc", "LSTM speedup", "GRU kcyc", "GRU speedup",
           "GRU/LSTM cyc"});
  uint64_t lstm_base = 0, gru_base = 0;
  obs::Json levels_json = obs::Json::array();
  for (auto level : kernels::kAllOptLevels) {
    const auto rl = run_cell(level, m, [&](kernels::NetworkProgramBuilder& b) {
      b.add_lstm(lstm);
    }, m);
    const auto rg = run_cell(level, m + 1, [&](kernels::NetworkProgramBuilder& b) {
      b.add_gru(gru);
    }, m);
    if (level == OptLevel::kBaseline) {
      lstm_base = rl.cycles;
      gru_base = rg.cycles;
    }
    t.add_row({std::string(1, kernels::opt_level_letter(level)),
               fmt_double(static_cast<double>(rl.cycles) / 1000, 1),
               fmt_double(static_cast<double>(lstm_base) / rl.cycles, 1) + "x",
               fmt_double(static_cast<double>(rg.cycles) / 1000, 1),
               fmt_double(static_cast<double>(gru_base) / rg.cycles, 1) + "x",
               fmt_double(static_cast<double>(rg.cycles) / rl.cycles, 2)});
    obs::Json l = obs::Json::object();
    l.set("level", std::string(1, kernels::opt_level_letter(level)));
    l.set("lstm_cycles", rl.cycles);
    l.set("gru_cycles", rg.cycles);
    auto gates = [](const CellRun& r) {
      obs::Json g = obs::Json::object();
      for (const auto& [name, cyc] : r.gate_cycles) g.set(name, cyc);
      return g;
    };
    l.set("lstm_gate_cycles", gates(rl));
    l.set("gru_gate_cycles", gates(rg));
    levels_json.push(std::move(l));
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("The GRU tracks the LSTM's speedup at every level and costs roughly\n");
  std::printf("its MAC ratio (3 gates + extra pointwise work vs 4 gates) — no\n");
  std::printf("hardware change was needed for the new cell.\n");

  if (io.json_enabled()) {
    obs::Json data = obs::Json::object();
    data.set("levels", std::move(levels_json));
    io.write_json("rnn_flavors", std::move(data));
  }
  return 0;
}
