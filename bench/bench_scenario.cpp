// City-scale closed-loop scenario sweep: graceful degradation under a
// flash crowd overlapping a per-cell fault storm.
//
// Three runs of the same scripted city (8 cells, correlated diurnal +
// Markov flash-crowd traffic, a >= 5x scripted surge on the stormed cell):
//
//   fault_free        the surge without SEUs — the WMMSE-relative quality
//                     baseline the storm run is judged against;
//   storm             the surge overlapping a fault storm that multiplies
//                     the ambient SEU rates on every execution serving the
//                     stormed cell, brownout controller on;
//   storm_no_brownout the same storm with the controller disabled — the
//                     comparison row showing what the value-ordered
//                     degradation buys.
//
// Acceptance (the ISSUE-10 robustness contract):
//   1. provable admission stays a guarantee: zero deadline misses among
//      admitted requests in every run, storm included;
//   2. zero silently corrupted decisions reach the environment (ABFT +
//      golden firewall; fold-collision escapes land in corrupted_blocked);
//   3. during the stress window the storm run's achieved/WMMSE ratio stays
//      >= 80% of the fault-free baseline's ratio over the same window;
//   4. the brownout controller recovers: every cell back at the normal
//      level within a bounded post-storm window, and no post-recovery TTI
//      degrades beyond the fault-free baseline's own worst level.
//
// Everything is byte-deterministic from one seed: CI runs the bench twice
// and byte-compares the envelopes, then diffs against the blessed
// baseline (bench/baselines/BENCH_scenario.json).
#include <algorithm>
#include <cstdio>
#include <string>

#include "src/common/check.h"
#include "src/fault/fault_injector.h"
#include "src/obs/json.h"
#include "src/scenario/engine.h"

#include "bench_io.h"

using namespace rnnasip;

namespace {

constexpr int kTtis = 96;
constexpr int kCells = 8;
constexpr int kStormCell = 2;
constexpr int kStormFrom = 32;
constexpr int kStormTo = 56;
constexpr double kSurgeMultiplier = 10.0;    // >= 5x flash crowd
constexpr double kStormMultiplier = 2000.0;  // SEU rate multiplier
/// Post-storm TTIs the controller gets to drain the backlog and walk every
/// cell back to normal: the provable de-escalation bound (3 x hold_evals)
/// plus a backlog-drain allowance.
constexpr int kRecoveryWindowTtis = 16;

scenario::ScenarioConfig make_config(uint64_t seed, bool faults, bool brownout) {
  scenario::ScenarioConfig cfg;
  cfg.city.cells = kCells;
  // Calm offered load sits near ~70% of the cluster's per-TTI execution
  // capacity; the 10x surge pushes the city well past it, so the storm
  // window is a genuine overload, not just a fault shower.
  cfg.city.base_rate = 2.0;
  cfg.city.surges = {{kStormCell, kStormFrom, kStormTo, kSurgeMultiplier}};
  cfg.brownout_cfg.shed_pressure = 1.25;
  if (faults) {
    cfg.city.storms = {{kStormCell, kStormFrom, kStormTo, kStormMultiplier}};
    // Ambient rates: the resilience bench's "low" point; the storm
    // multiplies them for executions serving the stormed cell.
    cfg.base_fault.rate_of(fault::Target::kTcdm) = 1e-7;
    cfg.base_fault.rate_of(fault::Target::kRegFile) = 5e-7;
    cfg.base_fault.rate_of(fault::Target::kPlaLut) = 5e-5;
  }
  cfg.ttis = kTtis;
  cfg.brownout = brownout;
  cfg.city.seed = derive_stream(seed, 100);
  cfg.base_fault.seed = seed;
  cfg.seed = seed;
  return cfg;
}

void print_run(const char* name, const scenario::ScenarioResult& r) {
  std::printf(
      "| %-17s | %5llu | %5llu | %4llu | %4llu | %4llu | %4llu | %5llu | "
      "%.4f | %.4f | %.4f | %3d |\n",
      name, static_cast<unsigned long long>(r.requests),
      static_cast<unsigned long long>(r.served),
      static_cast<unsigned long long>(r.shed_rejected),
      static_cast<unsigned long long>(r.admission_rejected),
      static_cast<unsigned long long>(r.exec_failures),
      static_cast<unsigned long long>(r.integrity_detections),
      static_cast<unsigned long long>(r.served_fallback), r.rate_ratio(),
      r.stress_ratio(), r.calm_ratio(), r.recovery_tti);
}

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::BenchIo::parse(argc, argv);
  const uint64_t seed = io.seed(0x5CE11A);

  std::printf("closed-loop scenario sweep: %d cells, %d TTIs, surge %.0fx on "
              "cell %d over [%d, %d), storm %gx SEU\n\n",
              kCells, kTtis, kSurgeMultiplier, kStormCell, kStormFrom, kStormTo,
              kStormMultiplier);
  std::printf("| run               |  reqs | servd | shed |  rej | fail |  det "
              "| fallb | ratio  | stress | calm   | rec |\n");
  std::printf("|-------------------|-------|-------|------|------|------|------"
              "|-------|--------|--------|--------|-----|\n");

  obs::Json rows = obs::Json::array();
  auto run_one = [&](const char* name, bool faults, bool brownout) {
    const scenario::ScenarioConfig cfg = make_config(seed, faults, brownout);
    scenario::ScenarioEngine engine(cfg);
    scenario::ScenarioResult r = engine.run();
    print_run(name, r);
    obs::Json row = obs::Json::object();
    row.set("run", std::string(name));
    row.set("result", scenario::scenario_result_to_json(cfg, r));
    rows.push(std::move(row));
    return r;
  };

  const scenario::ScenarioResult baseline = run_one("fault_free", false, true);
  const scenario::ScenarioResult storm = run_one("storm", true, true);
  const scenario::ScenarioResult blind = run_one("storm_no_brownout", true, false);
  std::printf("\n");

  // ---- Acceptance 1: provable admission stays a guarantee under storm.
  for (const scenario::ScenarioResult* r : {&baseline, &storm, &blind}) {
    RNNASIP_CHECK_MSG(r->deadline_misses_admitted == 0,
                      "admitted deadline misses: " << r->deadline_misses_admitted);
  }
  std::printf("admitted deadline misses across all runs: 0 (provable)\n");

  // ---- Acceptance 2: no silent corruption reaches the environment.
  for (const scenario::ScenarioResult* r : {&baseline, &storm, &blind}) {
    RNNASIP_CHECK_MSG(r->silent_to_env == 0,
                      "corrupted decisions reached the env: " << r->silent_to_env);
  }
  std::printf("silently corrupted decisions applied to the env: 0 "
              "(storm run blocked %llu at the golden firewall, "
              "%llu ABFT detections)\n",
              static_cast<unsigned long long>(storm.corrupted_blocked),
              static_cast<unsigned long long>(storm.integrity_detections));
  RNNASIP_CHECK_MSG(storm.integrity_detections > 0,
                    "the storm injected no detectable corruption — raise the "
                    "storm multiplier, the sweep is not stressing ABFT");

  // ---- Acceptance 3: graceful degradation — the storm run holds >= 80%
  // of the fault-free WMMSE-relative quality inside the stress window.
  RNNASIP_CHECK(baseline.stress_oracle > 0 && storm.stress_oracle > 0);
  const double retention = storm.stress_ratio() / baseline.stress_ratio();
  std::printf("stress-window quality: storm %.4f vs fault-free %.4f "
              "(retention %.3f, floor 0.80)\n",
              storm.stress_ratio(), baseline.stress_ratio(), retention);
  RNNASIP_CHECK_MSG(retention >= 0.80,
                    "storm quality retention below floor: " << retention);

  // ---- Acceptance 4: bounded brownout recovery to the baseline level mix.
  RNNASIP_CHECK_MSG(storm.recovery_tti >= 0, "brownout never recovered");
  const int recovery_ttis = storm.recovery_tti - storm.stress_end_tti;
  std::printf("brownout recovery: all cells normal %d TTIs after the storm "
              "(bound %d)\n", recovery_ttis, kRecoveryWindowTtis);
  RNNASIP_CHECK_MSG(recovery_ttis <= kRecoveryWindowTtis,
                    "recovery took " << recovery_ttis << " TTIs, bound "
                                     << kRecoveryWindowTtis);
  // "Restores the baseline level mix": within the bound every cell is back
  // at the normal level (checked above), and after the recovery point the
  // storm run never degrades beyond the worst level the fault-free baseline
  // itself reaches under the same traffic. Flash crowds and ambient SEUs
  // legitimately blip cells into economy in both runs; what the storm run
  // may not do is carry shed/critical residue past its recovery point.
  const auto worst_level = [](const scenario::TtiRecord& t) {
    for (int l = 3; l > 0; --l) {
      if (t.level_counts[static_cast<size_t>(l)] > 0) return l;
    }
    return 0;
  };
  int baseline_worst = 0;
  for (const scenario::TtiRecord& t : baseline.ttis) {
    baseline_worst = std::max(baseline_worst, worst_level(t));
  }
  for (const scenario::TtiRecord& t : storm.ttis) {
    if (t.tti <= storm.recovery_tti) continue;
    RNNASIP_CHECK_MSG(worst_level(t) <= baseline_worst,
                      "post-recovery degradation beyond the baseline mix at "
                      "TTI " << t.tti << ": level " << worst_level(t));
  }
  std::printf("post-recovery level mix: never degrades beyond the fault-free "
              "baseline's worst level (%s)\n",
              serve::service_level_name(
                  static_cast<serve::ServiceLevel>(baseline_worst)));

  // Informational: what value-ordered shedding buys over a blind storm run.
  std::printf("value-weighted stress quality: brownout %.4f vs blind %.4f\n",
              storm.weighted_ratio(), blind.weighted_ratio());

  obs::Json data = obs::Json::object();
  data.set("seed", seed);
  obs::Json acc = obs::Json::object();
  acc.set("deadline_misses_admitted", storm.deadline_misses_admitted);
  acc.set("silent_to_env", storm.silent_to_env);
  acc.set("corrupted_blocked", storm.corrupted_blocked);
  acc.set("integrity_detections", storm.integrity_detections);
  acc.set("stress_retention", retention);
  acc.set("storm_stress_ratio", storm.stress_ratio());
  acc.set("baseline_stress_ratio", baseline.stress_ratio());
  acc.set("recovery_ttis", static_cast<int64_t>(recovery_ttis));
  acc.set("recovery_bound_ttis", static_cast<int64_t>(kRecoveryWindowTtis));
  acc.set("weighted_ratio_brownout", storm.weighted_ratio());
  acc.set("weighted_ratio_blind", blind.weighted_ratio());
  data.set("acceptance", std::move(acc));
  data.set("rows", std::move(rows));
  io.write_json("scenario", std::move(data));
  return 0;
}
