// Serving benchmark: the multi-core batched serving subsystem (src/serve)
// under a seeded Poisson request stream over the full 10-network RRM suite.
//
// Sweeps cores x batch capacity x arrival rate at the paper's final
// optimization level (e) and reports, per configuration:
//   p50/p95/p99 request latency (cycles and us at the 500 MHz serving
//   operating point — the repo's energy numbers use the 0.65 V/380 MHz
//   anchor; serving quotes the paper's peak point), throughput, per-core
//   utilization, batching efficiency (occupancy, padded lanes).
//
// Everything is simulated from real per-execution cycle counts on the
// extended cores, so two runs with the same --seed produce byte-identical
// JSON (--json BENCH_serving.json).
//
// The bench ends with the scaling acceptance check: at a saturating
// arrival rate, 4 cores with batch capacity 4 must clear >= 3x the
// throughput of the 1-core unbatched configuration on the same workload.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_io.h"
#include "src/common/check.h"
#include "src/common/table.h"
#include "src/obs/trace_export.h"
#include "src/serve/scheduler.h"

using namespace rnnasip;

namespace {

constexpr double kServeMhz = 500.0;  // paper's peak operating point

struct SweepPoint {
  int cores;
  int batch;
  double mean_interarrival;
};

serve::ServeResult run_point(const SweepPoint& p, uint64_t workload_seed,
                             int requests, ExecBackend backend, bool observe,
                             bool telemetry, uint64_t sample_every,
                             std::vector<std::pair<std::string, uint64_t>>* regions,
                             std::vector<obs::NetObservation>* observations,
                             double* host_seconds = nullptr, bool warm = false) {
  serve::ClusterConfig cc;
  cc.backend = backend;
  cc.cores = p.cores;
  cc.level = kernels::OptLevel::kInputTiling;
  cc.batch = p.batch;
  cc.observe = observe;
  std::vector<std::string> names;
  for (const auto& def : rrm::rrm_suite()) names.push_back(def.name);
  serve::Cluster cluster(cc, names);

  serve::WorkloadConfig wc;
  wc.networks = names;
  wc.requests = requests;
  wc.mean_interarrival_cycles = p.mean_interarrival;
  wc.seed = workload_seed;
  const auto workload = serve::make_poisson_workload(cluster, wc);

  serve::SchedulerConfig sc;
  sc.policy = p.batch > 1 ? serve::Policy::kBatched : serve::Policy::kFifo;
  sc.telemetry.enabled = telemetry;
  sc.telemetry.sample_every = sample_every;
  // Million-request throughput runs only read the aggregate metrics; keep
  // the per-completion bookkeeping but drop the O(outputs) payloads.
  sc.retain_outputs = requests <= 10'000;

  // Warm measurement runs exclude one-time lazy work (per-flavor program
  // translation, watchdog calibration executions) from the timed window by
  // pushing one request per network through first. The warmup scheduler is
  // separate, so the timed run's simulated schedule is untouched.
  if (warm) {
    serve::WorkloadConfig ww = wc;
    ww.requests = static_cast<int>(names.size());
    ww.seed = workload_seed ^ 0x9E3779B97F4A7C15ull;
    serve::Scheduler warmer(&cluster, sc);
    (void)warmer.run(serve::make_poisson_workload(cluster, ww));
  }

  serve::Scheduler sched(&cluster, sc);
  const auto t0 = std::chrono::steady_clock::now();
  auto r = sched.run(workload);
  if (host_seconds != nullptr) {
    *host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  if (observe && regions) *regions = cluster.region_cycles();
  if (observe && observations) *observations = cluster.observations();
  return r;
}

/// Total simulated execution cycles actually served (sum over completions) —
/// the work term of the host-throughput metric. Unlike makespan this counts
/// every core's executed cycles, so work/host_seconds is comparable across
/// core counts and request counts.
uint64_t served_exec_cycles(const serve::ServeResult& r) {
  uint64_t sum = 0;
  for (const auto& c : r.completions) sum += c.exec_cycles;
  return sum;
}

double mean_utilization(const serve::ServeResult& r) {
  double sum = 0;
  for (int c = 0; c < r.cores; ++c) sum += r.utilization(c);
  return sum / r.cores;
}

/// The percentile cross-check (telemetry acceptance): the histogram-derived
/// quantile must land in exactly the bucket of the exact nearest-rank
/// latency — which bounds its error to one bucket's relative width (12.5%).
obs::Json crosscheck_percentiles(const serve::ServeResult& r) {
  RNNASIP_CHECK(r.telemetry != nullptr);
  obs::Histogram& h = r.telemetry->metrics.histogram("latency_cycles");
  obs::Json j = obs::Json::object();
  for (const double p : {50.0, 95.0, 99.0}) {
    const uint64_t exact = r.latency_percentile(p);
    const uint64_t hist = h.quantile(p);
    const int hist_bucket = h.quantile_bucket(p);
    const bool match =
        h.count() == 0 ||
        hist_bucket == static_cast<int>(obs::Histogram::bucket_of(exact));
    RNNASIP_CHECK_MSG(match, "histogram p" << p << " bucket " << hist_bucket
                                           << " != bucket_of(exact " << exact
                                           << ")");
    obs::Json e = obs::Json::object();
    e.set("exact_cycles", exact);
    e.set("hist_cycles", hist);
    e.set("bucket_match", match);
    char key[8];
    std::snprintf(key, sizeof key, "p%d", static_cast<int>(p));
    j.set(key, std::move(e));
  }
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::parse(argc, argv);
  const uint64_t seed = io.seed(0x5EED);
  // --requests N scales the whole sweep (default 96, the historical
  // envelope). The saturated rows' req/s is scale-invariant, which is what
  // lets bench_diff.py compare a 96-request CI run against the blessed
  // million-request translated baseline.
  int requests = 96;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
      RNNASIP_CHECK_MSG(requests > 0, "--requests wants a positive count");
    }
  }

  std::printf("=====================================================================\n");
  std::printf("Serving — multi-core batched inference over the 10-net RRM suite\n");
  std::printf("Level e programs, Poisson arrivals (seed 0x%llx), %d requests,\n",
              static_cast<unsigned long long>(seed), requests);
  std::printf("latencies at the %d MHz serving point, %s backend\n",
              static_cast<int>(kServeMhz), backend_name(io.backend()));
  std::printf("=====================================================================\n\n");

  const std::vector<SweepPoint> sweep = {
      {1, 1, 2'000},  {1, 4, 2'000},  {2, 1, 2'000},  {2, 4, 2'000},
      {4, 1, 2'000},  {4, 4, 2'000},  {1, 1, 50'000}, {1, 4, 50'000},
      {2, 4, 50'000}, {4, 4, 50'000},
  };

  // Markdown table (stdout) + JSON rows share one pass over the sweep.
  std::printf(
      "| cores | B | interarrival | p50 us | p95 us | p99 us | req/s | util | "
      "occupancy | host Mcyc/s |\n");
  std::printf(
      "| ---: | ---: | ---: | ---: | ---: | ---: | ---: | ---: | ---: | ---: "
      "|\n");

  // --trace needs span telemetry on the dumped point, so it implies it.
  const bool telemetry = io.telemetry() || io.trace_enabled();
  obs::Json rows = obs::Json::array();
  const double cyc_to_us = 1.0 / kServeMhz;
  serve::ServeResult base_1c, fast_4c;
  for (const auto& p : sweep) {
    double host_s = 0;
    const auto r = run_point(p, seed, requests, io.backend(), false, telemetry,
                             io.sample_every(), nullptr, nullptr, &host_s);
    if (p.cores == 1 && p.batch == 1 && p.mean_interarrival == 2'000) base_1c = r;
    if (p.cores == 4 && p.batch == 4 && p.mean_interarrival == 2'000) fast_4c = r;
    const double host_mcps =
        host_s > 0 ? static_cast<double>(served_exec_cycles(r)) / host_s / 1e6 : 0;
    std::printf(
        "| %d | %d | %.0f | %.1f | %.1f | %.1f | %.0f | %.2f | %.2f | %.1f |\n",
        p.cores, p.batch, p.mean_interarrival,
        static_cast<double>(r.latency_percentile(50)) * cyc_to_us,
        static_cast<double>(r.latency_percentile(95)) * cyc_to_us,
        static_cast<double>(r.latency_percentile(99)) * cyc_to_us,
        r.throughput_per_s(kServeMhz), mean_utilization(r), r.batch_occupancy(),
        host_mcps);
    obs::Json row = obs::Json::object();
    row.set("cores", static_cast<uint64_t>(p.cores));
    row.set("batch", static_cast<uint64_t>(p.batch));
    row.set("mean_interarrival_cycles", p.mean_interarrival);
    row.set("result", serve::serve_result_to_json(r, kServeMhz));
    // Host wall-clock numbers are real time, not simulation: only --wall-time
    // runs may carry them (the JSON must stay byte-stable otherwise).
    if (io.wall_time()) {
      obs::Json host = obs::Json::object();
      host.set("seconds", host_s);
      host.set("sim_mcycles_per_s", host_mcps);
      row.set("host", std::move(host));
    }
    if (telemetry) row.set("percentile_crosscheck", crosscheck_percentiles(r));
    rows.push(std::move(row));
  }
  std::printf("\n");
  if (telemetry) {
    std::printf(
        "Telemetry: percentile cross-check passed on all %zu sweep points "
        "(histogram quantile == exact nearest-rank bucket)\n\n",
        sweep.size());
  }

  // Region rollup across every execution of the saturated 4x4 point;
  // --flamegraph rides on the same observed rerun.
  if (io.observe() || io.flamegraph_enabled()) {
    std::vector<std::pair<std::string, uint64_t>> regions;
    std::vector<obs::NetObservation> observations;
    (void)run_point({4, 4, 2'000}, seed, requests, io.backend(), true, telemetry,
                    io.sample_every(), &regions, &observations);
    std::printf("Region cycles aggregated over the 4-core B=4 serving run:\n");
    Table rt({"region", "kcycles"});
    for (const auto& [name, cycles] : regions) {
      rt.add_row({name, fmt_double(static_cast<double>(cycles) / 1000.0, 1)});
    }
    std::printf("%s\n", rt.to_string().c_str());
    if (io.flamegraph_enabled()) {
      std::vector<const obs::NetObservation*> views;
      for (const auto& o : observations) views.push_back(&o);
      bench::BenchIo::write_text(io.flamegraph_path(),
                                 obs::to_collapsed_stacks(views));
    }
  }

  // Multi-track Perfetto timeline of the saturated 4x4 point.
  if (io.trace_enabled()) {
    bench::BenchIo::write_text(io.trace_path(),
                               serve::serving_perfetto_trace(fast_4c).dump());
  }

  // Acceptance: 4 cores batched must be >= 3x the 1-core unbatched
  // throughput on the same saturating workload (same completed requests, so
  // the throughput ratio is the makespan ratio).
  RNNASIP_CHECK(base_1c.makespan > 0 && fast_4c.makespan > 0);
  const double speedup = static_cast<double>(base_1c.makespan) /
                         static_cast<double>(fast_4c.makespan);
  std::printf("4-core B=4 batched vs 1-core unbatched throughput: %.2fx\n", speedup);
  RNNASIP_CHECK_MSG(speedup >= 3.0,
                    "serving scaling regressed: " << speedup << "x < 3x");

  // Translated-backend acceptance (the CI host-throughput gate): rerun the
  // saturated point on both backends and compare simulated-cycles-per-host-
  // second. 1000 requests is enough to reach sustained throughput (short
  // runs are dominated by queue-rampup transients and sparse batch
  // coalescing) while keeping the ISS reference run to seconds, not the
  // hour a million-request reference would cost; work-normalized throughput
  // makes the two measurements comparable regardless of request count.
  double host_speedup = 0;
  if (io.backend() == ExecBackend::kTranslated) {
    const int ratio_requests = 1'000;
    double iss_s = 0, trans_s = 0;
    const auto iss_r =
        run_point({4, 4, 2'000}, seed, ratio_requests, ExecBackend::kIss, false,
                  false, io.sample_every(), nullptr, nullptr, &iss_s,
                  /*warm=*/true);
    const auto trans_r =
        run_point({4, 4, 2'000}, seed, ratio_requests, ExecBackend::kTranslated,
                  false, false, io.sample_every(), nullptr, nullptr, &trans_s,
                  /*warm=*/true);
    const double iss_tp = static_cast<double>(served_exec_cycles(iss_r)) / iss_s;
    const double trans_tp =
        static_cast<double>(served_exec_cycles(trans_r)) / trans_s;
    host_speedup = trans_tp / iss_tp;
    std::printf("translated vs iss host throughput (4c B4 saturated): %.1fx\n",
                host_speedup);
    RNNASIP_CHECK_MSG(host_speedup >= 10.0,
                      "translated backend host throughput regressed: "
                          << host_speedup << "x < 10x over the ISS");
  }

  if (io.json_enabled()) {
    obs::Json data = obs::Json::object();
    data.set("seed", seed);
    data.set("mhz", kServeMhz);
    data.set("requests", static_cast<uint64_t>(requests));
    data.set("rows", std::move(rows));
    obs::Json acc = obs::Json::object();
    acc.set("base_makespan", base_1c.makespan);
    acc.set("fast_makespan", fast_4c.makespan);
    acc.set("speedup", speedup);
    if (io.wall_time() && host_speedup > 0) {
      acc.set("host_speedup_vs_iss", host_speedup);
    }
    data.set("acceptance", std::move(acc));
    io.write_json("serving", std::move(data));
  }
  return 0;
}
