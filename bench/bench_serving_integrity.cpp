// Serving integrity benchmark: silent-data-corruption detection and
// layer-boundary rollback/preemption under SEU campaigns (PR 6).
//
// Sweeps scheduler mode x fault rate x load over the FC serving nets on a
// 4-core level-e cluster, deadline policy throughout:
//   plain    the PR 5 whole-execution scheduler (no detection) — its
//            served-but-wrong fraction is the silent-corruption baseline;
//   detect   ABFT layer checksums verified at every boundary, corrupted
//            layers rolled back from checkpoints, exhausted budgets
//            escalated to the retry/quarantine ladder;
//   preempt  detect plus EDF layer-boundary preemption.
// Correctness is judged against the golden oracle (the bit-exact host
// reference per request input), so "silent" means served, non-flagged, and
// wrong — the share the detection path must crush.
//
// Everything is seeded and simulated; two runs with the same --seed produce
// byte-identical JSON (--json BENCH_serving_integrity.json). With --soak
// the bench additionally replays the detect/high point under 8 derived
// seeds and requires zero silently-corrupted responses in every replay.
//
// Acceptance (checked at the end, abort on failure):
//   - at the highest PR 5 fault rate, the silently-corrupted share of
//     served requests with detection on is < 1e-4 (the plain rows print
//     the undetected baseline share for contrast);
//   - ABFT + checkpoint cycle overhead over the serving mix is < 5% at
//     level e;
//   - at least one request is preempted in the preempt/off row and every
//     preempted request's output is bit-identical to its unpreempted
//     (golden) result.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_io.h"
#include "src/common/check.h"
#include "src/integrity/integrity.h"
#include "src/serve/scheduler.h"

using namespace rnnasip;

namespace {

constexpr double kServeMhz = 500.0;  // paper's peak operating point
constexpr int kCores = 4;
constexpr int kRequests = 160;

const std::vector<std::string> kNets = {"ahmed19", "eisen19", "nasir18"};

struct RatePoint {
  const char* name;
  double tcdm;
  double regfile;
  double pla;
};

// The PR 5 resilience sweep's off/high per-retired-instruction rates: the
// acceptance criterion is pinned to the "high" point.
const std::vector<RatePoint> kRates = {
    {"off", 0, 0, 0},
    {"high", 2e-7, 2e-6, 3e-4},
};

struct Mode {
  const char* name;
  bool detect;
  bool preemption;
};

const std::vector<Mode> kModes = {
    {"plain", false, false},
    {"detect", true, false},
    {"preempt", true, true},
};

serve::ClusterConfig cluster_config(bool integrity, ExecBackend backend) {
  serve::ClusterConfig cc;
  cc.backend = backend;
  cc.cores = kCores;
  cc.level = kernels::OptLevel::kInputTiling;  // level e, the overhead target
  cc.batch = 1;
  cc.integrity = integrity;
  return cc;
}

serve::Workload make_workload(const serve::Cluster& cluster, double interarrival,
                              uint64_t seed) {
  serve::WorkloadConfig wc;
  wc.networks = kNets;
  wc.requests = kRequests;
  wc.mean_interarrival_cycles = interarrival;
  wc.deadline_slack_cycles = 40.0 * interarrival;
  wc.seed = seed;
  return serve::make_poisson_workload(cluster, wc);
}

/// Golden final outputs per request id — the independent correctness
/// arbiter for every row over the same workload.
std::map<uint64_t, std::vector<int16_t>> golden_outputs(const serve::Cluster& cluster,
                                                        const serve::Workload& w) {
  std::map<uint64_t, std::vector<int16_t>> out;
  for (const auto& job : w.jobs) {
    out[job.id] = integrity::golden_checks(cluster.network(job.network),
                                           cluster.tanh_table(), cluster.sig_table(),
                                           job.input)
                      .outputs.back();
  }
  return out;
}

struct RowOutput {
  serve::ServeResult result;
  uint64_t silent = 0;          ///< served, non-flagged, wrong vs golden
  uint64_t preempted_ok = 0;    ///< preempted completions matching golden
  uint64_t preempted_bad = 0;   ///< preempted completions diverging
  double silent_share() const {
    return result.completions.empty()
               ? 0.0
               : static_cast<double>(silent) /
                     static_cast<double>(result.completions.size());
  }
};

RowOutput run_point(serve::Cluster* cluster, const Mode& mode, const RatePoint& rate,
                    const serve::Workload& workload, uint64_t seed,
                    const std::map<uint64_t, std::vector<int16_t>>& golden,
                    const serve::SchedulerConfig::TelemetryOptions& telemetry = {}) {
  serve::SchedulerConfig sc;
  sc.policy = serve::Policy::kDeadline;
  sc.fault.seed = seed;
  sc.fault.rate_of(fault::Target::kTcdm) = rate.tcdm;
  sc.fault.rate_of(fault::Target::kRegFile) = rate.regfile;
  sc.fault.rate_of(fault::Target::kPlaLut) = rate.pla;
  sc.integrity.detect = mode.detect;
  sc.integrity.preemption = mode.preemption;
  sc.telemetry = telemetry;
  serve::Scheduler sched(cluster, sc);

  RowOutput out;
  out.result = sched.run(workload);
  for (const auto& c : out.result.completions) {
    const bool ok = golden.at(c.id) == c.outputs;
    if (!ok) ++out.silent;
    if (c.preemptions > 0) (ok ? out.preempted_ok : out.preempted_bad) += 1;
  }
  return out;
}

/// Derived soak seed: splitmix64-style finalizer, same family the
/// scheduler uses for per-execution campaign seeds.
uint64_t derive_seed(uint64_t seed, uint64_t n) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (n + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::parse(argc, argv);
  const uint64_t seed = io.seed(0x5EED);
  bool soak = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--soak") == 0) soak = true;
  }

  std::printf("=====================================================================\n");
  std::printf("Serving integrity — detection x rollback x preemption, %d cores\n", kCores);
  std::printf("FC nets {ahmed19, eisen19, nasir18}, %d requests, seed 0x%llx,\n",
              kRequests, static_cast<unsigned long long>(seed));
  std::printf("level e, deadline policy, correctness vs the golden oracle\n");
  std::printf("=====================================================================\n\n");

  serve::Cluster plain_cluster(cluster_config(false, io.backend()), kNets);
  serve::Cluster integ_cluster(cluster_config(true, io.backend()), kNets);

  // Instrumentation cost at level e: the ABFT fold reads each layer output
  // once (1 cycle/halfword), so the tiny nets pay the largest relative
  // price; the acceptance bound applies to the serving mix.
  std::printf("| net | plain cycles | integrity cycles | overhead |\n");
  std::printf("| :-- | ---: | ---: | ---: |\n");
  uint64_t plain_total = 0, integ_total = 0;
  obs::Json overhead_rows = obs::Json::array();
  for (const auto& name : kNets) {
    const uint64_t pc = plain_cluster.estimated_single_cycles(name);
    const uint64_t ic = integ_cluster.estimated_single_cycles(name);
    plain_total += pc;
    integ_total += ic;
    std::printf("| %s | %llu | %llu | %.2f%% |\n", name.c_str(),
                static_cast<unsigned long long>(pc),
                static_cast<unsigned long long>(ic),
                100.0 * (static_cast<double>(ic) / static_cast<double>(pc) - 1.0));
    obs::Json o = obs::Json::object();
    o.set("network", name);
    o.set("plain_cycles", pc);
    o.set("integrity_cycles", ic);
    overhead_rows.push(std::move(o));
  }
  const double overhead_mix =
      static_cast<double>(integ_total) / static_cast<double>(plain_total) - 1.0;
  std::printf("serving-mix ABFT+checkpoint overhead at level e: %.2f%%\n\n",
              100.0 * overhead_mix);

  const std::vector<double> loads = {2'000, 8'000};

  std::printf(
      "| mode | faults | interarrival | served | fail | detect | rollbk | esc | "
      "preempt | silent | goodput/s |\n");
  std::printf(
      "| :-- | :-- | ---: | ---: | ---: | ---: | ---: | ---: | ---: | ---: | "
      "---: |\n");

  // --trace needs span telemetry; with --telemetry the spans layer runs on
  // every sweep point, so span identity is asserted for every request in
  // the full run (rollback / retry / preemption phases included).
  serve::SchedulerConfig::TelemetryOptions telemetry;
  telemetry.enabled = io.telemetry() || io.trace_enabled();
  telemetry.sample_every = io.sample_every();

  obs::Json rows = obs::Json::array();
  uint64_t detect_high_served = 0, detect_high_silent = 0;
  uint64_t detect_high_detections = 0;
  uint64_t preempted_off = 0, preempted_off_bad = 0;
  uint64_t spans_closed = 0, span_identity_checks = 0;
  serve::ServeResult trace_pick;  // preempt/high at the saturating load
  for (const double load : loads) {
    const auto workload = make_workload(plain_cluster, load, seed);
    const auto golden = golden_outputs(plain_cluster, workload);
    for (const auto& mode : kModes) {
      serve::Cluster* cluster = mode.detect || mode.preemption ? &integ_cluster
                                                               : &plain_cluster;
      for (const auto& rate : kRates) {
        const auto out =
            run_point(cluster, mode, rate, workload, seed, golden, telemetry);
        const auto& r = out.result;
        if (r.telemetry) {
          spans_closed += r.telemetry->spans.spans_closed();
          span_identity_checks += r.telemetry->spans.identity_checks();
          if (mode.preemption && &rate == &kRates.back() && load == loads.front()) {
            trace_pick = r;
          }
        }
        std::printf(
            "| %s | %s | %.0f | %zu | %zu | %llu | %llu | %llu | %llu | %llu | "
            "%.0f |\n",
            mode.name, rate.name, load, r.completions.size(), r.failed.size(),
            static_cast<unsigned long long>(r.integrity_detections),
            static_cast<unsigned long long>(r.rollbacks),
            static_cast<unsigned long long>(r.integrity_escalations),
            static_cast<unsigned long long>(r.preemptions),
            static_cast<unsigned long long>(out.silent), r.goodput_per_s(kServeMhz));
        if (mode.detect && &rate == &kRates.back()) {
          detect_high_served += r.completions.size();
          detect_high_silent += out.silent;
          detect_high_detections += r.integrity_detections;
        }
        if (mode.preemption && rate.tcdm == 0) {
          preempted_off += out.preempted_ok + out.preempted_bad;
          preempted_off_bad += out.preempted_bad;
        }
        obs::Json row = obs::Json::object();
        row.set("mode", mode.name);
        row.set("fault_point", rate.name);
        row.set("mean_interarrival_cycles", load);
        row.set("silent", out.silent);
        row.set("silent_share", out.silent_share());
        row.set("result", serve::serve_result_to_json(r, kServeMhz));
        rows.push(std::move(row));
      }
    }
  }
  std::printf("\n");

  if (telemetry.enabled) {
    // Every close() asserted the span identity (done - arrival tiles into
    // wait + exec + retry + rollback + preempted); reaching this line means
    // it held for all of them.
    std::printf("telemetry: span identity held for %llu/%llu closed spans\n\n",
                static_cast<unsigned long long>(span_identity_checks),
                static_cast<unsigned long long>(spans_closed));
    RNNASIP_CHECK(span_identity_checks == spans_closed && spans_closed > 0);
  }

  // Multi-track Perfetto timeline of the preempt/high saturated point —
  // the row with rollback, retry and preemption flows all active.
  if (io.trace_enabled()) {
    RNNASIP_CHECK(trace_pick.telemetry != nullptr);
    bench::BenchIo::write_text(io.trace_path(),
                               serve::serving_perfetto_trace(trace_pick).dump());
  }

  // Acceptance 1: non-flagged silently-corrupted share with detection on at
  // the highest PR 5 fault rate (< 1e-4; the plain rows print the
  // undetected baseline for contrast).
  RNNASIP_CHECK(detect_high_served > 0);
  const double silent_share_detect_high =
      static_cast<double>(detect_high_silent) /
      static_cast<double>(detect_high_served);
  std::printf("detect/high silent share: %llu/%llu = %.2e (detections: %llu)\n",
              static_cast<unsigned long long>(detect_high_silent),
              static_cast<unsigned long long>(detect_high_served),
              silent_share_detect_high,
              static_cast<unsigned long long>(detect_high_detections));
  RNNASIP_CHECK_MSG(silent_share_detect_high < 1e-4,
                    "silent corruption above budget: " << silent_share_detect_high);
  RNNASIP_CHECK_MSG(detect_high_detections > 0,
                    "the high-rate campaign triggered no ABFT detection");

  // Acceptance 2: instrumentation cycle overhead over the serving mix.
  RNNASIP_CHECK_MSG(overhead_mix < 0.05,
                    "ABFT+checkpoint overhead " << overhead_mix << " >= 5%");

  // Acceptance 3: preemption happened and preempted requests resumed
  // bit-identically.
  std::printf("preempted requests (fault-free preempt rows): %llu, divergent: %llu\n",
              static_cast<unsigned long long>(preempted_off),
              static_cast<unsigned long long>(preempted_off_bad));
  RNNASIP_CHECK_MSG(preempted_off > 0, "no request was ever preempted");
  RNNASIP_CHECK_MSG(preempted_off_bad == 0,
                    "a preempted request diverged from its unpreempted output");

  // --soak: chaos replay of the detect/high point under derived seeds;
  // every replay must serve zero silently-corrupted responses.
  if (soak) {
    std::printf("\nchaos soak (detect/high, load 2000):\n");
    for (uint64_t n = 0; n < 8; ++n) {
      const uint64_t s = derive_seed(seed, n);
      const auto workload = make_workload(plain_cluster, 2'000, s);
      const auto golden = golden_outputs(plain_cluster, workload);
      const auto out = run_point(&integ_cluster, kModes[1], kRates.back(), workload,
                                 s, golden);
      std::printf(
          "  seed 0x%016llx: served %zu, failed %zu, detections %llu, silent %llu\n",
          static_cast<unsigned long long>(s), out.result.completions.size(),
          out.result.failed.size(),
          static_cast<unsigned long long>(out.result.integrity_detections),
          static_cast<unsigned long long>(out.silent));
      RNNASIP_CHECK_MSG(out.silent == 0,
                        "soak seed " << s << " served corrupted responses");
    }
    std::printf("soak: 8/8 derived seeds served zero corrupted responses\n");
  }

  if (io.json_enabled()) {
    obs::Json data = obs::Json::object();
    data.set("seed", seed);
    data.set("mhz", kServeMhz);
    data.set("cores", static_cast<uint64_t>(kCores));
    data.set("requests", static_cast<uint64_t>(kRequests));
    obs::Json ov = obs::Json::object();
    ov.set("per_net", std::move(overhead_rows));
    ov.set("mix_overhead", overhead_mix);
    data.set("overhead", std::move(ov));
    data.set("rows", std::move(rows));
    obs::Json acc = obs::Json::object();
    acc.set("silent_share_detect_high", silent_share_detect_high);
    acc.set("detections_detect_high", detect_high_detections);
    acc.set("mix_overhead", overhead_mix);
    acc.set("preempted_requests", preempted_off);
    acc.set("preempted_divergent", preempted_off_bad);
    if (telemetry.enabled) {
      acc.set("spans_closed", spans_closed);
      acc.set("span_identity_checks", span_identity_checks);
    }
    data.set("acceptance", std::move(acc));
    io.write_json("serving_integrity", std::move(data));
  }
  return 0;
}
