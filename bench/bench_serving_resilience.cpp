// Serving resilience benchmark: goodput under SEU campaigns, deadlines and
// load (src/serve resilience layer, PR 5).
//
// Sweeps fault rate x arrival rate x policy over the FC networks of the RRM
// suite on a 4-core cluster with a level-e fallback flavor, and reports per
// configuration: goodput (deadline-meeting inferences/s at the 500 MHz
// serving point), admission rejects, exec failures / retries / failed
// requests, quarantine windows, degraded-mode executions, and the fraction
// of served requests whose outputs are bit-identical to a fault-free
// reference run of the same workload.
//
// Everything is seeded and simulated; two runs with the same --seed produce
// byte-identical JSON (--json BENCH_serving_resilience.json).
//
// Acceptance (checked at the end, abort on failure):
//   - at the highest fault rate, >= 99% of admitted requests complete with
//     outputs bit-identical to the fault-free reference;
//   - at every load step, deadline-policy goodput at the highest fault rate
//     stays within 2x of the fault-free goodput — degradation is smooth,
//     not a cliff;
//   - WCET-backed admission (the kProvable sweep rows) admits zero
//     requests that go on to miss their deadline, at every fault rate and
//     load — the certified upper bound makes the admission test a
//     guarantee where the calibrated estimate is only a prediction.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_io.h"
#include "src/common/check.h"
#include "src/common/table.h"
#include "src/serve/scheduler.h"

using namespace rnnasip;

namespace {

constexpr double kServeMhz = 500.0;  // paper's peak operating point
constexpr int kCores = 4;
constexpr int kRequests = 160;

const std::vector<std::string> kNets = {"ahmed19", "eisen19", "nasir18"};

struct RatePoint {
  const char* name;
  double tcdm;
  double regfile;
  double pla;
};

// Per-retired-instruction flip probabilities. The mix is deliberately
// detection-heavy: register-file flips frequently hit a pointer and trap
// (healed by a retry), PLA LUT flips are absorbed by post-campaign
// scrubbing, and the raw TCDM rate stays low because a flip in a private
// activation buffer is silent corruption — the failure mode the 99%
// correctness budget bounds.
const std::vector<RatePoint> kRates = {
    {"off", 0, 0, 0},
    {"low", 1e-7, 5e-7, 5e-5},
    {"high", 2e-7, 2e-6, 3e-4},
};

struct RunOutput {
  serve::ServeResult result;
  double correct_fraction = 1.0;  ///< served outputs matching the reference
  uint64_t compared = 0;          ///< requests served in both runs
  uint64_t correct = 0;           ///< of those, bit-identical outputs
};

serve::Workload make_workload(const serve::Cluster& cluster, double interarrival,
                              uint64_t seed) {
  serve::WorkloadConfig wc;
  wc.networks = kNets;
  wc.requests = kRequests;
  wc.mean_interarrival_cycles = interarrival;
  // Slack scales with load so the deadline policy has real admission work
  // to do at every step without rejecting the whole stream.
  wc.deadline_slack_cycles = 40.0 * interarrival;
  wc.seed = seed;
  return serve::make_poisson_workload(cluster, wc);
}

RunOutput run_point(serve::Policy policy, serve::Admission admission,
                    const RatePoint& rate, double interarrival,
                    uint64_t seed, ExecBackend backend,
                    const std::map<uint64_t, std::vector<int16_t>>& reference,
                    const serve::SchedulerConfig::TelemetryOptions& telemetry = {}) {
  serve::ClusterConfig cc;
  cc.backend = backend;
  cc.cores = kCores;
  // Primary level d with the faster level-e flavor as the degradation
  // target: under overload the scheduler trades the configured level for
  // the cheaper (fewer-cycles) program and wins back queue headroom.
  cc.level = kernels::OptLevel::kLoadCompute;
  cc.fallback_level = kernels::OptLevel::kInputTiling;
  cc.batch = 1;
  serve::Cluster cluster(cc, kNets);
  const auto workload = make_workload(cluster, interarrival, seed);

  serve::SchedulerConfig sc;
  sc.policy = policy;
  sc.admission = admission;
  sc.fault.seed = seed;
  sc.fault.rate_of(fault::Target::kTcdm) = rate.tcdm;
  sc.fault.rate_of(fault::Target::kRegFile) = rate.regfile;
  sc.fault.rate_of(fault::Target::kPlaLut) = rate.pla;
  sc.level_fallback = true;
  sc.overload_queue_depth = 12;
  sc.telemetry = telemetry;
  serve::Scheduler sched(&cluster, sc);

  RunOutput out;
  out.result = sched.run(workload);
  if (!reference.empty() && !out.result.completions.empty()) {
    // Compare only requests served in both runs: retries shift the
    // schedule, so the two runs' admission-reject sets can differ at
    // overload and a request absent from the reference has nothing to
    // diff against.
    uint64_t compared = 0, correct = 0;
    for (const auto& c : out.result.completions) {
      const auto it = reference.find(c.id);
      if (it == reference.end()) continue;
      ++compared;
      correct += it->second == c.outputs ? 1u : 0u;
    }
    if (compared > 0) {
      out.correct_fraction =
          static_cast<double>(correct) / static_cast<double>(compared);
      out.compared = compared;
      out.correct = correct;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::parse(argc, argv);
  const uint64_t seed = io.seed(0x5EED);

  std::printf("=====================================================================\n");
  std::printf("Serving resilience — SEU campaigns x load x policy, %d cores\n", kCores);
  std::printf("FC nets {ahmed19, eisen19, nasir18}, %d requests, seed 0x%llx,\n",
              kRequests, static_cast<unsigned long long>(seed));
  std::printf("level d with level-e fallback, goodput at %d MHz\n",
              static_cast<int>(kServeMhz));
  std::printf("=====================================================================\n\n");

  // 1000 oversubscribes 4 cores (~2x capacity): admission control sheds
  // hopeless requests and the overload trigger degrades dispatch to the
  // fallback level; the other steps run from saturated to relaxed.
  const std::vector<double> loads = {1'000, 2'000, 8'000, 32'000};
  const std::vector<serve::Policy> policies = {serve::Policy::kFifo,
                                               serve::Policy::kDeadline};

  std::printf(
      "| policy | adm | faults | interarrival | served | rej | fail | retries | "
      "quar | degr | miss | goodput/s | correct |\n");
  std::printf(
      "| :-- | :-- | :-- | ---: | ---: | ---: | ---: | ---: | ---: | ---: | "
      "---: | ---: | ---: |\n");

  // --telemetry attaches the spans + metrics layer to every faulted sweep
  // point; each request's span identity is asserted at close, fallback-level
  // executions and quarantines included.
  serve::SchedulerConfig::TelemetryOptions telemetry;
  telemetry.enabled = io.telemetry();
  telemetry.sample_every = io.sample_every();

  obs::Json rows = obs::Json::array();
  // goodput[load] at rate off/high for the acceptance check (kDeadline).
  std::map<double, double> goodput_off, goodput_high;
  // Aggregate correctness over every highest-rate row: served requests
  // whose outputs are bit-identical to the fault-free reference.
  uint64_t high_served = 0, high_correct = 0;
  uint64_t spans_closed = 0;
  // WCET-backed admission (kProvable, kDeadline only): aggregate deadline
  // misses among admitted requests — the sound-admission acceptance — and
  // served/rejected totals for the calibrated-vs-provable comparison.
  uint64_t provable_misses = 0, provable_served = 0, provable_rejected = 0;
  uint64_t calibrated_misses = 0, calibrated_served = 0, calibrated_rejected = 0;
  for (const auto policy : policies) {
    // The admission estimator only gates the deadline policy; kFifo runs
    // calibrated-only to keep the sweep from doubling for a no-op knob.
    std::vector<serve::Admission> admissions = {serve::Admission::kCalibrated};
    if (policy == serve::Policy::kDeadline)
      admissions.push_back(serve::Admission::kProvable);
    for (const auto admission : admissions) {
      for (const double load : loads) {
        // Fault-free reference outputs for this (policy, admission, load):
        // same workload, rates zeroed. Outputs are level-independent, so
        // degraded-mode executions don't perturb the comparison.
        std::map<uint64_t, std::vector<int16_t>> reference;
        {
          const auto ref = run_point(policy, admission, kRates[0], load, seed,
                                     io.backend(), {});
          for (const auto& c : ref.result.completions) reference[c.id] = c.outputs;
        }
        for (const auto& rate : kRates) {
          const auto out = run_point(policy, admission, rate, load, seed,
                                     io.backend(), reference, telemetry);
          const auto& r = out.result;
          if (r.telemetry) spans_closed += r.telemetry->spans.spans_closed();
          std::printf(
              "| %s | %s | %s | %.0f | %zu | %zu | %zu | %llu | %zu | %llu | "
              "%llu | %.0f | %.4f |\n",
              serve::policy_name(policy), serve::admission_name(admission),
              rate.name, load, r.completions.size(), r.rejections.size(),
              r.failed.size(), static_cast<unsigned long long>(r.retries),
              r.quarantines.size(),
              static_cast<unsigned long long>(r.fallback_execs),
              static_cast<unsigned long long>(r.deadline_misses),
              r.goodput_per_s(kServeMhz), out.correct_fraction);
          if (policy == serve::Policy::kDeadline &&
              admission == serve::Admission::kCalibrated) {
            if (rate.regfile == 0) goodput_off[load] = r.goodput_per_s(kServeMhz);
            if (&rate == &kRates.back()) goodput_high[load] = r.goodput_per_s(kServeMhz);
          }
          if (policy == serve::Policy::kDeadline) {
            auto& misses = admission == serve::Admission::kProvable
                               ? provable_misses : calibrated_misses;
            auto& served = admission == serve::Admission::kProvable
                               ? provable_served : calibrated_served;
            auto& rejected = admission == serve::Admission::kProvable
                                 ? provable_rejected : calibrated_rejected;
            misses += r.deadline_misses;
            served += r.completions.size();
            rejected += r.rejections.size();
          }
          if (&rate == &kRates.back()) {
            high_served += out.compared;
            high_correct += out.correct;
          }
          obs::Json row = obs::Json::object();
          row.set("policy", serve::policy_name(policy));
          row.set("admission", serve::admission_name(admission));
          row.set("fault_point", rate.name);
          row.set("tcdm_rate", rate.tcdm);
          row.set("regfile_rate", rate.regfile);
          row.set("mean_interarrival_cycles", load);
          row.set("correct_fraction", out.correct_fraction);
          row.set("result", serve::serve_result_to_json(r, kServeMhz));
          rows.push(std::move(row));
        }
      }
    }
  }
  std::printf("\n");
  if (telemetry.enabled) {
    std::printf("telemetry: span identity held for all %llu closed spans\n\n",
                static_cast<unsigned long long>(spans_closed));
    RNNASIP_CHECK(spans_closed > 0);
  }

  // Acceptance 1: correctness under the heaviest campaign, aggregated over
  // every highest-rate row.
  RNNASIP_CHECK(high_served > 0);
  const double correct_at_high =
      static_cast<double>(high_correct) / static_cast<double>(high_served);
  std::printf("correct-output fraction at the highest fault rate: %llu/%llu = %.4f\n",
              static_cast<unsigned long long>(high_correct),
              static_cast<unsigned long long>(high_served), correct_at_high);
  RNNASIP_CHECK_MSG(correct_at_high >= 0.99,
                    "silent corruption above budget: " << correct_at_high);

  // Acceptance 2: goodput degrades smoothly — no cliff at any load step.
  for (const double load : loads) {
    const double off = goodput_off[load];
    const double high = goodput_high[load];
    std::printf("load %6.0f: goodput %.0f/s fault-free vs %.0f/s at high rate\n",
                load, off, high);
    RNNASIP_CHECK(off > 0);
    RNNASIP_CHECK_MSG(high * 2.0 >= off,
                      "goodput cliff at load " << load << ": " << high << " vs " << off);
  }

  // Acceptance 3: WCET-backed admission is sound — across the whole
  // provable sweep (every fault rate x load), no admitted request ever
  // misses its deadline. The calibrated estimator is a prediction and may
  // admit requests it cannot finish; the certified bound may not.
  std::printf(
      "\nadmission comparison (deadline policy, all rates x loads):\n"
      "  calibrated: served %llu, rejected %llu, deadline misses %llu\n"
      "  provable:   served %llu, rejected %llu, deadline misses %llu\n",
      static_cast<unsigned long long>(calibrated_served),
      static_cast<unsigned long long>(calibrated_rejected),
      static_cast<unsigned long long>(calibrated_misses),
      static_cast<unsigned long long>(provable_served),
      static_cast<unsigned long long>(provable_rejected),
      static_cast<unsigned long long>(provable_misses));
  RNNASIP_CHECK(provable_served > 0);
  RNNASIP_CHECK_MSG(provable_misses == 0,
                    "provable admission admitted " << provable_misses
                                                   << " deadline miss(es)");

  if (io.json_enabled()) {
    obs::Json data = obs::Json::object();
    data.set("seed", seed);
    data.set("mhz", kServeMhz);
    data.set("cores", static_cast<uint64_t>(kCores));
    data.set("requests", static_cast<uint64_t>(kRequests));
    data.set("rows", std::move(rows));
    obs::Json acc = obs::Json::object();
    acc.set("correct_fraction_high", correct_at_high);
    acc.set("provable_deadline_misses", provable_misses);
    acc.set("provable_served", provable_served);
    acc.set("provable_rejected", provable_rejected);
    acc.set("calibrated_deadline_misses", calibrated_misses);
    obs::Json gp = obs::Json::array();
    for (const double load : loads) {
      obs::Json g = obs::Json::object();
      g.set("mean_interarrival_cycles", load);
      g.set("goodput_fault_free", goodput_off[load]);
      g.set("goodput_high_rate", goodput_high[load]);
      gp.push(std::move(g));
    }
    acc.set("goodput", std::move(gp));
    data.set("acceptance", std::move(acc));
    io.write_json("serving_resilience", std::move(data));
  }
  return 0;
}
