// Related-work ablation: pruning with zero-skipping (Cao [19], Gao [20])
// on the single-issue extended core. Sec. II-A doubts these compression
// schemes transfer to RRM networks; this bench puts a number on the ISA
// side of that doubt: a compressed-format sparse kernel pays index-decode
// and gather overhead per surviving MAC (~8-9 cycles vs ~1.1 dense), so the
// crossover sits near 90% sparsity — far beyond what magnitude pruning
// gives without accuracy loss on the small RRM matrices.
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/iss/core.h"
#include "src/kernels/fc.h"
#include "src/kernels/fc_sparse.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"

using namespace rnnasip;

namespace {

uint64_t run_dense(const nn::FcParamsQ& fc, const std::vector<int16_t>& x,
                   kernels::OptLevel level) {
  iss::Memory mem(16u << 20);
  iss::Core core(&mem);
  kernels::DeviceAllocator alloc(&mem);
  const uint32_t xa = alloc.alloc(static_cast<uint32_t>(2 * x.size()), 4);
  const uint32_t oa = alloc.alloc(static_cast<uint32_t>(2 * fc.b.size()), 4);
  const auto L = kernels::alloc_fc(alloc, fc, xa, oa);
  assembler::ProgramBuilder b(kernels::kTextBase);
  kernels::FcEmitOptions fo;
  fo.level = level;
  kernels::emit_fc(b, L, fo);
  b.ebreak();
  const auto prog = b.build();
  core.load_program(prog);
  mem.write_halves(xa, x);
  core.reset(prog.base);
  RNNASIP_CHECK(core.run().ok());
  return core.stats().total_cycles();
}

uint64_t run_sparse(const nn::FcParamsQ& fc, const std::vector<int16_t>& x) {
  iss::Memory mem(16u << 20);
  iss::Core core(&mem);
  kernels::DeviceAllocator alloc(&mem);
  const uint32_t xa = alloc.alloc(static_cast<uint32_t>(2 * x.size()), 4);
  const uint32_t oa = alloc.alloc(static_cast<uint32_t>(2 * fc.b.size()), 4);
  const auto L = kernels::alloc_fc_sparse(alloc, fc, xa, oa);
  assembler::ProgramBuilder b(kernels::kTextBase);
  kernels::emit_fc_sparse(b, L);
  b.ebreak();
  const auto prog = b.build();
  core.load_program(prog);
  mem.write_halves(xa, x);
  core.reset(prog.base);
  RNNASIP_CHECK(core.run().ok());
  return core.stats().total_cycles();
}

}  // namespace

int main() {
  std::printf("=====================================================================\n");
  std::printf("Related-work ablation — pruning + zero-skipping (Sec. II-A, [19-20])\n");
  std::printf("FC 320x64, magnitude pruning, compressed (value,index) storage\n");
  std::printf("=====================================================================\n\n");

  Rng rng(0x5AB);
  const int cin = 320, cout = 64;
  const auto base_f = nn::random_fc(rng, cin, cout, nn::ActKind::kNone, 0.3f);
  const auto x = nn::quantize_vector(nn::random_vector(rng, cin, 1.0f));

  const uint64_t dense_c = run_dense(nn::quantize_fc(base_f),
                                     x, kernels::OptLevel::kOutputTiling);
  const uint64_t dense_e = run_dense(nn::quantize_fc(base_f),
                                     x, kernels::OptLevel::kInputTiling);

  Table t({"density", "sparsity", "sparse kcyc", "vs dense-c", "vs dense-e"});
  for (double density : {1.0, 0.5, 0.3, 0.2, 0.1, 0.05, 0.02}) {
    auto f = base_f;
    nn::prune_matrix(f.w, density);
    const uint64_t cyc = run_sparse(nn::quantize_fc(f), x);
    t.add_row({fmt_double(density, 2), fmt_double(100 * (1 - density), 0) + "%",
               fmt_double(static_cast<double>(cyc) / 1000, 1),
               fmt_double(static_cast<double>(cyc) / dense_c, 2) + "x",
               fmt_double(static_cast<double>(cyc) / dense_e, 2) + "x"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("dense level-c: %.1f kcyc, level-e: %.1f kcyc. The sparse kernel\n",
              static_cast<double>(dense_c) / 1000, static_cast<double>(dense_e) / 1000);
  std::printf("needs ~90%% sparsity to beat the dense extended kernels — supporting\n");
  std::printf("the paper's choice to accelerate dense RNNs rather than rely on\n");
  std::printf("compression that RRM networks have not been shown to tolerate.\n");
  return 0;
}
