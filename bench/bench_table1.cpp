// Regenerates Table I: cycle and instruction count per optimization level
// for the entire RRM benchmark suite, as per-mnemonic histograms with the
// paper's display grouping (lw! = post-increment loads, pl.sdot, tanh,sig),
// plus the cumulative and incremental speedups of the bottom row.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string_view>
#include <map>
#include <vector>

#include "bench/bench_io.h"
#include "src/common/check.h"
#include "src/common/table.h"
#include "src/obs/report.h"
#include "src/obs/trace_export.h"
#include "src/rrm/engine.h"

using namespace rnnasip;

namespace {

void print_level(const rrm::SuiteResult& s, const rrm::SuiteResult& base,
                 const rrm::SuiteResult* prev, kernels::OptLevel level) {
  std::printf("--- %c) %s ---\n", kernels::opt_level_letter(level),
              kernels::opt_level_name(level).c_str());
  // Sort groups by cycle count, largest first, as the paper's columns do.
  const auto groups = s.total.by_display_group();
  std::vector<std::pair<std::string, iss::OpStat>> rows(groups.begin(), groups.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second.cycles > b.second.cycles; });

  Table t({"Instr.", "kcycles", "kinstrs"});
  uint64_t shown_c = 0, shown_i = 0;
  size_t printed = 0;
  uint64_t oth_c = 0, oth_i = 0;
  for (const auto& [name, stat] : rows) {
    if (printed < 6 && stat.cycles >= 1000) {
      t.add_row({name, fmt_count(stat.cycles / 1000), fmt_count(stat.instrs / 1000)});
      shown_c += stat.cycles;
      shown_i += stat.instrs;
      ++printed;
    } else {
      oth_c += stat.cycles;
      oth_i += stat.instrs;
    }
  }
  t.add_row({"oth.", fmt_count(oth_c / 1000), fmt_count(oth_i / 1000)});
  t.add_row({"Sum", fmt_count(s.total_cycles / 1000), fmt_count(s.total_instrs / 1000)});
  std::printf("%s", t.to_string().c_str());
  const double cum = static_cast<double>(base.total_cycles) / s.total_cycles;
  if (prev) {
    const double inc = static_cast<double>(prev->total_cycles) / s.total_cycles;
    std::printf("Impr. %.1fx (%.2fx incremental)\n\n", cum, inc);
  } else {
    std::printf("Impr. Baseline (1x)\n\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::parse(argc, argv);
  bool per_net = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--per-net") per_net = true;
  }
  const bool observe = io.observe() || io.flamegraph_enabled();
  const std::string trace_path = io.trace_path();
  std::printf("==============================================================\n");
  std::printf("Table I — cycle and instruction count optimizations, RRM suite\n");
  std::printf("Paper:    a) 14'683 kcyc  b) 3'323  c) 1'756  d) 1'028  e) 980\n");
  std::printf("Paper:    speedups 1x / 4.4x / 8.4x / 14.3x / 15.0x\n");
  std::printf("==============================================================\n\n");

  rrm::Engine::Config cfg;
  cfg.seed = io.seed(cfg.seed);
  cfg.backend = io.backend();
  rrm::Engine eng(cfg);
  rrm::Request proto;
  proto.verify = true;
  // The per-opcode hotspot tables read ExecStats, which only the
  // interpreter collects; observe routes every request to the ISS on any
  // backend instead of silently printing empty tables. The region/trace
  // output below stays gated on the flags the user actually passed.
  proto.observe = true;
  proto.timeline = !trace_path.empty();
  const bool obs_output = observe || !trace_path.empty();

  std::vector<rrm::SuiteResult> results;
  for (auto level : kernels::kAllOptLevels) {
    results.push_back(eng.run_suite(level, proto));
    if (!results.back().all_verified) {
      std::printf("ERROR: level %c outputs did not verify against golden model\n",
                  kernels::opt_level_letter(level));
      return 1;
    }
  }

  for (size_t i = 0; i < results.size(); ++i) {
    print_level(results[i], results[0], i == 0 ? nullptr : &results[i - 1],
                kernels::kAllOptLevels[i]);
  }

  std::printf("Summary (measured vs paper):\n");
  Table t({"level", "kcycles", "speedup", "paper kcyc", "paper speedup"});
  const char* paper_kcyc[] = {"14'683", "3'323", "1'756", "1'028", "980"};
  const char* paper_speedup[] = {"1.0", "4.4", "8.4", "14.3", "15.0"};
  for (size_t i = 0; i < results.size(); ++i) {
    t.add_row({std::string(1, kernels::opt_level_letter(kernels::kAllOptLevels[i])),
               fmt_count(results[i].total_cycles / 1000),
               fmt_double(static_cast<double>(results[0].total_cycles) /
                              results[i].total_cycles,
                          1),
               paper_kcyc[i], paper_speedup[i]});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("All outputs verified bit-exact against the golden model.\n");

  if (per_net) {
    std::printf("\nPer-network appendix (kcycles at each level):\n");
    Table pn({"network", "a", "b", "c", "d", "e"});
    for (size_t i = 0; i < results[0].nets.size(); ++i) {
      std::vector<std::string> row = {results[0].nets[i].name};
      for (const auto& r : results) {
        row.push_back(fmt_double(static_cast<double>(r.nets[i].cycles) / 1000.0, 1));
      }
      pn.add_row(std::move(row));
    }
    std::printf("%s", pn.to_string().c_str());
    std::printf("\nCSV histogram of the final level:\n%s",
                results.back().total.to_csv().c_str());
  }

  if (obs_output) {
    // Region roll-up and stall taxonomy of the final (fully optimized) level.
    const auto& final_suite = results.back();
    std::printf("\nStall taxonomy, level e:\n%s\n",
                obs::stall_table(final_suite.total).to_string().c_str());
    for (const auto& n : final_suite.nets) {
      if (!n.obs) continue;
      std::printf("Region breakdown — %s:\n%s\n", n.name.c_str(),
                  obs::region_table(*n.obs).to_string().c_str());
    }
  }

  if (!trace_path.empty()) {
    std::vector<const obs::NetObservation*> views;
    for (const auto& n : results.back().nets) {
      if (n.obs) views.push_back(n.obs.get());
    }
    std::ofstream out(trace_path, std::ios::binary | std::ios::trunc);
    RNNASIP_CHECK_MSG(out.good(), "cannot open " << trace_path);
    const std::string json = obs::to_perfetto_json(views);
    out.write(json.data(), static_cast<std::streamsize>(json.size()));
    RNNASIP_CHECK(out.good());
    std::fprintf(stderr, "wrote %s\n", trace_path.c_str());
  }

  // Collapsed stacks of the final level's per-net region trees; one line
  // per region with nonzero self cycles, values summing to observed cycles.
  if (io.flamegraph_enabled()) {
    std::vector<const obs::NetObservation*> views;
    for (const auto& n : results.back().nets) {
      if (n.obs) views.push_back(n.obs.get());
    }
    bench::BenchIo::write_text(io.flamegraph_path(),
                               obs::to_collapsed_stacks(views));
  }

  if (io.json_enabled()) {
    obs::Json data = obs::Json::object();
    obs::Json levels = obs::Json::array();
    for (size_t i = 0; i < results.size(); ++i) {
      obs::Json l = obs::Json::object();
      l.set("level", std::string(1, kernels::opt_level_letter(kernels::kAllOptLevels[i])));
      l.set("speedup", static_cast<double>(results[0].total_cycles) /
                           static_cast<double>(results[i].total_cycles));
      l.set("suite", bench::suite_to_json(results[i]));
      if (obs_output) {
        // Per-region breakdown (scripts/trace_diff.py aligns two envelopes
        // on these network/path keys).
        obs::Json regions = obs::Json::array();
        for (const auto& n : results[i].nets) {
          if (n.obs) regions.push(obs::regions_to_json(*n.obs));
        }
        if (regions.size() > 0) l.set("regions", std::move(regions));
      }
      levels.push(std::move(l));
    }
    data.set("levels", std::move(levels));
    io.write_json("table1", std::move(data));
  }
  return 0;
}
