// Regenerates Table II: the assembly of the output-FM-tiled FC inner loop
// (tile of four) with plain pv.sdotsp.h (left column, 13 lines) and with the
// pl.sdotsp.h load-and-compute instruction (right column, 9 lines including
// the rB bubble), and measures the per-iteration cycle cost of each.
#include <cstdio>

#include "bench/bench_io.h"
#include "src/asm/builder.h"
#include "src/common/check.h"
#include "src/asm/disasm.h"
#include "src/iss/core.h"
#include "src/kernels/layout.h"

using namespace rnnasip;
using assembler::disassemble;
using assembler::ProgramBuilder;
using namespace isa;

namespace {

constexpr uint32_t kW0 = 0x20000;   // four weight rows, 32 pairs each
constexpr uint32_t kX = 0x28000;    // input stream
constexpr int kIters = 32;
constexpr int kRowBytes = 4 * kIters;

struct LoopResult {
  std::string listing;
  uint64_t body_cycles;  // total cycles spent in the loop body
};

/// Table II left: lw rB + 4x lw rA + 4x pv.sdotsp.h.
LoopResult run_left() {
  iss::Memory mem(1u << 20);
  ProgramBuilder b(kernels::kTextBase);
  b.li(kT0, kX);                            // rBAddr
  b.li(kA0, kW0);                           // rAAddr0
  b.li(kA1, kW0 + kRowBytes);               // rAAddr1
  b.li(kA2, kW0 + 2 * kRowBytes);           // rAAddr2
  b.li(kA3, kW0 + 3 * kRowBytes);           // rAAddr3
  const size_t body_start = b.position();
  auto end = b.make_label();
  b.lp_setupi(0, kIters, end);              // lp.setupi 0, 9, 32  "do {"
  b.p_lw(kT1, 4, kT0);                      //   lw rB, Imm(rBAddr!)
  b.p_lw(kA4, 4, kA0);                      //   lw rA0, Imm(rAAddr0!)
  b.p_lw(kA5, 4, kA1);                      //   lw rA1, Imm(rAAddr1!)
  b.p_lw(kA6, 4, kA2);                      //   lw rA2, Imm(rAAddr2!)
  b.p_lw(kA7, 4, kA3);                      //   lw rA3, Imm(rAAddr3!)
  b.pv_sdotsp_h(kS2, kA4, kT1);             //   pv.sdotsp.h rD0, rA0, rB
  b.pv_sdotsp_h(kS3, kA5, kT1);             //   pv.sdotsp.h rD1, rA1, rB
  b.pv_sdotsp_h(kS4, kA6, kT1);             //   pv.sdotsp.h rD2, rA2, rB
  b.pv_sdotsp_h(kS5, kA7, kT1);             //   pv.sdotsp.h rD3, rA3, rB "}"
  b.bind(end);
  const size_t body_end = b.position();
  b.ebreak();
  auto prog = b.build();

  iss::Core core(&mem);
  core.load_program(prog);
  core.reset(prog.base);
  const auto res = core.run();
  RNNASIP_CHECK_MSG(res.ok(), "Table II loop run failed: " << res.describe());
  LoopResult out;
  out.body_cycles = res.cycles - 6 /* li setup */ - 1 /* ebreak */;
  for (size_t i = body_start; i < body_end; ++i) {
    out.listing += "  " + disassemble(prog.instrs[i], prog.address_of(i)) + "\n";
  }
  return out;
}

/// Table II right: SPR preload + lw rB (bubble) + 4 alternating pl.sdotsp.
LoopResult run_right() {
  iss::Memory mem(1u << 20);
  ProgramBuilder b(kernels::kTextBase);
  b.li(kT0, kX);
  b.li(kA0, kW0);
  b.li(kA1, kW0 + kRowBytes);
  b.li(kA2, kW0 + 2 * kRowBytes);
  b.li(kA3, kW0 + 3 * kRowBytes);
  const size_t body_start = b.position();
  b.pl_sdotsp_h(0, kZero, kA0, kZero);      // pl.sdotsp.h.0 r0, rA0, r0
  b.pl_sdotsp_h(1, kZero, kA1, kZero);      // pl.sdotsp.h.1 r0, rA1, r0
  auto end = b.make_label();
  b.lp_setupi(0, kIters, end);              // lp.setupi 0, 5, 32  "do {"
  b.p_lw(kT1, 4, kT0);                      //   lw rB, Imm(rBAddr!)
                                            //   (bubble: rB dependency)
  b.pl_sdotsp_h(0, kS2, kA2, kT1);          //   pl.sdotsp.h.0 rD0, rA2, rB
  b.pl_sdotsp_h(1, kS3, kA3, kT1);          //   pl.sdotsp.h.1 rD1, rA3, rB
  b.pl_sdotsp_h(0, kS4, kA0, kT1);          //   pl.sdotsp.h.0 rD2, rA0, rB
  b.pl_sdotsp_h(1, kS5, kA1, kT1);          //   pl.sdotsp.h.1 rD3, rA1, rB "}"
  b.bind(end);
  const size_t body_end = b.position();
  b.ebreak();
  auto prog = b.build();

  iss::Core core(&mem);
  core.load_program(prog);
  core.reset(prog.base);
  const auto res = core.run();
  RNNASIP_CHECK_MSG(res.ok(), "Table II loop run failed: " << res.describe());
  LoopResult out;
  out.body_cycles = res.cycles - 6 - 1;
  for (size_t i = body_start; i < body_end; ++i) {
    out.listing += "  " + disassemble(prog.instrs[i], prog.address_of(i)) + "\n";
  }
  return out;
}

obs::Json loop_to_json(const LoopResult& r, int instrs) {
  obs::Json j = obs::Json::object();
  j.set("body_cycles", r.body_cycles);
  j.set("cycles_per_iter", static_cast<double>(r.body_cycles) / kIters);
  j.set("instrs_per_iter", instrs);
  obs::Json listing = obs::Json::array();
  size_t start = 0;
  while (start < r.listing.size()) {
    size_t nl = r.listing.find('\n', start);
    if (nl == std::string::npos) nl = r.listing.size();
    std::string line = r.listing.substr(start, nl - start);
    // Trim the two-space display indent.
    if (line.rfind("  ", 0) == 0) line = line.substr(2);
    if (!line.empty()) listing.push(line);
    start = nl + 1;
  }
  j.set("listing", std::move(listing));
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::parse(argc, argv);
  std::printf("=====================================================================\n");
  std::printf("Table II — tiled FC inner loop, with FM tiling only vs pl.sdotsp.h\n");
  std::printf("=====================================================================\n\n");

  const auto left = run_left();
  const auto right = run_right();

  std::printf("Left (output-FM tiling, pv.sdotsp.h):\n%s\n", left.listing.c_str());
  std::printf("Right (pl.sdotsp.h load-and-compute):\n%s\n", right.listing.c_str());

  const double left_per_iter = static_cast<double>(left.body_cycles) / kIters;
  const double right_per_iter = static_cast<double>(right.body_cycles) / kIters;
  std::printf("Measured over %d iterations (8 MACs each):\n", kIters);
  std::printf("  left : %llu cycles total, %.2f cycles/iter (9 instructions)\n",
              static_cast<unsigned long long>(left.body_cycles), left_per_iter);
  std::printf("  right: %llu cycles total, %.2f cycles/iter (5 instructions + bubble)\n",
              static_cast<unsigned long long>(right.body_cycles), right_per_iter);
  std::printf("  speedup: %.2fx (paper Table Id reports 1.7x on the full suite,\n",
              left_per_iter / right_per_iter);
  std::printf("  where epilogues and small layers dilute the inner-loop gain)\n");

  if (io.json_enabled()) {
    obs::Json data = obs::Json::object();
    data.set("iters", kIters);
    data.set("macs_per_iter", 8);
    data.set("left", loop_to_json(left, 9));
    data.set("right", loop_to_json(right, 5));
    data.set("speedup", left_per_iter / right_per_iter);
    io.write_json("table2", std::move(data));
  }
  return 0;
}
