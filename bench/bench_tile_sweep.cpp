// Ablation bench: output-FM tile size sweep (the design choice behind
// Alg. 1 / Sec. III-C — "N can be increased until the available registers
// are exhausted"), and the loads-per-MAC model O(1 + 1/N) it implies.
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/iss/core.h"
#include "src/kernels/network.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"

using namespace rnnasip;
using kernels::OptLevel;

namespace {

struct Point {
  uint64_t cycles;
  double loads_per_mac;
};

Point run_tile(OptLevel level, int max_tile, const nn::FcParamsQ& fc,
               const std::vector<int16_t>& x) {
  iss::Memory mem(8u << 20);
  iss::Core core(&mem);
  kernels::NetworkProgramBuilder nb(&mem, level, core.tanh_table(), core.sig_table(),
                                    max_tile);
  nb.add_fc(fc);
  const auto net = nb.finalize();
  core.load_program(net.program);
  kernels::run_forward(core, mem, net, x);
  uint64_t loads = 0;
  for (const auto& [op, s] : core.stats().by_opcode()) {
    if (isa::opcode_info(op).unit == isa::Unit::kLoad) loads += s.instrs;
  }
  return {core.stats().total_cycles(),
          static_cast<double>(loads) / static_cast<double>(net.nominal_macs)};
}

}  // namespace

int main() {
  std::printf("=====================================================================\n");
  std::printf("Ablation — output-FM tile size N (Sec. III-C, Alg. 1)\n");
  std::printf("Loads per MAC should follow O((1 + 1/N)/2) at level c (2 MACs/word),\n");
  std::printf("saturating when the register file is exhausted (N <= 8 here).\n");
  std::printf("=====================================================================\n\n");

  Rng rng(0x711E);
  const auto fc = nn::quantize_fc(nn::random_fc(rng, 320, 64, nn::ActKind::kNone));
  const auto x = nn::quantize_vector(nn::random_vector(rng, 320, 1.0f));

  Table t({"N (max_tile)", "c: kcycles", "c: loads/MAC", "d: kcycles", "d: loads/MAC",
           "e: kcycles"});
  uint64_t c1 = 0;
  for (int n : {1, 2, 4, 6, 8}) {
    const auto c = run_tile(OptLevel::kOutputTiling, n, fc, x);
    const auto d = run_tile(OptLevel::kLoadCompute, n, fc, x);
    const auto e = run_tile(OptLevel::kInputTiling, n, fc, x);
    if (n == 1) c1 = c.cycles;
    t.add_row({std::to_string(n), fmt_double(static_cast<double>(c.cycles) / 1000, 1),
               fmt_double(c.loads_per_mac, 3),
               fmt_double(static_cast<double>(d.cycles) / 1000, 1),
               fmt_double(d.loads_per_mac, 3),
               fmt_double(static_cast<double>(e.cycles) / 1000, 1)});
  }
  std::printf("%s\n", t.to_string().c_str());

  const auto c8 = run_tile(OptLevel::kOutputTiling, 8, fc, x);
  std::printf("Tiling gain at level c, N=1 -> N=8: %.2fx (paper Sec. III-C: optimal\n",
              static_cast<double>(c1) / static_cast<double>(c8.cycles));
  std::printf("tiling contributes 1.89x on the suite; per-network 1.07x-1.87x).\n");
  return 0;
}
