# Empty compiler generated dependencies file for bench_act_e2e.
# This may be replaced when dependencies are built.
