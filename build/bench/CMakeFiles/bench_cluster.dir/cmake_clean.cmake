file(REMOVE_RECURSE
  "CMakeFiles/bench_cluster.dir/bench_cluster.cpp.o"
  "CMakeFiles/bench_cluster.dir/bench_cluster.cpp.o.d"
  "bench_cluster"
  "bench_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
