# Empty dependencies file for bench_cluster.
# This may be replaced when dependencies are built.
