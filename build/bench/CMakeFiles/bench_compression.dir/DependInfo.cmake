
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_compression.cpp" "bench/CMakeFiles/bench_compression.dir/bench_compression.cpp.o" "gcc" "bench/CMakeFiles/bench_compression.dir/bench_compression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asm/CMakeFiles/rnnasip_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/rrm/CMakeFiles/rnnasip_rrm.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/rnnasip_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/rnnasip_iss.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rnnasip_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rnnasip_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/activation/CMakeFiles/rnnasip_activation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rnnasip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
