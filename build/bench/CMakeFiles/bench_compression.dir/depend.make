# Empty dependencies file for bench_compression.
# This may be replaced when dependencies are built.
