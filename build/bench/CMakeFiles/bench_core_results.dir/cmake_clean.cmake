file(REMOVE_RECURSE
  "CMakeFiles/bench_core_results.dir/bench_core_results.cpp.o"
  "CMakeFiles/bench_core_results.dir/bench_core_results.cpp.o.d"
  "bench_core_results"
  "bench_core_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_core_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
