# Empty compiler generated dependencies file for bench_core_results.
# This may be replaced when dependencies are built.
