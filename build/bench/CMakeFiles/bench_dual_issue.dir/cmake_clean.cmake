file(REMOVE_RECURSE
  "CMakeFiles/bench_dual_issue.dir/bench_dual_issue.cpp.o"
  "CMakeFiles/bench_dual_issue.dir/bench_dual_issue.cpp.o.d"
  "bench_dual_issue"
  "bench_dual_issue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dual_issue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
