# Empty dependencies file for bench_dual_issue.
# This may be replaced when dependencies are built.
