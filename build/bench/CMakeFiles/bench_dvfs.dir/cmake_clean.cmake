file(REMOVE_RECURSE
  "CMakeFiles/bench_dvfs.dir/bench_dvfs.cpp.o"
  "CMakeFiles/bench_dvfs.dir/bench_dvfs.cpp.o.d"
  "bench_dvfs"
  "bench_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
