# Empty dependencies file for bench_dvfs.
# This may be replaced when dependencies are built.
