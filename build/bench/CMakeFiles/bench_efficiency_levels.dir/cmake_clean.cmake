file(REMOVE_RECURSE
  "CMakeFiles/bench_efficiency_levels.dir/bench_efficiency_levels.cpp.o"
  "CMakeFiles/bench_efficiency_levels.dir/bench_efficiency_levels.cpp.o.d"
  "bench_efficiency_levels"
  "bench_efficiency_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_efficiency_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
