# Empty compiler generated dependencies file for bench_efficiency_levels.
# This may be replaced when dependencies are built.
