file(REMOVE_RECURSE
  "CMakeFiles/bench_int8.dir/bench_int8.cpp.o"
  "CMakeFiles/bench_int8.dir/bench_int8.cpp.o.d"
  "bench_int8"
  "bench_int8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_int8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
