# Empty compiler generated dependencies file for bench_int8.
# This may be replaced when dependencies are built.
