file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_sensitivity.dir/bench_memory_sensitivity.cpp.o"
  "CMakeFiles/bench_memory_sensitivity.dir/bench_memory_sensitivity.cpp.o.d"
  "bench_memory_sensitivity"
  "bench_memory_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
