file(REMOVE_RECURSE
  "CMakeFiles/bench_qformat.dir/bench_qformat.cpp.o"
  "CMakeFiles/bench_qformat.dir/bench_qformat.cpp.o.d"
  "bench_qformat"
  "bench_qformat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qformat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
