# Empty dependencies file for bench_qformat.
# This may be replaced when dependencies are built.
