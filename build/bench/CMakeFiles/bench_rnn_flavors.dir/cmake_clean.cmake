file(REMOVE_RECURSE
  "CMakeFiles/bench_rnn_flavors.dir/bench_rnn_flavors.cpp.o"
  "CMakeFiles/bench_rnn_flavors.dir/bench_rnn_flavors.cpp.o.d"
  "bench_rnn_flavors"
  "bench_rnn_flavors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rnn_flavors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
