# Empty dependencies file for bench_rnn_flavors.
# This may be replaced when dependencies are built.
