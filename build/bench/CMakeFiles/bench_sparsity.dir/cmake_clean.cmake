file(REMOVE_RECURSE
  "CMakeFiles/bench_sparsity.dir/bench_sparsity.cpp.o"
  "CMakeFiles/bench_sparsity.dir/bench_sparsity.cpp.o.d"
  "bench_sparsity"
  "bench_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
