# Empty compiler generated dependencies file for bench_sparsity.
# This may be replaced when dependencies are built.
