file(REMOVE_RECURSE
  "CMakeFiles/bench_tile_sweep.dir/bench_tile_sweep.cpp.o"
  "CMakeFiles/bench_tile_sweep.dir/bench_tile_sweep.cpp.o.d"
  "bench_tile_sweep"
  "bench_tile_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tile_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
