# Empty dependencies file for bench_tile_sweep.
# This may be replaced when dependencies are built.
