file(REMOVE_RECURSE
  "CMakeFiles/asm_playground.dir/asm_playground.cpp.o"
  "CMakeFiles/asm_playground.dir/asm_playground.cpp.o.d"
  "asm_playground"
  "asm_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asm_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
