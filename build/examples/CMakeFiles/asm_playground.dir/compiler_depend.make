# Empty compiler generated dependencies file for asm_playground.
# This may be replaced when dependencies are built.
