file(REMOVE_RECURSE
  "CMakeFiles/isa_explorer.dir/isa_explorer.cpp.o"
  "CMakeFiles/isa_explorer.dir/isa_explorer.cpp.o.d"
  "isa_explorer"
  "isa_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
