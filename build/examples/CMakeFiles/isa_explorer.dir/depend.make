# Empty dependencies file for isa_explorer.
# This may be replaced when dependencies are built.
