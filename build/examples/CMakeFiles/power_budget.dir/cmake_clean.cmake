file(REMOVE_RECURSE
  "CMakeFiles/power_budget.dir/power_budget.cpp.o"
  "CMakeFiles/power_budget.dir/power_budget.cpp.o.d"
  "power_budget"
  "power_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
