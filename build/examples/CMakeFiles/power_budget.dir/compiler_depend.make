# Empty compiler generated dependencies file for power_budget.
# This may be replaced when dependencies are built.
