file(REMOVE_RECURSE
  "CMakeFiles/power_control_sim.dir/power_control_sim.cpp.o"
  "CMakeFiles/power_control_sim.dir/power_control_sim.cpp.o.d"
  "power_control_sim"
  "power_control_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_control_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
