# Empty dependencies file for power_control_sim.
# This may be replaced when dependencies are built.
