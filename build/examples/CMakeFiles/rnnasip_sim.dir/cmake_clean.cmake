file(REMOVE_RECURSE
  "CMakeFiles/rnnasip_sim.dir/rnnasip_sim.cpp.o"
  "CMakeFiles/rnnasip_sim.dir/rnnasip_sim.cpp.o.d"
  "rnnasip_sim"
  "rnnasip_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rnnasip_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
