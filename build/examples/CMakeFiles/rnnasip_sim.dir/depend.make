# Empty dependencies file for rnnasip_sim.
# This may be replaced when dependencies are built.
