file(REMOVE_RECURSE
  "CMakeFiles/rrm_spectrum_agent.dir/rrm_spectrum_agent.cpp.o"
  "CMakeFiles/rrm_spectrum_agent.dir/rrm_spectrum_agent.cpp.o.d"
  "rrm_spectrum_agent"
  "rrm_spectrum_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrm_spectrum_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
