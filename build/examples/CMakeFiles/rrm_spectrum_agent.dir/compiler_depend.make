# Empty compiler generated dependencies file for rrm_spectrum_agent.
# This may be replaced when dependencies are built.
