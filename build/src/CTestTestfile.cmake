# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("isa")
subdirs("asm")
subdirs("iss")
subdirs("activation")
subdirs("nn")
subdirs("kernels")
subdirs("rrm")
subdirs("impl_model")
