file(REMOVE_RECURSE
  "CMakeFiles/rnnasip_activation.dir/pla.cpp.o"
  "CMakeFiles/rnnasip_activation.dir/pla.cpp.o.d"
  "librnnasip_activation.a"
  "librnnasip_activation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rnnasip_activation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
