file(REMOVE_RECURSE
  "librnnasip_activation.a"
)
