# Empty dependencies file for rnnasip_activation.
# This may be replaced when dependencies are built.
