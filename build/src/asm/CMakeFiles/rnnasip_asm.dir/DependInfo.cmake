
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asm/builder.cpp" "src/asm/CMakeFiles/rnnasip_asm.dir/builder.cpp.o" "gcc" "src/asm/CMakeFiles/rnnasip_asm.dir/builder.cpp.o.d"
  "/root/repo/src/asm/compress_pass.cpp" "src/asm/CMakeFiles/rnnasip_asm.dir/compress_pass.cpp.o" "gcc" "src/asm/CMakeFiles/rnnasip_asm.dir/compress_pass.cpp.o.d"
  "/root/repo/src/asm/disasm.cpp" "src/asm/CMakeFiles/rnnasip_asm.dir/disasm.cpp.o" "gcc" "src/asm/CMakeFiles/rnnasip_asm.dir/disasm.cpp.o.d"
  "/root/repo/src/asm/parser.cpp" "src/asm/CMakeFiles/rnnasip_asm.dir/parser.cpp.o" "gcc" "src/asm/CMakeFiles/rnnasip_asm.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/rnnasip_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rnnasip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
