file(REMOVE_RECURSE
  "CMakeFiles/rnnasip_asm.dir/builder.cpp.o"
  "CMakeFiles/rnnasip_asm.dir/builder.cpp.o.d"
  "CMakeFiles/rnnasip_asm.dir/compress_pass.cpp.o"
  "CMakeFiles/rnnasip_asm.dir/compress_pass.cpp.o.d"
  "CMakeFiles/rnnasip_asm.dir/disasm.cpp.o"
  "CMakeFiles/rnnasip_asm.dir/disasm.cpp.o.d"
  "CMakeFiles/rnnasip_asm.dir/parser.cpp.o"
  "CMakeFiles/rnnasip_asm.dir/parser.cpp.o.d"
  "librnnasip_asm.a"
  "librnnasip_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rnnasip_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
