file(REMOVE_RECURSE
  "librnnasip_asm.a"
)
