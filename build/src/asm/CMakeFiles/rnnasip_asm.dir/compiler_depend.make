# Empty compiler generated dependencies file for rnnasip_asm.
# This may be replaced when dependencies are built.
