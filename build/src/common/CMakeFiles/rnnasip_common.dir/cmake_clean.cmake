file(REMOVE_RECURSE
  "CMakeFiles/rnnasip_common.dir/fixed_point.cpp.o"
  "CMakeFiles/rnnasip_common.dir/fixed_point.cpp.o.d"
  "CMakeFiles/rnnasip_common.dir/stats.cpp.o"
  "CMakeFiles/rnnasip_common.dir/stats.cpp.o.d"
  "CMakeFiles/rnnasip_common.dir/table.cpp.o"
  "CMakeFiles/rnnasip_common.dir/table.cpp.o.d"
  "librnnasip_common.a"
  "librnnasip_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rnnasip_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
