file(REMOVE_RECURSE
  "librnnasip_common.a"
)
