# Empty compiler generated dependencies file for rnnasip_common.
# This may be replaced when dependencies are built.
