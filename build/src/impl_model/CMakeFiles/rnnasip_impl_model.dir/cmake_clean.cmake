file(REMOVE_RECURSE
  "CMakeFiles/rnnasip_impl_model.dir/impl_model.cpp.o"
  "CMakeFiles/rnnasip_impl_model.dir/impl_model.cpp.o.d"
  "librnnasip_impl_model.a"
  "librnnasip_impl_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rnnasip_impl_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
