file(REMOVE_RECURSE
  "librnnasip_impl_model.a"
)
