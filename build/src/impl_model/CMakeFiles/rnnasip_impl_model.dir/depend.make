# Empty dependencies file for rnnasip_impl_model.
# This may be replaced when dependencies are built.
