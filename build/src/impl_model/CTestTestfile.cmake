# CMake generated Testfile for 
# Source directory: /root/repo/src/impl_model
# Build directory: /root/repo/build/src/impl_model
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
