
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/decode.cpp" "src/isa/CMakeFiles/rnnasip_isa.dir/decode.cpp.o" "gcc" "src/isa/CMakeFiles/rnnasip_isa.dir/decode.cpp.o.d"
  "/root/repo/src/isa/encode.cpp" "src/isa/CMakeFiles/rnnasip_isa.dir/encode.cpp.o" "gcc" "src/isa/CMakeFiles/rnnasip_isa.dir/encode.cpp.o.d"
  "/root/repo/src/isa/opcode.cpp" "src/isa/CMakeFiles/rnnasip_isa.dir/opcode.cpp.o" "gcc" "src/isa/CMakeFiles/rnnasip_isa.dir/opcode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rnnasip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
