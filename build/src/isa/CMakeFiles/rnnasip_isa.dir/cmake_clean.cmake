file(REMOVE_RECURSE
  "CMakeFiles/rnnasip_isa.dir/decode.cpp.o"
  "CMakeFiles/rnnasip_isa.dir/decode.cpp.o.d"
  "CMakeFiles/rnnasip_isa.dir/encode.cpp.o"
  "CMakeFiles/rnnasip_isa.dir/encode.cpp.o.d"
  "CMakeFiles/rnnasip_isa.dir/opcode.cpp.o"
  "CMakeFiles/rnnasip_isa.dir/opcode.cpp.o.d"
  "librnnasip_isa.a"
  "librnnasip_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rnnasip_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
