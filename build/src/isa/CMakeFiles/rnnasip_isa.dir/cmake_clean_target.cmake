file(REMOVE_RECURSE
  "librnnasip_isa.a"
)
