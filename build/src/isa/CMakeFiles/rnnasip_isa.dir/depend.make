# Empty dependencies file for rnnasip_isa.
# This may be replaced when dependencies are built.
