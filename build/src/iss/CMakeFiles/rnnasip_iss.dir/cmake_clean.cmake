file(REMOVE_RECURSE
  "CMakeFiles/rnnasip_iss.dir/core.cpp.o"
  "CMakeFiles/rnnasip_iss.dir/core.cpp.o.d"
  "CMakeFiles/rnnasip_iss.dir/memory.cpp.o"
  "CMakeFiles/rnnasip_iss.dir/memory.cpp.o.d"
  "CMakeFiles/rnnasip_iss.dir/stats.cpp.o"
  "CMakeFiles/rnnasip_iss.dir/stats.cpp.o.d"
  "CMakeFiles/rnnasip_iss.dir/trace.cpp.o"
  "CMakeFiles/rnnasip_iss.dir/trace.cpp.o.d"
  "librnnasip_iss.a"
  "librnnasip_iss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rnnasip_iss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
