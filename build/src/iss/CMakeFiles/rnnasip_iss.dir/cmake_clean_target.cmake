file(REMOVE_RECURSE
  "librnnasip_iss.a"
)
