# Empty dependencies file for rnnasip_iss.
# This may be replaced when dependencies are built.
