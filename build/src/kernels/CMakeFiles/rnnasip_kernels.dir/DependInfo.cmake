
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/act_routines.cpp" "src/kernels/CMakeFiles/rnnasip_kernels.dir/act_routines.cpp.o" "gcc" "src/kernels/CMakeFiles/rnnasip_kernels.dir/act_routines.cpp.o.d"
  "/root/repo/src/kernels/argmax.cpp" "src/kernels/CMakeFiles/rnnasip_kernels.dir/argmax.cpp.o" "gcc" "src/kernels/CMakeFiles/rnnasip_kernels.dir/argmax.cpp.o.d"
  "/root/repo/src/kernels/conv.cpp" "src/kernels/CMakeFiles/rnnasip_kernels.dir/conv.cpp.o" "gcc" "src/kernels/CMakeFiles/rnnasip_kernels.dir/conv.cpp.o.d"
  "/root/repo/src/kernels/copy.cpp" "src/kernels/CMakeFiles/rnnasip_kernels.dir/copy.cpp.o" "gcc" "src/kernels/CMakeFiles/rnnasip_kernels.dir/copy.cpp.o.d"
  "/root/repo/src/kernels/fc.cpp" "src/kernels/CMakeFiles/rnnasip_kernels.dir/fc.cpp.o" "gcc" "src/kernels/CMakeFiles/rnnasip_kernels.dir/fc.cpp.o.d"
  "/root/repo/src/kernels/fc8.cpp" "src/kernels/CMakeFiles/rnnasip_kernels.dir/fc8.cpp.o" "gcc" "src/kernels/CMakeFiles/rnnasip_kernels.dir/fc8.cpp.o.d"
  "/root/repo/src/kernels/fc_batch.cpp" "src/kernels/CMakeFiles/rnnasip_kernels.dir/fc_batch.cpp.o" "gcc" "src/kernels/CMakeFiles/rnnasip_kernels.dir/fc_batch.cpp.o.d"
  "/root/repo/src/kernels/fc_sparse.cpp" "src/kernels/CMakeFiles/rnnasip_kernels.dir/fc_sparse.cpp.o" "gcc" "src/kernels/CMakeFiles/rnnasip_kernels.dir/fc_sparse.cpp.o.d"
  "/root/repo/src/kernels/gru.cpp" "src/kernels/CMakeFiles/rnnasip_kernels.dir/gru.cpp.o" "gcc" "src/kernels/CMakeFiles/rnnasip_kernels.dir/gru.cpp.o.d"
  "/root/repo/src/kernels/layout.cpp" "src/kernels/CMakeFiles/rnnasip_kernels.dir/layout.cpp.o" "gcc" "src/kernels/CMakeFiles/rnnasip_kernels.dir/layout.cpp.o.d"
  "/root/repo/src/kernels/lstm.cpp" "src/kernels/CMakeFiles/rnnasip_kernels.dir/lstm.cpp.o" "gcc" "src/kernels/CMakeFiles/rnnasip_kernels.dir/lstm.cpp.o.d"
  "/root/repo/src/kernels/network.cpp" "src/kernels/CMakeFiles/rnnasip_kernels.dir/network.cpp.o" "gcc" "src/kernels/CMakeFiles/rnnasip_kernels.dir/network.cpp.o.d"
  "/root/repo/src/kernels/opt_level.cpp" "src/kernels/CMakeFiles/rnnasip_kernels.dir/opt_level.cpp.o" "gcc" "src/kernels/CMakeFiles/rnnasip_kernels.dir/opt_level.cpp.o.d"
  "/root/repo/src/kernels/pool.cpp" "src/kernels/CMakeFiles/rnnasip_kernels.dir/pool.cpp.o" "gcc" "src/kernels/CMakeFiles/rnnasip_kernels.dir/pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asm/CMakeFiles/rnnasip_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/rnnasip_iss.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rnnasip_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rnnasip_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/activation/CMakeFiles/rnnasip_activation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rnnasip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
