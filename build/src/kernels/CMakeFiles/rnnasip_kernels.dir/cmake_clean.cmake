file(REMOVE_RECURSE
  "CMakeFiles/rnnasip_kernels.dir/act_routines.cpp.o"
  "CMakeFiles/rnnasip_kernels.dir/act_routines.cpp.o.d"
  "CMakeFiles/rnnasip_kernels.dir/argmax.cpp.o"
  "CMakeFiles/rnnasip_kernels.dir/argmax.cpp.o.d"
  "CMakeFiles/rnnasip_kernels.dir/conv.cpp.o"
  "CMakeFiles/rnnasip_kernels.dir/conv.cpp.o.d"
  "CMakeFiles/rnnasip_kernels.dir/copy.cpp.o"
  "CMakeFiles/rnnasip_kernels.dir/copy.cpp.o.d"
  "CMakeFiles/rnnasip_kernels.dir/fc.cpp.o"
  "CMakeFiles/rnnasip_kernels.dir/fc.cpp.o.d"
  "CMakeFiles/rnnasip_kernels.dir/fc8.cpp.o"
  "CMakeFiles/rnnasip_kernels.dir/fc8.cpp.o.d"
  "CMakeFiles/rnnasip_kernels.dir/fc_batch.cpp.o"
  "CMakeFiles/rnnasip_kernels.dir/fc_batch.cpp.o.d"
  "CMakeFiles/rnnasip_kernels.dir/fc_sparse.cpp.o"
  "CMakeFiles/rnnasip_kernels.dir/fc_sparse.cpp.o.d"
  "CMakeFiles/rnnasip_kernels.dir/gru.cpp.o"
  "CMakeFiles/rnnasip_kernels.dir/gru.cpp.o.d"
  "CMakeFiles/rnnasip_kernels.dir/layout.cpp.o"
  "CMakeFiles/rnnasip_kernels.dir/layout.cpp.o.d"
  "CMakeFiles/rnnasip_kernels.dir/lstm.cpp.o"
  "CMakeFiles/rnnasip_kernels.dir/lstm.cpp.o.d"
  "CMakeFiles/rnnasip_kernels.dir/network.cpp.o"
  "CMakeFiles/rnnasip_kernels.dir/network.cpp.o.d"
  "CMakeFiles/rnnasip_kernels.dir/opt_level.cpp.o"
  "CMakeFiles/rnnasip_kernels.dir/opt_level.cpp.o.d"
  "CMakeFiles/rnnasip_kernels.dir/pool.cpp.o"
  "CMakeFiles/rnnasip_kernels.dir/pool.cpp.o.d"
  "librnnasip_kernels.a"
  "librnnasip_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rnnasip_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
