file(REMOVE_RECURSE
  "librnnasip_kernels.a"
)
