# Empty compiler generated dependencies file for rnnasip_kernels.
# This may be replaced when dependencies are built.
