file(REMOVE_RECURSE
  "CMakeFiles/rnnasip_nn.dir/init.cpp.o"
  "CMakeFiles/rnnasip_nn.dir/init.cpp.o.d"
  "CMakeFiles/rnnasip_nn.dir/layers_fixp.cpp.o"
  "CMakeFiles/rnnasip_nn.dir/layers_fixp.cpp.o.d"
  "CMakeFiles/rnnasip_nn.dir/layers_float.cpp.o"
  "CMakeFiles/rnnasip_nn.dir/layers_float.cpp.o.d"
  "CMakeFiles/rnnasip_nn.dir/quantize.cpp.o"
  "CMakeFiles/rnnasip_nn.dir/quantize.cpp.o.d"
  "librnnasip_nn.a"
  "librnnasip_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rnnasip_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
