file(REMOVE_RECURSE
  "librnnasip_nn.a"
)
