# Empty dependencies file for rnnasip_nn.
# This may be replaced when dependencies are built.
