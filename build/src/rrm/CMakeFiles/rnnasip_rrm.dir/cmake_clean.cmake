file(REMOVE_RECURSE
  "CMakeFiles/rnnasip_rrm.dir/agents.cpp.o"
  "CMakeFiles/rnnasip_rrm.dir/agents.cpp.o.d"
  "CMakeFiles/rnnasip_rrm.dir/env.cpp.o"
  "CMakeFiles/rnnasip_rrm.dir/env.cpp.o.d"
  "CMakeFiles/rnnasip_rrm.dir/networks.cpp.o"
  "CMakeFiles/rnnasip_rrm.dir/networks.cpp.o.d"
  "CMakeFiles/rnnasip_rrm.dir/suite.cpp.o"
  "CMakeFiles/rnnasip_rrm.dir/suite.cpp.o.d"
  "CMakeFiles/rnnasip_rrm.dir/wmmse.cpp.o"
  "CMakeFiles/rnnasip_rrm.dir/wmmse.cpp.o.d"
  "librnnasip_rrm.a"
  "librnnasip_rrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rnnasip_rrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
