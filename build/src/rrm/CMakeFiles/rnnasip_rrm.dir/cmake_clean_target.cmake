file(REMOVE_RECURSE
  "librnnasip_rrm.a"
)
