# Empty dependencies file for rnnasip_rrm.
# This may be replaced when dependencies are built.
