file(REMOVE_RECURSE
  "CMakeFiles/test_act_routines.dir/test_act_routines.cpp.o"
  "CMakeFiles/test_act_routines.dir/test_act_routines.cpp.o.d"
  "test_act_routines"
  "test_act_routines.pdb"
  "test_act_routines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_act_routines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
