# Empty dependencies file for test_act_routines.
# This may be replaced when dependencies are built.
