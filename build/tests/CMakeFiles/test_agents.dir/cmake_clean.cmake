file(REMOVE_RECURSE
  "CMakeFiles/test_agents.dir/test_agents.cpp.o"
  "CMakeFiles/test_agents.dir/test_agents.cpp.o.d"
  "test_agents"
  "test_agents.pdb"
  "test_agents[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
