# Empty dependencies file for test_agents.
# This may be replaced when dependencies are built.
