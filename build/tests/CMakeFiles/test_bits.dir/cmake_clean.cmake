file(REMOVE_RECURSE
  "CMakeFiles/test_bits.dir/test_bits.cpp.o"
  "CMakeFiles/test_bits.dir/test_bits.cpp.o.d"
  "test_bits"
  "test_bits.pdb"
  "test_bits[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
