file(REMOVE_RECURSE
  "CMakeFiles/test_compress_pass.dir/test_compress_pass.cpp.o"
  "CMakeFiles/test_compress_pass.dir/test_compress_pass.cpp.o.d"
  "test_compress_pass"
  "test_compress_pass.pdb"
  "test_compress_pass[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compress_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
