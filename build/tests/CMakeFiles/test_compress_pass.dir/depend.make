# Empty dependencies file for test_compress_pass.
# This may be replaced when dependencies are built.
