file(REMOVE_RECURSE
  "CMakeFiles/test_fixed_point.dir/test_fixed_point.cpp.o"
  "CMakeFiles/test_fixed_point.dir/test_fixed_point.cpp.o.d"
  "test_fixed_point"
  "test_fixed_point.pdb"
  "test_fixed_point[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixed_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
