# Empty dependencies file for test_fixed_point.
# This may be replaced when dependencies are built.
