file(REMOVE_RECURSE
  "CMakeFiles/test_impl_model.dir/test_impl_model.cpp.o"
  "CMakeFiles/test_impl_model.dir/test_impl_model.cpp.o.d"
  "test_impl_model"
  "test_impl_model.pdb"
  "test_impl_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_impl_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
