# Empty dependencies file for test_impl_model.
# This may be replaced when dependencies are built.
