file(REMOVE_RECURSE
  "CMakeFiles/test_iss_alu.dir/test_iss_alu.cpp.o"
  "CMakeFiles/test_iss_alu.dir/test_iss_alu.cpp.o.d"
  "test_iss_alu"
  "test_iss_alu.pdb"
  "test_iss_alu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iss_alu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
