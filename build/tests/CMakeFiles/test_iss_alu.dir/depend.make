# Empty dependencies file for test_iss_alu.
# This may be replaced when dependencies are built.
