file(REMOVE_RECURSE
  "CMakeFiles/test_iss_mem.dir/test_iss_mem.cpp.o"
  "CMakeFiles/test_iss_mem.dir/test_iss_mem.cpp.o.d"
  "test_iss_mem"
  "test_iss_mem.pdb"
  "test_iss_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iss_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
