# Empty compiler generated dependencies file for test_iss_mem.
# This may be replaced when dependencies are built.
