file(REMOVE_RECURSE
  "CMakeFiles/test_iss_misc.dir/test_iss_misc.cpp.o"
  "CMakeFiles/test_iss_misc.dir/test_iss_misc.cpp.o.d"
  "test_iss_misc"
  "test_iss_misc.pdb"
  "test_iss_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iss_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
