# Empty compiler generated dependencies file for test_iss_misc.
# This may be replaced when dependencies are built.
