file(REMOVE_RECURSE
  "CMakeFiles/test_iss_rnn_ext.dir/test_iss_rnn_ext.cpp.o"
  "CMakeFiles/test_iss_rnn_ext.dir/test_iss_rnn_ext.cpp.o.d"
  "test_iss_rnn_ext"
  "test_iss_rnn_ext.pdb"
  "test_iss_rnn_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iss_rnn_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
