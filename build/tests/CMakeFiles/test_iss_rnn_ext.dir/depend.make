# Empty dependencies file for test_iss_rnn_ext.
# This may be replaced when dependencies are built.
