file(REMOVE_RECURSE
  "CMakeFiles/test_iss_timing.dir/test_iss_timing.cpp.o"
  "CMakeFiles/test_iss_timing.dir/test_iss_timing.cpp.o.d"
  "test_iss_timing"
  "test_iss_timing.pdb"
  "test_iss_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iss_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
