# Empty dependencies file for test_iss_timing.
# This may be replaced when dependencies are built.
