file(REMOVE_RECURSE
  "CMakeFiles/test_iss_xpulp.dir/test_iss_xpulp.cpp.o"
  "CMakeFiles/test_iss_xpulp.dir/test_iss_xpulp.cpp.o.d"
  "test_iss_xpulp"
  "test_iss_xpulp.pdb"
  "test_iss_xpulp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iss_xpulp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
