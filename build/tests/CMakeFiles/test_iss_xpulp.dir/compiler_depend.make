# Empty compiler generated dependencies file for test_iss_xpulp.
# This may be replaced when dependencies are built.
