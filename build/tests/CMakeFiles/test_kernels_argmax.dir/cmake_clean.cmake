file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_argmax.dir/test_kernels_argmax.cpp.o"
  "CMakeFiles/test_kernels_argmax.dir/test_kernels_argmax.cpp.o.d"
  "test_kernels_argmax"
  "test_kernels_argmax.pdb"
  "test_kernels_argmax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_argmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
