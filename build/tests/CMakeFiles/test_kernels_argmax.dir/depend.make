# Empty dependencies file for test_kernels_argmax.
# This may be replaced when dependencies are built.
