file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_conv.dir/test_kernels_conv.cpp.o"
  "CMakeFiles/test_kernels_conv.dir/test_kernels_conv.cpp.o.d"
  "test_kernels_conv"
  "test_kernels_conv.pdb"
  "test_kernels_conv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
