# Empty dependencies file for test_kernels_conv.
# This may be replaced when dependencies are built.
