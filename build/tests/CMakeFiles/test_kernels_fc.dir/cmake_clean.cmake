file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_fc.dir/test_kernels_fc.cpp.o"
  "CMakeFiles/test_kernels_fc.dir/test_kernels_fc.cpp.o.d"
  "test_kernels_fc"
  "test_kernels_fc.pdb"
  "test_kernels_fc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_fc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
