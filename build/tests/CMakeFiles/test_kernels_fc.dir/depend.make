# Empty dependencies file for test_kernels_fc.
# This may be replaced when dependencies are built.
