file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_fc8.dir/test_kernels_fc8.cpp.o"
  "CMakeFiles/test_kernels_fc8.dir/test_kernels_fc8.cpp.o.d"
  "test_kernels_fc8"
  "test_kernels_fc8.pdb"
  "test_kernels_fc8[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_fc8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
