# Empty dependencies file for test_kernels_fc8.
# This may be replaced when dependencies are built.
