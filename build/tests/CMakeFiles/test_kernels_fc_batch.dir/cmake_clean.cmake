file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_fc_batch.dir/test_kernels_fc_batch.cpp.o"
  "CMakeFiles/test_kernels_fc_batch.dir/test_kernels_fc_batch.cpp.o.d"
  "test_kernels_fc_batch"
  "test_kernels_fc_batch.pdb"
  "test_kernels_fc_batch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_fc_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
