# Empty dependencies file for test_kernels_fc_batch.
# This may be replaced when dependencies are built.
