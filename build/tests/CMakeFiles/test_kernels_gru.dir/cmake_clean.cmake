file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_gru.dir/test_kernels_gru.cpp.o"
  "CMakeFiles/test_kernels_gru.dir/test_kernels_gru.cpp.o.d"
  "test_kernels_gru"
  "test_kernels_gru.pdb"
  "test_kernels_gru[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_gru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
