# Empty compiler generated dependencies file for test_kernels_gru.
# This may be replaced when dependencies are built.
