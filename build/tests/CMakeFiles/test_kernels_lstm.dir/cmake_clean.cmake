file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_lstm.dir/test_kernels_lstm.cpp.o"
  "CMakeFiles/test_kernels_lstm.dir/test_kernels_lstm.cpp.o.d"
  "test_kernels_lstm"
  "test_kernels_lstm.pdb"
  "test_kernels_lstm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_lstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
