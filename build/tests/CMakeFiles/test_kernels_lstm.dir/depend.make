# Empty dependencies file for test_kernels_lstm.
# This may be replaced when dependencies are built.
