file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_pool.dir/test_kernels_pool.cpp.o"
  "CMakeFiles/test_kernels_pool.dir/test_kernels_pool.cpp.o.d"
  "test_kernels_pool"
  "test_kernels_pool.pdb"
  "test_kernels_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
