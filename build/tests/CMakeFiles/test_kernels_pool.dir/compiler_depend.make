# Empty compiler generated dependencies file for test_kernels_pool.
# This may be replaced when dependencies are built.
