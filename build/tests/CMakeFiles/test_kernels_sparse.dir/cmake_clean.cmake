file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_sparse.dir/test_kernels_sparse.cpp.o"
  "CMakeFiles/test_kernels_sparse.dir/test_kernels_sparse.cpp.o.d"
  "test_kernels_sparse"
  "test_kernels_sparse.pdb"
  "test_kernels_sparse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
