# Empty compiler generated dependencies file for test_kernels_sparse.
# This may be replaced when dependencies are built.
