file(REMOVE_RECURSE
  "CMakeFiles/test_pla.dir/test_pla.cpp.o"
  "CMakeFiles/test_pla.dir/test_pla.cpp.o.d"
  "test_pla"
  "test_pla.pdb"
  "test_pla[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
