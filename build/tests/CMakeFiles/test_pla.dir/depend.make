# Empty dependencies file for test_pla.
# This may be replaced when dependencies are built.
