file(REMOVE_RECURSE
  "CMakeFiles/test_rrm_env.dir/test_rrm_env.cpp.o"
  "CMakeFiles/test_rrm_env.dir/test_rrm_env.cpp.o.d"
  "test_rrm_env"
  "test_rrm_env.pdb"
  "test_rrm_env[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rrm_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
