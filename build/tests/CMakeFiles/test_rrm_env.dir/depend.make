# Empty dependencies file for test_rrm_env.
# This may be replaced when dependencies are built.
