file(REMOVE_RECURSE
  "CMakeFiles/test_rrm_suite.dir/test_rrm_suite.cpp.o"
  "CMakeFiles/test_rrm_suite.dir/test_rrm_suite.cpp.o.d"
  "test_rrm_suite"
  "test_rrm_suite.pdb"
  "test_rrm_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rrm_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
