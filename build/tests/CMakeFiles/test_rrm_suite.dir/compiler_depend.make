# Empty compiler generated dependencies file for test_rrm_suite.
# This may be replaced when dependencies are built.
