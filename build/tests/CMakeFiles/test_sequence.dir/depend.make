# Empty dependencies file for test_sequence.
# This may be replaced when dependencies are built.
