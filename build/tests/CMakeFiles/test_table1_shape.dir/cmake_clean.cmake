file(REMOVE_RECURSE
  "CMakeFiles/test_table1_shape.dir/test_table1_shape.cpp.o"
  "CMakeFiles/test_table1_shape.dir/test_table1_shape.cpp.o.d"
  "test_table1_shape"
  "test_table1_shape.pdb"
  "test_table1_shape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table1_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
