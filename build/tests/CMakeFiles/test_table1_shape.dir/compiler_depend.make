# Empty compiler generated dependencies file for test_table1_shape.
# This may be replaced when dependencies are built.
