file(REMOVE_RECURSE
  "CMakeFiles/test_wmmse.dir/test_wmmse.cpp.o"
  "CMakeFiles/test_wmmse.dir/test_wmmse.cpp.o.d"
  "test_wmmse"
  "test_wmmse.pdb"
  "test_wmmse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wmmse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
