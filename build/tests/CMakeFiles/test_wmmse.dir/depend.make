# Empty dependencies file for test_wmmse.
# This may be replaced when dependencies are built.
