// Assembler playground: write a kernel in RNN-RISC-V assembly, run it on
// the simulated extended core, and get a trace plus a hotspot profile.
//
//   $ ./asm_playground file.s        # assemble + run a file
//   $ ./asm_playground               # run the built-in demo kernel
//
// The program must end in ebreak. Data memory starts zeroed at 0x10000;
// use li/sw to stage inputs, or preload patterns with the demo's helpers.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/asm/parser.h"
#include "src/iss/trace.h"

using namespace rnnasip;

namespace {

// A Table-II-flavored demo: dot product of two 64-element Q3.12 vectors
// with pl.sdotsp.h, then tanh of the requantized result.
constexpr const char* kDemo = R"(
    # stage test data: x[i] = 0.25, w[i] = 0.5 (packed pairs)
    li   a0, 0x10000       # w base
    li   a1, 0x10200       # x base
    li   t0, 0x08000800    # two Q3.12 0.5 halfwords
    li   t1, 0x04000400    # two Q3.12 0.25 halfwords
    li   t2, 32            # 32 words = 64 elements
  init:
    p.sw t0, 4(a0!)
    p.sw t1, 4(a1!)
    addi t2, t2, -1
    bne  t2, zero, init
    li   a0, 0x10000
    li   a1, 0x10200

    # dot product with the load-and-compute extension
    li   a2, 0             # accumulator
    pl.sdotsp.h.0 zero, a0, zero     # preload SPR0
    pl.sdotsp.h.1 zero, a0, zero     # preload SPR1
    lp.setupi 0, 16, done            # 16 iterations x 2 words
    p.lw a3, 4(a1!)
    p.lw a4, 4(a1!)
    pl.sdotsp.h.0 a2, a0, a3
    pl.sdotsp.h.1 a2, a0, a4
  done:
    srai a2, a2, 12        # requantize to Q3.12
    pl.tanh a5, a2         # tanh(8.0 saturates) -> 1.0
    ebreak
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDemo;
  if (argc > 1) {
    std::ifstream f(argv[1]);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    source = ss.str();
  }

  iss::Memory mem(4u << 20);
  iss::Core core(&mem);
  assembler::Program prog;
  try {
    prog = assembler::assemble(source);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  core.load_program(prog);
  core.reset(prog.base);

  iss::TraceWriter trace(40);
  iss::Profiler prof;
  core.set_trace([t = trace.hook(), p = prof.hook()](uint32_t pc, const isa::Instr& in,
                                                     uint64_t cyc) {
    t(pc, in, cyc);
    p(pc, in, cyc);
  });

  const auto res = core.run(10'000'000);
  std::printf("exit: %s after %llu instructions, %llu cycles\n", res.describe().c_str(),
              static_cast<unsigned long long>(res.instrs),
              static_cast<unsigned long long>(res.cycles));
  if (!res.ok()) std::printf("RUN FAILED — inspect the trace below\n");

  std::printf("\nregisters a0-a5:");
  for (int r = 10; r <= 15; ++r) std::printf(" %08x", core.reg(r));
  std::printf("\n\nfirst trace lines:\n%s", trace.str().c_str());

  std::printf("\nhotspots:\n");
  for (const auto& h : prof.hotspots(prog, 8)) {
    std::printf("  %5.1f%%  %08x  %s\n", 100.0 * h.share, h.pc, h.disasm.c_str());
  }
  return res.ok() ? 0 : 1;
}
