// ISA explorer: shows what the kernel generators emit for a network of the
// RRM suite at each optimization level — program size, a disassembly window
// around the hot inner loop, and the instruction histogram after a run.
//
//   $ ./isa_explorer [network-name]       (default: naparstek17)
//
// Network names: challita17 naparstek17 ahmed19 eisen19 lee18 nasir18 sun17
//                ye18 yu17 wang18
#include <cstdio>
#include <string>

#include "src/asm/disasm.h"
#include "src/iss/core.h"
#include "src/iss/trace.h"
#include "src/rrm/suite.h"

using namespace rnnasip;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "naparstek17";
  const auto& def = rrm::find_network(name);
  rrm::RrmNetwork net(def);

  std::printf("network %s %s (%s): %s\n", def.name.c_str(), def.reference.c_str(),
              def.type.c_str(), def.task.c_str());
  std::printf("inputs %d, outputs %d, %llu MACs per forward pass\n\n", net.input_count(),
              net.output_count(), static_cast<unsigned long long>(net.nominal_macs()));

  for (auto level : kernels::kAllOptLevels) {
    iss::Memory mem(16u << 20);
    iss::Core core(&mem);
    const auto built = net.build(&mem, level, core.tanh_table(), core.sig_table());
    core.load_program(built.program);
    kernels::reset_state(mem, built);
    iss::Profiler prof;
    core.set_trace(prof.hook());
    kernels::run_forward(core, mem, built, net.make_input(0));

    std::printf("=== level %c) %s ===\n", kernels::opt_level_letter(level),
                kernels::opt_level_name(level).c_str());
    std::printf("text: %u instructions; run: %llu instrs, %llu cycles\n",
                static_cast<unsigned>(built.program.instrs.size()),
                static_cast<unsigned long long>(core.stats().total_instrs()),
                static_cast<unsigned long long>(core.stats().total_cycles()));

    // Find the hottest instruction group for flavor.
    std::printf("histogram:");
    for (const auto& [gname, s] : core.stats().by_display_group()) {
      if (s.cycles * 50 >= core.stats().total_cycles()) {  // >= 2% of cycles
        std::printf("  %s: %llu cyc", gname.c_str(),
                    static_cast<unsigned long long>(s.cycles));
      }
    }
    std::printf("\n");

    // Disassembly window: the first hardware loop body (or the first 12
    // instructions at the baseline level).
    size_t start = 0;
    for (size_t i = 0; i < built.program.instrs.size(); ++i) {
      const auto op = built.program.instrs[i].op;
      if (op == isa::Opcode::kLpSetup || op == isa::Opcode::kLpSetupi) {
        start = i;
        break;
      }
    }
    std::printf("disassembly window:\n");
    const size_t end = std::min(start + 12, built.program.instrs.size());
    for (size_t i = start; i < end; ++i) {
      std::printf("  %s\n",
                  assembler::disassemble(built.program.instrs[i],
                                         built.program.address_of(i))
                      .c_str());
    }
    std::printf("hotspots:\n");
    for (const auto& h : prof.hotspots(built.program, 4)) {
      std::printf("  %5.1f%%  %s\n", 100.0 * h.share, h.disasm.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
