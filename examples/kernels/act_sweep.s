# Sweep the activation unit: tanh and sigmoid over Q3.12 inputs -4..4 in
# 0.25 steps, results stored as interleaved (x, tanh, sig) halfword triples
# at 0x20000. Counter-timed with rdcycle.
# Run with:  ./asm_playground examples/kernels/act_sweep.s

    li   a0, 0x20000        # output cursor
    li   a1, -16384         # x = -4.0 in Q3.12
    li   a2, 33             # 33 sample points
    rdcycle a4
loop:
    p.sh a1, 2(a0!)
    pl.tanh a3, a1
    p.sh a3, 2(a0!)
    pl.sig  a3, a1
    p.sh a3, 2(a0!)
    addi a1, a1, 1024       # += 0.25
    addi a2, a2, -1
    bne  a2, zero, loop
    rdcycle a5
    sub  a5, a5, a4         # elapsed cycles in a5
    ebreak
