# Q3.12 dot product with the pl.sdotsp.h load-and-compute extension.
# Run with:  ./asm_playground examples/kernels/dot_product.s
#
# Stages two 64-element vectors (x[i] = 0.25, w[i] = 0.5), computes
# dot = 64 * 0.125 = 8.0 (0x8000 raw), then tanh saturates to 1.0 (0x1000).

    li   a0, 0x10000       # w base
    li   a1, 0x10200       # x base
    li   t0, 0x08000800    # two Q3.12 0.5 halfwords
    li   t1, 0x04000400    # two Q3.12 0.25 halfwords
    li   t2, 32
init:
    p.sw t0, 4(a0!)
    p.sw t1, 4(a1!)
    addi t2, t2, -1
    bne  t2, zero, init
    li   a0, 0x10000
    li   a1, 0x10200

    li   a2, 0
    pl.sdotsp.h.0 zero, a0, zero     # preload SPR0
    pl.sdotsp.h.1 zero, a0, zero     # preload SPR1
    lp.setupi 0, 16, done
    p.lw a3, 4(a1!)
    p.lw a4, 4(a1!)
    pl.sdotsp.h.0 a2, a0, a3
    pl.sdotsp.h.1 a2, a0, a4
done:
    srai a2, a2, 12        # requantize -> a2 = 0x8000 (8.0)
    pl.tanh a5, a2         # a5 = 0x1000 (1.0)
    ebreak
