// Power/energy budgeting for a base-station RRM stack: how many RNN
// inferences per scheduling interval fit into a compute and energy budget
// on the baseline vs the RNN-extended core.
//
//   $ ./power_budget [tti_us]     (default: 1000 us, an LTE/NR-like 1 ms TTI)
#include <cstdio>
#include <cstdlib>

#include "src/common/table.h"
#include "src/impl_model/impl_model.h"
#include "src/rrm/engine.h"

using namespace rnnasip;
using namespace rnnasip::impl_model;
using kernels::OptLevel;

int main(int argc, char** argv) {
  const double tti_us = argc > 1 ? std::atof(argv[1]) : 1000.0;

  rrm::Engine eng;
  rrm::Request proto;
  proto.verify = false;
  const auto base = eng.run_suite(OptLevel::kBaseline, proto);
  const auto ext = eng.run_suite(OptLevel::kInputTiling, proto);
  const auto pm =
      PowerModel::calibrate(activity_from_stats(base.total), activity_from_stats(ext.total));

  std::printf("RRM compute budget per %.0f us scheduling interval @380 MHz\n\n", tti_us);

  Table t({"network", "base us", "ext us", "ext uJ", "fits/TTI base", "fits/TTI ext"});
  for (size_t i = 0; i < ext.nets.size(); ++i) {
    const auto& rb = base.nets[i];
    const auto& re = ext.nets[i];
    const double us_b = static_cast<double>(rb.cycles) / 380.0;
    const double us_e = static_cast<double>(re.cycles) / 380.0;
    const double p_e = pm.power_mw(activity_from_stats(re.stats));
    t.add_row({re.name, fmt_double(us_b, 1), fmt_double(us_e, 1),
               fmt_double(energy_per_run_uj(re.cycles, p_e), 3),
               std::to_string(static_cast<int>(tti_us / us_b)),
               std::to_string(static_cast<int>(tti_us / us_e))});
  }
  std::printf("%s\n", t.to_string().c_str());

  // A representative RRM stack the intro motivates: spectrum access +
  // power control + scheduling, once per TTI.
  const char* stack[] = {"naparstek17", "nasir18", "yu17"};
  double stack_us = 0, stack_uj = 0;
  for (const char* n : stack) {
    for (const auto& r : ext.nets) {
      if (r.name == n) {
        stack_us += static_cast<double>(r.cycles) / 380.0;
        stack_uj +=
            energy_per_run_uj(r.cycles, pm.power_mw(activity_from_stats(r.stats)));
      }
    }
  }
  std::printf("RRM stack {spectrum access + power control + scheduling}:\n");
  std::printf("  %.0f us and %.2f uJ per TTI on the extended core (%.0f%% of a\n",
              stack_us, stack_uj, 100.0 * stack_us / tti_us);
  std::printf("  %.0f us interval), leaving the rest for the protocol stack.\n", tti_us);
  return 0;
}
