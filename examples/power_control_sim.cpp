// Domain scenario: downlink transmit power control on an interference
// channel — the sun17 [2] / nasir18 [12] workload. Compares, on the same
// scene, the classical WMMSE iterative optimizer against a learning-based
// policy network running on the simulated RNN-extended core:
//
//   * algorithmic side: WMMSE sum-rate vs everyone-at-max-power,
//   * compute side: WMMSE op count / estimated latency vs the NN's measured
//     cycle count on the baseline and extended cores.
//
// The policy network carries deterministic pseudo-random weights (training
// is out of scope — see DESIGN.md substitutions), so only its *cost* is
// compared; the paper's premise is that a trained network reaches
// near-WMMSE rates in one forward pass.
#include <cstdio>

#include "src/common/rng.h"
#include "src/iss/core.h"
#include "src/kernels/network.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"
#include "src/rrm/env.h"
#include "src/rrm/wmmse.h"

using namespace rnnasip;

int main() {
  constexpr int kPairs = 8;
  rrm::InterferenceField field(kPairs, 0xF00D, /*area=*/40.0);
  rrm::WmmseOptions wopt;

  // --- classical optimizer ---
  const auto w = rrm::wmmse(field, wopt);
  const double full_rate =
      field.sum_rate(std::vector<double>(kPairs, wopt.p_max), wopt.noise);
  std::printf("Interference scene: %d TX-RX pairs\n", kPairs);
  std::printf("  full-power sum-rate : %6.2f b/s/Hz\n", full_rate);
  std::printf("  WMMSE sum-rate      : %6.2f b/s/Hz after %d iterations (%llu MAC-ops)\n\n",
              w.rate_trace.back(), w.iterations,
              static_cast<unsigned long long>(w.flops));

  // --- learned policy on the core: gains matrix in, power levels out ---
  Rng rng(0x9C);
  const int in_dim = kPairs * kPairs;  // normalized gain matrix
  const auto fc1 = nn::quantize_fc(nn::random_fc(rng, in_dim, 200, nn::ActKind::kReLU));
  const auto fc2 = nn::quantize_fc(nn::random_fc(rng, 200, 100, nn::ActKind::kReLU));
  const auto fc3 = nn::quantize_fc(nn::random_fc(rng, 100, kPairs, nn::ActKind::kSigmoid));

  const auto gains = field.normalized_gains();
  std::vector<int16_t> x(gains.size());
  for (size_t i = 0; i < gains.size(); ++i)
    x[i] = static_cast<int16_t>(quantize(gains[i]));

  std::printf("Policy network (%d-200-100-%d, sigmoid power levels):\n", in_dim, kPairs);
  uint64_t cyc_base = 0, cyc_ext = 0;
  for (auto level : {kernels::OptLevel::kBaseline, kernels::OptLevel::kInputTiling}) {
    iss::Memory mem(16u << 20);
    iss::Core core(&mem);
    kernels::NetworkProgramBuilder b(&mem, level, core.tanh_table(), core.sig_table());
    b.add_fc(fc1);
    b.add_fc(fc2);
    b.add_fc(fc3);
    const auto net = b.finalize();
    core.load_program(net.program);
    const auto out = kernels::run_forward(core, mem, net, x);
    (level == kernels::OptLevel::kBaseline ? cyc_base : cyc_ext) =
        core.stats().total_cycles();
    if (level == kernels::OptLevel::kInputTiling) {
      std::vector<double> p(kPairs);
      for (int i = 0; i < kPairs; ++i) p[i] = dequantize(out[i]) * wopt.p_max;
      std::printf("  (untrained) policy sum-rate: %.2f b/s/Hz — training required for\n",
                  field.sum_rate(p, wopt.noise));
      std::printf("  quality; the comparison below is about compute cost.\n");
    }
  }

  // --- cost comparison at 380 MHz ---
  // WMMSE on the same core: its MAC-ops would run through the identical
  // datapath; grant it the extended core's best case of ~0.6 cycles/op,
  // plus the divisions (32 cycles each, 3 per pair per iteration).
  const double wmmse_cycles =
      static_cast<double>(w.flops) * 0.6 +
      static_cast<double>(w.iterations) * kPairs * 3 * 32.0;
  std::printf("\nper-decision latency @380 MHz:\n");
  std::printf("  WMMSE (classical)     : %8.1f us (%d iterations)\n",
              wmmse_cycles / 380.0, w.iterations);
  std::printf("  NN on baseline core   : %8.1f us\n", static_cast<double>(cyc_base) / 380.0);
  std::printf("  NN on extended core   : %8.1f us (%.1fx vs baseline)\n",
              static_cast<double>(cyc_ext) / 380.0,
              static_cast<double>(cyc_base) / static_cast<double>(cyc_ext));
  std::printf(
      "\nAt this small scene WMMSE is still competitive; its cost grows with\n"
      "iteration count (scene hardness) and needs %d divisions per pair per\n"
      "iteration, while the NN's latency is fixed and single-pass — the\n"
      "determinism 5G schedulers need (Sec. I). On the baseline core neither\n"
      "meets a tight TTI; the extensions make the learned policy fit.\n",
      3);
  return 0;
}
