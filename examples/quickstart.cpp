// Quickstart: build a small LSTM-based RRM policy network, run it on the
// simulated RNN-extended RISC-V core, and inspect results and costs.
//
//   $ ./quickstart
//
// Walks through the whole public API: parameter creation -> quantization ->
// program generation at an optimization level -> simulation -> verification
// against the golden model -> cycle statistics.
#include <cstdio>

#include "src/common/rng.h"
#include "src/iss/core.h"
#include "src/kernels/network.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"

using namespace rnnasip;

int main() {
  std::printf("RNNASIP quickstart: LSTM(8->16) + FC(16->4) on the extended core\n\n");

  // 1. Create a model (normally you would load trained weights; here we use
  //    the deterministic initializers) and quantize it to Q3.12.
  Rng rng(42);
  const auto lstm_f = nn::random_lstm(rng, /*input=*/8, /*hidden=*/16, 0.3f);
  const auto head_f = nn::random_fc(rng, 16, 4, nn::ActKind::kNone);
  const auto lstm_q = nn::quantize_lstm(lstm_f);
  const auto head_q = nn::quantize_fc(head_f);

  // 2. Instantiate the simulated core (default config = the paper's
  //    design point) and generate the network program at the highest
  //    optimization level.
  iss::Memory mem(4u << 20);
  iss::Core core(&mem);
  kernels::NetworkProgramBuilder builder(&mem, kernels::OptLevel::kInputTiling,
                                         core.tanh_table(), core.sig_table());
  builder.add_lstm(lstm_q);
  builder.add_fc(head_q);
  const auto net = builder.finalize();
  core.load_program(net.program);
  kernels::reset_state(mem, net);

  std::printf("program: %u instructions, %u B of device data, %llu MACs/step\n",
              static_cast<unsigned>(net.program.instrs.size()), net.data_bytes,
              static_cast<unsigned long long>(net.nominal_macs));

  // 3. Run a few timesteps and verify against the host-side golden model.
  nn::LstmStateQ golden_state{nn::VectorQ(16, 0), nn::VectorQ(16, 0)};
  for (int t = 0; t < 3; ++t) {
    const auto x = nn::quantize_vector(nn::random_vector(rng, 8, 1.0f));
    const auto out = kernels::run_forward(core, mem, net, x);

    const auto h = nn::lstm_step_fixp(lstm_q, x, golden_state, core.tanh_table(),
                                      core.sig_table());
    const auto want = nn::fc_forward_fixp(head_q, h, core.tanh_table(), core.sig_table());

    std::printf("t=%d  outputs:", t);
    for (int16_t v : out) std::printf(" %+.4f", dequantize(v));
    std::printf("  (%s golden model)\n", out == want ? "matches" : "DIVERGES FROM");
  }

  // 4. Cost summary.
  const auto& stats = core.stats();
  std::printf("\n3 timesteps: %llu instructions, %llu cycles (%.2f IPC)\n",
              static_cast<unsigned long long>(stats.total_instrs()),
              static_cast<unsigned long long>(stats.total_cycles()),
              static_cast<double>(stats.total_instrs()) / stats.total_cycles());
  std::printf("at 380 MHz: %.1f us per timestep\n",
              static_cast<double>(stats.total_cycles()) / 3 / 380.0);
  std::printf("\ntop instruction groups by cycles:\n");
  int shown = 0;
  for (const auto& [name, s] : stats.by_display_group()) {
    if (++shown > 12) break;
    std::printf("  %-10s %8llu instrs %8llu cycles\n", name.c_str(),
                static_cast<unsigned long long>(s.instrs),
                static_cast<unsigned long long>(s.cycles));
  }
  return 0;
}
