// Command-line simulator: run any RRM suite network at any optimization
// level and inspect results, statistics, and profiles.
//
//   $ ./rnnasip_sim <network> [options]
//       --level a|b|c|d|e     optimization level        (default e)
//       --timesteps N         forward passes            (default 1)
//       --max-tile N          output tile cap           (default 8)
//       --wait-states N       data-memory wait states   (default 0)
//       --csv                 dump the instruction histogram as CSV
//       --hotspots            print the top-10 cycle hotspots
//       --no-verify           skip the golden-model check
//   $ ./rnnasip_sim --list    show the available networks
#include <cstdio>
#include <cstring>
#include <string>

#include "src/iss/trace.h"
#include "src/rrm/engine.h"

using namespace rnnasip;

namespace {

void usage() {
  std::printf(
      "usage: rnnasip_sim <network>|--list [--level a..e] [--timesteps N]\n"
      "                   [--max-tile N] [--wait-states N] [--csv]\n"
      "                   [--hotspots] [--no-verify]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  if (std::strcmp(argv[1], "--list") == 0) {
    for (const auto& def : rrm::rrm_suite()) {
      std::printf("%-12s %-5s %-8s %s\n", def.name.c_str(), def.reference.c_str(),
                  def.type.c_str(), def.task.c_str());
    }
    return 0;
  }

  std::string name = argv[1];
  kernels::OptLevel level = kernels::OptLevel::kInputTiling;
  int timesteps = 1;
  int max_tile = 8;
  uint32_t wait_states = 0;
  bool csv = false, hotspots = false, verify = true;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--level") {
      const char c = next()[0];
      if (c < 'a' || c > 'e') {
        usage();
        return 1;
      }
      level = static_cast<kernels::OptLevel>(c - 'a');
    } else if (arg == "--timesteps") {
      timesteps = std::atoi(next());
    } else if (arg == "--max-tile") {
      max_tile = std::atoi(next());
    } else if (arg == "--wait-states") {
      wait_states = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--hotspots") {
      hotspots = true;
    } else if (arg == "--no-verify") {
      verify = false;
    } else {
      usage();
      return 1;
    }
  }

  rrm::RrmNetwork net(rrm::find_network(name));

  if (hotspots) {
    // Dedicated run with a profiler attached.
    iss::Memory mem(16u << 20);
    iss::Core::Config cfg;
    cfg.timing.mem_wait_states = wait_states;
    iss::Core core(&mem, cfg);
    const auto built = net.build(&mem, level, core.tanh_table(), core.sig_table(), max_tile);
    core.load_program(built.program);
    kernels::reset_state(mem, built);
    iss::Profiler prof;
    core.set_trace(prof.hook());
    for (int t = 0; t < timesteps; ++t) {
      kernels::run_forward(core, mem, built, net.make_input(t));
    }
    std::printf("hotspots (%s, level %c):\n", name.c_str(),
                kernels::opt_level_letter(level));
    for (const auto& h : prof.hotspots(built.program, 10)) {
      std::printf("  %5.1f%%  %08x  %s\n", 100.0 * h.share, h.pc, h.disasm.c_str());
    }
    return 0;
  }

  rrm::Engine::Config cfg;
  cfg.max_tile = max_tile;
  cfg.core_config.timing.mem_wait_states = wait_states;
  rrm::Engine eng(cfg);
  rrm::Request req;
  req.network = name;
  req.level = level;
  req.timesteps = timesteps;
  req.verify = verify;
  const auto r = eng.run(req).result;

  std::printf("%s (%s, %s) at level %c: %llu instrs, %llu cycles over %d step(s)\n",
              name.c_str(), net.def().reference.c_str(), net.def().type.c_str(),
              kernels::opt_level_letter(level),
              static_cast<unsigned long long>(r.instrs),
              static_cast<unsigned long long>(r.cycles), timesteps);
  std::printf("  %.2f MACs/cycle, %.1f us/step @380 MHz, verified: %s\n",
              static_cast<double>(r.nominal_macs) / static_cast<double>(r.cycles),
              static_cast<double>(r.cycles) / timesteps / 380.0,
              !verify ? "skipped" : (r.verified ? "yes" : "NO"));
  if (csv) std::printf("%s", r.stats.to_csv().c_str());
  return (!verify || r.verified) ? 0 : 1;
}
