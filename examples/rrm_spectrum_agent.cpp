// Domain scenario: distributed dynamic spectrum access (the naparstek17 [14]
// workload). An LSTM-based DQN agent picks one of C channels every time
// slot; channels are occupied by a correlated (Gilbert-Elliott) primary-user
// process. The agent's inference runs on the simulated RNN-extended RISC-V
// core through the rrm::DqnAgent wrapper, and the example reports both the
// RRM outcome (collision/success rates) and the per-decision compute cost on
// the baseline vs extended core — the paper's motivating deployment.
#include <cstdio>

#include "src/common/rng.h"
#include "src/nn/init.h"
#include "src/nn/quantize.h"
#include "src/rrm/agents.h"

using namespace rnnasip;

namespace {
constexpr int kChannels = 6;
constexpr int kSlots = 40;
}  // namespace

int main() {
  std::printf(
      "Dynamic spectrum access agent (naparstek17-style, %d channels, %d slots)\n\n",
      kChannels, kSlots);

  Rng rng(0xA6E27);
  const auto lstm = nn::quantize_lstm(nn::random_lstm(rng, 2 * kChannels, 32, 0.3f));
  const auto head = nn::quantize_fc(nn::random_fc(rng, 32, kChannels, nn::ActKind::kNone));

  rrm::SpectrumEpisode base_ep, ext_ep;
  for (auto level : {kernels::OptLevel::kBaseline, kernels::OptLevel::kInputTiling}) {
    rrm::DqnAgent agent(lstm, head, level);
    rrm::GilbertElliottChannels env(kChannels, 0xE57);  // same world per level
    const auto ep = rrm::run_spectrum_episode(agent, env, kSlots);
    (level == kernels::OptLevel::kBaseline ? base_ep : ext_ep) = ep;
  }

  // Identical decisions at every level — the extensions are bit-exact.
  const bool same = base_ep.choices == ext_ep.choices;
  std::printf("channel decisions identical on baseline and extended core: %s\n",
              same ? "yes" : "NO (BUG)");
  std::printf("spectrum outcome: %d successful transmissions, %d collisions\n\n",
              ext_ep.successes, ext_ep.collisions);

  const double us_base = static_cast<double>(base_ep.cycles) / kSlots / 380.0;
  const double us_ext = static_cast<double>(ext_ep.cycles) / kSlots / 380.0;
  std::printf("per-decision inference latency @380 MHz:\n");
  std::printf("  baseline RV32IMC core : %7.1f us\n", us_base);
  std::printf("  RNN-extended core     : %7.1f us   (%.1fx faster)\n", us_ext,
              us_base / us_ext);
  std::printf("\nA 0.5 ms slot budget fits %d decisions on the extended core vs %d\n",
              static_cast<int>(500.0 / us_ext), static_cast<int>(500.0 / us_base));
  std::printf("on the baseline — the headroom the paper targets for 5G RRM.\n");
  return same ? 0 : 1;
}
