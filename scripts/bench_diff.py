#!/usr/bin/env python3
"""Perf-diff gate: compare a bench JSON against its blessed baseline.

Usage:  bench_diff.py <baseline.json> <current.json> [--tolerance 0.005]

Both files are BenchIo envelopes ({"schema_version", "bench", "data"}).
The compared metrics depend on the bench:

  table1              per-level suite total cycles and cumulative speedup
  table2              inner-loop body cycles of both kernels and their speedup
  serving             per-sweep-row p50/p95/p99 latency, makespan and served
                      count plus the scaling-acceptance speedup
  serving_resilience  per-sweep-row served/retries/rejected plus the
                      aggregate correctness and goodput acceptance numbers
  serving_integrity   ABFT instrumentation overhead per net and over the
                      serving mix, plus per-row served/silent/detections/
                      rollbacks/escalations/preemptions and the silent-
                      share and preemption acceptance numbers
  scenario            closed-loop city sweep: robustness acceptance numbers
                      (stress retention, admitted misses, silent corruption,
                      recovery TTIs) plus per-run totals and quality ratios
  wcet                per-case certified cycle interval (min/max) and the
                      measured cycles from rnnasip_lint --wcet --json —
                      exact integers, so the default tolerance flags any
                      drift at all

Rows carrying a telemetry block (runs made with --telemetry) additionally
gate the histogram-derived p50/p95/p99 of the latency_cycles histogram and
the per-phase span cycle totals — so the metrics registry itself is under
the perf gate, not just the exact sorted-latency percentiles.

Any relative drift beyond the tolerance (default 0.5%) fails with a
per-metric report. The simulator is deterministic, so in practice any
drift at all is a real schedule/timing change — the tolerance only
absorbs intentional sub-noise tweaks blessed without regenerating.

--throughput switches to the scale-invariant serving comparison: only the
per-row simulated throughput (inferences/s, which converges with request
count) is gated, so a short CI run can be diffed against a blessed
million-request baseline (bench/baselines/BENCH_translated.json). The
default tolerance in this mode is 10% (ramp-up transients at small N).
--min-host-speedup additionally requires the current envelope's
acceptance.host_speedup_vs_iss (recorded by bench_serving --backend
translated --wall-time) to clear a floor — the translated-backend
throughput-regression gate.
"""

import argparse
import json
import sys


def rel_drift(base, cur):
    if base == 0:
        return 0.0 if cur == 0 else float("inf")
    return abs(cur - base) / abs(base)


def metrics_table1(data):
    out = {}
    for level in data["levels"]:
        name = level["level"]
        out[f"level {name} suite cycles"] = level["suite"]["total_cycles"]
        out[f"level {name} speedup"] = level["speedup"]
    return out


def metrics_table2(data):
    return {
        "left body cycles": data["left"]["body_cycles"],
        "right body cycles": data["right"]["body_cycles"],
        "speedup": data["speedup"],
    }


def telemetry_metrics(out, key, result):
    """Histogram-derived percentiles + span phase totals for one telemetered
    sweep row (no-op when the run was made without --telemetry)."""
    tel = result.get("telemetry")
    if tel is None:
        return
    hists = tel.get("metrics", {}).get("histograms", {})
    lat = hists.get("latency_cycles")
    if lat is not None:
        for p in ("p50", "p95", "p99"):
            out[f"{key} hist {p}"] = lat[p]
    for phase, cycles in tel["spans"]["phase_cycles"].items():
        out[f"{key} span {phase} cycles"] = cycles


def metrics_serving(data):
    out = {"acceptance speedup": data["acceptance"]["speedup"]}
    for row in data["rows"]:
        res = row["result"]
        key = (f"{row['cores']}c/B{row['batch']}"
               f"/@{int(row['mean_interarrival_cycles'])}")
        out[f"{key} served"] = res["requests"]
        out[f"{key} makespan"] = res["makespan_cycles"]
        for p in ("p50", "p95", "p99"):
            out[f"{key} {p}"] = res["latency"][f"{p}_cycles"]
        telemetry_metrics(out, key, res)
    return out


def metrics_serving_resilience(data):
    out = {"correct fraction (high rate)":
           data["acceptance"]["correct_fraction_high"]}
    # WCET-backed admission soundness: zero admitted deadline misses across
    # the provable sweep (absent from envelopes predating the kProvable rows).
    if "provable_deadline_misses" in data["acceptance"]:
        out["provable deadline misses"] = \
            data["acceptance"]["provable_deadline_misses"]
        out["provable served"] = data["acceptance"]["provable_served"]
        out["provable rejected"] = data["acceptance"]["provable_rejected"]
    for g in data["acceptance"]["goodput"]:
        load = int(g["mean_interarrival_cycles"])
        out[f"goodput fault-free @{load}"] = g["goodput_fault_free"]
        out[f"goodput high-rate @{load}"] = g["goodput_high_rate"]
    for row in data["rows"]:
        res = row["result"]["resilience"]
        adm = row.get("admission", "calibrated")
        key = (f"{row['policy']}.{adm}/{row['fault_point']}"
               f"/@{int(row['mean_interarrival_cycles'])}")
        out[f"{key} served"] = res["served"]
        out[f"{key} retries"] = res["retries"]
        out[f"{key} rejected"] = res["rejected"]
        telemetry_metrics(out, key, row["result"])
    return out


def metrics_wcet(data):
    """Certified static cycle intervals from rnnasip_lint --wcet --json:
    per-case min/max/measured cycles are exact integers (the analysis and
    the simulator are both deterministic), so any drift is a real change to
    the timing model, the analysis, or the generated programs."""
    out = {"cases": data["total"], "failing": data["failing"]}
    for case in data["cases"]:
        key = f"{case['network']}@{case['level']}"
        if case.get("split"):
            key += "/split"
        out[f"{key} min"] = case["min_cycles"]
        out[f"{key} max"] = case["max_cycles"]
        out[f"{key} measured"] = case["measured_cycles"]
    return out


def metrics_serving_integrity(data):
    acc = data["acceptance"]
    out = {
        "silent share detect/high": acc["silent_share_detect_high"],
        "detections detect/high": acc["detections_detect_high"],
        "mix overhead": acc["mix_overhead"],
        "preempted requests": acc["preempted_requests"],
        "preempted divergent": acc["preempted_divergent"],
    }
    for net in data["overhead"]["per_net"]:
        out[f"{net['network']} plain cycles"] = net["plain_cycles"]
        out[f"{net['network']} integrity cycles"] = net["integrity_cycles"]
    for row in data["rows"]:
        res = row["result"]["resilience"]
        key = (f"{row['mode']}/{row['fault_point']}"
               f"/@{int(row['mean_interarrival_cycles'])}")
        out[f"{key} served"] = res["served"]
        out[f"{key} silent"] = row["silent"]
        out[f"{key} detections"] = res["integrity"]["detections"]
        out[f"{key} rollbacks"] = res["integrity"]["rollbacks"]
        out[f"{key} escalations"] = res["integrity"]["escalations"]
        out[f"{key} preemptions"] = res["preemption"]["preemptions"]
        telemetry_metrics(out, key, row["result"])
    return out


def metrics_scenario(data):
    """Closed-loop scenario sweep: the robustness acceptance numbers (sum-
    rate-vs-WMMSE retention, admitted misses, silent corruption, recovery
    time) plus per-run totals and quality ratios. Everything is byte-
    deterministic from one seed, so any drift is a real behaviour change in
    the city model, the serving path, or the brownout controller."""
    acc = data["acceptance"]
    out = {
        "admitted deadline misses": acc["deadline_misses_admitted"],
        "silent corruption to env": acc["silent_to_env"],
        "corrupted blocked": acc["corrupted_blocked"],
        "integrity detections": acc["integrity_detections"],
        "stress retention": acc["stress_retention"],
        "storm stress ratio": acc["storm_stress_ratio"],
        "baseline stress ratio": acc["baseline_stress_ratio"],
        "recovery TTIs": acc["recovery_ttis"],
        "weighted ratio brownout": acc["weighted_ratio_brownout"],
        "weighted ratio blind": acc["weighted_ratio_blind"],
    }
    for row in data["rows"]:
        res = row["result"]
        key = row["run"]
        tot = res["totals"]
        out[f"{key} served"] = tot["served"]
        out[f"{key} served fallback"] = tot["served_fallback"]
        out[f"{key} shed"] = tot["shed_rejected"]
        out[f"{key} admission rejected"] = tot["admission_rejected"]
        out[f"{key} exec failures"] = tot["exec_failures"]
        out[f"{key} rate ratio"] = res["quality"]["rate_ratio"]
        out[f"{key} stress ratio"] = res["quality"]["stress_ratio"]
        out[f"{key} recovery tti"] = res["recovery"]["recovery_tti"]
        out[f"{key} level transitions"] = res["recovery"]["transitions"]
    return out


def metrics_serving_throughput(data):
    """Scale-invariant serving metrics: per-row simulated inferences/s.
    Counts, makespans and percentiles are deliberately excluded — they all
    scale with the request count, and this mode exists to compare runs of
    different sizes (96-request CI run vs million-request baseline)."""
    out = {}
    for row in data["rows"]:
        key = (f"{row['cores']}c/B{row['batch']}"
               f"/@{int(row['mean_interarrival_cycles'])}")
        out[f"{key} inf/s"] = row["result"]["throughput_inf_per_s"]
    return out


EXTRACTORS = {
    "table1": metrics_table1,
    "table2": metrics_table2,
    "serving": metrics_serving,
    "serving_resilience": metrics_serving_resilience,
    "serving_integrity": metrics_serving_integrity,
    "scenario": metrics_scenario,
    "wcet": metrics_wcet,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="max relative drift per metric "
                         "(default 0.5%%; 10%% with --throughput)")
    ap.add_argument("--throughput", action="store_true",
                    help="serving envelopes only: gate the scale-invariant "
                         "per-row simulated throughput instead of the exact "
                         "metrics, so envelopes with different request "
                         "counts are comparable")
    ap.add_argument("--min-host-speedup", type=float, default=None,
                    help="require the current envelope's "
                         "acceptance.host_speedup_vs_iss to be at least "
                         "this (translated-backend regression gate)")
    args = ap.parse_args()
    if args.tolerance is None:
        args.tolerance = 0.10 if args.throughput else 0.005

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    for env, path in ((base, args.baseline), (cur, args.current)):
        if "bench" not in env or "data" not in env:
            sys.exit(f"{path}: not a BenchIo envelope")
    if base["bench"] != cur["bench"]:
        sys.exit(f"bench mismatch: baseline is {base['bench']!r}, "
                 f"current is {cur['bench']!r}")
    name = base["bench"]
    if args.throughput:
        if name != "serving":
            sys.exit(f"--throughput only applies to serving envelopes, "
                     f"not {name!r}")
        extract = metrics_serving_throughput
    else:
        if name not in EXTRACTORS:
            sys.exit(f"no perf-diff rules for bench {name!r} "
                     f"(known: {', '.join(sorted(EXTRACTORS))})")
        extract = EXTRACTORS[name]

    if args.min_host_speedup is not None:
        speedup = cur["data"].get("acceptance", {}).get("host_speedup_vs_iss")
        if speedup is None:
            sys.exit("current envelope has no acceptance.host_speedup_vs_iss "
                     "(run bench_serving --backend translated --wall-time)")
        status = "FAIL" if speedup < args.min_host_speedup else "ok"
        print(f"  [{status}] host speedup vs ISS: {speedup:.2f}x "
              f"(floor {args.min_host_speedup:g}x)")
        if speedup < args.min_host_speedup:
            sys.exit(f"translated backend host speedup {speedup:.2f}x is "
                     f"below the {args.min_host_speedup:g}x floor")

    bm = extract(base["data"])
    cm = extract(cur["data"])
    missing = sorted(set(bm) - set(cm))
    if missing:
        sys.exit(f"current run is missing metrics: {', '.join(missing)}")

    failures = []
    for key, bval in bm.items():
        cval = cm[key]
        drift = rel_drift(bval, cval)
        status = "FAIL" if drift > args.tolerance else "ok"
        print(f"  [{status}] {key}: baseline {bval:g}, current {cval:g} "
              f"({100.0 * drift:.3f}% drift)")
        if drift > args.tolerance:
            failures.append(key)

    if failures:
        print(f"\n{name}: {len(failures)} metric(s) drifted more than "
              f"{100.0 * args.tolerance:.2f}%: {', '.join(failures)}",
              file=sys.stderr)
        print("If the change is intentional, regenerate the blessed file:\n"
              f"  ./build/bench/bench_{name} --json bench/baselines/"
              f"BENCH_{name}.json", file=sys.stderr)
        return 1
    print(f"{name}: all {len(bm)} metrics within "
          f"{100.0 * args.tolerance:.2f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
