#!/usr/bin/env python3
"""Per-region cycle/stall diff between two bench JSON envelopes.

Usage:  trace_diff.py <before.json> <after.json> [--level e] [--top 20]
                      [--min-cycles 100]

Both files are BenchIo envelopes written with --json AND --observe, so the
per-level "regions" blocks are present (bench_table1 emits one per
optimization level). Regions are aligned on their (network, path) key —
path is the collapsed-stack region path ("network;fc0;matvec") — and the
report shows, per region, the before/after self cycles, the delta, and the
per-cause stall deltas, sorted by |cycle delta| descending.

The two envelopes do not have to come from the same build: diffing level d
against level e of one run (--level d vs --level e via two invocations of
this script on the same file pair, or the same file twice with different
--level/--level-b) localizes *where* an optimization level wins its
cycles, and diffing the same level across two commits localizes a
regression down to a region before anyone opens a trace viewer.

Exit status is 0 (reporting tool, not a gate; the gate is bench_diff.py).
"""

import argparse
import json
import sys


def load_regions(path, level):
    with open(path) as f:
        env = json.load(f)
    if "bench" not in env or "data" not in env:
        sys.exit(f"{path}: not a BenchIo envelope")
    data = env["data"]
    if env["bench"] == "table1":
        for lv in data["levels"]:
            if lv["level"] == level:
                if "regions" not in lv:
                    sys.exit(f"{path}: level {level} has no regions block "
                             "(re-run the bench with --observe)")
                return lv["regions"]
        sys.exit(f"{path}: no level {level!r} in envelope")
    if "regions" in data:
        return data["regions"]
    sys.exit(f"{path}: bench {env['bench']!r} carries no per-region data")


def flatten(regions):
    """{(network, path): {"cycles": n, "instrs": n, "stalls": {...}}}"""
    out = {}
    for net in regions:
        for r in net["regions"]:
            out[(net["network"], r["path"])] = r
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("before")
    ap.add_argument("after")
    ap.add_argument("--level", default="e",
                    help="optimization level to read from table1 envelopes "
                         "(default e)")
    ap.add_argument("--level-b", default=None,
                    help="level for the *after* envelope when diffing two "
                         "levels of one run (default: same as --level)")
    ap.add_argument("--top", type=int, default=20,
                    help="show the N largest regions by |cycle delta|")
    ap.add_argument("--min-cycles", type=int, default=0,
                    help="hide regions below this many cycles on both sides")
    args = ap.parse_args()

    before = flatten(load_regions(args.before, args.level))
    after = flatten(load_regions(args.after, args.level_b or args.level))

    rows = []
    for key in sorted(set(before) | set(after)):
        b = before.get(key, {})
        a = after.get(key, {})
        bc, ac = b.get("cycles", 0), a.get("cycles", 0)
        if max(bc, ac) < args.min_cycles:
            continue
        stall_delta = {}
        for cause in sorted(set(b.get("stalls", {})) | set(a.get("stalls", {}))):
            d = a.get("stalls", {}).get(cause, 0) - b.get("stalls", {}).get(cause, 0)
            if d != 0:
                stall_delta[cause] = d
        rows.append((key, bc, ac, stall_delta))

    rows.sort(key=lambda r: abs(r[2] - r[1]), reverse=True)

    total_b = sum(r[1] for r in rows)
    total_a = sum(r[2] for r in rows)
    print(f"{'region':<56} {'before':>12} {'after':>12} {'delta':>12}")
    for (net, path), bc, ac, stalls in rows[:args.top]:
        name = f"{net}:{path}"
        if len(name) > 55:
            name = name[:52] + "..."
        mark = "" if bc == ac else (" NEW" if bc == 0 else (" GONE" if ac == 0 else ""))
        print(f"{name:<56} {bc:>12} {ac:>12} {ac - bc:>+12}{mark}")
        for cause, d in sorted(stalls.items(), key=lambda kv: -abs(kv[1])):
            print(f"    stall {cause:<45} {'':>12} {'':>12} {d:>+12}")
    hidden = len(rows) - min(len(rows), args.top)
    if hidden > 0:
        print(f"... {hidden} more region(s); raise --top to see them")
    print(f"{'TOTAL':<56} {total_b:>12} {total_a:>12} {total_a - total_b:>+12}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
