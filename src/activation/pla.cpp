#include "src/activation/pla.h"

#include <cmath>

#include "src/common/bits.h"
#include "src/common/check.h"

namespace rnnasip::activation {

double act_ref(ActFunc f, double x) {
  switch (f) {
    case ActFunc::kTanh:
      return std::tanh(x);
    case ActFunc::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
  }
  RNNASIP_CHECK(false);
}

double PlaSpec::range() const {
  return static_cast<double>(num_intervals) * static_cast<double>(1 << log2_interval) /
         fmt.scale();
}

PlaSpec PlaSpec::for_range(ActFunc f, double range, int num_intervals, QFormat fmt,
                           FitMethod fit) {
  RNNASIP_CHECK(range > 0 && num_intervals > 0);
  const double interval_raw = range * fmt.scale() / num_intervals;
  // Hardware indexes intervals with a right shift, so the interval size must
  // be a power of two; pick the closest one (>= 1 LSB).
  int log2 = static_cast<int>(std::lround(std::log2(std::max(1.0, interval_raw))));
  if (log2 < 0) log2 = 0;
  PlaSpec s;
  s.func = f;
  s.log2_interval = log2;
  s.num_intervals = num_intervals;
  s.fmt = fmt;
  s.fit = fit;
  return s;
}

namespace {

constexpr int kSlopeFrac = 14;  // m is Q1.14

/// Fit y = m*x + q over one interval. Chord goes through the endpoints;
/// least-squares minimizes the summed squared error over every raw grid
/// point in the interval (the metric Fig. 2 reports).
void fit_interval(ActFunc f, double a, double b, double grid_step, FitMethod fit,
                  double* m, double* q) {
  if (fit == FitMethod::kChord) {
    const double fa = act_ref(f, a);
    const double fb = act_ref(f, b);
    *m = (fb - fa) / (b - a);
    *q = fa - *m * a;
    return;
  }
  // Discrete least squares over the grid points of the interval.
  double s1 = 0, sx = 0, sxx = 0, sy = 0, sxy = 0;
  for (double x = a; x < b - grid_step / 2; x += grid_step) {
    const double y = act_ref(f, x);
    s1 += 1;
    sx += x;
    sxx += x * x;
    sy += y;
    sxy += x * y;
  }
  const double det = s1 * sxx - sx * sx;
  RNNASIP_CHECK(det > 0);
  *m = (s1 * sxy - sx * sy) / det;
  *q = (sxx * sy - sx * sxy) / det;
}

}  // namespace

PlaTable PlaTable::build(const PlaSpec& spec) {
  RNNASIP_CHECK(spec.num_intervals >= 1);
  RNNASIP_CHECK(spec.log2_interval >= 0 && spec.log2_interval < 28);
  PlaTable t;
  t.spec_ = spec;
  t.m_.resize(spec.num_intervals);
  t.q_.resize(spec.num_intervals);
  const double step = static_cast<double>(1 << spec.log2_interval) / spec.fmt.scale();
  const double grid = spec.fmt.resolution();
  for (int i = 0; i < spec.num_intervals; ++i) {
    double m, q;
    fit_interval(spec.func, i * step, (i + 1) * step, grid, spec.fit, &m, &q);
    t.m_[i] = static_cast<int16_t>(
        clip_signed(static_cast<int64_t>(std::lround(m * (1 << kSlopeFrac))), 16));
    t.q_[i] = static_cast<int16_t>(quantize(q, spec.fmt));
  }
  return t;
}

int32_t PlaTable::eval_raw(int32_t x_raw) const {
  const bool neg = x_raw < 0;
  const int64_t ax = neg ? -static_cast<int64_t>(x_raw) : x_raw;
  const int64_t id = ax >> spec_.log2_interval;
  const int32_t one = quantize(1.0, spec_.fmt);
  int32_t y;
  if (id >= spec_.num_intervals) {
    y = one;  // converged region
  } else {
    // 16x(width)-bit multiply, LUT offset aligned to the product, round,
    // shift back to the data format.
    const int64_t acc = static_cast<int64_t>(m_[id]) * ax +
                        (static_cast<int64_t>(q_[id]) << kSlopeFrac) +
                        (int64_t{1} << (kSlopeFrac - 1));
    y = clip_signed(acc >> kSlopeFrac, static_cast<unsigned>(spec_.fmt.width()));
  }
  if (spec_.func == ActFunc::kTanh) return neg ? -y : y;
  return neg ? one - y : y;  // sigmoid symmetry: sig(-x) = 1 - sig(x)
}

double PlaTable::eval(double x) const {
  return dequantize(eval_raw(quantize(x, spec_.fmt)), spec_.fmt);
}

int PlaTable::lut_bits() const { return spec_.num_intervals * (16 + 16); }

ErrorStats measure_error(const PlaTable& table, double eval_range) {
  const QFormat fmt = table.spec().fmt;
  ErrorStats stats;
  const int32_t lo = quantize(-eval_range, fmt);
  const int32_t hi = quantize(eval_range, fmt);
  for (int32_t r = lo; r <= hi; ++r) {
    const double x = dequantize(r, fmt);
    stats.add(dequantize(table.eval_raw(r), fmt), act_ref(table.spec().func, x));
  }
  return stats;
}

}  // namespace rnnasip::activation
