// Piecewise-linear approximation (PLA) of tanh and sigmoid — the design of
// the paper's pl.tanh / pl.sig single-cycle instructions (Sec. III-D,
// Alg. 2, Fig. 2).
//
// The hardware unit stores, per function, two M-entry LUTs: slope m (Q1.14,
// 16 bit) and offset q (Q3.12, 16 bit). Evaluation of input x (Q3.12):
//
//   |x|  -> interval index id = |x| >> N        (interval size 2^N LSBs)
//   id >= M -> converged: tanh -> ±1, sig -> {0, 1}
//   else     y = (m[id]*|x| + (q[id] << 14) + round) >> 14
//   negative x: tanh -> -y,  sig -> 1 - y       (symmetry, Alg. 2 lines 9-10)
//
// The paper's chosen configuration is range ±4 with 32 intervals, i.e.
// N = 9 (2^9 Q3.12 LSBs = 0.125) and M = 32.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/fixed_point.h"
#include "src/common/stats.h"

namespace rnnasip::activation {

enum class ActFunc : uint8_t { kTanh, kSigmoid };

/// How LUT entries are fitted per interval. Chord is the default: it passes
/// through the interval endpoints, so the approximation is continuous,
/// f(0) = 0 holds exactly for tanh, and monotonicity is preserved up to LUT
/// quantization — the properties Alg. 2's error argument relies on.
/// Least-squares trades those for a lower MSE (used in the Fig. 2 ablation).
enum class FitMethod : uint8_t {
  kChord,         ///< line through the interval endpoints (default)
  kLeastSquares,  ///< MSE-optimal line over the interval
};

/// Reference (double-precision) activation function.
double act_ref(ActFunc f, double x);

struct PlaSpec {
  ActFunc func = ActFunc::kTanh;
  /// log2 of the interval size in raw Q-format LSBs. With Q3.12 and
  /// log2_interval = 9, one interval spans 0.125.
  int log2_interval = 9;
  /// Number of intervals M covering [0, M * 2^log2_interval).
  int num_intervals = 32;
  QFormat fmt = q3_12;
  FitMethod fit = FitMethod::kChord;

  /// Upper end of the interpolation range in real units
  /// (= M * 2^log2_interval / 2^frac_bits).
  double range() const;

  /// Spec for a given real interpolation range and interval count: picks the
  /// smallest power-of-two interval size covering the range (Fig. 2 sweeps
  /// call this). `num_intervals` must be a power of two.
  static PlaSpec for_range(ActFunc f, double range, int num_intervals,
                           QFormat fmt = q3_12, FitMethod fit = FitMethod::kChord);
};

/// A generated LUT pair plus the hardware evaluation semantics.
class PlaTable {
 public:
  /// Build the LUTs for `spec` (quantizing m to Q1.14 and q to Q3.12).
  static PlaTable build(const PlaSpec& spec);

  /// Exact hardware semantics on a raw fixed-point input (Alg. 2). The
  /// result is a raw value in the same Q format.
  int32_t eval_raw(int32_t x_raw) const;

  /// Convenience: quantize -> eval_raw -> dequantize.
  double eval(double x) const;

  const PlaSpec& spec() const { return spec_; }
  /// LUT storage cost in bits (both tables of this function).
  int lut_bits() const;

  /// Raw LUT contents (for the SW fallback kernels, which keep the same
  /// tables in data memory, and for inspection in tests).
  const std::vector<int16_t>& slopes() const { return m_; }
  const std::vector<int16_t>& offsets() const { return q_; }

  /// Overwrite one LUT entry. SEU campaigns use these to model bit flips in
  /// the hardware unit's slope/offset storage; anything else should treat
  /// the tables as immutable after build().
  void set_slope(size_t i, int16_t v) { m_.at(i) = v; }
  void set_offset(size_t i, int16_t v) { q_.at(i) = v; }

 private:
  PlaSpec spec_;
  std::vector<int16_t> m_;  ///< slope, Q1.14
  std::vector<int16_t> q_;  ///< offset, Q3.12 (same fmt as data)
};

/// Error of a table vs the double-precision function, measured over every
/// representable input of the format in [-eval_range, eval_range]
/// (the paper's Fig. 2 metric: MSE and max abs error under quantization).
ErrorStats measure_error(const PlaTable& table, double eval_range = 8.0);

}  // namespace rnnasip::activation
