#include "src/analysis/absval.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace rnnasip::analysis {

namespace {

// Values beyond this never arise from well-formed address or counter
// arithmetic; collapsing to top keeps the math overflow-free in int64.
constexpr int64_t kRange = int64_t{1} << 40;

bool out_of_range(int64_t lo, int64_t hi) {
  return lo < -kRange || hi > kRange;
}

uint32_t gcd_u32(uint64_t a, uint64_t b) {
  return static_cast<uint32_t>(std::gcd(a, b));
}

}  // namespace

AbsVal AbsVal::interval(int64_t lo, int64_t hi, uint32_t stride) {
  if (lo == hi) return constant(lo);
  if (lo > hi || out_of_range(lo, hi)) return any();
  if (stride == 0 || (hi - lo) % stride != 0)
    stride = 1;  // normalize a malformed stride rather than miscount
  return AbsVal{lo, hi, stride, false};
}

std::string AbsVal::to_string() const {
  if (top) return "top";
  std::ostringstream os;
  if (is_const()) {
    os << lo;
  } else {
    os << "[" << lo << ", " << hi << "]/" << stride;
  }
  return os.str();
}

AbsVal join(const AbsVal& a, const AbsVal& b) {
  if (a.top || b.top) return AbsVal::any();
  if (a.same_as(b)) return a;
  const int64_t lo = std::min(a.lo, b.lo);
  const int64_t hi = std::max(a.hi, b.hi);
  // All members of both sets stay congruent modulo the merged stride.
  uint64_t g = std::gcd(static_cast<uint64_t>(a.stride),
                        static_cast<uint64_t>(b.stride));
  g = std::gcd(g, static_cast<uint64_t>(std::llabs(a.lo - b.lo)));
  return AbsVal::interval(lo, hi, g > UINT32_MAX ? 1 : static_cast<uint32_t>(g));
}

AbsVal add(const AbsVal& a, const AbsVal& b) {
  if (a.top || b.top) return AbsVal::any();
  return AbsVal::interval(a.lo + b.lo, a.hi + b.hi, gcd_u32(a.stride, b.stride));
}

AbsVal add_const(const AbsVal& a, int64_t c) {
  if (a.top) return AbsVal::any();
  return AbsVal::interval(a.lo + c, a.hi + c, a.stride);
}

AbsVal sub(const AbsVal& a, const AbsVal& b) {
  if (a.top || b.top) return AbsVal::any();
  return AbsVal::interval(a.lo - b.hi, a.hi - b.lo, gcd_u32(a.stride, b.stride));
}

AbsVal mul(const AbsVal& a, const AbsVal& b) {
  if (a.top || b.top) return AbsVal::any();
  const AbsVal* v = &a;
  const AbsVal* c = &b;
  if (!c->is_const()) std::swap(v, c);
  if (!c->is_const()) return AbsVal::any();
  const int64_t k = c->lo;
  if (k == 0) return AbsVal::constant(0);
  if (std::llabs(k) > kRange || out_of_range(v->lo * k, v->hi * k))
    return AbsVal::any();
  const int64_t x = v->lo * k;
  const int64_t y = v->hi * k;
  const uint64_t s = static_cast<uint64_t>(v->stride) * std::llabs(k);
  return AbsVal::interval(std::min(x, y), std::max(x, y),
                          s > UINT32_MAX ? 1 : static_cast<uint32_t>(s));
}

AbsVal shl(const AbsVal& a, const AbsVal& sh) {
  if (!sh.is_const() || sh.lo < 0 || sh.lo > 31) return AbsVal::any();
  return mul(a, AbsVal::constant(int64_t{1} << sh.lo));
}

AbsVal sra(const AbsVal& a, const AbsVal& sh) {
  if (!sh.is_const() || sh.lo < 0 || sh.lo > 31) return AbsVal::any();
  const int64_t k = sh.lo;
  const int64_t lo = a.top ? INT32_MIN : a.lo;
  const int64_t hi = a.top ? INT32_MAX : a.hi;
  auto floor_shift = [k](int64_t v) { return v >> k; };
  const uint32_t s =
      (!a.top && a.stride % (uint64_t{1} << k) == 0 && (a.lo >> k << k) == a.lo)
          ? static_cast<uint32_t>(a.stride >> k)
          : 1;
  return AbsVal::interval(floor_shift(lo), floor_shift(hi), s);
}

AbsVal srl(const AbsVal& a, const AbsVal& sh) {
  if (!sh.is_const() || sh.lo < 0 || sh.lo > 31) return AbsVal::any();
  const int64_t k = sh.lo;
  if (!a.top && a.lo >= 0 && a.hi <= INT64_C(0xFFFFFFFF)) return sra(a, sh);
  // The pattern may be negative-as-signed: as a 32-bit unsigned shift the
  // result spans [0, (2^32-1) >> k].
  return AbsVal::interval(0, INT64_C(0xFFFFFFFF) >> k, 1);
}

AbsVal clip_signed(const AbsVal& a, unsigned width) {
  if (width == 0 || width > 31) return a;
  const int64_t lo = -(int64_t{1} << (width - 1));
  const int64_t hi = (int64_t{1} << (width - 1)) - 1;
  if (a.top) return AbsVal::interval(lo, hi, 1);
  return AbsVal::interval(std::clamp(a.lo, lo, hi), std::clamp(a.hi, lo, hi), 1);
}

Refined refine_le(const AbsVal& a, int64_t ub) {
  if (a.top) return {AbsVal::interval(INT32_MIN, ub, 1), ub < INT32_MIN};
  if (a.hi <= ub) return {a, false};
  if (a.lo > ub) return {a, true};
  // Snap the new upper bound down onto the stride grid.
  const int64_t hi = a.lo + (ub - a.lo) / a.stride * a.stride;
  return {AbsVal::interval(a.lo, hi, a.stride), false};
}

Refined refine_ge(const AbsVal& a, int64_t lb) {
  if (a.top) return {AbsVal::interval(lb, INT32_MAX, 1), lb > INT32_MAX};
  if (a.lo >= lb) return {a, false};
  if (a.hi < lb) return {a, true};
  const int64_t lo = a.hi - (a.hi - lb) / a.stride * a.stride;
  return {AbsVal::interval(lo, a.hi, a.stride), false};
}

Refined refine_eq(const AbsVal& a, int64_t c) {
  if (a.top) return {AbsVal::constant(c), false};
  const bool member =
      c >= a.lo && c <= a.hi && (a.stride == 0 || (c - a.lo) % a.stride == 0);
  return {AbsVal::constant(c), !member};
}

Refined refine_ult(const AbsVal& a, int64_t ub) {
  if (ub <= 0) return {a, true};
  Refined r = refine_ge(a, 0);
  if (r.empty) {
    // `a` is entirely negative-as-signed, i.e. huge as unsigned: if ub is
    // in the positive signed range no value survives.
    if (ub <= INT64_C(0x80000000)) return {a, true};
    return {a, false};
  }
  Refined r2 = refine_le(r.val, ub - 1);
  return r2;
}

}  // namespace rnnasip::analysis
