// Strided-interval abstract domain for register values.
//
// An AbsVal describes the set { lo + k*stride : 0 <= k*stride <= hi-lo }
// over int64 (stride 0 <=> the single constant lo). `top` is any 32-bit
// value. The domain is just rich enough for the generated kernels: li
// constants, post-increment pointers (base + k*stride over a trip count),
// shifted LUT indices, and branch-refined counters. Arithmetic that could
// leave the modelled range collapses to top rather than wrapping.
#pragma once

#include <cstdint>
#include <string>

namespace rnnasip::analysis {

struct AbsVal {
  int64_t lo = 0;
  int64_t hi = 0;
  uint32_t stride = 0;
  bool top = true;

  static AbsVal constant(int64_t v) { return AbsVal{v, v, 0, false}; }
  static AbsVal interval(int64_t lo, int64_t hi, uint32_t stride);
  static AbsVal any() { return AbsVal{}; }

  bool is_const() const { return !top && lo == hi; }
  bool same_as(const AbsVal& o) const {
    if (top || o.top) return top == o.top;
    return lo == o.lo && hi == o.hi && stride == o.stride;
  }
  std::string to_string() const;
};

AbsVal join(const AbsVal& a, const AbsVal& b);

AbsVal add(const AbsVal& a, const AbsVal& b);
AbsVal add_const(const AbsVal& a, int64_t c);
AbsVal sub(const AbsVal& a, const AbsVal& b);
AbsVal mul(const AbsVal& a, const AbsVal& b);
AbsVal shl(const AbsVal& a, const AbsVal& sh);
/// Arithmetic shift right of the signed 32-bit value.
AbsVal sra(const AbsVal& a, const AbsVal& sh);
/// Logical shift right of the 32-bit pattern: a value that may be negative
/// widens to [0, (2^32-1) >> sh].
AbsVal srl(const AbsVal& a, const AbsVal& sh);
/// Clamp into the signed `width`-bit range (p.clip).
AbsVal clip_signed(const AbsVal& a, unsigned width);

/// Refinements used on branch edges. Each returns the subset of `a`
/// satisfying the bound; `empty` is set when no value survives (the edge
/// is statically dead).
struct Refined {
  AbsVal val;
  bool empty = false;
};
Refined refine_le(const AbsVal& a, int64_t ub);   ///< keep values <= ub
Refined refine_ge(const AbsVal& a, int64_t lb);   ///< keep values >= lb
Refined refine_eq(const AbsVal& a, int64_t c);    ///< keep values == c
/// Keep values that are unsigned-< `ub` where 0 <= ub < 2^31: the result
/// is the subset within [0, ub-1] regardless of the sign range of `a`
/// (negative signed values are huge unsigned values and drop out).
Refined refine_ult(const AbsVal& a, int64_t ub);

}  // namespace rnnasip::analysis
