#include "src/analysis/cfg.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/asm/disasm.h"
#include "src/isa/instr_info.h"
#include "src/isa/registers.h"

namespace rnnasip::analysis {

using isa::Instr;
using isa::Opcode;

namespace {

std::string at(const Instr& in, uint32_t pc) {
  std::ostringstream os;
  os << "`" << assembler::disassemble(in, pc) << "`";
  return os.str();
}

}  // namespace

std::optional<size_t> Cfg::index_at(uint32_t pc) const {
  auto it = std::lower_bound(pcs.begin(), pcs.end(), pc);
  if (it == pcs.end() || *it != pc) return std::nullopt;
  return static_cast<size_t>(it - pcs.begin());
}

Cfg build_cfg(const assembler::Program& prog, Report& rep) {
  Cfg cfg;
  cfg.prog = &prog;
  const size_t n = prog.instrs.size();
  cfg.pcs.resize(n);
  {
    uint32_t pc = prog.base;
    for (size_t i = 0; i < n; ++i) {
      cfg.pcs[i] = pc;
      pc += prog.instrs[i].size;
    }
  }
  if (n == 0) return cfg;

  // --- instruction scan: targets, hw regions, calls/returns ---
  std::set<size_t> leaders{0};
  // Direct control edges (from instr idx, to instr idx) for loop-entry
  // validation; excludes calls and returns.
  std::vector<std::pair<size_t, size_t>> direct_edges;
  std::vector<size_t> latches;  // backward conditional branches
  bool split_reported = false;

  for (size_t i = 0; i < n; ++i) {
    const Instr& in = prog.instrs[i];
    const uint32_t pc = cfg.pcs[i];
    switch (in.op) {
      case Opcode::kLpStarti:
      case Opcode::kLpEndi:
      case Opcode::kLpCount:
      case Opcode::kLpCounti:
        cfg.has_split_hwl_setup = true;
        if (!split_reported) {
          rep.add("hwl.split-setup", Severity::kInfo, pc,
                  "split lp.starti/lp.endi/lp.count form is not statically "
                  "verified; loop structure and memory checks skipped");
          split_reported = true;
        }
        break;
      case Opcode::kLpSetup:
      case Opcode::kLpSetupi: {
        const auto h = isa::hwl_setup(in, pc);
        const auto lo = cfg.index_at(h->start);
        const auto hi = h->end == prog.end_address()
                            ? std::optional<size_t>(n)
                            : cfg.index_at(h->end);
        if (h->end <= h->start) {
          rep.add("hwl.empty-body", Severity::kError, pc,
                  "hardware loop body is empty: " + at(in, pc));
        } else if (!lo || !hi) {
          rep.add("hwl.bad-bounds", Severity::kError, pc,
                  "hardware loop end is outside the text or not on an "
                  "instruction boundary: " + at(in, pc));
        } else {
          cfg.hw_regions.push_back(HwRegion{i, *lo, *hi, h->loop});
          leaders.insert(*lo);
          if (*hi < n) leaders.insert(*hi);
        }
        break;
      }
      case Opcode::kJal: {
        const uint32_t t = pc + static_cast<uint32_t>(in.imm);
        const auto ti = cfg.index_at(t);
        if (!ti) {
          rep.add("cfg.bad-target", Severity::kError, pc,
                  "jump target is outside the text or not on an instruction "
                  "boundary: " + at(in, pc));
        } else {
          leaders.insert(*ti);
          if (in.rd != 0) {
            cfg.call_sites.push_back(i);
          } else {
            direct_edges.emplace_back(i, *ti);
            if (*ti <= i)
              rep.add("cfg.irreducible-loop", Severity::kWarning, pc,
                      "backward jump does not form a recognized loop: " +
                          at(in, pc));
          }
        }
        if (i + 1 < n) leaders.insert(i + 1);
        break;
      }
      case Opcode::kJalr:
        if (in.rd == 0 && in.rs1 == isa::kRa && in.imm == 0) {
          cfg.return_sites.push_back(i);
        } else {
          rep.add("cfg.indirect-jump", Severity::kWarning, pc,
                  "indirect jump with unresolvable target: " + at(in, pc));
        }
        if (i + 1 < n) leaders.insert(i + 1);
        break;
      case Opcode::kEbreak:
      case Opcode::kEcall:
        if (i + 1 < n) leaders.insert(i + 1);
        break;
      default:
        if (isa::is_branch(in.op)) {
          const uint32_t t = pc + static_cast<uint32_t>(in.imm);
          const auto ti = cfg.index_at(t);
          if (!ti) {
            rep.add("cfg.bad-target", Severity::kError, pc,
                    "branch target is outside the text or not on an "
                    "instruction boundary: " + at(in, pc));
          } else {
            leaders.insert(*ti);
            direct_edges.emplace_back(i, *ti);
            if (*ti <= i) latches.push_back(i);
          }
          if (i + 1 < n) leaders.insert(i + 1);
        }
        break;
    }
  }

  // The program must not run off the end of the text.
  {
    const Instr& last = prog.instrs[n - 1];
    // ecall is a yield, not a terminator: the harness resumes at pc + 4,
    // so an ecall as the final instruction still falls off the end.
    const bool falls = !(last.op == Opcode::kJal || last.op == Opcode::kJalr ||
                         last.op == Opcode::kEbreak);
    if (falls)
      rep.add("cfg.fall-off-end", Severity::kError, cfg.pcs[n - 1],
              "execution can fall off the end of the text after " +
                  at(last, cfg.pcs[n - 1]));
  }

  // --- counted-loop recognition ---
  // A latch i targeting head t forms the do-while body [t, i]. Reject
  // shared heads and any control edge entering the body other than at the
  // head.
  {
    std::set<size_t> heads;
    std::set<size_t> dup_heads;
    std::vector<std::pair<size_t, size_t>> cand;  // (head, latch)
    for (size_t i : latches) {
      const uint32_t t = cfg.pcs[i] + static_cast<uint32_t>(prog.instrs[i].imm);
      const size_t head = *cfg.index_at(t);
      if (!heads.insert(head).second) dup_heads.insert(head);
      cand.emplace_back(head, i);
    }
    for (auto [head, latch] : cand) {
      bool ok = true;
      std::string why;
      if (dup_heads.count(head) != 0) {
        ok = false;
        why = "two latches share the loop head";
      }
      for (auto [u, v] : direct_edges) {
        if (u == latch && v == head) continue;
        const bool u_in = u >= head && u <= latch;
        const bool v_in = v > head && v <= latch;
        if (!u_in && v_in) {
          ok = false;
          why = "control flow enters the loop body past its head";
          break;
        }
      }
      if (ok) {
        cfg.counted_loops.push_back(CountedLoop{head, latch});
      } else {
        rep.add("cfg.irreducible-loop", Severity::kWarning, cfg.pcs[latch],
                "backward branch does not form a recognized counted loop (" +
                    why + "): " + at(prog.instrs[latch], cfg.pcs[latch]));
      }
    }
  }

  // --- proper-nesting validation across hw regions and counted loops ---
  // Intervals must nest or be disjoint; a counted loop violating this is
  // dropped (warning), overlapping hw regions are a hard error (reported
  // by the legality pass via the surviving structure).
  {
    struct Node {
      size_t start, end;  // [start, end)
      bool hw;
      size_t id;          // index into the owning vector
    };
    std::vector<Node> nodes;
    for (size_t k = 0; k < cfg.hw_regions.size(); ++k)
      nodes.push_back(Node{cfg.hw_regions[k].setup, cfg.hw_regions[k].body_hi,
                           true, k});
    for (size_t k = 0; k < cfg.counted_loops.size(); ++k)
      nodes.push_back(Node{cfg.counted_loops[k].head,
                           cfg.counted_loops[k].latch + 1, false, k});
    std::sort(nodes.begin(), nodes.end(), [](const Node& a, const Node& b) {
      return a.start != b.start ? a.start < b.start : a.end > b.end;
    });
    std::vector<Node> stack;
    std::set<size_t> drop_counted;
    for (const Node& nd : nodes) {
      while (!stack.empty() && stack.back().end <= nd.start) stack.pop_back();
      if (!stack.empty() && nd.end > stack.back().end) {
        const Node& top = stack.back();
        if (nd.hw && top.hw) {
          const HwRegion& r = cfg.hw_regions[nd.id];
          rep.add("hwl.overlap", Severity::kError, cfg.pcs[r.setup],
                  "hardware-loop regions overlap without nesting");
        } else {
          const size_t cid = nd.hw ? top.id : nd.id;
          drop_counted.insert(cid);
          const CountedLoop& c = cfg.counted_loops[cid];
          rep.add("cfg.irreducible-loop", Severity::kWarning, cfg.pcs[c.latch],
                  "counted loop straddles a hardware-loop region boundary");
        }
        continue;  // do not push the violating interval
      }
      stack.push_back(nd);
    }
    if (!drop_counted.empty()) {
      std::vector<CountedLoop> kept;
      for (size_t k = 0; k < cfg.counted_loops.size(); ++k)
        if (drop_counted.count(k) == 0) kept.push_back(cfg.counted_loops[k]);
      cfg.counted_loops = std::move(kept);
    }
  }

  // --- basic blocks ---
  std::vector<size_t> starts(leaders.begin(), leaders.end());
  cfg.block_of.assign(n, 0);
  for (size_t b = 0; b < starts.size(); ++b) {
    Block blk;
    blk.first = starts[b];
    blk.last = (b + 1 < starts.size() ? starts[b + 1] : n) - 1;
    for (size_t i = blk.first; i <= blk.last; ++i) cfg.block_of[i] = b;
    cfg.blocks.push_back(blk);
  }

  // Continuation blocks of every call, for return edges.
  std::vector<size_t> continuations;
  for (size_t c : cfg.call_sites)
    if (c + 1 < n) continuations.push_back(cfg.block_of[c + 1]);

  for (Block& blk : cfg.blocks) {
    const size_t l = blk.last;
    const Instr& in = prog.instrs[l];
    const uint32_t pc = cfg.pcs[l];
    auto add_to_idx = [&](size_t idx, EdgeKind kind) {
      blk.succs.push_back(Edge{cfg.block_of[idx], kind});
    };
    if (isa::is_branch(in.op)) {
      const auto ti = cfg.index_at(pc + static_cast<uint32_t>(in.imm));
      if (ti) add_to_idx(*ti, EdgeKind::kTaken);
      if (l + 1 < n) add_to_idx(l + 1, EdgeKind::kFall);
    } else if (in.op == Opcode::kJal) {
      const auto ti = cfg.index_at(pc + static_cast<uint32_t>(in.imm));
      if (ti) add_to_idx(*ti, in.rd != 0 ? EdgeKind::kCall : EdgeKind::kJump);
      // Over-approximate the call-return continuation as a fall edge.
      if (in.rd != 0 && l + 1 < n) add_to_idx(l + 1, EdgeKind::kFall);
    } else if (in.op == Opcode::kJalr) {
      if (in.rd == 0 && in.rs1 == isa::kRa && in.imm == 0)
        for (size_t cont : continuations)
          blk.succs.push_back(Edge{cont, EdgeKind::kReturn});
    } else if (in.op == Opcode::kEbreak) {
      // terminal
    } else if (in.op == Opcode::kEcall && l + 1 < n) {
      // ecall yields to the harness (layer-boundary checkpoint) and the
      // harness resumes at pc + 4 — a fall-through edge, not a terminator.
      add_to_idx(l + 1, EdgeKind::kFall);
    } else if (in.op != Opcode::kEcall && l + 1 < n) {
      add_to_idx(l + 1, EdgeKind::kFall);
    }
    // Hardware-loop back-edges fire on the sequential boundary at a region
    // end; regions may share an end (nested loops retiring together).
    for (const HwRegion& r : cfg.hw_regions)
      if (l + 1 == r.body_hi) add_to_idx(r.body_lo, EdgeKind::kHwlBack);
  }

  rep.num_instrs = n;
  rep.num_blocks = cfg.blocks.size();
  rep.num_hw_loops = cfg.hw_regions.size();
  rep.num_counted_loops = cfg.counted_loops.size();
  return cfg;
}

}  // namespace rnnasip::analysis
