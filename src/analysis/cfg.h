// Control-flow recovery over a decoded program: basic blocks with typed
// edges, hardware-loop regions, and recognized counted (branch-latched)
// loops.
//
// The generated kernels are highly structured — hardware-loop bodies are
// contiguous, software loops are do-while with a single backward latch —
// and the recovery leans on that: any backward control flow that does not
// fit the shape is reported (cfg.irreducible-loop) and excluded from the
// loop structures rather than guessed at.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/analysis/report.h"
#include "src/asm/program.h"

namespace rnnasip::analysis {

enum class EdgeKind : uint8_t {
  kFall,    ///< sequential successor
  kTaken,   ///< conditional branch taken
  kJump,    ///< jal x0
  kCall,    ///< jal with a link register
  kReturn,  ///< jalr x0, ra — to every call continuation
  kHwlBack, ///< hardware-loop back-edge at a region end boundary
};

struct Edge {
  size_t to = 0;  ///< successor block index
  EdgeKind kind = EdgeKind::kFall;
};

struct Block {
  size_t first = 0;  ///< first instruction index
  size_t last = 0;   ///< last instruction index (inclusive)
  std::vector<Edge> succs;
};

/// A hardware loop: lp.setup/lp.setupi at `setup`, body instructions
/// [body_lo, body_hi). Only structurally valid regions are recorded.
struct HwRegion {
  size_t setup = 0;
  size_t body_lo = 0;
  size_t body_hi = 0;
  int loop = 0;  ///< loop register set index (0 or 1)
};

/// A recognized do-while software loop: body [head, latch], backward
/// conditional branch at `latch` targeting `head`.
struct CountedLoop {
  size_t head = 0;
  size_t latch = 0;
};

struct Cfg {
  const assembler::Program* prog = nullptr;
  std::vector<uint32_t> pcs;        ///< pc of each instruction
  std::vector<Block> blocks;
  std::vector<size_t> block_of;     ///< instruction index -> block index

  std::vector<HwRegion> hw_regions;
  std::vector<CountedLoop> counted_loops;
  std::vector<size_t> call_sites;   ///< jal with rd != x0
  std::vector<size_t> return_sites; ///< jalr x0, ra, 0

  /// True when the program uses the split lp.starti/lp.endi/lp.count form,
  /// which this verifier does not model (reported hwl.split-setup).
  bool has_split_hwl_setup = false;

  size_t size() const { return pcs.size(); }
  uint32_t pc_of(size_t idx) const { return pcs[idx]; }
  std::optional<size_t> index_at(uint32_t pc) const;
};

/// Recover the CFG, emitting cfg.* findings (bad targets, fall-off-end,
/// indirect jumps, irreducible loops) into `rep`.
Cfg build_cfg(const assembler::Program& prog, Report& rep);

}  // namespace rnnasip::analysis
