#include "src/analysis/interp.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <map>
#include <numeric>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "src/analysis/absval.h"
#include "src/analysis/wcet.h"
#include "src/asm/disasm.h"
#include "src/isa/instr_info.h"
#include "src/isa/registers.h"

namespace rnnasip::analysis {

using isa::Instr;
using isa::Opcode;

namespace {

// Hard cap on abstractly executed instructions. Loop summarization re-runs
// each body three times per enclosing summarization, so the deepest
// generated nest (6 levels) multiplies by at most 3^6 — far below this.
constexpr uint64_t kStepBudget = 50'000'000;

struct AbsState {
  std::array<AbsVal, 32> r;
  uint32_t maybe_undef = 0;  ///< bit r: xr may be read before any definition
  uint8_t spr_undef = 0b11;  ///< SPR k never preloaded by a pl.sdotsp
  HazardState hz;            ///< pipeline state for stall/pairing costs
  bool bottom = true;
};

AbsVal getreg(const AbsState& st, uint8_t r) {
  return r == 0 ? AbsVal::constant(0) : st.r[r];
}

AbsState join_state(const AbsState& a, const AbsState& b) {
  if (a.bottom) return b;
  if (b.bottom) return a;
  AbsState o = a;
  for (int i = 1; i < 32; ++i) o.r[i] = join(a.r[i], b.r[i]);
  o.maybe_undef |= b.maybe_undef;
  o.spr_undef |= b.spr_undef;
  o.hz = hazard_join(a.hz, b.hz);
  return o;
}

/// Cycle interval accumulated along abstract paths: `min` is the shortest
/// feasible path, `max` the longest. Both sides stay sound under the
/// hazard rules of wcet.h.
struct Cost {
  uint64_t min = 0;
  uint64_t max = 0;
  Cost operator+(const Cost& o) const { return {min + o.min, max + o.max}; }
  Cost operator+(uint64_t c) const { return {min + c, max + c}; }
};

struct Arrival {
  AbsState st;
  Cost cost;
};

using Slot = std::optional<Arrival>;

void merge(Slot& slot, const AbsState& st, Cost cost) {
  if (st.bottom) return;
  if (!slot) {
    slot = Arrival{st, cost};
  } else {
    slot->st = join_state(slot->st, st);
    slot->cost.min = std::min(slot->cost.min, cost.min);  // sound lower bound
    slot->cost.max = std::max(slot->cost.max, cost.max);  // sound upper bound
  }
}

/// Outcome of abstractly executing a contiguous index range.
struct Flow {
  Slot fall;  ///< state arriving exactly at the range end
  Slot term;  ///< state at an ebreak (ecall yields fall through)
  /// Arrivals past the range end (a branch out of a loop body); targets the
  /// enclosing range's work list.
  std::vector<std::pair<size_t, Arrival>> escapes;
};

/// A summarizable loop; hardware regions and recognized counted loops are
/// both lowered to this.
struct LoopNode {
  bool hw = false;
  size_t start = 0;    ///< lp.setup index, or counted-loop head
  size_t body_lo = 0;  ///< body index range [body_lo, body_hi)
  size_t body_hi = 0;  ///< for counted loops this is the latch index
  size_t latch = 0;    ///< counted only: backward conditional branch
  size_t exit_idx = 0;
};

/// One run of a loop body from a given entry state.
struct BodyOut {
  Slot back;      ///< state re-entering the body (next iteration)
  Slot exitst;    ///< state leaving the loop
  Slot at_latch;  ///< counted only: state just before the latch
  /// Cycles body entry -> body end (hw) or through the latch issue, back
  /// edge excluded (counted).
  Cost body_cost;
  Slot term;
  std::vector<std::pair<size_t, Arrival>> escapes;
};

struct CallCtx {
  uint32_t ret_pc = 0;
  Slot* ret = nullptr;
};

/// Outcome of one conditional branch under an abstract state.
struct BranchSplit {
  AbsState taken;
  AbsState fall;
  bool taken_dead = false;
  bool fall_dead = false;
};

int64_t lo_of(const AbsVal& v) { return v.top ? INT32_MIN : v.lo; }
int64_t hi_of(const AbsVal& v) { return v.top ? INT32_MAX : v.hi; }
bool known_nonneg(const AbsVal& v) { return !v.top && v.lo >= 0; }

AbsVal load_result(Opcode op) {
  switch (op) {
    case Opcode::kLb:
    case Opcode::kPLb:
      return AbsVal::interval(-128, 127, 1);
    case Opcode::kLbu:
    case Opcode::kPLbu:
      return AbsVal::interval(0, 255, 1);
    case Opcode::kLh:
    case Opcode::kPLh:
    case Opcode::kPLhRr:
      return AbsVal::interval(-32768, 32767, 1);
    case Opcode::kLhu:
    case Opcode::kPLhu:
      return AbsVal::interval(0, 65535, 1);
    default:
      return AbsVal::any();
  }
}

class Interp {
 public:
  Interp(const Cfg& cfg, const iss::MemoryMap& map,
         const iss::TimingModel& timing, Report& rep)
      : cfg_(cfg), map_(map), t_(timing), rep_(rep) {}

  InterpResult run();

 private:
  const Cfg& cfg_;
  const iss::MemoryMap& map_;
  const iss::TimingModel& t_;
  Report& rep_;

  std::vector<LoopNode> nodes_;
  std::map<size_t, std::vector<const LoopNode*>> nodes_at_;  // outermost first
  std::vector<bool> visited_;
  std::set<std::pair<std::string, uint32_t>> emitted_;
  std::map<uint32_t, LoopBound> bounds_;
  uint64_t steps_ = 0;
  bool out_of_budget_ = false;
  bool wcet_bounded_ = true;
  std::string wcet_reason_;

  const Instr& in(size_t idx) const { return cfg_.prog->instrs[idx]; }
  uint32_t pc(size_t idx) const { return cfg_.pcs[idx]; }
  size_t n() const { return cfg_.size(); }

  std::string disasm(size_t idx) const {
    return "`" + assembler::disassemble(in(idx), pc(idx)) + "`";
  }

  void add(const std::string& rule, Severity sev, size_t idx,
           const std::string& msg) {
    if (emitted_.insert({rule, pc(idx)}).second) rep_.add(rule, sev, pc(idx), msg);
  }

  bool spend() {
    if (++steps_ <= kStepBudget) return true;
    if (!out_of_budget_) {
      out_of_budget_ = true;
      rep_.add("analysis.budget-exceeded", Severity::kWarning, 0,
               "abstract interpretation step budget exhausted; remaining "
               "checks skipped");
      unbounded(0, "step budget exhausted");
    }
    return false;
  }

  /// Void the worst-case bound: some feasible behavior at `idx` cannot be
  /// cycle-bounded. The lower bound survives; max_cycles reports 0 with
  /// the first cause (advisory perf.wcet-unbounded).
  void unbounded(size_t idx, const std::string& why) {
    if (!wcet_bounded_) return;
    wcet_bounded_ = false;
    wcet_reason_ = why;
    add("perf.wcet-unbounded", Severity::kInfo, idx,
        "no sound worst-case cycle bound: " + why + " at " + disasm(idx));
  }

  const LoopNode* node_starting_at(size_t idx, const LoopNode* skip) const {
    auto it = nodes_at_.find(idx);
    if (it == nodes_at_.end()) return nullptr;
    for (const LoopNode* nd : it->second)
      if (nd != skip) return nd;
    return nullptr;
  }

  void check_reads(const Instr& ins, AbsState& st, size_t idx) {
    const isa::RegUse u = isa::reg_use(ins);
    const uint8_t rs[3] = {static_cast<uint8_t>(u.reads_rs1 ? ins.rs1 : 0),
                           static_cast<uint8_t>(u.reads_rs2 ? ins.rs2 : 0),
                           static_cast<uint8_t>(u.reads_rd ? ins.rd : 0)};
    for (uint8_t r : rs) {
      if (r != 0 && ((st.maybe_undef >> r) & 1u)) {
        add("df.use-undef", Severity::kError, idx,
            disasm(idx) + " reads " + isa::reg_name(r) +
                " before any definition on some path");
        st.maybe_undef &= ~(1u << r);  // report each register once per path
      }
    }
  }

  void check_mem(const isa::MemAccess& m, const AbsState& st, size_t idx) {
    if (map_.empty()) return;
    const AbsVal addr = add_const(getreg(st, m.addr_reg), m.offset);
    if (addr.top) {
      add("mem.unprovable", Severity::kWarning, idx,
          "cannot bound the address of " + disasm(idx));
      return;
    }
    if (m.bytes > 1 &&
        (addr.lo % m.bytes != 0 || (addr.stride % m.bytes) != 0)) {
      add("mem.misaligned", Severity::kError, idx,
          disasm(idx) + " address " + addr.to_string() + " is not " +
              std::to_string(m.bytes) + "-byte aligned");
      return;
    }
    const char* rule = m.is_store ? "mem.oob-store" : "mem.oob-load";
    const iss::MemSegment* seg =
        addr.lo < 0 ? nullptr : map_.find(static_cast<uint32_t>(addr.lo));
    if (seg == nullptr ||
        static_cast<uint64_t>(addr.hi) + m.bytes > seg->end()) {
      add(rule, Severity::kError, idx,
          disasm(idx) + " accesses " + addr.to_string() + " (+ " +
              std::to_string(m.bytes) + " bytes), outside every segment of " +
              map_.to_string());
      return;
    }
    if (m.is_store && !seg->writable) {
      add("mem.write-protected", Severity::kError, idx,
          disasm(idx) + " stores into read-only segment '" + seg->name + "'");
    }
  }

  uint64_t instr_cost(const Instr& ins) const {
    switch (isa::opcode_info(ins.op).unit) {
      case isa::Unit::kDiv:
        return t_.div_cycles;
      case isa::Unit::kJump:
        return 1 + t_.jump_penalty;
      case isa::Unit::kLoad:
      case isa::Unit::kStore:
      case isa::Unit::kRnnDot:
        return 1 + t_.mem_wait_states;
      default:
        return 1;  // branches are costed at the dispatch site
    }
  }

  /// Abstractly execute one non-control instruction in place; returns its
  /// cycle cost interval (base cost plus entry-hazard stalls/pairing).
  Cost exec_instr(AbsState& st, size_t idx) {
    const Instr& ins = in(idx);
    check_reads(ins, st, idx);
    const HazardCost hc = hazard_cost(st.hz, ins, t_);

    if (ins.op == Opcode::kPlSdotspH0 || ins.op == Opcode::kPlSdotspH1) {
      const int k = ins.op == Opcode::kPlSdotspH1 ? 1 : 0;
      const std::string spr = std::to_string(k);
      if (st.hz.last_spr == k)
        add("spr.back-to-back", Severity::kWarning, idx,
            disasm(idx) + " reuses SPR " + spr +
                " directly after the previous pl.sdotsp on the same SPR; the "
                "weight stream expects strict .0/.1 alternation (this stalls "
                "and consumes the same weight word twice)");
      if (((st.spr_undef >> k) & 1u) && ins.rd != 0)
        add("spr.uninit", Severity::kError, idx,
            disasm(idx) + " accumulates from SPR " + spr +
                " before any preload (pl.sdotsp.h." + spr +
                " with rd=x0) initialized it");
      st.spr_undef = static_cast<uint8_t>(st.spr_undef & ~(1u << k));
    }

    if (const auto m = isa::mem_access(ins)) check_mem(*m, st, idx);

    const AbsVal a = getreg(st, ins.rs1);
    const AbsVal b = getreg(st, ins.rs2);
    const int32_t imm = ins.imm;
    auto wr = [&st](uint8_t r, const AbsVal& v) {
      if (r != 0) {
        st.r[r] = v;
        st.maybe_undef &= ~(1u << r);
      }
    };
    auto fold2 = [&](int64_t v) { wr(ins.rd, AbsVal::constant(v)); };

    switch (ins.op) {
      case Opcode::kLui:
        fold2(static_cast<int32_t>(static_cast<uint32_t>(imm) << 12));
        break;
      case Opcode::kAuipc:
        fold2(static_cast<int32_t>(pc(idx) + (static_cast<uint32_t>(imm) << 12)));
        break;
      case Opcode::kAddi:
        wr(ins.rd, add_const(a, imm));
        break;
      case Opcode::kAdd:
        wr(ins.rd, analysis::add(a, b));  // the member add() shadows the op
        break;
      case Opcode::kSub:
        wr(ins.rd, sub(a, b));
        break;
      case Opcode::kMul:
        wr(ins.rd, mul(a, b));
        break;
      case Opcode::kSlli:
        wr(ins.rd, shl(a, AbsVal::constant(imm)));
        break;
      case Opcode::kSll:
        wr(ins.rd, shl(a, b));
        break;
      case Opcode::kSrai:
        wr(ins.rd, sra(a, AbsVal::constant(imm)));
        break;
      case Opcode::kSra:
        wr(ins.rd, sra(a, b));
        break;
      case Opcode::kSrli:
        wr(ins.rd, srl(a, AbsVal::constant(imm)));
        break;
      case Opcode::kSrl:
        wr(ins.rd, srl(a, b));
        break;
      case Opcode::kAndi:
        if (a.is_const()) {
          fold2(static_cast<int32_t>(a.lo) & imm);
        } else if (imm > 0 && (imm & (imm + 1)) == 0) {
          wr(ins.rd, AbsVal::interval(0, imm, 1));  // power-of-two mask
        } else {
          wr(ins.rd, AbsVal::any());
        }
        break;
      case Opcode::kOri:
        if (a.is_const()) fold2(static_cast<int32_t>(a.lo) | imm);
        else wr(ins.rd, AbsVal::any());
        break;
      case Opcode::kXori:
        if (a.is_const()) fold2(static_cast<int32_t>(a.lo) ^ imm);
        else wr(ins.rd, AbsVal::any());
        break;
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
        if (a.is_const() && b.is_const()) {
          const int32_t x = static_cast<int32_t>(a.lo);
          const int32_t y = static_cast<int32_t>(b.lo);
          fold2(ins.op == Opcode::kAnd ? (x & y)
                                       : ins.op == Opcode::kOr ? (x | y)
                                                               : (x ^ y));
        } else {
          wr(ins.rd, AbsVal::any());
        }
        break;
      case Opcode::kSlti:
        if (hi_of(a) < imm) fold2(1);
        else if (lo_of(a) >= imm) fold2(0);
        else wr(ins.rd, AbsVal::interval(0, 1, 1));
        break;
      case Opcode::kSlt:
        if (hi_of(a) < lo_of(b)) fold2(1);
        else if (lo_of(a) >= hi_of(b)) fold2(0);
        else wr(ins.rd, AbsVal::interval(0, 1, 1));
        break;
      case Opcode::kSltiu:
        if (known_nonneg(a) && a.hi < imm && imm >= 0) fold2(1);
        else if (known_nonneg(a) && imm >= 0 && a.lo >= imm) fold2(0);
        else wr(ins.rd, AbsVal::interval(0, 1, 1));
        break;
      case Opcode::kSltu:
        if (known_nonneg(a) && known_nonneg(b) && a.hi < b.lo) fold2(1);
        else if (known_nonneg(a) && known_nonneg(b) && a.lo >= b.hi) fold2(0);
        else wr(ins.rd, AbsVal::interval(0, 1, 1));
        break;
      case Opcode::kPMin:
        if (!a.top && !b.top)
          wr(ins.rd, AbsVal::interval(std::min(a.lo, b.lo),
                                      std::min(a.hi, b.hi), 1));
        else wr(ins.rd, AbsVal::any());
        break;
      case Opcode::kPMax:
        if (!a.top && !b.top)
          wr(ins.rd, AbsVal::interval(std::max(a.lo, b.lo),
                                      std::max(a.hi, b.hi), 1));
        else wr(ins.rd, AbsVal::any());
        break;
      case Opcode::kPAbs:
        if (!a.top) {
          const int64_t lo = a.lo >= 0 ? a.lo : (a.hi < 0 ? -a.hi : 0);
          wr(ins.rd, AbsVal::interval(lo, std::max(std::llabs(a.lo),
                                                   std::llabs(a.hi)), 1));
        } else {
          wr(ins.rd, AbsVal::any());
        }
        break;
      case Opcode::kPExths:
        if (a.is_const()) fold2(static_cast<int16_t>(a.lo));
        else wr(ins.rd, AbsVal::interval(-32768, 32767, 1));
        break;
      case Opcode::kPExthz:
        if (a.is_const()) fold2(static_cast<uint16_t>(a.lo));
        else wr(ins.rd, AbsVal::interval(0, 65535, 1));
        break;
      case Opcode::kPExtbs:
        if (a.is_const()) fold2(static_cast<int8_t>(a.lo));
        else wr(ins.rd, AbsVal::interval(-128, 127, 1));
        break;
      case Opcode::kPExtbz:
        if (a.is_const()) fold2(static_cast<uint8_t>(a.lo));
        else wr(ins.rd, AbsVal::interval(0, 255, 1));
        break;
      case Opcode::kPClip:
        wr(ins.rd, clip_signed(a, static_cast<unsigned>(imm)));
        break;
      case Opcode::kPClipu: {
        const int64_t hi = imm > 0 && imm < 32 ? (int64_t{1} << (imm - 1)) - 1
                                               : INT32_MAX;
        if (!a.top)
          wr(ins.rd, AbsVal::interval(std::clamp(a.lo, int64_t{0}, hi),
                                      std::clamp(a.hi, int64_t{0}, hi), 1));
        else wr(ins.rd, AbsVal::interval(0, hi, 1));
        break;
      }
      default: {
        // Generic transfer from the metadata: post-increment base update,
        // then the destination (load results keep their natural range).
        const isa::RegUse u = isa::reg_use(ins);
        if (u.writes_rs1) {
          const auto m = isa::mem_access(ins);
          const AbsVal inc = m && m->reg_post_inc
                                 ? b
                                 : AbsVal::constant(m ? m->post_inc : 0);
          wr(ins.rs1, analysis::add(a, inc));
        }
        if (u.writes_rd)
          wr(ins.rd, isa::is_gpr_load(ins.op) ? load_result(ins.op)
                                              : AbsVal::any());
        break;
      }
    }
    hazard_advance(st.hz, ins);
    const uint64_t base = instr_cost(ins);
    const uint64_t lo = base + hc.stall_min;
    return Cost{lo - std::min(hc.pair_save, lo), base + hc.stall_max};
  }

  BranchSplit split_branch(const AbsState& st, const Instr& ins) {
    const AbsVal a = getreg(st, ins.rs1);
    const AbsVal b = getreg(st, ins.rs2);
    BranchSplit s{st, st, false, false};
    auto apply = [](AbsState& dst, uint8_t r, const Refined& rv, bool& dead) {
      if (rv.empty) dead = true;
      else if (r != 0) dst.r[r] = rv.val;
    };
    const int64_t alo = lo_of(a), ahi = hi_of(a);
    const int64_t blo = lo_of(b), bhi = hi_of(b);
    switch (ins.op) {
      case Opcode::kBeq:
      case Opcode::kBne: {
        // eq-side refinement/decision, then swap for bne.
        AbsState eq = st;
        bool eq_dead = false;
        if (b.is_const()) apply(eq, ins.rs1, refine_eq(a, b.lo), eq_dead);
        if (a.is_const()) apply(eq, ins.rs2, refine_eq(b, a.lo), eq_dead);
        if (!a.top && !b.top && (a.hi < b.lo || b.hi < a.lo)) eq_dead = true;
        const bool ne_dead = a.is_const() && b.is_const() && a.lo == b.lo;
        if (ins.op == Opcode::kBeq) {
          s.taken = eq;
          s.taken_dead = eq_dead;
          s.fall_dead = ne_dead;
        } else {
          s.fall = eq;
          s.fall_dead = eq_dead;
          s.taken_dead = ne_dead;
        }
        break;
      }
      case Opcode::kBlt:
        s.taken_dead = alo >= bhi;
        s.fall_dead = ahi < blo;
        apply(s.taken, ins.rs1, refine_le(a, bhi - 1), s.taken_dead);
        apply(s.taken, ins.rs2, refine_ge(b, alo + 1), s.taken_dead);
        apply(s.fall, ins.rs1, refine_ge(a, blo), s.fall_dead);
        apply(s.fall, ins.rs2, refine_le(b, ahi), s.fall_dead);
        break;
      case Opcode::kBge:
        s.taken_dead = ahi < blo;
        s.fall_dead = alo >= bhi;
        apply(s.taken, ins.rs1, refine_ge(a, blo), s.taken_dead);
        apply(s.taken, ins.rs2, refine_le(b, ahi), s.taken_dead);
        apply(s.fall, ins.rs1, refine_le(a, bhi - 1), s.fall_dead);
        apply(s.fall, ins.rs2, refine_ge(b, alo + 1), s.fall_dead);
        break;
      case Opcode::kBltu:
        if (known_nonneg(b) || b.is_const())
          apply(s.taken, ins.rs1, refine_ult(a, bhi), s.taken_dead);
        if (known_nonneg(a) && known_nonneg(b)) {
          apply(s.taken, ins.rs2, refine_ge(b, a.lo + 1), s.taken_dead);
          apply(s.fall, ins.rs1, refine_ge(a, b.lo), s.fall_dead);
          apply(s.fall, ins.rs2, refine_le(b, a.hi), s.fall_dead);
          if (a.lo >= b.hi) s.taken_dead = true;
          if (a.hi < b.lo) s.fall_dead = true;
        }
        break;
      case Opcode::kBgeu:
        if (known_nonneg(b) || b.is_const())
          apply(s.fall, ins.rs1, refine_ult(a, bhi), s.fall_dead);
        if (known_nonneg(a) && known_nonneg(b)) {
          apply(s.fall, ins.rs2, refine_ge(b, a.lo + 1), s.fall_dead);
          apply(s.taken, ins.rs1, refine_ge(a, b.lo), s.taken_dead);
          apply(s.taken, ins.rs2, refine_le(b, a.hi), s.taken_dead);
          if (a.lo >= b.hi) s.fall_dead = true;
          if (a.hi < b.lo) s.taken_dead = true;
        }
        break;
      default:
        break;
    }
    // The branch retires through the same hazard bookkeeping as any other
    // instruction: not a load, not a memory op, not a pl.sdotsp.
    hazard_advance(s.taken.hz, ins);
    hazard_advance(s.fall.hz, ins);
    return s;
  }

  struct CallOut {
    Slot ret;
    Slot term;
  };

  CallOut exec_call(size_t tgt, const AbsState& st, uint32_t ret_pc,
                    int depth) {
    CallOut out;
    CallCtx ctx{ret_pc, &out.ret};
    Flow f = exec_range(tgt, n(), st, depth + 1, nullptr, &ctx);
    out.term = f.term;
    return out;
  }

  /// Execute [lo, hi). All intra-range edges are forward once loops are
  /// summarized, so one ascending sweep over the work map visits every
  /// index at most once with its fully joined entry state.
  Flow exec_range(size_t lo, size_t hi, const AbsState& entry, int depth,
                  const LoopNode* skip, const CallCtx* ctx) {
    Flow out;
    if (out_of_budget_) return out;
    if (depth > 64) {
      if (lo < n()) unbounded(lo, "call/loop nesting depth limit exceeded");
      return out;
    }
    std::map<size_t, Arrival> work;
    merge_work(work, lo, entry, Cost{});
    while (!work.empty()) {
      auto it = work.begin();
      const size_t idx = it->first;
      AbsState st = std::move(it->second.st);
      const Cost cost = it->second.cost;
      work.erase(it);
      if (idx == hi) {
        merge(out.fall, st, cost);
        continue;
      }
      if (idx > hi) {
        out.escapes.emplace_back(idx, Arrival{std::move(st), cost});
        continue;
      }
      if (!spend()) return out;
      visited_[idx] = true;
      if (const LoopNode* nd = node_starting_at(idx, skip)) {
        exec_loop(*nd, st, cost, depth, work, out, ctx);
        continue;
      }
      const Instr& ins = in(idx);
      if (isa::is_branch(ins.op)) {
        check_reads(ins, st, idx);
        const HazardCost hc = hazard_cost(st.hz, ins, t_);
        const Cost c = cost + Cost{1 + hc.stall_min, 1 + hc.stall_max};
        const auto ti = cfg_.index_at(pc(idx) + static_cast<uint32_t>(ins.imm));
        BranchSplit s = split_branch(st, ins);
        if (ti && *ti > idx && !s.taken_dead)
          merge_work(work, *ti, s.taken, c + t_.taken_branch_penalty);
        // Backward targets are unrecognized latches (already warned); do not
        // follow them, but a feasible taken edge voids the upper bound.
        if (ti && *ti <= idx && !s.taken_dead)
          unbounded(idx, "backward branch outside a recognized loop");
        if (!s.fall_dead) merge_work(work, idx + 1, s.fall, c);
        continue;
      }
      switch (ins.op) {
        case Opcode::kJal: {
          const auto ti =
              cfg_.index_at(pc(idx) + static_cast<uint32_t>(ins.imm));
          if (!ti) continue;  // cfg.bad-target already reported
          if (ins.rd == 0) {
            if (*ti > idx) {
              AbsState js = st;
              hazard_advance(js.hz, ins);
              merge_work(work, *ti, js, cost + (1 + t_.jump_penalty));
            } else {
              unbounded(idx, "backward jump outside a recognized loop");
            }
            continue;
          }
          // A call. Link, then inline the callee at this call site.
          AbsState linked = st;
          linked.r[ins.rd] = AbsVal::constant(pc(idx) + ins.size);
          linked.maybe_undef &= ~(1u << ins.rd);
          hazard_advance(linked.hz, ins);
          if (ctx != nullptr) {
            add("cfg.nested-call", Severity::kWarning, idx,
                "call from inside a called routine; callee effects are "
                "over-approximated (caller-saved registers clobbered)");
            unbounded(idx, "nested call cycles are not modelled");
            for (uint8_t r : {uint8_t{1}, uint8_t{5}, uint8_t{6}, uint8_t{7},
                              uint8_t{10}, uint8_t{11}, uint8_t{12},
                              uint8_t{13}, uint8_t{14}, uint8_t{15},
                              uint8_t{16}, uint8_t{17}})
              linked.r[r] = AbsVal::any();
            merge_work(work, idx + 1, linked, cost + (1 + t_.jump_penalty));
            continue;
          }
          CallOut c = exec_call(*ti, linked, pc(idx) + ins.size, depth);
          if (c.ret)
            merge_work(work, idx + 1, c.ret->st,
                       cost + (1 + t_.jump_penalty) + c.ret->cost);
          if (c.term)
            merge(out.term, c.term->st,
                  cost + (1 + t_.jump_penalty) + c.term->cost);
          continue;
        }
        case Opcode::kJalr: {
          check_reads(ins, st, idx);
          const bool is_ret =
              ins.rd == 0 && ins.rs1 == isa::kRa && ins.imm == 0;
          if (is_ret && ctx != nullptr) {
            const AbsVal ra = getreg(st, isa::kRa);
            if (!ra.is_const() ||
                static_cast<uint32_t>(ra.lo) != ctx->ret_pc) {
              std::ostringstream os;
              os << disasm(idx) << " returns to " << ra.to_string()
                 << " but the call site expects 0x" << std::hex << ctx->ret_pc
                 << "; the link register was clobbered inside the routine";
              add("df.ra-clobber", Severity::kError, idx, os.str());
            }
            const HazardCost hc = hazard_cost(st.hz, ins, t_);
            hazard_advance(st.hz, ins);
            merge(*ctx->ret, st,
                  cost + Cost{1 + t_.jump_penalty + hc.stall_min,
                              1 + t_.jump_penalty + hc.stall_max});
          } else {
            // The target is unknown (already warned as cfg.indirect-jump);
            // the path ends here with no cycle upper bound.
            unbounded(idx, "indirect jump target unknown");
          }
          continue;
        }
        case Opcode::kEbreak:
          merge(out.term, st, cost + 1);
          continue;
        case Opcode::kEcall:
          // A yield to the harness (layer-boundary checkpoint): execution
          // resumes at the next instruction with all state intact.
          merge_work(work, idx + 1, st, cost + 1);
          continue;
        default:
          break;
      }
      const Cost c = exec_instr(st, idx);
      merge_work(work, idx + 1, st, cost + c);
    }
    return out;
  }

  static void merge_work(std::map<size_t, Arrival>& work, size_t idx,
                         const AbsState& st, Cost cost) {
    if (st.bottom) return;
    auto [it, fresh] = work.try_emplace(idx, Arrival{st, cost});
    if (!fresh) {
      it->second.st = join_state(it->second.st, st);
      it->second.cost.min = std::min(it->second.cost.min, cost.min);
      it->second.cost.max = std::max(it->second.cost.max, cost.max);
    }
  }

  BodyOut body_once(const LoopNode& nd, const AbsState& s, int depth,
                    const CallCtx* ctx) {
    BodyOut b;
    if (nd.hw) {
      Flow f = exec_range(nd.body_lo, nd.body_hi, s, depth + 1, nullptr, ctx);
      if (f.fall) {
        b.body_cost = f.fall->cost;
        // The back-edge is free and the final fall-through leaves the loop
        // with the same abstract state.
        merge(b.back, f.fall->st, f.fall->cost);
        merge(b.exitst, f.fall->st, f.fall->cost);
      }
      b.term = std::move(f.term);
      b.escapes = std::move(f.escapes);
      return b;
    }
    Flow f = exec_range(nd.body_lo, nd.latch, s, depth + 1, &nd, ctx);
    if (f.fall) {
      AbsState at = f.fall->st;
      merge(b.at_latch, at, f.fall->cost);
      const Instr& latch = in(nd.latch);
      visited_[nd.latch] = true;
      check_reads(latch, at, nd.latch);
      const HazardCost hc = hazard_cost(at.hz, latch, t_);
      const Cost lc = f.fall->cost + Cost{1 + hc.stall_min, 1 + hc.stall_max};
      b.body_cost = lc;
      BranchSplit sp = split_branch(at, latch);
      if (!sp.taken_dead) merge(b.back, sp.taken, lc + t_.taken_branch_penalty);
      if (!sp.fall_dead) merge(b.exitst, sp.fall, lc);
    }
    b.term = std::move(f.term);
    b.escapes = std::move(f.escapes);
    return b;
  }

  /// Solve the latch condition for the iteration count. The operand values
  /// at the latch of iteration k are affine: lhs_k = l1 + (k-1)*dl,
  /// rhs_k = r1 + (k-1)*dr; the loop re-enters while the branch is taken.
  static std::optional<uint64_t> solve_trips(Opcode op, int64_t l1, int64_t dl,
                                             int64_t r1, int64_t dr,
                                             bool unsigned_ok,
                                             bool& never_exits) {
    const int64_t u1 = l1 - r1;
    const int64_t du = dl - dr;
    never_exits = false;
    std::optional<uint64_t> trips;
    switch (op) {
      case Opcode::kBne:
        if (u1 == 0) trips = 1;
        else if (du == 0 || (-u1) % du != 0 || 1 + (-u1) / du < 1)
          never_exits = true;
        else trips = static_cast<uint64_t>(1 + (-u1) / du);
        break;
      case Opcode::kBeq:
        if (u1 != 0) trips = 1;
        else if (du != 0) trips = 2;
        else never_exits = true;
        break;
      case Opcode::kBlt:
      case Opcode::kBltu:
        if (u1 >= 0) trips = 1;
        else if (du <= 0) never_exits = true;
        else trips = static_cast<uint64_t>(1 + (-u1 + du - 1) / du);
        break;
      case Opcode::kBge:
      case Opcode::kBgeu:
        if (u1 < 0) trips = 1;
        else if (du >= 0) never_exits = true;
        else trips = static_cast<uint64_t>(2 + u1 / (-du));
        break;
      default:
        return std::nullopt;
    }
    if (!trips) return std::nullopt;
    if (op == Opcode::kBltu || op == Opcode::kBgeu) {
      // The signed solution transfers only if both operands provably stay in
      // the non-negative signed range over the whole run.
      if (!unsigned_ok) return std::nullopt;
      const int64_t k = static_cast<int64_t>(*trips) - 1;
      for (int64_t v : {l1, r1, l1 + k * dl, r1 + k * dr})
        if (v < 0 || v >= (int64_t{1} << 31)) return std::nullopt;
    }
    return trips;
  }

  /// Per-register entry-to-entry delta when S1 = S0 shifted by a constant.
  static std::optional<int64_t> affine_delta(const AbsVal& v0,
                                             const AbsVal& v1) {
    if (v0.same_as(v1)) return 0;
    if (v0.top || v1.top || v0.stride != v1.stride ||
        v1.lo - v0.lo != v1.hi - v0.hi)
      return std::nullopt;
    return v1.lo - v0.lo;
  }

  /// Entry state covering every iteration: invariant registers keep S0,
  /// affine registers widen to the strided interval swept over `trips`
  /// iterations (all 32-bit values when the count is unknown), everything
  /// else goes to top.
  static AbsState widen(const AbsState& s0, const AbsState& s1,
                        uint64_t trips) {
    if (trips == 1) return s0;
    AbsState w = s0;
    for (int r = 1; r < 32; ++r) {
      const auto d = affine_delta(s0.r[r], s1.r[r]);
      if (d && *d == 0) continue;
      if (d && trips > 0) {
        const int64_t span = *d * static_cast<int64_t>(trips - 1);
        const uint64_t g =
            s0.r[r].stride == 0
                ? static_cast<uint64_t>(std::llabs(*d))
                : std::gcd(static_cast<uint64_t>(s0.r[r].stride),
                           static_cast<uint64_t>(std::llabs(*d)));
        w.r[r] = AbsVal::interval(
            s0.r[r].lo + std::min<int64_t>(0, span),
            s0.r[r].hi + std::max<int64_t>(0, span),
            g > UINT32_MAX ? 1 : static_cast<uint32_t>(g));
      } else {
        w.r[r] = AbsVal::any();
      }
    }
    w.maybe_undef |= s1.maybe_undef;
    w.spr_undef |= s1.spr_undef;
    // Pipeline state reaches its fixpoint in one step: hazard_advance is
    // purely syntactic, so every iteration >= 2 enters with s1's hazard
    // state (or carries s0's through an instruction-free path, which the
    // join covers).
    w.hz = hazard_join(s0.hz, s1.hz);
    return w;
  }

  /// Precise entry state of the final iteration.
  static AbsState last_entry(const AbsState& s0, const AbsState& s1,
                             const AbsState& w, uint64_t trips) {
    AbsState l = w;
    for (int r = 1; r < 32; ++r) {
      const auto d = affine_delta(s0.r[r], s1.r[r]);
      if (!d) continue;
      const int64_t shift = *d * static_cast<int64_t>(trips - 1);
      l.r[r] = AbsVal::interval(s0.r[r].lo + shift, s0.r[r].hi + shift,
                                s0.r[r].stride);
    }
    return l;
  }

  void exec_loop(const LoopNode& nd, const AbsState& entry, Cost cost,
                 int depth, std::map<size_t, Arrival>& work, Flow& out,
                 const CallCtx* ctx) {
    AbsState s0 = entry;
    Cost c0 = cost;
    std::optional<uint64_t> trips;      // exact proven iteration count
    std::optional<uint64_t> trips_max;  // sound upper trip bound
    std::string why_unbounded = "unproven loop trip count";

    if (nd.hw) {
      const Instr& su = in(nd.start);
      visited_[nd.start] = true;
      check_reads(su, s0, nd.start);
      const HazardCost hc = hazard_cost(s0.hz, su, t_);
      std::optional<uint32_t> count;
      if (su.op == Opcode::kLpSetupi) {
        count = static_cast<uint32_t>(su.imm);
      } else {
        const AbsVal c = getreg(s0, su.rs1);
        if (c.is_const()) {
          count = static_cast<uint32_t>(c.lo);  // the counter is 32-bit
          if (su.op == Opcode::kLpSetup && *count == 0)
            add("hwl.count-zero", Severity::kWarning, nd.start,
                disasm(nd.start) +
                    " sets an iteration count of 0; RI5CY cannot skip the "
                    "body, which still executes once");
        } else if (known_nonneg(c)) {
          // Interval-bounded count: no exact trips, but a sound maximum.
          trips_max = std::max<uint64_t>(static_cast<uint64_t>(c.hi), 1);
        } else {
          why_unbounded = "hardware-loop count not statically bounded";
        }
      }
      if (count) trips = trips_max = std::max<uint64_t>(*count, 1);
      c0 = c0 + Cost{1 + hc.stall_min, 1 + hc.stall_max};
      hazard_advance(s0.hz, su);
    }

    // Iteration 1 (states here are concrete behaviors, so findings are
    // real). Escapes and terminations are deferred: their upper-bound side
    // must be inflated by the worst-case prefix of completed iterations,
    // which needs the trip bound resolved first.
    BodyOut b1 = body_once(nd, s0, depth, ctx);
    std::vector<std::pair<size_t, Arrival>> pend_esc = std::move(b1.escapes);
    std::vector<Arrival> pend_term;
    if (b1.term) pend_term.push_back(*b1.term);

    if (!nd.hw && b1.at_latch && b1.back) {
      // Trip count from the latch condition.
      const Instr& latch = in(nd.latch);
      const AbsVal l1 = getreg(b1.at_latch->st, latch.rs1);
      const AbsVal r1 = getreg(b1.at_latch->st, latch.rs2);
      const auto dl = affine_delta(getreg(s0, latch.rs1),
                                   getreg(b1.back->st, latch.rs1));
      const auto dr = affine_delta(getreg(s0, latch.rs2),
                                   getreg(b1.back->st, latch.rs2));
      if (l1.is_const() && r1.is_const() && dl && dr) {
        bool never = false;
        trips = solve_trips(latch.op, l1.lo, *dl, r1.lo, *dr,
                            /*unsigned_ok=*/true, never);
        if (never) {
          add("cfg.nonterminating", Severity::kWarning, nd.latch,
              "loop latch " + disasm(nd.latch) +
                  " is provably always taken; the loop never exits");
          why_unbounded = "loop latch provably always taken";
        }
      }
    }
    if (!nd.hw && b1.at_latch && !b1.back) trips = 1;  // latch never taken
    if (!nd.hw && trips) trips_max = trips;

    const AbsState& s1 = b1.back ? b1.back->st : s0;
    const AbsState w = widen(s0, s1, trips.value_or(0));

    // Full-range pass: every load/store, register read and SPR access is
    // checked under the union of all iteration entry states.
    BodyOut bw = b1;
    if (trips.value_or(0) != 1) {
      bw = body_once(nd, w, depth, ctx);
      for (auto& e : bw.escapes) pend_esc.push_back(std::move(e));
      if (bw.term) pend_term.push_back(*bw.term);
    }

    // Exit state: precise last-iteration run when the count is proven.
    Slot exitst = bw.exitst ? bw.exitst : b1.exitst;
    if (trips && *trips > 1) {
      BodyOut be = body_once(nd, last_entry(s0, s1, w, *trips), depth, ctx);
      if (be.exitst) exitst = be.exitst;
      if (be.term) pend_term.push_back(*be.term);
    }

    // Closed-form cycle interval over the whole loop. Counted-loop body
    // costs include the latch issue; each re-entry additionally pays the
    // taken-branch penalty, which the final (fall-through) latch saves.
    const Cost body{std::min(b1.body_cost.min, bw.body_cost.min),
                    std::max(b1.body_cost.max, bw.body_cost.max)};
    const uint64_t t = trips.value_or(1);
    uint64_t total_min = 0;
    uint64_t per_iter_max = 0;
    if (nd.hw) {
      total_min = t * body.min;  // zero-overhead back-edges
      per_iter_max = body.max;
    } else {
      total_min = t * body.min + (t - 1) * t_.taken_branch_penalty;
      per_iter_max = body.max + t_.taken_branch_penalty;
    }
    uint64_t total_max = 0;
    if (trips_max) {
      total_max = *trips_max * per_iter_max;
      if (!nd.hw) total_max -= t_.taken_branch_penalty;
    } else {
      unbounded(nd.start, why_unbounded);
    }

    // An escape (or termination) during iteration k implies k-1 completed
    // iterations before it, with k <= trips_max: the upper-bound side gains
    // the worst-case prefix; the lower-bound side is feasible in iteration 1.
    const uint64_t infl = trips_max ? (*trips_max - 1) * per_iter_max : 0;
    for (auto& e : pend_esc)
      merge_work(work, e.first, e.second.st,
                 Cost{c0.min + e.second.cost.min,
                      c0.max + infl + e.second.cost.max});
    for (const Arrival& a : pend_term)
      merge(out.term, a.st,
            Cost{c0.min + a.cost.min, c0.max + infl + a.cost.max});

    LoopBound lb;
    lb.pc = pc(nd.start);
    lb.hardware = nd.hw;
    lb.trips = trips.value_or(0);
    lb.trips_max = trips_max.value_or(0);
    lb.body_min_cycles = body.min;
    lb.body_max_cycles = body.max;
    bounds_[lb.pc] = lb;

    if (exitst)
      merge_work(work, nd.exit_idx, exitst->st,
                 Cost{c0.min + total_min, c0.max + total_max});
  }
};

InterpResult Interp::run() {
  InterpResult res;
  visited_.assign(n(), false);
  if (n() == 0) return res;

  // Lower the recognized loop structures.
  for (const HwRegion& r : cfg_.hw_regions) {
    LoopNode nd;
    nd.hw = true;
    nd.start = r.setup;
    nd.body_lo = r.body_lo;
    nd.body_hi = r.body_hi;
    nd.exit_idx = r.body_hi;
    nodes_.push_back(nd);
  }
  for (const CountedLoop& c : cfg_.counted_loops) {
    LoopNode nd;
    nd.hw = false;
    nd.start = c.head;
    nd.body_lo = c.head;
    nd.body_hi = c.latch;
    nd.latch = c.latch;
    nd.exit_idx = c.latch + 1;
    nodes_.push_back(nd);
  }
  for (const LoopNode& nd : nodes_) nodes_at_[nd.start].push_back(&nd);
  for (auto& [idx, list] : nodes_at_) {
    std::sort(list.begin(), list.end(),
              [](const LoopNode* a, const LoopNode* b) {
                const size_t ea = a->hw ? a->body_hi : a->latch + 1;
                const size_t eb = b->hw ? b->body_hi : b->latch + 1;
                return ea > eb;  // outermost first
              });
  }

  // Initial state: the ISS resets all registers to 0, but a program should
  // not rely on that — reads before a definition are still flagged while
  // the value 0 keeps address arithmetic precise.
  AbsState init;
  init.bottom = false;
  for (int r = 0; r < 32; ++r) init.r[r] = AbsVal::constant(0);
  init.maybe_undef = ~1u;

  Flow f = exec_range(0, n(), init, 0, nullptr, nullptr);

  if (f.term) {
    res.min_cycles = f.term->cost.min;
    if (wcet_bounded_) res.max_cycles = f.term->cost.max;
  } else if (f.fall) {
    res.min_cycles = f.fall->cost.min;  // fall-off-end is already an error
  }
  res.completed = !out_of_budget_;

  for (auto& [lpc, lb] : bounds_) rep_.loops.push_back(lb);
  rep_.min_cycles = res.min_cycles;
  rep_.max_cycles = res.max_cycles;
  if (res.max_cycles == 0)
    rep_.wcet_unbounded_reason =
        wcet_reason_.empty() ? "no bounded terminating path" : wcet_reason_;

  // Unreachable code (advisory): contiguous never-visited runs.
  if (res.completed) {
    size_t i = 0;
    while (i < n()) {
      if (visited_[i]) {
        ++i;
        continue;
      }
      size_t j = i;
      while (j < n() && !visited_[j]) ++j;
      std::ostringstream os;
      os << (j - i) << " instruction" << (j - i == 1 ? "" : "s")
         << " never executed on any analyzed path, starting at "
         << disasm(i);
      rep_.add("cfg.unreachable", Severity::kInfo, pc(i), os.str());
      i = j;
    }
  }
  return res;
}

}  // namespace

InterpResult interpret(const Cfg& cfg, const iss::MemoryMap& map,
                       const iss::TimingModel& timing, Report& rep) {
  Interp interp(cfg, map, timing, rep);
  return interp.run();
}

}  // namespace rnnasip::analysis
