// Structural abstract interpretation over the recovered CFG.
//
// Registers carry strided intervals (absval.h). Loops are not iterated to
// a fixpoint: each hardware loop / counted do-while is *summarized* — the
// body is executed abstractly once from its entry state to detect affine
// per-iteration deltas, the trip count is solved in closed form from the
// latch condition (or taken from the lp.setup count), the entry state is
// widened to the exact strided interval covering every iteration, and the
// body is re-executed once more under that widened state to check every
// load/store, register read, and SPR access for the whole iteration space.
// A third pass under the last-iteration entry state recovers a precise
// exit state so enclosing loops keep constant-foldable counters.
//
// Calls (jal ra) are executed inline per call site — routines never nest
// in the generated programs, so this is exact call-site context
// sensitivity. The pass accumulates a certified static cycle *interval*
// (IPET-style: shortest and longest abstract path, both weighted by
// hazard-aware instruction costs — see wcet.h — and by proven trip
// counts) plus per-loop LoopBound records. Once loops are summarized the
// remaining edges are all forward, so the single ascending worklist sweep
// yields the longest path (max-merge) alongside the shortest (min-merge).
// The upper bound is voided (max_cycles == 0, with a reason) by anything
// the analysis cannot bound: unproven trip counts, backward control flow
// outside recognized loops, indirect jumps, nested calls, or an exhausted
// step budget.
#pragma once

#include "src/analysis/cfg.h"
#include "src/analysis/report.h"
#include "src/iss/memory_map.h"
#include "src/iss/timing.h"

namespace rnnasip::analysis {

struct InterpResult {
  uint64_t min_cycles = 0;
  uint64_t max_cycles = 0;  ///< certified WCET; 0 = unbounded
  bool completed = false;   ///< false when the step budget was exhausted
};

/// Run the abstract interpretation, emitting df.*, spr.*, mem.*, and the
/// remaining cfg./hwl. findings into `rep`, plus rep.loops/min_cycles.
/// With an empty `map`, memory checks are skipped (no segment intent).
InterpResult interpret(const Cfg& cfg, const iss::MemoryMap& map,
                       const iss::TimingModel& timing, Report& rep);

}  // namespace rnnasip::analysis
