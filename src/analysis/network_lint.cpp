#include "src/analysis/network_lint.h"

#include "src/kernels/layout.h"

namespace rnnasip::analysis {

iss::MemoryMap memory_map_of(const kernels::BuiltNetwork& net) {
  iss::MemoryMap map;
  map.add({"text", net.program.base, net.program.size_bytes(),
           /*writable=*/false});
  if (net.data_bytes != 0)
    map.add({"data", kernels::kDataBase, net.data_bytes, /*writable=*/true});
  if (net.param_base != 0 && net.param_bytes != 0)
    map.add({"params", net.param_base, net.param_bytes, /*writable=*/false});
  return map;
}

Report verify_network(const kernels::BuiltNetwork& net, const Options& opts) {
  return verify(net.program, memory_map_of(net), opts);
}

uint64_t campaign_watchdog(const kernels::BuiltNetwork& net,
                           const iss::TimingModel& timing) {
  Options opts;
  opts.timing = timing;
  opts.dead_defs = false;  // liveness has no bearing on the cycle bound
  const Report report = verify_network(net, opts);
  if (report.max_cycles != 0) return report.max_cycles * kWcetWatchdogMargin;
  if (report.min_cycles == 0) return kCampaignWatchdogFallback;
  return report.min_cycles * kCampaignWatchdogMargin;
}

}  // namespace rnnasip::analysis
