// Linting a built network program: derives the memory map the build
// intended (text read-only, activation/state buffers writable, split
// parameter region read-only) and runs verify() against it.
#pragma once

#include "src/analysis/verify.h"
#include "src/iss/memory_map.h"
#include "src/kernels/network.h"

namespace rnnasip::analysis {

/// The segment intent of a built network: "text" (read-only), "data"
/// (buffers + unsplit parameters, writable), and — for split builds —
/// "params" (read-only weights/biases/LUTs).
iss::MemoryMap memory_map_of(const kernels::BuiltNetwork& net);

Report verify_network(const kernels::BuiltNetwork& net,
                      const Options& opts = {});

/// Automatic per-forward-pass cycle watchdog for fault campaigns: the
/// static cycle lower bound of the built program (abstract interpretation,
/// see verify()) times a safety margin. The bound is sound — a fault-free
/// run can never finish below it — so bound x margin catches a corrupted
/// loop in time proportional to the network's real cost instead of one
/// campaign-wide constant. Falls back to kCampaignWatchdogFallback when the
/// bound is unavailable (structural findings skipped abstract
/// interpretation). Rule documented in docs/FAULTS.md.
inline constexpr uint64_t kCampaignWatchdogMargin = 64;
inline constexpr uint64_t kCampaignWatchdogFallback = 20'000'000;
uint64_t campaign_watchdog(const kernels::BuiltNetwork& net,
                           const iss::TimingModel& timing);

}  // namespace rnnasip::analysis
