// Linting a built network program: derives the memory map the build
// intended (text read-only, activation/state buffers writable, split
// parameter region read-only) and runs verify() against it.
#pragma once

#include "src/analysis/verify.h"
#include "src/iss/memory_map.h"
#include "src/kernels/network.h"

namespace rnnasip::analysis {

/// The segment intent of a built network: "text" (read-only), "data"
/// (buffers + unsplit parameters, writable), and — for split builds —
/// "params" (read-only weights/biases/LUTs).
iss::MemoryMap memory_map_of(const kernels::BuiltNetwork& net);

Report verify_network(const kernels::BuiltNetwork& net,
                      const Options& opts = {});

}  // namespace rnnasip::analysis
