// Linting a built network program: derives the memory map the build
// intended (text read-only, activation/state buffers writable, split
// parameter region read-only) and runs verify() against it.
#pragma once

#include "src/analysis/verify.h"
#include "src/iss/memory_map.h"
#include "src/kernels/network.h"

namespace rnnasip::analysis {

/// The segment intent of a built network: "text" (read-only), "data"
/// (buffers + unsplit parameters, writable), and — for split builds —
/// "params" (read-only weights/biases/LUTs).
iss::MemoryMap memory_map_of(const kernels::BuiltNetwork& net);

Report verify_network(const kernels::BuiltNetwork& net,
                      const Options& opts = {});

/// Automatic per-forward-pass cycle watchdog for fault campaigns. When the
/// verifier certifies a WCET (Report::max_cycles, see wcet.h) the watchdog
/// arms at WCET x kWcetWatchdogMargin: a fault-free run provably finishes
/// below it, so any expiry is a real fault, and the margin is tight (2x a
/// sound upper bound instead of 64x a lower bound). When only the lower
/// bound exists the old heuristic — bound x kCampaignWatchdogMargin —
/// applies; with no bound at all (structural findings skipped abstract
/// interpretation) kCampaignWatchdogFallback. Rule documented in
/// docs/FAULTS.md.
inline constexpr uint64_t kWcetWatchdogMargin = 2;
inline constexpr uint64_t kCampaignWatchdogMargin = 64;
inline constexpr uint64_t kCampaignWatchdogFallback = 20'000'000;
uint64_t campaign_watchdog(const kernels::BuiltNetwork& net,
                           const iss::TimingModel& timing);

}  // namespace rnnasip::analysis
