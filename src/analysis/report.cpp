#include "src/analysis/report.h"

#include <algorithm>
#include <sstream>

namespace rnnasip::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  return "?";
}

namespace {
int count(const Report& r, Severity s) {
  return static_cast<int>(std::count_if(
      r.findings.begin(), r.findings.end(),
      [s](const Finding& f) { return f.severity == s; }));
}
}  // namespace

int Report::errors() const { return count(*this, Severity::kError); }
int Report::warnings() const { return count(*this, Severity::kWarning); }
int Report::infos() const { return count(*this, Severity::kInfo); }

void Report::add(std::string rule, Severity sev, uint32_t pc, std::string message) {
  findings.push_back(Finding{std::move(rule), sev, pc, std::move(message)});
}

std::string Report::to_string() const {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << severity_name(f.severity) << " [" << f.rule << "] pc=0x" << std::hex
       << f.pc << std::dec << ": " << f.message << "\n";
  }
  os << errors() << " error(s), " << warnings() << " warning(s), " << infos()
     << " info(s); " << num_instrs << " instrs, " << num_blocks << " blocks, "
     << num_hw_loops << " hw loops, " << num_counted_loops
     << " counted loops; min_cycles=" << min_cycles
     << ", max_cycles=" << max_cycles << "\n";
  return os.str();
}

}  // namespace rnnasip::analysis
