// Structured findings produced by the static verifier.
//
// Every rule has a stable dotted id (catalogued in docs/ANALYSIS.md):
//   cfg.*  control-flow recovery        (bad targets, unreachable code)
//   hwl.*  hardware-loop legality       (RI5CY lp.setup constraints)
//   spr.*  pl.sdotsp SPR protocol       (weight-streaming alternation)
//   df.*   register dataflow            (def-before-use, dead defs)
//   mem.*  abstract memory safety       (segment bounds, alignment, RO)
//   perf.* cycle lower-bound invariants
//
// Severity gates: errors and warnings fail the lint (CI gate); infos are
// advisory (e.g. SW activation routines emitted but never called at a
// given optimization level).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rnnasip::analysis {

enum class Severity { kError, kWarning, kInfo };

const char* severity_name(Severity s);

struct Finding {
  std::string rule;     ///< stable dotted rule id, e.g. "hwl.branch-into"
  Severity severity = Severity::kError;
  uint32_t pc = 0;      ///< address of the offending instruction
  std::string message;  ///< human-readable diagnosis (includes disassembly)
};

/// Static per-loop execution bounds: `trips` proven iterations (0 when the
/// exact count could not be proven) of a body costing at least
/// `body_min_cycles` and at most `body_max_cycles`; `trips_max` is the
/// sound upper trip bound (0 = unbounded, voiding the program WCET).
struct LoopBound {
  uint32_t pc = 0;        ///< lp.setup pc, or counted-loop head pc
  bool hardware = false;  ///< lp.setup/lp.setupi vs branch-latched loop
  uint64_t trips = 0;
  uint64_t trips_max = 0;
  uint64_t body_min_cycles = 0;
  uint64_t body_max_cycles = 0;
};

struct Report {
  std::vector<Finding> findings;
  std::vector<LoopBound> loops;

  /// Static cycle lower bound for one forward pass (entry to ebreak),
  /// 0 when abstract interpretation was skipped due to structural errors.
  uint64_t min_cycles = 0;
  /// Certified worst-case cycle bound (WCET) for the same pass: every
  /// dynamic execution satisfies min_cycles <= cycles <= max_cycles.
  /// 0 when no sound upper bound exists — unprovable trip counts or
  /// unmodelled control flow — with the first cause in
  /// `wcet_unbounded_reason` (also surfaced as a perf.wcet-unbounded info).
  uint64_t max_cycles = 0;
  std::string wcet_unbounded_reason;

  size_t num_instrs = 0;
  size_t num_blocks = 0;
  size_t num_hw_loops = 0;
  size_t num_counted_loops = 0;

  int errors() const;
  int warnings() const;
  int infos() const;
  /// Lint gate: no errors and no warnings.
  bool clean() const { return errors() == 0 && warnings() == 0; }

  void add(std::string rule, Severity sev, uint32_t pc, std::string message);

  /// Multi-line human-readable listing (findings + totals).
  std::string to_string() const;
};

}  // namespace rnnasip::analysis
