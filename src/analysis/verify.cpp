#include "src/analysis/verify.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "src/analysis/cfg.h"
#include "src/analysis/interp.h"
#include "src/asm/disasm.h"
#include "src/isa/instr_info.h"
#include "src/isa/registers.h"

namespace rnnasip::analysis {

using isa::Instr;
using isa::Opcode;

namespace {

std::string at(const Cfg& cfg, size_t idx) {
  return "`" +
         assembler::disassemble(cfg.prog->instrs[idx], cfg.pcs[idx]) + "`";
}

bool in_body(const HwRegion& r, size_t idx) {
  return idx >= r.body_lo && idx < r.body_hi;
}

/// RI5CY hardware-loop legality over the recovered regions.
void hwl_legality(const Cfg& cfg, Report& rep) {
  const auto& instrs = cfg.prog->instrs;

  for (const HwRegion& r : cfg.hw_regions) {
    // The back-edge fires only on sequential flow reaching the end
    // boundary: a control transfer (or another setup) as the last body
    // instruction would never trigger it.
    const size_t last = r.body_hi - 1;
    const Instr& li = instrs[last];
    if (isa::is_control(li.op) || li.op == Opcode::kLpSetup ||
        li.op == Opcode::kLpSetupi)
      rep.add("hwl.last-insn", Severity::kError, cfg.pcs[last],
              at(cfg, last) +
                  " may not be the last instruction of a hardware-loop body "
                  "(the back-edge fires only on sequential flow)");

    if (instrs[r.setup].op == Opcode::kLpSetupi &&
        static_cast<uint32_t>(instrs[r.setup].imm) == 0)
      rep.add("hwl.count-zero", Severity::kWarning, cfg.pcs[r.setup],
              at(cfg, r.setup) +
                  " sets an iteration count of 0; RI5CY cannot skip the "
                  "body, which still executes once");
  }

  // Nesting: the inner loop of a nested pair must use loop register set 0
  // inside set 1, and nesting deeper than two is unencodable.
  for (const HwRegion& inner : cfg.hw_regions) {
    for (const HwRegion& outer : cfg.hw_regions) {
      if (&inner == &outer) continue;
      const bool nested =
          outer.setup < inner.setup && inner.body_hi <= outer.body_hi;
      if (!nested) continue;
      if (!(inner.loop == 0 && outer.loop == 1)) {
        std::ostringstream os;
        os << "hardware loop L" << inner.loop << " nests inside L"
           << outer.loop << "; RI5CY requires L0 inside L1: "
           << at(cfg, inner.setup);
        rep.add("hwl.nesting", Severity::kError, cfg.pcs[inner.setup],
                os.str());
      }
    }
  }

  // Branches into or out of a body. Calls leaving a body (jal ra to a
  // routine outside every region) and their jalr returns are the one legal
  // exception — the generated programs call SW activation routines from
  // inside loop bodies.
  for (size_t i = 0; i < instrs.size(); ++i) {
    const Instr& in = instrs[i];
    const auto t = isa::direct_target(in, cfg.pcs[i]);
    if (!t) continue;
    const auto ti = cfg.index_at(*t);
    if (!ti) continue;  // cfg.bad-target already reported
    const bool is_call = in.op == Opcode::kJal && in.rd != 0;
    for (const HwRegion& r : cfg.hw_regions) {
      const bool u_in = in_body(r, i);
      const bool v_in = in_body(r, *ti);
      if (u_in && !v_in && !is_call)
        rep.add("hwl.branch-out", Severity::kError, cfg.pcs[i],
                at(cfg, i) + " leaves the hardware-loop body set up by " +
                    at(cfg, r.setup));
      if (!u_in && v_in)
        rep.add("hwl.branch-into", Severity::kError, cfg.pcs[i],
                at(cfg, i) + " enters the hardware-loop body set up by " +
                    at(cfg, r.setup) + " past its setup");
    }
  }
}

/// pl.sdotsp.h.x with rd == rs1 traps in the core (the LSU post-increment
/// and the MAC result race on one register) — purely syntactic.
void sdotsp_conflicts(const Cfg& cfg, Report& rep) {
  const auto& instrs = cfg.prog->instrs;
  for (size_t i = 0; i < instrs.size(); ++i) {
    const Instr& in = instrs[i];
    if ((in.op == Opcode::kPlSdotspH0 || in.op == Opcode::kPlSdotspH1) &&
        in.rd == in.rs1 && in.rd != 0)
      rep.add("spr.rd-rs1-conflict", Severity::kError, cfg.pcs[i],
              at(cfg, i) +
                  " uses one register as both accumulator and stream "
                  "pointer; this traps on the core (kRdRs1Conflict)");
  }
}

/// May-liveness over the block graph; a definition whose value no path
/// reads is advisory dead code (df.dead-def).
void dead_defs(const Cfg& cfg, Report& rep) {
  const auto& instrs = cfg.prog->instrs;
  const size_t nb = cfg.blocks.size();
  if (nb == 0) return;

  auto reads_mask = [&](const Instr& in) {
    uint32_t m = 0;
    const isa::RegUse u = isa::reg_use(in);
    if (u.reads_rs1) m |= 1u << in.rs1;
    if (u.reads_rs2) m |= 1u << in.rs2;
    if (u.reads_rd) m |= 1u << in.rd;
    return m & ~1u;
  };
  auto writes_mask = [&](const Instr& in) {
    uint32_t m = 0;
    const isa::RegUse u = isa::reg_use(in);
    if (u.writes_rd) m |= 1u << in.rd;
    if (u.writes_rs1) m |= 1u << in.rs1;
    return m & ~1u;
  };

  std::vector<uint32_t> live_in(nb, 0), live_out(nb, 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b = nb; b-- > 0;) {
      uint32_t out = 0;
      for (const Edge& e : cfg.blocks[b].succs) out |= live_in[e.to];
      uint32_t live = out;
      for (size_t i = cfg.blocks[b].last + 1; i-- > cfg.blocks[b].first;) {
        live &= ~writes_mask(instrs[i]);
        live |= reads_mask(instrs[i]);
      }
      if (out != live_out[b] || live != live_in[b]) {
        live_out[b] = out;
        live_in[b] = live;
        changed = true;
      }
    }
  }

  for (size_t b = 0; b < nb; ++b) {
    uint32_t live = live_out[b];
    for (size_t i = cfg.blocks[b].last + 1; i-- > cfg.blocks[b].first;) {
      const Instr& in = instrs[i];
      const isa::RegUse u = isa::reg_use(in);
      // Only flag pure value producers: post-increment side effects and
      // link registers are addressing/control state, not dead values.
      if (u.writes_rd && in.rd != 0 && !u.writes_rs1 &&
          in.op != Opcode::kJal && in.op != Opcode::kJalr &&
          ((live >> in.rd) & 1u) == 0)
        rep.add("df.dead-def", Severity::kInfo, cfg.pcs[i],
                "the value " + at(cfg, i) + " writes to " +
                    isa::reg_name(in.rd) + " is never read");
      live &= ~writes_mask(in);
      live |= reads_mask(in);
    }
  }
}

}  // namespace

Report verify(const assembler::Program& prog, const iss::MemoryMap& map,
              const Options& opts) {
  Report rep;
  Cfg cfg = build_cfg(prog, rep);
  hwl_legality(cfg, rep);
  sdotsp_conflicts(cfg, rep);

  // The abstract interpretation assumes a structurally sound program;
  // errors above void that (and the split hardware-loop setup form is not
  // modelled at all).
  if (rep.errors() == 0 && !cfg.has_split_hwl_setup)
    interpret(cfg, map, opts.timing, rep);

  if (opts.dead_defs) dead_defs(cfg, rep);

  std::stable_sort(rep.findings.begin(), rep.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.severity != b.severity)
                       return static_cast<int>(a.severity) <
                              static_cast<int>(b.severity);
                     return a.pc < b.pc;
                   });
  return rep;
}

}  // namespace rnnasip::analysis
