// Entry point of the static program verifier (`rnnasip-lint` backend).
//
// verify() runs the full pass pipeline over a decoded program against a
// declared memory map:
//   1. CFG recovery                       (cfg.* findings)     cfg.h
//   2. hardware-loop legality             (hwl.*, spr.rd-rs1-conflict)
//   3. abstract interpretation            (df.*, spr.*, mem.*, cycle bound)
//   4. dead-definition liveness           (df.dead-def, advisory)
// Structural errors from 1–2 skip pass 3 (its preconditions do not hold).
#pragma once

#include "src/analysis/report.h"
#include "src/asm/program.h"
#include "src/iss/memory_map.h"
#include "src/iss/timing.h"

namespace rnnasip::analysis {

struct Options {
  /// Timing model for the static cycle lower bound; must match the target
  /// core's configuration for the bound to be comparable to measured cycles.
  iss::TimingModel timing;
  /// Emit df.dead-def advisories (a liveness pass over the CFG).
  bool dead_defs = true;
};

/// Verify `prog` against `map`. An empty map skips the memory-safety rules
/// (no segment intent to check against).
Report verify(const assembler::Program& prog, const iss::MemoryMap& map,
              const Options& opts = {});

}  // namespace rnnasip::analysis
