#include "src/analysis/wcet.h"

#include "src/analysis/network_lint.h"
#include "src/isa/instr_info.h"

namespace rnnasip::analysis {

using isa::Instr;
using isa::Opcode;

namespace {

int spr_of(Opcode op) {
  if (op == Opcode::kPlSdotspH0) return 0;
  if (op == Opcode::kPlSdotspH1) return 1;
  return -1;
}

bool reads_any_gpr(const Instr& ins) {
  const isa::RegUse u = isa::reg_use(ins);
  return (u.reads_rs1 && ins.rs1 != 0) || (u.reads_rs2 && ins.rs2 != 0) ||
         (u.reads_rd && ins.rd != 0);
}

}  // namespace

HazardCost hazard_cost(const HazardState& hz, const Instr& ins,
                       const iss::TimingModel& t) {
  HazardCost c;

  // Load-use interlock: the core stalls when the consumer directly follows
  // the producing load. Certain iff the producing rd is known and read;
  // possible whenever the previous instruction may have been a load and
  // this one reads any register.
  const bool lu_cert =
      hz.last_load >= 0 &&
      isa::reads_reg(ins, static_cast<uint8_t>(hz.last_load));
  const bool lu_poss =
      lu_cert || (hz.last_load == -2 && reads_any_gpr(ins));
  if (lu_cert) c.stall_min += t.load_use_stall;
  if (lu_poss) c.stall_max += t.load_use_stall;

  // Back-to-back pl.sdotsp on one SPR.
  const int cur = spr_of(ins.op);
  if (cur >= 0) {
    if (hz.last_spr == cur) {
      c.stall_min += t.spr_conflict_stall;
      c.stall_max += t.spr_conflict_stall;
    } else if (hz.last_spr == -2) {
      c.stall_max += t.spr_conflict_stall;
    }
  }

  // Dual-issue what-if: an ALU/MUL/SIMD instruction issues in the slot of
  // the directly preceding memory op unless it depends on a preceding
  // load's result. The saving is credited to the lower bound whenever some
  // concrete path could pair; the upper bound assumes every pairing breaks.
  if (t.dual_issue && hz.prev_mem != 0 && !lu_cert) {
    const isa::Unit unit = isa::opcode_info(ins.op).unit;
    if (unit == isa::Unit::kAlu || unit == isa::Unit::kMul ||
        unit == isa::Unit::kSimd)
      c.pair_save = 1;
  }
  return c;
}

void hazard_advance(HazardState& hz, const Instr& ins) {
  hz.last_load = isa::is_gpr_load(ins.op) && ins.rd != 0
                     ? static_cast<int8_t>(ins.rd)
                     : int8_t{-1};
  const isa::Unit unit = isa::opcode_info(ins.op).unit;
  hz.prev_mem = unit == isa::Unit::kLoad || unit == isa::Unit::kStore ? 1 : 0;
  hz.last_spr = static_cast<int8_t>(spr_of(ins.op));
}

HazardState hazard_join(const HazardState& a, const HazardState& b) {
  HazardState o;
  o.last_load = a.last_load == b.last_load ? a.last_load : int8_t{-2};
  o.last_spr = a.last_spr == b.last_spr ? a.last_spr : int8_t{-2};
  o.prev_mem = a.prev_mem == b.prev_mem ? a.prev_mem : uint8_t{2};
  return o;
}

StaticBounds static_bounds(const kernels::BuiltNetwork& net,
                           const iss::TimingModel& timing) {
  Options opts;
  opts.timing = timing;
  opts.dead_defs = false;  // liveness has no bearing on the cycle bounds
  const Report rep = verify_network(net, opts);
  StaticBounds b;
  b.min_cycles = rep.min_cycles;
  b.max_cycles = rep.max_cycles;
  b.unbounded_reason = rep.wcet_unbounded_reason;
  return b;
}

}  // namespace rnnasip::analysis
