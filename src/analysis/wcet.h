// Sound worst-case execution time (WCET) machinery.
//
// The abstract interpreter (interp.cpp) threads a HazardState through every
// path: the three pieces of pipeline state the ISS carries between
// instructions (core.cpp run()) — the destination of a directly preceding
// gpr load (load-use interlock), the SPR of a directly preceding pl.sdotsp
// (back-to-back conflict stall), and whether the previous instruction was a
// memory op (the dual-issue what-if pairing slot). Each field has an
// explicit "unknown" top so joined control flow stays sound:
//
//   lower bound  charge a stall only when it happens on *every* concrete
//                path; credit a dual-issue pairing whenever *some* path
//                could pair.
//   upper bound  charge a stall whenever *some* path could stall; never
//                credit a pairing (every pairing opportunity breaks).
//
// With both directions the interpreter emits a certified interval
// StaticBounds{min_cycles, max_cycles} with the invariant
// min <= measured <= max for every program it can bound; programs with
// unprovable trip counts or unmodelled control flow (backward branches
// outside recognized loops, indirect jumps, nested calls) keep the lower
// bound and report max_cycles == 0 with a reason. The serving stack builds
// on the upper bound: the campaign watchdog arms at WCET x margin
// (network_lint.h) and admission control gains a provably safe mode
// (serve::SchedulerConfig::Admission::kProvable).
#pragma once

#include <cstdint>
#include <string>

#include "src/isa/opcode.h"
#include "src/iss/timing.h"

namespace rnnasip::kernels {
struct BuiltNetwork;
}

namespace rnnasip::analysis {

/// Pipeline state carried across instructions, with explicit unknowns for
/// joined control flow.
struct HazardState {
  int8_t last_load = -1;  ///< rd of the directly preceding gpr load
                          ///< (-1 none, -2 unknown)
  int8_t last_spr = -1;   ///< SPR of the directly preceding pl.sdotsp
                          ///< (-1 none, -2 unknown)
  uint8_t prev_mem = 0;   ///< previous instruction was a load/store
                          ///< (0 no, 1 yes, 2 unknown)

  bool operator==(const HazardState&) const = default;

  /// The top element: any concrete pipeline state is covered.
  static HazardState unknown() {
    HazardState h;
    h.last_load = -2;
    h.last_spr = -2;
    h.prev_mem = 2;
    return h;
  }
};

/// Cycle adjustments the entry hazards add to one instruction.
struct HazardCost {
  uint64_t stall_min = 0;  ///< stalls provable on every concrete path
  uint64_t stall_max = 0;  ///< stalls possible on some concrete path
  uint64_t pair_save = 0;  ///< dual-issue cycles possibly saved (lower
                           ///< bound only; the upper bound never pairs)
};

/// Stall/pairing effect of executing `ins` under entry hazards `hz`,
/// mirroring the ISS issue rules (load-use interlock, SPR conflict,
/// dual-issue what-if pairing).
HazardCost hazard_cost(const HazardState& hz, const isa::Instr& ins,
                       const iss::TimingModel& t);

/// Retire `ins`: the exact (syntactic, data-independent) ISS hazard
/// bookkeeping. Not applied to ecall/ebreak — the core's early return
/// leaves pipeline state untouched across a yield.
void hazard_advance(HazardState& hz, const isa::Instr& ins);

/// Join at a control-flow merge: agreeing fields survive, disagreeing
/// fields go to unknown.
HazardState hazard_join(const HazardState& a, const HazardState& b);

/// Certified static cycle interval of one assembled program: any dynamic
/// execution e satisfies min_cycles <= e <= max_cycles (when bounded).
struct StaticBounds {
  uint64_t min_cycles = 0;
  /// Sound WCET; 0 = no upper bound could be certified (see reason).
  uint64_t max_cycles = 0;
  std::string unbounded_reason;  ///< why max_cycles is 0 (empty otherwise)

  bool bounded() const { return max_cycles != 0; }
};

/// Run the static verifier over a built network program and extract its
/// certified cycle interval under `timing`.
StaticBounds static_bounds(const kernels::BuiltNetwork& net,
                           const iss::TimingModel& timing);

}  // namespace rnnasip::analysis
