#include "src/asm/builder.h"

#include "src/common/bits.h"
#include "src/common/check.h"
#include "src/isa/encode.h"

namespace rnnasip::assembler {

using isa::Instr;

ProgramBuilder::ProgramBuilder(uint32_t base) : base_(base) {
  RNNASIP_CHECK((base & 0x3) == 0);
}

ProgramBuilder::Label ProgramBuilder::make_label() {
  labels_.push_back(SIZE_MAX);
  return Label{labels_.size() - 1};
}

void ProgramBuilder::bind(Label l) {
  RNNASIP_CHECK(l.id < labels_.size());
  RNNASIP_CHECK_MSG(labels_[l.id] == SIZE_MAX, "label bound twice");
  labels_[l.id] = instrs_.size();
}

void ProgramBuilder::emit(Instr in) { instrs_.push_back(in); }

bool ProgramBuilder::is_bound(Label l) const {
  RNNASIP_CHECK(l.id < labels_.size());
  return labels_[l.id] != SIZE_MAX;
}

size_t ProgramBuilder::label_index(Label l) const {
  RNNASIP_CHECK_MSG(is_bound(l), "label_index on unbound label");
  return labels_[l.id];
}

uint32_t ProgramBuilder::label_address(Label l) const {
  return base_ + static_cast<uint32_t>(4 * label_index(l));
}

namespace {
Instr make(Opcode op, uint8_t rd, uint8_t rs1, uint8_t rs2, int32_t imm = 0,
           int32_t imm2 = 0) {
  Instr in;
  in.op = op;
  in.rd = rd;
  in.rs1 = rs1;
  in.rs2 = rs2;
  in.imm = imm;
  in.imm2 = imm2;
  return in;
}
}  // namespace

// ---- RV32I ----
void ProgramBuilder::lui(Reg rd, int32_t imm20) { emit(make(Opcode::kLui, rd, 0, 0, imm20)); }
void ProgramBuilder::auipc(Reg rd, int32_t imm20) { emit(make(Opcode::kAuipc, rd, 0, 0, imm20)); }
void ProgramBuilder::jal(Reg rd, Label t) {
  fixups_.push_back({instrs_.size(), t.id, Fixup::Kind::kJump});
  emit(make(Opcode::kJal, rd, 0, 0, 0));
}
void ProgramBuilder::jalr(Reg rd, Reg rs1, int32_t imm) {
  emit(make(Opcode::kJalr, rd, rs1, 0, imm));
}
void ProgramBuilder::emit_branch(Opcode op, Reg rs1, Reg rs2, Label t) {
  fixups_.push_back({instrs_.size(), t.id, Fixup::Kind::kBranch});
  emit(make(op, 0, rs1, rs2, 0));
}
void ProgramBuilder::beq(Reg a, Reg b, Label t) { emit_branch(Opcode::kBeq, a, b, t); }
void ProgramBuilder::bne(Reg a, Reg b, Label t) { emit_branch(Opcode::kBne, a, b, t); }
void ProgramBuilder::blt(Reg a, Reg b, Label t) { emit_branch(Opcode::kBlt, a, b, t); }
void ProgramBuilder::bge(Reg a, Reg b, Label t) { emit_branch(Opcode::kBge, a, b, t); }
void ProgramBuilder::bltu(Reg a, Reg b, Label t) { emit_branch(Opcode::kBltu, a, b, t); }
void ProgramBuilder::bgeu(Reg a, Reg b, Label t) { emit_branch(Opcode::kBgeu, a, b, t); }

void ProgramBuilder::lb(Reg rd, int32_t off, Reg rs1) { emit(make(Opcode::kLb, rd, rs1, 0, off)); }
void ProgramBuilder::lh(Reg rd, int32_t off, Reg rs1) { emit(make(Opcode::kLh, rd, rs1, 0, off)); }
void ProgramBuilder::lw(Reg rd, int32_t off, Reg rs1) { emit(make(Opcode::kLw, rd, rs1, 0, off)); }
void ProgramBuilder::lbu(Reg rd, int32_t off, Reg rs1) { emit(make(Opcode::kLbu, rd, rs1, 0, off)); }
void ProgramBuilder::lhu(Reg rd, int32_t off, Reg rs1) { emit(make(Opcode::kLhu, rd, rs1, 0, off)); }
void ProgramBuilder::sb(Reg rs2, int32_t off, Reg rs1) { emit(make(Opcode::kSb, 0, rs1, rs2, off)); }
void ProgramBuilder::sh(Reg rs2, int32_t off, Reg rs1) { emit(make(Opcode::kSh, 0, rs1, rs2, off)); }
void ProgramBuilder::sw(Reg rs2, int32_t off, Reg rs1) { emit(make(Opcode::kSw, 0, rs1, rs2, off)); }

void ProgramBuilder::addi(Reg rd, Reg rs1, int32_t imm) { emit(make(Opcode::kAddi, rd, rs1, 0, imm)); }
void ProgramBuilder::slti(Reg rd, Reg rs1, int32_t imm) { emit(make(Opcode::kSlti, rd, rs1, 0, imm)); }
void ProgramBuilder::sltiu(Reg rd, Reg rs1, int32_t imm) { emit(make(Opcode::kSltiu, rd, rs1, 0, imm)); }
void ProgramBuilder::xori(Reg rd, Reg rs1, int32_t imm) { emit(make(Opcode::kXori, rd, rs1, 0, imm)); }
void ProgramBuilder::ori(Reg rd, Reg rs1, int32_t imm) { emit(make(Opcode::kOri, rd, rs1, 0, imm)); }
void ProgramBuilder::andi(Reg rd, Reg rs1, int32_t imm) { emit(make(Opcode::kAndi, rd, rs1, 0, imm)); }
void ProgramBuilder::slli(Reg rd, Reg rs1, int32_t sh) { emit(make(Opcode::kSlli, rd, rs1, 0, sh)); }
void ProgramBuilder::srli(Reg rd, Reg rs1, int32_t sh) { emit(make(Opcode::kSrli, rd, rs1, 0, sh)); }
void ProgramBuilder::srai(Reg rd, Reg rs1, int32_t sh) { emit(make(Opcode::kSrai, rd, rs1, 0, sh)); }

void ProgramBuilder::add(Reg rd, Reg a, Reg b) { emit(make(Opcode::kAdd, rd, a, b)); }
void ProgramBuilder::sub(Reg rd, Reg a, Reg b) { emit(make(Opcode::kSub, rd, a, b)); }
void ProgramBuilder::sll(Reg rd, Reg a, Reg b) { emit(make(Opcode::kSll, rd, a, b)); }
void ProgramBuilder::slt(Reg rd, Reg a, Reg b) { emit(make(Opcode::kSlt, rd, a, b)); }
void ProgramBuilder::sltu(Reg rd, Reg a, Reg b) { emit(make(Opcode::kSltu, rd, a, b)); }
void ProgramBuilder::xor_(Reg rd, Reg a, Reg b) { emit(make(Opcode::kXor, rd, a, b)); }
void ProgramBuilder::srl(Reg rd, Reg a, Reg b) { emit(make(Opcode::kSrl, rd, a, b)); }
void ProgramBuilder::sra(Reg rd, Reg a, Reg b) { emit(make(Opcode::kSra, rd, a, b)); }
void ProgramBuilder::or_(Reg rd, Reg a, Reg b) { emit(make(Opcode::kOr, rd, a, b)); }
void ProgramBuilder::and_(Reg rd, Reg a, Reg b) { emit(make(Opcode::kAnd, rd, a, b)); }
void ProgramBuilder::csrrw(Reg rd, int32_t csr, Reg rs1) { emit(make(Opcode::kCsrrw, rd, rs1, 0, csr)); }
void ProgramBuilder::csrrs(Reg rd, int32_t csr, Reg rs1) { emit(make(Opcode::kCsrrs, rd, rs1, 0, csr)); }
void ProgramBuilder::csrrc(Reg rd, int32_t csr, Reg rs1) { emit(make(Opcode::kCsrrc, rd, rs1, 0, csr)); }
void ProgramBuilder::rdcycle(Reg rd) { csrrs(rd, 0xC00, isa::kZero); }
void ProgramBuilder::rdinstret(Reg rd) { csrrs(rd, 0xC02, isa::kZero); }
void ProgramBuilder::ecall() { emit(make(Opcode::kEcall, 0, 0, 0)); }
void ProgramBuilder::ebreak() { emit(make(Opcode::kEbreak, 0, 0, 0)); }
void ProgramBuilder::fence() { emit(make(Opcode::kFence, 0, 0, 0)); }

// ---- RV32M ----
void ProgramBuilder::mul(Reg rd, Reg a, Reg b) { emit(make(Opcode::kMul, rd, a, b)); }
void ProgramBuilder::mulh(Reg rd, Reg a, Reg b) { emit(make(Opcode::kMulh, rd, a, b)); }
void ProgramBuilder::mulhsu(Reg rd, Reg a, Reg b) { emit(make(Opcode::kMulhsu, rd, a, b)); }
void ProgramBuilder::mulhu(Reg rd, Reg a, Reg b) { emit(make(Opcode::kMulhu, rd, a, b)); }
void ProgramBuilder::div(Reg rd, Reg a, Reg b) { emit(make(Opcode::kDiv, rd, a, b)); }
void ProgramBuilder::divu(Reg rd, Reg a, Reg b) { emit(make(Opcode::kDivu, rd, a, b)); }
void ProgramBuilder::rem(Reg rd, Reg a, Reg b) { emit(make(Opcode::kRem, rd, a, b)); }
void ProgramBuilder::remu(Reg rd, Reg a, Reg b) { emit(make(Opcode::kRemu, rd, a, b)); }

// ---- Xpulp post-increment ----
void ProgramBuilder::p_lb(Reg rd, int32_t inc, Reg rs1) { emit(make(Opcode::kPLb, rd, rs1, 0, inc)); }
void ProgramBuilder::p_lh(Reg rd, int32_t inc, Reg rs1) { emit(make(Opcode::kPLh, rd, rs1, 0, inc)); }
void ProgramBuilder::p_lw(Reg rd, int32_t inc, Reg rs1) { emit(make(Opcode::kPLw, rd, rs1, 0, inc)); }
void ProgramBuilder::p_lbu(Reg rd, int32_t inc, Reg rs1) { emit(make(Opcode::kPLbu, rd, rs1, 0, inc)); }
void ProgramBuilder::p_lhu(Reg rd, int32_t inc, Reg rs1) { emit(make(Opcode::kPLhu, rd, rs1, 0, inc)); }
void ProgramBuilder::p_lw_rr(Reg rd, Reg rs2, Reg rs1) { emit(make(Opcode::kPLwRr, rd, rs1, rs2)); }
void ProgramBuilder::p_lh_rr(Reg rd, Reg rs2, Reg rs1) { emit(make(Opcode::kPLhRr, rd, rs1, rs2)); }
void ProgramBuilder::p_sb(Reg rs2, int32_t inc, Reg rs1) { emit(make(Opcode::kPSb, 0, rs1, rs2, inc)); }
void ProgramBuilder::p_sh(Reg rs2, int32_t inc, Reg rs1) { emit(make(Opcode::kPSh, 0, rs1, rs2, inc)); }
void ProgramBuilder::p_sw(Reg rs2, int32_t inc, Reg rs1) { emit(make(Opcode::kPSw, 0, rs1, rs2, inc)); }

// ---- Xpulp scalar ALU ----
void ProgramBuilder::p_abs(Reg rd, Reg rs1) { emit(make(Opcode::kPAbs, rd, rs1, 0)); }
void ProgramBuilder::p_exths(Reg rd, Reg rs1) { emit(make(Opcode::kPExths, rd, rs1, 0)); }
void ProgramBuilder::p_exthz(Reg rd, Reg rs1) { emit(make(Opcode::kPExthz, rd, rs1, 0)); }
void ProgramBuilder::p_extbs(Reg rd, Reg rs1) { emit(make(Opcode::kPExtbs, rd, rs1, 0)); }
void ProgramBuilder::p_extbz(Reg rd, Reg rs1) { emit(make(Opcode::kPExtbz, rd, rs1, 0)); }
void ProgramBuilder::p_min(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPMin, rd, a, b)); }
void ProgramBuilder::p_minu(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPMinu, rd, a, b)); }
void ProgramBuilder::p_max(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPMax, rd, a, b)); }
void ProgramBuilder::p_maxu(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPMaxu, rd, a, b)); }
void ProgramBuilder::p_mac(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPMac, rd, a, b)); }
void ProgramBuilder::p_msu(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPMsu, rd, a, b)); }
void ProgramBuilder::p_clip(Reg rd, Reg rs1, int32_t w) { emit(make(Opcode::kPClip, rd, rs1, 0, w)); }
void ProgramBuilder::p_clipu(Reg rd, Reg rs1, int32_t w) { emit(make(Opcode::kPClipu, rd, rs1, 0, w)); }

// ---- hardware loops ----
void ProgramBuilder::lp_starti(int loop, Label start) {
  fixups_.push_back({instrs_.size(), start.id, Fixup::Kind::kHwlStart});
  emit(make(Opcode::kLpStarti, static_cast<Reg>(loop), 0, 0, 0));
}
void ProgramBuilder::lp_endi(int loop, Label end) {
  fixups_.push_back({instrs_.size(), end.id, Fixup::Kind::kHwlEnd});
  emit(make(Opcode::kLpEndi, static_cast<Reg>(loop), 0, 0, 0));
}
void ProgramBuilder::lp_count(int loop, Reg rs1) {
  emit(make(Opcode::kLpCount, static_cast<Reg>(loop), rs1, 0));
}
void ProgramBuilder::lp_counti(int loop, int32_t count) {
  emit(make(Opcode::kLpCounti, static_cast<Reg>(loop), 0, 0, count));
}
void ProgramBuilder::lp_setup(int loop, Reg count, Label end) {
  fixups_.push_back({instrs_.size(), end.id, Fixup::Kind::kHwlEnd});
  emit(make(Opcode::kLpSetup, static_cast<Reg>(loop), count, 0, 0));
}
void ProgramBuilder::lp_setupi(int loop, int32_t count, Label end) {
  fixups_.push_back({instrs_.size(), end.id, Fixup::Kind::kHwlEnd});
  emit(make(Opcode::kLpSetupi, static_cast<Reg>(loop), 0, 0, count, 0));
}

// ---- packed SIMD ----
void ProgramBuilder::pv_add_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvAddH, rd, a, b)); }
void ProgramBuilder::pv_sub_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvSubH, rd, a, b)); }
void ProgramBuilder::pv_avg_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvAvgH, rd, a, b)); }
void ProgramBuilder::pv_min_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvMinH, rd, a, b)); }
void ProgramBuilder::pv_max_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvMaxH, rd, a, b)); }
void ProgramBuilder::pv_srl_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvSrlH, rd, a, b)); }
void ProgramBuilder::pv_sra_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvSraH, rd, a, b)); }
void ProgramBuilder::pv_sll_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvSllH, rd, a, b)); }
void ProgramBuilder::pv_abs_h(Reg rd, Reg rs1) { emit(make(Opcode::kPvAbsH, rd, rs1, 0)); }
void ProgramBuilder::pv_pack_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvPackH, rd, a, b)); }
void ProgramBuilder::pv_extract_h(Reg rd, Reg rs1, int32_t i) { emit(make(Opcode::kPvExtractH, rd, rs1, 0, i)); }
void ProgramBuilder::pv_insert_h(Reg rd, Reg rs1, int32_t i) { emit(make(Opcode::kPvInsertH, rd, rs1, 0, i)); }
void ProgramBuilder::pv_add_sc_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvAddScH, rd, a, b)); }
void ProgramBuilder::pv_sub_sc_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvSubScH, rd, a, b)); }
void ProgramBuilder::pv_min_sc_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvMinScH, rd, a, b)); }
void ProgramBuilder::pv_max_sc_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvMaxScH, rd, a, b)); }
void ProgramBuilder::pv_sra_sc_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvSraScH, rd, a, b)); }
void ProgramBuilder::pv_dotsp_sc_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvDotspScH, rd, a, b)); }
void ProgramBuilder::pv_sdotsp_sc_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvSdotspScH, rd, a, b)); }
void ProgramBuilder::pv_dotup_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvDotupH, rd, a, b)); }
void ProgramBuilder::pv_dotsp_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvDotspH, rd, a, b)); }
void ProgramBuilder::pv_sdotup_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvSdotupH, rd, a, b)); }
void ProgramBuilder::pv_sdotsp_h(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvSdotspH, rd, a, b)); }
void ProgramBuilder::pv_add_b(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvAddB, rd, a, b)); }
void ProgramBuilder::pv_sub_b(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvSubB, rd, a, b)); }
void ProgramBuilder::pv_min_b(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvMinB, rd, a, b)); }
void ProgramBuilder::pv_max_b(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvMaxB, rd, a, b)); }
void ProgramBuilder::pv_dotsp_b(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvDotspB, rd, a, b)); }
void ProgramBuilder::pv_sdotsp_b(Reg rd, Reg a, Reg b) { emit(make(Opcode::kPvSdotspB, rd, a, b)); }

// ---- RNN extensions ----
void ProgramBuilder::pl_sdotsp_h(int spr, Reg rd, Reg rs1, Reg rs2) {
  RNNASIP_CHECK(spr == 0 || spr == 1);
  emit(make(spr == 0 ? Opcode::kPlSdotspH0 : Opcode::kPlSdotspH1, rd, rs1, rs2));
}
void ProgramBuilder::pl_tanh(Reg rd, Reg rs1) { emit(make(Opcode::kPlTanh, rd, rs1, 0)); }
void ProgramBuilder::pl_sig(Reg rd, Reg rs1) { emit(make(Opcode::kPlSig, rd, rs1, 0)); }

// ---- pseudo ----
void ProgramBuilder::nop() { addi(isa::kZero, isa::kZero, 0); }
void ProgramBuilder::mv(Reg rd, Reg rs1) { addi(rd, rs1, 0); }
void ProgramBuilder::li(Reg rd, int32_t v) {
  if (fits_signed(v, 12)) {
    addi(rd, isa::kZero, v);
    return;
  }
  // lui + addi, compensating for addi sign extension. Unsigned arithmetic:
  // v near INT32_MAX must wrap through the carry, not overflow.
  const uint32_t uv = static_cast<uint32_t>(v);
  const uint32_t hi = (uv + 0x800u) >> 12;
  const int32_t lo = static_cast<int32_t>(uv << 20) >> 20;  // sign-extend [11:0]
  lui(rd, hi & 0xFFFFF);
  if (lo != 0) addi(rd, rd, lo);
}

Program ProgramBuilder::build() {
  for (const Fixup& f : fixups_) {
    RNNASIP_CHECK_MSG(labels_[f.label_id] != SIZE_MAX, "unbound label referenced");
    const int64_t delta =
        (static_cast<int64_t>(labels_[f.label_id]) - static_cast<int64_t>(f.instr_idx)) * 4;
    isa::Instr& in = instrs_[f.instr_idx];
    switch (f.kind) {
      case Fixup::Kind::kBranch:
      case Fixup::Kind::kJump:
        in.imm = static_cast<int32_t>(delta);
        break;
      case Fixup::Kind::kHwlEnd:
        RNNASIP_CHECK_MSG(delta > 0, "hardware-loop end must follow the setup");
        if (in.op == Opcode::kLpSetupi) {
          in.imm2 = static_cast<int32_t>(delta);
        } else {
          in.imm = static_cast<int32_t>(delta);
        }
        break;
      case Fixup::Kind::kHwlStart:
        RNNASIP_CHECK_MSG(delta >= 0, "hardware-loop start must not precede lp.starti");
        in.imm = static_cast<int32_t>(delta);
        break;
    }
    // Validate the fixed-up operand by encoding it now (throws if it does
    // not fit, e.g. a lp.setupi body longer than the 5-bit end offset).
    (void)isa::encode(in);
  }
  Program p;
  p.base = base_;
  p.instrs = std::move(instrs_);
  return p;
}

std::vector<uint32_t> Program::encode_words() const {
  std::vector<uint32_t> out;
  out.reserve(instrs.size());
  for (const auto& in : instrs) out.push_back(isa::encode(in));
  return out;
}

RegPool::RegPool() {
  // t0-t6, a0-a7, s1-s11 — everything except zero/ra/sp/gp/tp/s0(fp).
  // Listed so that temporaries are handed out first.
  for (Reg r : {isa::kT0, isa::kT1, isa::kT2, isa::kT3, isa::kT4, isa::kT5, isa::kT6,
                isa::kA0, isa::kA1, isa::kA2, isa::kA3, isa::kA4, isa::kA5, isa::kA6,
                isa::kA7, isa::kS1, isa::kS2, isa::kS3, isa::kS4, isa::kS5, isa::kS6,
                isa::kS7, isa::kS8, isa::kS9, isa::kS10, isa::kS11}) {
    free_.push_back(r);
  }
}

Reg RegPool::alloc() {
  Reg r;
  RNNASIP_CHECK_MSG(try_alloc(&r), "register pool exhausted");
  return r;
}

bool RegPool::try_alloc(Reg* out) {
  if (free_.empty()) return false;
  *out = free_.front();
  free_.erase(free_.begin());
  in_use_ |= (1u << *out);
  return true;
}

void RegPool::free(Reg r) {
  RNNASIP_CHECK_MSG(in_use_ & (1u << r), "freeing register not allocated: " << int{r});
  in_use_ &= ~(1u << r);
  free_.insert(free_.begin(), r);
}

int RegPool::available() const { return static_cast<int>(free_.size()); }

void RegPool::reserve(Reg r) {
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (*it == r) {
      free_.erase(it);
      return;
    }
  }
}

}  // namespace rnnasip::assembler
