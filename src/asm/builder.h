// Programmatic assembler with label resolution.
//
// This replaces the GCC toolchain of the paper: kernel generators call the
// emitter methods to lay down exactly the instruction schedule under study
// (the paper's Table II listings are the target shape). Branch/jump targets
// and hardware-loop end addresses are expressed as labels and resolved at
// build() time.
#pragma once

#include <cstdint>
#include <vector>

#include "src/asm/program.h"
#include "src/isa/opcode.h"
#include "src/isa/registers.h"

namespace rnnasip::assembler {

using isa::Opcode;
using isa::Reg;

class ProgramBuilder {
 public:
  explicit ProgramBuilder(uint32_t base = 0x0000'1000);

  /// Opaque label handle. Create with make_label(), place with bind(),
  /// reference from branches/jumps/loop setups (forward refs allowed).
  struct Label {
    size_t id;
  };

  Label make_label();
  /// Bind `l` to the current emission position. A label may be bound once.
  void bind(Label l);
  /// Current instruction index (for size accounting in tests).
  size_t position() const { return instrs_.size(); }

  // --- label introspection (static analysis, diagnostics) ---
  /// Has `l` been bound to a position yet?
  bool is_bound(Label l) const;
  /// Instruction index a bound label points at.
  size_t label_index(Label l) const;
  /// Final address of a bound label (base + 4 * index; the builder only
  /// emits 4-byte instructions).
  uint32_t label_address(Label l) const;

  // --- RV32I ---
  void lui(Reg rd, int32_t imm20);
  void auipc(Reg rd, int32_t imm20);
  void jal(Reg rd, Label target);
  void jalr(Reg rd, Reg rs1, int32_t imm);
  void beq(Reg rs1, Reg rs2, Label t);
  void bne(Reg rs1, Reg rs2, Label t);
  void blt(Reg rs1, Reg rs2, Label t);
  void bge(Reg rs1, Reg rs2, Label t);
  void bltu(Reg rs1, Reg rs2, Label t);
  void bgeu(Reg rs1, Reg rs2, Label t);
  void lb(Reg rd, int32_t off, Reg rs1);
  void lh(Reg rd, int32_t off, Reg rs1);
  void lw(Reg rd, int32_t off, Reg rs1);
  void lbu(Reg rd, int32_t off, Reg rs1);
  void lhu(Reg rd, int32_t off, Reg rs1);
  void sb(Reg rs2, int32_t off, Reg rs1);
  void sh(Reg rs2, int32_t off, Reg rs1);
  void sw(Reg rs2, int32_t off, Reg rs1);
  void addi(Reg rd, Reg rs1, int32_t imm);
  void slti(Reg rd, Reg rs1, int32_t imm);
  void sltiu(Reg rd, Reg rs1, int32_t imm);
  void xori(Reg rd, Reg rs1, int32_t imm);
  void ori(Reg rd, Reg rs1, int32_t imm);
  void andi(Reg rd, Reg rs1, int32_t imm);
  void slli(Reg rd, Reg rs1, int32_t shamt);
  void srli(Reg rd, Reg rs1, int32_t shamt);
  void srai(Reg rd, Reg rs1, int32_t shamt);
  void add(Reg rd, Reg rs1, Reg rs2);
  void sub(Reg rd, Reg rs1, Reg rs2);
  void sll(Reg rd, Reg rs1, Reg rs2);
  void slt(Reg rd, Reg rs1, Reg rs2);
  void sltu(Reg rd, Reg rs1, Reg rs2);
  void xor_(Reg rd, Reg rs1, Reg rs2);
  void srl(Reg rd, Reg rs1, Reg rs2);
  void sra(Reg rd, Reg rs1, Reg rs2);
  void or_(Reg rd, Reg rs1, Reg rs2);
  void and_(Reg rd, Reg rs1, Reg rs2);
  void ecall();
  void ebreak();
  void fence();
  /// Zicsr: csr address in `csr` (e.g. 0xC00 = cycle, 0xC02 = instret).
  void csrrw(Reg rd, int32_t csr, Reg rs1);
  void csrrs(Reg rd, int32_t csr, Reg rs1);
  void csrrc(Reg rd, int32_t csr, Reg rs1);
  /// Pseudo: rdcycle/rdinstret = csrrs rd, counter, x0.
  void rdcycle(Reg rd);
  void rdinstret(Reg rd);

  // --- RV32M ---
  void mul(Reg rd, Reg rs1, Reg rs2);
  void mulh(Reg rd, Reg rs1, Reg rs2);
  void mulhsu(Reg rd, Reg rs1, Reg rs2);
  void mulhu(Reg rd, Reg rs1, Reg rs2);
  void div(Reg rd, Reg rs1, Reg rs2);
  void divu(Reg rd, Reg rs1, Reg rs2);
  void rem(Reg rd, Reg rs1, Reg rs2);
  void remu(Reg rd, Reg rs1, Reg rs2);

  // --- Xpulp post-increment load/store: p.lw rd, imm(rs1!) ---
  void p_lb(Reg rd, int32_t inc, Reg rs1);
  void p_lh(Reg rd, int32_t inc, Reg rs1);
  void p_lw(Reg rd, int32_t inc, Reg rs1);
  void p_lbu(Reg rd, int32_t inc, Reg rs1);
  void p_lhu(Reg rd, int32_t inc, Reg rs1);
  void p_sb(Reg rs2, int32_t inc, Reg rs1);
  void p_sh(Reg rs2, int32_t inc, Reg rs1);
  void p_sw(Reg rs2, int32_t inc, Reg rs1);
  /// Register-register post-increment: rd = mem[rs1]; rs1 += rs2.
  void p_lw_rr(Reg rd, Reg rs2, Reg rs1);
  void p_lh_rr(Reg rd, Reg rs2, Reg rs1);

  // --- Xpulp scalar ALU ---
  void p_abs(Reg rd, Reg rs1);
  void p_exths(Reg rd, Reg rs1);
  void p_exthz(Reg rd, Reg rs1);
  void p_extbs(Reg rd, Reg rs1);
  void p_extbz(Reg rd, Reg rs1);
  void p_min(Reg rd, Reg rs1, Reg rs2);
  void p_minu(Reg rd, Reg rs1, Reg rs2);
  void p_max(Reg rd, Reg rs1, Reg rs2);
  void p_maxu(Reg rd, Reg rs1, Reg rs2);
  void p_mac(Reg rd, Reg rs1, Reg rs2);
  void p_msu(Reg rd, Reg rs1, Reg rs2);
  void p_clip(Reg rd, Reg rs1, int32_t width_bits);
  void p_clipu(Reg rd, Reg rs1, int32_t width_bits);

  // --- Xpulp hardware loops ---
  void lp_starti(int loop, Label start);
  void lp_endi(int loop, Label end);
  void lp_count(int loop, Reg rs1);
  void lp_counti(int loop, int32_t count);
  /// start = next instruction; `end` = label after the last body instruction.
  void lp_setup(int loop, Reg count, Label end);
  void lp_setupi(int loop, int32_t count, Label end);

  // --- Xpulp packed SIMD ---
  void pv_add_h(Reg rd, Reg rs1, Reg rs2);
  void pv_sub_h(Reg rd, Reg rs1, Reg rs2);
  void pv_avg_h(Reg rd, Reg rs1, Reg rs2);
  void pv_min_h(Reg rd, Reg rs1, Reg rs2);
  void pv_max_h(Reg rd, Reg rs1, Reg rs2);
  void pv_srl_h(Reg rd, Reg rs1, Reg rs2);
  void pv_sra_h(Reg rd, Reg rs1, Reg rs2);
  void pv_sll_h(Reg rd, Reg rs1, Reg rs2);
  void pv_abs_h(Reg rd, Reg rs1);
  void pv_pack_h(Reg rd, Reg rs1, Reg rs2);
  void pv_extract_h(Reg rd, Reg rs1, int32_t idx);
  void pv_insert_h(Reg rd, Reg rs1, int32_t idx);
  void pv_add_sc_h(Reg rd, Reg rs1, Reg rs2);
  void pv_sub_sc_h(Reg rd, Reg rs1, Reg rs2);
  void pv_min_sc_h(Reg rd, Reg rs1, Reg rs2);
  void pv_max_sc_h(Reg rd, Reg rs1, Reg rs2);
  void pv_sra_sc_h(Reg rd, Reg rs1, Reg rs2);
  void pv_dotsp_sc_h(Reg rd, Reg rs1, Reg rs2);
  void pv_sdotsp_sc_h(Reg rd, Reg rs1, Reg rs2);
  void pv_dotup_h(Reg rd, Reg rs1, Reg rs2);
  void pv_dotsp_h(Reg rd, Reg rs1, Reg rs2);
  void pv_sdotup_h(Reg rd, Reg rs1, Reg rs2);
  void pv_sdotsp_h(Reg rd, Reg rs1, Reg rs2);
  void pv_add_b(Reg rd, Reg rs1, Reg rs2);
  void pv_sub_b(Reg rd, Reg rs1, Reg rs2);
  void pv_min_b(Reg rd, Reg rs1, Reg rs2);
  void pv_max_b(Reg rd, Reg rs1, Reg rs2);
  void pv_dotsp_b(Reg rd, Reg rs1, Reg rs2);
  void pv_sdotsp_b(Reg rd, Reg rs1, Reg rs2);

  // --- RNN extensions ---
  /// pl.sdotsp.h.<spr> rd, rs1, rs2: rd += dot(SPR[spr], rs2) with the value
  /// loaded two uses ago, while SPR[spr] <- mem[rs1], rs1 += 4.
  void pl_sdotsp_h(int spr, Reg rd, Reg rs1, Reg rs2);
  void pl_tanh(Reg rd, Reg rs1);
  void pl_sig(Reg rd, Reg rs1);

  // --- pseudo-instructions ---
  void nop();
  void mv(Reg rd, Reg rs1);
  /// Load a 32-bit constant (1 or 2 instructions).
  void li(Reg rd, int32_t value);

  /// Emit a raw decoded instruction (escape hatch for tests).
  void emit(isa::Instr in);

  /// Resolve all label fixups and return the finished program.
  /// Throws if a referenced label was never bound.
  Program build();

 private:
  void emit_branch(Opcode op, Reg rs1, Reg rs2, Label t);

  uint32_t base_;
  std::vector<isa::Instr> instrs_;
  // label id -> bound instruction index (or SIZE_MAX if unbound)
  std::vector<size_t> labels_;
  struct Fixup {
    size_t instr_idx;
    size_t label_id;
    enum class Kind { kBranch, kJump, kHwlEnd, kHwlStart } kind;
  };
  std::vector<Fixup> fixups_;
};

/// A simple allocator over the caller-usable register set, used by the
/// kernel generators to claim accumulator/pointer registers and to discover
/// how large an output tile fits in the register file (the paper's "increase
/// N until the available registers are exhausted").
class RegPool {
 public:
  /// Pool of temporaries + saved regs, excluding zero/ra/sp/gp/tp.
  RegPool();

  /// Claim one register; throws when the pool is exhausted.
  Reg alloc();
  /// Try to claim; returns false when empty (no throw).
  bool try_alloc(Reg* out);
  void free(Reg r);
  int available() const;
  /// Remove `r` from the pool permanently (e.g. registers clobbered by the
  /// SW activation routines). No-op if `r` is not currently free.
  void reserve(Reg r);

 private:
  std::vector<Reg> free_;
  uint32_t in_use_ = 0;  // bitmask for double-free detection
};

}  // namespace rnnasip::assembler
