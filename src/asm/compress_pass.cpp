#include "src/asm/compress_pass.h"

#include <map>

#include "src/common/check.h"
#include "src/isa/encode.h"

namespace rnnasip::assembler {

using isa::Format;
using isa::Instr;
using isa::Opcode;

namespace {

/// Which PC-relative operands an instruction carries.
enum class RelKind { kNone, kImm, kImm2 };

RelKind rel_kind(const Instr& in) {
  const auto& s = isa::opcode_info(in.op);
  switch (s.format) {
    case Format::kB:
    case Format::kJ:
      return RelKind::kImm;
    case Format::kHwlSetup:
      return RelKind::kImm;
    case Format::kHwlSetupImm:
      return RelKind::kImm2;
    case Format::kHwlImm:
      return in.op == Opcode::kLpCounti ? RelKind::kNone : RelKind::kImm;
    default:
      return RelKind::kNone;
  }
}

}  // namespace

CompressedProgram compress_program(const Program& p) {
  const size_t n = p.instrs.size();
  // Original addresses and the target *instruction index* of every
  // PC-relative operand.
  std::map<uint32_t, size_t> index_of;
  for (size_t i = 0; i < n; ++i) index_of[p.address_of(i)] = i;
  std::vector<size_t> target(n, SIZE_MAX);
  for (size_t i = 0; i < n; ++i) {
    const RelKind k = rel_kind(p.instrs[i]);
    if (k == RelKind::kNone) continue;
    const int32_t off = k == RelKind::kImm ? p.instrs[i].imm : p.instrs[i].imm2;
    const uint32_t tgt = p.address_of(i) + static_cast<uint32_t>(off);
    // HW-loop ends may point one past the last instruction.
    if (tgt == p.base + p.size_bytes()) {
      target[i] = n;
      continue;
    }
    auto it = index_of.find(tgt);
    RNNASIP_CHECK_MSG(it != index_of.end(),
                      "PC-relative operand does not hit an instruction boundary");
    target[i] = it->second;
  }

  // Iterate sizes to a fixed point.
  std::vector<uint8_t> size(n, 4);
  std::vector<Instr> out(p.instrs.begin(), p.instrs.end());
  for (int pass = 0; pass < 16; ++pass) {
    // Addresses under the current size assignment.
    std::vector<uint32_t> addr(n + 1);
    addr[0] = p.base;
    for (size_t i = 0; i < n; ++i) addr[i + 1] = addr[i] + size[i];
    // Refresh PC-relative operands.
    for (size_t i = 0; i < n; ++i) {
      if (target[i] == SIZE_MAX) continue;
      const int32_t off =
          static_cast<int32_t>(addr[target[i]]) - static_cast<int32_t>(addr[i]);
      if (rel_kind(p.instrs[i]) == RelKind::kImm) {
        out[i].imm = off;
      } else {
        out[i].imm2 = off;
      }
    }
    // Try to shrink.
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (size[i] == 2) continue;
      if (isa::try_compress(out[i]).has_value()) {
        size[i] = 2;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Final layout and validation (encode throws if an operand no longer
  // fits, e.g. a hardware-loop end offset that must stay even — it always
  // is, since RVC parcels are 2-byte).
  CompressedProgram cp;
  cp.base = p.base;
  cp.addrs.resize(n);
  uint32_t a = p.base;
  for (size_t i = 0; i < n; ++i) {
    cp.addrs[i] = a;
    out[i].size = size[i];
    a += size[i];
  }
  // Re-resolve operands against the final addresses.
  for (size_t i = 0; i < n; ++i) {
    if (target[i] == SIZE_MAX) continue;
    const uint32_t taddr = target[i] == n ? a : cp.addrs[target[i]];
    const int32_t off = static_cast<int32_t>(taddr) - static_cast<int32_t>(cp.addrs[i]);
    if (rel_kind(p.instrs[i]) == RelKind::kImm) {
      out[i].imm = off;
    } else {
      out[i].imm2 = off;
    }
    if (out[i].size == 2) {
      RNNASIP_CHECK(isa::try_compress(out[i]).has_value());
    } else {
      (void)isa::encode(out[i]);
    }
  }
  cp.instrs = std::move(out);
  cp.text_bytes = a - p.base;
  return cp;
}

std::vector<uint8_t> CompressedProgram::bytes() const {
  std::vector<uint8_t> out;
  out.reserve(text_bytes);
  for (const auto& in : instrs) {
    if (in.size == 2) {
      const auto h = isa::try_compress(in);
      RNNASIP_CHECK(h.has_value());
      out.push_back(static_cast<uint8_t>(*h & 0xFF));
      out.push_back(static_cast<uint8_t>(*h >> 8));
    } else {
      const uint32_t w = isa::encode(in);
      for (int b = 0; b < 4; ++b) out.push_back(static_cast<uint8_t>(w >> (8 * b)));
    }
  }
  return out;
}

}  // namespace rnnasip::assembler
