// Whole-program RV32C compression pass.
//
// Rewrites a program with 16-bit encodings wherever the RVC subset allows,
// re-resolving every PC-relative operand (branches, jumps, hardware-loop
// bounds) to the shrunken layout. The pass iterates to a fixed point:
// shrinking code pulls more branch targets into compressed ranges. The
// result executes identically on the core (the fetch stage decodes mixed
// 16/32-bit streams natively); only fetch bytes change.
#pragma once

#include <cstdint>
#include <vector>

#include "src/asm/program.h"

namespace rnnasip::assembler {

struct CompressedProgram {
  uint32_t base = 0;
  std::vector<isa::Instr> instrs;  ///< size field = 2 or 4
  std::vector<uint32_t> addrs;     ///< address of each instruction
  uint32_t text_bytes = 0;

  /// The encoded byte stream (little-endian parcels, ready for memory).
  std::vector<uint8_t> bytes() const;
};

/// Compress `p`. All PC-relative operands must point at instruction
/// boundaries of `p` (true for ProgramBuilder/assemble output); throws
/// otherwise.
CompressedProgram compress_program(const Program& p);

}  // namespace rnnasip::assembler
