#include "src/asm/disasm.h"

#include <cstdio>
#include <sstream>

#include "src/common/check.h"
#include "src/isa/registers.h"

namespace rnnasip::assembler {

using isa::Format;
using isa::Instr;
using isa::Opcode;
using isa::opcode_info;
using isa::reg_name;

namespace {

std::string hex(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

}  // namespace

std::string disassemble(const Instr& in, uint32_t pc) {
  const auto& s = opcode_info(in.op);
  std::ostringstream os;
  os << s.mnemonic;
  auto pad = [&] { os << ' '; };
  switch (s.format) {
    case Format::kR:
      pad();
      if (in.op == Opcode::kPLwRr || in.op == Opcode::kPLhRr) {
        os << reg_name(in.rd) << ", " << reg_name(in.rs2) << '(' << reg_name(in.rs1)
           << "!)";
      } else if (in.op == Opcode::kPAbs || in.op == Opcode::kPExths ||
                 in.op == Opcode::kPExthz || in.op == Opcode::kPExtbs ||
                 in.op == Opcode::kPExtbz) {
        os << reg_name(in.rd) << ", " << reg_name(in.rs1);
      } else {
        os << reg_name(in.rd) << ", " << reg_name(in.rs1) << ", " << reg_name(in.rs2);
      }
      break;
    case Format::kI:
      pad();
      if (s.unit == isa::Unit::kLoad) {
        const bool post_inc = (s.major == 0x0B);
        os << reg_name(in.rd) << ", " << in.imm << '(' << reg_name(in.rs1)
           << (post_inc ? "!)" : ")");
      } else if (in.op == Opcode::kJalr) {
        os << reg_name(in.rd) << ", " << in.imm << '(' << reg_name(in.rs1) << ')';
      } else {
        os << reg_name(in.rd) << ", " << reg_name(in.rs1) << ", " << in.imm;
      }
      break;
    case Format::kShift:
    case Format::kClip:
      pad();
      os << reg_name(in.rd) << ", " << reg_name(in.rs1) << ", " << in.imm;
      break;
    case Format::kS: {
      pad();
      const bool post_inc = (s.major == 0x2B);
      os << reg_name(in.rs2) << ", " << in.imm << '(' << reg_name(in.rs1)
         << (post_inc ? "!)" : ")");
      break;
    }
    case Format::kB:
      pad();
      os << reg_name(in.rs1) << ", " << reg_name(in.rs2) << ", "
         << hex(pc + static_cast<uint32_t>(in.imm));
      break;
    case Format::kU:
      pad();
      os << reg_name(in.rd) << ", " << hex(static_cast<uint32_t>(in.imm));
      break;
    case Format::kJ:
      pad();
      os << reg_name(in.rd) << ", " << hex(pc + static_cast<uint32_t>(in.imm));
      break;
    case Format::kSys:
      break;
    case Format::kCsr:
      pad();
      os << reg_name(in.rd) << ", " << hex(static_cast<uint32_t>(in.imm)) << ", "
         << reg_name(in.rs1);
      break;
    case Format::kHwlImm:
      pad();
      if (in.op == Opcode::kLpCounti) {
        os << int{in.rd} << ", " << in.imm;
      } else {
        os << int{in.rd} << ", " << hex(pc + static_cast<uint32_t>(in.imm));
      }
      break;
    case Format::kHwlReg:
      pad();
      os << int{in.rd} << ", " << reg_name(in.rs1);
      break;
    case Format::kHwlSetup:
      pad();
      os << int{in.rd} << ", " << reg_name(in.rs1) << ", "
         << hex(pc + static_cast<uint32_t>(in.imm));
      break;
    case Format::kHwlSetupImm:
      pad();
      os << int{in.rd} << ", " << in.imm << ", " << hex(pc + static_cast<uint32_t>(in.imm2));
      break;
    case Format::kSimdR:
      pad();
      if (in.op == Opcode::kPvAbsH) {
        os << reg_name(in.rd) << ", " << reg_name(in.rs1);
      } else {
        os << reg_name(in.rd) << ", " << reg_name(in.rs1) << ", " << reg_name(in.rs2);
      }
      break;
    case Format::kSimdImm:
      pad();
      os << reg_name(in.rd) << ", " << reg_name(in.rs1) << ", " << in.imm;
      break;
    case Format::kAct:
      pad();
      os << reg_name(in.rd) << ", " << reg_name(in.rs1);
      break;
  }
  return os.str();
}

std::string disassemble(const Program& p) {
  std::ostringstream os;
  for (size_t i = 0; i < p.instrs.size(); ++i) {
    const uint32_t pc = p.address_of(i);
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x:  ", pc);
    os << buf << disassemble(p.instrs[i], pc) << '\n';
  }
  return os.str();
}

}  // namespace rnnasip::assembler
