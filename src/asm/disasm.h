// Disassembler: Instr -> assembly text.
//
// Output follows the PULP toolchain conventions the paper's Table II uses:
// post-increment addressing prints as `imm(rs1!)`, hardware-loop offsets as
// absolute target addresses when a PC is supplied.
#pragma once

#include <cstdint>
#include <string>

#include "src/asm/program.h"
#include "src/isa/opcode.h"

namespace rnnasip::assembler {

/// Disassemble one instruction. `pc` is used to print absolute targets for
/// branches, jumps, and hardware-loop setup instructions.
std::string disassemble(const isa::Instr& instr, uint32_t pc = 0);

/// Disassemble a whole program as an address-annotated listing.
std::string disassemble(const Program& program);

}  // namespace rnnasip::assembler
