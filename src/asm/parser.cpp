#include "src/asm/parser.h"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/bits.h"
#include "src/common/check.h"
#include "src/isa/encode.h"
#include "src/isa/registers.h"

namespace rnnasip::assembler {

using isa::Format;
using isa::Instr;
using isa::Opcode;
using isa::OpcodeInfo;
using isa::Reg;

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  std::ostringstream os;
  os << "assembly error, line " << line << ": " << msg;
  throw std::runtime_error(os.str());
}

/// One source statement after tokenization.
struct Stmt {
  int line = 0;
  std::string mnemonic;
  std::vector<std::string> operands;  // raw operand tokens, commas stripped
  size_t index = 0;                   // first instruction index it occupies
  int size = 1;                       // instructions after pseudo expansion
};

std::string strip(std::string_view s) {
  size_t b = s.find_first_not_of(" \t\r");
  size_t e = s.find_last_not_of(" \t\r");
  if (b == std::string_view::npos) return "";
  return std::string(s.substr(b, e - b + 1));
}

std::string strip_comment(std::string_view line) {
  for (const char* marker : {"#", "//", ";"}) {
    const size_t pos = line.find(marker);
    if (pos != std::string_view::npos) line = line.substr(0, pos);
  }
  return strip(line);
}

std::optional<Reg> parse_reg(const std::string& tok) {
  for (Reg r = 0; r < 32; ++r) {
    if (tok == isa::reg_name(r)) return r;
  }
  if (tok.size() >= 2 && tok[0] == 'x') {
    int v = 0;
    for (size_t i = 1; i < tok.size(); ++i) {
      if (!isdigit(static_cast<unsigned char>(tok[i]))) return std::nullopt;
      v = v * 10 + (tok[i] - '0');
    }
    if (v < 32) return static_cast<Reg>(v);
  }
  if (tok == "fp") return isa::kS0;
  return std::nullopt;
}

std::optional<int64_t> parse_int(const std::string& tok) {
  if (tok.empty()) return std::nullopt;
  size_t i = 0;
  bool neg = false;
  if (tok[0] == '-' || tok[0] == '+') {
    neg = tok[0] == '-';
    i = 1;
  }
  if (i >= tok.size()) return std::nullopt;
  int64_t v = 0;
  if (tok.size() > i + 1 && tok[i] == '0' && (tok[i + 1] == 'x' || tok[i + 1] == 'X')) {
    if (tok.size() == i + 2) return std::nullopt;  // bare "0x"
    for (size_t j = i + 2; j < tok.size(); ++j) {
      const char c = static_cast<char>(tolower(tok[j]));
      int d;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
      else return std::nullopt;
      v = v * 16 + d;
    }
  } else {
    for (size_t j = i; j < tok.size(); ++j) {
      if (!isdigit(static_cast<unsigned char>(tok[j]))) return std::nullopt;
      v = v * 10 + (tok[j] - '0');
    }
  }
  return neg ? -v : v;
}

/// `imm(reg)` or `imm(reg!)` or `reg(reg!)` — returns (outer token, base reg,
/// post-increment flag).
struct MemOperand {
  std::string outer;
  Reg base = 0;
  bool post_inc = false;
};

std::optional<MemOperand> parse_mem(const std::string& tok) {
  const size_t open = tok.find('(');
  const size_t close = tok.rfind(')');
  if (open == std::string::npos || close == std::string::npos || close < open)
    return std::nullopt;
  MemOperand m;
  m.outer = strip(tok.substr(0, open));
  std::string inner = strip(tok.substr(open + 1, close - open - 1));
  if (!inner.empty() && inner.back() == '!') {
    m.post_inc = true;
    inner = strip(inner.substr(0, inner.size() - 1));
  }
  const auto r = parse_reg(inner);
  if (!r) return std::nullopt;
  m.base = *r;
  return m;
}

const OpcodeInfo* find_mnemonic(const std::string& m) {
  for (const auto& row : isa::all_opcodes()) {
    if (m == row.mnemonic) return &row;
  }
  return nullptr;
}

/// Split an operand string on top-level commas.
std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  const std::string last = strip(cur);
  if (!last.empty()) out.push_back(last);
  return out;
}

}  // namespace

Program assemble(std::string_view source, uint32_t base) {
  // ---- pass 1: tokenize, bind labels to instruction indices ----
  std::vector<Stmt> stmts;
  std::map<std::string, size_t> labels;
  size_t index = 0;
  int line_no = 0;
  std::string src(source);
  std::istringstream in(src);
  std::string raw;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = strip_comment(raw);
    // Labels (possibly several) at line start.
    while (true) {
      const size_t colon = line.find(':');
      if (colon == std::string::npos) break;
      const std::string head = strip(line.substr(0, colon));
      if (head.empty() || head.find(' ') != std::string::npos) break;
      if (labels.count(head)) fail(line_no, "duplicate label '" + head + "'");
      labels[head] = index;
      line = strip(line.substr(colon + 1));
    }
    if (line.empty()) continue;
    Stmt st;
    st.line = line_no;
    const size_t sp = line.find_first_of(" \t");
    st.mnemonic = sp == std::string::npos ? line : line.substr(0, sp);
    if (sp != std::string::npos) st.operands = split_operands(strip(line.substr(sp)));
    st.index = index;
    // Pseudo-instruction sizes must be known now for label arithmetic.
    if (st.mnemonic == "li") {
      if (st.operands.size() != 2) fail(line_no, "li needs 2 operands");
      const auto v = parse_int(st.operands[1]);
      if (!v) fail(line_no, "bad li immediate");
      const int32_t val = static_cast<int32_t>(*v);
      st.size = fits_signed(val, 12) ? 1 : (((val + 0x800) >> 12 << 12) == val ? 1 : 2);
    }
    index += static_cast<size_t>(st.size);
    stmts.push_back(std::move(st));
  }

  // ---- pass 2: materialize instructions ----
  Program prog;
  prog.base = base;
  auto target_offset = [&](const Stmt& st, const std::string& tok) -> int32_t {
    const uint32_t pc = base + static_cast<uint32_t>(4 * st.index);
    if (auto it = labels.find(tok); it != labels.end()) {
      return static_cast<int32_t>(4 * it->second) - static_cast<int32_t>(4 * st.index);
    }
    if (auto v = parse_int(tok)) {
      return static_cast<int32_t>(static_cast<uint32_t>(*v) - pc);
    }
    fail(st.line, "unknown label or address '" + tok + "'");
  };
  auto want_reg = [&](const Stmt& st, size_t i) -> Reg {
    if (i >= st.operands.size()) fail(st.line, "missing register operand");
    const auto r = parse_reg(st.operands[i]);
    if (!r) fail(st.line, "bad register '" + st.operands[i] + "'");
    return *r;
  };
  auto want_int = [&](const Stmt& st, size_t i) -> int64_t {
    if (i >= st.operands.size()) fail(st.line, "missing immediate operand");
    const auto v = parse_int(st.operands[i]);
    if (!v) fail(st.line, "bad immediate '" + st.operands[i] + "'");
    return *v;
  };
  auto want_mem = [&](const Stmt& st, size_t i) -> MemOperand {
    if (i >= st.operands.size()) fail(st.line, "missing memory operand");
    const auto m = parse_mem(st.operands[i]);
    if (!m) fail(st.line, "bad memory operand '" + st.operands[i] + "'");
    return *m;
  };

  for (const Stmt& st : stmts) {
    // ---- pseudo instructions ----
    if (st.mnemonic == "nop") {
      prog.instrs.push_back({Opcode::kAddi, 0, 0, 0, 0, 0, 4});
      continue;
    }
    if (st.mnemonic == "mv") {
      prog.instrs.push_back(
          {Opcode::kAddi, want_reg(st, 0), want_reg(st, 1), 0, 0, 0, 4});
      continue;
    }
    if (st.mnemonic == "ret") {
      prog.instrs.push_back({Opcode::kJalr, 0, isa::kRa, 0, 0, 0, 4});
      continue;
    }
    if (st.mnemonic == "rdcycle" || st.mnemonic == "rdinstret") {
      const int32_t csr = st.mnemonic == "rdcycle" ? 0xC00 : 0xC02;
      prog.instrs.push_back({Opcode::kCsrrs, want_reg(st, 0), 0, 0, csr, 0, 4});
      continue;
    }
    if (st.mnemonic == "j") {
      if (st.operands.size() != 1) fail(st.line, "j needs 1 operand");
      prog.instrs.push_back(
          {Opcode::kJal, 0, 0, 0, target_offset(st, st.operands[0]), 0, 4});
      continue;
    }
    if (st.mnemonic == "li") {
      const Reg rd = want_reg(st, 0);
      const int32_t v = static_cast<int32_t>(want_int(st, 1));
      if (fits_signed(v, 12)) {
        prog.instrs.push_back({Opcode::kAddi, rd, 0, 0, v, 0, 4});
      } else {
        const int32_t hi = (v + 0x800) >> 12;
        const int32_t lo = v - (hi << 12);
        prog.instrs.push_back({Opcode::kLui, rd, 0, 0, hi & 0xFFFFF, 0, 4});
        if (lo != 0) prog.instrs.push_back({Opcode::kAddi, rd, rd, 0, lo, 0, 4});
      }
      continue;
    }

    const OpcodeInfo* spec = find_mnemonic(st.mnemonic);
    if (!spec) fail(st.line, "unknown mnemonic '" + st.mnemonic + "'");
    Instr ins;
    ins.op = spec->op;
    switch (spec->format) {
      case Format::kR:
      case Format::kSimdR: {
        if (spec->op == Opcode::kPLwRr || spec->op == Opcode::kPLhRr) {
          ins.rd = want_reg(st, 0);
          const auto m = want_mem(st, 1);
          const auto inc = parse_reg(m.outer);
          if (!inc || !m.post_inc) fail(st.line, "expected rd, rs2(rs1!)");
          ins.rs1 = m.base;
          ins.rs2 = *inc;
        } else if (st.operands.size() == 2) {
          ins.rd = want_reg(st, 0);  // unary forms: p.abs, p.exths, ...
          ins.rs1 = want_reg(st, 1);
        } else {
          ins.rd = want_reg(st, 0);
          ins.rs1 = want_reg(st, 1);
          ins.rs2 = want_reg(st, 2);
        }
        break;
      }
      case Format::kI: {
        ins.rd = want_reg(st, 0);
        if (spec->unit == isa::Unit::kLoad || spec->op == Opcode::kJalr) {
          const auto m = want_mem(st, 1);
          const auto off = parse_int(m.outer);
          if (!off) fail(st.line, "bad load offset");
          ins.rs1 = m.base;
          ins.imm = static_cast<int32_t>(*off);
        } else {
          ins.rs1 = want_reg(st, 1);
          ins.imm = static_cast<int32_t>(want_int(st, 2));
        }
        break;
      }
      case Format::kShift:
      case Format::kClip:
      case Format::kSimdImm:
        ins.rd = want_reg(st, 0);
        ins.rs1 = want_reg(st, 1);
        ins.imm = static_cast<int32_t>(want_int(st, 2));
        break;
      case Format::kS: {
        ins.rs2 = want_reg(st, 0);
        const auto m = want_mem(st, 1);
        const auto off = parse_int(m.outer);
        if (!off) fail(st.line, "bad store offset");
        ins.rs1 = m.base;
        ins.imm = static_cast<int32_t>(*off);
        break;
      }
      case Format::kB:
        ins.rs1 = want_reg(st, 0);
        ins.rs2 = want_reg(st, 1);
        if (st.operands.size() < 3) fail(st.line, "missing branch target");
        ins.imm = target_offset(st, st.operands[2]);
        break;
      case Format::kU:
        ins.rd = want_reg(st, 0);
        ins.imm = static_cast<int32_t>(want_int(st, 1));
        break;
      case Format::kJ:
        ins.rd = want_reg(st, 0);
        if (st.operands.size() < 2) fail(st.line, "missing jump target");
        ins.imm = target_offset(st, st.operands[1]);
        break;
      case Format::kSys:
        break;
      case Format::kCsr:
        ins.rd = want_reg(st, 0);
        ins.imm = static_cast<int32_t>(want_int(st, 1));
        ins.rs1 = want_reg(st, 2);
        break;
      case Format::kHwlImm:
        ins.rd = static_cast<Reg>(want_int(st, 0));
        if (spec->op == Opcode::kLpCounti) {
          ins.imm = static_cast<int32_t>(want_int(st, 1));
        } else {
          if (st.operands.size() < 2) fail(st.line, "missing loop target");
          ins.imm = target_offset(st, st.operands[1]);
        }
        break;
      case Format::kHwlReg:
        ins.rd = static_cast<Reg>(want_int(st, 0));
        ins.rs1 = want_reg(st, 1);
        break;
      case Format::kHwlSetup:
        ins.rd = static_cast<Reg>(want_int(st, 0));
        ins.rs1 = want_reg(st, 1);
        if (st.operands.size() < 3) fail(st.line, "missing loop end target");
        ins.imm = target_offset(st, st.operands[2]);
        break;
      case Format::kHwlSetupImm:
        ins.rd = static_cast<Reg>(want_int(st, 0));
        ins.imm = static_cast<int32_t>(want_int(st, 1));
        if (st.operands.size() < 3) fail(st.line, "missing loop end target");
        ins.imm2 = target_offset(st, st.operands[2]);
        break;
      case Format::kAct:
        ins.rd = want_reg(st, 0);
        ins.rs1 = want_reg(st, 1);
        break;
    }
    // Validate operand ranges immediately, with the source line attached.
    try {
      (void)isa::encode(ins);
    } catch (const std::runtime_error& e) {
      fail(st.line, e.what());
    }
    prog.instrs.push_back(ins);
  }
  return prog;
}

}  // namespace rnnasip::assembler
