// Textual assembler: assembly source -> Program.
//
// Accepts the same syntax the disassembler emits (so
// assemble(disassemble(p)) round-trips), plus labels and a few pseudo
// instructions:
//
//   loop:                       # labels end with ':'
//     p.lw   a1, 4(a0!)         # post-increment addressing
//     pv.sdotsp.h a2, a1, a1
//     bne    a3, zero, loop     # branch targets: label or absolute 0x....
//     lp.setupi 0, 32, end      # hardware loops take a loop index 0/1
//     li     t0, 0x12345678     # pseudo: li / mv / nop / j / ret
//     ebreak
//
// Comments start with '#', '//' or ';'. Numbers are decimal or 0x hex.
// Errors throw std::runtime_error with the offending line number.
#pragma once

#include <cstdint>
#include <string_view>

#include "src/asm/program.h"

namespace rnnasip::assembler {

Program assemble(std::string_view source, uint32_t base = 0x0000'1000);

}  // namespace rnnasip::assembler
