// A program is a sequence of decoded instructions plus its load address.
//
// Kernel generators build programs in decoded (Instr) form; the ISS consumes
// that form directly (it re-encodes and re-decodes in tests to prove the
// byte stream is faithful, but does not pay decode cost per executed
// instruction).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/isa/opcode.h"

namespace rnnasip::assembler {

struct Program {
  uint32_t base = 0x0000'1000;       ///< text load address
  std::vector<isa::Instr> instrs;    ///< decoded instruction stream

  /// Address of instruction `idx` (all our generated instructions are
  /// 4 bytes; compressed forms only appear via decode, not generation).
  uint32_t address_of(size_t idx) const { return base + static_cast<uint32_t>(4 * idx); }

  /// Total size in bytes.
  uint32_t size_bytes() const { return static_cast<uint32_t>(4 * instrs.size()); }

  /// First address past the text.
  uint32_t end_address() const { return base + size_bytes(); }

  /// Index of the instruction at `pc`, or empty if `pc` is outside the
  /// text or not on an instruction boundary.
  std::optional<size_t> index_at(uint32_t pc) const {
    if (pc < base || pc >= end_address() || ((pc - base) & 0x3) != 0)
      return std::nullopt;
    return static_cast<size_t>((pc - base) / 4);
  }

  /// Encode the full instruction stream into words (for memory images and
  /// round-trip tests).
  std::vector<uint32_t> encode_words() const;
};

}  // namespace rnnasip::assembler
