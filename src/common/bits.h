// Bit-manipulation helpers shared by the ISA encoder/decoder and the ISS.
//
// Everything here is branch-free, constexpr where possible, and expressed on
// unsigned types with explicit casts at the signed boundary — the pattern the
// RISC-V manual's pseudo-code uses.
#pragma once

#include <cstdint>

#include "src/common/check.h"

namespace rnnasip {

/// Extract bits [hi:lo] (inclusive, hi >= lo) of `v`, right-aligned.
constexpr uint32_t bits(uint32_t v, unsigned hi, unsigned lo) {
  return (v >> lo) & ((hi - lo == 31u) ? 0xFFFFFFFFu : ((1u << (hi - lo + 1)) - 1u));
}

/// Extract a single bit of `v`.
constexpr uint32_t bit(uint32_t v, unsigned pos) { return (v >> pos) & 1u; }

/// Sign-extend the low `width` bits of `v` to a signed 32-bit value.
constexpr int32_t sign_extend(uint32_t v, unsigned width) {
  const uint32_t m = 1u << (width - 1);
  const uint32_t x = v & ((width == 32u) ? 0xFFFFFFFFu : ((1u << width) - 1u));
  return static_cast<int32_t>((x ^ m) - m);
}

/// True iff signed value `v` fits in `width` bits (two's complement).
constexpr bool fits_signed(int64_t v, unsigned width) {
  const int64_t lo = -(int64_t{1} << (width - 1));
  const int64_t hi = (int64_t{1} << (width - 1)) - 1;
  return v >= lo && v <= hi;
}

/// True iff unsigned value `v` fits in `width` bits.
constexpr bool fits_unsigned(uint64_t v, unsigned width) {
  return width >= 64 || v < (uint64_t{1} << width);
}

/// Low 16-bit half of a 32-bit word, as signed (packed-SIMD element 0).
constexpr int16_t half_lo(uint32_t v) { return static_cast<int16_t>(v & 0xFFFFu); }

/// High 16-bit half of a 32-bit word, as signed (packed-SIMD element 1).
constexpr int16_t half_hi(uint32_t v) { return static_cast<int16_t>(v >> 16); }

/// Pack two signed 16-bit halves into a 32-bit word (`hi` in bits 31:16).
constexpr uint32_t pack_halves(int16_t lo, int16_t hi) {
  return (static_cast<uint32_t>(static_cast<uint16_t>(hi)) << 16) |
         static_cast<uint32_t>(static_cast<uint16_t>(lo));
}

/// Saturate a signed value into `width`-bit two's complement range.
constexpr int32_t clip_signed(int64_t v, unsigned width) {
  const int64_t lo = -(int64_t{1} << (width - 1));
  const int64_t hi = (int64_t{1} << (width - 1)) - 1;
  return static_cast<int32_t>(v < lo ? lo : (v > hi ? hi : v));
}

}  // namespace rnnasip
