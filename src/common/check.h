// Lightweight runtime checking used across the library.
//
// RNNASIP_CHECK is used for *precondition and invariant* violations that
// indicate a programming error by the caller (bad layer dimensions, operand
// out of encodable range, ...). It throws std::runtime_error with a message
// naming the failing condition and location, so tests can assert on misuse
// and applications get a diagnosable failure instead of UB.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rnnasip {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw std::runtime_error(os.str());
}

}  // namespace rnnasip

#define RNNASIP_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) ::rnnasip::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define RNNASIP_CHECK_MSG(cond, msg)                                \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::ostringstream os_;                                       \
      os_ << msg;                                                   \
      ::rnnasip::check_failed(#cond, __FILE__, __LINE__, os_.str()); \
    }                                                               \
  } while (0)
