#include "src/common/fixed_point.h"

#include <cmath>

#include "src/common/check.h"

namespace rnnasip {

std::string QFormat::to_string() const {
  return "Q" + std::to_string(int_bits) + "." + std::to_string(frac_bits);
}

int32_t quantize(double x, QFormat fmt) {
  RNNASIP_CHECK(fmt.width() >= 2 && fmt.width() <= 32);
  const double scaled = x * fmt.scale();
  // Round half away from zero, matching the HW LUT generation.
  const double rounded = std::round(scaled);
  const int64_t lo = -(int64_t{1} << (fmt.width() - 1));
  const int64_t hi = (int64_t{1} << (fmt.width() - 1)) - 1;
  int64_t v = static_cast<int64_t>(rounded);
  if (v < lo) v = lo;
  if (v > hi) v = hi;
  return static_cast<int32_t>(v);
}

double dequantize(int64_t raw, QFormat fmt) {
  RNNASIP_CHECK(fmt.width() >= 2 && fmt.width() <= 32);
  return static_cast<double>(raw) / fmt.scale();
}

int32_t requantize(int64_t acc, int shift, int out_width) {
  RNNASIP_CHECK(shift >= 0 && shift < 63);
  RNNASIP_CHECK(out_width >= 2 && out_width <= 32);
  const int64_t shifted = acc >> shift;  // arithmetic shift, truncating
  return clip_signed(shifted, static_cast<unsigned>(out_width));
}

int16_t sat_add16(int16_t a, int16_t b) {
  const int32_t s = static_cast<int32_t>(a) + static_cast<int32_t>(b);
  return static_cast<int16_t>(clip_signed(s, 16));
}

int16_t fx_mul_q(int16_t a, int16_t b, QFormat fmt) {
  const int64_t p = static_cast<int64_t>(a) * static_cast<int64_t>(b);
  return static_cast<int16_t>(requantize(p, fmt.frac_bits, 16));
}

}  // namespace rnnasip
