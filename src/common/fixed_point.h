// Q-format fixed-point arithmetic.
//
// The paper encodes all weights and activations in 16-bit Q3.12 (1 sign bit,
// 3 integer bits, 12 fractional bits); products are accumulated in 32-bit
// Q6.24 and requantized back by an arithmetic shift of 12 with saturation.
// `QFormat` captures the format as a runtime value because the activation
// design-space exploration (Fig. 2) sweeps formats, while `q3_12` is the
// fixed operating point used by the kernels.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/bits.h"

namespace rnnasip {

/// A signed fixed-point format with `int_bits` integer bits (excluding the
/// sign bit) and `frac_bits` fractional bits; total width is
/// 1 + int_bits + frac_bits.
struct QFormat {
  int int_bits = 3;
  int frac_bits = 12;

  constexpr int width() const { return 1 + int_bits + frac_bits; }
  constexpr double scale() const { return static_cast<double>(1 << frac_bits); }
  constexpr double max_value() const {
    return (static_cast<double>((int64_t{1} << (width() - 1)) - 1)) / scale();
  }
  constexpr double min_value() const {
    return -static_cast<double>(int64_t{1} << (width() - 1)) / scale();
  }
  constexpr double resolution() const { return 1.0 / scale(); }

  friend constexpr bool operator==(const QFormat&, const QFormat&) = default;

  std::string to_string() const;  // "Q3.12"
};

/// The paper's operating format for weights and activations.
inline constexpr QFormat q3_12{3, 12};
/// Accumulator format of a Q3.12 × Q3.12 sum-dot-product (32-bit register).
inline constexpr QFormat q7_24{7, 24};

/// Convert a real value to fixed point: round to nearest (ties away from
/// zero), then saturate to the format's representable range.
int32_t quantize(double x, QFormat fmt = q3_12);

/// Convert a fixed-point raw value back to a real number.
double dequantize(int64_t raw, QFormat fmt = q3_12);

/// Requantize a Q(2a).(2b) product/accumulator back to Qa.b: arithmetic
/// shift right by `shift` and saturate into `out_width` bits. This is what
/// the kernels do with `srai` + `p.clip`.
int32_t requantize(int64_t acc, int shift, int out_width = 16);

/// Saturating 16-bit addition as performed by the packed pv.add.h unit.
int16_t sat_add16(int16_t a, int16_t b);

/// Fixed-point multiply of two Qa.b values giving a Qa.b value
/// (shift-and-saturate), the scalar building block of the golden models.
int16_t fx_mul_q(int16_t a, int16_t b, QFormat fmt = q3_12);

}  // namespace rnnasip
