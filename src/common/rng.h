// Deterministic pseudo-random generation for workloads and property tests.
//
// A small splitmix64-based generator is used instead of <random> engines so
// that every workload (weights, inputs, sweep points) is reproducible across
// platforms and standard-library versions — benchmark tables must not drift
// between runs or machines.
#pragma once

#include <cstdint>

namespace rnnasip {

/// splitmix64: tiny, high-quality, state = one 64-bit word.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  uint64_t next_u64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint32_t next_u32() { return static_cast<uint32_t>(next_u64() >> 32); }

  /// Uniform in [0, n). n must be > 0.
  uint32_t next_below(uint32_t n) { return static_cast<uint32_t>(next_u64() % n); }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double next_in(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform signed 16-bit value, handy for Q3.12 raw data.
  int16_t next_i16() { return static_cast<int16_t>(next_u32() & 0xFFFFu); }

 private:
  uint64_t state_;
};

/// Derive an independent stream seed from (seed, stream): the splitmix64
/// finalizer over a gamma-spaced input — the same mixing `Rng` applies to
/// sequential states. Components that own several generators (channel
/// occupancy vs geometry vs fading, per-execution fault campaigns) seed each
/// from `derive_stream(seed, k)` with distinct `k`, so adding draws to one
/// stream can never shift another component's sequence — a hard requirement
/// for keeping blessed bench envelopes byte-identical as models grow.
constexpr uint64_t derive_stream(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace rnnasip
