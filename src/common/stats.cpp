#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace rnnasip {

void ErrorStats::add(double value, double reference) {
  const double e = value - reference;
  ++n_;
  sum_sq_ += e * e;
  sum_err_ += e;
  max_abs_ = std::max(max_abs_, std::abs(e));
}

double ErrorStats::mse() const { return n_ == 0 ? 0.0 : sum_sq_ / static_cast<double>(n_); }
double ErrorStats::rmse() const { return std::sqrt(mse()); }
double ErrorStats::mean_error() const {
  return n_ == 0 ? 0.0 : sum_err_ / static_cast<double>(n_);
}

void Summary::add(double v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  sum_ += v;
}

double Summary::mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }

}  // namespace rnnasip
