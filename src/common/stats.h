// Error and summary statistics accumulators used by the activation
// design-space exploration (Fig. 2) and by kernel-vs-reference comparisons.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rnnasip {

/// Accumulates pointwise error statistics between a value under test and a
/// reference: mean squared error, max absolute error, and mean error (bias).
class ErrorStats {
 public:
  void add(double value, double reference);

  size_t count() const { return n_; }
  double mse() const;
  double rmse() const;
  double max_abs_error() const { return max_abs_; }
  double mean_error() const;

 private:
  size_t n_ = 0;
  double sum_sq_ = 0.0;
  double sum_err_ = 0.0;
  double max_abs_ = 0.0;
};

/// Running min/mean/max over a scalar series (cycle counts, speedups, ...).
class Summary {
 public:
  void add(double v);

  size_t count() const { return n_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const;
  double sum() const { return sum_; }

 private:
  size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rnnasip
