#include "src/common/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

#include "src/common/check.h"

namespace rnnasip {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RNNASIP_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  RNNASIP_CHECK_MSG(row.size() == header_.size(),
                    "row arity " << row.size() << " != header " << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t c = 0; c < r.size(); ++c) {
      if (c) os << "  ";
      if (c == 0) {
        os << r[c] << std::string(width[c] - r[c].size(), ' ');
      } else {
        os << std::string(width[c] - r[c].size(), ' ') << r[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << r[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  auto cell = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '|') out += "\\|";
      else out += c;
    }
    return out;
  };
  auto emit = [&](const std::vector<std::string>& r) {
    os << '|';
    for (const auto& c : r) os << ' ' << cell(c) << " |";
    os << '\n';
  };
  emit(header_);
  os << '|';
  for (size_t c = 0; c < header_.size(); ++c) os << (c == 0 ? " :--- |" : " ---: |");
  os << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string fmt_count(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  const size_t n = digits.size();
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back('\'');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace rnnasip
