// Plain-text table rendering for the benchmark harness.
//
// Every bench binary regenerates one of the paper's tables/figures as an
// aligned ASCII table (and optionally CSV), so the output can be compared
// side by side with the paper and pasted into EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace rnnasip {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment: first column left, the rest right.
  std::string to_string() const;

  /// Render as CSV (no quoting needed for our numeric content).
  std::string to_csv() const;

  /// Render as a GitHub-flavored markdown table (first column left-aligned,
  /// the rest right-aligned). Pipes in cells are escaped.
  std::string to_markdown() const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
std::string fmt_double(double v, int precision = 2);
std::string fmt_sci(double v, int precision = 2);
/// Group thousands with apostrophes, as the paper prints counts (3'269).
std::string fmt_count(uint64_t v);

}  // namespace rnnasip
