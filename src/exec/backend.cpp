#include "src/exec/backend.h"

namespace rnnasip {

const char* backend_name(ExecBackend b) {
  switch (b) {
    case ExecBackend::kIss: return "iss";
    case ExecBackend::kTranslated: return "translated";
  }
  return "?";
}

std::optional<ExecBackend> parse_backend(const std::string& name) {
  if (name == "iss") return ExecBackend::kIss;
  if (name == "translated") return ExecBackend::kTranslated;
  return std::nullopt;
}

}  // namespace rnnasip
