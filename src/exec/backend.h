// Backend-agnostic execution layer.
//
// Everything that used to take an `iss::Core` directly — the integrity
// harness, the serving scheduler's segmented loop, the engine's forward-run
// helpers — now programs against `ExecutionBackend`: the minimal resumable
// execution surface (run until ebreak/ecall/limit, reposition the PC over a
// yield, snapshot/restore the complete architectural state). The ISS is one
// implementation (`IssBackend`, a thin adapter over `iss::Core`); the
// ahead-of-time translator (src/translate) is the other. The snapshot type
// is shared (`iss::CoreSnapshot`), so a checkpoint taken on one backend
// restores bit-exactly on the other — layer-boundary preemption can migrate
// a request across backends, not just across cores.
//
// Which backend a run uses is selected by `ExecBackend` on the high-level
// configs (`rrm::Engine::Config::backend`, `serve::ClusterConfig::backend`)
// and by the shared `--backend` bench flag.
#pragma once

#include <optional>
#include <string>

#include "src/iss/core.h"

namespace rnnasip {

/// Execution backend selector, threaded through Engine/Cluster configs and
/// the shared bench CLI. kIss is the cycle-accurate interpreter and the
/// semantic ground truth; kTranslated is the ahead-of-time translation of a
/// *verified* program to pre-decoded threaded code (src/translate),
/// bit-exact against the ISS in outputs, architectural state, and cycles.
enum class ExecBackend { kIss, kTranslated };

/// Stable short name ("iss", "translated") for CLI flags and JSON fields.
const char* backend_name(ExecBackend b);

/// Parse a backend name; empty optional for anything unrecognized.
std::optional<ExecBackend> parse_backend(const std::string& name);

namespace exec {

/// The resumable execution surface shared by the ISS and the translator.
/// Memory is deliberately *not* part of the interface: backends execute
/// against an `iss::Memory` the caller owns, so harnesses (integrity
/// checkpointing, fault attribution, serving I/O) keep reading and writing
/// device memory exactly as before, whichever backend runs the program.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual ExecBackend kind() const = 0;

  /// Clear registers/SPRs/loops and set the PC (iss::Core::reset).
  virtual void reset(uint32_t pc) = 0;
  /// Reposition the PC without touching other state — resume past an ecall
  /// yield (the run loop leaves the PC *at* the ecall; continue at +4).
  virtual void set_pc(uint32_t pc) = 0;
  virtual uint32_t pc() const = 0;

  /// Execute until ebreak/ecall, a limit, or a trap; the result contract is
  /// iss::Core::run's. Traps leave the backend resumable.
  virtual iss::RunResult run(const iss::RunLimits& limits) = 0;
  iss::RunResult run() { return run(iss::RunLimits{}); }

  /// Capture / restore the complete resumable architectural state. The
  /// snapshot format is shared across backends: a checkpoint taken under
  /// one backend restores bit-exactly under the other.
  virtual iss::CoreSnapshot snapshot() const = 0;
  virtual void restore(const iss::CoreSnapshot& s) = 0;
};

/// The ISS as an ExecutionBackend: a non-owning adapter over `iss::Core`.
class IssBackend final : public ExecutionBackend {
 public:
  IssBackend() = default;
  explicit IssBackend(iss::Core* core) : core_(core) {}

  void attach(iss::Core* core) { core_ = core; }
  iss::Core* core() const { return core_; }

  ExecBackend kind() const override { return ExecBackend::kIss; }
  void reset(uint32_t pc) override { core_->reset(pc); }
  void set_pc(uint32_t pc) override { core_->set_pc(pc); }
  uint32_t pc() const override { return core_->pc(); }
  iss::RunResult run(const iss::RunLimits& limits) override {
    return core_->run(limits);
  }
  iss::CoreSnapshot snapshot() const override { return core_->snapshot(); }
  void restore(const iss::CoreSnapshot& s) override { core_->restore(s); }

 private:
  iss::Core* core_ = nullptr;
};

}  // namespace exec
}  // namespace rnnasip
