#include "src/fault/fault_injector.h"

#include <sstream>

#include "src/common/check.h"

namespace rnnasip::fault {

const char* target_name(Target t) {
  switch (t) {
    case Target::kTcdm: return "tcdm";
    case Target::kRegFile: return "regfile";
    case Target::kSprWeights: return "spr";
    case Target::kPlaLut: return "pla-lut";
    case Target::kInstr: return "instr";
  }
  return "?";
}

FaultInjector::FaultInjector(const FaultSpec& spec) : spec_(spec), rng_(spec.seed) {}

void FaultInjector::arm(iss::Core* core, iss::Memory* mem) {
  RNNASIP_CHECK(core != nullptr && mem != nullptr);
  core_ = core;
  mem_ = mem;
  core_->set_fault_hook([this](uint64_t idx) { on_retire(idx); });
}

void FaultInjector::disarm() {
  if (core_ != nullptr) core_->set_fault_hook({});
  core_ = nullptr;
  mem_ = nullptr;
}

void FaultInjector::on_retire(uint64_t instr_index) {
  // One draw per target, every retirement, in fixed target order: a target's
  // trial sequence does not shift when another target's rate changes, and a
  // rate of 0 can never fire.
  for (size_t t = 0; t < kNumTargets; ++t) {
    const double d = rng_.next_double();
    if (d < spec_.rate[t]) inject(static_cast<Target>(t), instr_index);
  }
}

void FaultInjector::inject(Target t, uint64_t instr_index) {
  FaultEvent ev;
  ev.target = t;
  ev.at_instr = instr_index;
  switch (t) {
    case Target::kTcdm: {
      AddrRange r = spec_.tcdm;
      if (r.empty()) r = {mem_->base(), mem_->base() + mem_->size()};
      ev.where = r.lo + rng_.next_below(r.bytes());
      ev.bit = rng_.next_below(8);
      mem_->flip_bit(ev.where, ev.bit);
      break;
    }
    case Target::kRegFile: {
      // x0 is hardwired zero in RI5CY; a flip there is architecturally
      // invisible, so the campaign spends its budget on x1..x31.
      ev.where = 1 + rng_.next_below(31);
      ev.bit = rng_.next_below(32);
      const int r = static_cast<int>(ev.where);
      core_->set_reg(r, core_->reg(r) ^ (1u << ev.bit));
      break;
    }
    case Target::kSprWeights: {
      ev.where = rng_.next_below(2);
      ev.bit = rng_.next_below(32);
      const int k = static_cast<int>(ev.where);
      core_->set_spr(k, core_->spr(k) ^ (1u << ev.bit));
      break;
    }
    case Target::kPlaLut: {
      // Four stores: {tanh, sig} x {slope, offset}; entries are 16 bit.
      const uint32_t which = rng_.next_below(4);
      activation::PlaTable& tbl =
          (which < 2) ? core_->mutable_tanh_table() : core_->mutable_sig_table();
      const bool slope = (which % 2) == 0;
      const auto& store = slope ? tbl.slopes() : tbl.offsets();
      const uint32_t idx = rng_.next_below(static_cast<uint32_t>(store.size()));
      ev.where = (which << 16) | idx;
      ev.bit = rng_.next_below(16);
      const int16_t flipped =
          static_cast<int16_t>(store[idx] ^ static_cast<int16_t>(1 << ev.bit));
      if (slope) tbl.set_slope(idx, flipped);
      else tbl.set_offset(idx, flipped);
      break;
    }
    case Target::kInstr: {
      if (spec_.text.empty()) return;  // nowhere to aim — draw stays consumed
      const uint32_t halfwords = spec_.text.bytes() / 2;
      if (halfwords == 0) return;
      ev.where = spec_.text.lo + 2 * rng_.next_below(halfwords);
      ev.bit = rng_.next_below(16);
      mem_->store16(ev.where,
                    static_cast<uint16_t>(mem_->load16(ev.where) ^ (1u << ev.bit)));
      core_->invalidate_decode_cache();
      break;
    }
  }
  events_.push_back(ev);
}

std::string FaultInjector::schedule_string() const {
  std::ostringstream os;
  for (const auto& ev : events_) {
    os << target_name(ev.target) << " @0x" << std::hex << ev.where << std::dec
       << " bit " << ev.bit << " at instr " << ev.at_instr << "\n";
  }
  return os.str();
}

}  // namespace rnnasip::fault
