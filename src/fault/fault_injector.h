// Deterministic single-event-upset (SEU) fault injection.
//
// The paper's target is always-on 5G base-station silicon (GF22FDX), where
// soft errors in the TCDM, the register file, and the PLA LUTs are a
// first-order reliability concern. This subsystem runs seed-driven bit-flip
// campaigns against the simulated core: after every retired instruction it
// draws one Bernoulli trial per target and, on a hit, flips one uniformly
// chosen bit of that target. Everything downstream of the seed is
// deterministic — the same seed over the same program yields the same flip
// schedule, the same traps, and the same degraded outputs, so campaigns are
// reproducible and bisectable. See docs/FAULTS.md.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/iss/core.h"

namespace rnnasip::fault {

/// What a flip lands in.
enum class Target : uint8_t {
  kTcdm = 0,    ///< a data-memory byte (the FaultSpec::tcdm range)
  kRegFile,     ///< one of x1..x31
  kSprWeights,  ///< one of the two pl.sdotsp SPR weight registers
  kPlaLut,      ///< a tanh/sig slope or offset LUT entry in the PLA unit
  kInstr,       ///< a program-text halfword (the FaultSpec::text range)
};
inline constexpr size_t kNumTargets = 5;

const char* target_name(Target t);

/// Half-open byte-address range [lo, hi).
struct AddrRange {
  uint32_t lo = 0;
  uint32_t hi = 0;
  bool empty() const { return hi <= lo; }
  uint32_t bytes() const { return empty() ? 0 : hi - lo; }
};

/// A campaign configuration. All rates 0 (the default) means no injection;
/// a campaign at rate 0 is bit-identical to a fault-free run.
struct FaultSpec {
  uint64_t seed = 1;
  /// Per-retired-instruction probability of one bit flip in each target.
  std::array<double, kNumTargets> rate{};

  double& rate_of(Target t) { return rate[static_cast<size_t>(t)]; }
  double rate_of(Target t) const { return rate[static_cast<size_t>(t)]; }
  bool any_enabled() const {
    for (double r : rate)
      if (r > 0) return true;
    return false;
  }

  /// Data region for kTcdm flips. Empty = the armed Memory's full span.
  AddrRange tcdm;
  /// Program text for kInstr flips. Empty = the target stays inert (the
  /// injector cannot guess where text lives).
  AddrRange text;
};

/// One injected flip, in schedule order.
struct FaultEvent {
  Target target = Target::kTcdm;
  uint64_t at_instr = 0;  ///< retired-instruction index when injected
  uint32_t where = 0;     ///< byte address / reg index / SPR index / LUT slot
  uint32_t bit = 0;       ///< flipped bit within the unit
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec);

  /// Install the per-retired-instruction hook on `core` and remember `mem`
  /// as the flip target. Replaces any previously set fault hook.
  void arm(iss::Core* core, iss::Memory* mem);
  /// Remove the hook (the injector must outlive the core while armed).
  void disarm();

  const FaultSpec& spec() const { return spec_; }
  const std::vector<FaultEvent>& events() const { return events_; }
  uint64_t flips() const { return events_.size(); }

  /// One line per event ("tcdm @0x20340 bit 3 at instr 1042"), for logs and
  /// for asserting schedule determinism in tests.
  std::string schedule_string() const;

 private:
  void on_retire(uint64_t instr_index);
  void inject(Target t, uint64_t instr_index);

  FaultSpec spec_;
  Rng rng_;
  iss::Core* core_ = nullptr;
  iss::Memory* mem_ = nullptr;
  std::vector<FaultEvent> events_;
};

}  // namespace rnnasip::fault
