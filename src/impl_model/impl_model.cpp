#include "src/impl_model/impl_model.h"

#include "src/common/check.h"
#include "src/isa/opcode.h"

namespace rnnasip::impl_model {

using isa::Opcode;
using isa::Unit;

double AreaModel::extension_kge() const {
  return ext_act_luts_kge + ext_act_datapath_kge + ext_spr_kge + ext_decoder_kge +
         ext_muxing_kge;
}

double AreaModel::extended_core_kge() const { return baseline_core_kge + extension_kge(); }

double AreaModel::overhead_fraction() const {
  return extension_kge() / extended_core_kge();
}

double AreaModel::extended_core_um2(const TechParams& tech) const {
  return extended_core_kge() * 1000.0 * tech.um2_per_ge;
}

double AreaModel::act_unit_kge(int num_intervals) const {
  RNNASIP_CHECK(num_intervals >= 1);
  return ext_act_datapath_kge +
         ext_act_luts_kge * static_cast<double>(num_intervals) / 32.0;
}

double AreaModel::extension_kge_with_intervals(int num_intervals) const {
  return act_unit_kge(num_intervals) + ext_spr_kge + ext_decoder_kge + ext_muxing_kge;
}

Activity activity_from_stats(const iss::ExecStats& stats) {
  Activity a;
  a.cycles = stats.total_cycles();
  a.macs = stats.total_macs();
  if (a.cycles == 0) return a;
  uint64_t alu = 0, mac = 0, lsu = 0, gpr = 0, act = 0, ext = 0;
  for (const auto& [op, s] : stats.by_opcode()) {
    const auto& info = isa::opcode_info(op);
    gpr += s.instrs;  // every retired instruction touches the register file
    switch (info.unit) {
      case Unit::kAlu:
      case Unit::kBranch:
      case Unit::kJump:
      case Unit::kHwLoop:
      case Unit::kSystem:
        alu += s.instrs;
        break;
      case Unit::kMul:
        mac += s.instrs;
        break;
      case Unit::kDiv:
        mac += s.cycles;  // the serial divider is busy every cycle
        break;
      case Unit::kLoad:
      case Unit::kStore:
        lsu += s.instrs;
        break;
      case Unit::kSimd:
        mac += s.instrs;
        gpr += s.instrs;  // packed operands double the read/write activity
        break;
      case Unit::kRnnDot:
        mac += s.instrs;
        lsu += s.instrs;  // the folded weight load
        gpr += s.instrs;
        ext += s.instrs;
        break;
      case Unit::kActUnit:
        act += s.instrs;
        ext += s.instrs;
        break;
    }
  }
  const double c = static_cast<double>(a.cycles);
  a.alu_rate = static_cast<double>(alu) / c;
  a.mac_rate = static_cast<double>(mac) / c;
  a.lsu_rate = static_cast<double>(lsu) / c;
  a.gpr_rate = static_cast<double>(gpr) / c;
  a.act_rate = static_cast<double>(act) / c;
  a.ext_rate = static_cast<double>(ext) / c;
  return a;
}

PowerModel PowerModel::calibrate(const Activity& base, const Activity& ext,
                                 TechParams tech) {
  // Paper calibration points (Sec. IV).
  constexpr double kBaselineMw = 1.73;
  constexpr double kDeltaMacMw = 0.57;
  constexpr double kDeltaGprMw = 0.16;
  constexpr double kDeltaLsuMw = 0.05;
  constexpr double kDeltaDecMw = 0.005;

  PowerModel m;
  m.tech = tech;
  RNNASIP_CHECK_MSG(ext.mac_rate > base.mac_rate && ext.gpr_rate > base.gpr_rate &&
                        ext.lsu_rate > base.lsu_rate,
                    "calibration needs higher extended-suite activity");
  // delta_mw = E_pj * 1e-12 * (r_ext - r_base) * f; solve for E in pJ.
  m.e_mac_pj = kDeltaMacMw * 1e-3 / ((ext.mac_rate - base.mac_rate) * tech.freq_hz) * 1e12;
  m.e_gpr_pj = kDeltaGprMw * 1e-3 / ((ext.gpr_rate - base.gpr_rate) * tech.freq_hz) * 1e12;
  m.e_lsu_pj = kDeltaLsuMw * 1e-3 / ((ext.lsu_rate - base.lsu_rate) * tech.freq_hz) * 1e12;
  m.e_ext_dec_pj = kDeltaDecMw * 1e-3 / ((ext.ext_rate + 1e-12) * tech.freq_hz) * 1e12;
  // The PLA unit is a small multiply-add: charge it like half a MAC event.
  m.e_act_pj = 0.5 * m.e_mac_pj;
  // Plain ALU events cost a fraction of a MAC event (narrow datapath).
  m.e_alu_pj = 0.15 * m.e_mac_pj;
  // Idle (clock tree, fetch, control) absorbs the rest of the baseline point.
  const double base_dynamic_mw =
      (m.e_alu_pj * base.alu_rate + m.e_mac_pj * base.mac_rate +
       m.e_lsu_pj * base.lsu_rate + m.e_gpr_pj * base.gpr_rate) *
      tech.freq_hz * 1e-9;
  m.idle_mw = kBaselineMw - base_dynamic_mw;
  RNNASIP_CHECK_MSG(m.idle_mw > 0, "calibration produced negative idle power");
  return m;
}

PowerModel::Breakdown PowerModel::breakdown_mw(const Activity& a) const {
  const double to_mw = tech.freq_hz * 1e-9;  // pJ/cycle-event -> mW
  Breakdown b{};
  b.idle = idle_mw;
  b.alu = e_alu_pj * a.alu_rate * to_mw;
  b.mac = e_mac_pj * a.mac_rate * to_mw;
  b.lsu = e_lsu_pj * a.lsu_rate * to_mw;
  b.gpr = e_gpr_pj * a.gpr_rate * to_mw;
  b.act = e_act_pj * a.act_rate * to_mw;
  b.ext_dec = e_ext_dec_pj * a.ext_rate * to_mw;
  return b;
}

double PowerModel::power_mw(const Activity& a) const { return breakdown_mw(a).total(); }

DvfsModel::DvfsModel(double vth, OperatingPoint anchor) : vth_(vth), anchor_(anchor) {
  RNNASIP_CHECK(anchor.vdd > vth + 0.05);
  RNNASIP_CHECK(anchor.freq_hz > 0);
}

double DvfsModel::freq_at(double vdd) const {
  const double overdrive = vdd - vth_;
  if (overdrive <= 0.05) return 0.0;  // below usable operation
  return anchor_.freq_hz * overdrive / (anchor_.vdd - vth_);
}

DvfsModel::OperatingPoint DvfsModel::point_at(double vdd) const {
  return {vdd, freq_at(vdd)};
}

double DvfsModel::scale_power_mw(double anchor_power_mw, double vdd,
                                 double leakage_fraction) const {
  RNNASIP_CHECK(leakage_fraction >= 0 && leakage_fraction < 1);
  const double v_ratio = vdd / anchor_.vdd;
  const double f_ratio = freq_at(vdd) / anchor_.freq_hz;
  const double dynamic = anchor_power_mw * (1.0 - leakage_fraction) * v_ratio * v_ratio *
                         f_ratio;
  const double leakage = anchor_power_mw * leakage_fraction * v_ratio;
  return dynamic + leakage;
}

double mmac_per_s(uint64_t macs, uint64_t cycles, const TechParams& tech) {
  if (cycles == 0) return 0;
  return static_cast<double>(macs) / static_cast<double>(cycles) * tech.freq_hz * 1e-6;
}

double gmac_per_s_per_w(double mmacs, double power_mw) {
  if (power_mw <= 0) return 0;
  return mmacs / power_mw;  // MMAC/s / mW == GMAC/s/W
}

double energy_per_run_uj(uint64_t cycles, double power_mw, const TechParams& tech) {
  const double seconds = static_cast<double>(cycles) / tech.freq_hz;
  return power_mw * 1e-3 * seconds * 1e6;
}

}  // namespace rnnasip::impl_model
