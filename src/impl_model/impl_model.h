// Analytic silicon implementation model — the substitute for the paper's
// GlobalFoundries 22FDX synthesis / place-and-route / gate-level power flow
// (see DESIGN.md, substitutions).
//
// Calibration anchors, all from Sec. IV of the paper:
//   * 380 MHz at 0.65 V, typical corner; critical path (LSU -> memory in the
//     write-back stage) unchanged by the extensions,
//   * extension area 2.3 kGE = 3.4 % of the core,
//   * core power 1.73 mW running the RV32-IMC baseline suite and 2.61 mW
//     with the extensions (+0.57 mW ALU/MAC, +0.16 mW GPR, +0.05 mW LSU,
//     +~5 uW decoder),
//   * headline metrics 566 MMAC/s and 218 GMAC/s/W.
//
// The power model is component-based: per-event energies for the MAC/ALU
// datapath, LSU, register file, and activation unit are *solved* from the
// paper's published component deltas using the measured activity rates of
// the baseline and fully-extended suite runs; idle power absorbs the
// remainder of the baseline calibration point. Any workload's power is then
// predicted from its own activity rates.
#pragma once

#include "src/iss/stats.h"

namespace rnnasip::impl_model {

/// Operating point (Sec. IV).
struct TechParams {
  double freq_hz = 380e6;
  double vdd = 0.65;
  /// GF22FDX 8-track LVT NAND2-equivalent gate area.
  double um2_per_ge = 0.199;
};

// ----------------------------------------------------------------- area ----

/// Component-level area breakdown in kGE. The baseline core is RI5CY
/// (RV32IMC + Xpulp); the extension adds the two SPR weight registers, the
/// tanh/sig PLA unit (two 32-entry 32-bit LUTs + the interpolation
/// datapath), decoder entries and operand muxing.
struct AreaModel {
  double baseline_core_kge = 65.3;
  double ext_act_luts_kge = 1.0;
  double ext_act_datapath_kge = 0.7;
  double ext_spr_kge = 0.2;
  double ext_decoder_kge = 0.1;
  double ext_muxing_kge = 0.3;

  double extension_kge() const;
  double extended_core_kge() const;
  /// Extension share of the extended core (paper: 3.4 %).
  double overhead_fraction() const;
  double extended_core_um2(const TechParams& tech = {}) const;

  /// Activation-unit area for an alternative LUT depth M (the shipped
  /// design point is M = 32): the LUT storage scales linearly, the
  /// interpolation datapath is fixed. Ties Fig. 2's accuracy axis to cost.
  double act_unit_kge(int num_intervals) const;
  /// Extension total with an alternative LUT depth.
  double extension_kge_with_intervals(int num_intervals) const;
};

// ---------------------------------------------------------------- power ----

/// Per-cycle utilization rates of the functional units, derived from an
/// ExecStats of a whole run.
struct Activity {
  double alu_rate = 0;   ///< plain ALU instructions / cycle
  double mac_rate = 0;   ///< multiplier/MAC datapath activations / cycle
  double lsu_rate = 0;   ///< memory accesses / cycle (pl.sdotsp counts one)
  double gpr_rate = 0;   ///< register-file write events / cycle, SIMD double
  double act_rate = 0;   ///< pl.tanh / pl.sig / cycle
  double ext_rate = 0;   ///< extension-decoder activations / cycle
  uint64_t cycles = 0;
  uint64_t macs = 0;
};

Activity activity_from_stats(const iss::ExecStats& stats);

/// Solved per-event energies (pJ) plus the constant idle power.
struct PowerModel {
  double idle_mw = 0;
  double e_alu_pj = 0;
  double e_mac_pj = 0;
  double e_lsu_pj = 0;
  double e_gpr_pj = 0;
  double e_act_pj = 0;
  double e_ext_dec_pj = 0;
  TechParams tech;

  /// Solve the component energies from the paper's published deltas using
  /// the measured baseline/extended suite activities (the calibration
  /// described in the header comment).
  static PowerModel calibrate(const Activity& baseline_suite,
                              const Activity& extended_suite, TechParams tech = {});

  /// Predicted core power for a workload's activity.
  double power_mw(const Activity& a) const;

  /// Component contributions for a workload (mW), for the Sec. IV breakdown.
  struct Breakdown {
    double idle, alu, mac, lsu, gpr, act, ext_dec;
    double total() const { return idle + alu + mac + lsu + gpr + act + ext_dec; }
  };
  Breakdown breakdown_mw(const Activity& a) const;
};

// ----------------------------------------------------------------- DVFS ----

/// Voltage-frequency scaling around the paper's 0.65 V / 380 MHz anchor.
/// RI5CY's lineage is near-threshold design ([32]); in that region the
/// achievable frequency is roughly linear in the overdrive (V - Vth) and
/// dynamic power scales with V^2 f, with a leakage floor linear in V.
/// The model reproduces the anchor exactly and lets the benches explore the
/// energy/throughput trade-off the 22FDX platform offers.
class DvfsModel {
 public:
  struct OperatingPoint {
    double vdd = 0.65;
    double freq_hz = 380e6;
  };

  /// Anchored at (0.65 V, 380 MHz) with threshold `vth`.
  explicit DvfsModel(double vth = 0.35) : DvfsModel(vth, OperatingPoint{}) {}
  DvfsModel(double vth, OperatingPoint anchor);

  /// Max frequency at `vdd` (linear overdrive model; 0 below threshold+margin).
  double freq_at(double vdd) const;
  OperatingPoint point_at(double vdd) const;

  /// Scale a power figure measured at the anchor point to another operating
  /// point, splitting it into dynamic (V^2 f) and leakage (V) parts.
  /// `leakage_fraction` is the leakage share at the anchor.
  double scale_power_mw(double anchor_power_mw, double vdd,
                        double leakage_fraction = 0.1) const;

  const OperatingPoint& anchor() const { return anchor_; }

 private:
  double vth_;
  OperatingPoint anchor_;
};

// -------------------------------------------------------------- metrics ----

/// Throughput in MMAC/s for a run (nominal MACs, measured cycles).
double mmac_per_s(uint64_t macs, uint64_t cycles, const TechParams& tech = {});

/// Energy efficiency in GMAC/s/W.
double gmac_per_s_per_w(double mmacs, double power_mw);

/// Energy per inference in microjoules.
double energy_per_run_uj(uint64_t cycles, double power_mw, const TechParams& tech = {});

}  // namespace rnnasip::impl_model
