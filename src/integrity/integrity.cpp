#include "src/integrity/integrity.h"

#include <cstring>
#include <sstream>

#include "src/common/check.h"
#include "src/kernels/layout.h"

namespace rnnasip::integrity {

uint32_t fold_halves(std::span<const int16_t> halves) {
  uint32_t acc = 0;
  size_t i = 0;
  for (; i + 1 < halves.size(); i += 2) {
    const uint32_t lo = static_cast<uint16_t>(halves[i]);
    const uint32_t hi = static_cast<uint16_t>(halves[i + 1]);
    acc += lo | (hi << 16);
  }
  if (i < halves.size()) acc += static_cast<uint16_t>(halves[i]);
  return acc;
}

GoldenChecks golden_checks(const rrm::RrmNetwork& net,
                           const activation::PlaTable& tanh_tbl,
                           const activation::PlaTable& sig_tbl,
                           std::span<const int16_t> input) {
  rrm::RrmNetwork::Golden golden(net, tanh_tbl, sig_tbl);
  GoldenChecks g;
  g.outputs = golden.forward_layers(input);
  g.folds.reserve(g.outputs.size());
  for (const auto& out : g.outputs) g.folds.push_back(fold_halves(out));
  return g;
}

namespace {

void fnv_bytes(uint64_t& h, const void* p, size_t n) {
  const auto* b = static_cast<const uint8_t*>(p);
  for (size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ull;
  }
}

template <typename T>
void fnv_pod(uint64_t& h, const T& v) {
  fnv_bytes(h, &v, sizeof(v));
}

void fnv_table(uint64_t& h, const activation::PlaTable& t) {
  fnv_bytes(h, t.slopes().data(), t.slopes().size() * sizeof(int16_t));
  fnv_bytes(h, t.offsets().data(), t.offsets().size() * sizeof(int16_t));
}

}  // namespace

uint64_t Checkpoint::digest() const {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  fnv_bytes(h, core.x.data(), core.x.size() * sizeof(uint32_t));
  fnv_pod(h, core.pc);
  fnv_bytes(h, core.spr.data(), core.spr.size() * sizeof(uint32_t));
  for (const auto& l : core.loops) {
    fnv_pod(h, l.start);
    fnv_pod(h, l.end);
    fnv_pod(h, l.count);
  }
  fnv_table(h, core.tanh_table);
  fnv_table(h, core.sig_table);
  fnv_pod(h, core.csr_cycle);
  fnv_pod(h, core.csr_instret);
  fnv_pod(h, core.csr_mscratch);
  fnv_pod(h, core.prev_mem_unpaired);
  fnv_pod(h, core.last_was_load);
  fnv_pod(h, core.last_load_rd);
  fnv_pod(h, core.last_load_op);
  fnv_pod(h, core.last_load_pc);
  fnv_pod(h, core.last_sdotsp_spr);
  fnv_pod(h, data_lo);
  fnv_pod(h, next_check);
  fnv_bytes(h, data.data(), data.size());
  return h;
}

Checkpoint take_checkpoint(const exec::ExecutionBackend& backend,
                           const iss::Memory& mem, uint32_t data_lo,
                           uint32_t data_bytes, int next_check) {
  Checkpoint cp;
  cp.core = backend.snapshot();
  cp.data_lo = data_lo;
  cp.data = mem.read_block(data_lo, data_bytes);
  cp.next_check = next_check;
  return cp;
}

void restore_checkpoint(exec::ExecutionBackend* backend, iss::Memory* mem,
                        const Checkpoint& cp) {
  backend->restore(cp.core);
  mem->write_block(cp.data_lo, cp.data);
}

CheckedRun::CheckedRun(exec::ExecutionBackend* backend, iss::Memory* mem,
                       const kernels::BuiltNetwork* net, CheckedRunConfig cfg)
    : backend_(backend), mem_(mem), net_(net), cfg_(cfg) {
  RNNASIP_CHECK_MSG(!net_->checks.empty(),
                    "CheckedRun needs an integrity-instrumented program "
                    "(NetworkProgramBuilder::set_integrity)");
}

void CheckedRun::set_golden(GoldenChecks golden) {
  RNNASIP_CHECK_MSG(golden.folds.size() == net_->checks.size(),
                    "golden oracle has " << golden.folds.size()
                                         << " layers, program checks "
                                         << net_->checks.size());
  golden_ = std::move(golden);
}

void CheckedRun::begin(std::span<const int16_t> input) {
  RNNASIP_CHECK_MSG(!cfg_.detect || golden_.has_value(),
                    "detection enabled without a golden oracle");
  if (golden_) {
    // The final boundary's fold window must be the served output buffer,
    // or the post-ebreak re-fold would compare different bytes.
    RNNASIP_CHECK(net_->checks.back().out_addr == net_->output_addr);
    RNNASIP_CHECK(net_->checks.back().out_count == net_->output_count);
  }
  kernels::reset_state(*mem_, *net_);
  RNNASIP_CHECK(static_cast<int>(input.size()) == net_->input_count);
  mem_->write_halves(net_->input_addr, input);
  backend_->reset(net_->program.base);
  cycles_ = 0;
  wd_remaining_ = cfg_.watchdog_cycles;
  counters_ = IntegrityCounters{};
  outputs_.clear();
  last_result_ = iss::RunResult{};
  retries_left_ = cfg_.layer_retries;
  first_detection_ = -1;
  integrity_failed_ = false;
  cp_ = take_checkpoint(*backend_, *mem_, kernels::kDataBase, net_->data_bytes, 0);
}

CheckedRun::State CheckedRun::step() {
  step_base_ = counters_;
  for (;;) {
    iss::RunLimits lim;
    lim.max_cycles = wd_remaining_;  // 0 = unbounded (cfg watchdog off)
    const auto res = backend_->run(lim);
    cycles_ += res.cycles;
    if (cfg_.watchdog_cycles != 0) {
      wd_remaining_ = res.cycles < wd_remaining_ ? wd_remaining_ - res.cycles : 0;
      if (wd_remaining_ == 0 && res.exit != iss::RunResult::Exit::kEbreak &&
          res.exit != iss::RunResult::Exit::kWatchdog) {
        // Budget exhausted exactly at a segment edge: report it as the
        // watchdog kill it would have been one cycle later.
        last_result_ = res;
        last_result_.exit = iss::RunResult::Exit::kWatchdog;
        last_result_.trap = iss::Trap{iss::TrapCause::kWatchdog, res.pc, 0,
                                      "cycle watchdog expired at a layer boundary"};
        last_result_.trap_message = last_result_.trap.message;
        return State::kFailed;
      }
    }
    switch (res.exit) {
      case iss::RunResult::Exit::kEcall: {
        const int boundary = cp_.next_check;
        RNNASIP_CHECK_MSG(boundary < static_cast<int>(net_->checks.size()),
                          "unexpected ecall past the last layer check");
        const auto& chk = net_->checks[static_cast<size_t>(boundary)];
        bool pass = true;
        if (cfg_.detect && golden_) {
          ++counters_.checks;
          const uint32_t want = golden_->folds[static_cast<size_t>(boundary)];
          const uint32_t dev = mem_->load32(chk.slot);
          const uint32_t host = fold_halves(
              mem_->read_halves(chk.out_addr, static_cast<size_t>(chk.out_count)));
          pass = dev == want && host == want;
        }
        if (!pass) {
          ++counters_.detections;
          if (first_detection_ < 0) first_detection_ = boundary;
          if (fail_or_rollback(res, /*mismatch=*/true, boundary) == State::kFailed)
            return State::kFailed;
          continue;  // rolled back; re-run the layer
        }
        backend_->set_pc(res.pc + 4);
        cp_ = take_checkpoint(*backend_, *mem_, kernels::kDataBase,
                              net_->data_bytes, boundary + 1);
        retries_left_ = cfg_.layer_retries;
        last_result_ = res;
        return State::kBoundary;
      }
      case iss::RunResult::Exit::kEbreak: {
        outputs_ =
            mem_->read_halves(net_->output_addr, static_cast<size_t>(net_->output_count));
        bool pass = true;
        if (cfg_.detect && golden_) {
          // Post-readout re-fold: closes the window between the last
          // in-program fold and the bytes actually served.
          ++counters_.checks;
          pass = fold_halves(outputs_) == golden_->folds.back();
        }
        if (!pass) {
          ++counters_.detections;
          const int boundary = static_cast<int>(net_->checks.size()) - 1;
          if (first_detection_ < 0) first_detection_ = boundary;
          outputs_.clear();
          if (fail_or_rollback(res, /*mismatch=*/true, boundary) == State::kFailed)
            return State::kFailed;
          continue;
        }
        last_result_ = res;
        return State::kDone;
      }
      case iss::RunResult::Exit::kTrap: {
        if (fail_or_rollback(res, /*mismatch=*/false, cp_.next_check) == State::kFailed)
          return State::kFailed;
        continue;
      }
      case iss::RunResult::Exit::kWatchdog:
      case iss::RunResult::Exit::kMaxInstrs:
        last_result_ = res;
        return State::kFailed;
    }
  }
}

CheckedRun::State CheckedRun::fail_or_rollback(const iss::RunResult& res, bool mismatch,
                                               int boundary) {
  if (!cfg_.rollback || retries_left_ <= 0) {
    last_result_ = res;
    if (mismatch) {
      integrity_failed_ = true;
      std::ostringstream os;
      os << "abft fold mismatch at layer boundary " << boundary;
      if (boundary >= 0 && boundary < static_cast<int>(net_->checks.size()))
        os << " (" << net_->checks[static_cast<size_t>(boundary)].name << ")";
      last_result_.exit = iss::RunResult::Exit::kTrap;
      last_result_.trap = iss::Trap{iss::TrapCause::kIntegrityMismatch, res.pc, 0, os.str()};
      last_result_.trap_message = last_result_.trap.message;
    }
    return State::kFailed;
  }
  --retries_left_;
  ++counters_.rollbacks;
  counters_.rollback_cycles += res.cycles;
  restore_checkpoint(backend_, mem_, cp_);
  return State::kBoundary;
}

void CheckedRun::resume(exec::ExecutionBackend* backend, iss::Memory* mem,
                        const Checkpoint& cp) {
  backend_ = backend;
  mem_ = mem;
  cp_ = cp;
  restore_checkpoint(backend_, mem_, cp_);
  retries_left_ = cfg_.layer_retries;
}

}  // namespace rnnasip::integrity
