// Integrity-and-recovery harness: ABFT layer-checksum verification plus
// layer-boundary checkpoint/rollback over an instrumented network program.
//
// Detection. An integrity build (NetworkProgramBuilder::set_integrity)
// folds each layer's output into a TCDM slot and yields with ecall at
// every layer boundary (BuiltNetwork::checks). The host computes the same
// fold over the *golden* per-layer outputs — the bit-exact fixed-point
// reference evaluated from the verified weights (rrm::Golden) — once per
// request input. At each boundary the harness requires both the device
// slot and its own re-fold of the output bytes to equal the golden fold:
// any SEU that perturbs the layer's weight/accumulate/activation path, or
// the output buffer itself, is flagged at the boundary it corrupts. After
// the final ebreak the served output bytes are re-folded once more, which
// closes the window between the last in-program fold and the read-out.
// A silent escape therefore requires a fold collision — a multi-bit
// corruption whose word-wise sum mod 2^32 is exactly zero. Single-bit
// flips can never collide (the sum moves by +/-2^b), and unlike a parity
// fold the modular sum also catches correlated same-direction shifts
// across many halfwords (e.g. one corrupted PLA segment offsetting every
// output through it by the same power of two).
//
// Recovery. After every verified boundary the harness snapshots the full
// resumable state (iss::CoreSnapshot — regfile, pc, SPRs, hw loops, PLA
// LUTs, CSRs, pipeline hazard state — plus the private TCDM data window).
// A detected mismatch, or a trap inside a layer, restores the previous
// boundary's checkpoint and re-executes just that layer, up to
// `layer_retries` times per boundary; exhaustion escalates to the
// caller's request-level retry/quarantine ladder. The same checkpoints
// let a scheduler suspend a request at a boundary and resume it later —
// on any core — bit-identically (Checkpoint::resume via CheckedRun).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/exec/backend.h"
#include "src/iss/core.h"
#include "src/iss/memory.h"
#include "src/kernels/network.h"
#include "src/rrm/networks.h"

namespace rnnasip::integrity {

/// Modular-sum word-fold over halfwords, mirroring
/// kernels::emit_fold_checksum bit-for-bit: consecutive pairs form
/// little-endian 32-bit words summed mod 2^32, an odd trailing halfword
/// folds in zero-extended.
uint32_t fold_halves(std::span<const int16_t> halves);

/// The golden oracle for one (network, input) pair: bit-exact per-layer
/// outputs and their folds, in device layer order.
struct GoldenChecks {
  std::vector<std::vector<int16_t>> outputs;
  std::vector<uint32_t> folds;
};

/// Evaluate the host reference (fresh recurrent state) for `input`.
GoldenChecks golden_checks(const rrm::RrmNetwork& net,
                           const activation::PlaTable& tanh_tbl,
                           const activation::PlaTable& sig_tbl,
                           std::span<const int16_t> input);

/// One layer-boundary checkpoint: everything needed to re-execute from
/// the boundary — full core state plus the private TCDM data window
/// (activations, recurrent state, fold slots). Weights are not included:
/// they live in the read-only parameter region the checkpoint's core
/// never wrote.
struct Checkpoint {
  iss::CoreSnapshot core;
  uint32_t data_lo = 0;
  std::vector<uint8_t> data;
  int next_check = 0;  ///< boundaries already verified
  /// FNV-1a over the architectural state + TCDM window (round-trip tests).
  uint64_t digest() const;
};

/// Checkpoints are taken from / restored into any execution backend: the
/// snapshot type is shared, so a checkpoint taken under the ISS restores
/// bit-exactly under the translated core and vice versa.
Checkpoint take_checkpoint(const exec::ExecutionBackend& backend,
                           const iss::Memory& mem, uint32_t data_lo,
                           uint32_t data_bytes, int next_check);
void restore_checkpoint(exec::ExecutionBackend* backend, iss::Memory* mem,
                        const Checkpoint& cp);

struct CheckedRunConfig {
  bool detect = true;     ///< verify ABFT folds (requires set_golden)
  bool rollback = true;   ///< re-execute a corrupted layer from its checkpoint
  int layer_retries = 2;  ///< rollback budget per boundary (resets on success)
  /// Whole-execution cycle watchdog across all segments including rolled-
  /// back ones; 0 = unbounded.
  uint64_t watchdog_cycles = 0;
};

struct IntegrityCounters {
  uint64_t checks = 0;          ///< boundary verifications performed
  uint64_t detections = 0;      ///< fold mismatches flagged
  uint64_t rollbacks = 0;       ///< layer re-executions
  uint64_t rollback_cycles = 0; ///< cycles burned by discarded segments
};

/// Drives one instrumented program execution segment by segment. Usage:
///
///   CheckedRun run(&backend, &mem, &net, cfg);
///   run.set_golden(golden_checks(...));        // when cfg.detect
///   run.begin(input);
///   while (run.step() == CheckedRun::State::kBoundary) {
///     // optional: suspend here via checkpoint()/resume()
///   }
///   // State::kDone -> run.outputs(); State::kFailed -> run.last_result()
///
/// The driving backend/memory can change between steps (resume()): a
/// suspended run carries its whole state in the checkpoint, and because
/// checkpoints are backend-agnostic the target may even run a different
/// backend than the source.
class CheckedRun {
 public:
  enum class State { kBoundary, kDone, kFailed };

  CheckedRun(exec::ExecutionBackend* backend, iss::Memory* mem,
             const kernels::BuiltNetwork* net, CheckedRunConfig cfg);

  void set_golden(GoldenChecks golden);

  /// Reset recurrent state, write the input, reset the core, and take the
  /// initial (boundary-0) checkpoint.
  void begin(std::span<const int16_t> input);

  /// Run until the next verified layer boundary, the final ebreak, or an
  /// unrecoverable failure; rollbacks happen internally.
  State step();

  /// Re-point the run at another backend/memory and restore `cp` there —
  /// layer-boundary preemption migration. The program image for this
  /// network must already be bound on the target.
  void resume(exec::ExecutionBackend* backend, iss::Memory* mem,
              const Checkpoint& cp);

  const Checkpoint& checkpoint() const { return cp_; }
  uint64_t cycles() const { return cycles_; }
  const IntegrityCounters& counters() const { return counters_; }
  /// Counter deltas accrued by the most recent step() — how many of that
  /// segment's cycles were rollback re-execution, how many detections it
  /// flagged. Lets a caller attribute per-segment work (telemetry spans)
  /// without diffing whole-run counters itself.
  IntegrityCounters step_counters() const {
    return {counters_.checks - step_base_.checks,
            counters_.detections - step_base_.detections,
            counters_.rollbacks - step_base_.rollbacks,
            counters_.rollback_cycles - step_base_.rollback_cycles};
  }
  const std::vector<int16_t>& outputs() const { return outputs_; }
  /// The terminating RunResult; after an ABFT detection that exhausted its
  /// rollback budget this is a synthesized kTrap with kIntegrityMismatch.
  const iss::RunResult& last_result() const { return last_result_; }
  /// True when the failure was an integrity detection (vs a real trap).
  bool integrity_failed() const { return integrity_failed_; }
  /// Boundary index of the first detection, -1 if none.
  int first_detection_at() const { return first_detection_; }
  int next_check() const { return cp_.next_check; }

 private:
  State fail_or_rollback(const iss::RunResult& res, bool mismatch, int boundary);

  exec::ExecutionBackend* backend_;
  iss::Memory* mem_;
  const kernels::BuiltNetwork* net_;
  CheckedRunConfig cfg_;
  std::optional<GoldenChecks> golden_;
  Checkpoint cp_;
  IntegrityCounters counters_;
  IntegrityCounters step_base_;  ///< counters_ snapshot at step() entry
  std::vector<int16_t> outputs_;
  iss::RunResult last_result_;
  uint64_t cycles_ = 0;
  uint64_t wd_remaining_ = 0;
  int retries_left_ = 0;
  int first_detection_ = -1;
  bool integrity_failed_ = false;
};

}  // namespace rnnasip::integrity
