#include "src/isa/decode.h"

#include <array>
#include <vector>

#include "src/common/bits.h"
#include "src/isa/registers.h"

namespace rnnasip::isa {
namespace {

/// Spec rows bucketed by major opcode, built once.
const std::vector<const OpcodeInfo*>& bucket(uint8_t major) {
  static const auto buckets = [] {
    std::array<std::vector<const OpcodeInfo*>, 128> b{};
    for (const auto& row : all_opcodes()) b[row.major].push_back(&row);
    return b;
  }();
  return buckets[major & 0x7F];
}

Instr extract(const OpcodeInfo& s, uint32_t w) {
  Instr in;
  in.op = s.op;
  const uint8_t rd = static_cast<uint8_t>(bits(w, 11, 7));
  const uint8_t rs1 = static_cast<uint8_t>(bits(w, 19, 15));
  const uint8_t rs2 = static_cast<uint8_t>(bits(w, 24, 20));
  switch (s.format) {
    case Format::kR:
    case Format::kSimdR:
      in.rd = rd, in.rs1 = rs1, in.rs2 = rs2;
      break;
    case Format::kI:
      in.rd = rd, in.rs1 = rs1;
      in.imm = sign_extend(bits(w, 31, 20), 12);
      break;
    case Format::kShift:
    case Format::kClip:
    case Format::kSimdImm:
      in.rd = rd, in.rs1 = rs1;
      in.imm = static_cast<int32_t>(rs2);
      break;
    case Format::kS:
      in.rs1 = rs1, in.rs2 = rs2;
      in.imm = sign_extend((bits(w, 31, 25) << 5) | bits(w, 11, 7), 12);
      break;
    case Format::kB:
      in.rs1 = rs1, in.rs2 = rs2;
      in.imm = sign_extend((bit(w, 31) << 12) | (bit(w, 7) << 11) |
                               (bits(w, 30, 25) << 5) | (bits(w, 11, 8) << 1),
                           13);
      break;
    case Format::kU:
      in.rd = rd;
      in.imm = static_cast<int32_t>(bits(w, 31, 12));
      break;
    case Format::kJ:
      in.rd = rd;
      in.imm = sign_extend((bit(w, 31) << 20) | (bits(w, 19, 12) << 12) |
                               (bit(w, 20) << 11) | (bits(w, 30, 21) << 1),
                           21);
      break;
    case Format::kSys:
      break;
    case Format::kCsr:
      in.rd = rd, in.rs1 = rs1;
      in.imm = static_cast<int32_t>(bits(w, 31, 20));
      break;
    case Format::kHwlImm:
      in.rd = static_cast<uint8_t>(rd & 1);
      if (s.op == Opcode::kLpCounti) {
        in.imm = static_cast<int32_t>(bits(w, 31, 20));
      } else {
        in.imm = static_cast<int32_t>(bits(w, 31, 20) << 1);
      }
      break;
    case Format::kHwlReg:
      in.rd = static_cast<uint8_t>(rd & 1);
      in.rs1 = rs1;
      break;
    case Format::kHwlSetup:
      in.rd = static_cast<uint8_t>(rd & 1);
      in.rs1 = rs1;
      in.imm = static_cast<int32_t>(bits(w, 31, 20) << 1);
      break;
    case Format::kHwlSetupImm:
      in.rd = static_cast<uint8_t>(rd & 1);
      in.imm = static_cast<int32_t>(bits(w, 31, 20));
      in.imm2 = static_cast<int32_t>(bits(w, 19, 15) << 1);
      break;
    case Format::kAct:
      in.rd = rd, in.rs1 = rs1;
      break;
  }
  return in;
}

/// Does spec row `s` match word `w` beyond the major opcode?
bool matches(const OpcodeInfo& s, uint32_t w) {
  const uint8_t f3 = static_cast<uint8_t>(bits(w, 14, 12));
  const uint8_t f7 = static_cast<uint8_t>(bits(w, 31, 25));
  switch (s.format) {
    case Format::kU:
    case Format::kJ:
      return true;
    case Format::kI:
    case Format::kS:
    case Format::kB:
    case Format::kHwlImm:
    case Format::kHwlReg:
    case Format::kHwlSetup:
    case Format::kHwlSetupImm:
      return s.funct3 == f3;
    case Format::kR:
    case Format::kShift:
    case Format::kClip:
    case Format::kSimdR:
    case Format::kSimdImm:
    case Format::kAct:
      return s.funct3 == f3 && s.funct7 == f7;
    case Format::kSys:
      if (s.op == Opcode::kFence) return true;
      if (s.op == Opcode::kEcall) return f3 == 0 && bits(w, 31, 20) == 0;
      if (s.op == Opcode::kEbreak) return f3 == 0 && bits(w, 31, 20) == 1;
      return false;
    case Format::kCsr:
      return s.funct3 == f3;
  }
  return false;
}

}  // namespace

std::optional<Instr> decode(uint32_t word) {
  if ((word & 0x3) != 0x3) return std::nullopt;  // not a 32-bit encoding
  for (const OpcodeInfo* s : bucket(static_cast<uint8_t>(word & 0x7F))) {
    if (!matches(*s, word)) continue;
    Instr in = extract(*s, word);
    // A hardware loop whose end offset is zero would be an empty body;
    // such encodings are reserved (the encoder refuses to produce them).
    if (in.op == Opcode::kLpSetup && in.imm == 0) return std::nullopt;
    if (in.op == Opcode::kLpSetupi && in.imm2 == 0) return std::nullopt;
    return in;
  }
  return std::nullopt;
}

namespace {

constexpr uint8_t creg(uint32_t v) { return static_cast<uint8_t>(8 + (v & 7)); }

Instr base(Opcode op, uint8_t rd, uint8_t rs1, uint8_t rs2, int32_t imm) {
  Instr in;
  in.op = op;
  in.rd = rd;
  in.rs1 = rs1;
  in.rs2 = rs2;
  in.imm = imm;
  in.size = 2;
  return in;
}

}  // namespace

std::optional<Instr> decode_compressed(uint16_t h) {
  const uint32_t w = h;
  const uint32_t op = w & 0x3;
  const uint32_t f3 = bits(w, 15, 13);
  if (w == 0) return std::nullopt;  // defined illegal

  if (op == 0) {  // quadrant 0
    switch (f3) {
      case 0b000: {  // c.addi4spn
        const int32_t imm = static_cast<int32_t>((bits(w, 12, 11) << 4) |
                                                 (bits(w, 10, 7) << 6) |
                                                 (bit(w, 6) << 2) | (bit(w, 5) << 3));
        if (imm == 0) return std::nullopt;
        return base(Opcode::kAddi, creg(bits(w, 4, 2)), kSp, 0, imm);
      }
      case 0b010: {  // c.lw
        const int32_t imm = static_cast<int32_t>((bit(w, 5) << 6) |
                                                 (bits(w, 12, 10) << 3) | (bit(w, 6) << 2));
        return base(Opcode::kLw, creg(bits(w, 4, 2)), creg(bits(w, 9, 7)), 0, imm);
      }
      case 0b110: {  // c.sw
        const int32_t imm = static_cast<int32_t>((bit(w, 5) << 6) |
                                                 (bits(w, 12, 10) << 3) | (bit(w, 6) << 2));
        return base(Opcode::kSw, 0, creg(bits(w, 9, 7)), creg(bits(w, 4, 2)), imm);
      }
      default:
        return std::nullopt;
    }
  }

  if (op == 1) {  // quadrant 1
    const uint8_t rd = static_cast<uint8_t>(bits(w, 11, 7));
    const int32_t imm6 = sign_extend((bit(w, 12) << 5) | bits(w, 6, 2), 6);
    // c.jal/c.j offset scatter: imm[11|4|9:8|10|6|7|3:1|5] <- bits [12:2].
    const int32_t joff = sign_extend(
        (bit(w, 12) << 11) | (bit(w, 11) << 4) | (bits(w, 10, 9) << 8) |
            (bit(w, 8) << 10) | (bit(w, 7) << 6) | (bit(w, 6) << 7) |
            (bits(w, 5, 3) << 1) | (bit(w, 2) << 5),
        12);
    // c.beqz/c.bnez offset scatter: imm[8|4:3|7:6|2:1|5] <- [12|11:10|6:5|4:3|2].
    const int32_t boff = sign_extend(
        (bit(w, 12) << 8) | (bits(w, 11, 10) << 3) | (bits(w, 6, 5) << 6) |
            (bits(w, 4, 3) << 1) | (bit(w, 2) << 5),
        9);
    switch (f3) {
      case 0b000:  // c.addi / c.nop
        if (rd != 0 && imm6 == 0) return std::nullopt;  // HINT
        if (rd == 0 && imm6 != 0) return std::nullopt;  // HINT
        return base(Opcode::kAddi, rd, rd, 0, imm6);
      case 0b001:  // c.jal (RV32)
        return base(Opcode::kJal, kRa, 0, 0, joff);
      case 0b010:  // c.li
        if (rd == 0) return std::nullopt;  // HINT
        return base(Opcode::kAddi, rd, kZero, 0, imm6);
      case 0b011: {
        if (rd == kSp) {  // c.addi16sp
          const int32_t imm = sign_extend((bit(w, 12) << 9) | (bit(w, 6) << 4) |
                                              (bit(w, 5) << 6) | (bits(w, 4, 3) << 7) |
                                              (bit(w, 2) << 5),
                                          10);
          if (imm == 0) return std::nullopt;
          return base(Opcode::kAddi, kSp, kSp, 0, imm);
        }
        if (imm6 == 0 || rd == 0) return std::nullopt;  // reserved / HINT
        return base(Opcode::kLui, rd, 0, 0, imm6 & 0xFFFFF);  // c.lui
      }
      case 0b100: {
        const uint8_t rdp = creg(bits(w, 9, 7));
        const uint8_t rs2p = creg(bits(w, 4, 2));
        const uint32_t f2 = bits(w, 11, 10);
        if (f2 == 0b00 || f2 == 0b01) {  // c.srli / c.srai
          if (bit(w, 12)) return std::nullopt;  // RV32: shamt[5] must be 0
          const int32_t shamt = static_cast<int32_t>(bits(w, 6, 2));
          if (shamt == 0) return std::nullopt;  // HINT
          return base(f2 == 0 ? Opcode::kSrli : Opcode::kSrai, rdp, rdp, 0, shamt);
        }
        if (f2 == 0b10) return base(Opcode::kAndi, rdp, rdp, 0, imm6);  // c.andi
        switch (bits(w, 6, 5)) {  // f2 == 0b11, bit 12 == 0 for RV32 ops
          case 0b00: return base(Opcode::kSub, rdp, rdp, rs2p, 0);
          case 0b01: return base(Opcode::kXor, rdp, rdp, rs2p, 0);
          case 0b10: return base(Opcode::kOr, rdp, rdp, rs2p, 0);
          case 0b11: return base(Opcode::kAnd, rdp, rdp, rs2p, 0);
        }
        return std::nullopt;
      }
      case 0b101:  // c.j
        return base(Opcode::kJal, kZero, 0, 0, joff);
      case 0b110:  // c.beqz
        return base(Opcode::kBeq, 0, creg(bits(w, 9, 7)), kZero, boff);
      case 0b111:  // c.bnez
        return base(Opcode::kBne, 0, creg(bits(w, 9, 7)), kZero, boff);
    }
    return std::nullopt;
  }

  if (op == 2) {  // quadrant 2
    const uint8_t rd = static_cast<uint8_t>(bits(w, 11, 7));
    const uint8_t rs2 = static_cast<uint8_t>(bits(w, 6, 2));
    switch (f3) {
      case 0b000: {  // c.slli
        if (bit(w, 12)) return std::nullopt;
        const int32_t shamt = static_cast<int32_t>(bits(w, 6, 2));
        if (shamt == 0 || rd == 0) return std::nullopt;  // HINT
        return base(Opcode::kSlli, rd, rd, 0, shamt);
      }
      case 0b010: {  // c.lwsp
        if (rd == 0) return std::nullopt;
        const int32_t imm = static_cast<int32_t>((bits(w, 3, 2) << 6) |
                                                 (bit(w, 12) << 5) | (bits(w, 6, 4) << 2));
        return base(Opcode::kLw, rd, kSp, 0, imm);
      }
      case 0b100: {
        if (bit(w, 12) == 0) {
          if (rs2 == 0) {  // c.jr
            if (rd == 0) return std::nullopt;
            return base(Opcode::kJalr, kZero, rd, 0, 0);
          }
          if (rd == 0) return std::nullopt;              // c.mv to x0: HINT
          return base(Opcode::kAdd, rd, kZero, rs2, 0);  // c.mv
        }
        if (rs2 == 0 && rd == 0) return base(Opcode::kEbreak, 0, 0, 0, 0);
        if (rs2 == 0) return base(Opcode::kJalr, kRa, rd, 0, 0);  // c.jalr
        if (rd == 0) return std::nullopt;                         // c.add to x0: HINT
        return base(Opcode::kAdd, rd, rd, rs2, 0);                // c.add
      }
      case 0b110: {  // c.swsp
        const int32_t imm = static_cast<int32_t>((bits(w, 8, 7) << 6) |
                                                 (bits(w, 12, 9) << 2));
        return base(Opcode::kSw, 0, kSp, rs2, imm);
      }
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<Instr> decode_any(uint32_t word) {
  if ((word & 0x3) == 0x3) return decode(word);
  return decode_compressed(static_cast<uint16_t>(word & 0xFFFF));
}

}  // namespace rnnasip::isa
