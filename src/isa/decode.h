// Instruction decoder: 32-bit (or 16-bit compressed) word -> Instr.
//
// decode() handles full-width instructions; decode_compressed() expands the
// RV32C subset emitted by GCC for integer code into the equivalent base
// instruction (size = 2 so PC advance and HW-loop boundaries stay correct).
// decode_any() dispatches on the low two bits, as the fetch stage does.
#pragma once

#include <cstdint>
#include <optional>

#include "src/isa/opcode.h"

namespace rnnasip::isa {

/// Decode a 32-bit instruction word. Returns std::nullopt for an illegal or
/// unsupported encoding (the ISS raises an illegal-instruction trap).
std::optional<Instr> decode(uint32_t word);

/// Expand a 16-bit compressed instruction. Returns std::nullopt if illegal.
std::optional<Instr> decode_compressed(uint16_t half);

/// Fetch-stage dispatch: low two bits == 0b11 selects a 32-bit instruction,
/// anything else a compressed one (only the low 16 bits are examined then).
std::optional<Instr> decode_any(uint32_t word);

}  // namespace rnnasip::isa
