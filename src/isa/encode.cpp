#include "src/isa/encode.h"

#include "src/common/bits.h"
#include "src/common/check.h"
#include "src/isa/registers.h"

namespace rnnasip::isa {
namespace {

uint32_t enc_r(const OpcodeInfo& s, uint8_t rd, uint8_t rs1, uint8_t rs2) {
  RNNASIP_CHECK(rd < 32 && rs1 < 32 && rs2 < 32);
  return (uint32_t{s.funct7} << 25) | (uint32_t{rs2} << 20) | (uint32_t{rs1} << 15) |
         (uint32_t{s.funct3} << 12) | (uint32_t{rd} << 7) | s.major;
}

uint32_t enc_i(const OpcodeInfo& s, uint8_t rd, uint8_t rs1, int32_t imm) {
  RNNASIP_CHECK(rd < 32 && rs1 < 32);
  RNNASIP_CHECK_MSG(fits_signed(imm, 12), s.mnemonic << " imm " << imm);
  return (static_cast<uint32_t>(imm & 0xFFF) << 20) | (uint32_t{rs1} << 15) |
         (uint32_t{s.funct3} << 12) | (uint32_t{rd} << 7) | s.major;
}

uint32_t enc_s(const OpcodeInfo& s, uint8_t rs1, uint8_t rs2, int32_t imm) {
  RNNASIP_CHECK(rs1 < 32 && rs2 < 32);
  RNNASIP_CHECK_MSG(fits_signed(imm, 12), s.mnemonic << " imm " << imm);
  const uint32_t u = static_cast<uint32_t>(imm);
  return (bits(u, 11, 5) << 25) | (uint32_t{rs2} << 20) | (uint32_t{rs1} << 15) |
         (uint32_t{s.funct3} << 12) | (bits(u, 4, 0) << 7) | s.major;
}

uint32_t enc_b(const OpcodeInfo& s, uint8_t rs1, uint8_t rs2, int32_t imm) {
  RNNASIP_CHECK(rs1 < 32 && rs2 < 32);
  RNNASIP_CHECK_MSG(fits_signed(imm, 13) && (imm & 1) == 0,
                    s.mnemonic << " branch offset " << imm);
  const uint32_t u = static_cast<uint32_t>(imm);
  return (bit(u, 12) << 31) | (bits(u, 10, 5) << 25) | (uint32_t{rs2} << 20) |
         (uint32_t{rs1} << 15) | (uint32_t{s.funct3} << 12) | (bits(u, 4, 1) << 8) |
         (bit(u, 11) << 7) | s.major;
}

uint32_t enc_u(const OpcodeInfo& s, uint8_t rd, int32_t imm) {
  RNNASIP_CHECK(rd < 32);
  RNNASIP_CHECK_MSG(fits_unsigned(static_cast<uint32_t>(imm), 20),
                    s.mnemonic << " imm20 " << imm);
  return (static_cast<uint32_t>(imm) << 12) | (uint32_t{rd} << 7) | s.major;
}

uint32_t enc_j(const OpcodeInfo& s, uint8_t rd, int32_t imm) {
  RNNASIP_CHECK(rd < 32);
  RNNASIP_CHECK_MSG(fits_signed(imm, 21) && (imm & 1) == 0,
                    s.mnemonic << " jump offset " << imm);
  const uint32_t u = static_cast<uint32_t>(imm);
  return (bit(u, 20) << 31) | (bits(u, 10, 1) << 21) | (bit(u, 11) << 20) |
         (bits(u, 19, 12) << 12) | (uint32_t{rd} << 7) | s.major;
}

}  // namespace

uint32_t encode(const Instr& in) {
  const OpcodeInfo& s = opcode_info(in.op);
  switch (s.format) {
    case Format::kR:
      return enc_r(s, in.rd, in.rs1, in.rs2);
    case Format::kI:
      return enc_i(s, in.rd, in.rs1, in.imm);
    case Format::kShift: {
      RNNASIP_CHECK_MSG(in.imm >= 0 && in.imm < 32, s.mnemonic << " shamt " << in.imm);
      return enc_r(s, in.rd, in.rs1, static_cast<uint8_t>(in.imm));
    }
    case Format::kClip: {
      // imm = clip width in bits (1..31), carried in the rs2 field.
      RNNASIP_CHECK_MSG(in.imm >= 1 && in.imm < 32, s.mnemonic << " width " << in.imm);
      return enc_r(s, in.rd, in.rs1, static_cast<uint8_t>(in.imm));
    }
    case Format::kS:
      return enc_s(s, in.rs1, in.rs2, in.imm);
    case Format::kB:
      return enc_b(s, in.rs1, in.rs2, in.imm);
    case Format::kU:
      return enc_u(s, in.rd, in.imm);
    case Format::kJ:
      return enc_j(s, in.rd, in.imm);
    case Format::kSys:
      if (in.op == Opcode::kFence) return 0x0000000Fu;
      if (in.op == Opcode::kEcall) return 0x00000073u;
      if (in.op == Opcode::kEbreak) return 0x00100073u;
      RNNASIP_CHECK_MSG(false, "unknown system instruction");
      break;
    case Format::kCsr:
      RNNASIP_CHECK(in.rd < 32 && in.rs1 < 32);
      RNNASIP_CHECK_MSG(fits_unsigned(static_cast<uint32_t>(in.imm), 12),
                        s.mnemonic << " csr address " << in.imm);
      return (static_cast<uint32_t>(in.imm) << 20) | (uint32_t{in.rs1} << 15) |
             (uint32_t{s.funct3} << 12) | (uint32_t{in.rd} << 7) | s.major;
    case Format::kHwlImm: {
      // rd carries the loop index L; imm is a PC-relative byte offset for
      // starti/endi (must be even, unsigned) or the iteration count for
      // counti (unsigned 12 bits).
      RNNASIP_CHECK(in.rd < 2);
      if (in.op == Opcode::kLpCounti) {
        RNNASIP_CHECK_MSG(fits_unsigned(static_cast<uint32_t>(in.imm), 12),
                          "lp.counti count " << in.imm);
        return (static_cast<uint32_t>(in.imm) << 20) | (uint32_t{s.funct3} << 12) |
               (uint32_t{in.rd} << 7) | s.major;
      }
      RNNASIP_CHECK_MSG(in.imm >= 0 && (in.imm & 1) == 0 && fits_unsigned(in.imm >> 1, 12),
                        s.mnemonic << " offset " << in.imm);
      return ((static_cast<uint32_t>(in.imm) >> 1) << 20) | (uint32_t{s.funct3} << 12) |
             (uint32_t{in.rd} << 7) | s.major;
    }
    case Format::kHwlReg:
      RNNASIP_CHECK(in.rd < 2 && in.rs1 < 32);
      return (uint32_t{in.rs1} << 15) | (uint32_t{s.funct3} << 12) |
             (uint32_t{in.rd} << 7) | s.major;
    case Format::kHwlSetup:
      // rs1 = iteration count register, imm = loop end offset in bytes.
      RNNASIP_CHECK(in.rd < 2 && in.rs1 < 32);
      RNNASIP_CHECK_MSG(in.imm > 0 && (in.imm & 1) == 0 && fits_unsigned(in.imm >> 1, 12),
                        "lp.setup end offset " << in.imm);
      return ((static_cast<uint32_t>(in.imm) >> 1) << 20) | (uint32_t{in.rs1} << 15) |
             (uint32_t{s.funct3} << 12) | (uint32_t{in.rd} << 7) | s.major;
    case Format::kHwlSetupImm:
      // imm = iteration count (12-bit unsigned); imm2 = end offset in bytes
      // (5-bit unsigned half-word offset in the rs1 field, i.e. <= 62 bytes).
      RNNASIP_CHECK(in.rd < 2);
      RNNASIP_CHECK_MSG(fits_unsigned(static_cast<uint32_t>(in.imm), 12),
                        "lp.setupi count " << in.imm);
      RNNASIP_CHECK_MSG(in.imm2 > 0 && (in.imm2 & 1) == 0 && fits_unsigned(in.imm2 >> 1, 5),
                        "lp.setupi end offset " << in.imm2);
      return (static_cast<uint32_t>(in.imm) << 20) |
             ((static_cast<uint32_t>(in.imm2) >> 1) << 15) | (uint32_t{s.funct3} << 12) |
             (uint32_t{in.rd} << 7) | s.major;
    case Format::kSimdR:
      return enc_r(s, in.rd, in.rs1, in.rs2);
    case Format::kSimdImm:
      // imm = element index, carried in the rs2 field (0..1 for .h).
      RNNASIP_CHECK_MSG(in.imm >= 0 && in.imm < 32, s.mnemonic << " index " << in.imm);
      return enc_r(s, in.rd, in.rs1, static_cast<uint8_t>(in.imm));
    case Format::kAct:
      return enc_r(s, in.rd, in.rs1, 0);
  }
  RNNASIP_CHECK_MSG(false, "unhandled format");
}

namespace {

bool is_creg(uint8_t r) { return r >= 8 && r <= 15; }
constexpr uint32_t cr(uint8_t r) { return static_cast<uint32_t>(r - 8); }

/// c.j / c.jal offset scatter: imm[11|4|9:8|10|6|7|3:1|5] into bits [12:2].
uint16_t cj_scatter(int32_t off) {
  const uint32_t u = static_cast<uint32_t>(off);
  return static_cast<uint16_t>((bit(u, 11) << 12) | (bit(u, 4) << 11) |
                               (bits(u, 9, 8) << 9) | (bit(u, 10) << 8) |
                               (bit(u, 6) << 7) | (bit(u, 7) << 6) | (bits(u, 3, 1) << 3) |
                               (bit(u, 5) << 2));
}

/// c.beqz / c.bnez offset scatter: imm[8|4:3|7:6|2:1|5] into [12|11:10|6:5|4:3|2].
uint16_t cb_scatter(int32_t off) {
  const uint32_t u = static_cast<uint32_t>(off);
  return static_cast<uint16_t>((bit(u, 8) << 12) | (bits(u, 4, 3) << 10) |
                               (bits(u, 7, 6) << 5) | (bits(u, 2, 1) << 3) |
                               (bit(u, 5) << 2));
}

}  // namespace

std::optional<uint16_t> try_compress(const Instr& in) {
  const int32_t imm = in.imm;
  switch (in.op) {
    case Opcode::kAddi:
      if (in.rd == 0 && in.rs1 == 0 && imm == 0) return 0x0001;  // c.nop
      if (in.rd == kSp && in.rs1 == kSp && imm != 0 && (imm & 0xF) == 0 &&
          fits_signed(imm, 10)) {  // c.addi16sp
        const uint32_t u = static_cast<uint32_t>(imm);
        return static_cast<uint16_t>(0x6101 | (bit(u, 9) << 12) | (bit(u, 4) << 6) |
                                     (bit(u, 6) << 5) | (bits(u, 8, 7) << 3) |
                                     (bit(u, 5) << 2));
      }
      if (is_creg(in.rd) && in.rs1 == kSp && imm > 0 && (imm & 0x3) == 0 &&
          fits_unsigned(static_cast<uint32_t>(imm), 10)) {  // c.addi4spn
        const uint32_t u = static_cast<uint32_t>(imm);
        return static_cast<uint16_t>(0x0000 | (bits(u, 5, 4) << 11) | (bits(u, 9, 6) << 7) |
                                     (bit(u, 2) << 6) | (bit(u, 3) << 5) | (cr(in.rd) << 2));
      }
      if (in.rd != 0 && in.rs1 == 0 && fits_signed(imm, 6)) {  // c.li
        const uint32_t u = static_cast<uint32_t>(imm);
        return static_cast<uint16_t>(0x4001 | (bit(u, 5) << 12) |
                                     (static_cast<uint32_t>(in.rd) << 7) |
                                     (bits(u, 4, 0) << 2));
      }
      if (in.rd != 0 && in.rs1 != 0 && imm == 0) {  // c.mv
        return static_cast<uint16_t>(0x8002 | (static_cast<uint32_t>(in.rd) << 7) |
                                     (static_cast<uint32_t>(in.rs1) << 2));
      }
      if (in.rd != 0 && in.rd == in.rs1 && imm != 0 && fits_signed(imm, 6)) {  // c.addi
        const uint32_t u = static_cast<uint32_t>(imm);
        return static_cast<uint16_t>(0x0001 | (bit(u, 5) << 12) |
                                     (static_cast<uint32_t>(in.rd) << 7) |
                                     (bits(u, 4, 0) << 2));
      }
      return std::nullopt;
    case Opcode::kLui:
      if (in.rd != 0 && in.rd != kSp) {
        // The 20-bit field must be the sign extension of its low 6 bits.
        const int32_t v = sign_extend(static_cast<uint32_t>(imm) & 0x3F, 6);
        if ((v & 0xFFFFF) == imm && v != 0) {
          const uint32_t u = static_cast<uint32_t>(v);
          return static_cast<uint16_t>(0x6001 | (bit(u, 5) << 12) |
                                       (static_cast<uint32_t>(in.rd) << 7) |
                                       (bits(u, 4, 0) << 2));
        }
      }
      return std::nullopt;
    case Opcode::kLw:
      if (in.rd != 0 && in.rs1 == kSp && imm >= 0 && (imm & 3) == 0 &&
          fits_unsigned(static_cast<uint32_t>(imm), 8)) {  // c.lwsp
        const uint32_t u = static_cast<uint32_t>(imm);
        return static_cast<uint16_t>(0x4002 | (bit(u, 5) << 12) |
                                     (static_cast<uint32_t>(in.rd) << 7) |
                                     (bits(u, 4, 2) << 4) | (bits(u, 7, 6) << 2));
      }
      if (is_creg(in.rd) && is_creg(in.rs1) && imm >= 0 && (imm & 3) == 0 &&
          fits_unsigned(static_cast<uint32_t>(imm), 7)) {  // c.lw
        const uint32_t u = static_cast<uint32_t>(imm);
        return static_cast<uint16_t>(0x4000 | (bits(u, 5, 3) << 10) | (cr(in.rs1) << 7) |
                                     (bit(u, 2) << 6) | (bit(u, 6) << 5) | (cr(in.rd) << 2));
      }
      return std::nullopt;
    case Opcode::kSw:
      if (in.rs1 == kSp && imm >= 0 && (imm & 3) == 0 &&
          fits_unsigned(static_cast<uint32_t>(imm), 8)) {  // c.swsp
        const uint32_t u = static_cast<uint32_t>(imm);
        return static_cast<uint16_t>(0xC002 | (bits(u, 5, 2) << 9) | (bits(u, 7, 6) << 7) |
                                     (static_cast<uint32_t>(in.rs2) << 2));
      }
      if (is_creg(in.rs2) && is_creg(in.rs1) && imm >= 0 && (imm & 3) == 0 &&
          fits_unsigned(static_cast<uint32_t>(imm), 7)) {  // c.sw
        const uint32_t u = static_cast<uint32_t>(imm);
        return static_cast<uint16_t>(0xC000 | (bits(u, 5, 3) << 10) | (cr(in.rs1) << 7) |
                                     (bit(u, 2) << 6) | (bit(u, 6) << 5) | (cr(in.rs2) << 2));
      }
      return std::nullopt;
    case Opcode::kSlli:
      if (in.rd != 0 && in.rd == in.rs1 && imm >= 1 && imm < 32) {
        return static_cast<uint16_t>(0x0002 | (static_cast<uint32_t>(in.rd) << 7) |
                                     (static_cast<uint32_t>(imm) << 2));
      }
      return std::nullopt;
    case Opcode::kSrli:
    case Opcode::kSrai:
      if (is_creg(in.rd) && in.rd == in.rs1 && imm >= 1 && imm < 32) {
        const uint32_t f2 = in.op == Opcode::kSrli ? 0u : 1u;
        return static_cast<uint16_t>(0x8001 | (f2 << 10) | (cr(in.rd) << 7) |
                                     (static_cast<uint32_t>(imm) << 2));
      }
      return std::nullopt;
    case Opcode::kAndi:
      if (is_creg(in.rd) && in.rd == in.rs1 && fits_signed(imm, 6)) {
        const uint32_t u = static_cast<uint32_t>(imm);
        return static_cast<uint16_t>(0x8801 | (bit(u, 5) << 12) | (cr(in.rd) << 7) |
                                     (bits(u, 4, 0) << 2));
      }
      return std::nullopt;
    case Opcode::kSub:
    case Opcode::kXor:
    case Opcode::kOr:
    case Opcode::kAnd: {
      if (!(is_creg(in.rd) && in.rd == in.rs1 && is_creg(in.rs2))) return std::nullopt;
      uint32_t f2;
      switch (in.op) {
        case Opcode::kSub: f2 = 0; break;
        case Opcode::kXor: f2 = 1; break;
        case Opcode::kOr: f2 = 2; break;
        default: f2 = 3; break;
      }
      return static_cast<uint16_t>(0x8C01 | (f2 << 5) | (cr(in.rd) << 7) |
                                   (cr(in.rs2) << 2));
    }
    case Opcode::kAdd:
      if (in.rd != 0 && in.rs2 != 0 && in.rs1 == 0) {  // c.mv
        return static_cast<uint16_t>(0x8002 | (static_cast<uint32_t>(in.rd) << 7) |
                                     (static_cast<uint32_t>(in.rs2) << 2));
      }
      if (in.rd != 0 && in.rd == in.rs1 && in.rs2 != 0) {  // c.add
        return static_cast<uint16_t>(0x9002 | (static_cast<uint32_t>(in.rd) << 7) |
                                     (static_cast<uint32_t>(in.rs2) << 2));
      }
      return std::nullopt;
    case Opcode::kJal:
      if ((imm & 1) == 0 && fits_signed(imm, 12)) {
        if (in.rd == kZero) return static_cast<uint16_t>(0xA001 | cj_scatter(imm));
        if (in.rd == kRa) return static_cast<uint16_t>(0x2001 | cj_scatter(imm));
      }
      return std::nullopt;
    case Opcode::kJalr:
      if (in.rs1 != 0 && imm == 0) {
        if (in.rd == kZero) {
          return static_cast<uint16_t>(0x8002 | (static_cast<uint32_t>(in.rs1) << 7));
        }
        if (in.rd == kRa) {
          return static_cast<uint16_t>(0x9002 | (static_cast<uint32_t>(in.rs1) << 7));
        }
      }
      return std::nullopt;
    case Opcode::kBeq:
    case Opcode::kBne:
      if (is_creg(in.rs1) && in.rs2 == kZero && (imm & 1) == 0 && fits_signed(imm, 9)) {
        const uint16_t base = in.op == Opcode::kBeq ? 0xC001 : 0xE001;
        return static_cast<uint16_t>(base | cb_scatter(imm) | (cr(in.rs1) << 7));
      }
      return std::nullopt;
    case Opcode::kEbreak:
      return 0x9002;
    default:
      return std::nullopt;
  }
}

}  // namespace rnnasip::isa
