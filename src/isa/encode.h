// Instruction encoder: Instr -> 32-bit instruction word.
//
// Encoding is driven by the spec table in opcode.h; operand ranges are
// checked (RNNASIP_CHECK) so kernel generators fail loudly on unencodable
// operands instead of emitting corrupt words.
#pragma once

#include <cstdint>
#include <optional>

#include "src/isa/opcode.h"

namespace rnnasip::isa {

/// Encode a decoded instruction back into its 32-bit word.
/// Throws (via RNNASIP_CHECK) if an operand does not fit its field.
uint32_t encode(const Instr& instr);

/// Try to express `instr` as a 16-bit compressed instruction (the RV32C
/// subset decode_compressed understands). Returns std::nullopt when the
/// instruction or its operands have no compressed form. Round-trip
/// guarantee: decode_compressed(*try_compress(i)) reproduces i's opcode and
/// operands (with size 2).
std::optional<uint16_t> try_compress(const Instr& instr);

}  // namespace rnnasip::isa
