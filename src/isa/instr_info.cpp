#include "src/isa/instr_info.h"

namespace rnnasip::isa {

bool is_gpr_load(Opcode op) {
  switch (op) {
    case Opcode::kLb:
    case Opcode::kLh:
    case Opcode::kLw:
    case Opcode::kLbu:
    case Opcode::kLhu:
    case Opcode::kPLb:
    case Opcode::kPLh:
    case Opcode::kPLw:
    case Opcode::kPLbu:
    case Opcode::kPLhu:
    case Opcode::kPLwRr:
    case Opcode::kPLhRr:
      return true;
    default:
      return false;
  }
}

bool is_rmw(Opcode op) {
  switch (op) {
    case Opcode::kPMac:
    case Opcode::kPMsu:
    case Opcode::kPvSdotspH:
    case Opcode::kPvSdotupH:
    case Opcode::kPvSdotspB:
    case Opcode::kPvSdotspScH:
    case Opcode::kPvInsertH:
    case Opcode::kPlSdotspH0:
    case Opcode::kPlSdotspH1:
      return true;
    default:
      return false;
  }
}

namespace {

/// Post-increment forms write rs1 back after the access.
bool writes_rs1_back(Opcode op) {
  switch (op) {
    case Opcode::kPLb:
    case Opcode::kPLbu:
    case Opcode::kPLh:
    case Opcode::kPLhu:
    case Opcode::kPLw:
    case Opcode::kPLwRr:
    case Opcode::kPLhRr:
    case Opcode::kPSb:
    case Opcode::kPSh:
    case Opcode::kPSw:
    case Opcode::kPlSdotspH0:
    case Opcode::kPlSdotspH1:
      return true;
    default:
      return false;
  }
}

}  // namespace

RegUse reg_use(const Instr& in) {
  const OpcodeInfo& s = opcode_info(in.op);
  RegUse u;
  switch (s.format) {
    case Format::kR:
    case Format::kSimdR:
      u.reads_rs1 = u.reads_rs2 = true;
      u.reads_rd = is_rmw(in.op);
      u.writes_rd = true;
      break;
    case Format::kI:        // alu-imm, loads, post-inc loads, jalr
    case Format::kShift:
    case Format::kClip:
    case Format::kAct:
    case Format::kCsr:
      u.reads_rs1 = true;
      u.writes_rd = true;
      break;
    case Format::kSimdImm:
      u.reads_rs1 = true;
      u.reads_rd = is_rmw(in.op);
      u.writes_rd = true;
      break;
    case Format::kS:        // stores, post-inc stores
    case Format::kB:
      u.reads_rs1 = u.reads_rs2 = true;
      break;
    case Format::kU:
    case Format::kJ:
      u.writes_rd = true;
      break;
    case Format::kHwlReg:   // lp.count L, rs1
    case Format::kHwlSetup: // lp.setup L, rs1, end — rd is the loop index
      u.reads_rs1 = true;
      break;
    case Format::kSys:
    case Format::kHwlImm:
    case Format::kHwlSetupImm:
      break;
  }
  u.writes_rs1 = writes_rs1_back(in.op);
  return u;
}

bool reads_reg(const Instr& in, uint8_t r) {
  if (r == 0) return false;
  const RegUse u = reg_use(in);
  return (u.reads_rs1 && in.rs1 == r) || (u.reads_rs2 && in.rs2 == r) ||
         (u.reads_rd && in.rd == r);
}

bool writes_reg(const Instr& in, uint8_t r) {
  if (r == 0) return false;
  const RegUse u = reg_use(in);
  return (u.writes_rd && in.rd == r) || (u.writes_rs1 && in.rs1 == r);
}

bool is_branch(Opcode op) {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
      return true;
    default:
      return false;
  }
}

bool is_jump(Opcode op) { return op == Opcode::kJal || op == Opcode::kJalr; }

bool is_control(Opcode op) {
  return is_branch(op) || is_jump(op) || op == Opcode::kEcall ||
         op == Opcode::kEbreak;
}

std::optional<uint32_t> direct_target(const Instr& in, uint32_t pc) {
  if (is_branch(in.op) || in.op == Opcode::kJal)
    return pc + static_cast<uint32_t>(in.imm);
  return std::nullopt;
}

std::optional<HwlSetup> hwl_setup(const Instr& in, uint32_t pc) {
  HwlSetup h;
  h.loop = in.rd & 1;
  h.start = pc + 4;
  if (in.op == Opcode::kLpSetup) {
    h.end = pc + static_cast<uint32_t>(in.imm);
    h.count_reg = in.rs1;
    return h;
  }
  if (in.op == Opcode::kLpSetupi) {
    h.end = pc + static_cast<uint32_t>(in.imm2);
    h.count_imm = static_cast<uint32_t>(in.imm);
    return h;
  }
  return std::nullopt;
}

std::optional<MemAccess> mem_access(const Instr& in) {
  MemAccess m;
  m.addr_reg = in.rs1;
  switch (in.op) {
    case Opcode::kLb: case Opcode::kLbu:
      m.bytes = 1; m.offset = in.imm; return m;
    case Opcode::kLh: case Opcode::kLhu:
      m.bytes = 2; m.offset = in.imm; return m;
    case Opcode::kLw:
      m.bytes = 4; m.offset = in.imm; return m;
    case Opcode::kSb:
      m.bytes = 1; m.offset = in.imm; m.is_store = true; return m;
    case Opcode::kSh:
      m.bytes = 2; m.offset = in.imm; m.is_store = true; return m;
    case Opcode::kSw:
      m.bytes = 4; m.offset = in.imm; m.is_store = true; return m;
    case Opcode::kPLb: case Opcode::kPLbu:
      m.bytes = 1; m.post_inc = in.imm; return m;
    case Opcode::kPLh: case Opcode::kPLhu:
      m.bytes = 2; m.post_inc = in.imm; return m;
    case Opcode::kPLw:
      m.bytes = 4; m.post_inc = in.imm; return m;
    case Opcode::kPLhRr:
      m.bytes = 2; m.reg_post_inc = true; return m;
    case Opcode::kPLwRr:
      m.bytes = 4; m.reg_post_inc = true; return m;
    case Opcode::kPSb:
      m.bytes = 1; m.post_inc = in.imm; m.is_store = true; return m;
    case Opcode::kPSh:
      m.bytes = 2; m.post_inc = in.imm; m.is_store = true; return m;
    case Opcode::kPSw:
      m.bytes = 4; m.post_inc = in.imm; m.is_store = true; return m;
    case Opcode::kPlSdotspH0:
    case Opcode::kPlSdotspH1:
      m.bytes = 4; m.post_inc = 4; return m;  // LSU half: weight-word stream
    default:
      return std::nullopt;
  }
}

}  // namespace rnnasip::isa
