// Per-instruction metadata derived from the spec table: register read/write
// sets (including post-increment rs1 writes and read-modify-write rd reads),
// control-flow classification with direct target computation, hardware-loop
// setup decoding, and memory-access shape.
//
// This is the single place that knows which Instr fields an opcode actually
// uses. The ISS keys its hazard detection off it and the static verifier
// (src/analysis) keys its CFG recovery and dataflow off it, so the two can
// never drift apart.
#pragma once

#include <cstdint>
#include <optional>

#include "src/isa/opcode.h"

namespace rnnasip::isa {

/// Which GPR operands an instruction reads and writes. The hardware-loop
/// formats never touch GPRs through `rd` (that field holds the loop index).
struct RegUse {
  bool reads_rs1 = false;
  bool reads_rs2 = false;
  bool reads_rd = false;    ///< read-modify-write accumulate (p.mac, sdotsp)
  bool writes_rd = false;
  bool writes_rs1 = false;  ///< post-increment addressing side effect
};

RegUse reg_use(const Instr& in);

/// Does `in` read GPR `r`? x0 never counts (matches the ISS hazard rule).
bool reads_reg(const Instr& in, uint8_t r);

/// Does `in` write GPR `r`? x0 never counts (writes to x0 are discarded).
bool writes_reg(const Instr& in, uint8_t r);

/// Loads that produce a GPR result (candidates for load-use interlocks).
bool is_gpr_load(Opcode op);

/// Instructions that also read their destination (read-modify-write).
bool is_rmw(Opcode op);

/// Conditional branches (beq..bgeu).
bool is_branch(Opcode op);

/// Unconditional control transfers (jal/jalr).
bool is_jump(Opcode op);

/// Any instruction that may redirect or terminate sequential flow
/// (branch, jump, ecall/ebreak).
bool is_control(Opcode op);

/// Resolved pc-relative target of a conditional branch or jal at `pc`.
/// Empty for everything else (including jalr, whose target is indirect).
std::optional<uint32_t> direct_target(const Instr& in, uint32_t pc);

/// Decoded lp.setup / lp.setupi operands. `count_reg` is meaningful only
/// when `count_imm` is empty (register-count form).
struct HwlSetup {
  int loop = 0;                      ///< loop register set index (0 or 1)
  uint32_t start = 0;                ///< first body instruction address
  uint32_t end = 0;                  ///< first address past the body
  std::optional<uint32_t> count_imm; ///< lp.setupi immediate count
  uint8_t count_reg = 0;             ///< lp.setup count register
};

std::optional<HwlSetup> hwl_setup(const Instr& in, uint32_t pc);

/// Shape of a data-memory access. `pl.sdotsp.h.{0,1}` reports as a 4-byte
/// load with post-increment 4 (its LSU half).
struct MemAccess {
  uint32_t bytes = 0;        ///< access width: 1, 2 or 4
  bool is_store = false;
  uint8_t addr_reg = 0;      ///< base address register (rs1)
  int32_t offset = 0;        ///< static offset (0 for post-increment forms)
  int32_t post_inc = 0;      ///< immediate added to rs1 after the access
  bool reg_post_inc = false; ///< rs1 += rs2 instead (p.lw rd, rs2(rs1!))
};

std::optional<MemAccess> mem_access(const Instr& in);

}  // namespace rnnasip::isa
