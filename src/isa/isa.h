// Umbrella header for the ISA library.
#pragma once

#include "src/isa/decode.h"    // IWYU pragma: export
#include "src/isa/encode.h"    // IWYU pragma: export
#include "src/isa/opcode.h"    // IWYU pragma: export
#include "src/isa/registers.h" // IWYU pragma: export
