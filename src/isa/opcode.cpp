#include "src/isa/opcode.h"

#include <array>

#include "src/common/check.h"
#include "src/isa/registers.h"

namespace rnnasip::isa {
namespace {

constexpr uint8_t kNA = 0xFF;

// Major opcodes.
constexpr uint8_t kMajLoad = 0x03;
constexpr uint8_t kMajPostIncLoad = 0x0B;   // custom-0
constexpr uint8_t kMajFence = 0x0F;
constexpr uint8_t kMajOpImm = 0x13;
constexpr uint8_t kMajAuipc = 0x17;
constexpr uint8_t kMajStore = 0x23;
constexpr uint8_t kMajPostIncStore = 0x2B;  // custom-1
constexpr uint8_t kMajOp = 0x33;
constexpr uint8_t kMajLui = 0x37;
constexpr uint8_t kMajSimd = 0x57;
constexpr uint8_t kMajBranch = 0x63;
constexpr uint8_t kMajJalr = 0x67;
constexpr uint8_t kMajJal = 0x6F;
constexpr uint8_t kMajSystem = 0x73;
constexpr uint8_t kMajRnn = 0x77;           // custom: paper's RNN extensions
constexpr uint8_t kMajHwLoop = 0x7B;        // hardware loop setup

// SIMD sub-opcode, placed in funct7 as (op << 2).
constexpr uint8_t simd_f7(uint8_t sub) { return static_cast<uint8_t>(sub << 2); }

constexpr std::array kTable = {
    // ------------------------------- RV32I -------------------------------
    OpcodeInfo{Opcode::kLui, "lui", Format::kU, Unit::kAlu, kMajLui, kNA, kNA},
    OpcodeInfo{Opcode::kAuipc, "auipc", Format::kU, Unit::kAlu, kMajAuipc, kNA, kNA},
    OpcodeInfo{Opcode::kJal, "jal", Format::kJ, Unit::kJump, kMajJal, kNA, kNA},
    OpcodeInfo{Opcode::kJalr, "jalr", Format::kI, Unit::kJump, kMajJalr, 0, kNA},
    OpcodeInfo{Opcode::kBeq, "beq", Format::kB, Unit::kBranch, kMajBranch, 0, kNA},
    OpcodeInfo{Opcode::kBne, "bne", Format::kB, Unit::kBranch, kMajBranch, 1, kNA},
    OpcodeInfo{Opcode::kBlt, "blt", Format::kB, Unit::kBranch, kMajBranch, 4, kNA},
    OpcodeInfo{Opcode::kBge, "bge", Format::kB, Unit::kBranch, kMajBranch, 5, kNA},
    OpcodeInfo{Opcode::kBltu, "bltu", Format::kB, Unit::kBranch, kMajBranch, 6, kNA},
    OpcodeInfo{Opcode::kBgeu, "bgeu", Format::kB, Unit::kBranch, kMajBranch, 7, kNA},
    OpcodeInfo{Opcode::kLb, "lb", Format::kI, Unit::kLoad, kMajLoad, 0, kNA},
    OpcodeInfo{Opcode::kLh, "lh", Format::kI, Unit::kLoad, kMajLoad, 1, kNA},
    OpcodeInfo{Opcode::kLw, "lw", Format::kI, Unit::kLoad, kMajLoad, 2, kNA},
    OpcodeInfo{Opcode::kLbu, "lbu", Format::kI, Unit::kLoad, kMajLoad, 4, kNA},
    OpcodeInfo{Opcode::kLhu, "lhu", Format::kI, Unit::kLoad, kMajLoad, 5, kNA},
    OpcodeInfo{Opcode::kSb, "sb", Format::kS, Unit::kStore, kMajStore, 0, kNA},
    OpcodeInfo{Opcode::kSh, "sh", Format::kS, Unit::kStore, kMajStore, 1, kNA},
    OpcodeInfo{Opcode::kSw, "sw", Format::kS, Unit::kStore, kMajStore, 2, kNA},
    OpcodeInfo{Opcode::kAddi, "addi", Format::kI, Unit::kAlu, kMajOpImm, 0, kNA},
    OpcodeInfo{Opcode::kSlti, "slti", Format::kI, Unit::kAlu, kMajOpImm, 2, kNA},
    OpcodeInfo{Opcode::kSltiu, "sltiu", Format::kI, Unit::kAlu, kMajOpImm, 3, kNA},
    OpcodeInfo{Opcode::kXori, "xori", Format::kI, Unit::kAlu, kMajOpImm, 4, kNA},
    OpcodeInfo{Opcode::kOri, "ori", Format::kI, Unit::kAlu, kMajOpImm, 6, kNA},
    OpcodeInfo{Opcode::kAndi, "andi", Format::kI, Unit::kAlu, kMajOpImm, 7, kNA},
    OpcodeInfo{Opcode::kSlli, "slli", Format::kShift, Unit::kAlu, kMajOpImm, 1, 0x00},
    OpcodeInfo{Opcode::kSrli, "srli", Format::kShift, Unit::kAlu, kMajOpImm, 5, 0x00},
    OpcodeInfo{Opcode::kSrai, "srai", Format::kShift, Unit::kAlu, kMajOpImm, 5, 0x20},
    OpcodeInfo{Opcode::kAdd, "add", Format::kR, Unit::kAlu, kMajOp, 0, 0x00},
    OpcodeInfo{Opcode::kSub, "sub", Format::kR, Unit::kAlu, kMajOp, 0, 0x20},
    OpcodeInfo{Opcode::kSll, "sll", Format::kR, Unit::kAlu, kMajOp, 1, 0x00},
    OpcodeInfo{Opcode::kSlt, "slt", Format::kR, Unit::kAlu, kMajOp, 2, 0x00},
    OpcodeInfo{Opcode::kSltu, "sltu", Format::kR, Unit::kAlu, kMajOp, 3, 0x00},
    OpcodeInfo{Opcode::kXor, "xor", Format::kR, Unit::kAlu, kMajOp, 4, 0x00},
    OpcodeInfo{Opcode::kSrl, "srl", Format::kR, Unit::kAlu, kMajOp, 5, 0x00},
    OpcodeInfo{Opcode::kSra, "sra", Format::kR, Unit::kAlu, kMajOp, 5, 0x20},
    OpcodeInfo{Opcode::kOr, "or", Format::kR, Unit::kAlu, kMajOp, 6, 0x00},
    OpcodeInfo{Opcode::kAnd, "and", Format::kR, Unit::kAlu, kMajOp, 7, 0x00},
    OpcodeInfo{Opcode::kFence, "fence", Format::kSys, Unit::kSystem, kMajFence, 0, kNA},
    OpcodeInfo{Opcode::kEcall, "ecall", Format::kSys, Unit::kSystem, kMajSystem, 0, kNA},
    OpcodeInfo{Opcode::kEbreak, "ebreak", Format::kSys, Unit::kSystem, kMajSystem, 0, kNA},
    OpcodeInfo{Opcode::kCsrrw, "csrrw", Format::kCsr, Unit::kSystem, kMajSystem, 1, kNA},
    OpcodeInfo{Opcode::kCsrrs, "csrrs", Format::kCsr, Unit::kSystem, kMajSystem, 2, kNA},
    OpcodeInfo{Opcode::kCsrrc, "csrrc", Format::kCsr, Unit::kSystem, kMajSystem, 3, kNA},
    // ------------------------------- RV32M -------------------------------
    OpcodeInfo{Opcode::kMul, "mul", Format::kR, Unit::kMul, kMajOp, 0, 0x01},
    OpcodeInfo{Opcode::kMulh, "mulh", Format::kR, Unit::kMul, kMajOp, 1, 0x01},
    OpcodeInfo{Opcode::kMulhsu, "mulhsu", Format::kR, Unit::kMul, kMajOp, 2, 0x01},
    OpcodeInfo{Opcode::kMulhu, "mulhu", Format::kR, Unit::kMul, kMajOp, 3, 0x01},
    OpcodeInfo{Opcode::kDiv, "div", Format::kR, Unit::kDiv, kMajOp, 4, 0x01},
    OpcodeInfo{Opcode::kDivu, "divu", Format::kR, Unit::kDiv, kMajOp, 5, 0x01},
    OpcodeInfo{Opcode::kRem, "rem", Format::kR, Unit::kDiv, kMajOp, 6, 0x01},
    OpcodeInfo{Opcode::kRemu, "remu", Format::kR, Unit::kDiv, kMajOp, 7, 0x01},
    // --------------------- Xpulp post-increment load/store ----------------
    OpcodeInfo{Opcode::kPLb, "p.lb", Format::kI, Unit::kLoad, kMajPostIncLoad, 0, kNA},
    OpcodeInfo{Opcode::kPLh, "p.lh", Format::kI, Unit::kLoad, kMajPostIncLoad, 1, kNA},
    OpcodeInfo{Opcode::kPLw, "p.lw", Format::kI, Unit::kLoad, kMajPostIncLoad, 2, kNA},
    OpcodeInfo{Opcode::kPLbu, "p.lbu", Format::kI, Unit::kLoad, kMajPostIncLoad, 4, kNA},
    OpcodeInfo{Opcode::kPLhu, "p.lhu", Format::kI, Unit::kLoad, kMajPostIncLoad, 5, kNA},
    // Register-register post-increment loads: R-format at the load major;
    // funct3 values disjoint from the immediate forms, so decode is exact.
    OpcodeInfo{Opcode::kPLwRr, "p.lw.rr", Format::kR, Unit::kLoad, kMajPostIncLoad, 3, 0x00},
    OpcodeInfo{Opcode::kPLhRr, "p.lh.rr", Format::kR, Unit::kLoad, kMajPostIncLoad, 7, 0x00},
    OpcodeInfo{Opcode::kPSb, "p.sb", Format::kS, Unit::kStore, kMajPostIncStore, 0, kNA},
    OpcodeInfo{Opcode::kPSh, "p.sh", Format::kS, Unit::kStore, kMajPostIncStore, 1, kNA},
    OpcodeInfo{Opcode::kPSw, "p.sw", Format::kS, Unit::kStore, kMajPostIncStore, 2, kNA},
    // --------------------------- Xpulp scalar ALU -------------------------
    OpcodeInfo{Opcode::kPAbs, "p.abs", Format::kR, Unit::kAlu, kMajOp, 0, 0x02},
    OpcodeInfo{Opcode::kPExths, "p.exths", Format::kR, Unit::kAlu, kMajOp, 2, 0x02},
    OpcodeInfo{Opcode::kPExthz, "p.exthz", Format::kR, Unit::kAlu, kMajOp, 3, 0x02},
    OpcodeInfo{Opcode::kPExtbs, "p.extbs", Format::kR, Unit::kAlu, kMajOp, 4, 0x02},
    OpcodeInfo{Opcode::kPExtbz, "p.extbz", Format::kR, Unit::kAlu, kMajOp, 5, 0x02},
    OpcodeInfo{Opcode::kPMin, "p.min", Format::kR, Unit::kAlu, kMajOp, 0, 0x04},
    OpcodeInfo{Opcode::kPMinu, "p.minu", Format::kR, Unit::kAlu, kMajOp, 1, 0x04},
    OpcodeInfo{Opcode::kPMax, "p.max", Format::kR, Unit::kAlu, kMajOp, 2, 0x04},
    OpcodeInfo{Opcode::kPMaxu, "p.maxu", Format::kR, Unit::kAlu, kMajOp, 3, 0x04},
    OpcodeInfo{Opcode::kPMac, "p.mac", Format::kR, Unit::kMul, kMajOp, 0, 0x21},
    OpcodeInfo{Opcode::kPMsu, "p.msu", Format::kR, Unit::kMul, kMajOp, 1, 0x21},
    OpcodeInfo{Opcode::kPClip, "p.clip", Format::kClip, Unit::kAlu, kMajOp, 1, 0x0A},
    OpcodeInfo{Opcode::kPClipu, "p.clipu", Format::kClip, Unit::kAlu, kMajOp, 2, 0x0A},
    // --------------------------- Xpulp HW loops ---------------------------
    OpcodeInfo{Opcode::kLpStarti, "lp.starti", Format::kHwlImm, Unit::kHwLoop, kMajHwLoop, 0, kNA},
    OpcodeInfo{Opcode::kLpEndi, "lp.endi", Format::kHwlImm, Unit::kHwLoop, kMajHwLoop, 1, kNA},
    OpcodeInfo{Opcode::kLpCount, "lp.count", Format::kHwlReg, Unit::kHwLoop, kMajHwLoop, 2, kNA},
    OpcodeInfo{Opcode::kLpCounti, "lp.counti", Format::kHwlImm, Unit::kHwLoop, kMajHwLoop, 3, kNA},
    OpcodeInfo{Opcode::kLpSetup, "lp.setup", Format::kHwlSetup, Unit::kHwLoop, kMajHwLoop, 4, kNA},
    OpcodeInfo{Opcode::kLpSetupi, "lp.setupi", Format::kHwlSetupImm, Unit::kHwLoop, kMajHwLoop, 5, kNA},
    // ------------------------ Xpulp packed SIMD (.h) ----------------------
    OpcodeInfo{Opcode::kPvAddH, "pv.add.h", Format::kSimdR, Unit::kSimd, kMajSimd, 0, simd_f7(0x00)},
    OpcodeInfo{Opcode::kPvSubH, "pv.sub.h", Format::kSimdR, Unit::kSimd, kMajSimd, 0, simd_f7(0x01)},
    OpcodeInfo{Opcode::kPvAvgH, "pv.avg.h", Format::kSimdR, Unit::kSimd, kMajSimd, 0, simd_f7(0x02)},
    OpcodeInfo{Opcode::kPvMinH, "pv.min.h", Format::kSimdR, Unit::kSimd, kMajSimd, 0, simd_f7(0x03)},
    OpcodeInfo{Opcode::kPvMaxH, "pv.max.h", Format::kSimdR, Unit::kSimd, kMajSimd, 0, simd_f7(0x04)},
    OpcodeInfo{Opcode::kPvSrlH, "pv.srl.h", Format::kSimdR, Unit::kSimd, kMajSimd, 0, simd_f7(0x05)},
    OpcodeInfo{Opcode::kPvSraH, "pv.sra.h", Format::kSimdR, Unit::kSimd, kMajSimd, 0, simd_f7(0x06)},
    OpcodeInfo{Opcode::kPvSllH, "pv.sll.h", Format::kSimdR, Unit::kSimd, kMajSimd, 0, simd_f7(0x07)},
    OpcodeInfo{Opcode::kPvAbsH, "pv.abs.h", Format::kSimdR, Unit::kSimd, kMajSimd, 0, simd_f7(0x08)},
    OpcodeInfo{Opcode::kPvPackH, "pv.pack.h", Format::kSimdR, Unit::kSimd, kMajSimd, 0, simd_f7(0x09)},
    OpcodeInfo{Opcode::kPvExtractH, "pv.extract.h", Format::kSimdImm, Unit::kSimd, kMajSimd, 0, simd_f7(0x0A)},
    OpcodeInfo{Opcode::kPvInsertH, "pv.insert.h", Format::kSimdImm, Unit::kSimd, kMajSimd, 0, simd_f7(0x0B)},
    OpcodeInfo{Opcode::kPvDotupH, "pv.dotup.h", Format::kSimdR, Unit::kSimd, kMajSimd, 0, simd_f7(0x0C)},
    OpcodeInfo{Opcode::kPvDotspH, "pv.dotsp.h", Format::kSimdR, Unit::kSimd, kMajSimd, 0, simd_f7(0x0D)},
    OpcodeInfo{Opcode::kPvSdotupH, "pv.sdotup.h", Format::kSimdR, Unit::kSimd, kMajSimd, 0, simd_f7(0x0E)},
    OpcodeInfo{Opcode::kPvSdotspH, "pv.sdotsp.h", Format::kSimdR, Unit::kSimd, kMajSimd, 0, simd_f7(0x0F)},
    // ------------------ Xpulp packed SIMD, scalar replication -------------
    // funct3 = 1 selects .sc.h: rs2's low half is replicated to both lanes.
    OpcodeInfo{Opcode::kPvAddScH, "pv.add.sc.h", Format::kSimdR, Unit::kSimd, kMajSimd, 1, simd_f7(0x00)},
    OpcodeInfo{Opcode::kPvSubScH, "pv.sub.sc.h", Format::kSimdR, Unit::kSimd, kMajSimd, 1, simd_f7(0x01)},
    OpcodeInfo{Opcode::kPvMinScH, "pv.min.sc.h", Format::kSimdR, Unit::kSimd, kMajSimd, 1, simd_f7(0x03)},
    OpcodeInfo{Opcode::kPvMaxScH, "pv.max.sc.h", Format::kSimdR, Unit::kSimd, kMajSimd, 1, simd_f7(0x04)},
    OpcodeInfo{Opcode::kPvSraScH, "pv.sra.sc.h", Format::kSimdR, Unit::kSimd, kMajSimd, 1, simd_f7(0x06)},
    OpcodeInfo{Opcode::kPvDotspScH, "pv.dotsp.sc.h", Format::kSimdR, Unit::kSimd, kMajSimd, 1, simd_f7(0x0D)},
    OpcodeInfo{Opcode::kPvSdotspScH, "pv.sdotsp.sc.h", Format::kSimdR, Unit::kSimd, kMajSimd, 1, simd_f7(0x0F)},
    // ------------------------ Xpulp packed SIMD (.b) ----------------------
    OpcodeInfo{Opcode::kPvAddB, "pv.add.b", Format::kSimdR, Unit::kSimd, kMajSimd, 4, simd_f7(0x00)},
    OpcodeInfo{Opcode::kPvSubB, "pv.sub.b", Format::kSimdR, Unit::kSimd, kMajSimd, 4, simd_f7(0x01)},
    OpcodeInfo{Opcode::kPvMinB, "pv.min.b", Format::kSimdR, Unit::kSimd, kMajSimd, 4, simd_f7(0x03)},
    OpcodeInfo{Opcode::kPvMaxB, "pv.max.b", Format::kSimdR, Unit::kSimd, kMajSimd, 4, simd_f7(0x04)},
    OpcodeInfo{Opcode::kPvDotspB, "pv.dotsp.b", Format::kSimdR, Unit::kSimd, kMajSimd, 4, simd_f7(0x0D)},
    OpcodeInfo{Opcode::kPvSdotspB, "pv.sdotsp.b", Format::kSimdR, Unit::kSimd, kMajSimd, 4, simd_f7(0x0F)},
    // ------------------- RNN extensions (paper, Sec. III) -----------------
    OpcodeInfo{Opcode::kPlSdotspH0, "pl.sdotsp.h.0", Format::kR, Unit::kRnnDot, kMajRnn, 0, 0x00},
    OpcodeInfo{Opcode::kPlSdotspH1, "pl.sdotsp.h.1", Format::kR, Unit::kRnnDot, kMajRnn, 0, 0x01},
    OpcodeInfo{Opcode::kPlTanh, "pl.tanh", Format::kAct, Unit::kActUnit, kMajRnn, 1, 0x02},
    OpcodeInfo{Opcode::kPlSig, "pl.sig", Format::kAct, Unit::kActUnit, kMajRnn, 1, 0x03},
};

}  // namespace

const OpcodeInfo& opcode_info(Opcode op) {
  for (const auto& row : kTable) {
    if (row.op == op) return row;
  }
  RNNASIP_CHECK_MSG(false, "no spec row for opcode " << static_cast<int>(op));
}

std::span<const OpcodeInfo> all_opcodes() { return kTable; }

std::string mnemonic(Opcode op) { return opcode_info(op).mnemonic; }

std::string reg_name(Reg r) {
  static constexpr const char* kNames[32] = {
      "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
      "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
      "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
  RNNASIP_CHECK(r < 32);
  return kNames[r];
}

}  // namespace rnnasip::isa
