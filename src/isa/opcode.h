// Opcode enumeration and the instruction specification table.
//
// The spec table is the single source of truth: encoder, decoder,
// disassembler, and the ISS timing model all key off it, so an instruction
// added here is automatically round-trip tested by the property suite.
//
// Encoding space layout (32-bit instructions, low 7 bits = major opcode):
//   standard RV32IM .... 0x03/0x13/0x23/0x33/0x37/0x17/0x63/0x67/0x6F/0x0F/0x73
//   Xpulp post-inc load  0x0B (custom-0), I-type layout, rs1 post-incremented
//   Xpulp post-inc store 0x2B (custom-1), S-type layout, rs1 post-incremented
//   Xpulp SIMD ......... 0x57, simd-op in [31:27], element size in funct3
//   Xpulp HW loops ..... 0x7B, funct3 selects the setup flavour, L = rd[0]
//   RNN extensions ..... 0x77, funct7 selects pl.sdotsp.h.{0,1}/pl.tanh/pl.sig
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace rnnasip::isa {

enum class Opcode : uint16_t {
  kInvalid = 0,
  // ---- RV32I ----
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kFence, kEcall, kEbreak,
  // ---- Zicsr (counter access: cycle/instret and their high halves) ----
  kCsrrw, kCsrrs, kCsrrc,
  // ---- RV32M ----
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  // ---- Xpulp: post-increment load/store (p.lw rd, imm(rs1!)) ----
  kPLb, kPLbu, kPLh, kPLhu, kPLw,
  kPSb, kPSh, kPSw,
  // ---- Xpulp: register-register post-increment loads (p.lw rd, rs2(rs1!)) ----
  kPLwRr, kPLhRr,
  // ---- Xpulp: scalar ALU extensions ----
  kPAbs, kPExths, kPExthz, kPExtbs, kPExtbz,
  kPMin, kPMinu, kPMax, kPMaxu,
  kPMac, kPMsu,
  kPClip, kPClipu,
  // ---- Xpulp: hardware loops ----
  kLpStarti, kLpEndi, kLpCount, kLpCounti, kLpSetup, kLpSetupi,
  // ---- Xpulp: packed SIMD, 2x16-bit halfwords ----
  kPvAddH, kPvSubH, kPvAvgH, kPvMinH, kPvMaxH,
  kPvSrlH, kPvSraH, kPvSllH,
  kPvAbsH, kPvPackH, kPvExtractH, kPvInsertH,
  kPvDotspH, kPvSdotspH, kPvDotupH, kPvSdotupH,
  // ---- Xpulp: packed SIMD, scalar-replication variants (.sc.h) ----
  kPvAddScH, kPvSubScH, kPvMinScH, kPvMaxScH, kPvSraScH,
  kPvDotspScH, kPvSdotspScH,
  // ---- Xpulp: packed SIMD, 4x8-bit bytes ----
  kPvAddB, kPvSubB, kPvMinB, kPvMaxB, kPvDotspB, kPvSdotspB,
  // ---- RNN extensions (this paper) ----
  kPlSdotspH0, kPlSdotspH1, kPlTanh, kPlSig,
  kCount_,
};

/// Encoding format of an instruction. Determines which Instr fields are
/// meaningful and how they map onto the 32-bit word.
enum class Format : uint8_t {
  kR,            ///< rd, rs1, rs2 (funct7+funct3)
  kI,            ///< rd, rs1, imm12 (also loads and post-inc loads)
  kShift,        ///< rd, rs1, shamt5 (funct7 distinguishes srli/srai)
  kClip,         ///< rd, rs1, uimm5 in rs2 field (p.clip width)
  kS,            ///< rs1, rs2, imm12 split (stores, post-inc stores)
  kB,            ///< rs1, rs2, branch offset (imm13, bit 0 = 0)
  kU,            ///< rd, imm20 << 12
  kJ,            ///< rd, jump offset (imm21)
  kSys,          ///< ecall/ebreak/fence — fixed encodings
  kCsr,          ///< rd, rs1, csr address in imm
  kHwlImm,       ///< loop L (rd bit 0), imm12 (starti/endi/counti)
  kHwlReg,       ///< loop L, rs1 (count)
  kHwlSetup,     ///< loop L, rs1 = iteration count, imm12 = end offset
  kHwlSetupImm,  ///< loop L, imm12 = iteration count, uimm5 (rs1 fld) = end offset
  kSimdR,        ///< rd, rs1, rs2; simd-op in [31:27], elem size in funct3
  kSimdImm,      ///< rd, rs1, uimm5 in rs2 field (extract/insert index)
  kAct,          ///< rd, rs1 (pl.tanh / pl.sig)
};

/// Functional unit an instruction occupies — the timing model and the power
/// model both key off this classification.
enum class Unit : uint8_t {
  kAlu,
  kMul,      ///< single-cycle multiplier / MAC
  kDiv,      ///< iterative divider
  kLoad,
  kStore,
  kBranch,
  kJump,
  kHwLoop,
  kSimd,     ///< packed SIMD datapath (dot products on the MAC unit)
  kRnnDot,   ///< pl.sdotsp.h.x — MAC + LSU in parallel
  kActUnit,  ///< pl.tanh / pl.sig PLA unit
  kSystem,
};

/// One row of the instruction specification table.
struct OpcodeInfo {
  Opcode op = Opcode::kInvalid;
  const char* mnemonic = "";
  Format format = Format::kR;
  Unit unit = Unit::kAlu;
  uint8_t major = 0;   ///< low 7 bits of the instruction word
  uint8_t funct3 = 0;  ///< 0xFF when the format has no funct3
  uint8_t funct7 = 0;  ///< 0xFF when the format has no funct7
};

/// Spec row for `op`. Aborts on kInvalid/kCount_.
const OpcodeInfo& opcode_info(Opcode op);

/// All spec rows (for table-driven property tests).
std::span<const OpcodeInfo> all_opcodes();

/// Mnemonic shorthand ("pv.sdotsp.h", "lp.setupi", ...).
std::string mnemonic(Opcode op);

/// A decoded instruction. `imm2` carries the second immediate of the
/// two-immediate formats (kHwlSetupImm end offset, kClip width).
struct Instr {
  Opcode op = Opcode::kInvalid;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  int32_t imm = 0;
  int32_t imm2 = 0;
  uint8_t size = 4;  ///< 2 for expanded compressed instructions, else 4
};

}  // namespace rnnasip::isa
