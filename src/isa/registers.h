// RISC-V integer register file names (ABI mnemonics).
//
// Kernel generators address registers through these constants; the
// disassembler prints ABI names so traces read like objdump output.
#pragma once

#include <cstdint>
#include <string>

namespace rnnasip::isa {

using Reg = uint8_t;

inline constexpr Reg kZero = 0;  ///< hard-wired zero
inline constexpr Reg kRa = 1;    ///< return address
inline constexpr Reg kSp = 2;    ///< stack pointer
inline constexpr Reg kGp = 3;    ///< global pointer
inline constexpr Reg kTp = 4;    ///< thread pointer
inline constexpr Reg kT0 = 5;
inline constexpr Reg kT1 = 6;
inline constexpr Reg kT2 = 7;
inline constexpr Reg kS0 = 8;  ///< frame pointer
inline constexpr Reg kS1 = 9;
inline constexpr Reg kA0 = 10;
inline constexpr Reg kA1 = 11;
inline constexpr Reg kA2 = 12;
inline constexpr Reg kA3 = 13;
inline constexpr Reg kA4 = 14;
inline constexpr Reg kA5 = 15;
inline constexpr Reg kA6 = 16;
inline constexpr Reg kA7 = 17;
inline constexpr Reg kS2 = 18;
inline constexpr Reg kS3 = 19;
inline constexpr Reg kS4 = 20;
inline constexpr Reg kS5 = 21;
inline constexpr Reg kS6 = 22;
inline constexpr Reg kS7 = 23;
inline constexpr Reg kS8 = 24;
inline constexpr Reg kS9 = 25;
inline constexpr Reg kS10 = 26;
inline constexpr Reg kS11 = 27;
inline constexpr Reg kT3 = 28;
inline constexpr Reg kT4 = 29;
inline constexpr Reg kT5 = 30;
inline constexpr Reg kT6 = 31;

/// ABI name of register `r` ("zero", "ra", "a0", ...). r must be < 32.
std::string reg_name(Reg r);

}  // namespace rnnasip::isa
