#include "src/iss/core.h"

#include <sstream>

#include "src/common/bits.h"
#include "src/common/check.h"
#include "src/isa/decode.h"
#include "src/isa/encode.h"
#include "src/isa/instr_info.h"
#include "src/isa/registers.h"

namespace rnnasip::iss {

using isa::Instr;
using isa::Opcode;

namespace {

bool is_xpulp(Opcode op) {
  return op >= Opcode::kPLb && op <= Opcode::kPvSdotspB;
}

bool is_rnn_ext(Opcode op) {
  return op >= Opcode::kPlSdotspH0 && op <= Opcode::kPlSig;
}

// Register read/write classification is shared with the static verifier
// via src/isa/instr_info.h so hazard detection and dataflow analysis key
// off the same table.
using isa::is_gpr_load;
using isa::is_rmw;
using isa::reads_reg;

int32_t sdot_h(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(half_lo(a)) * half_lo(b) +
         static_cast<int32_t>(half_hi(a)) * half_hi(b);
}

uint32_t udot_h(uint32_t a, uint32_t b) {
  return (a & 0xFFFFu) * (b & 0xFFFFu) + (a >> 16) * (b >> 16);
}

int32_t sdot_b(uint32_t a, uint32_t b) {
  int32_t acc = 0;
  for (int i = 0; i < 4; ++i) {
    acc += static_cast<int32_t>(static_cast<int8_t>(a >> (8 * i))) *
           static_cast<int32_t>(static_cast<int8_t>(b >> (8 * i)));
  }
  return acc;
}

/// Apply `fn` to each signed 16-bit lane pair.
template <typename Fn>
uint32_t map_h(uint32_t a, uint32_t b, Fn fn) {
  return pack_halves(static_cast<int16_t>(fn(half_lo(a), half_lo(b))),
                     static_cast<int16_t>(fn(half_hi(a), half_hi(b))));
}

/// Apply `fn` to each signed 8-bit lane pair.
template <typename Fn>
uint32_t map_b(uint32_t a, uint32_t b, Fn fn) {
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    const auto la = static_cast<int8_t>(a >> (8 * i));
    const auto lb = static_cast<int8_t>(b >> (8 * i));
    out |= (static_cast<uint32_t>(static_cast<uint8_t>(fn(la, lb)))) << (8 * i);
  }
  return out;
}

}  // namespace

Core::Core(Memory* mem, Config cfg)
    : mem_(mem),
      cfg_(cfg),
      tanh_table_(activation::PlaTable::build(cfg.tanh_spec)),
      sig_table_(activation::PlaTable::build(cfg.sig_spec)) {
  RNNASIP_CHECK(mem_ != nullptr);
  RNNASIP_CHECK(cfg.tanh_spec.func == activation::ActFunc::kTanh);
  RNNASIP_CHECK(cfg.sig_spec.func == activation::ActFunc::kSigmoid);
}

void Core::reset(uint32_t pc) {
  x_.fill(0);
  spr_.fill(0);
  loops_.fill(HwLoop{});
  pc_ = pc;
  csr_cycle_ = 0;
  csr_instret_ = 0;
  csr_mscratch_ = 0;
  last_was_load_ = false;
  last_sdotsp_spr_ = -1;
  prev_mem_unpaired_ = false;
}

void Core::set_reg(int i, uint32_t v) {
  RNNASIP_CHECK(i >= 0 && i < 32);
  if (i != 0) x_[static_cast<size_t>(i)] = v;
}

void Core::load_program(const assembler::Program& program) {
  const auto words = program.encode_words();
  mem_->write_words(program.base, words);
  decode_cache_.clear();
}

void Core::set_spr(int i, uint32_t v) {
  RNNASIP_CHECK(i >= 0 && i < 2);
  spr_[static_cast<size_t>(i)] = v;
}

CoreSnapshot Core::snapshot() const {
  CoreSnapshot s;
  s.x = x_;
  s.pc = pc_;
  s.spr = spr_;
  s.loops = loops_;
  s.tanh_table = tanh_table_;
  s.sig_table = sig_table_;
  s.csr_cycle = csr_cycle_;
  s.csr_instret = csr_instret_;
  s.csr_mscratch = csr_mscratch_;
  s.prev_mem_unpaired = prev_mem_unpaired_;
  s.last_was_load = last_was_load_;
  s.last_load_rd = last_load_rd_;
  s.last_load_op = last_load_op_;
  s.last_load_pc = last_load_pc_;
  s.last_sdotsp_spr = last_sdotsp_spr_;
  return s;
}

void Core::restore(const CoreSnapshot& s) {
  x_ = s.x;
  pc_ = s.pc;
  spr_ = s.spr;
  loops_ = s.loops;
  tanh_table_ = s.tanh_table;
  sig_table_ = s.sig_table;
  csr_cycle_ = s.csr_cycle;
  csr_instret_ = s.csr_instret;
  csr_mscratch_ = s.csr_mscratch;
  prev_mem_unpaired_ = s.prev_mem_unpaired;
  last_was_load_ = s.last_was_load;
  last_load_rd_ = s.last_load_rd;
  last_load_op_ = s.last_load_op;
  last_load_pc_ = s.last_load_pc;
  last_sdotsp_spr_ = s.last_sdotsp_spr;
}

void Core::trap(uint32_t pc, TrapCause cause, const std::string& msg) {
  std::ostringstream os;
  os << "trap at pc=0x" << std::hex << pc << ": " << msg;
  throw TrapException(cause, 0, os.str());
}

std::string RunResult::describe() const {
  switch (exit) {
    case Exit::kEbreak: return "ebreak";
    case Exit::kEcall: return "ecall";
    case Exit::kMaxInstrs: return "instruction cap";
    case Exit::kWatchdog:
    case Exit::kTrap: {
      std::ostringstream os;
      os << "trap[" << trap_cause_name(trap.cause) << "] at pc=0x" << std::hex
         << trap.pc << ": " << trap.message;
      return os.str();
    }
  }
  return "?";
}

const Instr* Core::fetch(uint32_t pc, std::string* err) {
  auto it = decode_cache_.find(pc);
  if (it == decode_cache_.end()) {
    const uint32_t lo = mem_->load16(pc);
    uint32_t word = lo;
    if ((lo & 0x3) == 0x3) word |= static_cast<uint32_t>(mem_->load16(pc + 2)) << 16;
    auto decoded = isa::decode_any(word);
    if (!decoded) {
      std::ostringstream os;
      os << "illegal instruction 0x" << std::hex << word;
      *err = os.str();
      return nullptr;
    }
    it = decode_cache_.emplace(pc, *decoded).first;
  }
  return &it->second;
}

Core::ExecOut Core::execute(const Instr& in, uint32_t pc) {
  const TimingModel& t = cfg_.timing;
  uint32_t next = pc + in.size;
  uint64_t cost = 1;
  StallCause pen = StallCause::kCount_;
  uint64_t pen_cycles = 0;
  // Serial divider: everything beyond the issue cycle is a typed penalty.
  const auto div_cost = [&] {
    cost = t.div_cycles > 0 ? t.div_cycles : 1;
    pen = StallCause::kDivider;
    pen_cycles = cost - 1;
  };
  const uint32_t a = x_[in.rs1];
  const uint32_t b = x_[in.rs2];
  const int32_t sa = static_cast<int32_t>(a);
  const int32_t sb = static_cast<int32_t>(b);

  switch (in.op) {
    // ----- RV32I -----
    case Opcode::kLui: write_reg(in.rd, static_cast<uint32_t>(in.imm) << 12); break;
    case Opcode::kAuipc: write_reg(in.rd, pc + (static_cast<uint32_t>(in.imm) << 12)); break;
    case Opcode::kJal:
      write_reg(in.rd, pc + in.size);
      next = pc + static_cast<uint32_t>(in.imm);
      cost += t.jump_penalty;
      pen = StallCause::kJump;
      pen_cycles = t.jump_penalty;
      break;
    case Opcode::kJalr:
      write_reg(in.rd, pc + in.size);
      next = (a + static_cast<uint32_t>(in.imm)) & ~1u;
      cost += t.jump_penalty;
      pen = StallCause::kJump;
      pen_cycles = t.jump_penalty;
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu: {
      bool taken = false;
      switch (in.op) {
        case Opcode::kBeq: taken = a == b; break;
        case Opcode::kBne: taken = a != b; break;
        case Opcode::kBlt: taken = sa < sb; break;
        case Opcode::kBge: taken = sa >= sb; break;
        case Opcode::kBltu: taken = a < b; break;
        default: taken = a >= b; break;
      }
      if (taken) {
        next = pc + static_cast<uint32_t>(in.imm);
        cost += t.taken_branch_penalty;
        pen = StallCause::kTakenBranch;
        pen_cycles = t.taken_branch_penalty;
      }
      break;
    }
    case Opcode::kLb: write_reg(in.rd, static_cast<uint32_t>(static_cast<int8_t>(mem_->load8(a + in.imm)))); break;
    case Opcode::kLh: write_reg(in.rd, static_cast<uint32_t>(static_cast<int16_t>(mem_->load16(a + in.imm)))); break;
    case Opcode::kLw: write_reg(in.rd, mem_->load32(a + in.imm)); break;
    case Opcode::kLbu: write_reg(in.rd, mem_->load8(a + in.imm)); break;
    case Opcode::kLhu: write_reg(in.rd, mem_->load16(a + in.imm)); break;
    case Opcode::kSb: mem_->store8(a + in.imm, static_cast<uint8_t>(b)); break;
    case Opcode::kSh: mem_->store16(a + in.imm, static_cast<uint16_t>(b)); break;
    case Opcode::kSw: mem_->store32(a + in.imm, b); break;
    case Opcode::kAddi: write_reg(in.rd, a + static_cast<uint32_t>(in.imm)); break;
    case Opcode::kSlti: write_reg(in.rd, sa < in.imm ? 1 : 0); break;
    case Opcode::kSltiu: write_reg(in.rd, a < static_cast<uint32_t>(in.imm) ? 1 : 0); break;
    case Opcode::kXori: write_reg(in.rd, a ^ static_cast<uint32_t>(in.imm)); break;
    case Opcode::kOri: write_reg(in.rd, a | static_cast<uint32_t>(in.imm)); break;
    case Opcode::kAndi: write_reg(in.rd, a & static_cast<uint32_t>(in.imm)); break;
    case Opcode::kSlli: write_reg(in.rd, a << (in.imm & 31)); break;
    case Opcode::kSrli: write_reg(in.rd, a >> (in.imm & 31)); break;
    case Opcode::kSrai: write_reg(in.rd, static_cast<uint32_t>(sa >> (in.imm & 31))); break;
    case Opcode::kAdd: write_reg(in.rd, a + b); break;
    case Opcode::kSub: write_reg(in.rd, a - b); break;
    case Opcode::kSll: write_reg(in.rd, a << (b & 31)); break;
    case Opcode::kSlt: write_reg(in.rd, sa < sb ? 1 : 0); break;
    case Opcode::kSltu: write_reg(in.rd, a < b ? 1 : 0); break;
    case Opcode::kXor: write_reg(in.rd, a ^ b); break;
    case Opcode::kSrl: write_reg(in.rd, a >> (b & 31)); break;
    case Opcode::kSra: write_reg(in.rd, static_cast<uint32_t>(sa >> (b & 31))); break;
    case Opcode::kOr: write_reg(in.rd, a | b); break;
    case Opcode::kAnd: write_reg(in.rd, a & b); break;
    case Opcode::kFence: break;  // single hart, strongly ordered: no-op
    case Opcode::kEcall:
    case Opcode::kEbreak:
      break;  // handled by the run loop
    // ----- Zicsr (counters + mscratch) -----
    case Opcode::kCsrrw:
    case Opcode::kCsrrs:
    case Opcode::kCsrrc: {
      const uint32_t csr = static_cast<uint32_t>(in.imm);
      uint32_t old;
      bool writable = false;
      switch (csr) {
        case 0xC00: old = static_cast<uint32_t>(csr_cycle_); break;        // cycle
        case 0xC80: old = static_cast<uint32_t>(csr_cycle_ >> 32); break;  // cycleh
        case 0xC02: old = static_cast<uint32_t>(csr_instret_); break;      // instret
        case 0xC82: old = static_cast<uint32_t>(csr_instret_ >> 32); break;
        case 0xF14: old = 0; break;  // mhartid
        case 0x340:                  // mscratch
          old = csr_mscratch_;
          writable = true;
          break;
        default:
          trap(pc, TrapCause::kCsrUnimplemented, "unimplemented CSR");
      }
      // csrrs/csrrc with rs1 = x0 are pure reads; anything else writes.
      const bool wants_write = in.op == Opcode::kCsrrw || in.rs1 != 0;
      if (wants_write) {
        if (!writable) trap(pc, TrapCause::kCsrReadOnly, "write to read-only CSR");
        switch (in.op) {
          case Opcode::kCsrrw: csr_mscratch_ = a; break;
          case Opcode::kCsrrs: csr_mscratch_ = old | a; break;
          default: csr_mscratch_ = old & ~a; break;
        }
      }
      write_reg(in.rd, old);
      break;
    }
    // ----- RV32M -----
    // Unsigned multiply: the low 32 bits match signed mul and INT32_MIN * -1
    // must wrap, not overflow.
    case Opcode::kMul: write_reg(in.rd, a * b); break;
    case Opcode::kMulh:
      write_reg(in.rd, static_cast<uint32_t>((static_cast<int64_t>(sa) * sb) >> 32));
      break;
    case Opcode::kMulhsu:
      write_reg(in.rd, static_cast<uint32_t>((static_cast<int64_t>(sa) * static_cast<uint64_t>(b)) >> 32));
      break;
    case Opcode::kMulhu:
      write_reg(in.rd, static_cast<uint32_t>((static_cast<uint64_t>(a) * b) >> 32));
      break;
    case Opcode::kDiv:
      div_cost();
      if (sb == 0) write_reg(in.rd, 0xFFFFFFFFu);
      else if (sa == INT32_MIN && sb == -1) write_reg(in.rd, static_cast<uint32_t>(INT32_MIN));
      else write_reg(in.rd, static_cast<uint32_t>(sa / sb));
      break;
    case Opcode::kDivu:
      div_cost();
      write_reg(in.rd, b == 0 ? 0xFFFFFFFFu : a / b);
      break;
    case Opcode::kRem:
      div_cost();
      if (sb == 0) write_reg(in.rd, a);
      else if (sa == INT32_MIN && sb == -1) write_reg(in.rd, 0);
      else write_reg(in.rd, static_cast<uint32_t>(sa % sb));
      break;
    case Opcode::kRemu:
      div_cost();
      write_reg(in.rd, b == 0 ? a : a % b);
      break;
    // ----- Xpulp post-increment load/store -----
    case Opcode::kPLb:
      write_reg(in.rs1, a + static_cast<uint32_t>(in.imm));
      write_reg(in.rd, static_cast<uint32_t>(static_cast<int8_t>(mem_->load8(a))));
      break;
    case Opcode::kPLh:
      write_reg(in.rs1, a + static_cast<uint32_t>(in.imm));
      write_reg(in.rd, static_cast<uint32_t>(static_cast<int16_t>(mem_->load16(a))));
      break;
    case Opcode::kPLw:
      write_reg(in.rs1, a + static_cast<uint32_t>(in.imm));
      write_reg(in.rd, mem_->load32(a));
      break;
    case Opcode::kPLbu:
      write_reg(in.rs1, a + static_cast<uint32_t>(in.imm));
      write_reg(in.rd, mem_->load8(a));
      break;
    case Opcode::kPLhu:
      write_reg(in.rs1, a + static_cast<uint32_t>(in.imm));
      write_reg(in.rd, mem_->load16(a));
      break;
    case Opcode::kPLwRr:
      write_reg(in.rs1, a + b);
      write_reg(in.rd, mem_->load32(a));
      break;
    case Opcode::kPLhRr:
      write_reg(in.rs1, a + b);
      write_reg(in.rd, static_cast<uint32_t>(static_cast<int16_t>(mem_->load16(a))));
      break;
    case Opcode::kPSb:
      mem_->store8(a, static_cast<uint8_t>(b));
      write_reg(in.rs1, a + static_cast<uint32_t>(in.imm));
      break;
    case Opcode::kPSh:
      mem_->store16(a, static_cast<uint16_t>(b));
      write_reg(in.rs1, a + static_cast<uint32_t>(in.imm));
      break;
    case Opcode::kPSw:
      mem_->store32(a, b);
      write_reg(in.rs1, a + static_cast<uint32_t>(in.imm));
      break;
    // ----- Xpulp scalar ALU -----
    case Opcode::kPAbs: write_reg(in.rd, sa < 0 ? static_cast<uint32_t>(-sa) : a); break;
    case Opcode::kPExths: write_reg(in.rd, static_cast<uint32_t>(static_cast<int32_t>(half_lo(a)))); break;
    case Opcode::kPExthz: write_reg(in.rd, a & 0xFFFFu); break;
    case Opcode::kPExtbs: write_reg(in.rd, static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(a)))); break;
    case Opcode::kPExtbz: write_reg(in.rd, a & 0xFFu); break;
    case Opcode::kPMin: write_reg(in.rd, static_cast<uint32_t>(sa < sb ? sa : sb)); break;
    case Opcode::kPMinu: write_reg(in.rd, a < b ? a : b); break;
    case Opcode::kPMax: write_reg(in.rd, static_cast<uint32_t>(sa > sb ? sa : sb)); break;
    case Opcode::kPMaxu: write_reg(in.rd, a > b ? a : b); break;
    case Opcode::kPMac: write_reg(in.rd, x_[in.rd] + static_cast<uint32_t>(sa * sb)); break;
    case Opcode::kPMsu: write_reg(in.rd, x_[in.rd] - static_cast<uint32_t>(sa * sb)); break;
    case Opcode::kPClip: write_reg(in.rd, static_cast<uint32_t>(clip_signed(sa, static_cast<unsigned>(in.imm)))); break;
    case Opcode::kPClipu: {
      const int32_t hi = (1 << (in.imm - 1)) - 1;
      write_reg(in.rd, static_cast<uint32_t>(sa < 0 ? 0 : (sa > hi ? hi : sa)));
      break;
    }
    // ----- Xpulp hardware loops -----
    case Opcode::kLpStarti: loops_[in.rd].start = pc + static_cast<uint32_t>(in.imm); break;
    case Opcode::kLpEndi: loops_[in.rd].end = pc + static_cast<uint32_t>(in.imm); break;
    case Opcode::kLpCount: loops_[in.rd].count = a; break;
    case Opcode::kLpCounti: loops_[in.rd].count = static_cast<uint32_t>(in.imm); break;
    case Opcode::kLpSetup:
      loops_[in.rd].start = pc + 4;
      loops_[in.rd].end = pc + static_cast<uint32_t>(in.imm);
      loops_[in.rd].count = a;
      break;
    case Opcode::kLpSetupi:
      loops_[in.rd].start = pc + 4;
      loops_[in.rd].end = pc + static_cast<uint32_t>(in.imm2);
      loops_[in.rd].count = static_cast<uint32_t>(in.imm);
      break;
    // ----- Xpulp packed SIMD (.h) -----
    case Opcode::kPvAddH: write_reg(in.rd, map_h(a, b, [](int32_t x, int32_t y) { return x + y; })); break;
    case Opcode::kPvSubH: write_reg(in.rd, map_h(a, b, [](int32_t x, int32_t y) { return x - y; })); break;
    case Opcode::kPvAvgH: write_reg(in.rd, map_h(a, b, [](int32_t x, int32_t y) { return (x + y) >> 1; })); break;
    case Opcode::kPvMinH: write_reg(in.rd, map_h(a, b, [](int32_t x, int32_t y) { return x < y ? x : y; })); break;
    case Opcode::kPvMaxH: write_reg(in.rd, map_h(a, b, [](int32_t x, int32_t y) { return x > y ? x : y; })); break;
    case Opcode::kPvSrlH:
      write_reg(in.rd, map_h(a, b, [](int32_t x, int32_t y) {
                  return static_cast<int32_t>((static_cast<uint16_t>(x)) >> (y & 15));
                }));
      break;
    case Opcode::kPvSraH: write_reg(in.rd, map_h(a, b, [](int32_t x, int32_t y) { return x >> (y & 15); })); break;
    case Opcode::kPvSllH: write_reg(in.rd, map_h(a, b, [](int32_t x, int32_t y) { return x << (y & 15); })); break;
    case Opcode::kPvAbsH: write_reg(in.rd, map_h(a, a, [](int32_t x, int32_t) { return x < 0 ? -x : x; })); break;
    case Opcode::kPvPackH:
      write_reg(in.rd, pack_halves(half_lo(b), half_lo(a)));
      break;
    case Opcode::kPvExtractH:
      write_reg(in.rd, static_cast<uint32_t>(static_cast<int32_t>(
                           in.imm == 0 ? half_lo(a) : half_hi(a))));
      break;
    case Opcode::kPvInsertH: {
      const uint32_t old = x_[in.rd];
      write_reg(in.rd, in.imm == 0 ? pack_halves(half_lo(a), half_hi(old))
                                   : pack_halves(half_lo(old), half_lo(a)));
      break;
    }
    case Opcode::kPvDotupH: write_reg(in.rd, udot_h(a, b)); break;
    case Opcode::kPvDotspH: write_reg(in.rd, static_cast<uint32_t>(sdot_h(a, b))); break;
    case Opcode::kPvSdotupH: write_reg(in.rd, x_[in.rd] + udot_h(a, b)); break;
    case Opcode::kPvSdotspH: write_reg(in.rd, x_[in.rd] + static_cast<uint32_t>(sdot_h(a, b))); break;
    // ----- Xpulp packed SIMD, scalar replication (.sc.h) -----
    case Opcode::kPvAddScH:
    case Opcode::kPvSubScH:
    case Opcode::kPvMinScH:
    case Opcode::kPvMaxScH:
    case Opcode::kPvSraScH:
    case Opcode::kPvDotspScH:
    case Opcode::kPvSdotspScH: {
      const uint32_t rep = pack_halves(half_lo(b), half_lo(b));
      switch (in.op) {
        case Opcode::kPvAddScH: write_reg(in.rd, map_h(a, rep, [](int32_t x, int32_t y) { return x + y; })); break;
        case Opcode::kPvSubScH: write_reg(in.rd, map_h(a, rep, [](int32_t x, int32_t y) { return x - y; })); break;
        case Opcode::kPvMinScH: write_reg(in.rd, map_h(a, rep, [](int32_t x, int32_t y) { return x < y ? x : y; })); break;
        case Opcode::kPvMaxScH: write_reg(in.rd, map_h(a, rep, [](int32_t x, int32_t y) { return x > y ? x : y; })); break;
        case Opcode::kPvSraScH: write_reg(in.rd, map_h(a, rep, [](int32_t x, int32_t y) { return x >> (y & 15); })); break;
        case Opcode::kPvDotspScH: write_reg(in.rd, static_cast<uint32_t>(sdot_h(a, rep))); break;
        default: write_reg(in.rd, x_[in.rd] + static_cast<uint32_t>(sdot_h(a, rep))); break;
      }
      break;
    }
    // ----- Xpulp packed SIMD (.b) -----
    case Opcode::kPvAddB: write_reg(in.rd, map_b(a, b, [](int32_t x, int32_t y) { return x + y; })); break;
    case Opcode::kPvSubB: write_reg(in.rd, map_b(a, b, [](int32_t x, int32_t y) { return x - y; })); break;
    case Opcode::kPvMinB: write_reg(in.rd, map_b(a, b, [](int32_t x, int32_t y) { return x < y ? x : y; })); break;
    case Opcode::kPvMaxB: write_reg(in.rd, map_b(a, b, [](int32_t x, int32_t y) { return x > y ? x : y; })); break;
    case Opcode::kPvDotspB: write_reg(in.rd, static_cast<uint32_t>(sdot_b(a, b))); break;
    case Opcode::kPvSdotspB: write_reg(in.rd, x_[in.rd] + static_cast<uint32_t>(sdot_b(a, b))); break;
    // ----- RNN extensions -----
    case Opcode::kPlSdotspH0:
    case Opcode::kPlSdotspH1: {
      const size_t k = (in.op == Opcode::kPlSdotspH0) ? 0 : 1;
      if (in.rd == in.rs1)
        trap(pc, TrapCause::kRdRs1Conflict,
             "pl.sdotsp.h: rd must differ from the address register");
      const uint32_t old_spr = spr_[k];
      spr_[k] = mem_->load32(a);       // LSU path: load next weight word
      write_reg(in.rs1, a + 4);        // post-increment the weight pointer
      write_reg(in.rd, x_[in.rd] + static_cast<uint32_t>(sdot_h(old_spr, b)));
      break;
    }
    case Opcode::kPlTanh:
      write_reg(in.rd, static_cast<uint32_t>(tanh_table_.eval_raw(sa)));
      break;
    case Opcode::kPlSig:
      write_reg(in.rd, static_cast<uint32_t>(sig_table_.eval_raw(sa)));
      break;
    case Opcode::kInvalid:
    case Opcode::kCount_:
      trap(pc, TrapCause::kIllegalInstruction, "invalid opcode");
  }
  return {next, cost, pen, pen_cycles};
}

RunResult Core::run(const RunLimits& limits) {
  RunResult res;
  res.exit = RunResult::Exit::kMaxInstrs;
  try {
    for (uint64_t n = 0; limits.max_instrs == 0 || n < limits.max_instrs; ++n) {
      // Cycle watchdog: a corrupted branch/loop target must not turn a
      // campaign run into a near-endless spin inside the instruction cap.
      if (limits.max_cycles != 0 && res.cycles >= limits.max_cycles) {
        std::ostringstream os;
        os << "cycle watchdog expired after " << res.cycles << " cycles";
        stats_.note_watchdog();
        res.exit = RunResult::Exit::kWatchdog;
        res.trap = Trap{TrapCause::kWatchdog, pc_, 0, os.str()};
        res.trap_message = res.trap.message;
        res.pc = pc_;
        return res;
      }

      std::string err;
      const Instr* in = fetch(pc_, &err);
      if (!in) {
        stats_.note_trap();
        res.exit = RunResult::Exit::kTrap;
        res.trap = Trap{TrapCause::kIllegalInstruction, pc_, 0, err};
        res.trap_message = err;
        res.pc = pc_;
        return res;
      }

      // Feature gates.
      if (!cfg_.has_xpulp && is_xpulp(in->op))
        trap(pc_, TrapCause::kIsaGateXpulp, "Xpulp instruction with Xpulp disabled");
      if (!cfg_.has_rnn_ext && is_rnn_ext(in->op))
        trap(pc_, TrapCause::kIsaGateRnnExt,
             "RNN-ext instruction with extension disabled");

      // Load-use interlock: a consumer directly after the producing load
      // stalls one cycle, charged to the load (see timing.h). The stall is
      // attributed post-hoc — the load already retired — so it is routed
      // through the stall hook to keep trace/profiler cycle clocks in sync
      // with ExecStats.
      if (last_was_load_ && reads_reg(*in, last_load_rd_)) {
        const uint64_t stall = cfg_.timing.load_use_stall;
        stats_.add_stall(last_load_op_, StallCause::kLoadUse, stall);
        res.cycles += stall;
        csr_cycle_ += stall;
        if (stall_hook_ && stall > 0)
          stall_hook_(last_load_pc_, StallCause::kLoadUse, stall, /*post_hoc=*/true);
      }

      // Back-to-back pl.sdotsp on the same SPR: the freshly loaded word is
      // not yet available, stall (the schedules alternate SPRs to avoid it).
      int cur_spr = -1;
      if (in->op == Opcode::kPlSdotspH0) cur_spr = 0;
      if (in->op == Opcode::kPlSdotspH1) cur_spr = 1;
      uint64_t spr_extra = 0;
      if (cur_spr >= 0 && cur_spr == last_sdotsp_spr_)
        spr_extra = cfg_.timing.spr_conflict_stall;

      if (in->op == Opcode::kEbreak || in->op == Opcode::kEcall) {
        stats_.record(in->op, 1);
        res.cycles += 1;
        res.instrs += 1;
        res.pc = pc_;
        res.exit = in->op == Opcode::kEbreak ? RunResult::Exit::kEbreak
                                             : RunResult::Exit::kEcall;
        if (trace_) trace_(pc_, *in, 1);
        return res;
      }

      // Data-memory wait states (0 for the paper's single-cycle TCDM).
      uint64_t mem_extra = 0;
      if (cfg_.timing.mem_wait_states > 0) {
        const auto unit = isa::opcode_info(in->op).unit;
        if (unit == isa::Unit::kLoad || unit == isa::Unit::kStore ||
            unit == isa::Unit::kRnnDot) {
          mem_extra = cfg_.timing.mem_wait_states;
        }
      }
      const uint64_t extra = spr_extra + mem_extra;

      // Dual-issue what-if: pair an independent 1-cycle ALU/MUL/SIMD
      // instruction with the memory instruction directly before it.
      bool paired = false;
      if (cfg_.timing.dual_issue && prev_mem_unpaired_) {
        const auto unit = isa::opcode_info(in->op).unit;
        const bool pairable = unit == isa::Unit::kAlu || unit == isa::Unit::kMul ||
                              unit == isa::Unit::kSimd;
        if (pairable && !(last_was_load_ && reads_reg(*in, last_load_rd_))) paired = true;
      }

      const ExecOut out = execute(*in, pc_);
      uint64_t cost = out.cost + extra;
      bool pair_saved = false;
      if (paired && cost >= 1) {
        cost -= 1;  // issues in the memory op's slot
        pair_saved = true;
      }
      prev_mem_unpaired_ = !paired && (isa::opcode_info(in->op).unit == isa::Unit::kLoad ||
                                       isa::opcode_info(in->op).unit == isa::Unit::kStore);
      stats_.record(in->op, cost);
      stats_.add_macs(mac_count(in->op));
      // Typed accounting for every cycle beyond the issue cycle. These are
      // already inside `cost` (post_hoc=false): consumers tallying cycles
      // from the trace hook must not add them again.
      if (out.penalty_cycles > 0) {
        stats_.note_penalty(out.penalty, out.penalty_cycles);
        if (stall_hook_) stall_hook_(pc_, out.penalty, out.penalty_cycles, false);
      }
      if (spr_extra > 0) {
        stats_.note_penalty(StallCause::kSprConflict, spr_extra);
        if (stall_hook_) stall_hook_(pc_, StallCause::kSprConflict, spr_extra, false);
      }
      if (mem_extra > 0) {
        stats_.note_penalty(StallCause::kMemWait, mem_extra);
        if (stall_hook_) stall_hook_(pc_, StallCause::kMemWait, mem_extra, false);
      }
      if (pair_saved) stats_.note_dual_issue_save(1);
      res.cycles += cost;
      res.instrs += 1;
      csr_cycle_ += cost;
      csr_instret_ += 1;
      if (trace_) trace_(pc_, *in, cost);

      // Hazard bookkeeping for the next instruction.
      last_was_load_ = is_gpr_load(in->op) && in->rd != 0;
      if (last_was_load_) {
        last_load_rd_ = in->rd;
        last_load_op_ = in->op;
        last_load_pc_ = pc_;
      }
      last_sdotsp_spr_ = cur_spr;

      // Hardware-loop back-edge (zero overhead). Only on sequential flow —
      // RI5CY forbids taken control transfers as the last body instruction.
      uint32_t next = out.next_pc;
      if (next == pc_ + in->size) {
        for (size_t l = 0; l < 2; ++l) {
          HwLoop& loop = loops_[l];
          if (loop.count > 0 && next == loop.end) {
            if (loop.count > 1) {
              --loop.count;
              next = loop.start;
              break;  // inner loop takes priority; outer sees its own end later
            }
            loop.count = 0;  // final iteration: fall through, loop retires
          }
        }
      }
      pc_ = next;

      // Fault-injection hook: runs after the instruction fully retired, so
      // an injected flip lands between instructions, never mid-instruction.
      if (fault_hook_) fault_hook_(n);
    }
  } catch (const TrapException& e) {
    // pc_ was not advanced: it still names the instruction that trapped.
    stats_.note_trap();
    res.exit = RunResult::Exit::kTrap;
    res.trap = Trap{e.cause(), pc_, e.addr(), e.what()};
    res.trap_message = e.what();
    res.pc = pc_;
    return res;
  } catch (const std::runtime_error& e) {
    stats_.note_trap();
    res.exit = RunResult::Exit::kTrap;
    res.trap = Trap{TrapCause::kOther, pc_, 0, e.what()};
    res.trap_message = e.what();
    res.pc = pc_;
    return res;
  }
  res.pc = pc_;
  return res;
}

}  // namespace rnnasip::iss
