// Instruction-set simulator of the extended RI5CY core (Fig. 1 of the
// paper): RV32IM + a subset of RV32C + Xpulp (hardware loops, post-increment
// load/store, packed SIMD, mac/clip/minmax) + the paper's RNN extensions
// (pl.sdotsp.h.0/1 with the two special-purpose weight registers, and the
// single-cycle pl.tanh / pl.sig PLA unit).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "src/activation/pla.h"
#include "src/asm/program.h"
#include "src/iss/memory.h"
#include "src/iss/stats.h"
#include "src/iss/timing.h"
#include "src/iss/trap.h"

namespace rnnasip::iss {

/// Execution bounds for one run() call. Both limits exist because a fault
/// campaign can corrupt a branch/loop target into a tight infinite loop:
/// the instruction cap alone would let a 2-instruction loop spin for the
/// whole 400M budget, while the cycle watchdog kills it promptly.
struct RunLimits {
  uint64_t max_instrs = 400'000'000;  ///< 0 = unlimited
  uint64_t max_cycles = 0;            ///< cycle watchdog; 0 = disabled
};

/// Why a run() returned.
struct RunResult {
  enum class Exit { kEbreak, kEcall, kMaxInstrs, kTrap, kWatchdog };
  Exit exit = Exit::kTrap;
  uint64_t instrs = 0;   ///< retired in this run() call
  uint64_t cycles = 0;   ///< consumed in this run() call
  uint32_t pc = 0;       ///< pc of the terminating instruction
  /// Structured record for kTrap and kWatchdog exits (cause kNone otherwise).
  Trap trap;
  /// Mirrors trap.message (kept as a field for concise call sites).
  std::string trap_message;

  bool ok() const { return exit == Exit::kEbreak || exit == Exit::kEcall; }

  /// One-line human-readable exit description ("ebreak", "instruction cap",
  /// "trap[mem-misaligned] at pc=...: ..."), for drivers reporting a run.
  std::string describe() const;
};

/// One hardware-loop register set (RI5CY has two, L0 nests inside L1).
struct HwLoop {
  uint32_t start = 0;
  uint32_t end = 0;    ///< address *after* the last body instruction
  uint32_t count = 0;  ///< remaining iterations
};

/// Complete resumable architectural state of one core, captured between
/// instructions (a layer boundary). Restoring a snapshot and re-running
/// from it is bit-identical to never having left: the snapshot includes
/// the hazard-tracking pipeline state (dual-issue pairing, pending
/// load-use producer, last pl.sdotsp SPR) and the PLA tables, so cycle
/// counts and LUT contents survive a checkpoint/restore round trip even
/// mid-campaign. Memory is *not* part of the snapshot — callers pair it
/// with the TCDM bytes they care about (see integrity::Checkpoint).
struct CoreSnapshot {
  std::array<uint32_t, 32> x{};
  uint32_t pc = 0;
  std::array<uint32_t, 2> spr{};
  std::array<HwLoop, 2> loops{};
  activation::PlaTable tanh_table;
  activation::PlaTable sig_table;
  uint64_t csr_cycle = 0;
  uint64_t csr_instret = 0;
  uint32_t csr_mscratch = 0;
  bool prev_mem_unpaired = false;
  bool last_was_load = false;
  uint8_t last_load_rd = 0;
  isa::Opcode last_load_op = isa::Opcode::kInvalid;
  uint32_t last_load_pc = 0;
  int last_sdotsp_spr = -1;
};

class Core {
 public:
  struct Config {
    TimingModel timing;
    /// ISA feature gates: executing a gated-off instruction traps, which
    /// lets tests prove a kernel stays within its claimed ISA level.
    bool has_xpulp = true;
    bool has_rnn_ext = true;
    /// Activation-unit configuration. tanh uses the paper's chosen design
    /// point (range ±4, 32 intervals). Sigmoid converges more slowly
    /// (sig(4) = 0.982), so its 32 intervals span ±8 to keep the error in
    /// the same band — same LUT size, same datapath.
    activation::PlaSpec tanh_spec{activation::ActFunc::kTanh, 9, 32};
    activation::PlaSpec sig_spec{activation::ActFunc::kSigmoid, 10, 32};
  };

  explicit Core(Memory* mem) : Core(mem, Config{}) {}
  Core(Memory* mem, Config cfg);

  /// Clear registers/SPRs/loops and set the PC. Statistics are kept
  /// (cleared explicitly with stats().reset()) so suites can accumulate.
  void reset(uint32_t pc);

  uint32_t reg(int i) const { return x_[static_cast<size_t>(i)]; }
  void set_reg(int i, uint32_t v);
  uint32_t pc() const { return pc_; }
  /// Reposition the PC without touching any other state — resume after an
  /// ecall yield (the run loop leaves pc *at* the ecall; continue at +4).
  void set_pc(uint32_t pc) { pc_ = pc; }

  /// Capture / restore the full resumable state (see CoreSnapshot).
  CoreSnapshot snapshot() const;
  void restore(const CoreSnapshot& s);
  uint32_t spr(int i) const { return spr_[static_cast<size_t>(i)]; }
  /// Overwrite an SPR weight register (fault injection / test setup).
  void set_spr(int i, uint32_t v);
  const HwLoop& hw_loop(int i) const { return loops_[static_cast<size_t>(i)]; }

  /// Copy a program's encoded text into memory at its base address and
  /// invalidate the decode cache.
  void load_program(const assembler::Program& program);

  /// Execute until ebreak/ecall, a limit (instruction cap or cycle
  /// watchdog), or a trap (illegal instruction, bad memory access, ...).
  /// A trap leaves the core resumable: the faulting instruction did not
  /// retire, pc still points at it, and statistics exclude it.
  RunResult run(const RunLimits& limits);
  RunResult run(uint64_t max_instrs = 400'000'000) {
    return run(RunLimits{max_instrs, 0});
  }

  ExecStats& stats() { return stats_; }
  const ExecStats& stats() const { return stats_; }

  /// Per-retired-instruction hook (pc, instruction, cycles charged for it —
  /// issue plus in-cost penalties, excluding post-hoc stall attribution,
  /// which arrives through the stall hook instead). Fires for every retired
  /// instruction including the terminating ebreak/ecall.
  using TraceFn = std::function<void(uint32_t, const isa::Instr&, uint64_t)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  /// Typed stall/penalty event hook. `pc` is the instruction the cycles are
  /// charged to (for load-use, the *load*, matching ExecStats). `post_hoc`
  /// distinguishes cycles attributed after the owning instruction already
  /// retired (load-use: not part of any traced cost — consumers must add
  /// them to their own cycle clocks) from penalties already included in the
  /// owning instruction's traced cost (branch/jump/divider/SPR/mem-wait).
  using StallFn =
      std::function<void(uint32_t pc, StallCause cause, uint64_t cycles, bool post_hoc)>;
  void set_stall_hook(StallFn fn) { stall_hook_ = std::move(fn); }

  /// Per-retired-instruction fault-injection hook, called with the running
  /// retired-instruction index after the instruction's effects committed.
  /// The hook may mutate registers, SPRs, memory, and the PLA tables; if it
  /// rewrites program text it must call invalidate_decode_cache().
  using FaultHook = std::function<void(uint64_t)>;
  void set_fault_hook(FaultHook fn) { fault_hook_ = std::move(fn); }

  /// Drop all cached decodes (program text was modified behind the core).
  void invalidate_decode_cache() { decode_cache_.clear(); }

  const activation::PlaTable& tanh_table() const { return tanh_table_; }
  const activation::PlaTable& sig_table() const { return sig_table_; }
  /// Mutable LUT access for fault injection into the PLA unit.
  activation::PlaTable& mutable_tanh_table() { return tanh_table_; }
  activation::PlaTable& mutable_sig_table() { return sig_table_; }

 private:
  struct ExecOut {
    uint32_t next_pc;
    uint64_t cost;
    /// In-cost penalty of this instruction (branch/jump bubble, divider
    /// cycles beyond issue); kCount_ means none. At most one per execute().
    StallCause penalty = StallCause::kCount_;
    uint64_t penalty_cycles = 0;
  };
  ExecOut execute(const isa::Instr& in, uint32_t pc);
  const isa::Instr* fetch(uint32_t pc, std::string* err);
  void write_reg(uint8_t rd, uint32_t v) {
    if (rd != 0) x_[rd] = v;
  }
  [[noreturn]] void trap(uint32_t pc, TrapCause cause, const std::string& msg);

  Memory* mem_;
  Config cfg_;
  std::array<uint32_t, 32> x_{};
  uint32_t pc_ = 0;
  std::array<uint32_t, 2> spr_{};
  std::array<HwLoop, 2> loops_{};
  activation::PlaTable tanh_table_;
  activation::PlaTable sig_table_;
  ExecStats stats_;
  TraceFn trace_;
  StallFn stall_hook_;
  FaultHook fault_hook_;
  std::unordered_map<uint32_t, isa::Instr> decode_cache_;

  // Architectural counters (Zicntr), cleared by reset().
  uint64_t csr_cycle_ = 0;
  uint64_t csr_instret_ = 0;
  uint32_t csr_mscratch_ = 0;

  // Hazard tracking across the run loop.
  bool prev_mem_unpaired_ = false;  ///< dual-issue pairing state
  bool last_was_load_ = false;
  uint8_t last_load_rd_ = 0;
  isa::Opcode last_load_op_ = isa::Opcode::kInvalid;
  uint32_t last_load_pc_ = 0;
  int last_sdotsp_spr_ = -1;
};

}  // namespace rnnasip::iss
