#include "src/iss/memory.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/common/check.h"

namespace rnnasip::iss {

namespace {

[[noreturn]] void throw_mem_trap(TrapCause cause, const char* what, uint32_t addr,
                                 uint32_t n, uint32_t align, bool is_store) {
  std::ostringstream os;
  os << what << ": addr=0x" << std::hex << addr << std::dec << " size=" << n
     << (is_store ? " write" : " read");
  if (cause == TrapCause::kMemMisaligned) os << " align=" << align;
  throw TrapException(cause, addr, os.str());
}

}  // namespace

Memory::Memory(uint32_t size, uint32_t base) : base_(base), bytes_(size, 0) {}

const uint8_t* Memory::resolve(uint32_t addr, uint32_t n, uint32_t align,
                               bool is_store) const {
  for (const Segment& seg : segments_) {
    if (addr >= seg.base && addr - seg.base < seg.size) {
      // The whole access must fit: generated programs never straddle a
      // segment boundary, so a spill is a mapping bug worth trapping on.
      if (addr - seg.base + n > seg.size) {
        throw_mem_trap(TrapCause::kMemOutOfRange, "access straddles shared segment",
                       addr, n, align, is_store);
      }
      if ((addr & (align - 1)) != 0) {
        throw_mem_trap(TrapCause::kMemMisaligned, "misaligned access", addr, n,
                       align, is_store);
      }
      if (is_store && seg.read_only) {
        throw_mem_trap(TrapCause::kMemWriteProtected,
                       "store into read-only shared segment", addr, n, align,
                       is_store);
      }
      return seg.data->data() + (addr - seg.base);
    }
  }
  if (!(addr >= base_ && addr - base_ + n <= bytes_.size())) {
    throw_mem_trap(TrapCause::kMemOutOfRange, "memory access out of range", addr, n,
                   align, is_store);
  }
  if ((addr & (align - 1)) != 0) {
    throw_mem_trap(TrapCause::kMemMisaligned, "misaligned access", addr, n, align,
                   is_store);
  }
  return bytes_.data() + (addr - base_);
}

uint8_t* Memory::resolve_mut(uint32_t addr, uint32_t n, uint32_t align,
                             bool is_store) {
  return const_cast<uint8_t*>(resolve(addr, n, align, is_store));
}

uint8_t Memory::load8(uint32_t addr) const { return *resolve(addr, 1, 1, false); }

uint16_t Memory::load16(uint32_t addr) const {
  uint16_t v;
  std::memcpy(&v, resolve(addr, 2, 2, false), 2);
  return v;
}

uint32_t Memory::load32(uint32_t addr) const {
  uint32_t v;
  std::memcpy(&v, resolve(addr, 4, 4, false), 4);
  return v;
}

void Memory::store8(uint32_t addr, uint8_t v) { *resolve_mut(addr, 1, 1, true) = v; }

void Memory::store16(uint32_t addr, uint16_t v) {
  std::memcpy(resolve_mut(addr, 2, 2, true), &v, 2);
}

void Memory::store32(uint32_t addr, uint32_t v) {
  std::memcpy(resolve_mut(addr, 4, 4, true), &v, 4);
}

void Memory::write_block(uint32_t addr, std::span<const uint8_t> data) {
  uint8_t* dst = resolve_mut(addr, static_cast<uint32_t>(data.size()), 1, true);
  std::copy(data.begin(), data.end(), dst);
}

void Memory::write_words(uint32_t addr, std::span<const uint32_t> words) {
  std::memcpy(resolve_mut(addr, static_cast<uint32_t>(words.size() * 4), 4, true),
              words.data(), words.size() * 4);
}

void Memory::write_halves(uint32_t addr, std::span<const int16_t> halves) {
  std::memcpy(resolve_mut(addr, static_cast<uint32_t>(halves.size() * 2), 2, true),
              halves.data(), halves.size() * 2);
}

std::vector<int16_t> Memory::read_halves(uint32_t addr, size_t count) const {
  std::vector<int16_t> out(count);
  std::memcpy(out.data(), resolve(addr, static_cast<uint32_t>(count * 2), 2, false),
              count * 2);
  return out;
}

std::vector<int32_t> Memory::read_words_signed(uint32_t addr, size_t count) const {
  std::vector<int32_t> out(count);
  std::memcpy(out.data(), resolve(addr, static_cast<uint32_t>(count * 4), 4, false),
              count * 4);
  return out;
}

std::vector<uint8_t> Memory::read_block(uint32_t addr, uint32_t len) const {
  std::vector<uint8_t> out(len);
  if (len > 0) std::memcpy(out.data(), resolve(addr, len, 1, false), len);
  return out;
}

void Memory::clear() { std::fill(bytes_.begin(), bytes_.end(), 0); }

void Memory::flip_bit(uint32_t addr, uint32_t bit) {
  // is_store=false: an SEU does not respect write protection.
  const uint8_t* p = resolve(addr, 1, 1, false);
  *const_cast<uint8_t*>(p) ^= static_cast<uint8_t>(1u << (bit & 7));
}

void Memory::map_segment(uint32_t seg_base,
                         std::shared_ptr<std::vector<uint8_t>> data,
                         bool read_only) {
  Segment seg;
  seg.base = seg_base;
  seg.size = static_cast<uint32_t>(data->size());
  seg.data = std::move(data);
  seg.read_only = read_only;
  for (const Segment& other : segments_) {
    const bool disjoint =
        seg.base + seg.size <= other.base || other.base + other.size <= seg.base;
    if (!disjoint) {
      throw TrapException(TrapCause::kMemOutOfRange, seg.base,
                          "shared segment overlaps an existing mapping");
    }
  }
  segments_.push_back(std::move(seg));
}

void Memory::unmap_segments() { segments_.clear(); }

uint8_t* Memory::segment_bytes(size_t i) {
  RNNASIP_CHECK(i < segments_.size());
  return segments_[i].data->data();
}

Memory::SegmentInfo Memory::segment_info(size_t i) const {
  RNNASIP_CHECK(i < segments_.size());
  const Segment& s = segments_[i];
  return SegmentInfo{s.base, s.size, s.read_only};
}

}  // namespace rnnasip::iss
