#include "src/iss/memory.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace rnnasip::iss {

namespace {

[[noreturn]] void throw_mem_trap(TrapCause cause, const char* what, uint32_t addr,
                                 uint32_t n, uint32_t align, bool is_store) {
  std::ostringstream os;
  os << what << ": addr=0x" << std::hex << addr << std::dec << " size=" << n
     << (is_store ? " write" : " read");
  if (cause == TrapCause::kMemMisaligned) os << " align=" << align;
  throw TrapException(cause, addr, os.str());
}

}  // namespace

Memory::Memory(uint32_t size, uint32_t base) : base_(base), bytes_(size, 0) {}

void Memory::check_range(uint32_t addr, uint32_t n, uint32_t align,
                         bool is_store) const {
  if (!(addr >= base_ && addr - base_ + n <= bytes_.size())) {
    throw_mem_trap(TrapCause::kMemOutOfRange, "memory access out of range", addr, n,
                   align, is_store);
  }
  if ((addr & (align - 1)) != 0) {
    throw_mem_trap(TrapCause::kMemMisaligned, "misaligned access", addr, n, align,
                   is_store);
  }
}

uint8_t Memory::load8(uint32_t addr) const {
  check_range(addr, 1, 1, false);
  return bytes_[addr - base_];
}

uint16_t Memory::load16(uint32_t addr) const {
  check_range(addr, 2, 2, false);
  uint16_t v;
  std::memcpy(&v, &bytes_[addr - base_], 2);
  return v;
}

uint32_t Memory::load32(uint32_t addr) const {
  check_range(addr, 4, 4, false);
  uint32_t v;
  std::memcpy(&v, &bytes_[addr - base_], 4);
  return v;
}

void Memory::store8(uint32_t addr, uint8_t v) {
  check_range(addr, 1, 1, true);
  bytes_[addr - base_] = v;
}

void Memory::store16(uint32_t addr, uint16_t v) {
  check_range(addr, 2, 2, true);
  std::memcpy(&bytes_[addr - base_], &v, 2);
}

void Memory::store32(uint32_t addr, uint32_t v) {
  check_range(addr, 4, 4, true);
  std::memcpy(&bytes_[addr - base_], &v, 4);
}

void Memory::write_block(uint32_t addr, std::span<const uint8_t> data) {
  check_range(addr, static_cast<uint32_t>(data.size()), 1, true);
  std::copy(data.begin(), data.end(), bytes_.begin() + (addr - base_));
}

void Memory::write_words(uint32_t addr, std::span<const uint32_t> words) {
  check_range(addr, static_cast<uint32_t>(words.size() * 4), 4, true);
  std::memcpy(&bytes_[addr - base_], words.data(), words.size() * 4);
}

void Memory::write_halves(uint32_t addr, std::span<const int16_t> halves) {
  check_range(addr, static_cast<uint32_t>(halves.size() * 2), 2, true);
  std::memcpy(&bytes_[addr - base_], halves.data(), halves.size() * 2);
}

std::vector<int16_t> Memory::read_halves(uint32_t addr, size_t count) const {
  check_range(addr, static_cast<uint32_t>(count * 2), 2, false);
  std::vector<int16_t> out(count);
  std::memcpy(out.data(), &bytes_[addr - base_], count * 2);
  return out;
}

std::vector<int32_t> Memory::read_words_signed(uint32_t addr, size_t count) const {
  check_range(addr, static_cast<uint32_t>(count * 4), 4, false);
  std::vector<int32_t> out(count);
  std::memcpy(out.data(), &bytes_[addr - base_], count * 4);
  return out;
}

void Memory::clear() { std::fill(bytes_.begin(), bytes_.end(), 0); }

void Memory::flip_bit(uint32_t addr, uint32_t bit) {
  check_range(addr, 1, 1, true);
  bytes_[addr - base_] ^= static_cast<uint8_t>(1u << (bit & 7));
}

}  // namespace rnnasip::iss
