#include "src/iss/memory.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"

namespace rnnasip::iss {

Memory::Memory(uint32_t size, uint32_t base) : base_(base), bytes_(size, 0) {}

void Memory::check_range(uint32_t addr, uint32_t n, uint32_t align) const {
  RNNASIP_CHECK_MSG(addr >= base_ && addr - base_ + n <= bytes_.size(),
                    "memory access out of range: addr=0x" << std::hex << addr);
  RNNASIP_CHECK_MSG((addr & (align - 1)) == 0,
                    "misaligned access: addr=0x" << std::hex << addr << " align=" << std::dec
                                                 << align);
}

uint8_t Memory::load8(uint32_t addr) const {
  check_range(addr, 1, 1);
  return bytes_[addr - base_];
}

uint16_t Memory::load16(uint32_t addr) const {
  check_range(addr, 2, 2);
  uint16_t v;
  std::memcpy(&v, &bytes_[addr - base_], 2);
  return v;
}

uint32_t Memory::load32(uint32_t addr) const {
  check_range(addr, 4, 4);
  uint32_t v;
  std::memcpy(&v, &bytes_[addr - base_], 4);
  return v;
}

void Memory::store8(uint32_t addr, uint8_t v) {
  check_range(addr, 1, 1);
  bytes_[addr - base_] = v;
}

void Memory::store16(uint32_t addr, uint16_t v) {
  check_range(addr, 2, 2);
  std::memcpy(&bytes_[addr - base_], &v, 2);
}

void Memory::store32(uint32_t addr, uint32_t v) {
  check_range(addr, 4, 4);
  std::memcpy(&bytes_[addr - base_], &v, 4);
}

void Memory::write_block(uint32_t addr, std::span<const uint8_t> data) {
  check_range(addr, static_cast<uint32_t>(data.size()), 1);
  std::copy(data.begin(), data.end(), bytes_.begin() + (addr - base_));
}

void Memory::write_words(uint32_t addr, std::span<const uint32_t> words) {
  check_range(addr, static_cast<uint32_t>(words.size() * 4), 4);
  std::memcpy(&bytes_[addr - base_], words.data(), words.size() * 4);
}

void Memory::write_halves(uint32_t addr, std::span<const int16_t> halves) {
  check_range(addr, static_cast<uint32_t>(halves.size() * 2), 2);
  std::memcpy(&bytes_[addr - base_], halves.data(), halves.size() * 2);
}

std::vector<int16_t> Memory::read_halves(uint32_t addr, size_t count) const {
  check_range(addr, static_cast<uint32_t>(count * 2), 2);
  std::vector<int16_t> out(count);
  std::memcpy(out.data(), &bytes_[addr - base_], count * 2);
  return out;
}

std::vector<int32_t> Memory::read_words_signed(uint32_t addr, size_t count) const {
  check_range(addr, static_cast<uint32_t>(count * 4), 4);
  std::vector<int32_t> out(count);
  std::memcpy(out.data(), &bytes_[addr - base_], count * 4);
  return out;
}

void Memory::clear() { std::fill(bytes_.begin(), bytes_.end(), 0); }

}  // namespace rnnasip::iss
