// Tightly-coupled data/instruction memory (TCDM) model.
//
// RI5CY in the evaluated configuration talks to single-cycle scratchpad
// memory through a logarithmic interconnect; there are no caches and no
// wait states, so the memory model is a flat little-endian byte array.
// Misaligned accesses trap — the generated kernels keep natural alignment,
// and trapping catches generator bugs immediately.
//
// Multi-core clusters (src/serve) additionally map shared segments: a
// window of the address space backed by storage owned jointly with other
// Memory instances (weights loaded once, visible from every core). A
// read-only segment turns any store into a kMemWriteProtected trap, which
// is how the cluster enforces that no core can scribble on shared weights.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/iss/trap.h"

namespace rnnasip::iss {

class Memory {
 public:
  /// `size` bytes mapped at [base, base+size).
  explicit Memory(uint32_t size = 4u << 20, uint32_t base = 0);

  uint32_t base() const { return base_; }
  uint32_t size() const { return static_cast<uint32_t>(bytes_.size()); }

  uint8_t load8(uint32_t addr) const;
  uint16_t load16(uint32_t addr) const;
  uint32_t load32(uint32_t addr) const;
  void store8(uint32_t addr, uint8_t v);
  void store16(uint32_t addr, uint16_t v);
  void store32(uint32_t addr, uint32_t v);

  /// Bulk copy into memory (program text, weight/input images).
  void write_block(uint32_t addr, std::span<const uint8_t> data);
  void write_words(uint32_t addr, std::span<const uint32_t> words);
  void write_halves(uint32_t addr, std::span<const int16_t> halves);
  /// Bulk read (fetching results back from the device).
  std::vector<int16_t> read_halves(uint32_t addr, size_t count) const;
  std::vector<int32_t> read_words_signed(uint32_t addr, size_t count) const;
  /// Raw byte copy-out of [addr, addr+len) — checkpointing TCDM windows.
  std::vector<uint8_t> read_block(uint32_t addr, uint32_t len) const;

  /// Zero the private flat storage (fresh run on a reused image). Shared
  /// segments are left untouched — they belong to every mapping.
  void clear();

  /// Fault injection: XOR one bit of the byte at `addr` (bit in [0, 8)).
  /// Models a particle strike, so it ignores read-only protection.
  void flip_bit(uint32_t addr, uint32_t bit);

  /// Map `data` at [seg_base, seg_base + data->size()), shadowing the flat
  /// storage there. The backing is shared: mapping the same vector into
  /// several Memory instances aliases it across cores. An access that
  /// starts inside a segment must fit entirely within it; with
  /// `read_only`, stores into the segment trap with kMemWriteProtected.
  void map_segment(uint32_t seg_base, std::shared_ptr<std::vector<uint8_t>> data,
                   bool read_only);
  /// Drop every mapped segment (the flat storage reappears underneath).
  void unmap_segments();
  size_t segment_count() const { return segments_.size(); }

  /// Bounds and protection of mapped segment `i` (segment queries for
  /// MemoryMap::of and diagnostics).
  struct SegmentInfo {
    uint32_t base = 0;
    uint32_t size = 0;
    bool read_only = false;
  };
  SegmentInfo segment_info(size_t i) const;

  /// Raw host views for the translated backend (src/translate): the flat
  /// private storage and each mapped segment's backing bytes. The translated
  /// core re-captures these at bind time and replicates resolve()'s
  /// segment-shadowing, bounds, alignment, and write-protection rules inline
  /// — the pointers stay valid for the life of this Memory / the shared
  /// segment vectors.
  uint8_t* flat_bytes() { return bytes_.data(); }
  const uint8_t* flat_bytes() const { return bytes_.data(); }
  uint8_t* segment_bytes(size_t i);

 private:
  struct Segment {
    uint32_t base = 0;
    uint32_t size = 0;
    std::shared_ptr<std::vector<uint8_t>> data;
    bool read_only = false;
  };

  /// Traps (TrapException) with the faulting address, access size, and
  /// read/write direction on an out-of-range, misaligned, or
  /// write-protected access. Returns the host pointer for `addr`.
  const uint8_t* resolve(uint32_t addr, uint32_t bytes, uint32_t align,
                         bool is_store) const;
  uint8_t* resolve_mut(uint32_t addr, uint32_t bytes, uint32_t align,
                       bool is_store);

  uint32_t base_;
  std::vector<uint8_t> bytes_;
  std::vector<Segment> segments_;
};

}  // namespace rnnasip::iss
