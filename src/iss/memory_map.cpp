#include "src/iss/memory_map.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"

namespace rnnasip::iss {

void MemoryMap::add(MemSegment seg) {
  RNNASIP_CHECK_MSG(seg.size > 0, "empty memory-map segment");
  for (const MemSegment& s : segs_) {
    const bool disjoint = seg.end() <= s.base || s.end() <= seg.base;
    RNNASIP_CHECK_MSG(disjoint, "overlapping memory-map segments");
  }
  auto it = std::lower_bound(
      segs_.begin(), segs_.end(), seg.base,
      [](const MemSegment& s, uint32_t b) { return s.base < b; });
  segs_.insert(it, std::move(seg));
}

const MemSegment* MemoryMap::find(uint32_t addr) const {
  for (const MemSegment& s : segs_) {
    if (s.base > addr) break;
    if (s.contains(addr)) return &s;
  }
  return nullptr;
}

const MemSegment* MemoryMap::enclosing(uint32_t addr, uint32_t bytes) const {
  const MemSegment* s = find(addr);
  if (s == nullptr || bytes == 0) return s;
  return s->contains(addr, bytes) ? s : nullptr;
}

bool MemoryMap::writable(uint32_t addr, uint32_t bytes) const {
  const MemSegment* s = enclosing(addr, bytes);
  return s != nullptr && s->writable;
}

std::string MemoryMap::to_string() const {
  std::ostringstream os;
  for (const MemSegment& s : segs_) {
    os << s.name << " [0x" << std::hex << s.base << ", 0x" << s.end() << ")"
       << std::dec << (s.writable ? " rw" : " ro") << "\n";
  }
  return os.str();
}

MemoryMap MemoryMap::of(const Memory& mem) {
  MemoryMap map;
  for (size_t i = 0; i < mem.segment_count(); ++i) {
    const Memory::SegmentInfo s = mem.segment_info(i);
    map.add(MemSegment{"seg" + std::to_string(i), s.base, s.size, !s.read_only});
  }
  // Mapped segments shadow the flat storage, so the flat range appears as
  // the gaps between them.
  uint32_t cursor = mem.base();
  const uint64_t flat_end = static_cast<uint64_t>(mem.base()) + mem.size();
  size_t piece = 0;
  for (const MemSegment& s : std::vector<MemSegment>(map.segs_)) {
    if (s.end() <= cursor) continue;
    if (s.base >= flat_end) break;
    if (s.base > cursor)
      map.add(MemSegment{"flat" + std::to_string(piece++), cursor, s.base - cursor, true});
    cursor = s.end();
  }
  if (cursor < flat_end)
    map.add(MemSegment{"flat" + std::to_string(piece), cursor,
                       static_cast<uint32_t>(flat_end - cursor), true});
  return map;
}

}  // namespace rnnasip::iss
