// A queryable description of the device address space: named segments with
// bounds and writability.
//
// The Memory model itself only distinguishes "flat storage" from "mapped
// shared segments"; it has no notion of which addresses a *program* may
// legitimately touch. The MemoryMap carries that intent — text here, buffer
// region there, read-only parameters over there — so the static verifier
// (src/analysis) can prove every load/store lands inside a mapped segment
// before a single cycle is simulated, and so diagnostics can name the
// segment an address falls in.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/iss/memory.h"

namespace rnnasip::iss {

struct MemSegment {
  std::string name;
  uint32_t base = 0;
  uint32_t size = 0;
  bool writable = true;

  uint32_t end() const { return base + size; }
  /// Does [addr, addr+bytes) lie entirely inside this segment?
  bool contains(uint32_t addr, uint32_t bytes = 1) const {
    return addr >= base && bytes <= size && addr - base <= size - bytes;
  }
};

class MemoryMap {
 public:
  /// Add a segment. Segments are kept sorted by base; overlapping adds are
  /// rejected (CHECK) — a map with ambiguous ownership is a caller bug.
  void add(MemSegment seg);

  /// Segment containing `addr`, or nullptr.
  const MemSegment* find(uint32_t addr) const;
  /// Segment fully containing [addr, addr+bytes), or nullptr. An access
  /// spanning two adjacent segments is NOT enclosed — the hardware access
  /// would belong to two different resources.
  const MemSegment* enclosing(uint32_t addr, uint32_t bytes) const;
  /// Is [addr, addr+bytes) inside one segment?
  bool contains(uint32_t addr, uint32_t bytes = 1) const {
    return enclosing(addr, bytes) != nullptr;
  }
  /// Is [addr, addr+bytes) inside one *writable* segment?
  bool writable(uint32_t addr, uint32_t bytes = 1) const;

  std::span<const MemSegment> segments() const { return segs_; }
  bool empty() const { return segs_.empty(); }

  /// One line per segment: "name [base, end) rw|ro".
  std::string to_string() const;

  /// Describe an existing Memory: its flat storage as one writable segment
  /// plus every mapped shared segment (named "seg0", "seg1", ... in map
  /// order, read-only flags preserved).
  static MemoryMap of(const Memory& mem);

 private:
  std::vector<MemSegment> segs_;  // sorted by base
};

}  // namespace rnnasip::iss
