#include "src/iss/stats.h"

#include <sstream>

namespace rnnasip::iss {

using isa::Opcode;

void ExecStats::record(Opcode op, uint64_t cycles) {
  auto& s = by_op_[op];
  s.instrs += 1;
  s.cycles += cycles;
  instrs_ += 1;
  cycles_ += cycles;
}

void ExecStats::add_stall(Opcode op, StallCause cause, uint64_t cycles) {
  by_op_[op].cycles += cycles;
  cycles_ += cycles;
  stalls_[static_cast<size_t>(cause)] += cycles;
}

void ExecStats::note_penalty(StallCause cause, uint64_t cycles) {
  stalls_[static_cast<size_t>(cause)] += cycles;
}

uint64_t ExecStats::total_stall_cycles() const {
  uint64_t sum = 0;
  for (uint64_t c : stalls_) sum += c;
  return sum;
}

bool ExecStats::identity_holds() const {
  return cycles_ == instrs_ + total_stall_cycles() - dual_issue_saved_;
}

uint64_t ExecStats::hwloop_overhead_cycles() const {
  uint64_t sum = 0;
  for (const auto& [op, s] : by_op_) {
    switch (op) {
      case Opcode::kLpSetup:
      case Opcode::kLpSetupi:
      case Opcode::kLpStarti:
      case Opcode::kLpEndi:
      case Opcode::kLpCount:
      case Opcode::kLpCounti:
        sum += s.cycles;
        break;
      default:
        break;
    }
  }
  return sum;
}

const char* stall_cause_name(StallCause cause) {
  switch (cause) {
    case StallCause::kLoadUse: return "load_use";
    case StallCause::kSprConflict: return "spr_conflict";
    case StallCause::kTakenBranch: return "taken_branch";
    case StallCause::kJump: return "jump";
    case StallCause::kMemWait: return "mem_wait";
    case StallCause::kDivider: return "divider";
    case StallCause::kCount_: break;
  }
  return "?";
}

uint64_t mac_count(Opcode op) {
  switch (op) {
    case Opcode::kMul:
    case Opcode::kPMac:
    case Opcode::kPMsu:
      return 1;
    case Opcode::kPvDotspH:
    case Opcode::kPvSdotspH:
    case Opcode::kPvDotupH:
    case Opcode::kPvSdotupH:
    case Opcode::kPvDotspScH:
    case Opcode::kPvSdotspScH:
    case Opcode::kPlSdotspH0:
    case Opcode::kPlSdotspH1:
      return 2;
    case Opcode::kPvDotspB:
    case Opcode::kPvSdotspB:
      return 4;
    default:
      return 0;
  }
}

void ExecStats::merge(const ExecStats& other) {
  for (const auto& [op, s] : other.by_op_) {
    auto& d = by_op_[op];
    d.instrs += s.instrs;
    d.cycles += s.cycles;
  }
  instrs_ += other.instrs_;
  cycles_ += other.cycles_;
  macs_ += other.macs_;
  for (size_t i = 0; i < kStallCauseCount; ++i) stalls_[i] += other.stalls_[i];
  dual_issue_saved_ += other.dual_issue_saved_;
  traps_ += other.traps_;
  watchdogs_ += other.watchdogs_;
}

void ExecStats::reset() {
  by_op_.clear();
  instrs_ = cycles_ = macs_ = 0;
  stalls_.fill(0);
  dual_issue_saved_ = traps_ = watchdogs_ = 0;
}

std::string display_group(Opcode op) {
  switch (op) {
    case Opcode::kPLb:
    case Opcode::kPLbu:
    case Opcode::kPLh:
    case Opcode::kPLhu:
    case Opcode::kPLw:
    case Opcode::kPLwRr:
    case Opcode::kPLhRr:
      return "lw!";
    case Opcode::kPSb:
    case Opcode::kPSh:
    case Opcode::kPSw:
      return "sw!";
    case Opcode::kPvSdotspH:
    case Opcode::kPvDotspH:
    case Opcode::kPvSdotspB:
    case Opcode::kPvDotspB:
      return "pv.sdot";
    case Opcode::kPlSdotspH0:
    case Opcode::kPlSdotspH1:
      return "pl.sdot";
    case Opcode::kPlTanh:
    case Opcode::kPlSig:
      return "tanh,sig";
    case Opcode::kPMac:
    case Opcode::kPMsu:
      return "mac";
    case Opcode::kLb:
    case Opcode::kLbu:
    case Opcode::kLh:
    case Opcode::kLhu:
      return "lh";
    case Opcode::kLpSetup:
    case Opcode::kLpSetupi:
    case Opcode::kLpStarti:
    case Opcode::kLpEndi:
    case Opcode::kLpCount:
    case Opcode::kLpCounti:
      return "lp.setup";
    default:
      return isa::mnemonic(op);
  }
}

std::string ExecStats::to_csv() const {
  std::ostringstream os;
  os << "mnemonic,instrs,cycles\n";
  for (const auto& [name, s] : by_display_group()) {
    os << name << ',' << s.instrs << ',' << s.cycles << '\n';
  }
  os << "total," << instrs_ << ',' << cycles_ << '\n';
  return os.str();
}

std::map<std::string, OpStat> ExecStats::by_display_group() const {
  std::map<std::string, OpStat> out;
  for (const auto& [op, s] : by_op_) {
    auto& d = out[display_group(op)];
    d.instrs += s.instrs;
    d.cycles += s.cycles;
  }
  return out;
}

}  // namespace rnnasip::iss
