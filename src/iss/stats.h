// Execution statistics — the raw material for Table I and Fig. 3.
//
// The ISS attributes every cycle to the instruction that caused it: a
// load-use stall is charged to the *load* (that is how the paper's Table I
// reports lw! at 1.5 cycles/instruction in column b), a taken-branch bubble
// to the branch, a multi-cycle divide to the divide.
//
// On top of the per-opcode histogram, every cycle that is not a plain
// 1-cycle issue is tagged with a StallCause, so the cycle budget decomposes
// exactly:
//
//   total_cycles == total_instrs + sum(stall_cycles) - dual_issue_saved
//
// (identity_holds() checks this; the observability layer asserts it after
// every suite run). Trap and watchdog terminations retire no instruction
// and consume no cycles, so they are counted as events, not cycles.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "src/isa/opcode.h"

namespace rnnasip::iss {

/// Where a non-issue cycle went. Every extra cycle the timing model charges
/// is tagged with exactly one cause.
enum class StallCause : uint8_t {
  kLoadUse = 0,    ///< consumer directly after the producing load
  kSprConflict,    ///< back-to-back pl.sdotsp on the same SPR
  kTakenBranch,    ///< taken-branch bubble
  kJump,           ///< jal/jalr bubble
  kMemWait,        ///< data-memory wait states (mem_wait_states > 0)
  kDivider,        ///< serial-divider cycles beyond the issue cycle
  kCount_,
};

inline constexpr size_t kStallCauseCount = static_cast<size_t>(StallCause::kCount_);

/// Short stable name ("load_use", "spr_conflict", ...), used by reports,
/// trace exports, and the BENCH JSON schema.
const char* stall_cause_name(StallCause cause);

/// MACs retired by one instance of `op` (0 for non-MAC instructions,
/// 2 for the 16-bit dot products, 4 for the 8-bit ones).
uint64_t mac_count(isa::Opcode op);

struct OpStat {
  uint64_t instrs = 0;
  uint64_t cycles = 0;
};

class ExecStats {
 public:
  void record(isa::Opcode op, uint64_t cycles);
  /// Charge extra cycles to an opcode after the fact (post-hoc stall
  /// attribution, e.g. a load-use stall charged back to the load).
  void add_stall(isa::Opcode op, StallCause cause, uint64_t cycles);
  /// Tag cycles that are already part of a record()ed instruction cost
  /// (taken-branch/jump penalty, divider, memory wait states, ...).
  void note_penalty(StallCause cause, uint64_t cycles);
  /// A dual-issue pairing removed one issue cycle from the recorded cost.
  void note_dual_issue_save(uint64_t cycles) { dual_issue_saved_ += cycles; }
  void note_trap() { traps_ += 1; }
  void note_watchdog() { watchdogs_ += 1; }
  void add_macs(uint64_t macs) { macs_ += macs; }

  uint64_t total_instrs() const { return instrs_; }
  uint64_t total_cycles() const { return cycles_; }
  uint64_t total_macs() const { return macs_; }

  uint64_t stall_cycles(StallCause cause) const {
    return stalls_[static_cast<size_t>(cause)];
  }
  const std::array<uint64_t, kStallCauseCount>& stall_cycles() const { return stalls_; }
  uint64_t total_stall_cycles() const;
  uint64_t dual_issue_saved() const { return dual_issue_saved_; }
  uint64_t traps() const { return traps_; }
  uint64_t watchdogs() const { return watchdogs_; }

  /// Cycles spent issuing hardware-loop bookkeeping (the lp.* instructions
  /// themselves; the back-edges are free). Derived from the histogram —
  /// this is the "hardware-loop overhead" row of the taxonomy reports.
  uint64_t hwloop_overhead_cycles() const;

  /// The cycle-accounting identity:
  ///   cycles == instrs + sum(stall cycles) - dual-issue savings.
  /// Holds by construction when every extra cycle was tagged; the
  /// observability layer asserts it after every run.
  bool identity_holds() const;

  /// Per-opcode breakdown.
  const std::map<isa::Opcode, OpStat>& by_opcode() const { return by_op_; }

  /// Breakdown keyed by display mnemonic with the paper's Table I grouping:
  /// all post-increment loads print as "lw!", pl.tanh and pl.sig merge into
  /// "tanh,sig", pv.sdotsp.h prints as "pv.sdot", pl.sdotsp.h.x as "pl.sdot".
  std::map<std::string, OpStat> by_display_group() const;

  /// Accumulate another run into this one (suite totals).
  void merge(const ExecStats& other);

  void reset();

  /// CSV dump: "mnemonic,instrs,cycles" rows (display grouping), then a
  /// total row — machine-readable Table-I material.
  std::string to_csv() const;

 private:
  std::map<isa::Opcode, OpStat> by_op_;
  uint64_t instrs_ = 0;
  uint64_t cycles_ = 0;
  uint64_t macs_ = 0;
  std::array<uint64_t, kStallCauseCount> stalls_{};
  uint64_t dual_issue_saved_ = 0;
  uint64_t traps_ = 0;
  uint64_t watchdogs_ = 0;
};

/// Display name used by Table-I-style outputs for one opcode.
std::string display_group(isa::Opcode op);

}  // namespace rnnasip::iss
