// Execution statistics — the raw material for Table I and Fig. 3.
//
// The ISS attributes every cycle to the instruction that caused it: a
// load-use stall is charged to the *load* (that is how the paper's Table I
// reports lw! at 1.5 cycles/instruction in column b), a taken-branch bubble
// to the branch, a multi-cycle divide to the divide.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/isa/opcode.h"

namespace rnnasip::iss {

struct OpStat {
  uint64_t instrs = 0;
  uint64_t cycles = 0;
};

class ExecStats {
 public:
  void record(isa::Opcode op, uint64_t cycles);
  /// Charge extra cycles to an opcode after the fact (stall attribution).
  void add_stall(isa::Opcode op, uint64_t cycles);
  void add_macs(uint64_t macs) { macs_ += macs; }

  uint64_t total_instrs() const { return instrs_; }
  uint64_t total_cycles() const { return cycles_; }
  uint64_t total_macs() const { return macs_; }

  /// Per-opcode breakdown.
  const std::map<isa::Opcode, OpStat>& by_opcode() const { return by_op_; }

  /// Breakdown keyed by display mnemonic with the paper's Table I grouping:
  /// all post-increment loads print as "lw!", pl.tanh and pl.sig merge into
  /// "tanh,sig", pv.sdotsp.h prints as "pv.sdot", pl.sdotsp.h.x as "pl.sdot".
  std::map<std::string, OpStat> by_display_group() const;

  /// Accumulate another run into this one (suite totals).
  void merge(const ExecStats& other);

  void reset();

  /// CSV dump: "mnemonic,instrs,cycles" rows (display grouping), then a
  /// total row — machine-readable Table-I material.
  std::string to_csv() const;

 private:
  std::map<isa::Opcode, OpStat> by_op_;
  uint64_t instrs_ = 0;
  uint64_t cycles_ = 0;
  uint64_t macs_ = 0;
};

/// Display name used by Table-I-style outputs for one opcode.
std::string display_group(isa::Opcode op);

}  // namespace rnnasip::iss
