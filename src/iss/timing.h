// Cycle cost model of the RI5CY 4-stage in-order pipeline, calibrated
// against the per-instruction cycle/instruction ratios of the paper's
// Table I:
//
//   * taken branches retire in 2 cycles (bltu: 3'248 kcyc / 1'627 kinstr),
//   * jumps retire in 2 cycles (jal: 10 kcyc / 5 kinstr),
//   * a load immediately followed by a consumer stalls 1 cycle, charged to
//     the load (lw!: 1.5 cyc/instr in col. b, 1.0 once tiling separates the
//     load from its use in col. c, 2.0 for the level-d bubble of Table II),
//   * hardware-loop back-edges are free,
//   * pl.sdotsp.h.x issues MAC and LSU in parallel in 1 cycle; only a
//     back-to-back reuse of the same SPR stalls (the generated schedules
//     alternate SPR 0/1 exactly to avoid this).
#pragma once

#include <cstdint>

namespace rnnasip::iss {

struct TimingModel {
  uint32_t taken_branch_penalty = 1;  ///< extra cycles on a taken branch
  uint32_t jump_penalty = 1;          ///< extra cycles for jal/jalr
  uint32_t load_use_stall = 1;        ///< consumer directly after a load
  uint32_t div_cycles = 32;           ///< total cycles of div/rem (serial divider)
  uint32_t spr_conflict_stall = 1;    ///< back-to-back pl.sdotsp on one SPR
  /// Extra cycles on every data-memory access. The paper's TCDM is
  /// single-cycle (0); raising this models a slower memory or interconnect
  /// contention and is exercised by the memory-sensitivity ablation.
  uint32_t mem_wait_states = 0;
  /// What-if knob (default off — RI5CY is single-issue): allow an
  /// independent single-cycle ALU/MUL/SIMD instruction to issue in the same
  /// cycle as an immediately preceding memory instruction, an optimistic
  /// bound on an in-order dual-issue (mem+ALU) core. The dual-issue
  /// ablation compares this against the paper's ISA route to the same
  /// bandwidth (the fused pl.sdotsp at 3.4% area).
  bool dual_issue = false;
};

}  // namespace rnnasip::iss
