#include "src/iss/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/asm/disasm.h"

namespace rnnasip::iss {

Core::TraceFn TraceWriter::hook() {
  return [this](uint32_t pc, const isa::Instr& in, uint64_t cycles) {
    cycle_ += cycles;
    if (max_lines_ != 0 && lines_.size() >= max_lines_) {
      truncated_ = true;
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%10llu  %08x  ",
                  static_cast<unsigned long long>(cycle_), pc);
    lines_.push_back(buf + assembler::disassemble(in, pc));
  };
}

Core::StallFn TraceWriter::stall_hook() {
  return [this](uint32_t, StallCause, uint64_t cycles, bool post_hoc) {
    // In-cost penalties already arrived inside the owning instruction's
    // traced cost; only post-hoc attribution moves the clock.
    if (post_hoc) cycle_ += cycles;
  };
}

void TraceWriter::attach(Core& core) {
  core.set_trace(hook());
  core.set_stall_hook(stall_hook());
}

std::string TraceWriter::str() const {
  std::string out;
  for (const auto& l : lines_) {
    out += l;
    out += '\n';
  }
  if (truncated_) out += "... (truncated)\n";
  return out;
}

Core::TraceFn Profiler::hook() {
  return [this](uint32_t pc, const isa::Instr& in, uint64_t cycles) {
    by_pc_[pc] += cycles;
    total_ += cycles;
    // Overwrite: re-executed text at this PC may have been rewritten
    // (self-modifying programs, fault campaigns flipping text bits); the
    // hotspot report must show what actually ran last.
    instr_by_pc_.insert_or_assign(pc, in);
  };
}

Core::StallFn Profiler::stall_hook() {
  return [this](uint32_t pc, StallCause, uint64_t cycles, bool post_hoc) {
    if (!post_hoc) return;
    by_pc_[pc] += cycles;
    total_ += cycles;
  };
}

void Profiler::attach(Core& core) {
  core.set_trace(hook());
  core.set_stall_hook(stall_hook());
}

std::vector<Profiler::Hotspot> Profiler::hotspots(const assembler::Program& program,
                                                  size_t k) const {
  std::vector<Hotspot> out;
  out.reserve(by_pc_.size());
  for (const auto& [pc, cycles] : by_pc_) {
    Hotspot h;
    h.pc = pc;
    h.cycles = cycles;
    h.share = total_ == 0 ? 0.0 : static_cast<double>(cycles) / static_cast<double>(total_);
    const uint32_t idx = (pc - program.base) / 4;
    if (auto it = instr_by_pc_.find(pc); it != instr_by_pc_.end()) {
      h.disasm = assembler::disassemble(it->second, pc);
    } else if (pc >= program.base && idx < program.instrs.size()) {
      h.disasm = assembler::disassemble(program.instrs[idx], pc);
    }
    out.push_back(std::move(h));
  }
  std::sort(out.begin(), out.end(),
            [](const Hotspot& a, const Hotspot& b) { return a.cycles > b.cycles; });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace rnnasip::iss
