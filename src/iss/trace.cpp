#include "src/iss/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/asm/disasm.h"

namespace rnnasip::iss {

Core::TraceFn TraceWriter::hook() {
  return [this](uint32_t pc, const isa::Instr& in, uint64_t cycles) {
    cycle_ += cycles;
    if (max_lines_ != 0 && lines_.size() >= max_lines_) {
      truncated_ = true;
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%10llu  %08x  ",
                  static_cast<unsigned long long>(cycle_), pc);
    lines_.push_back(buf + assembler::disassemble(in, pc));
  };
}

std::string TraceWriter::str() const {
  std::string out;
  for (const auto& l : lines_) {
    out += l;
    out += '\n';
  }
  if (truncated_) out += "... (truncated)\n";
  return out;
}

Core::TraceFn Profiler::hook() {
  return [this](uint32_t pc, const isa::Instr& in, uint64_t cycles) {
    by_pc_[pc] += cycles;
    total_ += cycles;
    instr_by_pc_.emplace(pc, in);
  };
}

std::vector<Profiler::Hotspot> Profiler::hotspots(const assembler::Program& program,
                                                  size_t k) const {
  std::vector<Hotspot> out;
  out.reserve(by_pc_.size());
  for (const auto& [pc, cycles] : by_pc_) {
    Hotspot h;
    h.pc = pc;
    h.cycles = cycles;
    h.share = total_ == 0 ? 0.0 : static_cast<double>(cycles) / static_cast<double>(total_);
    const uint32_t idx = (pc - program.base) / 4;
    if (pc >= program.base && idx < program.instrs.size()) {
      h.disasm = assembler::disassemble(program.instrs[idx], pc);
    } else if (auto it = instr_by_pc_.find(pc); it != instr_by_pc_.end()) {
      h.disasm = assembler::disassemble(it->second, pc);
    }
    out.push_back(std::move(h));
  }
  std::sort(out.begin(), out.end(),
            [](const Hotspot& a, const Hotspot& b) { return a.cycles > b.cycles; });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace rnnasip::iss
