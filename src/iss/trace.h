// Execution tracing and profiling on top of Core's per-instruction hook.
//
// TraceWriter produces objdump-style text ("cycle pc disassembly") with an
// optional cap; Profiler aggregates cycles per PC and renders a hotspot
// report with disassembly — how the kernel inner loops were found and tuned.
//
// Both consumers also take the core's stall hook: post-hoc stall
// attribution (load-use cycles charged back to the load after it retired)
// never appears in a traced instruction cost, so a consumer that only sums
// trace costs drifts from ExecStats::total_cycles(). attach() installs both
// hooks so the cycle clocks agree exactly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/asm/program.h"
#include "src/iss/core.h"

namespace rnnasip::iss {

class TraceWriter {
 public:
  /// Install on a core. Keeps at most `max_lines` lines (0 = unlimited).
  explicit TraceWriter(size_t max_lines = 10000) : max_lines_(max_lines) {}

  /// Hook suitable for Core::set_trace.
  Core::TraceFn hook();
  /// Hook suitable for Core::set_stall_hook; folds post-hoc stall cycles
  /// into the trace's cycle column.
  Core::StallFn stall_hook();
  /// Install both hooks on `core` (the cycle column then matches
  /// core.stats().total_cycles() exactly).
  void attach(Core& core);

  const std::vector<std::string>& lines() const { return lines_; }
  bool truncated() const { return truncated_; }
  uint64_t cycles() const { return cycle_; }
  std::string str() const;

 private:
  size_t max_lines_;
  uint64_t cycle_ = 0;
  std::vector<std::string> lines_;
  bool truncated_ = false;
};

/// Aggregates executed cycles per PC.
class Profiler {
 public:
  Core::TraceFn hook();
  /// Hook suitable for Core::set_stall_hook; charges post-hoc stall cycles
  /// to the owning (load) PC, as ExecStats does per opcode.
  Core::StallFn stall_hook();
  /// Install both hooks on `core`.
  void attach(Core& core);

  uint64_t total_cycles() const { return total_; }
  const std::map<uint32_t, uint64_t>& cycles_by_pc() const { return by_pc_; }

  struct Hotspot {
    uint32_t pc;
    uint64_t cycles;
    double share;  // of total cycles
    std::string disasm;
  };
  /// Top `k` PCs by cycles, annotated with disassembly from `program`.
  std::vector<Hotspot> hotspots(const assembler::Program& program, size_t k = 10) const;

 private:
  std::map<uint32_t, uint64_t> by_pc_;
  std::map<uint32_t, isa::Instr> instr_by_pc_;
  uint64_t total_ = 0;
};

}  // namespace rnnasip::iss
