// Structured trap model.
//
// Always-on silicon must treat a trap as a recoverable event, not a process
// abort: an SEU campaign flips a bit, the affected run dies with a precise
// diagnosis, and the harness moves on to the next network. Every trap the
// ISS can raise therefore carries a machine-readable record — cause code,
// faulting pc, faulting address (memory traps) and a human-readable
// message — surfaced through RunResult. The core is left in a well-defined
// state: the faulting instruction did not retire, pc still points at it,
// and statistics exclude it, so a caller may inspect, patch, and resume.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rnnasip::iss {

/// Trap taxonomy (docs/FAULTS.md documents each entry).
enum class TrapCause : uint8_t {
  kNone = 0,           ///< no trap occurred
  kIllegalInstruction, ///< fetched word does not decode
  kMemOutOfRange,      ///< access outside [base, base+size)
  kMemMisaligned,      ///< access not naturally aligned
  kMemWriteProtected,  ///< store into a read-only shared segment
  kCsrUnimplemented,   ///< CSR number outside the implemented set
  kCsrReadOnly,        ///< write to a read-only CSR
  kIsaGateXpulp,       ///< Xpulp instruction with has_xpulp = false
  kIsaGateRnnExt,      ///< RNN-ext instruction with has_rnn_ext = false
  kRdRs1Conflict,      ///< pl.sdotsp.h with rd == rs1
  kWatchdog,           ///< cycle watchdog expired (run loop, not a throw)
  kIntegrityMismatch,  ///< ABFT layer checksum disagreed with the golden one
  kBackendUnsupported, ///< request needs a capability its backend lacks
  kOther,              ///< unclassified std::runtime_error escaped execute()
};

inline const char* trap_cause_name(TrapCause c) {
  switch (c) {
    case TrapCause::kNone: return "none";
    case TrapCause::kIllegalInstruction: return "illegal-instruction";
    case TrapCause::kMemOutOfRange: return "mem-out-of-range";
    case TrapCause::kMemMisaligned: return "mem-misaligned";
    case TrapCause::kMemWriteProtected: return "mem-write-protected";
    case TrapCause::kCsrUnimplemented: return "csr-unimplemented";
    case TrapCause::kCsrReadOnly: return "csr-read-only";
    case TrapCause::kIsaGateXpulp: return "isa-gate-xpulp";
    case TrapCause::kIsaGateRnnExt: return "isa-gate-rnn-ext";
    case TrapCause::kRdRs1Conflict: return "rd-rs1-conflict";
    case TrapCause::kWatchdog: return "watchdog";
    case TrapCause::kIntegrityMismatch: return "abft-mismatch";
    case TrapCause::kBackendUnsupported: return "backend-unsupported";
    case TrapCause::kOther: return "other";
  }
  return "?";
}

/// The structured record a failed run reports.
struct Trap {
  TrapCause cause = TrapCause::kNone;
  uint32_t pc = 0;    ///< pc of the instruction that did not retire
  uint32_t addr = 0;  ///< faulting address for memory traps, else 0
  std::string message;
};

/// Thrown by Memory and Core::execute; Core::run() catches it, fills the
/// Trap record (adding the pc, which only the run loop knows), and returns.
/// Derives from std::runtime_error so host-side misuse of Memory outside a
/// run loop still surfaces as a diagnosable exception.
class TrapException : public std::runtime_error {
 public:
  TrapException(TrapCause cause, uint32_t addr, const std::string& message)
      : std::runtime_error(message), cause_(cause), addr_(addr) {}

  TrapCause cause() const { return cause_; }
  uint32_t addr() const { return addr_; }

 private:
  TrapCause cause_;
  uint32_t addr_;
};

}  // namespace rnnasip::iss
