#include "src/kernels/act_routines.h"

#include <vector>

#include "src/common/check.h"

namespace rnnasip::kernels {

using assembler::ProgramBuilder;
using namespace isa;

namespace {

/// One LUT word per interval: [q (Q3.12) : 16 | m (Q1.14) : 16].
uint32_t pack_entry(int16_t m, int16_t q) {
  return (static_cast<uint32_t>(static_cast<uint16_t>(q)) << 16) |
         static_cast<uint32_t>(static_cast<uint16_t>(m));
}

/// Emit one routine. Mirrors activation::PlaTable::eval_raw exactly:
///   |x| -> id = |x| >> N; id >= M -> one; else
///   y = (m*|x| + (q << 14) + 2^13) >> 14; sign fixup per function.
void emit_routine(ProgramBuilder& b, const activation::PlaTable& tbl, uint32_t lut_addr,
                  bool is_tanh) {
  const auto& spec = tbl.spec();
  const int32_t one = 4096;  // 1.0 in Q3.12
  auto interp = b.make_label();
  auto sign = b.make_label();
  auto done = b.make_label();

  // t0 = sign mask (x >> 31), t1 = |x|.
  b.srai(kT0, kA0, 31);
  b.xor_(kT1, kA0, kT0);
  b.sub(kT1, kT1, kT0);
  // t2 = interval index.
  b.srli(kT2, kT1, spec.log2_interval);
  b.addi(kA0, kZero, spec.num_intervals);
  b.bltu(kT2, kA0, interp);
  // Converged region: y = one.
  b.li(kA0, one);
  b.jal(kZero, sign);

  b.bind(interp);
  b.slli(kT2, kT2, 2);
  b.li(kA0, static_cast<int32_t>(lut_addr));
  b.add(kT2, kT2, kA0);
  b.lw(kT2, 0, kT2);  // packed (q << 16) | m
  // a0 = m (sign-extended low half), t2 = q.
  b.slli(kA0, kT2, 16);
  b.srai(kA0, kA0, 16);
  b.srai(kT2, kT2, 16);
  // y = (m*|x| + (q << 14) + 2^13) >> 14.
  b.mul(kA0, kA0, kT1);
  b.slli(kT2, kT2, 14);
  b.add(kA0, kA0, kT2);
  b.li(kT2, 1 << 13);
  b.add(kA0, kA0, kT2);
  b.srai(kA0, kA0, 14);

  b.bind(sign);
  b.beq(kT0, kZero, done);
  if (is_tanh) {
    b.sub(kA0, kZero, kA0);  // tanh(-x) = -tanh(x)
  } else {
    b.li(kT2, one);          // sig(-x) = 1 - sig(x)
    b.sub(kA0, kT2, kA0);
  }
  b.bind(done);
  b.jalr(kZero, kRa, 0);
}

}  // namespace

ActRoutines make_act_routine_labels(ProgramBuilder& b) {
  return ActRoutines{b.make_label(), b.make_label()};
}

void emit_act_routines(ProgramBuilder& b, DeviceAllocator& alloc,
                       const activation::PlaTable& tanh_tbl,
                       const activation::PlaTable& sig_tbl, const ActRoutines& labels,
                       obs::RegionRecorder* regions) {
  auto pack = [](const activation::PlaTable& t) {
    std::vector<uint32_t> words;
    words.reserve(t.slopes().size());
    for (size_t i = 0; i < t.slopes().size(); ++i)
      words.push_back(pack_entry(t.slopes()[i], t.offsets()[i]));
    return words;
  };
  const auto tanh_words = pack(tanh_tbl);
  const auto sig_words = pack(sig_tbl);
  const uint32_t tanh_lut = alloc.alloc_words(tanh_words);
  const uint32_t sig_lut = alloc.alloc_words(sig_words);

  {
    obs::Region region(regions, b, "act_tanh", obs::RegionKind::kKernel);
    b.bind(labels.tanh_label);
    emit_routine(b, tanh_tbl, tanh_lut, /*is_tanh=*/true);
  }
  {
    obs::Region region(regions, b, "act_sig", obs::RegionKind::kKernel);
    b.bind(labels.sig_label);
    emit_routine(b, sig_tbl, sig_lut, /*is_tanh=*/false);
  }
}

ActRoutines emit_act_routines(ProgramBuilder& b, DeviceAllocator& alloc,
                              const activation::PlaTable& tanh_tbl,
                              const activation::PlaTable& sig_tbl,
                              obs::RegionRecorder* regions) {
  ActRoutines r = make_act_routine_labels(b);
  emit_act_routines(b, alloc, tanh_tbl, sig_tbl, r, regions);
  return r;
}

}  // namespace rnnasip::kernels
