// Software piecewise-linear tanh/sigmoid subroutines.
//
// Optimization levels (a) and (b) have no pl.tanh / pl.sig instructions;
// LSTM activations run through these generated RV32IM subroutines instead.
// They read the same LUTs as the hardware unit (packed one interval per
// 32-bit word: offset q in the high half, slope m in the low half) and are
// bit-exact with activation::PlaTable::eval_raw — which is what lets every
// optimization level produce identical network outputs.
//
// Calling convention: argument and result in a0, clobbers t0-t2, returns
// via ra. Callers must keep live values out of a0/t0/t1/t2.
#pragma once

#include "src/activation/pla.h"
#include "src/asm/builder.h"
#include "src/kernels/layout.h"
#include "src/obs/region.h"

namespace rnnasip::kernels {

struct ActRoutines {
  assembler::ProgramBuilder::Label tanh_label{};
  assembler::ProgramBuilder::Label sig_label{};
};

/// Create the (unbound) routine labels so kernels can reference the
/// routines before they are emitted.
ActRoutines make_act_routine_labels(assembler::ProgramBuilder& b);

/// Write both LUTs into device memory and emit the two subroutines at the
/// builder's current position, binding `labels` (call once per program,
/// outside the main control flow; reach the routines with jal ra, <label>).
/// When `regions` is set, each routine gets its own kKernel region
/// ("act_tanh" / "act_sig") so callers' cycles-in-activation show up
/// separately in observability reports.
void emit_act_routines(assembler::ProgramBuilder& b, DeviceAllocator& alloc,
                       const activation::PlaTable& tanh_tbl,
                       const activation::PlaTable& sig_tbl, const ActRoutines& labels,
                       obs::RegionRecorder* regions = nullptr);

/// Convenience: create labels and emit immediately.
ActRoutines emit_act_routines(assembler::ProgramBuilder& b, DeviceAllocator& alloc,
                              const activation::PlaTable& tanh_tbl,
                              const activation::PlaTable& sig_tbl,
                              obs::RegionRecorder* regions = nullptr);

}  // namespace rnnasip::kernels
