#include "src/kernels/argmax.h"

#include "src/common/check.h"

namespace rnnasip::kernels {

using assembler::ProgramBuilder;
using assembler::Reg;
using assembler::RegPool;
using namespace isa;

void emit_argmax(ProgramBuilder& b, const ArgmaxLayout& L, OptLevel level) {
  RNNASIP_CHECK(L.count >= 1);
  const bool xp = uses_xpulp(level);
  RegPool pool;
  const Reg rP = pool.alloc();     // input pointer
  const Reg rI = pool.alloc();     // running index
  const Reg rBestV = pool.alloc();
  const Reg rBestI = pool.alloc();
  const Reg rV = pool.alloc();
  const Reg rCnt = pool.alloc();

  b.li(rP, static_cast<int32_t>(L.in_addr));
  if (xp) {
    b.p_lh(rBestV, 2, rP);
  } else {
    b.lh(rBestV, 0, rP);
    b.addi(rP, rP, 2);
  }
  b.li(rBestI, 0);
  b.li(rI, 0);
  if (L.count > 1) {
    b.li(rCnt, L.count - 1);
    auto loop = b.make_label();
    auto keep = b.make_label();
    b.bind(loop);
    if (xp) {
      b.p_lh(rV, 2, rP);
    } else {
      b.lh(rV, 0, rP);
      b.addi(rP, rP, 2);
    }
    b.addi(rI, rI, 1);
    // Strict greater-than keeps the first maximum on ties.
    b.bge(rBestV, rV, keep);
    b.mv(rBestV, rV);
    b.mv(rBestI, rI);
    b.bind(keep);
    b.addi(rCnt, rCnt, -1);
    b.bne(rCnt, kZero, loop);
  }
  b.li(rP, static_cast<int32_t>(L.out_addr));
  b.sh(rBestI, 0, rP);
}

}  // namespace rnnasip::kernels
