// Argmax kernel: the final operator of every DQN-style RRM policy (pick
// the best channel / power level / slot). Returns the index of the maximum
// int16 element, so the whole decision — not just the Q-values — comes off
// the core.
#pragma once

#include "src/asm/builder.h"
#include "src/kernels/layout.h"
#include "src/kernels/opt_level.h"

namespace rnnasip::kernels {

struct ArgmaxLayout {
  uint32_t in_addr = 0;   ///< count int16 values
  uint32_t out_addr = 0;  ///< one int16: the winning index (first on ties)
  int count = 0;
};

/// Emit code writing argmax(in[0..count)) to out. First maximum wins ties
/// (matching std::max_element). Works at every optimization level; the
/// Xpulp levels use post-increment loads.
void emit_argmax(assembler::ProgramBuilder& b, const ArgmaxLayout& layout, OptLevel level);

}  // namespace rnnasip::kernels
