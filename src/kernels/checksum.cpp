#include "src/kernels/checksum.h"

#include "src/common/check.h"

namespace rnnasip::kernels {

using assembler::Reg;
using assembler::RegPool;
using namespace isa;

void emit_fold_checksum(assembler::ProgramBuilder& b, OptLevel level, uint32_t src,
                        uint32_t slot, int count) {
  RNNASIP_CHECK(count > 0);
  RNNASIP_CHECK(src % 4 == 0);
  const int words = count / 2;
  const bool tail = (count % 2) != 0;
  RegPool pool;
  const Reg rS = pool.alloc();
  const Reg rAcc = pool.alloc();
  const Reg v0 = pool.alloc();
  b.li(rS, static_cast<int32_t>(src));
  b.li(rAcc, 0);
  if (uses_xpulp(level)) {
    // Unroll by two words: each xor consumes the load issued one slot
    // earlier, so the load-use interlock never fires inside the loop.
    const int pairs = words / 2;
    if (pairs > 0) {
      const Reg v1 = pool.alloc();
      const Reg rC = pool.alloc();
      b.li(rC, pairs);
      auto end = b.make_label();
      b.lp_setup(0, rC, end);
      b.p_lw(v0, 4, rS);
      b.p_lw(v1, 4, rS);
      b.add(rAcc, rAcc, v0);
      b.add(rAcc, rAcc, v1);
      b.bind(end);
      pool.free(v1);
      pool.free(rC);
    }
    if (words % 2 != 0) {
      b.p_lw(v0, 4, rS);
      b.add(rAcc, rAcc, v0);
    }
  } else if (words > 0) {
    const Reg rC = pool.alloc();
    b.li(rC, words);
    auto loop = b.make_label();
    b.bind(loop);
    b.lw(v0, 0, rS);
    b.add(rAcc, rAcc, v0);
    b.addi(rS, rS, 4);
    b.addi(rC, rC, -1);
    b.bne(rC, kZero, loop);
  }
  if (tail) {
    b.lhu(v0, 0, rS);
    b.add(rAcc, rAcc, v0);
  }
  const Reg rD = pool.alloc();
  b.li(rD, static_cast<int32_t>(slot));
  b.sw(rAcc, 0, rD);
}

}  // namespace rnnasip::kernels
