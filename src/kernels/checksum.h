// ABFT layer-output checksum emitter.
//
// After each layer, the instrumented program folds the layer's output
// buffer into one 32-bit modular-sum accumulator (word-wise over halfword
// pairs, little-endian; an odd trailing halfword folds in zero-extended)
// and stores it to a per-layer TCDM slot. The harness compares the slot —
// and its own re-fold of the bytes — against a golden checksum computed
// from the verified weights on the host (integrity::fold_halves mirrors
// this fold exactly), so any SEU perturbing the weight/accumulate path of
// a layer is caught at that layer's boundary.
//
// The fold is addition mod 2^32, not XOR, at the same 1-ALU-op-per-word
// cost. A single flipped bit changes a folded word by +/-2^b, so the sum
// always changes — full single-flip coverage, like XOR. Unlike XOR, carry
// propagation also catches the correlated multi-halfword failure mode a
// parity fold is provably blind to: a corrupted PLA segment shifting every
// output through it by the same power of two flips the same bit in an even
// number of halfwords, which cancels in XOR but accumulates in the sum.
#pragma once

#include <cstdint>

#include "src/asm/builder.h"
#include "src/kernels/opt_level.h"

namespace rnnasip::kernels {

/// Emit code folding `count` halfwords at `src` (4-byte aligned) into one
/// word stored to `slot`. Xpulp levels use a hardware loop unrolled by two
/// words so the xor consumers never sit in a load-use slot; the baseline
/// levels use a plain branch loop.
void emit_fold_checksum(assembler::ProgramBuilder& b, OptLevel level, uint32_t src,
                        uint32_t slot, int count);

}  // namespace rnnasip::kernels
