#include "src/kernels/conv.h"

#include "src/common/check.h"

namespace rnnasip::kernels {

using assembler::ProgramBuilder;
using assembler::Reg;
using assembler::RegPool;
using nn::ActKind;
using namespace isa;

ConvLayout alloc_conv(DeviceAllocator& alloc, const nn::ConvParamsQ& p, int in_h, int in_w,
                      uint32_t in_addr, uint32_t out_addr) {
  RNNASIP_CHECK_MSG(p.pad == 0, "generated conv kernels require pad == 0");
  RNNASIP_CHECK(p.stride >= 1);
  RNNASIP_CHECK(p.act == ActKind::kNone || p.act == ActKind::kReLU);
  ConvLayout L;
  L.in_ch = p.in_ch;
  L.out_ch = p.out_ch;
  L.kh = p.kh;
  L.kw = p.kw;
  L.stride = p.stride;
  L.in_h = in_h;
  L.in_w = in_w;
  L.out_h = nn::conv_out_dim(in_h, p.kh, p.stride, 0);
  L.out_w = nn::conv_out_dim(in_w, p.kw, p.stride, 0);
  RNNASIP_CHECK(L.out_h > 0 && L.out_w > 0);
  L.k = p.in_ch * p.kh * p.kw;
  L.kpad = (L.k + 3) & ~3;
  L.act = p.act;
  L.in_addr = in_addr;
  L.out_addr = out_addr;

  const int pixels = L.out_h * L.out_w;
  RNNASIP_CHECK_MSG(2 * pixels <= 2047,
                    "output plane too large for the strided store immediate");
  L.col_addr = alloc.alloc(static_cast<uint32_t>(2 * pixels * L.kpad), 4);

  // FC view: weight rows padded to kpad.
  nn::FcParamsQ fp;
  fp.w = nn::MatrixQ(p.out_ch, L.kpad);
  for (int oc = 0; oc < p.out_ch; ++oc)
    for (int i = 0; i < L.k; ++i)
      fp.w.at(oc, i) = p.w[static_cast<size_t>(oc) * L.k + i];
  fp.b = p.b;
  fp.act = p.act;
  L.fc = alloc_fc(alloc, fp, /*x_addr=*/L.col_addr, /*o_addr=*/L.out_addr);
  return L;
}

namespace {

/// addi if the immediate fits, otherwise li+add via `scratch`.
void advance(ProgramBuilder& b, Reg r, int bytes, Reg scratch) {
  if (bytes == 0) return;
  if (fits_signed(bytes, 12)) {
    b.addi(r, r, bytes);
  } else {
    b.li(scratch, bytes);
    b.add(r, r, scratch);
  }
}

// ------------------------------------------------------ level a direct ----

void emit_direct(ProgramBuilder& b, const ConvLayout& L) {
  RegPool pool;
  const Reg rWrow = pool.alloc();
  const Reg rWp = pool.alloc();
  const Reg rBp = pool.alloc();
  const Reg rOp = pool.alloc();
  const Reg rOcCnt = pool.alloc();
  const Reg rOyCnt = pool.alloc();
  const Reg rOxCnt = pool.alloc();
  const Reg rIcCnt = pool.alloc();
  const Reg rKyCnt = pool.alloc();
  const Reg rKxCnt = pool.alloc();
  const Reg rInRow = pool.alloc();
  const Reg rInPix = pool.alloc();
  const Reg rInC = pool.alloc();
  const Reg rInK = pool.alloc();
  const Reg rAccA = pool.alloc();  // accumulator slot address
  const Reg v1 = pool.alloc();
  const Reg v2 = pool.alloc();
  const Reg vT = pool.alloc();

  b.li(rWrow, static_cast<int32_t>(L.fc.w_addr));
  b.li(rBp, static_cast<int32_t>(L.fc.b_addr));
  b.li(rOp, static_cast<int32_t>(L.out_addr));
  b.li(rAccA, static_cast<int32_t>(L.fc.scratch_addr));
  b.li(rOcCnt, L.out_ch);

  auto oc_loop = b.make_label();
  b.bind(oc_loop);
  {
    b.li(rInRow, static_cast<int32_t>(L.in_addr));
    b.li(rOyCnt, L.out_h);
    auto oy_loop = b.make_label();
    b.bind(oy_loop);
    {
      b.mv(rInPix, rInRow);
      b.li(rOxCnt, L.out_w);
      auto ox_loop = b.make_label();
      b.bind(ox_loop);
      {
        // acc slot = bias << 12
        b.lh(vT, 0, rBp);
        b.slli(vT, vT, 12);
        b.sw(vT, 0, rAccA);
        b.mv(rWp, rWrow);
        b.mv(rInC, rInPix);
        b.li(rIcCnt, L.in_ch);
        auto ic_loop = b.make_label();
        b.bind(ic_loop);
        {
          b.mv(rInK, rInC);
          b.li(rKyCnt, L.kh);
          auto ky_loop = b.make_label();
          b.bind(ky_loop);
          {
            b.li(rKxCnt, L.kw);
            auto kx_loop = b.make_label();
            b.bind(kx_loop);
            {
              b.lh(v1, 0, rWp);
              b.lh(v2, 0, rInK);
              b.lw(vT, 0, rAccA);
              b.p_mac(vT, v1, v2);
              b.sw(vT, 0, rAccA);
              b.addi(rWp, rWp, 2);
              b.addi(rInK, rInK, 2);
              b.addi(rKxCnt, rKxCnt, -1);
              b.bne(rKxCnt, kZero, kx_loop);
            }
            advance(b, rInK, 2 * (L.in_w - L.kw), v1);
            b.addi(rKyCnt, rKyCnt, -1);
            b.bne(rKyCnt, kZero, ky_loop);
          }
          advance(b, rInC, 2 * L.in_h * L.in_w, v1);
          b.addi(rIcCnt, rIcCnt, -1);
          b.bne(rIcCnt, kZero, ic_loop);
        }
        // Requantize, clip, activate, store.
        b.lw(vT, 0, rAccA);
        b.srai(vT, vT, 12);
        auto no_hi = b.make_label();
        auto no_lo = b.make_label();
        b.li(v1, 32767);
        b.blt(vT, v1, no_hi);
        b.mv(vT, v1);
        b.bind(no_hi);
        b.li(v1, -32768);
        b.bge(vT, v1, no_lo);
        b.mv(vT, v1);
        b.bind(no_lo);
        if (L.act == ActKind::kReLU) {
          auto nonneg = b.make_label();
          b.bge(vT, kZero, nonneg);
          b.li(vT, 0);
          b.bind(nonneg);
        }
        b.sh(vT, 0, rOp);
        b.addi(rOp, rOp, 2);
        b.addi(rInPix, rInPix, 2 * L.stride);
        b.addi(rOxCnt, rOxCnt, -1);
        b.bne(rOxCnt, kZero, ox_loop);
      }
      advance(b, rInRow, 2 * L.in_w * L.stride, v1);
      b.addi(rOyCnt, rOyCnt, -1);
      b.bne(rOyCnt, kZero, oy_loop);
    }
    advance(b, rBp, 2, v1);
    advance(b, rWrow, 2 * L.kpad, v1);
    b.addi(rOcCnt, rOcCnt, -1);
    b.bne(rOcCnt, kZero, oc_loop);
  }
}

// ----------------------------------------------- levels b+: im2col + FC ----

void emit_im2col(ProgramBuilder& b, const ConvLayout& L) {
  RegPool pool;
  const Reg rIn = pool.alloc();
  const Reg rCol = pool.alloc();
  const Reg rOyCnt = pool.alloc();
  const Reg rOwCnt = pool.alloc();
  const Reg v = pool.alloc();
  const Reg vT = pool.alloc();

  b.li(rOwCnt, L.out_w);
  // One generated copy loop per kernel element (host-unrolled over k).
  for (int ic = 0; ic < L.in_ch; ++ic) {
    for (int ky = 0; ky < L.kh; ++ky) {
      for (int kx = 0; kx < L.kw; ++kx) {
        const int krow = (ic * L.kh + ky) * L.kw + kx;
        b.li(rIn, static_cast<int32_t>(L.in_addr +
                                       2u * static_cast<uint32_t>(
                                                (ic * L.in_h + ky) * L.in_w + kx)));
        b.li(rCol, static_cast<int32_t>(L.col_addr + 2u * static_cast<uint32_t>(krow)));
        b.li(rOyCnt, L.out_h);
        auto oy_loop = b.make_label();
        b.bind(oy_loop);
        {
          auto row_end = b.make_label();
          b.lp_setup(0, rOwCnt, row_end);
          b.p_lh(v, 2 * L.stride, rIn);
          b.p_sh(v, 2 * L.kpad, rCol);
          b.bind(row_end);
          advance(b, rIn, 2 * (L.in_w * L.stride - L.out_w * L.stride), vT);
          b.addi(rOyCnt, rOyCnt, -1);
          b.bne(rOyCnt, kZero, oy_loop);
        }
      }
    }
  }
}

void emit_lowered(ProgramBuilder& b, const ConvLayout& L, const ConvEmitOptions& opt) {
  {
    obs::Region region(opt.regions, b, "im2col", obs::RegionKind::kKernel);
    emit_im2col(b, L);
  }

  RegPool pool;
  const Reg rXpix = pool.alloc();
  const Reg rOpix = pool.alloc();
  const Reg rPcnt = pool.alloc();
  const int pixels = L.out_h * L.out_w;

  b.li(rXpix, static_cast<int32_t>(L.col_addr));
  b.li(rOpix, static_cast<int32_t>(L.out_addr));
  b.li(rPcnt, pixels);

  auto pixel_loop = b.make_label();
  obs::Region region(opt.regions, b, "pixel_matvec", obs::RegionKind::kKernel);
  b.bind(pixel_loop);
  {
    FcEmitOptions fc;
    fc.level = opt.level;
    fc.max_tile = opt.max_tile;
    fc.x_base = rXpix;
    fc.o_base = rOpix;
    fc.o_stride = 2 * pixels;  // outputs are channel-major
    fc.reserved = {rXpix, rOpix, rPcnt};
    emit_fc(b, L.fc, fc);
    b.addi(rXpix, rXpix, 2 * L.kpad);
    b.addi(rOpix, rOpix, 2);
    b.addi(rPcnt, rPcnt, -1);
    b.bne(rPcnt, kZero, pixel_loop);
  }
}

}  // namespace

void emit_conv(ProgramBuilder& b, const ConvLayout& layout, const ConvEmitOptions& opt) {
  if (opt.level == OptLevel::kBaseline) {
    obs::Region region(opt.regions, b, "conv_direct", obs::RegionKind::kKernel);
    emit_direct(b, layout);
  } else {
    emit_lowered(b, layout, opt);
  }
}

}  // namespace rnnasip::kernels
