// Convolution kernel generator.
//
// Level (a) runs a direct six-deep loop nest with the same naive
// memory-accumulator discipline as the FC baseline. Levels (b)-(e) lower the
// convolution with im2col (generated copy loops, one stream per kernel
// element) into a matrix-matrix product and then reuse the FC emitter per
// output pixel — the reformulation Sec. III-C attributes to prior work
// [23], [24].
//
// Constraints of the generated code (checked): pad == 0, stride >= 1.
// Weight rows are zero-padded to a multiple of 4 halfwords so the packed
// levels (and input-FM tiling) apply; padded lanes multiply zeros and leave
// results bit-exact vs the unpadded golden model.
#pragma once

#include "src/asm/builder.h"
#include "src/kernels/fc.h"
#include "src/kernels/layout.h"
#include "src/kernels/opt_level.h"
#include "src/nn/layers.h"

namespace rnnasip::kernels {

struct ConvLayout {
  int in_ch = 0, out_ch = 0, kh = 0, kw = 0, stride = 1;
  int in_h = 0, in_w = 0, out_h = 0, out_w = 0;
  int k = 0;     ///< in_ch * kh * kw
  int kpad = 0;  ///< k rounded up to a multiple of 4
  nn::ActKind act = nn::ActKind::kNone;
  uint32_t in_addr = 0;   ///< CHW int16 input
  uint32_t out_addr = 0;  ///< CHW int16 output ([oc][oy][ox])
  uint32_t col_addr = 0;  ///< im2col buffer, pixel-major P x kpad
  /// FC view of the lowered conv: out_ch x kpad weights + bias.
  FcLayout fc;
};

ConvLayout alloc_conv(DeviceAllocator& alloc, const nn::ConvParamsQ& params, int in_h,
                      int in_w, uint32_t in_addr, uint32_t out_addr);

struct ConvEmitOptions {
  OptLevel level = OptLevel::kInputTiling;
  int max_tile = 8;
  /// Observability: wraps the im2col and matvec stages (or the direct
  /// convolution) in named regions. Null = no-op.
  obs::RegionRecorder* regions = nullptr;
};

void emit_conv(assembler::ProgramBuilder& b, const ConvLayout& layout,
               const ConvEmitOptions& opt);

}  // namespace rnnasip::kernels
