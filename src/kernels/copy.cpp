#include "src/kernels/copy.h"

#include "src/common/check.h"

namespace rnnasip::kernels {

using assembler::Reg;
using assembler::RegPool;
using namespace isa;

void emit_copy_halves(assembler::ProgramBuilder& b, OptLevel level, uint32_t src,
                      uint32_t dst, int count) {
  RNNASIP_CHECK(count > 0);
  RegPool pool;
  const Reg rS = pool.alloc();
  const Reg rD = pool.alloc();
  const Reg rC = pool.alloc();
  const Reg v = pool.alloc();
  b.li(rS, static_cast<int32_t>(src));
  b.li(rD, static_cast<int32_t>(dst));
  b.li(rC, count);
  if (uses_xpulp(level)) {
    auto end = b.make_label();
    b.lp_setup(0, rC, end);
    b.p_lh(v, 2, rS);
    b.p_sh(v, 2, rD);
    b.bind(end);
  } else {
    auto loop = b.make_label();
    b.bind(loop);
    b.lh(v, 0, rS);
    b.sh(v, 0, rD);
    b.addi(rS, rS, 2);
    b.addi(rD, rD, 2);
    b.addi(rC, rC, -1);
    b.bne(rC, kZero, loop);
  }
}

void emit_copy_halves_rr(assembler::ProgramBuilder& b, OptLevel level, Reg rS, Reg rD,
                         int count, RegPool& pool) {
  RNNASIP_CHECK(count > 0);
  const Reg rC = pool.alloc();
  const Reg v = pool.alloc();
  b.li(rC, count);
  if (uses_xpulp(level)) {
    auto end = b.make_label();
    b.lp_setup(0, rC, end);
    b.p_lh(v, 2, rS);
    b.p_sh(v, 2, rD);
    b.bind(end);
  } else {
    auto loop = b.make_label();
    b.bind(loop);
    b.lh(v, 0, rS);
    b.sh(v, 0, rD);
    b.addi(rS, rS, 2);
    b.addi(rD, rD, 2);
    b.addi(rC, rC, -1);
    b.bne(rC, kZero, loop);
  }
  pool.free(rC);
  pool.free(v);
}

}  // namespace rnnasip::kernels
