// Halfword copy-loop emitter, shared by the recurrent layers (input
// staging into the concatenated gate buffers).
#pragma once

#include <cstdint>

#include "src/asm/builder.h"
#include "src/kernels/opt_level.h"

namespace rnnasip::kernels {

/// Emit code copying `count` halfwords from `src` to `dst`. Uses a
/// hardware loop with post-increment accesses at the Xpulp levels and a
/// plain branch loop at the baseline level.
void emit_copy_halves(assembler::ProgramBuilder& b, OptLevel level, uint32_t src,
                      uint32_t dst, int count);

/// Same, but source and destination come in caller-prepared registers,
/// which are left advanced past the copied region (post-increment
/// semantics). Scratch registers are drawn from the caller's `pool` so
/// they cannot collide with the caller's other live registers. Used by the
/// sequence runner, whose cursors live in memory slots around the copy.
void emit_copy_halves_rr(assembler::ProgramBuilder& b, OptLevel level,
                         assembler::Reg src, assembler::Reg dst, int count,
                         assembler::RegPool& pool);

}  // namespace rnnasip::kernels
