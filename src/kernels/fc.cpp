#include "src/kernels/fc.h"

#include "src/common/check.h"

namespace rnnasip::kernels {

using assembler::ProgramBuilder;
using assembler::Reg;
using assembler::RegPool;
using nn::ActKind;
using namespace isa;

FcLayout alloc_fc(DeviceAllocator& alloc, const nn::FcParamsQ& params, uint32_t x_addr,
                  uint32_t o_addr, int frac_bits) {
  RNNASIP_CHECK(params.w.rows == static_cast<int>(params.b.size()));
  RNNASIP_CHECK(frac_bits >= 1 && frac_bits <= 14);
  RNNASIP_CHECK_MSG(frac_bits == 12 || params.act == nn::ActKind::kNone ||
                        params.act == nn::ActKind::kReLU,
                    "tanh/sigmoid need the Q3.12 activation datapath");
  FcLayout L;
  L.frac_bits = frac_bits;
  L.cin = params.w.cols;
  L.cout = params.w.rows;
  L.act = params.act;
  L.x_addr = x_addr;
  L.o_addr = o_addr;
  // 8 bytes of slack for the pl.sdotsp SPR prefetch overrun (layout.h).
  L.w_addr = alloc.alloc_halves(params.w.data, /*slack_bytes=*/8);
  L.b_addr = alloc.alloc_halves(params.b);
  L.scratch_addr = alloc.alloc(4);
  return L;
}

namespace {

/// Everything an emission pass needs.
struct Ctx {
  ProgramBuilder& b;
  const FcLayout& L;
  const FcEmitOptions& opt;
  RegPool pool;
};

RegPool make_pool(const FcEmitOptions& opt, ActKind act) {
  RegPool pool;
  const bool needs_sw_act = !uses_hw_act(opt.level) &&
                            (act == ActKind::kTanh || act == ActKind::kSigmoid);
  if (needs_sw_act) {
    RNNASIP_CHECK_MSG(opt.sw_act != nullptr,
                      "tanh/sigmoid at level a/b needs SW activation routines");
    // The routines clobber a0/t0/t1/t2 and use ra.
    pool.reserve(kA0);
    pool.reserve(kT0);
    pool.reserve(kT1);
    pool.reserve(kT2);
  }
  for (Reg r : opt.reserved) pool.reserve(r);
  return pool;
}

/// Clip a 32-bit value into int16 range without p.clip (level a).
void emit_clip16_manual(ProgramBuilder& b, Reg v, Reg scratch) {
  auto no_hi = b.make_label();
  auto no_lo = b.make_label();
  b.li(scratch, 32767);
  b.blt(v, scratch, no_hi);
  b.mv(v, scratch);
  b.bind(no_hi);
  b.li(scratch, -32768);
  b.bge(v, scratch, no_lo);
  b.mv(v, scratch);
  b.bind(no_lo);
}

/// Apply the layer activation to `v` in place.
void emit_act(Ctx& s, Reg v, Reg scratch) {
  switch (s.L.act) {
    case ActKind::kNone:
      return;
    case ActKind::kReLU:
      if (uses_xpulp(s.opt.level)) {
        s.b.p_max(v, v, kZero);
      } else {
        auto nonneg = s.b.make_label();
        s.b.bge(v, kZero, nonneg);
        s.b.li(v, 0);
        s.b.bind(nonneg);
      }
      return;
    case ActKind::kTanh:
    case ActKind::kSigmoid: {
      const bool is_tanh = s.L.act == ActKind::kTanh;
      if (uses_hw_act(s.opt.level)) {
        if (is_tanh) {
          s.b.pl_tanh(v, v);
        } else {
          s.b.pl_sig(v, v);
        }
      } else {
        RNNASIP_CHECK(v != kA0);
        s.b.mv(kA0, v);
        s.b.jal(kRa, is_tanh ? s.opt.sw_act->tanh_label : s.opt.sw_act->sig_label);
        s.b.mv(v, kA0);
      }
      (void)scratch;
      return;
    }
  }
}

// ------------------------------------------------------------ level a ----

void emit_level_a(Ctx& s) {
  auto& b = s.b;
  const auto& L = s.L;
  const Reg rWp = s.pool.alloc();
  const Reg rBp = s.pool.alloc();
  const Reg rOp = s.pool.alloc();
  const Reg rOcnt = s.pool.alloc();
  const Reg rXp = s.pool.alloc();
  const Reg rXe = s.pool.alloc();
  const Reg rXbase = s.pool.alloc();
  const Reg rW = s.pool.alloc();
  const Reg rX = s.pool.alloc();
  const Reg rT = s.pool.alloc();
  const Reg rAcc = s.pool.alloc();  // address of the accumulator slot

  b.li(rWp, static_cast<int32_t>(L.w_addr));
  b.li(rBp, static_cast<int32_t>(L.b_addr));
  if (s.opt.o_base) {
    b.mv(rOp, *s.opt.o_base);
  } else {
    b.li(rOp, static_cast<int32_t>(L.o_addr));
  }
  if (s.opt.x_base) {
    b.mv(rXbase, *s.opt.x_base);
  } else {
    b.li(rXbase, static_cast<int32_t>(L.x_addr));
  }
  b.li(rOcnt, L.cout);
  b.li(rAcc, static_cast<int32_t>(L.scratch_addr));

  auto outer = b.make_label();
  b.bind(outer);
  // Accumulator slot = bias << 12 (kept in memory, as in Table Ia).
  b.lh(rT, 0, rBp);
  b.slli(rT, rT, L.frac_bits);
  b.sw(rT, 0, rAcc);
  b.mv(rXp, rXbase);
  b.addi(rXe, rXbase, 2 * L.cin);

  auto inner = b.make_label();
  b.bind(inner);
  // Pointer increments sit between the loads and the mac so no load-use
  // stall occurs — Table Ia shows lh and lw at exactly 1 cycle/instruction.
  b.lh(rW, 0, rWp);
  b.lh(rX, 0, rXp);
  b.lw(rT, 0, rAcc);
  b.addi(rWp, rWp, 2);
  b.addi(rXp, rXp, 2);
  b.p_mac(rT, rW, rX);  // the "mac" of Table Ia
  b.sw(rT, 0, rAcc);
  b.bltu(rXp, rXe, inner);

  // Requantize, clip, activate, store.
  b.lw(rT, 0, rAcc);
  b.srai(rT, rT, L.frac_bits);
  emit_clip16_manual(b, rT, rX);
  emit_act(s, rT, rX);
  b.sh(rT, 0, rOp);
  b.addi(rOp, rOp, s.opt.o_stride);
  b.addi(rBp, rBp, 2);
  b.addi(rOcnt, rOcnt, -1);
  b.bne(rOcnt, kZero, outer);

  for (Reg r : {rWp, rBp, rOp, rOcnt, rXp, rXe, rXbase, rW, rX, rT, rAcc}) s.pool.free(r);
}

// ------------------------------------------------------------ level b ----

void emit_level_b(Ctx& s) {
  auto& b = s.b;
  const auto& L = s.L;
  RNNASIP_CHECK_MSG(L.cin % 2 == 0, "SIMD levels require an even input count");
  const Reg rWp = s.pool.alloc();
  const Reg rBp = s.pool.alloc();
  const Reg rOp = s.pool.alloc();
  const Reg rOcnt = s.pool.alloc();
  const Reg rXp = s.pool.alloc();
  const Reg rXbase = s.pool.alloc();
  const Reg rCnt = s.pool.alloc();
  const Reg rW = s.pool.alloc();
  const Reg rX = s.pool.alloc();
  const Reg rAcc = s.pool.alloc();

  b.li(rWp, static_cast<int32_t>(L.w_addr));
  b.li(rBp, static_cast<int32_t>(L.b_addr));
  if (s.opt.o_base) {
    b.mv(rOp, *s.opt.o_base);
  } else {
    b.li(rOp, static_cast<int32_t>(L.o_addr));
  }
  if (s.opt.x_base) {
    b.mv(rXbase, *s.opt.x_base);
  } else {
    b.li(rXbase, static_cast<int32_t>(L.x_addr));
  }
  b.li(rCnt, L.cin / 2);
  b.li(rOcnt, L.cout);

  auto outer_end = b.make_label();
  auto inner_end = b.make_label();
  b.lp_setup(1, rOcnt, outer_end);
  {
    b.p_lh(rAcc, 2, rBp);   // bias
    b.mv(rXp, rXbase);      // (also separates the load from the shift)
    b.slli(rAcc, rAcc, L.frac_bits);
    b.lp_setup(0, rCnt, inner_end);
    {
      b.p_lw(rW, 4, rWp);
      b.p_lw(rX, 4, rXp);
      b.pv_sdotsp_h(rAcc, rW, rX);
    }
    b.bind(inner_end);
    b.srai(rAcc, rAcc, L.frac_bits);
    b.p_clip(rAcc, rAcc, 16);
    emit_act(s, rAcc, rW);
    b.p_sh(rAcc, s.opt.o_stride, rOp);
  }
  b.bind(outer_end);

  for (Reg r : {rWp, rBp, rOp, rOcnt, rXp, rXbase, rCnt, rW, rX, rAcc}) s.pool.free(r);
}

// -------------------------------------------------------- levels c/d/e ----

/// Which inner-loop schedule a tiled block uses.
enum class TiledBody { kSimd, kLoadCompute, kInputTiling };

struct TiledRegs {
  Reg rBp, rOp, rXp, rX0, rT, rWbase, rCnt;
  Reg rX1 = 0;           // level e only
  Reg rXbase = 0;        // only when no x_base register was supplied
  std::vector<Reg> accs;
  std::vector<Reg> wptrs;
  std::vector<Reg> wregs;  // level c pipeline registers
};

int fixed_reg_count(const FcEmitOptions& opt) {
  int f = 7;  // rBp rOp rXp rX0 rT rWbase rCnt
  if (!opt.x_base) ++f;
  if (opt.level == OptLevel::kInputTiling) ++f;
  return f;
}

/// One tiled block: `tiles` tiles of `n` outputs each.
void emit_tiled_block(Ctx& s, TiledRegs& r, int n, int tiles, TiledBody body) {
  if (tiles == 0 || n == 0) return;
  auto& b = s.b;
  const auto& L = s.L;
  const int row_bytes = 2 * L.cin;
  RNNASIP_CHECK_MSG(row_bytes <= 2047, "weight row exceeds addi range");
  RNNASIP_CHECK(L.cin % 2 == 0);
  if (body == TiledBody::kInputTiling) RNNASIP_CHECK(L.cin % 4 == 0);
  if (body != TiledBody::kSimd) RNNASIP_CHECK(n % 2 == 0);

  b.li(r.rCnt, body == TiledBody::kInputTiling ? L.cin / 4 : L.cin / 2);
  b.li(r.rT, tiles);

  auto block_end = b.make_label();
  b.lp_setup(1, r.rT, block_end);
  {
    // Tile setup: per-output weight pointers, then bias preloads.
    b.mv(r.wptrs[0], r.rWbase);
    for (int j = 1; j < n; ++j) b.addi(r.wptrs[j], r.wptrs[j - 1], row_bytes);
    b.addi(r.rWbase, r.wptrs[n - 1], row_bytes);
    for (int j = 0; j < n; ++j) b.p_lh(r.accs[j], 2, r.rBp);
    for (int j = 0; j < n; ++j) b.slli(r.accs[j], r.accs[j], L.frac_bits);
    b.mv(r.rXp, s.opt.x_base ? *s.opt.x_base : r.rXbase);

    auto inner_end = b.make_label();
    if (body == TiledBody::kSimd) {
      // Software-pipelined weight loads: 3 rotating registers keep every
      // load at least two slots ahead of its consumer.
      const int w = static_cast<int>(r.wregs.size());
      b.lp_setup(0, r.rCnt, inner_end);
      b.p_lw(r.rX0, 4, r.rXp);
      b.p_lw(r.wregs[0], 4, r.wptrs[0]);
      if (n > 1) b.p_lw(r.wregs[1 % w], 4, r.wptrs[1]);
      for (int k = 0; k < n; ++k) {
        if (k + 2 < n) b.p_lw(r.wregs[(k + 2) % w], 4, r.wptrs[k + 2]);
        b.pv_sdotsp_h(r.accs[k], r.wregs[k % w], r.rX0);
      }
      b.bind(inner_end);
    } else {
      // Preload the two SPRs from the first two weight streams (Table II
      // lines 1-2); rd = x0 discards the stale accumulate.
      b.pl_sdotsp_h(0, kZero, r.wptrs[0], kZero);
      b.pl_sdotsp_h(1, kZero, r.wptrs[1], kZero);
      b.lp_setup(0, r.rCnt, inner_end);
      b.p_lw(r.rX0, 4, r.rXp);
      if (body == TiledBody::kInputTiling) b.p_lw(r.rX1, 4, r.rXp);
      // Each instruction accumulates output j from its SPR while fetching
      // for output (j+2) mod n — the rA2/rA3/rA0/rA1 pattern of Table II.
      for (int j = 0; j < n; ++j)
        b.pl_sdotsp_h(j % 2, r.accs[j], r.wptrs[(j + 2) % n], r.rX0);
      if (body == TiledBody::kInputTiling) {
        for (int j = 0; j < n; ++j)
          b.pl_sdotsp_h(j % 2, r.accs[j], r.wptrs[(j + 2) % n], r.rX1);
      }
      b.bind(inner_end);
      // The SPRs still hold one prefetched word each; rewind the two
      // pointers the prologue advanced so the next tile starts clean.
      // (Pointer positions are recomputed from rWbase anyway.)
    }

    // Epilogue: requantize, clip, activate, store.
    for (int j = 0; j < n; ++j) b.srai(r.accs[j], r.accs[j], L.frac_bits);
    for (int j = 0; j < n; ++j) b.p_clip(r.accs[j], r.accs[j], 16);
    for (int j = 0; j < n; ++j) emit_act(s, r.accs[j], r.rT);
    for (int j = 0; j < n; ++j) b.p_sh(r.accs[j], s.opt.o_stride, r.rOp);
  }
  b.bind(block_end);
}

void emit_tiled(Ctx& s) {
  auto& b = s.b;
  const auto& L = s.L;
  const int n = fc_tile_size(L, s.opt);
  const bool simd_only = s.opt.level == OptLevel::kOutputTiling;

  TiledRegs r;
  r.rBp = s.pool.alloc();
  r.rOp = s.pool.alloc();
  r.rXp = s.pool.alloc();
  r.rX0 = s.pool.alloc();
  r.rT = s.pool.alloc();
  r.rWbase = s.pool.alloc();
  r.rCnt = s.pool.alloc();
  if (s.opt.level == OptLevel::kInputTiling) r.rX1 = s.pool.alloc();
  if (!s.opt.x_base) r.rXbase = s.pool.alloc();
  for (int j = 0; j < n; ++j) r.accs.push_back(s.pool.alloc());
  for (int j = 0; j < n; ++j) r.wptrs.push_back(s.pool.alloc());
  // A single-output "tile" cannot alternate the two SPRs; it runs the
  // pv.sdotsp pipeline instead.
  const bool main_is_simd = simd_only || n < 2;
  if (main_is_simd) {
    const int w = std::min(n, 3);
    for (int j = 0; j < w; ++j) r.wregs.push_back(s.pool.alloc());
  }

  b.li(r.rWbase, static_cast<int32_t>(L.w_addr));
  b.li(r.rBp, static_cast<int32_t>(L.b_addr));
  if (s.opt.o_base) {
    b.mv(r.rOp, *s.opt.o_base);
  } else {
    b.li(r.rOp, static_cast<int32_t>(L.o_addr));
  }
  if (!s.opt.x_base) b.li(r.rXbase, static_cast<int32_t>(L.x_addr));

  const TiledBody main_body =
      main_is_simd ? TiledBody::kSimd
                   : (s.opt.level == OptLevel::kInputTiling && L.cin % 4 == 0
                          ? TiledBody::kInputTiling
                          : TiledBody::kLoadCompute);

  const int tiles = L.cout / n;
  const int tail = L.cout % n;
  emit_tiled_block(s, r, n, tiles, main_body);
  if (tail > 0) {
    // Tail tile: the pl.sdotsp schedule needs an even tile, so an odd tail
    // falls back to the pv.sdotsp pipeline (it is a handful of outputs).
    const TiledBody tail_body =
        (!simd_only && tail % 2 == 0) ? main_body : TiledBody::kSimd;
    if (tail_body == TiledBody::kSimd && r.wregs.empty()) {
      const int w = std::min(tail, 3);
      for (int j = 0; j < w; ++j) r.wregs.push_back(s.pool.alloc());
    }
    emit_tiled_block(s, r, tail, 1, tail_body);
  }

  for (Reg reg : {r.rBp, r.rOp, r.rXp, r.rX0, r.rT, r.rWbase, r.rCnt}) s.pool.free(reg);
  if (r.rX1 != 0) s.pool.free(r.rX1);
  if (r.rXbase != 0) s.pool.free(r.rXbase);
  for (Reg reg : r.accs) s.pool.free(reg);
  for (Reg reg : r.wptrs) s.pool.free(reg);
  for (Reg reg : r.wregs) s.pool.free(reg);
}

}  // namespace

int fc_tile_size(const FcLayout& L, const FcEmitOptions& opt) {
  if (opt.level < OptLevel::kOutputTiling) return 1;
  RegPool pool = make_pool(opt, L.act);
  const int avail = pool.available();
  const int fixed = fixed_reg_count(opt);
  for (int n = std::min(opt.max_tile, L.cout); n >= 1; --n) {
    if (opt.level != OptLevel::kOutputTiling && n > 1 && n % 2 != 0) continue;
    int wregs = opt.level == OptLevel::kOutputTiling || n < 2 ? std::min(n, 3) : 0;
    // An odd tail falls back to the pv.sdotsp pipeline, which needs its own
    // rotating weight registers on top of the main allocation.
    const int tail = L.cout % n;
    if (wregs == 0 && tail > 0 && tail % 2 != 0) wregs = std::min(tail, 3);
    if (fixed + wregs + 2 * n <= avail) return std::max(n, 1);
  }
  return 1;
}

void emit_fc(ProgramBuilder& b, const FcLayout& layout, const FcEmitOptions& opt) {
  RNNASIP_CHECK(layout.cin > 0 && layout.cout > 0);
  obs::Region region(opt.regions, b, "matvec", obs::RegionKind::kKernel);
  Ctx s{b, layout, opt, make_pool(opt, layout.act)};
  switch (opt.level) {
    case OptLevel::kBaseline:
      emit_level_a(s);
      return;
    case OptLevel::kXpulpSimd:
      emit_level_b(s);
      return;
    case OptLevel::kOutputTiling:
    case OptLevel::kLoadCompute:
    case OptLevel::kInputTiling:
      emit_tiled(s);
      return;
  }
  RNNASIP_CHECK(false);
}

}  // namespace rnnasip::kernels
