// Fully-connected (matrix-vector) kernel generator — the paper's central
// kernel (Alg. 1 and Table II), implemented at every optimization level.
//
// All levels compute bit-identical results:
//   acc(int32, wrapping) = bias << 12; acc += w*x ...; out = clip16(acc >> 12)
//   followed by the layer activation.
//
// Level-specific schedules (see opt_level.h):
//   a: lh/lh/lw/mac/sw/addi/addi/bltu per MAC, accumulator in memory.
//   b: hardware loop over packed pairs: p.lw w / p.lw x / pv.sdotsp.h.
//   c: N-output tile, one shared x load per pair, software-pipelined weight
//      loads (3 rotating registers keep every load >= 2 slots from its use).
//   d: pl.sdotsp.h.{0,1} fold the weight loads into the MACs; the two SPRs
//      serve even/odd tile outputs, each instruction advancing the pointer
//      of output (j+2) mod N (exactly Table II's rA2/rA3/rA0/rA1 pattern).
//   e: two x words per iteration, removing the level-d load bubble.
#pragma once

#include <optional>

#include "src/asm/builder.h"
#include "src/kernels/act_routines.h"
#include "src/kernels/layout.h"
#include "src/kernels/opt_level.h"
#include "src/nn/layers.h"
#include "src/obs/region.h"

namespace rnnasip::kernels {

/// Device addresses of one FC layer's data.
struct FcLayout {
  uint32_t w_addr = 0;  ///< cout x cin, int16 row-major (+8 B SPR slack)
  uint32_t b_addr = 0;  ///< cout x int16
  uint32_t x_addr = 0;  ///< cin x int16 (ignored when x_base reg supplied)
  uint32_t o_addr = 0;  ///< cout x int16 (ignored when o_base reg supplied)
  uint32_t scratch_addr = 0;  ///< 4-byte accumulator slot (level a)
  int cin = 0;
  int cout = 0;
  nn::ActKind act = nn::ActKind::kNone;
  /// Fractional bits of the data format (requantization shift). 12 = the
  /// paper's Q3.12. Other formats support kNone/kReLU activations only
  /// (the PLA unit is a Q3.12 datapath); bench_qformat sweeps this.
  int frac_bits = 12;
};

/// Write the layer parameters into device memory and return its layout.
/// `x_addr`/`o_addr` connect the layer into the network's buffer chain.
FcLayout alloc_fc(DeviceAllocator& alloc, const nn::FcParamsQ& params, uint32_t x_addr,
                  uint32_t o_addr, int frac_bits = 12);

struct FcEmitOptions {
  OptLevel level = OptLevel::kInputTiling;
  /// SW activation routines; required when level < kOutputTiling and the
  /// layer activation is tanh or sigmoid.
  const ActRoutines* sw_act = nullptr;
  /// Upper bound on the output tile size N (levels c-e). The emitter lowers
  /// it to what the register file can hold.
  int max_tile = 8;
  /// When set, the input vector base is taken from this register instead of
  /// layout.x_addr (used by the conv kernel's per-pixel matvec). The
  /// register must survive the call unchanged.
  std::optional<assembler::Reg> x_base;
  /// When set, outputs are stored from this base register.
  std::optional<assembler::Reg> o_base;
  /// Byte stride between consecutive outputs (conv stores channel-major).
  int o_stride = 2;
  /// Registers the emitter must not allocate (callers' live values).
  std::vector<assembler::Reg> reserved;
  /// Observability: when set, the emitted code is wrapped in a "matvec"
  /// kernel region (see src/obs/region.h). Null = no-op.
  obs::RegionRecorder* regions = nullptr;
};

/// Emit code computing o = act(b + W x) at the requested level.
void emit_fc(assembler::ProgramBuilder& b, const FcLayout& layout,
             const FcEmitOptions& opt);

/// The tile size emit_fc will actually use (exposed for tests/benches).
int fc_tile_size(const FcLayout& layout, const FcEmitOptions& opt);

}  // namespace rnnasip::kernels
