#include "src/kernels/fc8.h"

#include "src/common/check.h"

namespace rnnasip::kernels {

using assembler::ProgramBuilder;
using assembler::Reg;
using assembler::RegPool;
using nn::ActKind;
using namespace isa;

Fc8Layout alloc_fc8(DeviceAllocator& alloc, const nn::FcParams8& p, uint32_t x_addr,
                    uint32_t o_addr) {
  RNNASIP_CHECK_MSG(p.w.cols % 4 == 0, "INT8 kernel needs cin % 4 == 0");
  RNNASIP_CHECK(p.act == ActKind::kNone || p.act == ActKind::kReLU);
  RNNASIP_CHECK_MSG(p.w.cols <= 2047, "weight row exceeds addi range");
  Fc8Layout L;
  L.cin = p.w.cols;
  L.cout = p.w.rows;
  L.act = p.act;
  L.x_addr = x_addr;
  L.o_addr = o_addr;
  std::vector<uint8_t> wbytes(p.w.data.size());
  for (size_t i = 0; i < p.w.data.size(); ++i)
    wbytes[i] = static_cast<uint8_t>(p.w.data[i]);
  L.w_addr = alloc.alloc_bytes(wbytes, /*slack_bytes=*/8);
  std::vector<uint8_t> bbytes(p.b.size());
  for (size_t i = 0; i < p.b.size(); ++i) bbytes[i] = static_cast<uint8_t>(p.b[i]);
  L.b_addr = alloc.alloc_bytes(bbytes, /*slack_bytes=*/4);
  return L;
}

void emit_fc8(ProgramBuilder& b, const Fc8Layout& L, int max_tile) {
  RNNASIP_CHECK(L.cin % 4 == 0 && L.cout > 0);
  RegPool pool;
  // Fixed registers: rBp rOp rXp rXbase rCnt rX rWbase rT plus tile regs.
  const int fixed = 8;
  int n = 1;
  for (int cand = std::min(max_tile, L.cout); cand >= 1; --cand) {
    if (fixed + std::min(cand, 3) + 2 * cand <= pool.available()) {
      n = cand;
      break;
    }
  }

  const Reg rBp = pool.alloc();
  const Reg rOp = pool.alloc();
  const Reg rXp = pool.alloc();
  const Reg rXbase = pool.alloc();
  const Reg rCnt = pool.alloc();
  const Reg rX = pool.alloc();
  const Reg rWbase = pool.alloc();
  const Reg rT = pool.alloc();
  std::vector<Reg> accs, wptrs, wregs;
  for (int j = 0; j < n; ++j) accs.push_back(pool.alloc());
  for (int j = 0; j < n; ++j) wptrs.push_back(pool.alloc());
  for (int j = 0; j < std::min(n, 3); ++j) wregs.push_back(pool.alloc());
  const int w = static_cast<int>(wregs.size());

  b.li(rBp, static_cast<int32_t>(L.b_addr));
  b.li(rOp, static_cast<int32_t>(L.o_addr));
  b.li(rXbase, static_cast<int32_t>(L.x_addr));
  b.li(rCnt, L.cin / 4);

  const int row_bytes = L.cin;
  uint32_t wbase = L.w_addr;
  auto emit_block = [&](int nt, int tiles, uint32_t block_wbase) {
    if (tiles == 0) return;
    b.li(rWbase, static_cast<int32_t>(block_wbase));
    b.li(rT, tiles);
    auto block_end = b.make_label();
    b.lp_setup(1, rT, block_end);
    {
      b.mv(wptrs[0], rWbase);
      for (int j = 1; j < nt; ++j) b.addi(wptrs[j], wptrs[j - 1], row_bytes);
      b.addi(rWbase, wptrs[nt - 1], row_bytes);
      for (int j = 0; j < nt; ++j) b.p_lb(accs[j], 1, rBp);
      for (int j = 0; j < nt; ++j) b.slli(accs[j], accs[j], 6);
      b.mv(rXp, rXbase);
      auto inner_end = b.make_label();
      b.lp_setup(0, rCnt, inner_end);
      {
        b.p_lw(rX, 4, rXp);  // 4 int8 channels
        b.p_lw(wregs[0], 4, wptrs[0]);
        if (nt > 1) b.p_lw(wregs[1 % w], 4, wptrs[1]);
        for (int k = 0; k < nt; ++k) {
          if (k + 2 < nt) b.p_lw(wregs[(k + 2) % w], 4, wptrs[k + 2]);
          b.pv_sdotsp_b(accs[k], wregs[k % w], rX);
        }
      }
      b.bind(inner_end);
      for (int j = 0; j < nt; ++j) b.srai(accs[j], accs[j], 6);
      for (int j = 0; j < nt; ++j) b.p_clip(accs[j], accs[j], 8);
      if (L.act == ActKind::kReLU) {
        for (int j = 0; j < nt; ++j) b.p_max(accs[j], accs[j], kZero);
      }
      for (int j = 0; j < nt; ++j) b.p_sb(accs[j], 1, rOp);
    }
    b.bind(block_end);
  };

  const int tiles = L.cout / n;
  const int tail = L.cout % n;
  emit_block(n, tiles, wbase);
  if (tail > 0) {
    emit_block(tail, 1,
               wbase + static_cast<uint32_t>(tiles) * static_cast<uint32_t>(n) *
                           static_cast<uint32_t>(row_bytes));
  }
}

}  // namespace rnnasip::kernels
