// INT8 FC kernel — the paper's "even eight and fewer bits" direction [27],
// expressed with the Xpulp byte-SIMD dot product: pv.sdotsp.b retires
// 4 MACs per cycle, doubling the 16-bit peak at the cost of Q1.6
// quantization error (bench_int8 quantifies the trade).
//
// Schedule mirrors the 16-bit output-FM-tiled kernel (level c): N outputs
// share each 4-channel input word, weight loads run through a rotating
// register pipeline, and the epilogue requantizes with srai 6 + clip8.
#pragma once

#include "src/asm/builder.h"
#include "src/kernels/layout.h"
#include "src/nn/layers.h"

namespace rnnasip::kernels {

struct Fc8Layout {
  uint32_t w_addr = 0;  ///< cout x cin int8 row-major (+8 B slack)
  uint32_t b_addr = 0;  ///< cout int8
  uint32_t x_addr = 0;  ///< cin int8
  uint32_t o_addr = 0;  ///< cout int8
  int cin = 0;          ///< must be a multiple of 4
  int cout = 0;
  nn::ActKind act = nn::ActKind::kNone;  ///< kNone or kReLU
};

Fc8Layout alloc_fc8(DeviceAllocator& alloc, const nn::FcParams8& params, uint32_t x_addr,
                    uint32_t o_addr);

/// Emit o = act(b + W x) on int8 data. Requires the Xpulp SIMD (no level
/// parameter: the INT8 path presumes it).
void emit_fc8(assembler::ProgramBuilder& b, const Fc8Layout& layout, int max_tile = 8);

}  // namespace rnnasip::kernels
