#include "src/kernels/fc_batch.h"

#include <string>

#include "src/common/check.h"

namespace rnnasip::kernels {

using assembler::ProgramBuilder;
using assembler::Reg;
using assembler::RegPool;
using nn::ActKind;
using namespace isa;

FcBatchLayout alloc_fc_batch(DeviceAllocator& alloc, const nn::FcParamsQ& params,
                             int batch, uint32_t x_addr, uint32_t o_addr) {
  RNNASIP_CHECK(batch >= 1);
  FcBatchLayout L;
  L.fc = alloc_fc(alloc, params, x_addr, o_addr);
  L.batch = batch;
  L.x_addr = x_addr;
  L.o_addr = o_addr;
  return L;
}

namespace {

/// Fixed register need besides the n*bt accumulators, n weight pointers,
/// bt x pointers, bt x registers, bt output pointers and 2 rotation regs:
/// bias ptr, weight base, x group base, group counter, inner count, scratch.
constexpr int kMiscRegs = 6;

int regs_needed(int n, int bt) { return n * bt + n + 3 * bt + 2 + kMiscRegs; }

}  // namespace

std::pair<int, int> fc_batch_tile(const FcBatchLayout& L, const FcBatchEmitOptions& opt) {
  RegPool pool;
  const int avail = pool.available();
  int best_n = 1, best_b = 2;
  double best_score = 0;
  for (int n = 1; n <= std::min(opt.max_out_tile, L.fc.cout); ++n) {
    for (int bt = 2; bt <= std::min(opt.max_batch_tile, L.batch); ++bt) {
      if (regs_needed(n, bt) > avail) continue;
      // MACs per load: maximize 2nb/(n+b).
      const double score = 2.0 * n * bt / (n + bt);
      if (score > best_score) {
        best_score = score;
        best_n = n;
        best_b = bt;
      }
    }
  }
  RNNASIP_CHECK_MSG(best_score > 0, "batch kernel needs batch >= 2 and registers");
  return {best_n, best_b};
}

namespace {

struct BatchRegs {
  Reg rBp, rWbase, rXgrp, rGrpCnt, rCnt, rT;
  std::vector<Reg> accs;   // n * bt, index j*bt + b
  std::vector<Reg> wptrs;  // n
  std::vector<Reg> xptrs;  // bt
  std::vector<Reg> xregs;  // bt
  std::vector<Reg> optrs;  // bt
  Reg wrot[2];
};

void emit_act_hw(ProgramBuilder& b, ActKind act, Reg v) {
  switch (act) {
    case ActKind::kNone:
      return;
    case ActKind::kReLU:
      b.p_max(v, v, kZero);
      return;
    case ActKind::kTanh:
      b.pl_tanh(v, v);
      return;
    case ActKind::kSigmoid:
      b.pl_sig(v, v);
      return;
  }
}

/// One block of `tiles` output tiles x `bt` batch columns inside the
/// current batch group. Weight pipeline: lead-1 with two rotation
/// registers — the bt >= 2 sdot burst between a load and its use hides the
/// latency (see fc_batch.h).
void emit_block(ProgramBuilder& b, const FcBatchLayout& L, const BatchRegs& r, int n,
                int bt, int tiles) {
  if (tiles == 0) return;
  const int row_bytes = 2 * L.fc.cin;
  b.li(r.rT, tiles);
  auto block_end = b.make_label();
  b.lp_setup(1, r.rT, block_end);
  {
    // Weight pointers for the tile; advance the base for the next one.
    b.mv(r.wptrs[0], r.rWbase);
    for (int j = 1; j < n; ++j) b.addi(r.wptrs[j], r.wptrs[j - 1], row_bytes);
    b.addi(r.rWbase, r.wptrs[n - 1], row_bytes);
    // Bias into every accumulator of the tile row, stall-free ordering.
    for (int j = 0; j < n; ++j) b.p_lh(r.accs[j * bt], 2, r.rBp);
    for (int j = 0; j < n; ++j) b.slli(r.accs[j * bt], r.accs[j * bt], 12);
    for (int j = 0; j < n; ++j) {
      for (int bb = 1; bb < bt; ++bb) b.mv(r.accs[j * bt + bb], r.accs[j * bt]);
    }
    // Reset the x pointers to the group base.
    b.mv(r.xptrs[0], r.rXgrp);
    for (int bb = 1; bb < bt; ++bb) b.addi(r.xptrs[bb], r.xptrs[bb - 1], row_bytes);

    auto inner_end = b.make_label();
    b.lp_setup(0, r.rCnt, inner_end);
    {
      // Intra-iteration lead-1 weight pipeline: w_{j+1} loads while the
      // bt-deep sdot burst of w_j executes, so no load ever stalls
      // (bt >= 2 guarantees the 2-slot gap).
      b.p_lw(r.wrot[0], 4, r.wptrs[0]);
      for (int bb = 0; bb < bt; ++bb) b.p_lw(r.xregs[bb], 4, r.xptrs[bb]);
      for (int j = 0; j < n; ++j) {
        if (j + 1 < n) b.p_lw(r.wrot[(j + 1) % 2], 4, r.wptrs[j + 1]);
        for (int bb = 0; bb < bt; ++bb) {
          b.pv_sdotsp_h(r.accs[j * bt + bb], r.wrot[j % 2], r.xregs[bb]);
        }
      }
    }
    b.bind(inner_end);

    // Requantize, clip, activate, store (batch-major outputs).
    for (int j = 0; j < n; ++j)
      for (int bb = 0; bb < bt; ++bb) b.srai(r.accs[j * bt + bb], r.accs[j * bt + bb], 12);
    for (int j = 0; j < n; ++j)
      for (int bb = 0; bb < bt; ++bb) b.p_clip(r.accs[j * bt + bb], r.accs[j * bt + bb], 16);
    for (int j = 0; j < n; ++j)
      for (int bb = 0; bb < bt; ++bb) emit_act_hw(b, L.fc.act, r.accs[j * bt + bb]);
    for (int bb = 0; bb < bt; ++bb) {
      for (int j = 0; j < n; ++j) b.p_sh(r.accs[j * bt + bb], 2, r.optrs[bb]);
    }
  }
  b.bind(block_end);
}

}  // namespace

void emit_fc_batch(ProgramBuilder& b, const FcBatchLayout& L,
                   const FcBatchEmitOptions& opt) {
  RNNASIP_CHECK_MSG(opt.level >= OptLevel::kOutputTiling,
                    "batched kernel builds on shared loads (level c+)");
  RNNASIP_CHECK(L.fc.cin % 2 == 0);
  RNNASIP_CHECK_MSG(2 * L.fc.cin <= 2047, "weight row exceeds addi range");

  // Levels d/e: the fused SPR weight stream beats any cross-sample
  // plain-load tile (see fc_batch.h) — run each lane on the single-sample
  // schedule instead.
  if (opt.level >= OptLevel::kLoadCompute) {
    for (int s = 0; s < L.batch; ++s) {
      FcLayout single = L.fc;
      single.x_addr = L.x_addr + static_cast<uint32_t>(2 * s * L.fc.cin);
      single.o_addr = L.o_addr + static_cast<uint32_t>(2 * s * L.fc.cout);
      FcEmitOptions fo;
      fo.level = opt.level;
      fo.max_tile = opt.max_single_tile;
      emit_fc(b, single, fo);
    }
    return;
  }

  const auto [n, bt] = fc_batch_tile(L, opt);

  const int groups = L.batch / bt;


  if (groups > 0) {
    RegPool pool;
    BatchRegs r;
    r.rBp = pool.alloc();
    r.rWbase = pool.alloc();
    r.rXgrp = pool.alloc();
    r.rGrpCnt = pool.alloc();
    r.rCnt = pool.alloc();
    r.rT = pool.alloc();
    for (int i = 0; i < n * bt; ++i) r.accs.push_back(pool.alloc());
    for (int i = 0; i < n; ++i) r.wptrs.push_back(pool.alloc());
    for (int i = 0; i < bt; ++i) r.xptrs.push_back(pool.alloc());
    for (int i = 0; i < bt; ++i) r.xregs.push_back(pool.alloc());
    for (int i = 0; i < bt; ++i) r.optrs.push_back(pool.alloc());
    r.wrot[0] = pool.alloc();
    r.wrot[1] = pool.alloc();

    b.li(r.rXgrp, static_cast<int32_t>(L.x_addr));
    b.li(r.rCnt, L.fc.cin / 2);
    b.li(r.rGrpCnt, groups);
    // Output pointers advance tile by tile across the whole group loop.
    b.li(r.optrs[0], static_cast<int32_t>(L.o_addr));
    for (int bb = 1; bb < bt; ++bb) {
      b.addi(r.optrs[bb], r.optrs[bb - 1], 2 * L.fc.cout);
    }

    auto group_loop = b.make_label();
    b.bind(group_loop);
    {
      b.li(r.rBp, static_cast<int32_t>(L.fc.b_addr));
      b.li(r.rWbase, static_cast<int32_t>(L.fc.w_addr));
      emit_block(b, L, r, n, bt, L.fc.cout / n);
      if (L.fc.cout % n != 0) emit_block(b, L, r, L.fc.cout % n, bt, 1);
      // Advance the group bases: x by bt rows, o by the bt-1 rows the
      // per-tile stores did not cover.
      for (int i = 0; i < bt; ++i) b.addi(r.rXgrp, r.rXgrp, 2 * L.fc.cin);
      for (int bb = 0; bb < bt; ++bb) {
        for (int i = 0; i < bt - 1; ++i) b.addi(r.optrs[bb], r.optrs[bb], 2 * L.fc.cout);
      }
      b.addi(r.rGrpCnt, r.rGrpCnt, -1);
      b.bne(r.rGrpCnt, kZero, group_loop);
    }
  }

  // Leftover samples run the unbatched kernel.
  for (int s = groups * bt; s < L.batch; ++s) {
    FcLayout single = L.fc;
    single.x_addr = L.x_addr + static_cast<uint32_t>(2 * s * L.fc.cin);
    single.o_addr = L.o_addr + static_cast<uint32_t>(2 * s * L.fc.cout);
    FcEmitOptions fo;
    fo.level = opt.level;
    fo.max_tile = opt.max_single_tile;
    emit_fc(b, single, fo);
  }

}

BatchedFcNet build_fc_batch_network(iss::Memory* mem,
                                    std::span<const nn::FcParamsQ* const> layers,
                                    int batch, OptLevel level,
                                    uint32_t param_base) {
  RNNASIP_CHECK(!layers.empty());
  RNNASIP_CHECK_MSG(batch >= 2, "batched network needs batch >= 2");
  DeviceAllocator alloc(mem, kDataBase);
  if (param_base != 0) alloc.set_param_base(param_base);
  ProgramBuilder b(kTextBase);
  obs::RegionRecorder regions;
  const int root = regions.open("network", obs::RegionKind::kNetwork, b.position());

  BatchedFcNet net;
  net.batch = batch;
  net.input_count = layers.front()->w.cols;
  int cur_count = net.input_count;
  uint32_t cur_addr =
      alloc.alloc(2u * static_cast<uint32_t>(batch) * static_cast<uint32_t>(cur_count), 4);
  net.input_addr = cur_addr;
  int layer_idx = 0;
  for (const nn::FcParamsQ* p : layers) {
    RNNASIP_CHECK_MSG(p->w.cols == cur_count, "batched layer input size mismatch");
    const uint32_t out_addr = alloc.alloc(
        2u * static_cast<uint32_t>(batch) * static_cast<uint32_t>(p->w.rows), 4);
    const FcBatchLayout L = alloc_fc_batch(alloc, *p, batch, cur_addr, out_addr);
    FcBatchEmitOptions opt;
    opt.level = level;
    obs::Region region(&regions, b, "fc" + std::to_string(layer_idx++),
                       obs::RegionKind::kLayer);
    emit_fc_batch(b, L, opt);
    cur_addr = out_addr;
    cur_count = p->w.rows;
    net.nominal_macs += static_cast<uint64_t>(p->w.cols) * p->w.rows * batch;
  }
  b.ebreak();
  regions.close(root, b.position());
  net.output_addr = cur_addr;
  net.output_count = cur_count;
  net.data_bytes = alloc.bytes_used();
  if (alloc.split()) {
    net.param_base = alloc.param_base();
    net.param_bytes = alloc.param_bytes_used();
  }
  net.program = b.build();
  net.regions = regions.finish(net.program.instrs.size());
  return net;
}

}  // namespace rnnasip::kernels
