// Batched FC kernel: two-dimensional (input x output) tiling.
//
// Sec. II-A of the paper notes that im2col-style m x n tiling cuts loads
// from O(mn) to O(m+n) but "cannot be applied to (non-convolutional) LSTMs
// and Linear Layers" — because single-sample RRM inference has no second
// matrix dimension to tile over. Batched inference (several users /
// antennas / beams per scheduling interval) restores that dimension. This
// kernel computes O = act(B + W X) for a batch of `batch` input vectors,
// tiling N outputs x B batch columns so each loaded weight word serves B
// sdot instructions and each loaded input word serves N:
//
//   loads per MAC = (N + B) / (2 N B)   (vs (N + 1) / (2 N) unbatched)
//
// Data layout: X is batch-major (batch consecutive vectors of cin
// halfwords), O likewise (batch x cout).
#pragma once

#include "src/asm/builder.h"
#include "src/kernels/fc.h"
#include "src/kernels/layout.h"
#include "src/kernels/opt_level.h"
#include "src/nn/layers.h"

namespace rnnasip::kernels {

struct FcBatchLayout {
  FcLayout fc;      ///< weights/bias as in the unbatched kernel
  int batch = 1;
  uint32_t x_addr = 0;  ///< batch x cin halfwords
  uint32_t o_addr = 0;  ///< batch x cout halfwords
};

FcBatchLayout alloc_fc_batch(DeviceAllocator& alloc, const nn::FcParamsQ& params,
                             int batch, uint32_t x_addr, uint32_t o_addr);

struct FcBatchEmitOptions {
  /// Must be >= kOutputTiling (the schedule is built on shared loads).
  OptLevel level = OptLevel::kOutputTiling;
  int max_out_tile = 4;
  int max_batch_tile = 4;
};

/// Emit the batched matvec. Requires cin even.
void emit_fc_batch(assembler::ProgramBuilder& b, const FcBatchLayout& layout,
                   const FcBatchEmitOptions& opt);

/// The (output, batch) tile the emitter will use.
std::pair<int, int> fc_batch_tile(const FcBatchLayout& layout,
                                  const FcBatchEmitOptions& opt);

}  // namespace rnnasip::kernels
