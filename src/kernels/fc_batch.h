// Batched FC kernel: two-dimensional (input x output) tiling.
//
// Sec. II-A of the paper notes that im2col-style m x n tiling cuts loads
// from O(mn) to O(m+n) but "cannot be applied to (non-convolutional) LSTMs
// and Linear Layers" — because single-sample RRM inference has no second
// matrix dimension to tile over. Batched inference (several users /
// antennas / beams per scheduling interval) restores that dimension. This
// kernel computes O = act(B + W X) for a batch of `batch` input vectors,
// tiling N outputs x B batch columns so each loaded weight word serves B
// sdot instructions and each loaded input word serves N:
//
//   loads per MAC = (N + B) / (2 N B)   (vs (N + 1) / (2 N) unbatched)
//
// Data layout: X is batch-major (batch consecutive vectors of cin
// halfwords), O likewise (batch x cout).
#pragma once

#include "src/asm/builder.h"
#include "src/kernels/fc.h"
#include "src/kernels/layout.h"
#include "src/kernels/opt_level.h"
#include "src/nn/layers.h"

namespace rnnasip::kernels {

struct FcBatchLayout {
  FcLayout fc;      ///< weights/bias as in the unbatched kernel
  int batch = 1;
  uint32_t x_addr = 0;  ///< batch x cin halfwords
  uint32_t o_addr = 0;  ///< batch x cout halfwords
};

FcBatchLayout alloc_fc_batch(DeviceAllocator& alloc, const nn::FcParamsQ& params,
                             int batch, uint32_t x_addr, uint32_t o_addr);

struct FcBatchEmitOptions {
  /// Must be >= kOutputTiling (the schedule is built on shared loads).
  OptLevel level = OptLevel::kOutputTiling;
  int max_out_tile = 4;
  int max_batch_tile = 4;
  /// Output tile of the per-sample schedule used at levels d/e (below).
  int max_single_tile = 8;
};

/// Emit the batched matvec. Requires cin even.
///
/// The cross-sample (N x B) tile only pays off while weight loads are
/// explicit instructions (level c): each loaded word then feeds B sdots.
/// From level d on, pl.sdotsp.h streams weights through the SPRs — the
/// load is fused into the MAC and consumed exactly once, so there is
/// nothing left for a batch dimension to amortize (an N x B plain-load
/// tile is strictly slower than the fused schedule within the 26-register
/// file). At levels d/e this therefore emits the fused single-sample
/// schedule once per batch lane: batched cost == B sequential runs, and
/// per-sample results stay trivially bit-exact.
void emit_fc_batch(assembler::ProgramBuilder& b, const FcBatchLayout& layout,
                   const FcBatchEmitOptions& opt);

/// The (output, batch) tile the emitter will use.
std::pair<int, int> fc_batch_tile(const FcBatchLayout& layout,
                                  const FcBatchEmitOptions& opt);

/// A whole FC-only network as one batched program: every layer is an
/// emit_fc_batch over batch-major activation buffers, ending in ebreak.
/// Samples are independent, and the batched kernel keeps the unbatched
/// accumulation order, so per-sample outputs are bit-exact vs the
/// single-sample program. Built by the serving cluster (src/serve) to
/// coalesce same-network requests.
struct BatchedFcNet {
  assembler::Program program;
  obs::RegionMap regions;     ///< network -> fc layers, as in BuiltNetwork
  uint32_t input_addr = 0;    ///< batch x input_count halfwords, batch-major
  int input_count = 0;        ///< per sample
  uint32_t output_addr = 0;   ///< batch x output_count halfwords
  int output_count = 0;       ///< per sample
  int batch = 1;
  uint64_t nominal_macs = 0;  ///< per batched execution (all samples)
  uint32_t data_bytes = 0;    ///< buffer-region footprint
  uint32_t param_base = 0;    ///< parameter region (split builds), else 0
  uint32_t param_bytes = 0;
};

/// Build the batched program for a stack of FC layers (batch >= 2; each
/// layer's cin must match the previous layer's cout). `param_base` != 0
/// splits parameters from buffers as in NetworkProgramBuilder.
BatchedFcNet build_fc_batch_network(iss::Memory* mem,
                                    std::span<const nn::FcParamsQ* const> layers,
                                    int batch, OptLevel level,
                                    uint32_t param_base = 0);

}  // namespace rnnasip::kernels
