#include "src/kernels/fc_sparse.h"

#include "src/common/bits.h"
#include "src/common/check.h"

namespace rnnasip::kernels {

using assembler::ProgramBuilder;
using assembler::Reg;
using assembler::RegPool;
using namespace isa;

SparseFcLayout alloc_fc_sparse(DeviceAllocator& alloc, const nn::FcParamsQ& p,
                               uint32_t x_addr, uint32_t o_addr) {
  RNNASIP_CHECK(p.act == nn::ActKind::kNone || p.act == nn::ActKind::kReLU);
  RNNASIP_CHECK_MSG(p.w.cols <= 32767, "index field is 16-bit");
  SparseFcLayout L;
  L.cin = p.w.cols;
  L.cout = p.w.rows;
  L.act = p.act;
  L.x_addr = x_addr;
  L.o_addr = o_addr;

  std::vector<uint32_t> pairs;
  std::vector<int16_t> counts;
  for (int r = 0; r < p.w.rows; ++r) {
    int nnz = 0;
    for (int c = 0; c < p.w.cols; ++c) {
      const int16_t v = p.w.at(r, c);
      if (v == 0) continue;
      pairs.push_back(pack_halves(v, static_cast<int16_t>(c)));
      ++nnz;
    }
    counts.push_back(static_cast<int16_t>(nnz));
  }
  L.nnz = static_cast<int>(pairs.size());
  L.pairs_addr = alloc.alloc_words(pairs.empty() ? std::vector<uint32_t>{0} : pairs);
  L.counts_addr = alloc.alloc_halves(counts);
  L.b_addr = alloc.alloc_halves(p.b);
  return L;
}

void emit_fc_sparse(ProgramBuilder& b, const SparseFcLayout& L) {
  RegPool pool;
  const Reg rPp = pool.alloc();    // pair stream pointer
  const Reg rCp = pool.alloc();    // row-count pointer
  const Reg rBp = pool.alloc();
  const Reg rOp = pool.alloc();
  const Reg rOcnt = pool.alloc();
  const Reg rXbase = pool.alloc();
  const Reg rAcc = pool.alloc();
  const Reg rPair = pool.alloc();
  const Reg rIdx = pool.alloc();
  const Reg rVal = pool.alloc();
  const Reg rNnz = pool.alloc();

  b.li(rPp, static_cast<int32_t>(L.pairs_addr));
  b.li(rCp, static_cast<int32_t>(L.counts_addr));
  b.li(rBp, static_cast<int32_t>(L.b_addr));
  b.li(rOp, static_cast<int32_t>(L.o_addr));
  b.li(rXbase, static_cast<int32_t>(L.x_addr));
  b.li(rOcnt, L.cout);

  auto outer = b.make_label();
  b.bind(outer);
  {
    b.p_lh(rAcc, 2, rBp);
    b.p_lh(rNnz, 2, rCp);
    b.slli(rAcc, rAcc, 12);

    auto row_done = b.make_label();
    auto nz_end = b.make_label();
    b.beq(rNnz, kZero, row_done);  // empty row (fully pruned)
    b.lp_setup(0, rNnz, nz_end);
    {
      b.p_lw(rPair, 4, rPp);       // [index:16 | value:16]
      b.srai(rIdx, rPair, 16);     // gather index
      b.p_exths(rVal, rPair);      // weight value
      b.slli(rIdx, rIdx, 1);
      b.add(rIdx, rIdx, rXbase);
      b.lh(rIdx, 0, rIdx);         // x[index] (stalls into the mac)
      b.p_mac(rAcc, rVal, rIdx);
    }
    b.bind(nz_end);
    b.bind(row_done);
    b.srai(rAcc, rAcc, 12);
    b.p_clip(rAcc, rAcc, 16);
    if (L.act == nn::ActKind::kReLU) b.p_max(rAcc, rAcc, kZero);
    b.p_sh(rAcc, 2, rOp);
    b.addi(rOcnt, rOcnt, -1);
    b.bne(rOcnt, kZero, outer);
  }
}

}  // namespace rnnasip::kernels
