// Sparse (pruned) FC kernel — the compression direction of the paper's
// related work (Cao et al. [19], Gao et al. [20] prune LSTMs and skip
// zeros on FPGA). Sec. II-A is skeptical: "these compression schemes have
// not yet been proven to work for the networks used in the RRM field."
// This kernel quantifies the instruction-set side of that skepticism on a
// single-issue core: skipping a zero does not skip its load, so sparsity
// only pays once the matrix is stored compressed, and then every surviving
// MAC carries index-decode and gather overhead.
//
// Storage: per output row, nnz (value, index) pairs packed one per 32-bit
// word ([index:16 | value:16]); a row-count table drives the loop.
// Per nonzero: p.lw pair / extract value+index / gather x / p.mac
// ~6 cycles per MAC vs ~1.1 for the dense level-c kernel: the crossover
// sits near 80-85% sparsity (bench_sparsity).
#pragma once

#include "src/asm/builder.h"
#include "src/kernels/layout.h"
#include "src/nn/layers.h"

namespace rnnasip::kernels {

struct SparseFcLayout {
  uint32_t pairs_addr = 0;   ///< concatenated (index<<16 | value) words
  uint32_t counts_addr = 0;  ///< per-row nnz (int16)
  uint32_t b_addr = 0;
  uint32_t x_addr = 0;
  uint32_t o_addr = 0;
  int cin = 0;
  int cout = 0;
  int nnz = 0;  ///< total nonzeros
  nn::ActKind act = nn::ActKind::kNone;  ///< kNone or kReLU
};

/// Pack the nonzeros of `params` into the compressed layout.
SparseFcLayout alloc_fc_sparse(DeviceAllocator& alloc, const nn::FcParamsQ& params,
                               uint32_t x_addr, uint32_t o_addr);

/// Emit the sparse matvec (Xpulp level; the dense comparison points are the
/// regular emit_fc levels).
void emit_fc_sparse(assembler::ProgramBuilder& b, const SparseFcLayout& layout);

}  // namespace rnnasip::kernels
