#include "src/kernels/gru.h"

#include "src/common/check.h"
#include "src/kernels/copy.h"

namespace rnnasip::kernels {

using assembler::ProgramBuilder;
using assembler::Reg;
using assembler::RegPool;
using nn::ActKind;
using namespace isa;

namespace {

nn::MatrixQ concat_wu(const nn::MatrixQ& w, const nn::MatrixQ& u) {
  RNNASIP_CHECK(w.rows == u.rows);
  nn::MatrixQ cat(w.rows, w.cols + u.cols);
  for (int r = 0; r < w.rows; ++r) {
    for (int c = 0; c < w.cols; ++c) cat.at(r, c) = w.at(r, c);
    for (int c = 0; c < u.cols; ++c) cat.at(r, w.cols + c) = u.at(r, c);
  }
  return cat;
}

}  // namespace

GruLayout alloc_gru(DeviceAllocator& alloc, const nn::GruParamsQ& p) {
  RNNASIP_CHECK_MSG((p.input + p.hidden) % 2 == 0,
                    "GRU m+n must be even for the packed-SIMD levels");
  GruLayout L;
  L.input = p.input;
  L.hidden = p.hidden;
  const uint32_t mn = 2 * static_cast<uint32_t>(p.input + p.hidden);
  L.xh_addr = alloc.alloc(mn, 4);
  L.xrh_addr = alloc.alloc(mn, 4);
  L.r_addr = alloc.alloc(2 * static_cast<uint32_t>(p.hidden), 4);
  L.z_addr = alloc.alloc(2 * static_cast<uint32_t>(p.hidden), 4);
  L.n_addr = alloc.alloc(2 * static_cast<uint32_t>(p.hidden), 4);

  auto gate = [&](const nn::MatrixQ& w, const nn::MatrixQ& u, const nn::VectorQ& b,
                  ActKind act, uint32_t x_addr, uint32_t out_addr) {
    nn::FcParamsQ fp;
    fp.w = concat_wu(w, u);
    fp.b = b;
    fp.act = act;
    return alloc_fc(alloc, fp, x_addr, out_addr);
  };
  L.gate_r = gate(p.wr, p.ur, p.br, ActKind::kSigmoid, L.xh_addr, L.r_addr);
  L.gate_z = gate(p.wz, p.uz, p.bz, ActKind::kSigmoid, L.xh_addr, L.z_addr);
  L.gate_n = gate(p.wn, p.un, p.bn, ActKind::kTanh, L.xrh_addr, L.n_addr);
  return L;
}

namespace {

/// Shared clip helper (p.clip at Xpulp levels, branches at baseline).
void emit_clip16(ProgramBuilder& b, bool xpulp, Reg v, Reg scratch) {
  if (xpulp) {
    b.p_clip(v, v, 16);
    return;
  }
  auto no_hi = b.make_label();
  auto no_lo = b.make_label();
  b.li(scratch, 32767);
  b.blt(v, scratch, no_hi);
  b.mv(v, scratch);
  b.bind(no_hi);
  b.li(scratch, -32768);
  b.bge(v, scratch, no_lo);
  b.mv(v, scratch);
  b.bind(no_lo);
}

/// Pointwise pass 1: xrh[m..m+n) = clip16((r * h) >> 12).
void emit_rh(ProgramBuilder& b, const GruLayout& L, OptLevel level) {
  RegPool pool;
  const bool xp = uses_xpulp(level);
  const Reg rR = pool.alloc();
  const Reg rH = pool.alloc();
  const Reg rOut = pool.alloc();
  const Reg rCnt = pool.alloc();
  const Reg v1 = pool.alloc();
  const Reg v2 = pool.alloc();
  b.li(rR, static_cast<int32_t>(L.r_addr));
  b.li(rH, static_cast<int32_t>(L.out_addr()));
  b.li(rOut, static_cast<int32_t>(L.xrh_addr + 2 * static_cast<uint32_t>(L.input)));
  b.li(rCnt, L.hidden);
  auto loop = b.make_label();
  auto end = b.make_label();
  if (xp) {
    b.lp_setup(0, rCnt, end);
  } else {
    b.bind(loop);
  }
  if (xp) {
    b.p_lh(v1, 2, rR);
    b.p_lh(v2, 2, rH);
  } else {
    b.lh(v1, 0, rR);
    b.lh(v2, 0, rH);
  }
  b.mul(v1, v1, v2);
  b.srai(v1, v1, 12);
  emit_clip16(b, xp, v1, v2);
  if (xp) {
    b.p_sh(v1, 2, rOut);
    b.bind(end);
  } else {
    b.sh(v1, 0, rOut);
    b.addi(rR, rR, 2);
    b.addi(rH, rH, 2);
    b.addi(rOut, rOut, 2);
    b.addi(rCnt, rCnt, -1);
    b.bne(rCnt, kZero, loop);
  }
}

/// Pointwise pass 2: h' = clip16((z*h >> 12) + ((1 - z)*n >> 12)).
void emit_blend(ProgramBuilder& b, const GruLayout& L, OptLevel level) {
  RegPool pool;
  const bool xp = uses_xpulp(level);
  const Reg rZ = pool.alloc();
  const Reg rN = pool.alloc();
  const Reg rHr = pool.alloc();
  const Reg rHw = pool.alloc();
  const Reg rCnt = pool.alloc();
  const Reg rOne = pool.alloc();
  const Reg v1 = pool.alloc();
  const Reg v2 = pool.alloc();
  const Reg v3 = pool.alloc();
  b.li(rZ, static_cast<int32_t>(L.z_addr));
  b.li(rN, static_cast<int32_t>(L.n_addr));
  b.li(rHr, static_cast<int32_t>(L.out_addr()));
  b.li(rHw, static_cast<int32_t>(L.out_addr()));
  b.li(rCnt, L.hidden);
  b.li(rOne, 4096);
  auto loop = b.make_label();
  auto end = b.make_label();
  if (xp) {
    b.lp_setup(0, rCnt, end);
  } else {
    b.bind(loop);
  }
  // v1 = (z*h) >> 12, v2 = ((1-z)*n) >> 12.
  if (xp) {
    b.p_lh(v1, 2, rZ);
    b.p_lh(v2, 2, rHr);
  } else {
    b.lh(v1, 0, rZ);
    b.lh(v2, 0, rHr);
  }
  b.sub(v3, rOne, v1);  // 1 - z (before v1 is consumed by the product)
  b.mul(v1, v1, v2);
  b.srai(v1, v1, 12);
  if (xp) {
    b.p_lh(v2, 2, rN);
  } else {
    b.lh(v2, 0, rN);
  }
  b.mul(v2, v2, v3);
  b.srai(v2, v2, 12);
  b.add(v1, v1, v2);
  emit_clip16(b, xp, v1, v2);
  if (xp) {
    b.p_sh(v1, 2, rHw);
    b.bind(end);
  } else {
    b.sh(v1, 0, rHw);
    b.addi(rZ, rZ, 2);
    b.addi(rN, rN, 2);
    b.addi(rHr, rHr, 2);
    b.addi(rHw, rHw, 2);
    b.addi(rCnt, rCnt, -1);
    b.bne(rCnt, kZero, loop);
  }
}

}  // namespace

void emit_gru_step(ProgramBuilder& b, const GruLayout& L, const GruEmitOptions& opt) {
  // Stage the input into the n-gate's buffer too ([x | r o h]).
  {
    obs::Region region(opt.regions, b, "stage_input", obs::RegionKind::kOther);
    emit_copy_halves(b, opt.level, L.xh_addr, L.xrh_addr, L.input);
  }

  FcEmitOptions fc;
  fc.level = opt.level;
  fc.sw_act = opt.sw_act;
  fc.max_tile = opt.max_tile;
  fc.regions = opt.regions;
  {
    obs::Region region(opt.regions, b, "gate_r", obs::RegionKind::kGate);
    emit_fc(b, L.gate_r, fc);
  }
  {
    obs::Region region(opt.regions, b, "gate_z", obs::RegionKind::kGate);
    emit_fc(b, L.gate_z, fc);
  }
  {
    obs::Region region(opt.regions, b, "rh", obs::RegionKind::kKernel);
    emit_rh(b, L, opt.level);
  }
  {
    obs::Region region(opt.regions, b, "gate_n", obs::RegionKind::kGate);
    emit_fc(b, L.gate_n, fc);
  }
  obs::Region region(opt.regions, b, "blend", obs::RegionKind::kKernel);
  emit_blend(b, L, opt.level);
}

}  // namespace rnnasip::kernels
