// GRU cell kernel generator — an RNN variant beyond the paper's benchmark
// set, demonstrating the flexibility argument of Sec. I: the same ISA
// extensions accelerate a cell the hardware was never specialized for.
//
// Structure mirrors the LSTM kernel: the r/z gates are FC matvecs over the
// concatenated [x ; h] buffer, the candidate gate n is a matvec over
// [x ; r o h] (Cho formulation, so every gate stays a single dense matvec),
// and two pointwise passes compute r o h and the blended state update
//   h' = clip16((z*h >> 12) + ((1 - z)*n >> 12)).
#pragma once

#include "src/asm/builder.h"
#include "src/kernels/act_routines.h"
#include "src/kernels/fc.h"
#include "src/kernels/layout.h"
#include "src/kernels/opt_level.h"
#include "src/nn/layers.h"

namespace rnnasip::kernels {

struct GruLayout {
  int input = 0;   ///< m
  int hidden = 0;  ///< n
  uint32_t xh_addr = 0;   ///< [x | h], m + n halfwords; h persists here
  uint32_t xrh_addr = 0;  ///< [x | r o h], m + n halfwords (scratch)
  FcLayout gate_r, gate_z;  ///< n x (m+n) over xh
  FcLayout gate_n;          ///< n x (m+n) over xrh
  uint32_t r_addr = 0, z_addr = 0, n_addr = 0;
  uint32_t in_addr() const { return xh_addr; }
  uint32_t out_addr() const { return xh_addr + 2 * static_cast<uint32_t>(input); }
};

GruLayout alloc_gru(DeviceAllocator& alloc, const nn::GruParamsQ& params);

struct GruEmitOptions {
  OptLevel level = OptLevel::kInputTiling;
  const ActRoutines* sw_act = nullptr;  ///< required below kOutputTiling
  int max_tile = 8;
  /// Observability: wraps each gate matvec and the pointwise stages in
  /// named regions. Null = no-op.
  obs::RegionRecorder* regions = nullptr;
};

/// Emit one GRU timestep. The timestep's input must be at layout.in_addr().
void emit_gru_step(assembler::ProgramBuilder& b, const GruLayout& layout,
                   const GruEmitOptions& opt);

}  // namespace rnnasip::kernels
