#include "src/kernels/layout.h"

#include "src/common/check.h"

namespace rnnasip::kernels {

DeviceAllocator::DeviceAllocator(iss::Memory* mem, uint32_t base)
    : mem_(mem), base_(base), cursor_(base) {
  RNNASIP_CHECK(mem != nullptr);
  RNNASIP_CHECK(base >= mem->base());
}

void DeviceAllocator::set_param_base(uint32_t param_base) {
  RNNASIP_CHECK_MSG(cursor_ == base_ && param_base != 0,
                    "set_param_base must precede the first allocation");
  param_base_ = param_base;
  param_cursor_ = param_base;
}

uint32_t DeviceAllocator::alloc(uint32_t bytes, uint32_t align) {
  RNNASIP_CHECK(align != 0 && (align & (align - 1)) == 0);
  cursor_ = (cursor_ + align - 1) & ~(align - 1);
  const uint32_t addr = cursor_;
  RNNASIP_CHECK_MSG(addr + bytes <= mem_->base() + mem_->size(),
                    "device data memory exhausted");
  RNNASIP_CHECK_MSG(param_base_ == 0 || addr + bytes <= param_base_,
                    "buffer region ran into the parameter region");
  cursor_ += bytes;
  return addr;
}

uint32_t DeviceAllocator::alloc_param(uint32_t bytes) {
  if (param_base_ == 0) return alloc(bytes, 4);
  param_cursor_ = (param_cursor_ + 3) & ~3u;
  const uint32_t addr = param_cursor_;
  RNNASIP_CHECK_MSG(addr + bytes <= mem_->base() + mem_->size(),
                    "device parameter memory exhausted");
  param_cursor_ += bytes;
  return addr;
}

uint32_t DeviceAllocator::alloc_halves(std::span<const int16_t> data, uint32_t slack_bytes) {
  const uint32_t addr = alloc_param(static_cast<uint32_t>(data.size() * 2) + slack_bytes);
  mem_->write_halves(addr, data);
  return addr;
}

uint32_t DeviceAllocator::alloc_bytes(std::span<const uint8_t> data, uint32_t slack_bytes) {
  const uint32_t addr = alloc_param(static_cast<uint32_t>(data.size()) + slack_bytes);
  mem_->write_block(addr, data);
  return addr;
}

uint32_t DeviceAllocator::alloc_words(std::span<const uint32_t> data) {
  const uint32_t addr = alloc_param(static_cast<uint32_t>(data.size() * 4));
  mem_->write_words(addr, data);
  return addr;
}

}  // namespace rnnasip::kernels
