// Device memory layout management for generated network programs.
//
// Map (within the default 4 MiB TCDM):
//   0x0000'1000  program text
//   0x0001'0000… data: weights, biases, activation LUTs, layer buffers
// Weight allocations carry 8 bytes of slack because the pl.sdotsp.h SPR
// prefetch reads one word past the last weight pair of the final tile.
#pragma once

#include <cstdint>
#include <span>

#include "src/iss/memory.h"
#include "src/nn/tensor.h"

namespace rnnasip::kernels {

inline constexpr uint32_t kTextBase = 0x0000'1000;
inline constexpr uint32_t kDataBase = 0x0001'0000;

class DeviceAllocator {
 public:
  explicit DeviceAllocator(iss::Memory* mem, uint32_t base = kDataBase);

  /// Reserve `bytes`, aligned. Returns the start address.
  uint32_t alloc(uint32_t bytes, uint32_t align = 4);

  /// Reserve and fill with int16 halfwords; `slack_bytes` extra zeroed bytes
  /// are reserved after the payload (SPR prefetch overrun).
  uint32_t alloc_halves(std::span<const int16_t> data, uint32_t slack_bytes = 0);

  /// Reserve and fill with raw bytes (the INT8 path's parameters).
  uint32_t alloc_bytes(std::span<const uint8_t> data, uint32_t slack_bytes = 0);

  /// Reserve and fill with 32-bit words.
  uint32_t alloc_words(std::span<const uint32_t> data);

  uint32_t bytes_used() const { return cursor_ - base_; }

 private:
  iss::Memory* mem_;
  uint32_t base_;
  uint32_t cursor_;
};

}  // namespace rnnasip::kernels
