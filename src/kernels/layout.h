// Device memory layout management for generated network programs.
//
// Map (within the default 4 MiB TCDM):
//   0x0000'1000  program text
//   0x0001'0000… data: weights, biases, activation LUTs, layer buffers
// Weight allocations carry 8 bytes of slack because the pl.sdotsp.h SPR
// prefetch reads one word past the last weight pair of the final tile.
//
// Split mode (set_param_base): the filled allocations (alloc_halves /
// alloc_bytes / alloc_words — weights, biases, LUTs, every read-only
// constant) land in a separate parameter region while plain alloc() keeps
// serving the mutable buffers (activations, recurrent state, scratch,
// I/O). The serving cluster (src/serve) builds networks this way so the
// parameter region can be shared read-only across cores while each core
// keeps private buffers. Unsplit builds are byte-identical to before.
#pragma once

#include <cstdint>
#include <span>

#include "src/iss/memory.h"
#include "src/nn/tensor.h"

namespace rnnasip::kernels {

inline constexpr uint32_t kTextBase = 0x0000'1000;
inline constexpr uint32_t kDataBase = 0x0001'0000;
/// Parameter region used by split builds (serving cluster); far above the
/// buffer region so the two cursors can never collide.
inline constexpr uint32_t kParamBase = 0x0040'0000;

class DeviceAllocator {
 public:
  explicit DeviceAllocator(iss::Memory* mem, uint32_t base = kDataBase);

  /// Route subsequent filled allocations (alloc_halves/alloc_bytes/
  /// alloc_words) to a separate cursor starting at `param_base`. Must be
  /// called before any allocation.
  void set_param_base(uint32_t param_base);
  bool split() const { return param_base_ != 0; }

  /// Reserve `bytes` of mutable buffer space, aligned. Returns the start
  /// address.
  uint32_t alloc(uint32_t bytes, uint32_t align = 4);

  /// Reserve and fill with int16 halfwords; `slack_bytes` extra zeroed bytes
  /// are reserved after the payload (SPR prefetch overrun).
  uint32_t alloc_halves(std::span<const int16_t> data, uint32_t slack_bytes = 0);

  /// Reserve and fill with raw bytes (the INT8 path's parameters).
  uint32_t alloc_bytes(std::span<const uint8_t> data, uint32_t slack_bytes = 0);

  /// Reserve and fill with 32-bit words.
  uint32_t alloc_words(std::span<const uint32_t> data);

  uint32_t bytes_used() const { return cursor_ - base_; }
  uint32_t param_base() const { return param_base_; }
  uint32_t param_bytes_used() const { return param_cursor_ - param_base_; }

 private:
  /// Reserve from the parameter cursor in split mode, else from alloc().
  uint32_t alloc_param(uint32_t bytes);

  iss::Memory* mem_;
  uint32_t base_;
  uint32_t cursor_;
  uint32_t param_base_ = 0;  ///< 0 = unsplit (single cursor)
  uint32_t param_cursor_ = 0;
};

}  // namespace rnnasip::kernels
