#include "src/kernels/lstm.h"

#include "src/common/check.h"

namespace rnnasip::kernels {

using assembler::ProgramBuilder;
using assembler::Reg;
using assembler::RegPool;
using nn::ActKind;
using namespace isa;

namespace {

/// Concatenate [W | U] row-wise into one n x (m+n) matrix.
nn::MatrixQ concat_wu(const nn::MatrixQ& w, const nn::MatrixQ& u) {
  RNNASIP_CHECK(w.rows == u.rows);
  nn::MatrixQ cat(w.rows, w.cols + u.cols);
  for (int r = 0; r < w.rows; ++r) {
    for (int c = 0; c < w.cols; ++c) cat.at(r, c) = w.at(r, c);
    for (int c = 0; c < u.cols; ++c) cat.at(r, w.cols + c) = u.at(r, c);
  }
  return cat;
}

}  // namespace

LstmLayout alloc_lstm(DeviceAllocator& alloc, const nn::LstmParamsQ& p) {
  RNNASIP_CHECK_MSG((p.input + p.hidden) % 2 == 0,
                    "LSTM m+n must be even for the packed-SIMD levels");
  LstmLayout L;
  L.input = p.input;
  L.hidden = p.hidden;
  L.xh_addr = alloc.alloc(2 * static_cast<uint32_t>(p.input + p.hidden), 4);
  L.c_addr = alloc.alloc(2 * static_cast<uint32_t>(p.hidden), 4);
  L.i_addr = alloc.alloc(2 * static_cast<uint32_t>(p.hidden), 4);
  L.f_addr = alloc.alloc(2 * static_cast<uint32_t>(p.hidden), 4);
  L.o_addr = alloc.alloc(2 * static_cast<uint32_t>(p.hidden), 4);
  L.g_addr = alloc.alloc(2 * static_cast<uint32_t>(p.hidden), 4);

  auto gate = [&](const nn::MatrixQ& w, const nn::MatrixQ& u, const nn::VectorQ& b,
                  ActKind act, uint32_t out_addr) {
    nn::FcParamsQ fp;
    fp.w = concat_wu(w, u);
    fp.b = b;
    fp.act = act;
    return alloc_fc(alloc, fp, L.xh_addr, out_addr);
  };
  L.gate_i = gate(p.wi, p.ui, p.bi, ActKind::kSigmoid, L.i_addr);
  L.gate_f = gate(p.wf, p.uf, p.bf, ActKind::kSigmoid, L.f_addr);
  L.gate_o = gate(p.wo, p.uo, p.bo, ActKind::kSigmoid, L.o_addr);
  L.gate_g = gate(p.wc, p.uc, p.bc, ActKind::kTanh, L.g_addr);
  return L;
}

namespace {

/// The pointwise c/h update (Eqs. 5-6), one loop over the n cells.
void emit_pointwise(ProgramBuilder& b, const LstmLayout& L, const LstmEmitOptions& opt) {
  RegPool pool;
  const bool hw_act = uses_hw_act(opt.level);
  if (!hw_act) {
    RNNASIP_CHECK_MSG(opt.sw_act != nullptr, "LSTM below level c needs SW activations");
    pool.reserve(kA0);
    pool.reserve(kT0);
    pool.reserve(kT1);
    pool.reserve(kT2);
  }
  const bool xp = uses_xpulp(opt.level);

  const Reg rI = pool.alloc();
  const Reg rF = pool.alloc();
  const Reg rO = pool.alloc();
  const Reg rG = pool.alloc();
  const Reg rCr = pool.alloc();
  const Reg rCw = pool.alloc();
  const Reg rH = pool.alloc();
  const Reg rCnt = pool.alloc();
  const Reg v1 = pool.alloc();
  const Reg v2 = pool.alloc();
  const Reg v3 = pool.alloc();

  b.li(rI, static_cast<int32_t>(L.i_addr));
  b.li(rF, static_cast<int32_t>(L.f_addr));
  b.li(rO, static_cast<int32_t>(L.o_addr));
  b.li(rG, static_cast<int32_t>(L.g_addr));
  b.li(rCr, static_cast<int32_t>(L.c_addr));
  b.li(rCw, static_cast<int32_t>(L.c_addr));
  b.li(rH, static_cast<int32_t>(L.out_addr()));
  b.li(rCnt, L.hidden);

  auto clip16 = [&](Reg v, Reg scratch) {
    if (xp) {
      b.p_clip(v, v, 16);
    } else {
      auto no_hi = b.make_label();
      auto no_lo = b.make_label();
      b.li(scratch, 32767);
      b.blt(v, scratch, no_hi);
      b.mv(v, scratch);
      b.bind(no_hi);
      b.li(scratch, -32768);
      b.bge(v, scratch, no_lo);
      b.mv(v, scratch);
      b.bind(no_lo);
    }
  };

  auto loop_start = b.make_label();
  auto loop_end = b.make_label();
  if (xp) {
    b.lp_setup(0, rCnt, loop_end);
  } else {
    b.bind(loop_start);
  }
  {
    // v1 = (f * c) >> 12
    if (xp) {
      b.p_lh(v1, 2, rF);
      b.p_lh(v2, 2, rCr);
    } else {
      b.lh(v1, 0, rF);
      b.lh(v2, 0, rCr);
    }
    b.mul(v1, v1, v2);
    b.srai(v1, v1, 12);
    // v2 = (i * g) >> 12
    if (xp) {
      b.p_lh(v2, 2, rI);
      b.p_lh(v3, 2, rG);
    } else {
      b.lh(v2, 0, rI);
      b.lh(v3, 0, rG);
    }
    b.mul(v2, v2, v3);
    b.srai(v2, v2, 12);
    b.add(v1, v1, v2);
    clip16(v1, v3);
    if (xp) {
      b.p_sh(v1, 2, rCw);  // c'
    } else {
      b.sh(v1, 0, rCw);
    }
    // v1 = tanh(c')
    if (hw_act) {
      b.pl_tanh(v1, v1);
    } else {
      b.mv(kA0, v1);
      b.jal(kRa, opt.sw_act->tanh_label);
      b.mv(v1, kA0);
    }
    // h' = clip16((o * tanh(c')) >> 12)
    if (xp) {
      b.p_lh(v2, 2, rO);
    } else {
      b.lh(v2, 0, rO);
    }
    b.mul(v1, v1, v2);
    b.srai(v1, v1, 12);
    clip16(v1, v3);
    if (xp) {
      b.p_sh(v1, 2, rH);
    } else {
      b.sh(v1, 0, rH);
    }
  }
  if (xp) {
    b.bind(loop_end);
  } else {
    for (Reg r : {rI, rF, rO, rG, rCr, rCw, rH}) b.addi(r, r, 2);
    b.addi(rCnt, rCnt, -1);
    b.bne(rCnt, kZero, loop_start);
  }

  for (Reg r : {rI, rF, rO, rG, rCr, rCw, rH, rCnt, v1, v2, v3}) pool.free(r);
}

}  // namespace

void emit_lstm_step(ProgramBuilder& b, const LstmLayout& L, const LstmEmitOptions& opt) {
  FcEmitOptions fc;
  fc.level = opt.level;
  fc.sw_act = opt.sw_act;
  fc.max_tile = opt.max_tile;
  fc.regions = opt.regions;
  struct GateSpec {
    const char* name;
    const FcLayout* layout;
  };
  for (const GateSpec g : {GateSpec{"gate_i", &L.gate_i}, GateSpec{"gate_f", &L.gate_f},
                           GateSpec{"gate_o", &L.gate_o}, GateSpec{"gate_g", &L.gate_g}}) {
    obs::Region region(opt.regions, b, g.name, obs::RegionKind::kGate);
    emit_fc(b, *g.layout, fc);
  }
  obs::Region region(opt.regions, b, "pointwise", obs::RegionKind::kKernel);
  emit_pointwise(b, L, opt);
}

}  // namespace rnnasip::kernels
