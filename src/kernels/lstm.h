// LSTM cell kernel generator (Eqs. 1-6 of the paper).
//
// Layout trick: the concatenated [x ; h] vector lives in one contiguous
// buffer, and each gate's weights are stored as rows [W_row | U_row], so all
// four gate pre-activations are plain FC matvecs over cin = m + n — which is
// exactly where the paper's output-FM tiling and pl.sdotsp extensions apply.
// The hidden state h is maintained *inside* the xh buffer (entries m..m+n),
// so each timestep only copies the fresh input into entries 0..m.
//
// The pointwise stage implements, per cell:
//   c' = clip16((f*c >> 12) + (i*g >> 12))
//   h' = clip16((o * tanh(c')) >> 12)
// with tanh via the SW routine (levels a/b) or pl.tanh (levels c+).
#pragma once

#include "src/asm/builder.h"
#include "src/kernels/act_routines.h"
#include "src/kernels/fc.h"
#include "src/kernels/layout.h"
#include "src/kernels/opt_level.h"
#include "src/nn/layers.h"

namespace rnnasip::kernels {

struct LstmLayout {
  int input = 0;   ///< m
  int hidden = 0;  ///< n
  uint32_t xh_addr = 0;  ///< m + n halfwords; x in [0, m), h in [m, m+n)
  uint32_t c_addr = 0;   ///< n halfwords of cell state
  /// Gate weight matrices (n x (m+n), [W | U] concatenated rows) + biases.
  FcLayout gate_i, gate_f, gate_o, gate_g;
  /// Gate output buffers (n halfwords each).
  uint32_t i_addr = 0, f_addr = 0, o_addr = 0, g_addr = 0;
  /// Where this layer's input arrives (the xh buffer's x region).
  uint32_t in_addr() const { return xh_addr; }
  /// Where this layer's output (h) lives.
  uint32_t out_addr() const { return xh_addr + 2 * static_cast<uint32_t>(input); }
};

/// Write parameters into device memory ([W|U] concatenation happens here).
LstmLayout alloc_lstm(DeviceAllocator& alloc, const nn::LstmParamsQ& params);

struct LstmEmitOptions {
  OptLevel level = OptLevel::kInputTiling;
  const ActRoutines* sw_act = nullptr;  ///< required below kOutputTiling
  int max_tile = 8;
  /// Observability: wraps each gate matvec and the pointwise update in
  /// named regions. Null = no-op.
  obs::RegionRecorder* regions = nullptr;
};

/// Emit one full LSTM timestep (4 gate matvecs + pointwise update).
/// The caller is responsible for placing the timestep's input at
/// layout.in_addr() before running.
void emit_lstm_step(assembler::ProgramBuilder& b, const LstmLayout& layout,
                    const LstmEmitOptions& opt);

}  // namespace rnnasip::kernels
