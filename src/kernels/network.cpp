#include "src/kernels/network.h"

#include "src/common/check.h"
#include "src/kernels/checksum.h"
#include "src/kernels/copy.h"

namespace rnnasip::kernels {

using assembler::Reg;
using assembler::RegPool;
using namespace isa;

NetworkProgramBuilder::NetworkProgramBuilder(iss::Memory* mem, OptLevel level,
                                             const activation::PlaTable& tanh_tbl,
                                             const activation::PlaTable& sig_tbl,
                                             int max_tile, int sequence_steps,
                                             uint32_t param_base)
    : mem_(mem),
      level_(level),
      tanh_tbl_(tanh_tbl),
      sig_tbl_(sig_tbl),
      max_tile_(max_tile),
      alloc_(mem, kDataBase),
      b_(kTextBase),
      routines_(make_act_routine_labels(b_)),
      sequence_steps_(sequence_steps),
      seq_loop_(b_.make_label()) {
  RNNASIP_CHECK(sequence_steps >= 1);
  if (param_base != 0) alloc_.set_param_base(param_base);
  root_region_ = regions_.open("network", obs::RegionKind::kNetwork, b_.position());
}

std::string NetworkProgramBuilder::layer_name(const char* kind) {
  return std::string(kind) + std::to_string(layer_idx_++);
}

void NetworkProgramBuilder::begin_sequence(uint32_t input_region, int count) {
  BuiltNetwork::SequenceInfo seq;
  seq.steps = sequence_steps_;
  seq.inputs_addr =
      alloc_.alloc(2u * static_cast<uint32_t>(sequence_steps_) * static_cast<uint32_t>(count), 4);
  seq.in_slot = alloc_.alloc(4);
  seq.out_slot = alloc_.alloc(4);
  seq.count_slot = alloc_.alloc(4);
  net_.seq = seq;  // outputs_addr filled in finalize()

  // Loop head: stage this step's input from the cursor, advance the cursor.
  obs::Region region(&regions_, b_, "seq_head", obs::RegionKind::kOther);
  b_.bind(seq_loop_);
  RegPool pool;
  const Reg rSlot = pool.alloc();
  const Reg rSrc = pool.alloc();
  const Reg rDst = pool.alloc();
  b_.li(rSlot, static_cast<int32_t>(seq.in_slot));
  b_.lw(rSrc, 0, rSlot);
  b_.li(rDst, static_cast<int32_t>(input_region));
  emit_copy_halves_rr(b_, level_, rSrc, rDst, count, pool);
  b_.sw(rSrc, 0, rSlot);  // the copy left rSrc at the next step's input
}

void NetworkProgramBuilder::set_integrity(bool on) {
  RNNASIP_CHECK_MSG(first_layer_, "set_integrity must precede the first layer");
  RNNASIP_CHECK_MSG(sequence_steps_ == 1,
                    "integrity instrumentation is incompatible with sequence mode");
  integrity_ = on;
}

void NetworkProgramBuilder::emit_layer_check(const std::string& name, uint32_t out_addr,
                                             int out_count) {
  if (!integrity_) return;
  BuiltNetwork::LayerCheck chk;
  chk.name = name;
  chk.out_addr = out_addr;
  chk.out_count = out_count;
  chk.slot = alloc_.alloc(4, 4);
  {
    obs::Region region(&regions_, b_, name + ".chk", obs::RegionKind::kOther);
    emit_fold_checksum(b_, level_, out_addr, chk.slot, out_count);
    b_.ecall();
  }
  net_.checks.push_back(std::move(chk));
}

uint32_t NetworkProgramBuilder::take_input(int count) {
  RNNASIP_CHECK(!finalized_);
  if (first_layer_) {
    const uint32_t addr = alloc_.alloc(2 * static_cast<uint32_t>(count), 4);
    net_.input_addr = addr;
    net_.input_count = count;
    first_layer_ = false;
    if (sequence_steps_ > 1) begin_sequence(addr, count);
    return addr;
  }
  RNNASIP_CHECK_MSG(cur_count_ == count, "layer input size mismatch: expected "
                                             << cur_count_ << ", layer wants " << count);
  return cur_addr_;
}

void NetworkProgramBuilder::emit_copy(uint32_t src, uint32_t dst, int count) {
  obs::Region region(&regions_, b_, "copy", obs::RegionKind::kOther);
  emit_copy_halves(b_, level_, src, dst, count);
}

void NetworkProgramBuilder::add_fc(const nn::FcParamsQ& params) {
  const int cin = params.w.cols;
  const int cout = params.w.rows;
  const uint32_t x_addr = take_input(cin);
  const uint32_t o_addr = alloc_.alloc(2 * static_cast<uint32_t>(cout), 4);
  FcLayout layout = alloc_fc(alloc_, params, x_addr, o_addr);
  FcEmitOptions opt;
  opt.level = level_;
  opt.sw_act = &routines_;
  opt.max_tile = max_tile_;
  opt.regions = &regions_;
  const std::string name = layer_name("fc");
  {
    obs::Region region(&regions_, b_, name, obs::RegionKind::kLayer);
    emit_fc(b_, layout, opt);
  }
  emit_layer_check(name, o_addr, cout);
  cur_addr_ = o_addr;
  cur_count_ = cout;
  net_.nominal_macs += static_cast<uint64_t>(cin) * cout;
}

void NetworkProgramBuilder::add_lstm(const nn::LstmParamsQ& params) {
  LstmLayout layout = alloc_lstm(alloc_, params);
  if (first_layer_) {
    // The network input arrives directly in the xh buffer's x region.
    net_.input_addr = layout.in_addr();
    net_.input_count = params.input;
    first_layer_ = false;
    if (sequence_steps_ > 1) begin_sequence(layout.in_addr(), params.input);
  } else {
    RNNASIP_CHECK_MSG(cur_count_ == params.input, "LSTM input size mismatch");
    emit_copy(cur_addr_, layout.in_addr(), params.input);
  }
  LstmEmitOptions opt;
  opt.level = level_;
  opt.sw_act = &routines_;
  opt.max_tile = max_tile_;
  opt.regions = &regions_;
  const std::string name = layer_name("lstm");
  {
    obs::Region region(&regions_, b_, name, obs::RegionKind::kLayer);
    emit_lstm_step(b_, layout, opt);
  }
  emit_layer_check(name, layout.out_addr(), params.hidden);
  cur_addr_ = layout.out_addr();
  cur_count_ = params.hidden;
  net_.state_buffers.emplace_back(layout.out_addr(), params.hidden);
  net_.state_buffers.emplace_back(layout.c_addr, params.hidden);
  net_.nominal_macs +=
      4ull * static_cast<uint64_t>(params.hidden) * (params.input + params.hidden);
}

void NetworkProgramBuilder::add_gru(const nn::GruParamsQ& params) {
  GruLayout layout = alloc_gru(alloc_, params);
  if (first_layer_) {
    net_.input_addr = layout.in_addr();
    net_.input_count = params.input;
    first_layer_ = false;
    if (sequence_steps_ > 1) begin_sequence(layout.in_addr(), params.input);
  } else {
    RNNASIP_CHECK_MSG(cur_count_ == params.input, "GRU input size mismatch");
    emit_copy(cur_addr_, layout.in_addr(), params.input);
  }
  GruEmitOptions opt;
  opt.level = level_;
  opt.sw_act = &routines_;
  opt.max_tile = max_tile_;
  opt.regions = &regions_;
  const std::string name = layer_name("gru");
  {
    obs::Region region(&regions_, b_, name, obs::RegionKind::kLayer);
    emit_gru_step(b_, layout, opt);
  }
  emit_layer_check(name, layout.out_addr(), params.hidden);
  cur_addr_ = layout.out_addr();
  cur_count_ = params.hidden;
  net_.state_buffers.emplace_back(layout.out_addr(), params.hidden);
  net_.nominal_macs +=
      3ull * static_cast<uint64_t>(params.hidden) * (params.input + params.hidden);
}

void NetworkProgramBuilder::add_conv(const nn::ConvParamsQ& params, int in_h, int in_w) {
  const int in_count = params.in_ch * in_h * in_w;
  const uint32_t in_addr = take_input(in_count);
  const int out_h = nn::conv_out_dim(in_h, params.kh, params.stride, 0);
  const int out_w = nn::conv_out_dim(in_w, params.kw, params.stride, 0);
  const int out_count = params.out_ch * out_h * out_w;
  const uint32_t out_addr = alloc_.alloc(2 * static_cast<uint32_t>(out_count), 4);
  ConvLayout layout = alloc_conv(alloc_, params, in_h, in_w, in_addr, out_addr);
  ConvEmitOptions opt;
  opt.level = level_;
  opt.max_tile = max_tile_;
  opt.regions = &regions_;
  const std::string name = layer_name("conv");
  {
    obs::Region region(&regions_, b_, name, obs::RegionKind::kLayer);
    emit_conv(b_, layout, opt);
  }
  emit_layer_check(name, out_addr, out_count);
  cur_addr_ = out_addr;
  cur_count_ = out_count;
  net_.nominal_macs += static_cast<uint64_t>(out_count) * params.in_ch * params.kh *
                       params.kw;
}

void NetworkProgramBuilder::add_maxpool(const nn::MaxPoolParams& params, int ch, int in_h,
                                        int in_w) {
  const int in_count = ch * in_h * in_w;
  const uint32_t in_addr = take_input(in_count);
  const int oh = nn::conv_out_dim(in_h, params.k, params.stride, 0);
  const int ow = nn::conv_out_dim(in_w, params.k, params.stride, 0);
  const int out_count = ch * oh * ow;
  const uint32_t out_addr = alloc_.alloc(2 * static_cast<uint32_t>(out_count), 4);
  const PoolLayout layout = plan_maxpool(params, ch, in_h, in_w, in_addr, out_addr);
  const std::string name = layer_name("maxpool");
  {
    obs::Region region(&regions_, b_, name, obs::RegionKind::kLayer);
    emit_maxpool(b_, layout, level_);
  }
  emit_layer_check(name, out_addr, out_count);
  cur_addr_ = out_addr;
  cur_count_ = out_count;
  // Pooling performs comparisons, not MACs; nominal_macs is unchanged.
}

void NetworkProgramBuilder::add_avgpool(const nn::AvgPoolParams& params, int ch, int in_h,
                                        int in_w) {
  const int in_count = ch * in_h * in_w;
  const uint32_t in_addr = take_input(in_count);
  const int oh = nn::conv_out_dim(in_h, params.k, params.stride, 0);
  const int ow = nn::conv_out_dim(in_w, params.k, params.stride, 0);
  const int out_count = ch * oh * ow;
  const uint32_t out_addr = alloc_.alloc(2 * static_cast<uint32_t>(out_count), 4);
  const PoolLayout layout = plan_avgpool(params, ch, in_h, in_w, in_addr, out_addr);
  const std::string name = layer_name("avgpool");
  {
    obs::Region region(&regions_, b_, name, obs::RegionKind::kLayer);
    emit_avgpool(b_, layout, level_);
  }
  emit_layer_check(name, out_addr, out_count);
  cur_addr_ = out_addr;
  cur_count_ = out_count;
}

void NetworkProgramBuilder::add_argmax() {
  RNNASIP_CHECK_MSG(!first_layer_, "argmax needs a preceding layer");
  const uint32_t out_addr = alloc_.alloc(4, 4);
  ArgmaxLayout layout;
  layout.in_addr = cur_addr_;
  layout.out_addr = out_addr;
  layout.count = cur_count_;
  const std::string name = layer_name("argmax");
  {
    obs::Region region(&regions_, b_, name, obs::RegionKind::kLayer);
    emit_argmax(b_, layout, level_);
  }
  emit_layer_check(name, out_addr, 1);
  cur_addr_ = out_addr;
  cur_count_ = 1;
}

BuiltNetwork NetworkProgramBuilder::finalize() {
  RNNASIP_CHECK(!finalized_);
  RNNASIP_CHECK_MSG(!first_layer_, "network has no layers");
  finalized_ = true;
  if (net_.seq) {
    // Sequence tail: stage this step's output, advance the cursor, loop.
    obs::Region region(&regions_, b_, "seq_tail", obs::RegionKind::kOther);
    net_.seq->outputs_addr = alloc_.alloc(
        2u * static_cast<uint32_t>(sequence_steps_) * static_cast<uint32_t>(cur_count_), 4);
    RegPool pool;
    const Reg rSlot = pool.alloc();
    const Reg rSrc = pool.alloc();
    const Reg rDst = pool.alloc();
    const Reg rCnt = pool.alloc();
    b_.li(rSlot, static_cast<int32_t>(net_.seq->out_slot));
    b_.lw(rDst, 0, rSlot);
    b_.li(rSrc, static_cast<int32_t>(cur_addr_));
    emit_copy_halves_rr(b_, level_, rSrc, rDst, cur_count_, pool);
    b_.sw(rDst, 0, rSlot);
    b_.li(rSlot, static_cast<int32_t>(net_.seq->count_slot));
    b_.lw(rCnt, 0, rSlot);
    b_.addi(rCnt, rCnt, -1);
    b_.sw(rCnt, 0, rSlot);
    b_.bne(rCnt, kZero, seq_loop_);
  } else {
    // Keep the label resolvable even when sequence mode is off.
    b_.bind(seq_loop_);
  }
  b_.ebreak();
  // SW activation routines live past the ebreak, reached only by jal.
  // They are emitted unconditionally at the SW levels so label fixups always
  // resolve; unused routines cost a few words of text.
  if (!uses_hw_act(level_)) {
    emit_act_routines(b_, alloc_, tanh_tbl_, sig_tbl_, routines_, &regions_);
  } else {
    // Bind the labels anyway (no references exist at HW-act levels).
    b_.bind(routines_.tanh_label);
    b_.bind(routines_.sig_label);
  }
  regions_.close(root_region_, b_.position());
  net_.output_addr = cur_addr_;
  net_.output_count = cur_count_;
  net_.data_bytes = alloc_.bytes_used();
  if (alloc_.split()) {
    net_.param_base = alloc_.param_base();
    net_.param_bytes = alloc_.param_bytes_used();
  }
  net_.program = b_.build();
  net_.regions = regions_.finish(net_.program.instrs.size());
  return std::move(net_);
}

ForwardRun try_run_forward(exec::ExecutionBackend& backend, iss::Memory& mem,
                           const BuiltNetwork& net, std::span<const int16_t> input,
                           const iss::RunLimits& limits) {
  RNNASIP_CHECK(static_cast<int>(input.size()) == net.input_count);
  mem.write_halves(net.input_addr, input);
  backend.reset(net.program.base);
  ForwardRun fr;
  // Integrity-instrumented programs yield with ecall at each layer
  // boundary; an uninterested caller just resumes past it, keeping the
  // whole-run limits as the budget across all segments.
  iss::RunLimits remaining = limits;
  for (;;) {
    const auto res = backend.run(remaining);
    fr.result.cycles += res.cycles;
    fr.result.instrs += res.instrs;
    fr.result.exit = res.exit;
    fr.result.pc = res.pc;
    fr.result.trap = res.trap;
    fr.result.trap_message = res.trap_message;
    if (res.exit != iss::RunResult::Exit::kEcall) break;
    if (remaining.max_instrs != 0) {
      if (remaining.max_instrs <= res.instrs) {
        fr.result.exit = iss::RunResult::Exit::kMaxInstrs;
        break;
      }
      remaining.max_instrs -= res.instrs;
    }
    if (remaining.max_cycles != 0) {
      if (remaining.max_cycles <= res.cycles) {
        fr.result.exit = iss::RunResult::Exit::kWatchdog;
        fr.result.trap = iss::Trap{iss::TrapCause::kWatchdog, res.pc, 0,
                                   "cycle watchdog expired at a layer boundary"};
        fr.result.trap_message = fr.result.trap.message;
        break;
      }
      remaining.max_cycles -= res.cycles;
    }
    backend.set_pc(res.pc + 4);
  }
  if (fr.ok()) {
    fr.outputs = mem.read_halves(net.output_addr, static_cast<size_t>(net.output_count));
  }
  return fr;
}

ForwardRun try_run_forward(iss::Core& core, iss::Memory& mem, const BuiltNetwork& net,
                           std::span<const int16_t> input,
                           const iss::RunLimits& limits) {
  exec::IssBackend backend(&core);
  return try_run_forward(backend, mem, net, input, limits);
}

std::vector<int16_t> run_forward(iss::Core& core, iss::Memory& mem, const BuiltNetwork& net,
                                 std::span<const int16_t> input) {
  auto fr = try_run_forward(core, mem, net, input);
  RNNASIP_CHECK_MSG(fr.ok(), "network run trapped: " << fr.result.trap_message);
  return std::move(fr.outputs);
}

std::vector<int16_t> run_sequence(iss::Core& core, iss::Memory& mem,
                                  const BuiltNetwork& net,
                                  std::span<const int16_t> inputs) {
  RNNASIP_CHECK_MSG(net.seq.has_value(), "network was not built in sequence mode");
  const auto& seq = *net.seq;
  RNNASIP_CHECK(static_cast<int>(inputs.size()) == seq.steps * net.input_count);
  mem.write_halves(seq.inputs_addr, inputs);
  // Re-arm the loop cursors and the recurrent state.
  mem.store32(seq.in_slot, seq.inputs_addr);
  mem.store32(seq.out_slot, seq.outputs_addr);
  mem.store32(seq.count_slot, static_cast<uint32_t>(seq.steps));
  reset_state(mem, net);
  core.reset(net.program.base);
  const auto res = core.run();
  RNNASIP_CHECK_MSG(res.ok(), "sequence run trapped: " << res.trap_message);
  return mem.read_halves(seq.outputs_addr,
                         static_cast<size_t>(seq.steps) * net.output_count);
}

void reset_state(iss::Memory& mem, const BuiltNetwork& net) {
  for (const auto& [addr, count] : net.state_buffers) {
    const std::vector<int16_t> zeros(static_cast<size_t>(count), 0);
    mem.write_halves(addr, zeros);
  }
}

}  // namespace rnnasip::kernels
