// Whole-network program assembly: chains FC / LSTM / conv layers through
// activation buffers into one standalone program (ends in ebreak), at a
// chosen optimization level. One program execution = one forward pass
// (one timestep for recurrent networks; LSTM state persists in device
// memory across runs until reset_state()).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/asm/builder.h"
#include "src/exec/backend.h"
#include "src/iss/core.h"
#include "src/kernels/act_routines.h"
#include "src/kernels/argmax.h"
#include "src/kernels/conv.h"
#include "src/kernels/fc.h"
#include "src/kernels/gru.h"
#include "src/kernels/layout.h"
#include "src/kernels/lstm.h"
#include "src/kernels/pool.h"
#include "src/kernels/opt_level.h"

namespace rnnasip::kernels {

struct BuiltNetwork {
  assembler::Program program;
  /// Observability region tree (network -> layer -> gate -> kernel),
  /// always recorded at build time; costs nothing unless a RegionProfiler
  /// is attached at run time.
  obs::RegionMap regions;
  uint32_t input_addr = 0;
  int input_count = 0;  ///< halfwords the caller writes before each run
  uint32_t output_addr = 0;
  int output_count = 0;
  /// Recurrent state regions (h and c buffers) to zero between sequences.
  std::vector<std::pair<uint32_t, int>> state_buffers;
  uint64_t nominal_macs = 0;  ///< network MACs per forward pass
  uint32_t data_bytes = 0;    ///< device data footprint (buffer region)
  /// Split builds (param_base != 0 at construction): the read-only
  /// parameter region (weights/biases/LUTs), disjoint from the buffers.
  /// Zero for classic single-region builds.
  uint32_t param_base = 0;
  uint32_t param_bytes = 0;

  /// Integrity-instrumented builds (set_integrity(true)): one record per
  /// layer boundary, in program order. After layer k's code the program
  /// folds [out_addr, out_addr + 2*out_count) into the word at `slot`
  /// (kernels::emit_fold_checksum) and yields with ecall, so a harness can
  /// verify the checksum and checkpoint before resuming at pc + 4. Empty
  /// for plain builds — which stay bit-identical to pre-integrity programs.
  struct LayerCheck {
    std::string name;      ///< region name of the checked layer ("fc0", ...)
    uint32_t out_addr = 0; ///< the layer's output buffer
    int out_count = 0;     ///< halfwords folded
    uint32_t slot = 0;     ///< TCDM word receiving the device fold
  };
  std::vector<LayerCheck> checks;

  /// Device-driven sequence mode (sequence_steps > 1 at build time): the
  /// program loops over all timesteps internally, staging inputs from and
  /// outputs to device arrays. The loop cursors live in memory slots whose
  /// initial values run_sequence() rewrites before each run.
  struct SequenceInfo {
    int steps = 1;
    uint32_t inputs_addr = 0;   ///< steps x input_count halfwords
    uint32_t outputs_addr = 0;  ///< steps x output_count halfwords
    uint32_t in_slot = 0;       ///< input cursor (word)
    uint32_t out_slot = 0;      ///< output cursor (word)
    uint32_t count_slot = 0;    ///< remaining-steps counter (word)
  };
  std::optional<SequenceInfo> seq;
};

class NetworkProgramBuilder {
 public:
  /// The PLA tables must equal the target core's configuration or the SW
  /// routines (levels a/b) would diverge from pl.tanh/pl.sig (levels c+).
  /// With sequence_steps > 1 the program loops over that many timesteps on
  /// the device (see BuiltNetwork::SequenceInfo). A non-zero `param_base`
  /// splits parameters from buffers (DeviceAllocator::set_param_base) so
  /// the parameter region can be shared read-only across cores.
  NetworkProgramBuilder(iss::Memory* mem, OptLevel level,
                        const activation::PlaTable& tanh_tbl,
                        const activation::PlaTable& sig_tbl, int max_tile = 8,
                        int sequence_steps = 1, uint32_t param_base = 0);

  /// Instrument every subsequent layer with an ABFT output checksum + ecall
  /// yield (see BuiltNetwork::checks). Must be called before the first
  /// layer; incompatible with sequence mode (the mid-sequence yields would
  /// leave the loop cursors exposed to the harness).
  void set_integrity(bool on);

  void add_fc(const nn::FcParamsQ& params);
  void add_lstm(const nn::LstmParamsQ& params);
  void add_gru(const nn::GruParamsQ& params);
  /// Input to a conv layer is a CHW tensor of in_ch x in_h x in_w halfwords.
  void add_conv(const nn::ConvParamsQ& params, int in_h, int in_w);
  void add_maxpool(const nn::MaxPoolParams& params, int ch, int in_h, int in_w);
  void add_avgpool(const nn::AvgPoolParams& params, int ch, int in_h, int in_w);
  /// Reduce the current activation vector to its argmax index (one
  /// halfword) — the DQN action selection, computed on the device.
  void add_argmax();

  BuiltNetwork finalize();

 private:
  /// Returns the address holding this layer's input, allocating the network
  /// input buffer if this is the first layer.
  uint32_t take_input(int count);
  void emit_copy(uint32_t src, uint32_t dst, int count);
  /// "fc0", "lstm1", ... — region name for the next layer.
  std::string layer_name(const char* kind);
  /// Sequence mode: called once the first layer's input region is known;
  /// allocates the cursors/arrays and opens the timestep loop.
  void begin_sequence(uint32_t input_region, int count);
  /// Integrity mode: fold the just-emitted layer's output into a fresh
  /// slot, record the LayerCheck, and yield with ecall.
  void emit_layer_check(const std::string& name, uint32_t out_addr, int out_count);

  iss::Memory* mem_;
  OptLevel level_;
  const activation::PlaTable& tanh_tbl_;
  const activation::PlaTable& sig_tbl_;
  int max_tile_;
  DeviceAllocator alloc_;
  assembler::ProgramBuilder b_;
  ActRoutines routines_;
  obs::RegionRecorder regions_;
  int root_region_ = -1;  ///< the always-open "network" region
  int layer_idx_ = 0;     ///< running index for layer region names
  bool first_layer_ = true;
  bool finalized_ = false;
  bool integrity_ = false;
  uint32_t cur_addr_ = 0;  ///< current activation buffer
  int cur_count_ = 0;
  int sequence_steps_ = 1;
  assembler::ProgramBuilder::Label seq_loop_{};
  BuiltNetwork net_;
};

/// Write `input`, run one forward pass, and return the outputs. The core
/// must already have the network's program loaded. Statistics accumulate in
/// the core across calls. Throws on a trapped run.
std::vector<int16_t> run_forward(iss::Core& core, iss::Memory& mem, const BuiltNetwork& net,
                                 std::span<const int16_t> input);

/// Non-throwing forward pass for callers that must survive a trapped or
/// watchdog-killed run (fault campaigns, resilient suite execution).
struct ForwardRun {
  iss::RunResult result;
  std::vector<int16_t> outputs;  ///< empty unless result.ok()
  bool ok() const { return result.ok(); }
};
/// Backend-agnostic forward pass: runs on whatever execution backend is
/// passed in (the ISS or a bound TranslatedCore). The program for `net`
/// must already be loaded/bound on the backend.
ForwardRun try_run_forward(exec::ExecutionBackend& backend, iss::Memory& mem,
                           const BuiltNetwork& net, std::span<const int16_t> input,
                           const iss::RunLimits& limits = {});
ForwardRun try_run_forward(iss::Core& core, iss::Memory& mem, const BuiltNetwork& net,
                           std::span<const int16_t> input,
                           const iss::RunLimits& limits = {});

/// Zero the recurrent state buffers (start of a fresh sequence).
void reset_state(iss::Memory& mem, const BuiltNetwork& net);

/// Run a device-driven sequence: writes all steps' inputs, re-arms the loop
/// cursors, resets the recurrent state, runs once, and returns all steps'
/// outputs (steps x output_count halfwords). Requires a sequence-mode net.
std::vector<int16_t> run_sequence(iss::Core& core, iss::Memory& mem,
                                  const BuiltNetwork& net,
                                  std::span<const int16_t> inputs);

}  // namespace rnnasip::kernels
