#include "src/kernels/opt_level.h"

#include "src/common/check.h"

namespace rnnasip::kernels {

char opt_level_letter(OptLevel level) {
  return static_cast<char>('a' + static_cast<int>(level));
}

std::string opt_level_name(OptLevel level) {
  switch (level) {
    case OptLevel::kBaseline: return "w/o opt (RV32IMC)";
    case OptLevel::kXpulpSimd: return "+SIMD/HWL (Xpulp)";
    case OptLevel::kOutputTiling: return "+Out-FM Tile./tanh/sig";
    case OptLevel::kLoadCompute: return "+pl.sdotsp instruction";
    case OptLevel::kInputTiling: return "+Input FM Tiling";
  }
  RNNASIP_CHECK(false);
}

bool uses_xpulp(OptLevel level) { return level >= OptLevel::kXpulpSimd; }
bool uses_hw_act(OptLevel level) { return level >= OptLevel::kOutputTiling; }
bool uses_load_compute(OptLevel level) { return level >= OptLevel::kLoadCompute; }

}  // namespace rnnasip::kernels
