// The five optimization levels of the paper's Table I. Each level is a
// distinct code-generation strategy; every level computes bit-identical
// results (the paper's "does not impact numerical precision").
#pragma once

#include <array>
#include <string>

namespace rnnasip::kernels {

enum class OptLevel : int {
  /// (a) straight-forward RV32IMC-style code: halfword loads, accumulator
  /// round-trips through memory, pointer addi, bltu loop (plus the mac the
  /// paper's Table Ia lists).
  kBaseline = 0,
  /// (b) + packed-SIMD dot products, hardware loops, post-increment loads.
  kXpulpSimd = 1,
  /// (c) + output feature-map tiling (shared input loads across N outputs)
  ///     + the pl.tanh / pl.sig hardware activation instructions.
  kOutputTiling = 2,
  /// (d) + pl.sdotsp.h.x: weight loads folded into the MAC instruction via
  ///     the two SPR weight registers.
  kLoadCompute = 3,
  /// (e) + input feature-map tiling: two input words per inner iteration,
  ///     eliminating the load bubble of level (d).
  kInputTiling = 4,
};

inline constexpr std::array<OptLevel, 5> kAllOptLevels = {
    OptLevel::kBaseline, OptLevel::kXpulpSimd, OptLevel::kOutputTiling,
    OptLevel::kLoadCompute, OptLevel::kInputTiling};

/// "a".."e", the paper's column labels.
char opt_level_letter(OptLevel level);

/// Human-readable name as in the Table I header.
std::string opt_level_name(OptLevel level);

/// True if this level may use Xpulp hardware loops / post-increment / SIMD.
bool uses_xpulp(OptLevel level);
/// True if this level uses the pl.tanh / pl.sig instructions.
bool uses_hw_act(OptLevel level);
/// True if this level uses pl.sdotsp.h.x.
bool uses_load_compute(OptLevel level);

}  // namespace rnnasip::kernels
