#include "src/kernels/pool.h"

#include "src/common/check.h"

namespace rnnasip::kernels {

using assembler::ProgramBuilder;
using assembler::Reg;
using assembler::RegPool;
using namespace isa;

PoolLayout plan_maxpool(const nn::MaxPoolParams& params, int ch, int in_h, int in_w,
                        uint32_t in_addr, uint32_t out_addr) {
  RNNASIP_CHECK(params.k >= 1 && params.stride >= 1);
  PoolLayout L;
  L.ch = ch;
  L.in_h = in_h;
  L.in_w = in_w;
  L.k = params.k;
  L.stride = params.stride;
  L.out_h = nn::conv_out_dim(in_h, params.k, params.stride, 0);
  L.out_w = nn::conv_out_dim(in_w, params.k, params.stride, 0);
  RNNASIP_CHECK(L.out_h > 0 && L.out_w > 0);
  L.in_addr = in_addr;
  L.out_addr = out_addr;
  // Window offsets use immediate addressing from the pixel pointer.
  RNNASIP_CHECK_MSG(2 * ((params.k - 1) * in_w + params.k - 1) <= 2047,
                    "pool window exceeds immediate range");
  return L;
}

PoolLayout plan_avgpool(const nn::AvgPoolParams& params, int ch, int in_h, int in_w,
                        uint32_t in_addr, uint32_t out_addr) {
  RNNASIP_CHECK_MSG((params.k & (params.k - 1)) == 0 && params.k >= 1,
                    "avg-pool window must be a power of two");
  nn::MaxPoolParams mp{params.k, params.stride};
  PoolLayout L = plan_maxpool(mp, ch, in_h, in_w, in_addr, out_addr);
  int lg = 0;
  while ((1 << lg) < params.k) ++lg;
  L.shift = 2 * lg;
  return L;
}

namespace {

/// Shared pooling loop nest; `reduce` emits the per-element combine into
/// the running register, `finish` post-processes it before the store.
template <typename Reduce, typename Finish>
void emit_pool_nest(ProgramBuilder& b, const PoolLayout& L, OptLevel level,
                    const Reduce& reduce, const Finish& finish) {
  const bool xp = uses_xpulp(level);
  RegPool pool;
  const Reg rOp = pool.alloc();
  const Reg rCcnt = pool.alloc();
  const Reg rOyCnt = pool.alloc();
  const Reg rOxCnt = pool.alloc();
  const Reg rInC = pool.alloc();
  const Reg rInRow = pool.alloc();
  const Reg rInPix = pool.alloc();
  const Reg rM = pool.alloc();
  const Reg rV = pool.alloc();

  b.li(rOp, static_cast<int32_t>(L.out_addr));
  b.li(rInC, static_cast<int32_t>(L.in_addr));
  b.li(rCcnt, L.ch);

  auto c_loop = b.make_label();
  b.bind(c_loop);
  {
    b.mv(rInRow, rInC);
    b.li(rOyCnt, L.out_h);
    auto oy_loop = b.make_label();
    b.bind(oy_loop);
    {
      b.mv(rInPix, rInRow);
      b.li(rOxCnt, L.out_w);
      auto ox_loop = b.make_label();
      b.bind(ox_loop);
      {
        // Host-unrolled k x k window, offsets from the pixel pointer.
        b.lh(rM, 0, rInPix);
        for (int ky = 0; ky < L.k; ++ky) {
          for (int kx = 0; kx < L.k; ++kx) {
            if (ky == 0 && kx == 0) continue;
            const int off = 2 * (ky * L.in_w + kx);
            b.lh(rV, off, rInPix);
            reduce(rM, rV);
          }
        }
        finish(rM);
        if (xp) {
          b.p_sh(rM, 2, rOp);
        } else {
          b.sh(rM, 0, rOp);
          b.addi(rOp, rOp, 2);
        }
        b.addi(rInPix, rInPix, 2 * L.stride);
        b.addi(rOxCnt, rOxCnt, -1);
        b.bne(rOxCnt, kZero, ox_loop);
      }
      if (fits_signed(2 * L.in_w * L.stride, 12)) {
        b.addi(rInRow, rInRow, 2 * L.in_w * L.stride);
      } else {
        b.li(rV, 2 * L.in_w * L.stride);
        b.add(rInRow, rInRow, rV);
      }
      b.addi(rOyCnt, rOyCnt, -1);
      b.bne(rOyCnt, kZero, oy_loop);
    }
    if (fits_signed(2 * L.in_h * L.in_w, 12)) {
      b.addi(rInC, rInC, 2 * L.in_h * L.in_w);
    } else {
      b.li(rV, 2 * L.in_h * L.in_w);
      b.add(rInC, rInC, rV);
    }
    b.addi(rCcnt, rCcnt, -1);
    b.bne(rCcnt, kZero, c_loop);
  }
}

}  // namespace

void emit_maxpool(ProgramBuilder& b, const PoolLayout& L, OptLevel level) {
  const bool xp = uses_xpulp(level);
  emit_pool_nest(
      b, L, level,
      [&](Reg m, Reg v) {
        if (xp) {
          b.p_max(m, m, v);
        } else {
          auto keep = b.make_label();
          b.bge(m, v, keep);
          b.mv(m, v);
          b.bind(keep);
        }
      },
      [](Reg) {});
}

void emit_avgpool(ProgramBuilder& b, const PoolLayout& L, OptLevel level) {
  RNNASIP_CHECK_MSG(L.shift > 0 || L.k == 1, "layout not planned for avg pooling");
  emit_pool_nest(
      b, L, level, [&](Reg m, Reg v) { b.add(m, m, v); },
      [&](Reg m) {
        if (L.shift > 0) b.srai(m, m, L.shift);
      });
}

}  // namespace rnnasip::kernels
