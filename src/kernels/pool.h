// Max-pooling kernel generator (per-channel, valid windows). Pooling is
// O(pixels) against the conv's O(pixels * k^2 * channels), so one scalar
// schedule serves all Xpulp levels (p.max + post-increment loads in
// hardware loops); the baseline level uses branches. Results are exact at
// every level (max needs no requantization).
#pragma once

#include "src/asm/builder.h"
#include "src/kernels/layout.h"
#include "src/kernels/opt_level.h"
#include "src/nn/layers.h"

namespace rnnasip::kernels {

struct PoolLayout {
  int ch = 0, in_h = 0, in_w = 0;
  int k = 2, stride = 2;
  int out_h = 0, out_w = 0;
  int shift = 0;          ///< avg pool: srai by log2(k^2); 0 for max pool
  uint32_t in_addr = 0;   ///< CHW int16
  uint32_t out_addr = 0;  ///< CHW int16
};

PoolLayout plan_maxpool(const nn::MaxPoolParams& params, int ch, int in_h, int in_w,
                        uint32_t in_addr, uint32_t out_addr);

void emit_maxpool(assembler::ProgramBuilder& b, const PoolLayout& layout, OptLevel level);

/// Average pooling: window sum + arithmetic shift by log2(k^2). The window
/// must be a power of two (checked in plan_avgpool).
PoolLayout plan_avgpool(const nn::AvgPoolParams& params, int ch, int in_h, int in_w,
                        uint32_t in_addr, uint32_t out_addr);

void emit_avgpool(assembler::ProgramBuilder& b, const PoolLayout& layout, OptLevel level);

}  // namespace rnnasip::kernels
