#include "src/nn/init.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/nn/quantize.h"

namespace rnnasip::nn {

MatrixF random_matrix(Rng& rng, int rows, int cols, float scale) {
  MatrixF m(rows, cols);
  for (auto& v : m.data) v = static_cast<float>(rng.next_in(-scale, scale));
  return m;
}

VectorF random_vector(Rng& rng, int n, float scale) {
  VectorF v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.next_in(-scale, scale));
  return v;
}

Tensor3F random_tensor(Rng& rng, int ch, int h, int w, float scale) {
  Tensor3F t(ch, h, w);
  for (auto& v : t.data) v = static_cast<float>(rng.next_in(-scale, scale));
  return t;
}

FcParamsF random_fc(Rng& rng, int in, int out, ActKind act, float scale) {
  FcParamsF p;
  p.w = random_matrix(rng, out, in, scale);
  p.b = random_vector(rng, out, scale);
  p.act = act;
  return p;
}

LstmParamsF random_lstm(Rng& rng, int input, int hidden, float scale) {
  LstmParamsF p;
  p.input = input;
  p.hidden = hidden;
  p.wi = random_matrix(rng, hidden, input, scale);
  p.wf = random_matrix(rng, hidden, input, scale);
  p.wo = random_matrix(rng, hidden, input, scale);
  p.wc = random_matrix(rng, hidden, input, scale);
  p.ui = random_matrix(rng, hidden, hidden, scale);
  p.uf = random_matrix(rng, hidden, hidden, scale);
  p.uo = random_matrix(rng, hidden, hidden, scale);
  p.uc = random_matrix(rng, hidden, hidden, scale);
  p.bi = random_vector(rng, hidden, scale);
  p.bf = random_vector(rng, hidden, scale);
  p.bo = random_vector(rng, hidden, scale);
  p.bc = random_vector(rng, hidden, scale);
  return p;
}

GruParamsF random_gru(Rng& rng, int input, int hidden, float scale) {
  GruParamsF p;
  p.input = input;
  p.hidden = hidden;
  p.wr = random_matrix(rng, hidden, input, scale);
  p.wz = random_matrix(rng, hidden, input, scale);
  p.wn = random_matrix(rng, hidden, input, scale);
  p.ur = random_matrix(rng, hidden, hidden, scale);
  p.uz = random_matrix(rng, hidden, hidden, scale);
  p.un = random_matrix(rng, hidden, hidden, scale);
  p.br = random_vector(rng, hidden, scale);
  p.bz = random_vector(rng, hidden, scale);
  p.bn = random_vector(rng, hidden, scale);
  return p;
}

ConvParamsF random_conv(Rng& rng, int in_ch, int out_ch, int k, ActKind act, int stride,
                        int pad, float scale) {
  ConvParamsF p;
  p.in_ch = in_ch;
  p.out_ch = out_ch;
  p.kh = p.kw = k;
  p.stride = stride;
  p.pad = pad;
  p.act = act;
  p.w.resize(static_cast<size_t>(out_ch) * in_ch * k * k);
  for (auto& v : p.w) v = static_cast<float>(rng.next_in(-scale, scale));
  p.b = random_vector(rng, out_ch, scale);
  return p;
}

void prune_matrix(MatrixF& m, double density) {
  RNNASIP_CHECK(density >= 0.0 && density <= 1.0);
  std::vector<float> mags;
  mags.reserve(m.data.size());
  for (float v : m.data) mags.push_back(std::abs(v));
  const size_t keep = static_cast<size_t>(density * static_cast<double>(mags.size()));
  if (keep == 0) {
    std::fill(m.data.begin(), m.data.end(), 0.0f);
    return;
  }
  if (keep >= mags.size()) return;
  std::nth_element(mags.begin(), mags.end() - keep, mags.end());
  const float threshold = mags[mags.size() - keep];
  for (float& v : m.data) {
    if (std::abs(v) < threshold) v = 0.0f;
  }
}

FcParamsQ quantize_fc(const FcParamsF& p) {
  FcParamsQ q;
  q.w = quantize_matrix(p.w);
  q.b = quantize_vector(p.b);
  q.act = p.act;
  return q;
}

LstmParamsQ quantize_lstm(const LstmParamsF& p) {
  LstmParamsQ q;
  q.input = p.input;
  q.hidden = p.hidden;
  q.wi = quantize_matrix(p.wi);
  q.wf = quantize_matrix(p.wf);
  q.wo = quantize_matrix(p.wo);
  q.wc = quantize_matrix(p.wc);
  q.ui = quantize_matrix(p.ui);
  q.uf = quantize_matrix(p.uf);
  q.uo = quantize_matrix(p.uo);
  q.uc = quantize_matrix(p.uc);
  q.bi = quantize_vector(p.bi);
  q.bf = quantize_vector(p.bf);
  q.bo = quantize_vector(p.bo);
  q.bc = quantize_vector(p.bc);
  return q;
}

GruParamsQ quantize_gru(const GruParamsF& p) {
  GruParamsQ q;
  q.input = p.input;
  q.hidden = p.hidden;
  q.wr = quantize_matrix(p.wr);
  q.wz = quantize_matrix(p.wz);
  q.wn = quantize_matrix(p.wn);
  q.ur = quantize_matrix(p.ur);
  q.uz = quantize_matrix(p.uz);
  q.un = quantize_matrix(p.un);
  q.br = quantize_vector(p.br);
  q.bz = quantize_vector(p.bz);
  q.bn = quantize_vector(p.bn);
  return q;
}

ConvParamsQ quantize_conv(const ConvParamsF& p) {
  ConvParamsQ q;
  q.in_ch = p.in_ch;
  q.out_ch = p.out_ch;
  q.kh = p.kh;
  q.kw = p.kw;
  q.stride = p.stride;
  q.pad = p.pad;
  q.act = p.act;
  q.w.resize(p.w.size());
  for (size_t i = 0; i < p.w.size(); ++i) q.w[i] = static_cast<int16_t>(quantize(p.w[i]));
  q.b = quantize_vector(p.b);
  return q;
}

}  // namespace rnnasip::nn
