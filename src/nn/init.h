// Deterministic parameter/input generation for workloads and tests.
//
// Cycle counts of dense kernels are data-independent, so the benchmark
// suite runs on reproducible pseudo-random weights (see DESIGN.md,
// substitutions). Magnitudes default to the scale a trained, normalized
// network would have (|w| <= 0.5, |x| <= 1.0), keeping Q3.12 accumulators
// far from saturation.
#pragma once

#include "src/common/rng.h"
#include "src/nn/layers.h"

namespace rnnasip::nn {

MatrixF random_matrix(Rng& rng, int rows, int cols, float scale = 0.5f);
VectorF random_vector(Rng& rng, int n, float scale = 0.5f);
Tensor3F random_tensor(Rng& rng, int ch, int h, int w, float scale = 1.0f);

FcParamsF random_fc(Rng& rng, int in, int out, ActKind act, float scale = 0.5f);
LstmParamsF random_lstm(Rng& rng, int input, int hidden, float scale = 0.5f);
GruParamsF random_gru(Rng& rng, int input, int hidden, float scale = 0.5f);
ConvParamsF random_conv(Rng& rng, int in_ch, int out_ch, int k, ActKind act,
                        int stride = 1, int pad = 0, float scale = 0.5f);

/// Magnitude pruning: zero all but the largest-|w| `density` fraction of
/// entries (the compression setting of the related work [19], [20]).
void prune_matrix(MatrixF& m, double density);

FcParamsQ quantize_fc(const FcParamsF& p);
LstmParamsQ quantize_lstm(const LstmParamsF& p);
GruParamsQ quantize_gru(const GruParamsF& p);
ConvParamsQ quantize_conv(const ConvParamsF& p);

}  // namespace rnnasip::nn
