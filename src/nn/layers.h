// Layer parameter descriptions and reference forward passes.
//
// Two parallel implementations exist for every kernel:
//   * float reference — the "trained model" semantics,
//   * fixed-point golden — bit-exact mirror of the arithmetic the generated
//     RISC-V kernels perform (wrapping 32-bit accumulation, srai-by-12
//     requantization with 16-bit clipping, PLA activations).
// Generated kernels at EVERY optimization level must match the fixed-point
// golden model bit-exactly; the golden model in turn is tolerance-checked
// against the float reference.
#pragma once

#include "src/activation/pla.h"
#include "src/nn/tensor.h"

namespace rnnasip::nn {

/// Per-layer output nonlinearity. The RRM benchmark uses ReLU inside the
/// DQN-style FC stacks and tanh/sigmoid inside LSTM cells.
enum class ActKind : uint8_t { kNone, kReLU, kTanh, kSigmoid };

// ---------------------------------------------------------------- FC ----

template <typename T>
struct FcParams {
  Matrix<T> w;       ///< out x in
  std::vector<T> b;  ///< out
  ActKind act = ActKind::kNone;
};
using FcParamsF = FcParams<float>;
using FcParamsQ = FcParams<int16_t>;

/// o = act(b + W x), float reference.
VectorF fc_forward(const FcParamsF& p, const VectorF& x);

/// Fixed-point golden model: 32-bit wrapping accumulation of Q3.12
/// products on top of bias << frac_bits, then arithmetic shift right by
/// frac_bits and clip to 16 bits, then the activation (ReLU = max(0, .),
/// tanh/sig = PLA; tanh/sig require frac_bits == 12, the PLA format).
VectorQ fc_forward_fixp(const FcParamsQ& p, const VectorQ& x,
                        const activation::PlaTable& tanh_tbl,
                        const activation::PlaTable& sig_tbl, int frac_bits = 12);

// -------------------------------------------------------------- LSTM ----

/// LSTM cell (Eqs. 1-6 of the paper): 4 gates, each with an input weight
/// matrix W (n x m), a recurrent matrix U (n x n), and a bias (n).
template <typename T>
struct LstmParams {
  int input = 0;   ///< m
  int hidden = 0;  ///< n
  Matrix<T> wi, wf, wo, wc;  ///< n x m
  Matrix<T> ui, uf, uo, uc;  ///< n x n
  std::vector<T> bi, bf, bo, bc;
};
using LstmParamsF = LstmParams<float>;
using LstmParamsQ = LstmParams<int16_t>;

struct LstmStateF {
  VectorF h, c;
};
struct LstmStateQ {
  VectorQ h, c;
};

/// One LSTM time step, float reference. Updates state in place.
VectorF lstm_step(const LstmParamsF& p, const VectorF& x, LstmStateF& state);

/// One LSTM time step, fixed-point golden model:
///   gate pre-activations accumulate W·x and U·h over bias << 12, requantize
///   (srai 12 + clip16), go through the PLA unit; the Hadamard products use
///   mul -> srai 12, summed and clipped to 16 bits.
VectorQ lstm_step_fixp(const LstmParamsQ& p, const VectorQ& x, LstmStateQ& state,
                       const activation::PlaTable& tanh_tbl,
                       const activation::PlaTable& sig_tbl);

// -------------------------------------------------------------- INT8 ----

/// 8-bit fixed-point FC path (Q1.6: 1 integer + 6 fraction bits), the
/// "eight and fewer bits" direction the paper cites ([27]). The packed
/// pv.sdotsp.b instruction retires 4 MACs/cycle — double the 16-bit rate —
/// at the cost of quantization error that the Fig.-2-style bench
/// (bench_int8) quantifies. Activations: none/ReLU (the PLA unit is a
/// Q3.12 datapath; recurrent cells stay 16-bit).
struct FcParams8 {
  Matrix<int8_t> w;       ///< out x in, Q1.6 raw
  std::vector<int8_t> b;  ///< out
  ActKind act = ActKind::kNone;  ///< kNone or kReLU only
};

inline constexpr QFormat q1_6{1, 6};

std::vector<int8_t> quantize_vector8(const VectorF& v);
VectorF dequantize_vector8(const std::vector<int8_t>& v);
FcParams8 quantize_fc8(const FcParamsF& p);

/// Fixed-point golden model of the INT8 kernel: wrapping 32-bit
/// accumulation over bias << 6, then srai 6 and clip to int8.
std::vector<int8_t> fc_forward_fixp8(const FcParams8& p, const std::vector<int8_t>& x);

// --------------------------------------------------------------- GRU ----

/// GRU cell (Cho et al. formulation — the RNN-variant flexibility argument
/// of the paper's Sec. I: new cells run on the same ISA, no HW change):
///   r  = sig(Wr x + Ur h + br)
///   z  = sig(Wz x + Uz h + bz)
///   n  = tanh(Wn x + Un (r o h) + bn)
///   h' = z o h + (1 - z) o n
template <typename T>
struct GruParams {
  int input = 0;   ///< m
  int hidden = 0;  ///< n
  Matrix<T> wr, wz, wn;  ///< n x m
  Matrix<T> ur, uz, un;  ///< n x n
  std::vector<T> br, bz, bn;
};
using GruParamsF = GruParams<float>;
using GruParamsQ = GruParams<int16_t>;

struct GruStateF {
  VectorF h;
};
struct GruStateQ {
  VectorQ h;
};

/// One GRU time step, float reference. Updates state in place.
VectorF gru_step(const GruParamsF& p, const VectorF& x, GruStateF& state);

/// One GRU time step, fixed-point golden model (same discipline as the LSTM
/// golden: wrapping accumulation, srai-12 requantization, PLA activations,
/// Hadamard products as mul -> srai 12 with a 16-bit clip at the store).
VectorQ gru_step_fixp(const GruParamsQ& p, const VectorQ& x, GruStateQ& state,
                      const activation::PlaTable& tanh_tbl,
                      const activation::PlaTable& sig_tbl);

// ------------------------------------------------------------- Conv ----

template <typename T>
struct ConvParams {
  int in_ch = 0, out_ch = 0;
  int kh = 0, kw = 0;
  int stride = 1;
  int pad = 0;
  std::vector<T> w;  ///< out_ch x in_ch x kh x kw, row-major
  std::vector<T> b;  ///< out_ch
  ActKind act = ActKind::kNone;

  T weight(int oc, int ic, int y, int x) const {
    return w[((static_cast<size_t>(oc) * in_ch + ic) * kh + y) * kw + x];
  }
  T& weight(int oc, int ic, int y, int x) {
    return w[((static_cast<size_t>(oc) * in_ch + ic) * kh + y) * kw + x];
  }
};
using ConvParamsF = ConvParams<float>;
using ConvParamsQ = ConvParams<int16_t>;

/// Output spatial size for one dimension.
int conv_out_dim(int in, int k, int stride, int pad);

/// 2-D convolution, float reference.
Tensor3F conv2d_forward(const ConvParamsF& p, const Tensor3F& in);

/// 2-D convolution, fixed-point golden model (same accumulate/requantize
/// discipline as the FC path; zero padding contributes nothing).
Tensor3Q conv2d_forward_fixp(const ConvParamsQ& p, const Tensor3Q& in);

/// im2col lowering: each output pixel's receptive field becomes one column
/// of a (in_ch*kh*kw) x (out_h*out_w) matrix — the transformation the
/// optimized CNN kernels apply so the conv becomes matrix-matrix work.
MatrixQ im2col(const ConvParamsQ& p, const Tensor3Q& in);

// ------------------------------------------------------------ pooling ----

/// Max pooling (per channel, valid windows only). Quantization-exact: max
/// commutes with quantization, so float and fixed point agree up to input
/// rounding and the kernels are trivially bit-exact.
struct MaxPoolParams {
  int k = 2;
  int stride = 2;
};

Tensor3F maxpool_forward(const MaxPoolParams& p, const Tensor3F& in);
Tensor3Q maxpool_forward_fixp(const MaxPoolParams& p, const Tensor3Q& in);

/// Average pooling with a power-of-two window (k in {1, 2, 4, 8}), so the
/// division is an exact arithmetic shift by log2(k^2) on the device — no
/// divider, no rounding ambiguity. The fixed-point mean truncates toward
/// -inf (srai semantics), which the golden model mirrors.
struct AvgPoolParams {
  int k = 2;
  int stride = 2;
};

Tensor3F avgpool_forward(const AvgPoolParams& p, const Tensor3F& in);
Tensor3Q avgpool_forward_fixp(const AvgPoolParams& p, const Tensor3Q& in);

}  // namespace rnnasip::nn
