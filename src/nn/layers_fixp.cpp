// Fixed-point golden models. Arithmetic mirrors the generated kernels
// instruction for instruction:
//   * accumulation in a wrapping 32-bit register (uint32 adds, like the
//     core's GPR datapath),
//   * bias preloaded as bias << 12,
//   * requantization = arithmetic shift right 12, then clip to 16 bits,
//   * tanh/sigmoid through the same PlaTable the core's activation unit and
//     the SW fallback routine use.
#include "src/common/bits.h"
#include "src/common/check.h"
#include "src/nn/layers.h"

namespace rnnasip::nn {
namespace {

using activation::PlaTable;

/// The kernels' requantize step: srai by frac_bits + clip to int16.
int16_t requant(uint32_t acc, int frac_bits) {
  const int32_t shifted = static_cast<int32_t>(acc) >> frac_bits;
  return static_cast<int16_t>(clip_signed(shifted, 16));
}

int16_t requant12(uint32_t acc) { return requant(acc, 12); }

int16_t apply_act_fixp(ActKind act, int16_t v, const PlaTable& tanh_tbl,
                       const PlaTable& sig_tbl) {
  switch (act) {
    case ActKind::kNone: return v;
    case ActKind::kReLU: return v > 0 ? v : static_cast<int16_t>(0);
    case ActKind::kTanh: return static_cast<int16_t>(tanh_tbl.eval_raw(v));
    case ActKind::kSigmoid: return static_cast<int16_t>(sig_tbl.eval_raw(v));
  }
  RNNASIP_CHECK(false);
}

/// acc += w * x with the core's wrapping semantics.
void mac(uint32_t& acc, int16_t w, int16_t x) {
  acc += static_cast<uint32_t>(static_cast<int32_t>(w) * static_cast<int32_t>(x));
}

}  // namespace

VectorQ fc_forward_fixp(const FcParamsQ& p, const VectorQ& x, const PlaTable& tanh_tbl,
                        const PlaTable& sig_tbl, int frac_bits) {
  RNNASIP_CHECK(p.w.cols == static_cast<int>(x.size()));
  RNNASIP_CHECK(p.w.rows == static_cast<int>(p.b.size()));
  RNNASIP_CHECK(frac_bits == 12 || p.act == ActKind::kNone || p.act == ActKind::kReLU);
  VectorQ out(p.b.size());
  for (int r = 0; r < p.w.rows; ++r) {
    uint32_t acc = static_cast<uint32_t>(static_cast<int32_t>(p.b[r]) << frac_bits);
    for (int c = 0; c < p.w.cols; ++c) mac(acc, p.w.at(r, c), x[c]);
    out[r] = apply_act_fixp(p.act, requant(acc, frac_bits), tanh_tbl, sig_tbl);
  }
  return out;
}

std::vector<int8_t> quantize_vector8(const VectorF& v) {
  std::vector<int8_t> out(v.size());
  for (size_t i = 0; i < v.size(); ++i)
    out[i] = static_cast<int8_t>(quantize(v[i], q1_6));
  return out;
}

VectorF dequantize_vector8(const std::vector<int8_t>& v) {
  VectorF out(v.size());
  for (size_t i = 0; i < v.size(); ++i)
    out[i] = static_cast<float>(dequantize(v[i], q1_6));
  return out;
}

FcParams8 quantize_fc8(const FcParamsF& p) {
  RNNASIP_CHECK(p.act == ActKind::kNone || p.act == ActKind::kReLU);
  FcParams8 q;
  q.w = Matrix<int8_t>(p.w.rows, p.w.cols);
  for (size_t i = 0; i < p.w.data.size(); ++i)
    q.w.data[i] = static_cast<int8_t>(quantize(p.w.data[i], q1_6));
  q.b.resize(p.b.size());
  for (size_t i = 0; i < p.b.size(); ++i)
    q.b[i] = static_cast<int8_t>(quantize(p.b[i], q1_6));
  q.act = p.act;
  return q;
}

std::vector<int8_t> fc_forward_fixp8(const FcParams8& p, const std::vector<int8_t>& x) {
  RNNASIP_CHECK(p.w.cols == static_cast<int>(x.size()));
  RNNASIP_CHECK(p.w.rows == static_cast<int>(p.b.size()));
  std::vector<int8_t> out(p.b.size());
  for (int r = 0; r < p.w.rows; ++r) {
    uint32_t acc = static_cast<uint32_t>(static_cast<int32_t>(p.b[r]) << 6);
    for (int c = 0; c < p.w.cols; ++c) {
      acc += static_cast<uint32_t>(static_cast<int32_t>(p.w.at(r, c)) *
                                   static_cast<int32_t>(x[static_cast<size_t>(c)]));
    }
    int32_t v = static_cast<int32_t>(clip_signed(static_cast<int32_t>(acc) >> 6, 8));
    if (p.act == ActKind::kReLU && v < 0) v = 0;
    out[static_cast<size_t>(r)] = static_cast<int8_t>(v);
  }
  return out;
}

VectorQ lstm_step_fixp(const LstmParamsQ& p, const VectorQ& x, LstmStateQ& state,
                       const PlaTable& tanh_tbl, const PlaTable& sig_tbl) {
  RNNASIP_CHECK(static_cast<int>(x.size()) == p.input);
  RNNASIP_CHECK(static_cast<int>(state.h.size()) == p.hidden);
  RNNASIP_CHECK(static_cast<int>(state.c.size()) == p.hidden);

  auto gate = [&](const MatrixQ& w, const MatrixQ& u, const VectorQ& b, bool use_tanh) {
    VectorQ g(static_cast<size_t>(p.hidden));
    for (int r = 0; r < p.hidden; ++r) {
      uint32_t acc = static_cast<uint32_t>(static_cast<int32_t>(b[r]) << 12);
      for (int c = 0; c < p.input; ++c) mac(acc, w.at(r, c), x[c]);
      for (int c = 0; c < p.hidden; ++c) mac(acc, u.at(r, c), state.h[c]);
      const int16_t pre = requant12(acc);
      g[r] = static_cast<int16_t>(use_tanh ? tanh_tbl.eval_raw(pre) : sig_tbl.eval_raw(pre));
    }
    return g;
  };

  const VectorQ i = gate(p.wi, p.ui, p.bi, false);
  const VectorQ f = gate(p.wf, p.uf, p.bf, false);
  const VectorQ o = gate(p.wo, p.uo, p.bo, false);
  const VectorQ g = gate(p.wc, p.uc, p.bc, true);

  for (int r = 0; r < p.hidden; ++r) {
    // c' = (f*c >> 12) + (i*g >> 12), clipped at the store.
    const int32_t fc = (static_cast<int32_t>(f[r]) * state.c[r]) >> 12;
    const int32_t ig = (static_cast<int32_t>(i[r]) * g[r]) >> 12;
    state.c[r] = static_cast<int16_t>(clip_signed(fc + ig, 16));
    // h' = (o * tanh(c')) >> 12, clipped.
    const int32_t th = tanh_tbl.eval_raw(state.c[r]);
    const int32_t oh = (static_cast<int32_t>(o[r]) * th) >> 12;
    state.h[r] = static_cast<int16_t>(clip_signed(oh, 16));
  }
  return state.h;
}

VectorQ gru_step_fixp(const GruParamsQ& p, const VectorQ& x, GruStateQ& state,
                      const PlaTable& tanh_tbl, const PlaTable& sig_tbl) {
  RNNASIP_CHECK(static_cast<int>(x.size()) == p.input);
  RNNASIP_CHECK(static_cast<int>(state.h.size()) == p.hidden);
  constexpr int32_t kOne = 4096;  // 1.0 in Q3.12

  auto gate = [&](const MatrixQ& w, const MatrixQ& u, const VectorQ& b,
                  const VectorQ& hvec, bool use_tanh) {
    VectorQ g(static_cast<size_t>(p.hidden));
    for (int r = 0; r < p.hidden; ++r) {
      uint32_t acc = static_cast<uint32_t>(static_cast<int32_t>(b[r]) << 12);
      for (int c = 0; c < p.input; ++c) mac(acc, w.at(r, c), x[c]);
      for (int c = 0; c < p.hidden; ++c) mac(acc, u.at(r, c), hvec[c]);
      const int16_t pre = requant12(acc);
      g[r] = static_cast<int16_t>(use_tanh ? tanh_tbl.eval_raw(pre) : sig_tbl.eval_raw(pre));
    }
    return g;
  };

  const VectorQ r = gate(p.wr, p.ur, p.br, state.h, false);
  const VectorQ z = gate(p.wz, p.uz, p.bz, state.h, false);
  VectorQ rh(static_cast<size_t>(p.hidden));
  for (int i = 0; i < p.hidden; ++i) {
    const int32_t v = (static_cast<int32_t>(r[i]) * state.h[i]) >> 12;
    rh[i] = static_cast<int16_t>(clip_signed(v, 16));
  }
  const VectorQ n = gate(p.wn, p.un, p.bn, rh, true);
  for (int i = 0; i < p.hidden; ++i) {
    const int32_t zh = (static_cast<int32_t>(z[i]) * state.h[i]) >> 12;
    const int32_t zn = ((kOne - static_cast<int32_t>(z[i])) * n[i]) >> 12;
    state.h[i] = static_cast<int16_t>(clip_signed(zh + zn, 16));
  }
  return state.h;
}

Tensor3Q conv2d_forward_fixp(const ConvParamsQ& p, const Tensor3Q& in) {
  RNNASIP_CHECK(in.ch == p.in_ch);
  const int oh = conv_out_dim(in.h, p.kh, p.stride, p.pad);
  const int ow = conv_out_dim(in.w, p.kw, p.stride, p.pad);
  Tensor3Q out(p.out_ch, oh, ow);
  for (int oc = 0; oc < p.out_ch; ++oc) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        uint32_t acc = static_cast<uint32_t>(static_cast<int32_t>(p.b[oc]) << 12);
        for (int ic = 0; ic < p.in_ch; ++ic) {
          for (int ky = 0; ky < p.kh; ++ky) {
            for (int kx = 0; kx < p.kw; ++kx) {
              const int iy = oy * p.stride + ky - p.pad;
              const int ix = ox * p.stride + kx - p.pad;
              if (iy < 0 || iy >= in.h || ix < 0 || ix >= in.w) continue;
              mac(acc, p.weight(oc, ic, ky, kx), in.at(ic, iy, ix));
            }
          }
        }
        const int16_t v = requant12(acc);
        out.at(oc, oy, ox) = p.act == ActKind::kReLU && v < 0 ? static_cast<int16_t>(0) : v;
      }
    }
  }
  return out;
}

Tensor3Q maxpool_forward_fixp(const MaxPoolParams& p, const Tensor3Q& in) {
  const int oh = conv_out_dim(in.h, p.k, p.stride, 0);
  const int ow = conv_out_dim(in.w, p.k, p.stride, 0);
  Tensor3Q out(in.ch, oh, ow);
  for (int c = 0; c < in.ch; ++c) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        int16_t m = in.at(c, oy * p.stride, ox * p.stride);
        for (int ky = 0; ky < p.k; ++ky) {
          for (int kx = 0; kx < p.k; ++kx) {
            m = std::max(m, in.at(c, oy * p.stride + ky, ox * p.stride + kx));
          }
        }
        out.at(c, oy, ox) = m;
      }
    }
  }
  return out;
}

namespace {

int log2_exact(int v) {
  int l = 0;
  while ((1 << l) < v) ++l;
  RNNASIP_CHECK_MSG((1 << l) == v, "avg-pool window must be a power of two");
  return l;
}

}  // namespace

Tensor3Q avgpool_forward_fixp(const AvgPoolParams& p, const Tensor3Q& in) {
  const int shift = 2 * log2_exact(p.k);  // divide by k^2
  const int oh = conv_out_dim(in.h, p.k, p.stride, 0);
  const int ow = conv_out_dim(in.w, p.k, p.stride, 0);
  Tensor3Q out(in.ch, oh, ow);
  for (int c = 0; c < in.ch; ++c) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        int32_t s = 0;
        for (int ky = 0; ky < p.k; ++ky) {
          for (int kx = 0; kx < p.k; ++kx) {
            s += in.at(c, oy * p.stride + ky, ox * p.stride + kx);
          }
        }
        out.at(c, oy, ox) = static_cast<int16_t>(s >> shift);
      }
    }
  }
  return out;
}

MatrixQ im2col(const ConvParamsQ& p, const Tensor3Q& in) {
  const int oh = conv_out_dim(in.h, p.kh, p.stride, p.pad);
  const int ow = conv_out_dim(in.w, p.kw, p.stride, p.pad);
  MatrixQ m(p.in_ch * p.kh * p.kw, oh * ow);
  for (int ic = 0; ic < p.in_ch; ++ic) {
    for (int ky = 0; ky < p.kh; ++ky) {
      for (int kx = 0; kx < p.kw; ++kx) {
        const int row = (ic * p.kh + ky) * p.kw + kx;
        for (int oy = 0; oy < oh; ++oy) {
          for (int ox = 0; ox < ow; ++ox) {
            const int iy = oy * p.stride + ky - p.pad;
            const int ix = ox * p.stride + kx - p.pad;
            const int16_t v = (iy < 0 || iy >= in.h || ix < 0 || ix >= in.w)
                                  ? static_cast<int16_t>(0)
                                  : in.at(ic, iy, ix);
            m.at(row, oy * ow + ox) = v;
          }
        }
      }
    }
  }
  return m;
}

}  // namespace rnnasip::nn
