#include <cmath>

#include "src/common/check.h"
#include "src/nn/layers.h"

namespace rnnasip::nn {
namespace {

float apply_act(ActKind act, float v) {
  switch (act) {
    case ActKind::kNone: return v;
    case ActKind::kReLU: return v > 0 ? v : 0.0f;
    case ActKind::kTanh: return std::tanh(v);
    case ActKind::kSigmoid: return 1.0f / (1.0f + std::exp(-v));
  }
  RNNASIP_CHECK(false);
}

VectorF matvec(const MatrixF& w, const VectorF& x, const VectorF& b) {
  RNNASIP_CHECK(w.cols == static_cast<int>(x.size()));
  RNNASIP_CHECK(w.rows == static_cast<int>(b.size()));
  VectorF out(b);
  for (int r = 0; r < w.rows; ++r) {
    float acc = b[r];
    for (int c = 0; c < w.cols; ++c) acc += w.at(r, c) * x[c];
    out[r] = acc;
  }
  return out;
}

}  // namespace

VectorF fc_forward(const FcParamsF& p, const VectorF& x) {
  VectorF out = matvec(p.w, x, p.b);
  for (float& v : out) v = apply_act(p.act, v);
  return out;
}

VectorF lstm_step(const LstmParamsF& p, const VectorF& x, LstmStateF& state) {
  RNNASIP_CHECK(static_cast<int>(x.size()) == p.input);
  RNNASIP_CHECK(static_cast<int>(state.h.size()) == p.hidden);
  RNNASIP_CHECK(static_cast<int>(state.c.size()) == p.hidden);
  auto gate = [&](const MatrixF& w, const MatrixF& u, const VectorF& b, bool use_tanh) {
    VectorF g(p.hidden);
    for (int r = 0; r < p.hidden; ++r) {
      float acc = b[r];
      for (int c = 0; c < p.input; ++c) acc += w.at(r, c) * x[c];
      for (int c = 0; c < p.hidden; ++c) acc += u.at(r, c) * state.h[c];
      g[r] = use_tanh ? std::tanh(acc) : 1.0f / (1.0f + std::exp(-acc));
    }
    return g;
  };
  const VectorF i = gate(p.wi, p.ui, p.bi, false);
  const VectorF f = gate(p.wf, p.uf, p.bf, false);
  const VectorF o = gate(p.wo, p.uo, p.bo, false);
  const VectorF g = gate(p.wc, p.uc, p.bc, true);
  for (int r = 0; r < p.hidden; ++r) {
    state.c[r] = f[r] * state.c[r] + i[r] * g[r];
    state.h[r] = o[r] * std::tanh(state.c[r]);
  }
  return state.h;
}

VectorF gru_step(const GruParamsF& p, const VectorF& x, GruStateF& state) {
  RNNASIP_CHECK(static_cast<int>(x.size()) == p.input);
  RNNASIP_CHECK(static_cast<int>(state.h.size()) == p.hidden);
  auto gate = [&](const MatrixF& w, const MatrixF& u, const VectorF& b,
                  const VectorF& hvec, bool use_tanh) {
    VectorF g(static_cast<size_t>(p.hidden));
    for (int r = 0; r < p.hidden; ++r) {
      float acc = b[r];
      for (int c = 0; c < p.input; ++c) acc += w.at(r, c) * x[c];
      for (int c = 0; c < p.hidden; ++c) acc += u.at(r, c) * hvec[c];
      g[r] = use_tanh ? std::tanh(acc) : 1.0f / (1.0f + std::exp(-acc));
    }
    return g;
  };
  const VectorF r = gate(p.wr, p.ur, p.br, state.h, false);
  const VectorF z = gate(p.wz, p.uz, p.bz, state.h, false);
  VectorF rh(static_cast<size_t>(p.hidden));
  for (int i = 0; i < p.hidden; ++i) rh[i] = r[i] * state.h[i];
  const VectorF n = gate(p.wn, p.un, p.bn, rh, true);
  for (int i = 0; i < p.hidden; ++i) {
    state.h[i] = z[i] * state.h[i] + (1.0f - z[i]) * n[i];
  }
  return state.h;
}

int conv_out_dim(int in, int k, int stride, int pad) {
  RNNASIP_CHECK(stride > 0);
  return (in + 2 * pad - k) / stride + 1;
}

Tensor3F maxpool_forward(const MaxPoolParams& p, const Tensor3F& in) {
  const int oh = conv_out_dim(in.h, p.k, p.stride, 0);
  const int ow = conv_out_dim(in.w, p.k, p.stride, 0);
  Tensor3F out(in.ch, oh, ow);
  for (int c = 0; c < in.ch; ++c) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        float m = in.at(c, oy * p.stride, ox * p.stride);
        for (int ky = 0; ky < p.k; ++ky) {
          for (int kx = 0; kx < p.k; ++kx) {
            m = std::max(m, in.at(c, oy * p.stride + ky, ox * p.stride + kx));
          }
        }
        out.at(c, oy, ox) = m;
      }
    }
  }
  return out;
}

Tensor3F avgpool_forward(const AvgPoolParams& p, const Tensor3F& in) {
  const int oh = conv_out_dim(in.h, p.k, p.stride, 0);
  const int ow = conv_out_dim(in.w, p.k, p.stride, 0);
  Tensor3F out(in.ch, oh, ow);
  const float inv = 1.0f / static_cast<float>(p.k * p.k);
  for (int c = 0; c < in.ch; ++c) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        float s = 0;
        for (int ky = 0; ky < p.k; ++ky) {
          for (int kx = 0; kx < p.k; ++kx) {
            s += in.at(c, oy * p.stride + ky, ox * p.stride + kx);
          }
        }
        out.at(c, oy, ox) = s * inv;
      }
    }
  }
  return out;
}

Tensor3F conv2d_forward(const ConvParamsF& p, const Tensor3F& in) {
  RNNASIP_CHECK(in.ch == p.in_ch);
  const int oh = conv_out_dim(in.h, p.kh, p.stride, p.pad);
  const int ow = conv_out_dim(in.w, p.kw, p.stride, p.pad);
  Tensor3F out(p.out_ch, oh, ow);
  for (int oc = 0; oc < p.out_ch; ++oc) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        float acc = p.b[oc];
        for (int ic = 0; ic < p.in_ch; ++ic) {
          for (int ky = 0; ky < p.kh; ++ky) {
            for (int kx = 0; kx < p.kw; ++kx) {
              const int iy = oy * p.stride + ky - p.pad;
              const int ix = ox * p.stride + kx - p.pad;
              if (iy < 0 || iy >= in.h || ix < 0 || ix >= in.w) continue;
              acc += p.weight(oc, ic, ky, kx) * in.at(ic, iy, ix);
            }
          }
        }
        out.at(oc, oy, ox) = apply_act(p.act, acc);
      }
    }
  }
  return out;
}

}  // namespace rnnasip::nn
