#include "src/nn/quantize.h"

namespace rnnasip::nn {

VectorQ quantize_vector(const VectorF& v, QFormat fmt) {
  VectorQ out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = static_cast<int16_t>(quantize(v[i], fmt));
  return out;
}

VectorF dequantize_vector(const VectorQ& v, QFormat fmt) {
  VectorF out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = static_cast<float>(dequantize(v[i], fmt));
  return out;
}

MatrixQ quantize_matrix(const MatrixF& m, QFormat fmt) {
  MatrixQ out(m.rows, m.cols);
  for (size_t i = 0; i < m.data.size(); ++i)
    out.data[i] = static_cast<int16_t>(quantize(m.data[i], fmt));
  return out;
}

MatrixF dequantize_matrix(const MatrixQ& m, QFormat fmt) {
  MatrixF out(m.rows, m.cols);
  for (size_t i = 0; i < m.data.size(); ++i)
    out.data[i] = static_cast<float>(dequantize(m.data[i], fmt));
  return out;
}

Tensor3Q quantize_tensor(const Tensor3F& t, QFormat fmt) {
  Tensor3Q out(t.ch, t.h, t.w);
  for (size_t i = 0; i < t.data.size(); ++i)
    out.data[i] = static_cast<int16_t>(quantize(t.data[i], fmt));
  return out;
}

Tensor3F dequantize_tensor(const Tensor3Q& t, QFormat fmt) {
  Tensor3F out(t.ch, t.h, t.w);
  for (size_t i = 0; i < t.data.size(); ++i)
    out.data[i] = static_cast<float>(dequantize(t.data[i], fmt));
  return out;
}

}  // namespace rnnasip::nn
