// Float <-> Q3.12 conversion for whole containers.
//
// The paper runs all networks in 16-bit Q3.12 *without* retraining
// (Sec. III-A); quantization here is plain round-to-nearest with saturation,
// matching that flow.
#pragma once

#include "src/common/fixed_point.h"
#include "src/nn/tensor.h"

namespace rnnasip::nn {

VectorQ quantize_vector(const VectorF& v, QFormat fmt = q3_12);
VectorF dequantize_vector(const VectorQ& v, QFormat fmt = q3_12);
MatrixQ quantize_matrix(const MatrixF& m, QFormat fmt = q3_12);
MatrixF dequantize_matrix(const MatrixQ& m, QFormat fmt = q3_12);
Tensor3Q quantize_tensor(const Tensor3F& t, QFormat fmt = q3_12);
Tensor3F dequantize_tensor(const Tensor3Q& t, QFormat fmt = q3_12);

}  // namespace rnnasip::nn
