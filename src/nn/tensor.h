// Minimal dense containers for the NN substrate.
//
// The RRM workloads are small (at most a few hundred neurons per layer), so
// the containers are simple row-major matrices/vectors over float (reference
// path) and int16 Q3.12 raw values (device path). No expression templates —
// clarity over cleverness, per the repository's scope.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace rnnasip::nn {

template <typename T>
struct Matrix {
  int rows = 0;
  int cols = 0;
  std::vector<T> data;

  Matrix() = default;
  Matrix(int r, int c) : rows(r), cols(c), data(static_cast<size_t>(r) * c, T{}) {
    RNNASIP_CHECK(r >= 0 && c >= 0);
  }

  T& at(int r, int c) {
    RNNASIP_CHECK(r >= 0 && r < rows && c >= 0 && c < cols);
    return data[static_cast<size_t>(r) * cols + c];
  }
  const T& at(int r, int c) const {
    RNNASIP_CHECK(r >= 0 && r < rows && c >= 0 && c < cols);
    return data[static_cast<size_t>(r) * cols + c];
  }
};

using MatrixF = Matrix<float>;
using MatrixQ = Matrix<int16_t>;  ///< raw Q3.12
using VectorF = std::vector<float>;
using VectorQ = std::vector<int16_t>;  ///< raw Q3.12

/// 3-D tensor in CHW layout for the CNN path.
template <typename T>
struct Tensor3 {
  int ch = 0, h = 0, w = 0;
  std::vector<T> data;

  Tensor3() = default;
  Tensor3(int c_, int h_, int w_)
      : ch(c_), h(h_), w(w_), data(static_cast<size_t>(c_) * h_ * w_, T{}) {
    RNNASIP_CHECK(c_ >= 0 && h_ >= 0 && w_ >= 0);
  }

  T& at(int c_, int y, int x) {
    RNNASIP_CHECK(c_ >= 0 && c_ < ch && y >= 0 && y < h && x >= 0 && x < w);
    return data[(static_cast<size_t>(c_) * h + y) * w + x];
  }
  const T& at(int c_, int y, int x) const {
    RNNASIP_CHECK(c_ >= 0 && c_ < ch && y >= 0 && y < h && x >= 0 && x < w);
    return data[(static_cast<size_t>(c_) * h + y) * w + x];
  }
};

using Tensor3F = Tensor3<float>;
using Tensor3Q = Tensor3<int16_t>;

}  // namespace rnnasip::nn
