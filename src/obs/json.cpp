#include "src/obs/json.h"

#include <cmath>
#include <cstdio>
#include <string_view>

#include "src/common/check.h"

namespace rnnasip::obs {

Json& Json::push(Json v) {
  RNNASIP_CHECK_MSG(type_ == Type::kArray, "push() on non-array Json");
  arr_.push_back(std::move(v));
  return *this;
}

Json& Json::set(std::string key, Json v) {
  RNNASIP_CHECK_MSG(type_ == Type::kObject, "set() on non-object Json");
  for (auto& [k, val] : obj_) {
    if (k == key) {
      val = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
  return *this;
}

size_t Json::size() const {
  switch (type_) {
    case Type::kArray: return arr_.size();
    case Type::kObject: return obj_.size();
    default: return 0;
  }
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_indent(std::string& out, int indent) {
  out += '\n';
  out.append(static_cast<size_t>(indent) * 2, ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, bool pretty) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Type::kDouble: {
      if (!std::isfinite(dbl_)) {
        out += "null";  // JSON has no NaN/Inf
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.12g", dbl_);
      out += buf;
      // Keep doubles distinguishable from ints on re-read.
      if (std::string_view(buf).find_first_of(".eE") == std::string_view::npos) {
        out += ".0";
      }
      break;
    }
    case Type::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        if (pretty) append_indent(out, indent + 1);
        arr_[i].write(out, indent + 1, pretty);
      }
      if (pretty) append_indent(out, indent);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        if (pretty) append_indent(out, indent + 1);
        out += '"';
        out += escape(obj_[i].first);
        out += pretty ? "\": " : "\":";
        obj_[i].second.write(out, indent + 1, pretty);
      }
      if (pretty) append_indent(out, indent);
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0, /*pretty=*/false);
  return out;
}

std::string Json::dump_pretty() const {
  std::string out;
  write(out, 0, /*pretty=*/true);
  out += '\n';
  return out;
}

}  // namespace rnnasip::obs
