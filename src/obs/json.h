// Minimal deterministic JSON value + serializer for the observability
// exporters and bench --json output.
//
// Not a general-purpose JSON library: no parsing, objects preserve
// *insertion* order (we want byte-stable output, not sorted keys), and
// doubles render via a fixed "%.12g" format so two identical runs produce
// identical bytes. That determinism is load-bearing — bench_table2 --json
// is required to be byte-identical across same-seed runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rnnasip::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool v) : type_(Type::kBool), bool_(v) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(unsigned v) : type_(Type::kInt), int_(v) {}
  Json(int64_t v) : type_(Type::kInt), int_(v) {}
  Json(uint64_t v) : type_(Type::kInt), int_(static_cast<int64_t>(v)) {}
  Json(double v) : type_(Type::kDouble), dbl_(v) {}
  Json(const char* v) : type_(Type::kString), str_(v) {}
  Json(std::string v) : type_(Type::kString), str_(std::move(v)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }

  /// Array append. The value must be an array.
  Json& push(Json v);
  /// Object insert/overwrite, preserving first-insertion order.
  Json& set(std::string key, Json v);

  size_t size() const;

  /// Compact single-line serialization (deterministic).
  std::string dump() const;
  /// Pretty serialization with 2-space indent (deterministic).
  std::string dump_pretty() const;

  static std::string escape(const std::string& s);

 private:
  void write(std::string& out, int indent, bool pretty) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace rnnasip::obs
