#include "src/obs/metrics.h"

#include <bit>
#include <cmath>

#include "src/common/check.h"

namespace rnnasip::obs {

size_t Histogram::bucket_of(uint64_t v) {
  if (v < 8) return static_cast<size_t>(v);
  // Octave o = floor(log2 v) >= 3; the top three bits below the leading
  // one pick the linear sub-bucket, so boundaries are exact powers of two
  // times 8..15 / 8.
  const int o = std::bit_width(v) - 1;
  const uint64_t sub = (v >> (o - 3)) & 7u;
  return 8 + static_cast<size_t>(o - 3) * 8 + static_cast<size_t>(sub);
}

uint64_t Histogram::bucket_lower(size_t b) {
  RNNASIP_CHECK(b < kBucketCount);
  if (b < 8) return b;
  const size_t o = (b - 8) / 8;
  const uint64_t sub = (b - 8) % 8;
  return (8u + sub) << o;
}

uint64_t Histogram::bucket_upper(size_t b) {
  RNNASIP_CHECK(b < kBucketCount);
  if (b < 8) return b + 1;
  if (b == kBucketCount - 1) return ~uint64_t{0};  // top bucket: saturate
  const size_t o = (b - 8) / 8;
  return bucket_lower(b) + (uint64_t{1} << o);
}

void Histogram::record(uint64_t v) {
  ++buckets_[bucket_of(v)];
  ++count_;
  sum_ += v;
  if (count_ == 1 || v < min_) min_ = v;
  if (v > max_) max_ = v;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

int Histogram::quantile_bucket(double p) const {
  if (count_ == 0) return -1;
  // Nearest rank, the same rule ServeResult::latency_percentile uses: the
  // histogram quantile's bucket is exactly the bucket of the exact
  // nearest-rank sample.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t cum = 0;
  for (size_t b = 0; b < kBucketCount; ++b) {
    cum += buckets_[b];
    if (cum >= rank) return static_cast<int>(b);
  }
  return static_cast<int>(kBucketCount) - 1;  // unreachable: cum == count_
}

uint64_t Histogram::quantile(double p) const {
  const int b = quantile_bucket(p);
  return b < 0 ? 0 : bucket_lower(static_cast<size_t>(b));
}

Json Histogram::to_json() const {
  Json j = Json::object();
  j.set("count", count_);
  j.set("sum", sum_);
  j.set("min", min());
  j.set("max", max_);
  j.set("mean", mean());
  j.set("p50", quantile(50));
  j.set("p95", quantile(95));
  j.set("p99", quantile(99));
  Json buckets = Json::array();
  for (size_t b = 0; b < kBucketCount; ++b) {
    if (buckets_[b] == 0) continue;
    Json pair = Json::array();
    pair.push(bucket_lower(b));
    pair.push(buckets_[b]);
    buckets.push(std::move(pair));
  }
  j.set("buckets", std::move(buckets));
  return j;
}

namespace {

template <typename T>
T& named_slot(std::vector<std::pair<std::string, T>>& v, const std::string& name) {
  for (auto& [n, slot] : v) {
    if (n == name) return slot;
  }
  v.emplace_back(name, T{});
  return v.back().second;
}

template <typename T>
bool has_slot(const std::vector<std::pair<std::string, T>>& v,
              const std::string& name) {
  for (const auto& [n, slot] : v) {
    if (n == name) return true;
  }
  return false;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  return named_slot(counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return named_slot(gauges_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return named_slot(histograms_, name);
}

bool MetricsRegistry::has_counter(const std::string& name) const {
  return has_slot(counters_, name);
}

bool MetricsRegistry::has_gauge(const std::string& name) const {
  return has_slot(gauges_, name);
}

bool MetricsRegistry::has_histogram(const std::string& name) const {
  return has_slot(histograms_, name);
}

int64_t MetricsRegistry::gauge_value(const std::string& name, int64_t fallback) const {
  for (const auto& [n, g] : gauges_) {
    if (n == name) return g.value();
  }
  return fallback;
}

uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  for (const auto& [n, c] : counters_) {
    if (n == name) return c.value();
  }
  return 0;
}

Json MetricsRegistry::to_json() const {
  Json j = Json::object();
  if (!counters_.empty()) {
    Json c = Json::object();
    for (const auto& [name, m] : counters_) c.set(name, m.value());
    j.set("counters", std::move(c));
  }
  if (!gauges_.empty()) {
    Json g = Json::object();
    for (const auto& [name, m] : gauges_) g.set(name, m.value());
    j.set("gauges", std::move(g));
  }
  if (!histograms_.empty()) {
    Json h = Json::object();
    for (const auto& [name, m] : histograms_) h.set(name, m.to_json());
    j.set("histograms", std::move(h));
  }
  return j;
}

}  // namespace rnnasip::obs
