// Metrics registry for the serving telemetry layer: counters, gauges, and
// log-bucketed histograms with *deterministic* bucket boundaries, replacing
// ad-hoc stat fields with named, snapshot-able instruments.
//
// Design constraints (the same discipline as the rest of src/obs):
//   - byte-deterministic: a snapshot of the same run is the same JSON,
//     byte for byte — metrics are insertion-ordered, bucket boundaries are
//     pure integer math, no host time, no floating-point accumulation;
//   - bounded memory at million-request scale: a histogram is a fixed
//     array of 496 buckets regardless of how many values it absorbs, so
//     recording is O(1) and a snapshot is O(nonzero buckets).
//
// Histogram bucketing (log-linear, HdrHistogram-style):
//   values 0..7 get exact unit buckets; from 8 up, each power-of-two
//   octave splits into 8 linear sub-buckets, so a bucket's relative width
//   is at most 1/8 (12.5%). Quantiles are nearest-rank over the bucketized
//   distribution and return the *lower boundary* of the bucket holding the
//   rank — by construction the same bucket that holds the exact nearest-
//   rank sample, which bounds the histogram-vs-exact quantile error to one
//   bucket's width (asserted against sorted-latency percentiles in the
//   serving benches).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/json.h"

namespace rnnasip::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(int64_t v) { value_ = v; }
  void add(int64_t delta) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Log-bucketed histogram of non-negative 64-bit values.
class Histogram {
 public:
  /// 8 unit buckets + 8 sub-buckets for each of the 62 octaves [2^3, 2^64).
  static constexpr size_t kBucketCount = 8 + 8 * 61;

  /// Bucket index holding `v`: v for v < 8, else 8*(octave-3) + sub-bucket
  /// where octave = floor(log2 v) and the octave splits into 8 linear
  /// sub-buckets. Pure integer math — deterministic everywhere.
  static size_t bucket_of(uint64_t v);
  /// Inclusive lower boundary of bucket `b`.
  static uint64_t bucket_lower(size_t b);
  /// Exclusive upper boundary of bucket `b`.
  static uint64_t bucket_upper(size_t b);

  void record(uint64_t v);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  /// Mean as a double (reported, never accumulated).
  double mean() const;

  /// Nearest-rank quantile (p in [0, 100]) over the bucketized
  /// distribution; returns the lower boundary of the bucket containing the
  /// rank, 0 when empty. The bucket is exactly bucket_of(exact nearest-
  /// rank sample), so |returned - exact| < one bucket width.
  uint64_t quantile(double p) const;
  /// Bucket index the nearest-rank quantile falls in (-1 when empty).
  int quantile_bucket(double p) const;

  /// {count, sum, min, max, mean, p50, p95, p99, buckets: [[lower, n]...]}
  /// — sparse, insertion-independent, byte-deterministic.
  Json to_json() const;

 private:
  std::vector<uint64_t> buckets_ = std::vector<uint64_t>(kBucketCount, 0);
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

/// Named instruments, insertion-ordered (first touch names the slot — the
/// JSON snapshot is byte-stable across identical runs). Lookup is linear;
/// callers cache the reference on the hot path.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  bool has_counter(const std::string& name) const;
  bool has_gauge(const std::string& name) const;
  bool has_histogram(const std::string& name) const;
  /// Read a gauge without creating the slot (controllers evaluate against a
  /// registry they do not own); `fallback` when the gauge was never set.
  int64_t gauge_value(const std::string& name, int64_t fallback = 0) const;
  /// Read a counter without creating the slot; 0 when absent.
  uint64_t counter_value(const std::string& name) const;

  /// {counters: {...}, gauges: {...}, histograms: {...}} — each section
  /// insertion-ordered, omitted when empty.
  Json to_json() const;

 private:
  std::vector<std::pair<std::string, Counter>> counters_;
  std::vector<std::pair<std::string, Gauge>> gauges_;
  std::vector<std::pair<std::string, Histogram>> histograms_;
};

}  // namespace rnnasip::obs
