#include "src/obs/profile.h"

#include <algorithm>

#include "src/common/check.h"

namespace rnnasip::obs {

void RegionCounters::merge(const RegionCounters& o) {
  cycles += o.cycles;
  instrs += o.instrs;
  macs += o.macs;
  for (size_t i = 0; i < stalls.size(); ++i) stalls[i] += o.stalls[i];
}

RegionProfiler::RegionProfiler(const RegionMap* map, uint32_t text_base, Options opt)
    : map_(map), base_(text_base), opt_(opt), counters_(map ? map->size() : 0) {
  RNNASIP_CHECK(map_ != nullptr);
}

void RegionProfiler::attach(iss::Core& core) {
  core.set_trace([this](uint32_t pc, const isa::Instr& in, uint64_t cycles) {
    on_instr(pc, in, cycles);
  });
  core.set_stall_hook(
      [this](uint32_t pc, iss::StallCause cause, uint64_t cycles, bool post_hoc) {
        on_stall(pc, cause, cycles, post_hoc);
      });
}

void RegionProfiler::on_instr(uint32_t pc, const isa::Instr& in, uint64_t cycles) {
  const int r = map_->innermost_at_pc(pc, base_);
  RegionCounters& c = r >= 0 ? counters_[static_cast<size_t>(r)] : unattributed_;
  c.cycles += cycles;
  c.instrs += 1;
  c.macs += iss::mac_count(in.op);
  if (opt_.timeline) {
    // Region entry happens at the clock *before* this instruction's cycles.
    if (open_.empty() || open_.back().first != r) switch_to(r);
  }
  clock_ += cycles;
}

void RegionProfiler::on_stall(uint32_t pc, iss::StallCause cause, uint64_t cycles,
                              bool post_hoc) {
  const int r = map_->innermost_at_pc(pc, base_);
  RegionCounters& c = r >= 0 ? counters_[static_cast<size_t>(r)] : unattributed_;
  c.stalls[static_cast<size_t>(cause)] += cycles;
  // Post-hoc cycles are in no traced instruction cost: move the clock and
  // the region's cycle counter here (in-cost penalties already arrived via
  // on_instr).
  if (post_hoc) {
    c.cycles += cycles;
    clock_ += cycles;
  }
  cum_stalls_[static_cast<size_t>(cause)] += cycles;
  maybe_sample(false);
}

void RegionProfiler::push_event(int region, uint64_t begin, uint64_t end) {
  if (events_.size() >= opt_.max_events) {
    truncated_ = true;
    return;
  }
  events_.push_back(TimelineEvent{region, begin, end});
}

void RegionProfiler::switch_to(int region) {
  // Ancestor chain of the new region, root-first.
  std::vector<int> chain;
  for (int r = region; r >= 0; r = map_->defs()[static_cast<size_t>(r)].parent) {
    chain.push_back(r);
  }
  std::reverse(chain.begin(), chain.end());
  // Keep the common prefix open; close the rest (deepest first).
  size_t common = 0;
  while (common < chain.size() && common < open_.size() &&
         open_[common].first == chain[common]) {
    ++common;
  }
  while (open_.size() > common) {
    const auto [r, begin] = open_.back();
    open_.pop_back();
    push_event(r, begin, clock_);
  }
  for (size_t i = common; i < chain.size(); ++i) {
    open_.emplace_back(chain[i], clock_);
  }
}

void RegionProfiler::maybe_sample(bool force) {
  if (!opt_.timeline) return;
  if (have_sample_ && !force && clock_ - last_sample_cycle_ < opt_.sample_interval) return;
  if (have_sample_ && !samples_.empty() && samples_.back().cycle == clock_) {
    samples_.back().cum = cum_stalls_;
    return;
  }
  StallSample s;
  s.cycle = clock_;
  s.cum = cum_stalls_;
  samples_.push_back(s);
  last_sample_cycle_ = clock_;
  have_sample_ = true;
}

void RegionProfiler::finish() {
  if (opt_.timeline) {
    switch_to(-1);
    maybe_sample(true);
  }
}

RegionCounters RegionProfiler::totals() const {
  RegionCounters t = unattributed_;
  for (const auto& c : counters_) t.merge(c);
  return t;
}

std::vector<RegionCounters> NetObservation::inclusive() const {
  std::vector<RegionCounters> inc = counters;
  // Children always carry larger indices than their parents (opening
  // order), so a reverse sweep folds each subtree upward in one pass.
  for (size_t i = inc.size(); i-- > 0;) {
    const int parent = map.defs()[i].parent;
    if (parent >= 0) inc[static_cast<size_t>(parent)].merge(inc[i]);
  }
  return inc;
}

}  // namespace rnnasip::obs
