// Runtime side of the observability layer: attribute every retired
// instruction, every MAC, and every typed stall cycle to the innermost
// emitted region containing its PC (see region.h), and optionally record a
// properly nested timeline of region entries/exits on the core's cycle
// clock — the raw material for the Perfetto export (trace_export.h).
//
// The cycle-accounting identity the layer enforces:
//
//   sum(region self cycles) + unattributed == ExecStats::total_cycles()
//
// holds for every run because both sides are fed from the same two core
// hooks (trace + stall).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/iss/core.h"
#include "src/obs/region.h"

namespace rnnasip::obs {

struct RegionCounters {
  uint64_t cycles = 0;  ///< self cycles (this region minus nested regions)
  uint64_t instrs = 0;
  uint64_t macs = 0;
  std::array<uint64_t, iss::kStallCauseCount> stalls{};

  void merge(const RegionCounters& o);
};

/// One closed span of the innermost-region timeline, in core cycles.
/// Spans of nested regions always contain their children's spans.
struct TimelineEvent {
  int region = -1;
  uint64_t begin = 0;
  uint64_t end = 0;
};

/// Periodic cumulative stall-counter sample for the Perfetto counter track.
struct StallSample {
  uint64_t cycle = 0;
  std::array<uint64_t, iss::kStallCauseCount> cum{};
};

class RegionProfiler {
 public:
  struct Options {
    bool timeline = false;         ///< record TimelineEvents (needed for Perfetto)
    size_t max_events = 1 << 18;   ///< cap; overflow sets timeline_truncated()
    uint64_t sample_interval = 4096;  ///< min cycles between stall samples
  };

  /// `map` and the program's `text_base` must outlive the profiler.
  RegionProfiler(const RegionMap* map, uint32_t text_base, Options opt);
  RegionProfiler(const RegionMap* map, uint32_t text_base)
      : RegionProfiler(map, text_base, Options()) {}

  /// Install trace + stall hooks on `core` (displacing prior hooks).
  void attach(iss::Core& core);

  /// Close any open timeline spans and flush the final stall sample. Call
  /// after the last run() before reading the timeline.
  void finish();

  /// Per-region self counters, indexed like RegionMap::defs().
  const std::vector<RegionCounters>& counters() const { return counters_; }
  /// Retired work at PCs outside every region (empty map, or stray text).
  const RegionCounters& unattributed() const { return unattributed_; }
  /// Sum of all self counters + unattributed; equals the core's ExecStats
  /// totals accumulated while attached.
  RegionCounters totals() const;

  uint64_t clock() const { return clock_; }
  const std::vector<TimelineEvent>& timeline() const { return events_; }
  bool timeline_truncated() const { return truncated_; }
  const std::vector<StallSample>& stall_samples() const { return samples_; }

 private:
  void on_instr(uint32_t pc, const isa::Instr& in, uint64_t cycles);
  void on_stall(uint32_t pc, iss::StallCause cause, uint64_t cycles, bool post_hoc);
  void switch_to(int region);
  void push_event(int region, uint64_t begin, uint64_t end);
  void maybe_sample(bool force);

  const RegionMap* map_;
  uint32_t base_;
  Options opt_;
  std::vector<RegionCounters> counters_;
  RegionCounters unattributed_;
  uint64_t clock_ = 0;

  // Timeline state: the stack of currently open regions (root-first) and
  // each one's entry cycle.
  std::vector<std::pair<int, uint64_t>> open_;
  std::vector<TimelineEvent> events_;
  bool truncated_ = false;
  std::vector<StallSample> samples_;
  std::array<uint64_t, iss::kStallCauseCount> cum_stalls_{};
  uint64_t last_sample_cycle_ = 0;
  bool have_sample_ = false;
};

/// Everything observed about one network's runs: the static region tree
/// plus per-region counters and the (optional) timeline.
struct NetObservation {
  std::string name;
  RegionMap map;
  std::vector<RegionCounters> counters;
  RegionCounters unattributed;
  std::vector<TimelineEvent> timeline;
  std::vector<StallSample> stall_samples;
  bool timeline_truncated = false;
  uint64_t cycles = 0;
  uint64_t instrs = 0;
  uint64_t macs = 0;

  /// Inclusive counters (self + all descendants), indexed like map.defs().
  std::vector<RegionCounters> inclusive() const;
};

}  // namespace rnnasip::obs
