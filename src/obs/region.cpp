#include "src/obs/region.h"

#include "src/common/check.h"

namespace rnnasip::obs {

const char* region_kind_name(RegionKind kind) {
  switch (kind) {
    case RegionKind::kSuite: return "suite";
    case RegionKind::kNetwork: return "network";
    case RegionKind::kLayer: return "layer";
    case RegionKind::kGate: return "gate";
    case RegionKind::kKernel: return "kernel";
    case RegionKind::kOther: return "other";
  }
  return "?";
}

int RegionRecorder::open(std::string name, RegionKind kind, size_t pos) {
  RegionDef def;
  def.name = std::move(name);
  def.kind = kind;
  def.parent = stack_.empty() ? -1 : stack_.back();
  def.depth = static_cast<int>(stack_.size());
  def.begin = pos;
  def.end = pos;  // patched by close()
  const int id = static_cast<int>(defs_.size());
  defs_.push_back(std::move(def));
  stack_.push_back(id);
  return id;
}

void RegionRecorder::close(int id, size_t pos) {
  RNNASIP_CHECK_MSG(!stack_.empty() && stack_.back() == id,
                    "regions must close LIFO (closing " << id << ")");
  stack_.pop_back();
  RNNASIP_CHECK(pos >= defs_[static_cast<size_t>(id)].begin);
  defs_[static_cast<size_t>(id)].end = pos;
}

RegionMap RegionRecorder::finish(size_t program_instrs) {
  RNNASIP_CHECK_MSG(stack_.empty(), "unclosed region at finish()");
  return RegionMap(std::move(defs_), program_instrs);
}

RegionMap::RegionMap(std::vector<RegionDef> defs, size_t program_instrs)
    : defs_(std::move(defs)), innermost_(program_instrs, -1) {
  // Regions are recorded in opening order, so a child always has a larger
  // index than its parent; painting in order leaves the innermost region in
  // each slot.
  for (size_t r = 0; r < defs_.size(); ++r) {
    const auto& d = defs_[r];
    RNNASIP_CHECK(d.end >= d.begin);
    for (size_t i = d.begin; i < d.end && i < innermost_.size(); ++i) {
      innermost_[i] = static_cast<int32_t>(r);
    }
  }
}

}  // namespace rnnasip::obs
