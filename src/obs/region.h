// Static region model for the observability layer.
//
// Kernel generators annotate the instruction stream they emit with nested,
// named regions (network -> layer -> gate -> kernel). A region is a range
// of instruction indices in the built program; because generated
// instructions are 4 bytes, an index range maps 1:1 to a PC range, and the
// runtime profiler (profile.h) can attribute every retired instruction to
// the innermost region containing its PC in O(1).
//
// Regions are recorded at *emit* time with RAII markers:
//
//   void emit_fc(ProgramBuilder& b, ..., const FcEmitOptions& opt) {
//     obs::Region r(opt.regions, b, "matvec", obs::RegionKind::kKernel);
//     ... emit instructions ...
//   }  // closes at b.position()
//
// A null recorder makes every marker a no-op, so standalone emitter callers
// (tests, micro-benches) pay nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/asm/builder.h"

namespace rnnasip::obs {

enum class RegionKind : uint8_t {
  kSuite = 0,  ///< synthesized root over a whole suite run
  kNetwork,    ///< one network's program
  kLayer,      ///< one layer of the network (fc0, lstm1, ...)
  kGate,       ///< one RNN gate's matvec (gate_i, gate_r, ...)
  kKernel,     ///< one generated kernel (matvec, pointwise, im2col, ...)
  kOther,      ///< glue: buffer copies, sequence cursors, argmax, ...
};

const char* region_kind_name(RegionKind kind);

struct RegionDef {
  std::string name;
  RegionKind kind = RegionKind::kOther;
  int parent = -1;  ///< index into the defs vector; -1 for the root
  int depth = 0;    ///< nesting depth (root = 0)
  size_t begin = 0; ///< first instruction index
  size_t end = 0;   ///< one past the last instruction index
};

/// Immutable, queryable region set for one built program.
class RegionMap {
 public:
  RegionMap() = default;
  /// `program_instrs` bounds the innermost-region lookup table.
  RegionMap(std::vector<RegionDef> defs, size_t program_instrs);

  const std::vector<RegionDef>& defs() const { return defs_; }
  size_t size() const { return defs_.size(); }
  bool empty() const { return defs_.empty(); }
  size_t program_instrs() const { return innermost_.size(); }

  /// Innermost region containing instruction `idx`, or -1.
  int innermost_at(size_t idx) const {
    return idx < innermost_.size() ? innermost_[idx] : -1;
  }
  /// Innermost region containing `pc` for a program loaded at `base`.
  int innermost_at_pc(uint32_t pc, uint32_t base) const {
    if (pc < base) return -1;
    return innermost_at(static_cast<size_t>((pc - base) / 4));
  }

 private:
  std::vector<RegionDef> defs_;
  std::vector<int32_t> innermost_;  ///< per instruction index
};

/// Collects regions while a program is being emitted. open()/close() must
/// nest (LIFO); the RAII Region marker guarantees this.
class RegionRecorder {
 public:
  int open(std::string name, RegionKind kind, size_t pos);
  void close(int id, size_t pos);

  /// All regions must be closed. Builds the lookup table for a program of
  /// `program_instrs` instructions.
  RegionMap finish(size_t program_instrs);

  bool empty() const { return defs_.empty(); }

 private:
  std::vector<RegionDef> defs_;
  std::vector<int> stack_;
};

/// RAII region marker tied to a ProgramBuilder's emission position.
/// A null recorder turns the marker into a no-op.
class Region {
 public:
  Region(RegionRecorder* rec, const assembler::ProgramBuilder& b, std::string name,
         RegionKind kind)
      : rec_(rec), b_(&b) {
    if (rec_) id_ = rec_->open(std::move(name), kind, b_->position());
  }
  ~Region() {
    if (rec_) rec_->close(id_, b_->position());
  }
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;

 private:
  RegionRecorder* rec_;
  const assembler::ProgramBuilder* b_;
  int id_ = -1;
};

}  // namespace rnnasip::obs
