#include "src/obs/report.h"

#include <sstream>

namespace rnnasip::obs {

namespace {

std::vector<std::string> region_header() {
  std::vector<std::string> h = {"region", "kind", "cycles", "%", "instrs", "MACs", "MAC/cyc"};
  for (size_t s = 0; s < iss::kStallCauseCount; ++s) {
    h.push_back(iss::stall_cause_name(static_cast<iss::StallCause>(s)));
  }
  return h;
}

std::vector<std::string> region_row(const std::string& name, const std::string& kind,
                                    const RegionCounters& c, uint64_t total_cycles) {
  std::vector<std::string> row = {
      name,
      kind,
      fmt_count(c.cycles),
      total_cycles == 0
          ? "0.0"
          : fmt_double(100.0 * static_cast<double>(c.cycles) /
                           static_cast<double>(total_cycles),
                       1),
      fmt_count(c.instrs),
      fmt_count(c.macs),
      c.cycles == 0
          ? "0.00"
          : fmt_double(static_cast<double>(c.macs) / static_cast<double>(c.cycles), 2),
  };
  for (const uint64_t s : c.stalls) row.push_back(fmt_count(s));
  return row;
}

}  // namespace

Table region_table(const NetObservation& obs) {
  Table t(region_header());
  const std::vector<RegionCounters> inc = obs.inclusive();
  const uint64_t total = obs.cycles;
  for (size_t r = 0; r < obs.map.size(); ++r) {
    const RegionDef& d = obs.map.defs()[r];
    const std::string name = std::string(static_cast<size_t>(d.depth) * 2, ' ') + d.name;
    t.add_row(region_row(name, region_kind_name(d.kind), inc[r], total));
  }
  const RegionCounters& u = obs.unattributed;
  if (u.cycles || u.instrs) {
    t.add_row(region_row("(outside)", "-", u, total));
  }
  return t;
}

Table stall_table(const iss::ExecStats& stats) {
  Table t({"component", "cycles", "% of total"});
  const uint64_t total = stats.total_cycles();
  auto pct = [&](uint64_t c) {
    return total == 0
               ? std::string("0.0")
               : fmt_double(100.0 * static_cast<double>(c) / static_cast<double>(total), 1);
  };
  t.add_row({"issue (1/instr)", fmt_count(stats.total_instrs()), pct(stats.total_instrs())});
  for (size_t s = 0; s < iss::kStallCauseCount; ++s) {
    const auto cause = static_cast<iss::StallCause>(s);
    t.add_row({std::string("stall: ") + iss::stall_cause_name(cause),
               fmt_count(stats.stall_cycles(cause)), pct(stats.stall_cycles(cause))});
  }
  t.add_row({"dual-issue saved", "-" + fmt_count(stats.dual_issue_saved()),
             pct(stats.dual_issue_saved())});
  t.add_row({"total", fmt_count(stats.total_cycles()), "100.0"});
  t.add_row({"hw-loop overhead (of issue)", fmt_count(stats.hwloop_overhead_cycles()),
             pct(stats.hwloop_overhead_cycles())});
  t.add_row({"traps (events)", fmt_count(stats.traps()), "-"});
  t.add_row({"watchdogs (events)", fmt_count(stats.watchdogs()), "-"});
  return t;
}

std::string report_markdown(const NetObservation& obs) {
  std::ostringstream os;
  os << "### " << obs.name << "\n\n";
  os << "Total: " << fmt_count(obs.cycles) << " cycles, " << fmt_count(obs.instrs)
     << " instrs, " << fmt_count(obs.macs) << " MACs";
  if (obs.cycles) {
    os << " ("
       << fmt_double(static_cast<double>(obs.macs) / static_cast<double>(obs.cycles), 2)
       << " MAC/cyc)";
  }
  os << "\n\n";
  os << region_table(obs).to_markdown();
  if (obs.timeline_truncated) os << "\n_(timeline truncated at event cap)_\n";
  return os.str();
}

}  // namespace rnnasip::obs
