// Human-readable roll-ups of an observed run: the region tree as an
// indented table (cycles, share, instrs, MACs, MAC utilization, stall
// breakdown per node) and the core-level stall taxonomy. Rendered through
// src/common/table so every report has text, CSV, and markdown forms.
#pragma once

#include <string>

#include "src/common/table.h"
#include "src/iss/stats.h"
#include "src/obs/profile.h"

namespace rnnasip::obs {

/// Region tree of one observed network, inclusive counters, one row per
/// region (indented by depth). Columns: region, kind, cycles, %, instrs,
/// MACs, MAC/cyc, then one column per stall cause. A final "(outside)" row
/// holds unattributed work when present.
Table region_table(const NetObservation& obs);

/// Stall-cause taxonomy of a whole run/suite: one row per cause plus
/// derived rows (hw-loop overhead, dual-issue savings, traps, watchdogs)
/// and the identity check.
Table stall_table(const iss::ExecStats& stats);

/// Markdown report for one observed network: region table + notes.
std::string report_markdown(const NetObservation& obs);

}  // namespace rnnasip::obs
