#include "src/obs/span.h"

#include <algorithm>

#include "src/common/check.h"

namespace rnnasip::obs {

const char* span_phase_name(SpanPhase p) {
  switch (p) {
    case SpanPhase::kWait: return "wait";
    case SpanPhase::kExec: return "exec";
    case SpanPhase::kRetry: return "retry";
    case SpanPhase::kRollback: return "rollback";
    case SpanPhase::kPreempted: return "preempted";
  }
  return "?";
}

const char* span_mark_name(SpanMark m) {
  switch (m) {
    case SpanMark::kArrival: return "arrival";
    case SpanMark::kAdmit: return "admit";
    case SpanMark::kReject: return "reject";
    case SpanMark::kDispatch: return "dispatch";
    case SpanMark::kBoundary: return "boundary";
    case SpanMark::kDetection: return "detection";
    case SpanMark::kRollback: return "rollback";
    case SpanMark::kPreempt: return "preempt";
    case SpanMark::kResume: return "resume";
    case SpanMark::kFault: return "fault";
    case SpanMark::kFailure: return "failure";
    case SpanMark::kDone: return "done";
    case SpanMark::kFailed: return "failed";
  }
  return "?";
}

const char* span_outcome_name(SpanOutcome o) {
  switch (o) {
    case SpanOutcome::kServed: return "served";
    case SpanOutcome::kRejected: return "rejected";
    case SpanOutcome::kFailed: return "failed";
  }
  return "?";
}

SpanCollector::SpanCollector(Options opt) : opt_(opt) {
  RNNASIP_CHECK(opt_.sample_every >= 1);
}

SpanCollector::OpenSpan& SpanCollector::open_span(uint64_t id) {
  for (OpenSpan& s : open_) {
    if (s.id == id) return s;
  }
  RNNASIP_CHECK_MSG(false, "no open span for request " << id);
}

const SpanCollector::OpenSpan* SpanCollector::find_open(uint64_t id) const {
  for (const OpenSpan& s : open_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

bool SpanCollector::open(uint64_t id) const { return find_open(id) != nullptr; }

void SpanCollector::arrive(uint64_t id, const std::string& network, uint64_t cycle) {
  RNNASIP_CHECK_MSG(find_open(id) == nullptr, "span already open for " << id);
  OpenSpan s;
  s.id = id;
  s.network = network;
  s.arrival = cycle;
  s.last_end = cycle;
  s.sampled = (id % opt_.sample_every) == 0;
  if (s.sampled) s.instants.push_back({SpanMark::kArrival, -1, cycle});
  open_.push_back(std::move(s));
  ++opened_;
}

void SpanCollector::phase(uint64_t id, SpanPhase p, int core, uint64_t begin,
                          uint64_t end) {
  OpenSpan& s = open_span(id);
  RNNASIP_CHECK_MSG(begin == s.last_end,
                    "span gap for request " << id << ": phase begins at " << begin
                                            << " but previous ended at "
                                            << s.last_end);
  RNNASIP_CHECK(end >= begin);
  if (end == begin) return;
  s.last_end = end;
  s.phase_cycles[static_cast<size_t>(p)] += end - begin;
  if (s.sampled) s.segments.push_back({p, core, begin, end});
}

void SpanCollector::reclassify(uint64_t id, size_t from_segment, SpanPhase from,
                               SpanPhase to, uint64_t cycles) {
  OpenSpan& s = open_span(id);
  if (from == to || cycles == 0) return;
  uint64_t& src = s.phase_cycles[static_cast<size_t>(from)];
  RNNASIP_CHECK_MSG(src >= cycles, "reclassify moves more cycles than recorded for "
                                       << id << ": " << cycles << " > " << src);
  src -= cycles;
  s.phase_cycles[static_cast<size_t>(to)] += cycles;
  if (!s.sampled) return;
  uint64_t relabeled = 0;
  for (size_t i = from_segment; i < s.segments.size(); ++i) {
    SpanSegment& seg = s.segments[i];
    if (seg.phase != from) continue;
    seg.phase = to;
    relabeled += seg.end - seg.begin;
  }
  RNNASIP_CHECK_MSG(relabeled == cycles,
                    "reclassify tail mismatch for " << id << ": segments hold "
                                                    << relabeled << ", moving "
                                                    << cycles);
}

size_t SpanCollector::segment_count(uint64_t id) const {
  const OpenSpan* s = find_open(id);
  return (s != nullptr && s->sampled) ? s->segments.size() : 0;
}

void SpanCollector::mark(uint64_t id, SpanMark m, int core, uint64_t cycle) {
  OpenSpan& s = open_span(id);
  if (s.sampled) s.instants.push_back({m, core, cycle});
}

void SpanCollector::close(uint64_t id, SpanOutcome outcome, uint64_t cycle) {
  size_t idx = open_.size();
  for (size_t i = 0; i < open_.size(); ++i) {
    if (open_[i].id == id) {
      idx = i;
      break;
    }
  }
  RNNASIP_CHECK_MSG(idx < open_.size(), "no open span for request " << id);
  OpenSpan& s = open_[idx];
  RNNASIP_CHECK_MSG(s.last_end == cycle,
                    "span for request " << id << " closes at " << cycle
                                        << " but last phase ended at " << s.last_end);
  // The enforced span identity: the phase tiling covers [arrival, done]
  // exactly — the serving analogue of the region-accounting identity.
  uint64_t sum = 0;
  for (uint64_t c : s.phase_cycles) sum += c;
  RNNASIP_CHECK_MSG(sum == cycle - s.arrival,
                    "span identity violated for request "
                        << id << ": phases sum to " << sum << " but done-arrival is "
                        << cycle - s.arrival);
  for (size_t p = 0; p < kSpanPhaseCount; ++p) phase_totals_[p] += s.phase_cycles[p];
  ++closed_;
  if (s.sampled) {
    s.instants.push_back(
        {outcome == SpanOutcome::kServed
             ? SpanMark::kDone
             : (outcome == SpanOutcome::kRejected ? SpanMark::kReject
                                                  : SpanMark::kFailed),
         -1, cycle});
    if (tracks_.size() < opt_.max_tracks) {
      RequestSpan t;
      t.id = s.id;
      t.network = std::move(s.network);
      t.arrival = s.arrival;
      t.done = cycle;
      t.outcome = outcome;
      t.segments = std::move(s.segments);
      t.instants = std::move(s.instants);
      std::copy(std::begin(s.phase_cycles), std::end(s.phase_cycles),
                std::begin(t.phase_cycles));
      tracks_.push_back(std::move(t));
    } else {
      truncated_ = true;
    }
  }
  open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(idx));
}

Json request_span_to_json(const RequestSpan& s) {
  Json j = Json::object();
  j.set("id", s.id);
  j.set("network", s.network);
  j.set("arrival", s.arrival);
  j.set("done", s.done);
  j.set("outcome", span_outcome_name(s.outcome));
  Json phases = Json::object();
  for (size_t p = 0; p < kSpanPhaseCount; ++p) {
    if (s.phase_cycles[p] != 0) {
      phases.set(span_phase_name(static_cast<SpanPhase>(p)), s.phase_cycles[p]);
    }
  }
  j.set("phases", std::move(phases));
  Json segs = Json::array();
  for (const SpanSegment& seg : s.segments) {
    Json e = Json::array();
    e.push(span_phase_name(seg.phase));
    e.push(seg.core);
    e.push(seg.begin);
    e.push(seg.end);
    segs.push(std::move(e));
  }
  j.set("segments", std::move(segs));
  Json marks = Json::array();
  for (const SpanInstant& m : s.instants) {
    Json e = Json::array();
    e.push(span_mark_name(m.mark));
    e.push(m.core);
    e.push(m.cycle);
    marks.push(std::move(e));
  }
  j.set("marks", std::move(marks));
  return j;
}

}  // namespace rnnasip::obs
