// Request-scoped spans for the serving telemetry layer.
//
// Every serving request carries a span timeline on the cluster cycle
// clock: arrival -> admit/reject -> queue -> dispatch -> per-segment exec
// -> retry/rollback/preempt/resume -> done. The timeline is a *tiling* of
// [arrival, done] by phase segments — contiguous, gap-free — which gives
// the layer its enforced span identity (the serving analogue of the
// PR 2 cycle-accounting identity):
//
//   done - arrival == wait + exec + retry + rollback + preempted
//
// where wait is off-core time (queueing + retry backoff), exec is on-core
// cycles of work that survived, retry is on-core cycles of whole attempts
// that later failed, rollback is on-core cycles of segments discarded by
// layer-boundary rollback, and preempted is suspended-gap time between a
// victim's segments. SpanCollector enforces contiguity at every append and
// asserts the identity when a request closes — for *every* request, not
// just the sampled ones.
//
// Memory is bounded at million-request scale: per-request accumulators
// live only while the request is in flight; full segment timelines are
// retained only for requests sampled by `sample_every` (and capped by
// `max_tracks`), with explicit truncation markers so dropped detail is
// never silent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/json.h"

namespace rnnasip::obs {

/// What a request was doing over one contiguous cycle interval.
enum class SpanPhase : uint8_t {
  kWait = 0,   ///< off-core: queued or in retry backoff
  kExec,       ///< on-core, work that survived
  kRetry,      ///< on-core, a whole attempt that later failed
  kRollback,   ///< on-core, segment discarded by layer-boundary rollback
  kPreempted,  ///< suspended between segments (victim of EDF preemption)
};
inline constexpr size_t kSpanPhaseCount = 5;
const char* span_phase_name(SpanPhase p);

/// Point events on a request's timeline (state transitions and faults).
enum class SpanMark : uint8_t {
  kArrival = 0,
  kAdmit,      ///< dispatched for the first time
  kReject,     ///< admission control turned it away
  kDispatch,   ///< an attempt started on a core
  kBoundary,   ///< verified layer boundary (segmented execution)
  kDetection,  ///< ABFT fold mismatch flagged
  kRollback,   ///< layer re-execution from a checkpoint
  kPreempt,    ///< suspended at a boundary
  kResume,     ///< resumed from its checkpoint
  kFault,      ///< an injected fault hit this request's execution
  kFailure,    ///< an attempt trapped / was killed
  kDone,
  kFailed,     ///< retry budget exhausted
};
const char* span_mark_name(SpanMark m);

/// One phase interval of a request. Segments of one request tile
/// [arrival, done]: each begins where the previous ended. core is -1 for
/// off-core phases (kWait, kPreempted).
struct SpanSegment {
  SpanPhase phase = SpanPhase::kWait;
  int core = -1;
  uint64_t begin = 0;
  uint64_t end = 0;
};

struct SpanInstant {
  SpanMark mark = SpanMark::kArrival;
  int core = -1;
  uint64_t cycle = 0;
};

/// A request's fate, recorded on its span.
enum class SpanOutcome : uint8_t { kServed = 0, kRejected, kFailed };
const char* span_outcome_name(SpanOutcome o);

/// One retained (sampled) request timeline.
struct RequestSpan {
  uint64_t id = 0;
  std::string network;
  uint64_t arrival = 0;
  uint64_t done = 0;  ///< close cycle (reject/fail included)
  SpanOutcome outcome = SpanOutcome::kServed;
  std::vector<SpanSegment> segments;
  std::vector<SpanInstant> instants;
  uint64_t phase_cycles[kSpanPhaseCount] = {};
};

/// Collects request spans for one serving run. The scheduler drives the
/// lifecycle: arrive() once, any number of phase()/mark() appends (phase
/// intervals must be contiguous from arrival), then exactly one close().
class SpanCollector {
 public:
  struct Options {
    /// Retain the full segment/instant timeline for requests with
    /// id % sample_every == 0 (1 = every request). Identity accounting
    /// always covers every request regardless.
    uint64_t sample_every = 1;
    /// Hard cap on retained timelines; overflow sets tracks_truncated().
    size_t max_tracks = 1 << 14;
  };

  SpanCollector() : SpanCollector(Options{}) {}
  explicit SpanCollector(Options opt);

  void arrive(uint64_t id, const std::string& network, uint64_t cycle);
  /// Append one phase interval [begin, end). Must start where the
  /// request's previous interval ended (arrival for the first); empty
  /// intervals are dropped.
  void phase(uint64_t id, SpanPhase p, int core, uint64_t begin, uint64_t end);
  /// Move `cycles` between phase accumulators after the fact — how a
  /// failed attempt's kExec cycles become kRetry once the attempt's fate
  /// is known. When the span is sampled, segments of phase `from` from
  /// retained-timeline index `from_segment` on are relabeled too, and
  /// their widths must sum to exactly `cycles` (checked).
  void reclassify(uint64_t id, size_t from_segment, SpanPhase from, SpanPhase to,
                  uint64_t cycles);
  /// Retained-timeline segment count (reclassify anchor); 0 if not sampled.
  size_t segment_count(uint64_t id) const;
  void mark(uint64_t id, SpanMark m, int core, uint64_t cycle);

  /// Close the span at `cycle` and assert the span identity:
  ///   cycle - arrival == sum(phase accumulators).
  void close(uint64_t id, SpanOutcome outcome, uint64_t cycle);

  bool open(uint64_t id) const;

  // ---- Post-run queries ----
  const std::vector<RequestSpan>& tracks() const { return tracks_; }
  bool tracks_truncated() const { return truncated_; }
  uint64_t spans_opened() const { return opened_; }
  uint64_t spans_closed() const { return closed_; }
  /// Identity assertions performed (== spans_closed(); exported so the
  /// telemetry JSON records that the invariant was checked, like PR 2's
  /// identity_holds flag).
  uint64_t identity_checks() const { return closed_; }
  /// Cycles per phase summed over every closed request (sampled or not).
  uint64_t phase_total(SpanPhase p) const {
    return phase_totals_[static_cast<size_t>(p)];
  }

 private:
  struct OpenSpan {
    uint64_t id = 0;
    std::string network;
    uint64_t arrival = 0;
    uint64_t last_end = 0;
    uint64_t phase_cycles[kSpanPhaseCount] = {};
    bool sampled = false;
    std::vector<SpanSegment> segments;
    std::vector<SpanInstant> instants;
  };
  OpenSpan& open_span(uint64_t id);
  const OpenSpan* find_open(uint64_t id) const;

  Options opt_;
  std::vector<OpenSpan> open_;  ///< in-flight only — bounded by concurrency
  std::vector<RequestSpan> tracks_;
  bool truncated_ = false;
  uint64_t opened_ = 0;
  uint64_t closed_ = 0;
  uint64_t phase_totals_[kSpanPhaseCount] = {};
};

/// One retained span as JSON: {id, network, arrival, done, outcome,
/// phases: {...}, segments: [[phase, core, begin, end]...],
/// marks: [[mark, core, cycle]...]}.
Json request_span_to_json(const RequestSpan& s);

}  // namespace rnnasip::obs
