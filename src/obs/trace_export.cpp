#include "src/obs/trace_export.h"

#include <string>

namespace rnnasip::obs {

namespace {

Json process_name_event(int pid, const std::string& name) {
  return perfetto_process_name(pid, name);
}

Json duration_event(int pid, const RegionDef& d, const TimelineEvent& e) {
  Json x = Json::object();
  x.set("ph", "X");
  x.set("pid", pid);
  x.set("tid", 1);
  x.set("name", d.name);
  x.set("cat", region_kind_name(d.kind));
  x.set("ts", e.begin);
  x.set("dur", e.end - e.begin);
  return x;
}

Json counter_event(int pid, uint64_t cycle, const StallSample& s) {
  Json c = Json::object();
  c.set("ph", "C");
  c.set("pid", pid);
  c.set("tid", 1);
  c.set("name", "stall cycles (cum)");
  c.set("ts", cycle);
  Json args = Json::object();
  for (size_t i = 0; i < iss::kStallCauseCount; ++i) {
    args.set(iss::stall_cause_name(static_cast<iss::StallCause>(i)), s.cum[i]);
  }
  c.set("args", std::move(args));
  return c;
}

}  // namespace

Json perfetto_trace(const std::vector<const NetObservation*>& nets) {
  Json events = Json::array();
  for (size_t n = 0; n < nets.size(); ++n) {
    const NetObservation& obs = *nets[n];
    const int pid = static_cast<int>(n) + 1;
    events.push(process_name_event(pid, obs.name));
    for (const TimelineEvent& e : obs.timeline) {
      if (e.region < 0) continue;
      events.push(duration_event(pid, obs.map.defs()[static_cast<size_t>(e.region)], e));
    }
    for (const StallSample& s : obs.stall_samples) {
      events.push(counter_event(pid, s.cycle, s));
    }
  }
  Json root = Json::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ns");
  return root;
}

std::string to_perfetto_json(const std::vector<const NetObservation*>& nets) {
  return perfetto_trace(nets).dump();
}

std::string to_perfetto_json(const NetObservation& net) {
  return to_perfetto_json(std::vector<const NetObservation*>{&net});
}

Json perfetto_process_name(int pid, const std::string& name) {
  Json m = Json::object();
  m.set("ph", "M");
  m.set("pid", pid);
  m.set("tid", 1);
  m.set("name", "process_name");
  Json args = Json::object();
  args.set("name", name);
  m.set("args", std::move(args));
  return m;
}

Json perfetto_thread_name(int pid, int tid, const std::string& name) {
  Json m = Json::object();
  m.set("ph", "M");
  m.set("pid", pid);
  m.set("tid", tid);
  m.set("name", "thread_name");
  Json args = Json::object();
  args.set("name", name);
  m.set("args", std::move(args));
  return m;
}

Json perfetto_complete(int pid, int tid, const std::string& name,
                       const std::string& cat, uint64_t ts, uint64_t dur) {
  Json x = Json::object();
  x.set("ph", "X");
  x.set("pid", pid);
  x.set("tid", tid);
  x.set("name", name);
  x.set("cat", cat);
  x.set("ts", ts);
  x.set("dur", dur);
  return x;
}

Json perfetto_instant(int pid, int tid, const std::string& name,
                      const std::string& cat, uint64_t ts) {
  Json i = Json::object();
  i.set("ph", "i");
  i.set("pid", pid);
  i.set("tid", tid);
  i.set("name", name);
  i.set("cat", cat);
  i.set("ts", ts);
  i.set("s", "t");
  return i;
}

namespace {

/// Flow event ("s" start / "t" step / "f" finish), id = request id. The
/// "f" end binds to the *enclosing* slice (bp: "e"), which is how the
/// viewer draws the arrow into the target segment rather than after it.
Json flow_event(const char* ph, int pid, int tid, uint64_t id, uint64_t ts) {
  Json f = Json::object();
  f.set("ph", ph);
  f.set("pid", pid);
  f.set("tid", tid);
  f.set("name", "request");
  f.set("cat", "flow");
  f.set("id", id);
  f.set("ts", ts);
  if (ph[0] == 'f') f.set("bp", "e");
  return f;
}

}  // namespace

Json span_perfetto_events(const std::vector<RequestSpan>& tracks, int cores,
                          int pid) {
  Json events = Json::array();
  events.push(perfetto_thread_name(pid, 0, "scheduler"));
  for (int c = 0; c < cores; ++c) {
    events.push(perfetto_thread_name(pid, c + 1, "core " + std::to_string(c)));
  }
  for (const RequestSpan& t : tracks) {
    const std::string slice = t.network + "#" + std::to_string(t.id);
    // On-core segments become slices on the core's track; wait/preempted
    // gaps are represented by the flow arrows between them.
    std::vector<const SpanSegment*> on_core;
    for (const SpanSegment& s : t.segments) {
      if (s.core < 0) continue;
      events.push(perfetto_complete(pid, s.core + 1, slice,
                                    span_phase_name(s.phase), s.begin,
                                    s.end - s.begin));
      on_core.push_back(&s);
    }
    // Flow arrows stitch the request across retries, rollbacks, and
    // preemption migrations (consecutive segments on one core with no gap
    // need no arrow). Each maximal run of gapped pairs becomes one flow
    // chain: "s" at its first departure, "t" at intermediate hops, "f"
    // into the slice where the request lands back on contiguous ground.
    bool in_flow = false;
    for (size_t i = 0; i + 1 < on_core.size(); ++i) {
      const SpanSegment& a = *on_core[i];
      const SpanSegment& b = *on_core[i + 1];
      if (a.core == b.core && a.end == b.begin) continue;
      events.push(flow_event(in_flow ? "t" : "s", pid, a.core + 1, t.id, a.end));
      in_flow = true;
      if (i + 2 >= on_core.size() ||
          (b.core == on_core[i + 2]->core && b.end == on_core[i + 2]->begin)) {
        events.push(flow_event("f", pid, b.core + 1, t.id, b.begin));
        in_flow = false;
      }
    }
    for (const SpanInstant& m : t.instants) {
      events.push(perfetto_instant(pid, m.core < 0 ? 0 : m.core + 1,
                                   span_mark_name(m.mark), "mark", m.cycle));
    }
  }
  return events;
}

namespace {

void append_stack_line(std::string& out, const std::vector<RegionDef>& defs,
                       int region, const std::string& root, uint64_t cycles) {
  if (cycles == 0) return;
  // Build the path root-first by walking the parent chain.
  std::vector<const std::string*> path;
  for (int r = region; r >= 0; r = defs[static_cast<size_t>(r)].parent) {
    path.push_back(&defs[static_cast<size_t>(r)].name);
  }
  out += root;
  for (size_t i = path.size(); i-- > 0;) {
    out += ';';
    out += *path[i];
  }
  out += ' ';
  out += std::to_string(cycles);
  out += '\n';
}

}  // namespace

std::string to_collapsed_stacks(const NetObservation& obs) {
  std::string out;
  for (size_t i = 0; i < obs.counters.size(); ++i) {
    append_stack_line(out, obs.map.defs(), static_cast<int>(i), obs.name,
                      obs.counters[i].cycles);
  }
  if (obs.unattributed.cycles != 0) {
    out += obs.name;
    out += ";(outside) ";
    out += std::to_string(obs.unattributed.cycles);
    out += '\n';
  }
  return out;
}

std::string to_collapsed_stacks(const std::vector<const NetObservation*>& nets) {
  std::string out;
  for (const NetObservation* n : nets) out += to_collapsed_stacks(*n);
  return out;
}

Json regions_to_json(const NetObservation& obs) {
  Json j = Json::object();
  j.set("network", obs.name);
  j.set("cycles", obs.cycles);
  j.set("unattributed_cycles", obs.unattributed.cycles);
  Json regions = Json::array();
  const auto& defs = obs.map.defs();
  for (size_t i = 0; i < obs.counters.size(); ++i) {
    const RegionCounters& c = obs.counters[i];
    if (c.cycles == 0 && c.instrs == 0) continue;
    std::vector<const std::string*> path;
    for (int r = static_cast<int>(i); r >= 0; r = defs[static_cast<size_t>(r)].parent) {
      path.push_back(&defs[static_cast<size_t>(r)].name);
    }
    std::string key;
    for (size_t p = path.size(); p-- > 0;) {
      if (!key.empty()) key += ';';
      key += *path[p];
    }
    Json e = Json::object();
    e.set("path", key);
    e.set("cycles", c.cycles);
    e.set("instrs", c.instrs);
    e.set("macs", c.macs);
    Json stalls = Json::object();
    for (size_t s = 0; s < iss::kStallCauseCount; ++s) {
      if (c.stalls[s] == 0) continue;
      stalls.set(iss::stall_cause_name(static_cast<iss::StallCause>(s)), c.stalls[s]);
    }
    e.set("stalls", std::move(stalls));
    regions.push(std::move(e));
  }
  j.set("regions", std::move(regions));
  return j;
}

}  // namespace rnnasip::obs
