#include "src/obs/trace_export.h"

namespace rnnasip::obs {

namespace {

Json process_name_event(int pid, const std::string& name) {
  Json m = Json::object();
  m.set("ph", "M");
  m.set("pid", pid);
  m.set("tid", 1);
  m.set("name", "process_name");
  Json args = Json::object();
  args.set("name", name);
  m.set("args", std::move(args));
  return m;
}

Json duration_event(int pid, const RegionDef& d, const TimelineEvent& e) {
  Json x = Json::object();
  x.set("ph", "X");
  x.set("pid", pid);
  x.set("tid", 1);
  x.set("name", d.name);
  x.set("cat", region_kind_name(d.kind));
  x.set("ts", e.begin);
  x.set("dur", e.end - e.begin);
  return x;
}

Json counter_event(int pid, uint64_t cycle, const StallSample& s) {
  Json c = Json::object();
  c.set("ph", "C");
  c.set("pid", pid);
  c.set("tid", 1);
  c.set("name", "stall cycles (cum)");
  c.set("ts", cycle);
  Json args = Json::object();
  for (size_t i = 0; i < iss::kStallCauseCount; ++i) {
    args.set(iss::stall_cause_name(static_cast<iss::StallCause>(i)), s.cum[i]);
  }
  c.set("args", std::move(args));
  return c;
}

}  // namespace

Json perfetto_trace(const std::vector<const NetObservation*>& nets) {
  Json events = Json::array();
  for (size_t n = 0; n < nets.size(); ++n) {
    const NetObservation& obs = *nets[n];
    const int pid = static_cast<int>(n) + 1;
    events.push(process_name_event(pid, obs.name));
    for (const TimelineEvent& e : obs.timeline) {
      if (e.region < 0) continue;
      events.push(duration_event(pid, obs.map.defs()[static_cast<size_t>(e.region)], e));
    }
    for (const StallSample& s : obs.stall_samples) {
      events.push(counter_event(pid, s.cycle, s));
    }
  }
  Json root = Json::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ns");
  return root;
}

std::string to_perfetto_json(const std::vector<const NetObservation*>& nets) {
  return perfetto_trace(nets).dump();
}

std::string to_perfetto_json(const NetObservation& net) {
  return to_perfetto_json(std::vector<const NetObservation*>{&net});
}

}  // namespace rnnasip::obs
