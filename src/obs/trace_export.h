// Chrome/Perfetto trace_event JSON export of observed runs.
//
// Each NetObservation becomes one "process" (pid = index+1) named after the
// network; its region timeline becomes "X" complete duration events on
// tid 1 with ts/dur equal to core cycles (rendered as microseconds — the
// viewer's units are arbitrary, cycles are what we mean), and the periodic
// cumulative stall samples become "C" counter events, one series per stall
// cause. Load the output at https://ui.perfetto.dev or chrome://tracing.
#pragma once

#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/profile.h"

namespace rnnasip::obs {

/// Build the {"traceEvents": [...]} JSON value for a set of observations.
Json perfetto_trace(const std::vector<const NetObservation*>& nets);

/// Convenience: serialized compact JSON for one or many observations.
std::string to_perfetto_json(const std::vector<const NetObservation*>& nets);
std::string to_perfetto_json(const NetObservation& net);

}  // namespace rnnasip::obs
