// Chrome/Perfetto trace_event JSON export of observed runs.
//
// Each NetObservation becomes one "process" (pid = index+1) named after the
// network; its region timeline becomes "X" complete duration events on
// tid 1 with ts/dur equal to core cycles (rendered as microseconds — the
// viewer's units are arbitrary, cycles are what we mean), and the periodic
// cumulative stall samples become "C" counter events, one series per stall
// cause. Load the output at https://ui.perfetto.dev or chrome://tracing.
//
// Two more exporters live here:
//
//  - Multi-track request-span export (span_perfetto_events): one thread
//    track per cluster core (tid = core + 1, tid 0 is the scheduler),
//    request exec/retry/rollback segments as "X" slices on the core that
//    ran them, flow arrows (ph s/t/f, id = request id) stitching one
//    request's segments across cores through retries, rollbacks, and
//    preemption migrations, and instant events for the span marks
//    (detection, rollback, preempt, resume, fault, ...). The serving
//    wrapper (serve::serving_perfetto_trace) adds cluster-level intervals
//    (quarantines, fallback windows) on the same tracks.
//
//  - Flamegraph collapsed-stack export (to_collapsed_stacks): folds a
//    NetObservation's region tree into one "root;child;leaf <cycles>"
//    line per region with nonzero *self* cycles (plus "(outside)" for
//    unattributed work), so the sum of all line values equals the
//    observed total cycles — feed to flamegraph.pl / speedscope / inferno.
#pragma once

#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/profile.h"
#include "src/obs/span.h"

namespace rnnasip::obs {

/// Build the {"traceEvents": [...]} JSON value for a set of observations.
Json perfetto_trace(const std::vector<const NetObservation*>& nets);

/// Convenience: serialized compact JSON for one or many observations.
std::string to_perfetto_json(const std::vector<const NetObservation*>& nets);
std::string to_perfetto_json(const NetObservation& net);

// ---- Trace-event building blocks (shared with the serving exporter) ----

Json perfetto_process_name(int pid, const std::string& name);
Json perfetto_thread_name(int pid, int tid, const std::string& name);
/// "X" complete event: [ts, ts+dur) named slice.
Json perfetto_complete(int pid, int tid, const std::string& name,
                       const std::string& cat, uint64_t ts, uint64_t dur);
/// "i" thread-scoped instant event.
Json perfetto_instant(int pid, int tid, const std::string& name,
                      const std::string& cat, uint64_t ts);

/// Multi-track request-span events for one serving run: core tracks,
/// request slices, cross-core flow arrows, and span-mark instants.
/// Returns the traceEvents *array*; callers may append more events before
/// wrapping (see serve::serving_perfetto_trace).
Json span_perfetto_events(const std::vector<RequestSpan>& tracks, int cores,
                          int pid = 1);

/// Fold one observed region tree into collapsed-stack lines
/// ("a;b;c <self cycles>\n"). Every region with nonzero self cycles
/// contributes exactly one line rooted at `obs.name`, unattributed work
/// folds as "<name>;(outside)", so the line values sum to obs.cycles.
std::string to_collapsed_stacks(const NetObservation& obs);
std::string to_collapsed_stacks(const std::vector<const NetObservation*>& nets);

/// Per-region machine-readable breakdown of one observation, keyed by the
/// collapsed-stack path so scripts/trace_diff.py can align regions across
/// two envelopes:
///   {"network": ..., "cycles": ..., "unattributed_cycles": ...,
///    "regions": [{"path": "a;b;c", "cycles": self, "instrs": ...,
///                 "macs": ..., "stalls": {cause: cycles, ...}}, ...]}
/// Stall causes with zero cycles are omitted.
Json regions_to_json(const NetObservation& obs);

}  // namespace rnnasip::obs
