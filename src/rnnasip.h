// Umbrella header: everything a downstream user needs to run RNN inference
// on the simulated RNN-extended RISC-V core. See README.md for a walkthrough
// and docs/ISA.md for the instruction-set reference.
#pragma once

#include "src/activation/pla.h"       // IWYU pragma: export
#include "src/asm/builder.h"          // IWYU pragma: export
#include "src/asm/compress_pass.h"    // IWYU pragma: export
#include "src/asm/disasm.h"           // IWYU pragma: export
#include "src/asm/parser.h"           // IWYU pragma: export
#include "src/impl_model/impl_model.h"  // IWYU pragma: export
#include "src/isa/isa.h"              // IWYU pragma: export
#include "src/iss/core.h"             // IWYU pragma: export
#include "src/iss/trace.h"            // IWYU pragma: export
#include "src/kernels/fc8.h"          // IWYU pragma: export
#include "src/kernels/fc_batch.h"     // IWYU pragma: export
#include "src/kernels/fc_sparse.h"    // IWYU pragma: export
#include "src/kernels/network.h"      // IWYU pragma: export
#include "src/nn/init.h"              // IWYU pragma: export
#include "src/nn/quantize.h"          // IWYU pragma: export
#include "src/rrm/agents.h"           // IWYU pragma: export
#include "src/rrm/suite.h"            // IWYU pragma: export
#include "src/rrm/wmmse.h"            // IWYU pragma: export
