#include "src/rrm/agents.h"

#include "src/common/check.h"
#include "src/common/fixed_point.h"

namespace rnnasip::rrm {

DqnAgent::DqnAgent(const nn::LstmParamsQ& lstm, const nn::FcParamsQ& head,
                   kernels::OptLevel level)
    : mem_(std::make_unique<iss::Memory>(16u << 20)),
      core_(std::make_unique<iss::Core>(mem_.get())) {
  RNNASIP_CHECK(head.w.cols == lstm.hidden);
  kernels::NetworkProgramBuilder b(mem_.get(), level, core_->tanh_table(),
                                   core_->sig_table());
  b.add_lstm(lstm);
  b.add_fc(head);
  b.add_argmax();  // action selection happens on the device
  actions_ = head.w.rows;
  net_ = b.finalize();
  core_->load_program(net_.program);
  reset();
}

void DqnAgent::reset() { kernels::reset_state(*mem_, net_); }

int DqnAgent::act(std::span<const double> observation) {
  RNNASIP_CHECK(static_cast<int>(observation.size()) == net_.input_count);
  std::vector<int16_t> x(observation.size());
  for (size_t i = 0; i < observation.size(); ++i) {
    x[i] = static_cast<int16_t>(quantize(observation[i]));
  }
  const auto out = kernels::run_forward(*core_, *mem_, net_, x);
  RNNASIP_CHECK(out.size() == 1);
  ++decisions_;
  return out[0];  // the device-computed argmax index
}

SpectrumEpisode run_spectrum_episode(DqnAgent& agent, GilbertElliottChannels& channels,
                                     int slots) {
  const int c = channels.channel_count();
  RNNASIP_CHECK_MSG(agent.observation_size() == 2 * c,
                    "agent observes occupancy + one-hot previous choice");
  RNNASIP_CHECK(agent.action_count() == c);
  SpectrumEpisode ep;
  int last = 0;
  for (int t = 0; t < slots; ++t) {
    channels.step();
    std::vector<double> obs = channels.observation();
    for (int a = 0; a < c; ++a) obs.push_back(a == last ? 1.0 : 0.0);
    const int choice = agent.act(obs);
    if (channels.busy(choice)) {
      ++ep.collisions;
    } else {
      ++ep.successes;
    }
    ep.choices.push_back(choice);
    last = choice;
  }
  ep.cycles = agent.total_cycles();
  return ep;
}

}  // namespace rnnasip::rrm
