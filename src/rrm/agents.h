// RRM agent wrappers: a greedy discrete-action (DQN-style) agent whose
// policy network runs on the simulated extended core, and an episode runner
// for the dynamic-spectrum-access environment — the deployment loop the
// paper's Sec. I motivates (one inference per scheduling decision).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/iss/core.h"
#include "src/kernels/network.h"
#include "src/nn/layers.h"
#include "src/rrm/env.h"

namespace rnnasip::rrm {

/// Observation (real-valued) -> device network forward pass -> argmax
/// action. The network is LSTM(+FC head) so the agent carries temporal
/// state; reset() starts a fresh episode.
class DqnAgent {
 public:
  DqnAgent(const nn::LstmParamsQ& lstm, const nn::FcParamsQ& head,
           kernels::OptLevel level);

  void reset();
  /// Quantizes the observation, runs one step, returns the argmax output.
  int act(std::span<const double> observation);

  int observation_size() const { return net_.input_count; }
  int action_count() const { return actions_; }
  uint64_t total_cycles() const { return core_->stats().total_cycles(); }
  int decisions() const { return decisions_; }

 private:
  std::unique_ptr<iss::Memory> mem_;
  std::unique_ptr<iss::Core> core_;
  kernels::BuiltNetwork net_;
  int actions_ = 0;
  int decisions_ = 0;
};

struct SpectrumEpisode {
  int successes = 0;
  int collisions = 0;
  uint64_t cycles = 0;
  std::vector<int> choices;
};

/// Run `slots` decisions of the dynamic-spectrum-access loop: the agent
/// observes last-slot occupancy (+/-1 per channel) and its own previous
/// choice (one-hot), picks a channel, and collides if a primary user holds
/// it. The agent's observation size must be 2 x channel count.
SpectrumEpisode run_spectrum_episode(DqnAgent& agent, GilbertElliottChannels& channels,
                                     int slots);

}  // namespace rnnasip::rrm
