#include "src/rrm/engine.h"

#include <algorithm>
#include <optional>

#include "src/analysis/network_lint.h"
#include "src/common/check.h"
#include "src/common/fixed_point.h"
#include "src/iss/core.h"
#include "src/kernels/layout.h"
#include "src/translate/tcore.h"

namespace rnnasip::rrm {

namespace {

size_t argmax_of(const std::vector<int16_t>& v) {
  return static_cast<size_t>(std::max_element(v.begin(), v.end()) - v.begin());
}

/// The RRM decision differs: argmax for action vectors, value equality for
/// scalar outputs (the argmax-terminated DQN nets emit one halfword).
bool decision_flipped(const std::vector<int16_t>& got, const std::vector<int16_t>& want) {
  if (got.size() <= 1) return got != want;
  return argmax_of(got) != argmax_of(want);
}

}  // namespace

Engine::Engine() : Engine(Config{}) {}

Engine::Engine(Config cfg) : cfg_(std::move(cfg)) {}

const RrmNetwork& Engine::network(const std::string& name) {
  auto it = nets_.find(name);
  if (it == nets_.end()) {
    it = nets_.emplace(name, RrmNetwork(find_network(name), cfg_.seed)).first;
  }
  return it->second;
}

uint64_t Engine::submit(Request req) {
  const uint64_t id = next_id_++;
  pending_.emplace_back(id, std::move(req));
  return id;
}

std::vector<Response> Engine::run_all() {
  std::vector<Response> out;
  out.reserve(pending_.size());
  auto queue = std::move(pending_);
  pending_.clear();
  for (auto& [id, req] : queue) {
    out.push_back(execute(network(req.network), req, id));
  }
  return out;
}

Response Engine::run(const Request& req) {
  return execute(network(req.network), req, 0);
}

Response Engine::run(const RrmNetwork& net, const Request& req) {
  return execute(net, req, 0);
}

Response Engine::execute(const RrmNetwork& net, const Request& req, uint64_t id) {
  RNNASIP_CHECK_MSG(req.input.empty() || req.timesteps == 1,
                    "explicit input requires timesteps == 1");
  // Translated backend: fault campaigns and explicit watchdogs need the
  // interpreter's per-instruction machinery and must never silently run
  // untranslated semantics — reject them with a structured trap. Observed
  // runs fall back to the ISS (documented): the profiler attaches to
  // interpreter hooks, and both backends report identical cycles anyway.
  if (cfg_.backend == ExecBackend::kTranslated && !req.observe && !req.timeline) {
    return execute_translated(net, req, id);
  }
  iss::Memory mem(16u << 20);
  iss::Core core(&mem, cfg_.core_config);
  const auto built =
      net.build(&mem, req.level, core.tanh_table(), core.sig_table(), cfg_.max_tile);
  core.load_program(built.program);
  kernels::reset_state(mem, built);

  // Observability: attribute every cycle/instr/MAC/stall to the innermost
  // emitted region. The core is fresh, so profiler totals must equal the
  // core's ExecStats at the end — asserted below.
  std::optional<obs::RegionProfiler> profiler;
  if (req.observe) {
    obs::RegionProfiler::Options po;
    po.timeline = req.timeline;
    profiler.emplace(&built.regions, built.program.base, po);
    profiler->attach(core);
  }

  // The golden model gets pristine LUT copies: a campaign may flip bits in
  // the core's PLA unit, and the reference must not inherit the flip.
  const auto tanh_ref = activation::PlaTable::build(cfg_.core_config.tanh_spec);
  const auto sig_ref = activation::PlaTable::build(cfg_.core_config.sig_spec);
  RrmNetwork::Golden golden(net, tanh_ref, sig_ref);

  // Arm the injector only for campaigns: a rate-0 run stays bit-identical
  // to a fault-free one (no hook, no RNG, no cycle difference).
  std::optional<fault::FaultInjector> injector;
  if (req.fault.any_enabled()) {
    fault::FaultSpec spec = req.fault;
    if (spec.tcdm.empty())
      spec.tcdm = {kernels::kDataBase, kernels::kDataBase + built.data_bytes};
    if (spec.text.empty())
      spec.text = {built.program.base, built.program.base + built.program.size_bytes()};
    injector.emplace(spec);
    injector->arm(&core, &mem);
  }

  iss::RunLimits limits;
  if (req.watchdog_cycles != 0) {
    limits.max_cycles = req.watchdog_cycles;
  } else if (injector) {
    // Automatic watchdog: the network's certified WCET x margin, falling
    // back to the cycle lower bound x a loose margin when no upper bound
    // exists (analysis::campaign_watchdog, docs/FAULTS.md) instead of one
    // campaign-wide constant. The bound is per (topology, level) — it is
    // data-independent — so it is cached across requests and campaigns.
    const auto key = std::make_pair(net.def().name, static_cast<int>(req.level));
    auto it = watchdog_cache_.find(key);
    if (it == watchdog_cache_.end()) {
      it = watchdog_cache_
               .emplace(key, analysis::campaign_watchdog(built, cfg_.core_config.timing))
               .first;
    }
    limits.max_cycles = it->second;
  }

  Response resp;
  resp.id = id;
  NetRunResult& r = resp.result;
  r.name = net.def().name;
  r.level = req.level;
  r.nominal_macs = built.nominal_macs * static_cast<uint64_t>(req.timesteps);
  r.verified = true;
  r.steps_attempted = req.timesteps;
  const bool compare = req.verify || injector.has_value();
  int flips = 0;
  for (int t = 0; t < req.timesteps; ++t) {
    const auto input = req.input.empty() ? net.make_input(t) : req.input;
    auto fr = kernels::try_run_forward(core, mem, built, input, limits);
    if (!fr.ok()) {
      r.completed = false;
      r.trap = fr.result.trap;
      break;
    }
    ++r.steps_completed;
    if (compare) {
      const auto want = golden.forward(input);
      if (fr.outputs != want) r.verified = false;
      if (decision_flipped(fr.outputs, want)) ++flips;
      for (size_t i = 0; i < fr.outputs.size() && i < want.size(); ++i) {
        r.output_error.add(dequantize(fr.outputs[i]), dequantize(want[i]));
      }
    }
    resp.outputs = std::move(fr.outputs);
  }
  if (r.steps_completed > 0) {
    r.decision_flip_rate = static_cast<double>(flips) / r.steps_completed;
  }
  if (injector) {
    r.faults_injected = injector->flips();
    injector->disarm();
  }
  r.cycles = core.stats().total_cycles();
  r.instrs = core.stats().total_instrs();
  r.stats = core.stats();
  if (profiler) {
    profiler->finish();
    const obs::RegionCounters tot = profiler->totals();
    RNNASIP_CHECK_MSG(tot.cycles == r.cycles && tot.instrs == r.instrs,
                      "observability identity broken for " << r.name << ": regions "
                          << tot.cycles << "c/" << tot.instrs << "i vs core " << r.cycles
                          << "c/" << r.instrs << "i");
    RNNASIP_CHECK_MSG(core.stats().identity_holds(),
                      "stall-taxonomy identity broken for " << r.name);
    auto ob = std::make_shared<obs::NetObservation>();
    ob->name = r.name;
    ob->map = built.regions;
    ob->counters = profiler->counters();
    ob->unattributed = profiler->unattributed();
    ob->timeline = profiler->timeline();
    ob->stall_samples = profiler->stall_samples();
    ob->timeline_truncated = profiler->timeline_truncated();
    ob->cycles = tot.cycles;
    ob->instrs = tot.instrs;
    ob->macs = tot.macs;
    r.obs = std::move(ob);
  }
  return resp;
}

Response Engine::execute_translated(const RrmNetwork& net, const Request& req,
                                    uint64_t id) {
  Response resp;
  resp.id = id;
  NetRunResult& r = resp.result;
  r.name = net.def().name;
  r.level = req.level;
  r.steps_attempted = req.timesteps;
  r.completed = false;
  r.verified = false;

  // Structured rejection: these request shapes need per-instruction
  // interpreter machinery (injection hooks, the campaign watchdog ladder).
  // Running them translated would silently change the semantics under test,
  // so the engine refuses instead of degrading.
  if (req.fault.any_enabled()) {
    r.trap = iss::Trap{iss::TrapCause::kBackendUnsupported, 0, 0,
                       "fault campaign requires the ISS backend (the translated "
                       "backend has no injection hooks); re-run with "
                       "ExecBackend::kIss"};
    return resp;
  }
  if (req.watchdog_cycles != 0) {
    r.trap = iss::Trap{iss::TrapCause::kBackendUnsupported, 0, 0,
                       "watchdog-armed run requires the ISS backend; re-run "
                       "with ExecBackend::kIss"};
    return resp;
  }

  iss::Memory mem(16u << 20);
  const auto tanh_tbl = activation::PlaTable::build(cfg_.core_config.tanh_spec);
  const auto sig_tbl = activation::PlaTable::build(cfg_.core_config.sig_spec);
  const auto built = net.build(&mem, req.level, tanh_tbl, sig_tbl, cfg_.max_tile);
  mem.write_words(built.program.base, built.program.encode_words());
  kernels::reset_state(mem, built);
  r.nominal_macs = built.nominal_macs * static_cast<uint64_t>(req.timesteps);

  const auto key = std::make_pair(net.def().name, static_cast<int>(req.level));
  auto it = translated_cache_.find(key);
  if (it == translated_cache_.end()) {
    auto tr = translate::translate(built.program, analysis::memory_map_of(built),
                                   cfg_.core_config);
    if (!tr.ok()) {
      r.trap = iss::Trap{iss::TrapCause::kBackendUnsupported, 0, 0,
                         "translation refused [" + tr.error.code + "]: " +
                             tr.error.message};
      return resp;
    }
    it = translated_cache_.emplace(key, tr.program).first;
  }

  translate::TranslatedCore tcore(&mem, cfg_.core_config);
  tcore.bind(it->second);

  RrmNetwork::Golden golden(net, tanh_tbl, sig_tbl);
  r.completed = true;
  r.verified = true;
  int flips = 0;
  for (int t = 0; t < req.timesteps; ++t) {
    const auto input = req.input.empty() ? net.make_input(t) : req.input;
    auto fr = kernels::try_run_forward(tcore, mem, built, input);
    r.cycles += fr.result.cycles;
    r.instrs += fr.result.instrs;
    if (!fr.ok()) {
      r.completed = false;
      r.trap = fr.result.trap;
      break;
    }
    ++r.steps_completed;
    if (req.verify) {
      const auto want = golden.forward(input);
      if (fr.outputs != want) r.verified = false;
      if (decision_flipped(fr.outputs, want)) ++flips;
      for (size_t i = 0; i < fr.outputs.size() && i < want.size(); ++i) {
        r.output_error.add(dequantize(fr.outputs[i]), dequantize(want[i]));
      }
    }
    resp.outputs = std::move(fr.outputs);
  }
  if (r.steps_completed > 0) {
    r.decision_flip_rate = static_cast<double>(flips) / r.steps_completed;
  }
  return resp;
}

SuiteResult Engine::run_suite(kernels::OptLevel level, const Request& proto) {
  SuiteResult s;
  for (const auto& def : rrm_suite()) {
    Request req = proto;
    req.network = def.name;
    req.level = level;
    NetRunResult r = execute(network(def.name), req, 0).result;
    s.total.merge(r.stats);
    s.total_cycles += r.cycles;
    s.total_instrs += r.instrs;
    s.total_macs += r.nominal_macs;
    s.all_verified = s.all_verified && r.verified;
    s.nets_completed += r.completed ? 1 : 0;
    s.nets_degraded += r.degraded() ? 1 : 0;
    s.faults_injected += r.faults_injected;
    s.nets.push_back(std::move(r));
  }
  return s;
}

}  // namespace rnnasip::rrm
