// Request/response execution engine for the RRM suite.
//
// The engine replaces the grow-a-bool RunOptions + free-function surface:
// callers describe one inference job as an rrm::Request (network id, opt
// level, timesteps, verification/observability/fault knobs), and get back
// an rrm::Response (outputs, per-run NetRunResult with stats, obs and trap
// record). Requests can run immediately (run()) or queue through
// submit()/run_all() — the surface the serving scheduler (src/serve)
// batches behind.
//
// Execution semantics are identical to the old run_network/run_suite free
// functions (now [[deprecated]] shims over this engine): every request
// executes on a fresh core + memory image, so cycle counts, verification
// and fault campaigns are bit-for-bit what they were.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/exec/backend.h"
#include "src/rrm/suite.h"
#include "src/translate/translate.h"

namespace rnnasip::rrm {

/// One inference job: which network, at which level, with which knobs.
struct Request {
  std::string network;  ///< suite network id, e.g. "wang18"
  kernels::OptLevel level = kernels::OptLevel::kInputTiling;
  int timesteps = 1;    ///< forward passes (LSTM state persists across them)
  /// Explicit input vector; empty = the network's deterministic per-step
  /// inputs (make_input). Requires timesteps == 1 when set.
  std::vector<int16_t> input;
  bool verify = true;   ///< compare outputs against the golden model
  bool observe = false; ///< attach a RegionProfiler (NetRunResult::obs)
  bool timeline = false;///< with observe: record the region timeline
  /// SEU campaign; all-zero rates inject nothing and leave the run
  /// bit-identical to a fault-free one.
  fault::FaultSpec fault;
  /// Per-forward-pass cycle watchdog. 0 = automatic: disabled for
  /// fault-free runs; under a campaign, the network's static cycle lower
  /// bound (src/analysis) x safety margin — see docs/FAULTS.md.
  uint64_t watchdog_cycles = 0;
};

/// What a completed Request yields.
struct Response {
  uint64_t id = 0;               ///< ticket from submit(), 0 for run()
  NetRunResult result;           ///< stats, verification, trap record
  std::vector<int16_t> outputs;  ///< last completed step's output vector
  bool ok() const { return result.completed && result.verified; }
};

/// Owns the network materializations and executes Requests. Materialized
/// networks (seeded quantized parameters) are cached per engine; device
/// programs still build per request on a fresh core + memory, keeping every
/// run independent and cycle counts identical to the legacy free functions.
class Engine {
 public:
  struct Config {
    int max_tile = 8;
    uint64_t seed = 0x52414D;  ///< network parameter seed
    /// Core configuration (timing-model knobs, activation design point).
    iss::Core::Config core_config;
    /// Execution backend. kIss (default) is the cycle-accurate interpreter
    /// and behaves exactly as before this field existed. kTranslated runs
    /// verified programs through src/translate at host speed with
    /// bit-identical outputs and cycle counts; requests that need ISS-only
    /// machinery degrade in a documented way — observe/timeline fall back
    /// to the ISS silently (the profiler hooks the interpreter), while
    /// fault campaigns and watchdog-armed runs are REJECTED with a
    /// structured kBackendUnsupported trap rather than silently running
    /// untranslated semantics (see docs/BACKENDS.md).
    ExecBackend backend = ExecBackend::kIss;
  };

  Engine();
  explicit Engine(Config cfg);

  /// Queue a request; returns its ticket id.
  uint64_t submit(Request req);
  /// Execute every queued request in submission order.
  std::vector<Response> run_all();

  /// Execute one request immediately.
  Response run(const Request& req);
  /// Execute against an explicitly materialized network (callers holding a
  /// custom-seeded RrmNetwork); req.network is ignored.
  Response run(const RrmNetwork& net, const Request& req);

  /// Run the whole 10-network suite at one level; `proto`'s knobs
  /// (timesteps, verify, observe, fault, ...) apply to every network.
  /// Degraded networks are recorded and the remaining networks still run.
  SuiteResult run_suite(kernels::OptLevel level, const Request& proto = {});

  /// The engine's cached materialization of a suite network.
  const RrmNetwork& network(const std::string& name);

  const Config& config() const { return cfg_; }

 private:
  Response execute(const RrmNetwork& net, const Request& req, uint64_t id);
  Response execute_translated(const RrmNetwork& net, const Request& req,
                              uint64_t id);

  Config cfg_;
  std::map<std::string, RrmNetwork> nets_;
  /// Translated images per (network, level): program builds are
  /// deterministic for a fixed engine config, so one translation serves
  /// every request (and amortizes the verifier precondition pass).
  std::map<std::pair<std::string, int>,
           std::shared_ptr<const translate::TranslatedProgram>>
      translated_cache_;
  /// Automatic campaign watchdog per (network, level) — the static cycle
  /// bound is data-independent, so one derivation serves every request.
  std::map<std::pair<std::string, int>, uint64_t> watchdog_cache_;
  std::vector<std::pair<uint64_t, Request>> pending_;
  uint64_t next_id_ = 1;
};

}  // namespace rnnasip::rrm
