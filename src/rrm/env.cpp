#include "src/rrm/env.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace rnnasip::rrm {

namespace {

// Per-component RNG stream tags (common/rng.h derive_stream). Occupancy,
// geometry and fading each draw from an independent stream of the one user
// seed, so a consumer that interleaves them differently — the closed-loop
// scenario engine refades every TTI but steps channels under feedback
// pressure — can never shift another component's sequence, and blessed
// envelopes of benches that share a seed stay byte-identical.
constexpr uint64_t kStreamOccupancy = 0;
constexpr uint64_t kStreamGeometry = 1;
constexpr uint64_t kStreamFading = 2;

}  // namespace

GilbertElliottChannels::GilbertElliottChannels(int channels, uint64_t seed,
                                               double p_stay_busy, double p_become_busy)
    : rng_(derive_stream(seed, kStreamOccupancy)),
      busy_(static_cast<size_t>(channels), false),
      p_stay_busy_(p_stay_busy),
      p_become_busy_(p_become_busy) {
  RNNASIP_CHECK(channels > 0);
  RNNASIP_CHECK(p_stay_busy >= 0 && p_stay_busy <= 1);
  RNNASIP_CHECK(p_become_busy >= 0 && p_become_busy <= 1);
}

void GilbertElliottChannels::step() { step(0.0); }

void GilbertElliottChannels::step(double pressure) {
  RNNASIP_CHECK(pressure >= 0);
  const double p_busy = std::min(1.0, p_become_busy_ + pressure);
  for (size_t c = 0; c < busy_.size(); ++c) {
    const double p = busy_[c] ? p_stay_busy_ : p_busy;
    busy_[c] = rng_.next_double() < p;
  }
}

bool GilbertElliottChannels::busy(int channel) const {
  RNNASIP_CHECK(channel >= 0 && channel < channel_count());
  return busy_[static_cast<size_t>(channel)];
}

std::vector<double> GilbertElliottChannels::observation() const {
  std::vector<double> obs(busy_.size());
  for (size_t c = 0; c < busy_.size(); ++c) obs[c] = busy_[c] ? 1.0 : -1.0;
  return obs;
}

InterferenceField::InterferenceField(int pairs, uint64_t seed, double area,
                                     double path_loss_exp)
    : pairs_(pairs),
      fading_rng_(derive_stream(seed, kStreamFading)),
      gains_(static_cast<size_t>(pairs) * pairs) {
  RNNASIP_CHECK(pairs > 0);
  // Place transmitters uniformly; each receiver sits close to its own
  // transmitter (direct link 1-10 m), interference travels the full area.
  // Geometry draws from its own stream: however many refades a consumer
  // performs, re-creating the field from the same seed reproduces the city.
  Rng geometry(derive_stream(seed, kStreamGeometry));
  std::vector<double> tx(2 * static_cast<size_t>(pairs)), rx(2 * static_cast<size_t>(pairs));
  for (int i = 0; i < pairs; ++i) {
    tx[2 * i] = geometry.next_in(0, area);
    tx[2 * i + 1] = geometry.next_in(0, area);
    const double r = geometry.next_in(1.0, 10.0);
    const double phi = geometry.next_in(0, 6.283185307);
    rx[2 * i] = tx[2 * i] + r * std::cos(phi);
    rx[2 * i + 1] = tx[2 * i + 1] + r * std::sin(phi);
  }
  for (int i = 0; i < pairs; ++i) {
    for (int j = 0; j < pairs; ++j) {
      const double dx = rx[2 * i] - tx[2 * j];
      const double dy = rx[2 * i + 1] - tx[2 * j + 1];
      const double d = std::max(1.0, std::sqrt(dx * dx + dy * dy));
      gains_[static_cast<size_t>(i) * pairs_ + j] = std::pow(d, -path_loss_exp);
    }
  }
}

double InterferenceField::gain(int i, int j) const {
  RNNASIP_CHECK(i >= 0 && i < pairs_ && j >= 0 && j < pairs_);
  return gains_[static_cast<size_t>(i) * pairs_ + j];
}

std::vector<double> InterferenceField::sinr(const std::vector<double>& p,
                                            double noise) const {
  RNNASIP_CHECK(static_cast<int>(p.size()) == pairs_);
  std::vector<double> out(static_cast<size_t>(pairs_));
  for (int i = 0; i < pairs_; ++i) {
    double interference = noise;
    for (int j = 0; j < pairs_; ++j) {
      if (j != i) interference += gain(i, j) * p[static_cast<size_t>(j)];
    }
    out[static_cast<size_t>(i)] = gain(i, i) * p[static_cast<size_t>(i)] / interference;
  }
  return out;
}

double InterferenceField::sum_rate(const std::vector<double>& p, double noise) const {
  double rate = 0;
  for (double s : sinr(p, noise)) rate += std::log2(1.0 + s);
  return rate;
}

std::vector<double> InterferenceField::normalized_gains() const {
  // log10 gains mapped linearly into [-1, 1] over their observed range.
  std::vector<double> out(gains_.size());
  double lo = 1e30, hi = -1e30;
  for (double g : gains_) {
    const double l = std::log10(g);
    lo = std::min(lo, l);
    hi = std::max(hi, l);
  }
  const double span = hi > lo ? hi - lo : 1.0;
  for (size_t i = 0; i < gains_.size(); ++i) {
    out[i] = 2.0 * (std::log10(gains_[i]) - lo) / span - 1.0;
  }
  return out;
}

std::vector<double> InterferenceField::direct_gains_normalized() const {
  const std::vector<double> all = normalized_gains();
  std::vector<double> out(static_cast<size_t>(pairs_));
  for (int i = 0; i < pairs_; ++i) {
    out[static_cast<size_t>(i)] = all[static_cast<size_t>(i) * pairs_ + i];
  }
  return out;
}

void InterferenceField::refade(double sigma) {
  for (double& g : gains_) {
    // Log-normal block fading around the path-loss mean.
    const double u1 = fading_rng_.next_double();
    const double u2 = fading_rng_.next_double();
    const double n = std::sqrt(-2.0 * std::log(std::max(1e-12, u1))) *
                     std::cos(6.283185307 * u2);
    g *= std::pow(10.0, sigma * n / 10.0);
  }
}

}  // namespace rnnasip::rrm
