// Radio-environment models for the RRM example applications: the synthetic
// substitutes for live radio traces (DESIGN.md, substitutions). Both models
// are standard in the cited RRM literature:
//
//   * GilbertElliottChannels — per-channel two-state Markov occupancy, the
//     primary-user model of the dynamic-spectrum-access papers [14], [17];
//   * InterferenceField — a set of transmitter-receiver pairs with
//     log-distance path loss and cross-pair interference, the setting of
//     the power-control papers [2], [12], [15]. Computes per-pair SINR and
//     sum-rate for a vector of transmit powers.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace rnnasip::rrm {

/// Per-channel busy/idle occupancy with memory.
class GilbertElliottChannels {
 public:
  /// `p_stay_busy` / `p_become_busy` are the Markov transition
  /// probabilities; all channels start idle.
  GilbertElliottChannels(int channels, uint64_t seed, double p_stay_busy = 0.7,
                         double p_become_busy = 0.3);

  void step();
  /// Closed-loop variant: `pressure` (>= 0) is added to the become-busy
  /// probability for this step only — the scenario engine's feedback path,
  /// where a cell that keeps missing its power-control decisions congests
  /// and primary users grab more channels. `pressure = 0` is exactly
  /// `step()`.
  void step(double pressure);
  bool busy(int channel) const;
  int channel_count() const { return static_cast<int>(busy_.size()); }
  /// Occupancy encoded as +/-1 reals (the agents' observation convention).
  std::vector<double> observation() const;

 private:
  Rng rng_;
  std::vector<bool> busy_;
  double p_stay_busy_;
  double p_become_busy_;
};

/// K transmitter-receiver pairs on a square area with log-distance path
/// loss; pair i's receiver hears every transmitter j with gain g[i][j].
class InterferenceField {
 public:
  /// Random geometry on an `area` x `area` square; direct links are short
  /// (receiver near its transmitter), interferers arbitrary.
  InterferenceField(int pairs, uint64_t seed, double area = 100.0,
                    double path_loss_exp = 3.0);

  int pair_count() const { return pairs_; }
  /// Linear channel gain from transmitter j to receiver i.
  double gain(int i, int j) const;
  /// Per-pair SINR for transmit powers `p` (linear, >= 0), with receiver
  /// noise power `noise`.
  std::vector<double> sinr(const std::vector<double>& p, double noise = 1e-6) const;
  /// Shannon sum-rate (bits/s/Hz) for transmit powers `p`.
  double sum_rate(const std::vector<double>& p, double noise = 1e-6) const;
  /// The flattened gain matrix scaled into [-1, 1] for use as NN input
  /// (log-magnitude normalization, the convention of [2], [15]).
  std::vector<double> normalized_gains() const;
  /// Just the direct-link (diagonal) gains, normalized against the same
  /// full-matrix log range as `normalized_gains()` — the compact per-cell
  /// observation the scenario engine feeds small decision networks.
  std::vector<double> direct_gains_normalized() const;

  /// Redraw fading on all links (block-fading evolution).
  void refade(double sigma = 0.2);

 private:
  int pairs_;
  Rng fading_rng_;             // stream: fading only (geometry uses its own)
  std::vector<double> gains_;  // pairs x pairs, row-major, linear
};

}  // namespace rnnasip::rrm
