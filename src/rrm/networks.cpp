#include "src/rrm/networks.h"

#include "src/common/check.h"
#include "src/nn/quantize.h"

namespace rnnasip::rrm {

using nn::ActKind;

LayerSpec LayerSpec::Fc(int in, int out, ActKind act) {
  LayerSpec s;
  s.kind = Kind::kFc;
  s.in = in;
  s.out = out;
  s.act = act;
  return s;
}

LayerSpec LayerSpec::Lstm(int m, int n) {
  LayerSpec s;
  s.kind = Kind::kLstm;
  s.in = m;
  s.out = n;
  return s;
}

LayerSpec LayerSpec::Conv(int in_ch, int out_ch, int k, int h, int w, ActKind act,
                          int stride) {
  LayerSpec s;
  s.kind = Kind::kConv;
  s.in = in_ch;
  s.out = out_ch;
  s.k = k;
  s.h = h;
  s.w = w;
  s.act = act;
  s.stride = stride;
  return s;
}

const std::vector<NetworkDef>& rrm_suite() {
  static const std::vector<NetworkDef> suite = {
      {"challita17", "[13]", "LSTM/FC", "LTE-U proactive resource management",
       {LayerSpec::Lstm(32, 64), LayerSpec::Fc(64, 32, ActKind::kReLU),
        LayerSpec::Fc(32, 10, ActKind::kNone)}},
      {"naparstek17", "[14]", "LSTM/FC", "distributed dynamic spectrum access",
       {LayerSpec::Lstm(12, 32), LayerSpec::Fc(32, 8, ActKind::kNone)}},
      {"ahmed19", "[3]", "FC", "multi-cell radio resource allocation",
       {LayerSpec::Fc(8, 24, ActKind::kReLU), LayerSpec::Fc(24, 24, ActKind::kReLU),
        LayerSpec::Fc(24, 4, ActKind::kSigmoid)}},
      {"eisen19", "[33]", "FC", "optimal wireless resource allocation",
       {LayerSpec::Fc(12, 32, ActKind::kReLU), LayerSpec::Fc(32, 16, ActKind::kReLU),
        LayerSpec::Fc(16, 6, ActKind::kNone)}},
      {"lee18", "[15]", "CNN/FC", "CNN-based transmit power control",
       {LayerSpec::Conv(1, 6, 3, 10, 10, ActKind::kReLU),
        LayerSpec::Conv(6, 10, 3, 8, 8, ActKind::kReLU),
        LayerSpec::Fc(360, 40, ActKind::kReLU), LayerSpec::Fc(40, 10, ActKind::kSigmoid)}},
      {"nasir18", "[12]", "FC", "distributed dynamic power allocation (DQN)",
       {LayerSpec::Fc(60, 200, ActKind::kReLU), LayerSpec::Fc(200, 100, ActKind::kReLU),
        LayerSpec::Fc(100, 10, ActKind::kNone)}},
      {"sun17", "[2]", "FC", "learning-to-optimize WMMSE surrogate",
       {LayerSpec::Fc(32, 200, ActKind::kReLU), LayerSpec::Fc(200, 200, ActKind::kReLU),
        LayerSpec::Fc(200, 32, ActKind::kNone)}},
      {"ye18", "[9]", "FC", "V2V resource allocation (DQN)",
       {LayerSpec::Fc(84, 500, ActKind::kReLU), LayerSpec::Fc(500, 248, ActKind::kReLU),
        LayerSpec::Fc(248, 120, ActKind::kReLU), LayerSpec::Fc(120, 60, ActKind::kNone)}},
      {"yu17", "[11]", "FC", "deep-reinforcement multiple access (DQN)",
       {LayerSpec::Fc(160, 500, ActKind::kReLU), LayerSpec::Fc(500, 300, ActKind::kReLU),
        LayerSpec::Fc(300, 64, ActKind::kNone)}},
      {"wang18", "[17]", "FC", "dynamic multichannel access (DQN)",
       {LayerSpec::Fc(320, 600, ActKind::kReLU), LayerSpec::Fc(600, 300, ActKind::kReLU),
        LayerSpec::Fc(300, 16, ActKind::kNone)}},
  };
  return suite;
}

const NetworkDef& find_network(const std::string& name) {
  for (const auto& def : rrm_suite()) {
    if (def.name == name) return def;
  }
  RNNASIP_CHECK_MSG(false, "unknown RRM network: " << name);
}

RrmNetwork::RrmNetwork(const NetworkDef& def, uint64_t seed) : def_(def), seed_(seed) {
  RNNASIP_CHECK(!def.layers.empty());
  Rng rng(seed ^ std::hash<std::string>{}(def.name));
  int cur = 0;
  int cur_h = 0, cur_w = 0;
  for (size_t li = 0; li < def.layers.size(); ++li) {
    const LayerSpec& s = def.layers[li];
    Layer layer;
    layer.spec = s;
    switch (s.kind) {
      case LayerSpec::Kind::kFc: {
        layer.fc = nn::quantize_fc(nn::random_fc(rng, s.in, s.out, s.act, 0.25f));
        if (li == 0) input_count_ = s.in;
        cur = s.out;
        nominal_macs_ += static_cast<uint64_t>(s.in) * s.out;
        break;
      }
      case LayerSpec::Kind::kLstm: {
        layer.lstm = nn::quantize_lstm(nn::random_lstm(rng, s.in, s.out, 0.25f));
        if (li == 0) input_count_ = s.in;
        cur = s.out;
        has_lstm_ = true;
        nominal_macs_ += 4ull * s.out * (s.in + s.out);
        break;
      }
      case LayerSpec::Kind::kConv: {
        layer.conv =
            nn::quantize_conv(nn::random_conv(rng, s.in, s.out, s.k, s.act, s.stride, 0, 0.25f));
        if (li == 0) {
          input_count_ = s.in * s.h * s.w;
          cur_h = s.h;
          cur_w = s.w;
        }
        const int oh = nn::conv_out_dim(cur_h == 0 ? s.h : cur_h, s.k, s.stride, 0);
        const int ow = nn::conv_out_dim(cur_w == 0 ? s.w : cur_w, s.k, s.stride, 0);
        cur = s.out * oh * ow;
        cur_h = oh;
        cur_w = ow;
        nominal_macs_ += static_cast<uint64_t>(cur) * s.in * s.k * s.k;
        break;
      }
    }
    layers_.push_back(std::move(layer));
  }
  output_count_ = cur;
}

kernels::BuiltNetwork RrmNetwork::build(iss::Memory* mem, kernels::OptLevel level,
                                        const activation::PlaTable& tanh_tbl,
                                        const activation::PlaTable& sig_tbl,
                                        int max_tile, uint32_t param_base,
                                        bool integrity) const {
  kernels::NetworkProgramBuilder b(mem, level, tanh_tbl, sig_tbl, max_tile,
                                   /*sequence_steps=*/1, param_base);
  if (integrity) b.set_integrity(true);
  for (const Layer& layer : layers_) {
    switch (layer.spec.kind) {
      case LayerSpec::Kind::kFc:
        b.add_fc(layer.fc);
        break;
      case LayerSpec::Kind::kLstm:
        b.add_lstm(layer.lstm);
        break;
      case LayerSpec::Kind::kConv:
        b.add_conv(layer.conv, layer.spec.h, layer.spec.w);
        break;
    }
  }
  return b.finalize();
}

bool RrmNetwork::fc_only() const {
  for (const Layer& layer : layers_) {
    if (layer.spec.kind != LayerSpec::Kind::kFc) return false;
  }
  return true;
}

std::vector<const nn::FcParamsQ*> RrmNetwork::fc_params() const {
  RNNASIP_CHECK_MSG(fc_only(), def_.name << " has non-FC layers");
  std::vector<const nn::FcParamsQ*> out;
  out.reserve(layers_.size());
  for (const Layer& layer : layers_) out.push_back(&layer.fc);
  return out;
}

std::vector<int16_t> RrmNetwork::make_input(int t) const {
  Rng rng(seed_ * 1315423911ull + static_cast<uint64_t>(t) * 2654435761ull + 7);
  std::vector<int16_t> in(static_cast<size_t>(input_count_));
  for (auto& v : in) v = static_cast<int16_t>(quantize(rng.next_in(-1.0, 1.0)));
  return in;
}

RrmNetwork::Golden::Golden(const RrmNetwork& net, const activation::PlaTable& tanh_tbl,
                           const activation::PlaTable& sig_tbl)
    : net_(net), tanh_tbl_(tanh_tbl), sig_tbl_(sig_tbl) {
  reset();
}

void RrmNetwork::Golden::reset() {
  states_.clear();
  for (const Layer& layer : net_.layers_) {
    if (layer.spec.kind == LayerSpec::Kind::kLstm) {
      states_.push_back(nn::LstmStateQ{nn::VectorQ(static_cast<size_t>(layer.spec.out), 0),
                                       nn::VectorQ(static_cast<size_t>(layer.spec.out), 0)});
    }
  }
}

std::vector<std::vector<int16_t>> RrmNetwork::Golden::forward_layers(
    std::span<const int16_t> input) {
  std::vector<std::vector<int16_t>> outs;
  outs.reserve(net_.layers_.size());
  std::vector<int16_t> cur(input.begin(), input.end());
  size_t lstm_idx = 0;
  int cur_h = 0, cur_w = 0;
  for (const Layer& layer : net_.layers_) {
    switch (layer.spec.kind) {
      case LayerSpec::Kind::kFc:
        cur = nn::fc_forward_fixp(layer.fc, cur, tanh_tbl_, sig_tbl_);
        break;
      case LayerSpec::Kind::kLstm:
        cur = nn::lstm_step_fixp(layer.lstm, cur, states_[lstm_idx++], tanh_tbl_, sig_tbl_);
        break;
      case LayerSpec::Kind::kConv: {
        const int h = cur_h == 0 ? layer.spec.h : cur_h;
        const int w = cur_w == 0 ? layer.spec.w : cur_w;
        nn::Tensor3Q in_t(layer.spec.in, h, w);
        RNNASIP_CHECK(in_t.data.size() == cur.size());
        in_t.data = cur;
        const auto out_t = nn::conv2d_forward_fixp(layer.conv, in_t);
        cur = out_t.data;
        cur_h = out_t.h;
        cur_w = out_t.w;
        break;
      }
    }
    outs.push_back(cur);
  }
  return outs;
}

std::vector<int16_t> RrmNetwork::Golden::forward(std::span<const int16_t> input) {
  auto outs = forward_layers(input);
  RNNASIP_CHECK(!outs.empty());
  return std::move(outs.back());
}

}  // namespace rnnasip::rrm
