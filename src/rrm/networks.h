// The 10-network 5G-RRM benchmark suite of Sec. II-C.
//
// Topologies are reconstructed from the cited papers' descriptions (the
// exact dimensions live in the project report [34], which is not part of
// the paper); see DESIGN.md "Substitutions". Dimensions are kept even /
// multiple-of-4 where the packed kernels want them, and sized so that the
// suite reproduces the published per-network speedup behaviour: large FC
// stacks tile at ~1.8-1.9x, the tiny nets ([3] ahmed19, [33] eisen19) gain
// little, and the LSTM nets ([13] challita17, [14] naparstek17) carry a
// 10-34% tanh/sig cycle share in software.
//
// Weights are deterministic pseudo-random (seeded per network); dense-kernel
// cycle counts are data-independent, so the benchmark numbers are unchanged
// by this substitution.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/activation/pla.h"
#include "src/iss/memory.h"
#include "src/kernels/network.h"
#include "src/nn/init.h"
#include "src/nn/layers.h"

namespace rnnasip::rrm {

struct LayerSpec {
  enum class Kind { kFc, kLstm, kConv } kind = Kind::kFc;
  int in = 0;      ///< FC: inputs; LSTM: m; conv: in channels
  int out = 0;     ///< FC: outputs; LSTM: n; conv: out channels
  nn::ActKind act = nn::ActKind::kNone;
  int k = 0, h = 0, w = 0, stride = 1;  ///< conv only (h/w = input plane)

  static LayerSpec Fc(int in, int out, nn::ActKind act);
  static LayerSpec Lstm(int m, int n);
  static LayerSpec Conv(int in_ch, int out_ch, int k, int h, int w,
                        nn::ActKind act, int stride = 1);
};

struct NetworkDef {
  std::string name;       ///< e.g. "challita17"
  std::string reference;  ///< paper citation, e.g. "[13]"
  std::string type;       ///< "LSTM/FC", "FC", "CNN/FC"
  std::string task;       ///< one-line RRM task description
  std::vector<LayerSpec> layers;
};

/// The 10 networks, in the paper's Fig. 3 order:
/// [13] [14] [3] [33] [15] [12] [2] [9] [11] [17].
const std::vector<NetworkDef>& rrm_suite();

/// Look up one definition by name; throws if unknown.
const NetworkDef& find_network(const std::string& name);

/// A definition materialized with deterministic pseudo-random Q3.12
/// parameters, ready to build device programs and golden references.
class RrmNetwork {
 public:
  explicit RrmNetwork(const NetworkDef& def, uint64_t seed = 0x52414D);

  const NetworkDef& def() const { return def_; }
  int input_count() const { return input_count_; }
  int output_count() const { return output_count_; }
  bool has_lstm() const { return has_lstm_; }
  uint64_t nominal_macs() const { return nominal_macs_; }

  /// Build the device program for `level` into `mem`. A non-zero
  /// `param_base` splits read-only parameters from mutable buffers (the
  /// serving cluster shares the parameter region across cores). With
  /// `integrity` the program carries per-layer ABFT checksums + ecall
  /// yields (BuiltNetwork::checks).
  kernels::BuiltNetwork build(iss::Memory* mem, kernels::OptLevel level,
                              const activation::PlaTable& tanh_tbl,
                              const activation::PlaTable& sig_tbl,
                              int max_tile = 8, uint32_t param_base = 0,
                              bool integrity = false) const;

  /// True when every layer is FC — the topologies the batched serving path
  /// can coalesce (build_fc_batch_network).
  bool fc_only() const;
  /// Quantized FC parameters in layer order; requires fc_only().
  std::vector<const nn::FcParamsQ*> fc_params() const;

  /// Deterministic per-timestep input.
  std::vector<int16_t> make_input(int t) const;

  /// Host-side bit-exact reference execution (stateful across steps).
  class Golden {
   public:
    Golden(const RrmNetwork& net, const activation::PlaTable& tanh_tbl,
           const activation::PlaTable& sig_tbl);
    void reset();
    std::vector<int16_t> forward(std::span<const int16_t> input);
    /// Per-layer outputs of one forward pass, in device layer order — the
    /// golden oracle for the ABFT layer checks (last entry == forward()).
    std::vector<std::vector<int16_t>> forward_layers(std::span<const int16_t> input);

   private:
    const RrmNetwork& net_;
    const activation::PlaTable& tanh_tbl_;
    const activation::PlaTable& sig_tbl_;
    std::vector<nn::LstmStateQ> states_;  // one per LSTM layer
  };

 private:
  friend class Golden;
  struct Layer {
    LayerSpec spec;
    nn::FcParamsQ fc;
    nn::LstmParamsQ lstm;
    nn::ConvParamsQ conv;
  };
  NetworkDef def_;
  std::vector<Layer> layers_;
  uint64_t seed_;
  int input_count_ = 0;
  int output_count_ = 0;
  bool has_lstm_ = false;
  uint64_t nominal_macs_ = 0;
};

}  // namespace rnnasip::rrm
