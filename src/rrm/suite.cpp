#include "src/rrm/suite.h"

#include "src/common/check.h"
#include "src/iss/core.h"

namespace rnnasip::rrm {

NetRunResult run_network(const RrmNetwork& net, kernels::OptLevel level,
                         const RunOptions& opt) {
  iss::Memory mem(16u << 20);
  iss::Core core(&mem, opt.core_config);
  const auto built =
      net.build(&mem, level, core.tanh_table(), core.sig_table(), opt.max_tile);
  core.load_program(built.program);
  kernels::reset_state(mem, built);

  RrmNetwork::Golden golden(net, core.tanh_table(), core.sig_table());

  NetRunResult r;
  r.name = net.def().name;
  r.level = level;
  r.nominal_macs = built.nominal_macs * static_cast<uint64_t>(opt.timesteps);
  r.verified = true;
  for (int t = 0; t < opt.timesteps; ++t) {
    const auto input = net.make_input(t);
    const auto out = kernels::run_forward(core, mem, built, input);
    if (opt.verify) {
      const auto want = golden.forward(input);
      if (out != want) r.verified = false;
    }
  }
  r.cycles = core.stats().total_cycles();
  r.instrs = core.stats().total_instrs();
  r.stats = core.stats();
  return r;
}

SuiteResult run_suite(kernels::OptLevel level, const RunOptions& opt) {
  SuiteResult s;
  for (const auto& def : rrm_suite()) {
    RrmNetwork net(def, opt.seed);
    NetRunResult r = run_network(net, level, opt);
    s.total.merge(r.stats);
    s.total_cycles += r.cycles;
    s.total_instrs += r.instrs;
    s.total_macs += r.nominal_macs;
    s.all_verified = s.all_verified && r.verified;
    s.nets.push_back(std::move(r));
  }
  return s;
}

}  // namespace rnnasip::rrm
