#include "src/rrm/suite.h"

#include "src/rrm/engine.h"

// Legacy surface: run_network/run_suite are [[deprecated]] shims over
// rrm::Engine, kept for one release so out-of-tree callers migrate
// incrementally. Everything in-tree uses the engine directly.

namespace rnnasip::rrm {

namespace {

Engine::Config engine_config(const RunOptions& opt) {
  Engine::Config cfg;
  cfg.max_tile = opt.max_tile;
  cfg.seed = opt.seed;
  cfg.core_config = opt.core_config;
  return cfg;
}

Request to_request(const RunOptions& opt) {
  Request req;
  req.timesteps = opt.timesteps;
  req.verify = opt.verify;
  req.observe = opt.observe;
  req.timeline = opt.timeline;
  req.fault = opt.fault;
  req.watchdog_cycles = opt.watchdog_cycles;
  return req;
}

}  // namespace

NetRunResult run_network(const RrmNetwork& net, kernels::OptLevel level,
                         const RunOptions& opt) {
  Engine eng(engine_config(opt));
  Request req = to_request(opt);
  req.level = level;
  return eng.run(net, req).result;
}

SuiteResult run_suite(kernels::OptLevel level, const RunOptions& opt) {
  Engine eng(engine_config(opt));
  return eng.run_suite(level, to_request(opt));
}

}  // namespace rnnasip::rrm
