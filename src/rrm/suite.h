// Result and option types for suite execution (the runner itself is
// rrm::Engine, src/rrm/engine.h): per-network and whole-suite statistics
// behind Table I and Fig. 3.
//
// Execution is resilient: a network run that traps or is killed by the
// cycle watchdog (e.g. under an SEU campaign, see src/fault) is recorded as
// a degraded per-network result — structured trap record, decision-flip
// rate, output error statistics — and the suite carries on with the
// remaining networks instead of aborting.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/fault/fault_injector.h"
#include "src/iss/stats.h"
#include "src/kernels/opt_level.h"
#include "src/obs/profile.h"
#include "src/rrm/networks.h"

namespace rnnasip::rrm {

/// Campaign-watchdog fallback: a generous bound on one forward pass (the
/// largest suite network needs ~1M cycles at the baseline level). The
/// automatic rule derives a per-network bound from the static cycle lower
/// bound instead (analysis::campaign_watchdog, docs/FAULTS.md); this
/// constant remains the explicit-override reference and the analysis-side
/// fallback value when the bound is unavailable.
inline constexpr uint64_t kDefaultCampaignWatchdog = 20'000'000;

struct NetRunResult {
  std::string name;
  kernels::OptLevel level = kernels::OptLevel::kBaseline;
  uint64_t cycles = 0;
  uint64_t instrs = 0;
  uint64_t nominal_macs = 0;  ///< per forward pass x timesteps
  bool verified = false;      ///< outputs matched the golden model bit-exactly
  iss::ExecStats stats;
  /// Region-scoped observation (RunOptions::observe); null otherwise.
  std::shared_ptr<obs::NetObservation> obs;

  // ---- Resilience / degradation record ----
  bool completed = true;      ///< every timestep ran to ebreak
  iss::Trap trap;             ///< first fatal trap (cause kNone when completed)
  int steps_attempted = 0;
  int steps_completed = 0;
  uint64_t faults_injected = 0;
  /// Fraction of completed timesteps whose decision (argmax of the output
  /// vector; value equality for scalar outputs) differed from the golden
  /// model. The RRM-level metric: a flipped decision is a wrong RRM action.
  double decision_flip_rate = 0.0;
  /// Pointwise device-vs-golden output error (dequantized) over completed
  /// timesteps.
  ErrorStats output_error;

  bool degraded() const { return !completed || !verified; }
};

struct SuiteResult {
  std::vector<NetRunResult> nets;  ///< suite order, one entry per network
  iss::ExecStats total;            ///< merged over the suite
  uint64_t total_cycles = 0;
  uint64_t total_instrs = 0;
  uint64_t total_macs = 0;
  bool all_verified = true;
  int nets_completed = 0;          ///< ran every timestep to ebreak
  int nets_degraded = 0;           ///< trapped, watchdog-killed, or diverged
  uint64_t faults_injected = 0;
};

}  // namespace rnnasip::rrm
