// Suite runner: executes RRM networks on the simulated core at a chosen
// optimization level, verifying device outputs against the golden model and
// collecting the statistics behind Table I and Fig. 3.
#pragma once

#include <string>
#include <vector>

#include "src/iss/stats.h"
#include "src/kernels/opt_level.h"
#include "src/rrm/networks.h"

namespace rnnasip::rrm {

struct RunOptions {
  int timesteps = 1;      ///< forward passes (LSTM state persists across them)
  int max_tile = 8;
  bool verify = true;     ///< compare device outputs against the golden model
  uint64_t seed = 0x52414D;
  /// Core configuration (timing-model knobs, activation-unit design point).
  iss::Core::Config core_config;
};

struct NetRunResult {
  std::string name;
  kernels::OptLevel level = kernels::OptLevel::kBaseline;
  uint64_t cycles = 0;
  uint64_t instrs = 0;
  uint64_t nominal_macs = 0;  ///< per forward pass x timesteps
  bool verified = false;      ///< outputs matched the golden model bit-exactly
  iss::ExecStats stats;
};

/// Run one network at one level for opt.timesteps forward passes.
NetRunResult run_network(const RrmNetwork& net, kernels::OptLevel level,
                         const RunOptions& opt = {});

struct SuiteResult {
  std::vector<NetRunResult> nets;  ///< suite order
  iss::ExecStats total;            ///< merged over the suite
  uint64_t total_cycles = 0;
  uint64_t total_instrs = 0;
  uint64_t total_macs = 0;
  bool all_verified = true;
};

/// Run the whole 10-network suite at one level.
SuiteResult run_suite(kernels::OptLevel level, const RunOptions& opt = {});

}  // namespace rnnasip::rrm
