#include "src/rrm/wmmse.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace rnnasip::rrm {

WmmseResult wmmse(const InterferenceField& field, const WmmseOptions& opt) {
  const int k = field.pair_count();
  RNNASIP_CHECK(k > 0 && opt.p_max > 0 && opt.noise > 0);

  // Amplitude-domain gains h[i][j] = sqrt(g[i][j]).
  std::vector<double> h(static_cast<size_t>(k) * k);
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < k; ++j)
      h[static_cast<size_t>(i) * k + j] = std::sqrt(field.gain(i, j));
  auto hij = [&](int i, int j) { return h[static_cast<size_t>(i) * k + j]; };

  WmmseResult res;
  std::vector<double> v(static_cast<size_t>(k), std::sqrt(opt.p_max));
  if (!opt.initial_powers.empty()) {
    RNNASIP_CHECK(static_cast<int>(opt.initial_powers.size()) == k);
    for (int i = 0; i < k; ++i) {
      // Clamp away from zero: v = 0 is a fixed point of the update.
      const double p =
          std::min(opt.p_max, std::max(1e-6 * opt.p_max, opt.initial_powers[i]));
      v[static_cast<size_t>(i)] = std::sqrt(p);
    }
  }
  std::vector<double> u(static_cast<size_t>(k), 0.0);
  std::vector<double> w(static_cast<size_t>(k), 1.0);

  auto powers = [&] {
    std::vector<double> p(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) p[i] = v[i] * v[i];
    return p;
  };

  double prev_rate = -1.0;
  for (int it = 0; it < opt.max_iterations; ++it) {
    // u_i = h_ii v_i / (sigma2 + sum_j h_ij^2 v_j^2)
    for (int i = 0; i < k; ++i) {
      double denom = opt.noise;
      for (int j = 0; j < k; ++j) {
        denom += hij(i, j) * hij(i, j) * v[j] * v[j];
        res.flops += 3;
      }
      u[i] = hij(i, i) * v[i] / denom;
      res.flops += 2;
    }
    // w_i = 1 / (1 - u_i h_ii v_i)
    for (int i = 0; i < k; ++i) {
      const double e = 1.0 - u[i] * hij(i, i) * v[i];
      w[i] = 1.0 / std::max(1e-12, e);
      res.flops += 3;
    }
    // v_i = w_i u_i h_ii / (sum_j w_j u_j^2 h_ji^2), clipped to [0, sqrt(Pmax)]
    for (int i = 0; i < k; ++i) {
      double denom = 0;
      for (int j = 0; j < k; ++j) {
        denom += w[j] * u[j] * u[j] * hij(j, i) * hij(j, i);
        res.flops += 4;
      }
      double vi = denom > 0 ? w[i] * u[i] * hij(i, i) / denom : std::sqrt(opt.p_max);
      vi = std::min(std::max(vi, 0.0), std::sqrt(opt.p_max));
      v[i] = vi;
      res.flops += 3;
    }
    const double rate = field.sum_rate(powers(), opt.noise);
    res.rate_trace.push_back(rate);
    res.iterations = it + 1;
    if (prev_rate >= 0 && std::abs(rate - prev_rate) < opt.tolerance) break;
    prev_rate = rate;
  }
  res.powers = powers();
  return res;
}

}  // namespace rnnasip::rrm
