// Scalar WMMSE power allocation (Shi et al. [4]) — the classical iterative
// RRM algorithm the paper positions NN inference against (Sec. I: iterative
// methods with per-iteration complex operations cannot meet millisecond
// 5G-RRM deadlines; NNs amortize the optimization into one forward pass).
//
// This is the SISO interference-channel variant: K transmitter-receiver
// pairs with power gains g[i][j], per-pair power budget p_max, noise sigma2.
// Each iteration updates receiver coefficients u, MSE weights w, and
// transmit amplitudes v in closed form; the sum-rate is non-decreasing to a
// stationary point of the weighted sum-rate problem.
#pragma once

#include <vector>

#include "src/rrm/env.h"

namespace rnnasip::rrm {

struct WmmseResult {
  std::vector<double> powers;       ///< final per-pair transmit powers
  std::vector<double> rate_trace;   ///< sum-rate after each iteration
  int iterations = 0;
  /// Multiply-accumulate count actually performed — the compute-cost side
  /// of the classical-vs-NN comparison.
  uint64_t flops = 0;
};

struct WmmseOptions {
  int max_iterations = 100;
  double p_max = 1.0;
  double noise = 1e-3;
  /// Stop when the sum-rate improves by less than this (absolute).
  double tolerance = 1e-5;
  /// Warm start: initial per-pair powers (clamped to (0, p_max]); empty
  /// means full power. The closed-loop scenario engine seeds each TTI's
  /// oracle from the previous allocation — fading moves slowly, so the
  /// iteration converges in a fraction of the cold-start count.
  std::vector<double> initial_powers;
};

/// Run WMMSE on an interference field, starting from full power (or from
/// `opt.initial_powers` when given).
WmmseResult wmmse(const InterferenceField& field, const WmmseOptions& opt = {});

}  // namespace rnnasip::rrm
