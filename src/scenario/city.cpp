#include "src/scenario/city.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/rrm/wmmse.h"

namespace rnnasip::scenario {

namespace {

constexpr double kTwoPi = 6.283185307179586;

/// Knuth Poisson sampler — exact, a handful of uniform draws at the small
/// rates the city uses (rate is clamped to City::kMaxRate).
int draw_poisson(Rng& rng, double rate) {
  const double l = std::exp(-rate);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.next_double();
  } while (p > l);
  return k - 1;
}

}  // namespace

double DiurnalCurve::at(int tti) const {
  RNNASIP_CHECK(period_ttis > 0);
  const double mid = 0.5 * (peak + floor);
  const double amp = 0.5 * (peak - floor);
  const double phase =
      kTwoPi * static_cast<double>(tti - phase_ttis) / period_ttis;
  return mid + amp * std::cos(phase);
}

City::City(const CityConfig& cfg)
    : cfg_(cfg), traffic_rng_(derive_stream(cfg.seed, 0)) {
  RNNASIP_CHECK(cfg_.cells > 0 && cfg_.pairs > 0 && cfg_.channels > 0);
  RNNASIP_CHECK(cfg_.power_decay >= 0 && cfg_.power_decay <= 1);
  RNNASIP_CHECK(cfg_.p_max > 0 && cfg_.noise > 0);
  values_ = cfg_.cell_values;
  if (values_.empty()) {
    for (int c = 0; c < cfg_.cells; ++c) values_.push_back(1.0 + c);
  }
  RNNASIP_CHECK(static_cast<int>(values_.size()) == cfg_.cells);
  cells_.reserve(static_cast<size_t>(cfg_.cells));
  for (int c = 0; c < cfg_.cells; ++c) {
    // Each cell's environment derives from its own stream of the city
    // seed: geometry, fading and occupancy are independent across cells.
    const uint64_t cell_seed = derive_stream(cfg_.seed, 1 + static_cast<uint64_t>(c));
    cells_.push_back(Cell{
        rrm::InterferenceField(cfg_.pairs, cell_seed),
        rrm::GilbertElliottChannels(cfg_.channels, cell_seed),
        std::vector<double>(static_cast<size_t>(cfg_.pairs), cfg_.p_max),
        {},
        false,
        0,
        0.0,
    });
  }
}

const City::Cell& City::cell(int c) const {
  RNNASIP_CHECK(c >= 0 && c < cell_count());
  return cells_[static_cast<size_t>(c)];
}

City::Cell& City::cell(int c) {
  RNNASIP_CHECK(c >= 0 && c < cell_count());
  return cells_[static_cast<size_t>(c)];
}

std::vector<int> City::draw_arrivals(int tti) {
  const double day = cfg_.diurnal.at(tti);
  // Crowd transitions first (one draw per cell per TTI, fixed order), so
  // the arrival draws that follow see this TTI's crowd state.
  for (int c = 0; c < cell_count(); ++c) {
    Cell& cl = cell(c);
    const double u = traffic_rng_.next_double();
    if (cl.crowded) {
      if (u < cfg_.flash.p_quench) {
        cl.crowded = false;
        // The crowd hands over: the next cell inherits a fraction of the
        // surge for a window.
        Cell& next = cell((c + 1) % cell_count());
        next.handover_until = std::max(next.handover_until,
                                       tti + cfg_.handover.window_ttis);
      }
    } else if (u < cfg_.flash.p_ignite) {
      cl.crowded = true;
    }
  }
  std::vector<int> arrivals(static_cast<size_t>(cell_count()), 0);
  for (int c = 0; c < cell_count(); ++c) {
    Cell& cl = cell(c);
    double rate = cfg_.base_rate * day;
    if (cl.crowded) rate *= cfg_.flash.multiplier;
    if (tti < cl.handover_until) {
      rate *= 1.0 + cfg_.handover.fraction * (cfg_.flash.multiplier - 1.0);
    }
    for (const Surge& s : cfg_.surges) {
      if (s.cell == c && tti >= s.from_tti && tti < s.to_tti) {
        rate *= s.multiplier;
      }
    }
    rate = std::min(rate, kMaxRate);
    cl.last_rate = rate;
    arrivals[static_cast<size_t>(c)] = draw_poisson(traffic_rng_, rate);
  }
  return arrivals;
}

double City::offered_rate(int cell_index) const { return cell(cell_index).last_rate; }

bool City::crowded(int cell_index) const { return cell(cell_index).crowded; }

double City::storm_multiplier(int cell_index, int tti) const {
  RNNASIP_CHECK(cell_index >= 0 && cell_index < cell_count());
  double mult = 1.0;
  for (const FaultStorm& s : cfg_.storms) {
    if (s.cell == cell_index && tti >= s.from_tti && tti < s.to_tti) {
      mult *= s.multiplier;
    }
  }
  return mult;
}

bool City::in_stress(int cell_index, int tti) const {
  RNNASIP_CHECK(cell_index >= 0 && cell_index < cell_count());
  for (const FaultStorm& s : cfg_.storms) {
    if (s.cell == cell_index && tti >= s.from_tti && tti < s.to_tti) return true;
  }
  for (const Surge& s : cfg_.surges) {
    if (s.cell == cell_index && tti >= s.from_tti && tti < s.to_tti) return true;
  }
  return false;
}

bool City::any_stress(int tti) const {
  for (int c = 0; c < cell_count(); ++c) {
    if (in_stress(c, tti)) return true;
  }
  return false;
}

int City::stress_end_tti() const {
  int end = -1;
  for (const FaultStorm& s : cfg_.storms) end = std::max(end, s.to_tti);
  for (const Surge& s : cfg_.surges) end = std::max(end, s.to_tti);
  return end;
}

std::vector<double> City::observe(int cell_index, int n) const {
  RNNASIP_CHECK(n > 0);
  const Cell& cl = cell(cell_index);
  std::vector<double> base = cl.field.direct_gains_normalized();
  const std::vector<double> occ = cl.channels.observation();
  base.insert(base.end(), occ.begin(), occ.end());
  std::vector<double> out(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out[static_cast<size_t>(i)] = base[i % base.size()];
  return out;
}

void City::apply_decision(int cell_index, std::span<const int16_t> outputs) {
  RNNASIP_CHECK(!outputs.empty());
  Cell& cl = cell(cell_index);
  for (int i = 0; i < cfg_.pairs; ++i) {
    // Sigmoid outputs live in [0, 1] in Q3.12; clamp defensively (a
    // verified decision can still legitimately sit at the 0/4096 rails).
    const double frac = std::clamp(
        static_cast<double>(outputs[static_cast<size_t>(i) % outputs.size()]) /
            4096.0,
        0.0, 1.0);
    cl.powers[static_cast<size_t>(i)] = frac * cfg_.p_max;
  }
}

void City::carry_stale(int cell_index) {
  for (double& p : cell(cell_index).powers) p *= cfg_.power_decay;
}

double City::achieved_rate(int cell_index) const {
  const Cell& cl = cell(cell_index);
  // Busy primary users raise the effective noise floor: occupancy couples
  // the Gilbert-Elliott state into the rate the cell actually gets.
  int busy = 0;
  for (int ch = 0; ch < cfg_.channels; ++ch) busy += cl.channels.busy(ch) ? 1 : 0;
  const double noise =
      cfg_.noise * (1.0 + static_cast<double>(busy) / cfg_.channels);
  return cl.field.sum_rate(cl.powers, noise);
}

double City::oracle_rate(int cell_index) {
  Cell& cl = cell(cell_index);
  int busy = 0;
  for (int ch = 0; ch < cfg_.channels; ++ch) busy += cl.channels.busy(ch) ? 1 : 0;
  const double noise =
      cfg_.noise * (1.0 + static_cast<double>(busy) / cfg_.channels);
  rrm::WmmseOptions opt;
  opt.p_max = cfg_.p_max;
  opt.noise = noise;
  opt.initial_powers = cl.oracle_powers;  // warm start; empty on first call
  const rrm::WmmseResult res = rrm::wmmse(cl.field, opt);
  cl.oracle_powers = res.powers;
  return cl.field.sum_rate(res.powers, noise);
}

void City::step_env(int cell_index, double rate_deficit) {
  RNNASIP_CHECK(rate_deficit >= 0 && rate_deficit <= 1);
  Cell& cl = cell(cell_index);
  cl.channels.step(cfg_.congestion_gain * rate_deficit);
  cl.field.refade(cfg_.refade_sigma);
}

const std::vector<double>& City::powers(int cell_index) const {
  return cell(cell_index).powers;
}

}  // namespace rnnasip::scenario
