// City model for the closed-loop RRM scenario engine: a set of cells, each
// owning its own radio environment (an rrm::InterferenceField of
// transmitter-receiver pairs plus rrm::GilbertElliottChannels primary-user
// occupancy), generating *correlated* decision-request traffic:
//
//   - a diurnal curve modulating every cell's base rate over the day;
//   - per-cell Markov-modulated flash crowds (calm <-> crowded, a crowded
//     cell offers `multiplier`x its calm rate);
//   - handover bursts: when a crowd quenches, the next cell inherits a
//     fraction of the surge for a window (the crowd moved, it didn't
//     vanish);
//   - scripted surges and per-cell, time-windowed *fault storms* that
//     multiply the SEU rates of the cores serving that cell.
//
// The closed loop: each TTI the serving side either applies a fresh
// verified RNN decision to a cell (sigmoid Q3.12 outputs become per-pair
// transmit powers) or the cell carries decayed stale powers; the achieved
// sum-rate is scored against the warm-started rrm::wmmse oracle on the
// *same* faded field, and the rate deficit feeds back into channel
// occupancy pressure (a congested cell's primary users grab more channels,
// which degrades the next observation — degraded decisions compound).
//
// Determinism: traffic, geometry, fading and occupancy each draw from
// derive_stream()-separated streams of one seed, so the whole city — and
// every bench built on it — is byte-reproducible from `CityConfig::seed`.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/rrm/env.h"

namespace rnnasip::scenario {

/// Sinusoidal day curve: rate multiplier between `floor` and `peak` with
/// the given period, peaking at phase_ttis.
struct DiurnalCurve {
  double floor = 0.5;
  double peak = 1.0;
  int period_ttis = 64;
  int phase_ttis = 16;
  double at(int tti) const;
};

/// Two-state Markov flash-crowd modulation per cell.
struct FlashCrowdModel {
  double p_ignite = 0.02;  ///< calm -> crowded per TTI
  double p_quench = 0.25;  ///< crowded -> calm per TTI
  double multiplier = 3.0; ///< offered-rate multiplier while crowded
};

/// When a crowd quenches on cell c, cell (c+1) % cells inherits
/// `fraction` of the surge for `window_ttis` TTIs (UEs handed over).
struct HandoverModel {
  int window_ttis = 4;
  double fraction = 0.5;
};

/// Scripted surge: a deterministic flash crowd on one cell over
/// [from_tti, to_tti) — the acceptance storms are scripted so the
/// overload/fault overlap is guaranteed, not left to the Markov draw.
struct Surge {
  int cell = 0;
  int from_tti = 0;
  int to_tti = 0;       ///< exclusive
  double multiplier = 1.0;
};

/// Fault storm: SEU rate multiplier on every execution dispatched for
/// `cell` during [from_tti, to_tti).
struct FaultStorm {
  int cell = 0;
  int from_tti = 0;
  int to_tti = 0;       ///< exclusive
  double multiplier = 1.0;
};

struct CityConfig {
  int cells = 8;
  int pairs = 4;     ///< transmitter-receiver pairs per cell
  int channels = 4;  ///< Gilbert-Elliott channels per cell
  /// Mean decision requests per cell per TTI at diurnal multiplier 1,
  /// calm. Offered load is Poisson at the correlated per-cell rate.
  double base_rate = 1.0;
  DiurnalCurve diurnal;
  FlashCrowdModel flash;
  HandoverModel handover;
  std::vector<Surge> surges;
  std::vector<FaultStorm> storms;
  /// Per-cell value for brownout shed ordering and value-weighted scoring;
  /// empty = cell i gets value 1 + i (later cells more valuable).
  std::vector<double> cell_values;
  double refade_sigma = 0.3;    ///< per-TTI block-fading sigma (dB-scale)
  double congestion_gain = 0.25;///< rate deficit -> channel busy pressure
  double power_decay = 0.7;     ///< stale power multiplier per TTI
  double p_max = 1.0;
  double noise = 1e-3;
  uint64_t seed = 0x5C3A11;
};

/// The city: per-cell radio state + correlated traffic generation.
class City {
 public:
  explicit City(const CityConfig& cfg);

  int cell_count() const { return static_cast<int>(cells_.size()); }
  const CityConfig& config() const { return cfg_; }
  const std::vector<double>& values() const { return values_; }

  // --- Traffic ---------------------------------------------------------
  /// Advance the flash-crowd chains and handover windows to `tti` and
  /// draw this TTI's per-cell decision-request counts (Poisson at the
  /// correlated rate; the rate is clamped to kMaxRate to bound work).
  std::vector<int> draw_arrivals(int tti);
  /// The per-cell rate used by the last draw_arrivals call.
  double offered_rate(int cell) const;
  bool crowded(int cell) const;
  /// SEU rate multiplier for an execution serving `cell` at `tti`
  /// (1.0 outside every storm window; overlapping storms multiply).
  double storm_multiplier(int cell, int tti) const;
  /// True when (cell, tti) sits inside a fault storm or scripted surge —
  /// the "stress window" selector for storm-vs-calm scoring.
  bool in_stress(int cell, int tti) const;
  bool any_stress(int tti) const;
  /// Last TTI (exclusive) covered by any storm or surge; -1 when none.
  int stress_end_tti() const;

  // --- Radio state / closed loop ---------------------------------------
  /// Observation for the decision network: per-pair normalized direct
  /// gains then channel occupancy (+/-1), cycled to `n` entries.
  std::vector<double> observe(int cell, int n) const;
  /// Apply a fresh verified decision: sigmoid Q3.12 outputs map to
  /// per-pair power fractions of p_max (output j drives pair j mod pairs).
  void apply_decision(int cell, std::span<const int16_t> outputs);
  /// No fresh decision this TTI: powers decay by power_decay (a stale
  /// grant ramps down — missed decisions compound through the feedback).
  void carry_stale(int cell);
  /// Sum-rate of the currently applied powers on the current field, with
  /// occupancy-coupled noise.
  double achieved_rate(int cell) const;
  /// Warm-started WMMSE oracle rate on the same field and noise (caches
  /// its powers as the next TTI's warm start).
  double oracle_rate(int cell);
  /// End-of-TTI environment evolution: occupancy steps under congestion
  /// pressure (congestion_gain x rate deficit), then the field refades.
  void step_env(int cell, double rate_deficit);

  const std::vector<double>& powers(int cell) const;

  /// Offered-rate clamp (requests per cell per TTI) bounding Poisson work.
  static constexpr double kMaxRate = 32.0;

 private:
  struct Cell {
    rrm::InterferenceField field;
    rrm::GilbertElliottChannels channels;
    std::vector<double> powers;         ///< currently applied (linear)
    std::vector<double> oracle_powers;  ///< last WMMSE solution (warm start)
    bool crowded = false;
    int handover_until = 0;  ///< exclusive TTI bound of inherited surge
    double last_rate = 0.0;
  };

  const Cell& cell(int c) const;
  Cell& cell(int c);

  CityConfig cfg_;
  std::vector<Cell> cells_;
  std::vector<double> values_;
  Rng traffic_rng_;  ///< crowd transitions + Poisson arrival draws
};

}  // namespace rnnasip::scenario
