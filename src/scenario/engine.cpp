#include "src/scenario/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "src/common/check.h"
#include "src/common/fixed_point.h"
#include "src/integrity/integrity.h"
#include "src/kernels/network.h"

namespace rnnasip::scenario {

namespace {

/// One pending decision request.
struct Req {
  uint64_t id = 0;
  int cell = 0;
  uint64_t arrival = 0;
  uint64_t deadline = 0;
  uint64_t ready = 0;  ///< arrival, or retry-backoff release time
  int attempts = 0;
  std::vector<int16_t> input;
  integrity::GoldenChecks golden;  ///< computed once per request
};

/// Freshest verified completion for one cell (latest done wins).
struct Fresh {
  uint64_t done = 0;
  uint64_t id = 0;
  std::vector<int16_t> outputs;
};

void keep_freshest(std::optional<Fresh>& slot, Fresh candidate) {
  if (!slot || candidate.done > slot->done ||
      (candidate.done == slot->done && candidate.id > slot->id)) {
    slot = std::move(candidate);
  }
}

}  // namespace

ScenarioEngine::ScenarioEngine(const ScenarioConfig& cfg) : cfg_(cfg) {
  RNNASIP_CHECK(cfg_.cores > 0 && cfg_.ttis > 0);
  RNNASIP_CHECK(cfg_.tti_cycles_factor > 0 && cfg_.deadline_slack_ttis > 0);
  serve::ClusterConfig cc;
  cc.cores = cfg_.cores;
  cc.level = cfg_.level;
  cc.fallback_level = cfg_.fallback_level;
  cc.batch = 1;
  // ABFT-instrumented single flavors at every level: CheckedRun needs the
  // layer-boundary yields for detection and rollback.
  cc.integrity = cfg_.integrity_detect;
  cluster_ = std::make_unique<serve::Cluster>(
      cc, std::vector<std::string>{cfg_.network});
  tti_cycles_ = static_cast<uint64_t>(
      cfg_.tti_cycles_factor *
      static_cast<double>(cluster_->estimated_single_cycles(cfg_.network)));
  RNNASIP_CHECK(tti_cycles_ > 0);
}

ScenarioResult ScenarioEngine::run() {
  City city(cfg_.city);
  const int cells = city.cell_count();
  const rrm::RrmNetwork& net = cluster_->network(cfg_.network);
  const int input_n = net.input_count();
  const uint64_t T = tti_cycles_;
  const uint64_t slack =
      static_cast<uint64_t>(cfg_.deadline_slack_ttis * static_cast<double>(T));

  serve::BrownoutController brownout(cfg_.brownout_cfg, city.values());
  const bool faults_on = cfg_.base_fault.any_enabled();

  // Independent streams: request arrival offsets, observation jitter,
  // per-execution fault campaigns. Adding draws to one can never shift
  // the others (or the city's own streams).
  Rng offset_rng(derive_stream(cfg_.seed, 0));
  Rng jitter_rng(derive_stream(cfg_.seed, 1));
  const uint64_t fault_seed = derive_stream(cfg_.seed, 2);
  uint64_t exec_counter = 0;
  uint64_t next_id = 1;

  std::vector<uint64_t> clock(static_cast<size_t>(cfg_.cores), 0);
  std::vector<int> consec_fail(static_cast<size_t>(cfg_.cores), 0);
  std::vector<Req> pending;
  std::vector<std::optional<Fresh>> fresh(static_cast<size_t>(cells));
  std::vector<std::optional<Fresh>> fresh_next(static_cast<size_t>(cells));

  // Serving capacity in executions per TTI, total and per-cell share —
  // the denominator of the published pressure gauges.
  const double est_primary =
      static_cast<double>(cluster_->estimated_single_cycles(cfg_.network));
  const double cap_total = static_cast<double>(T) * cfg_.cores / est_primary;
  const double cap_cell = cap_total / cells;

  ScenarioResult r;
  r.stress_end_tti = city.stress_end_tti();
  r.ttis.reserve(static_cast<size_t>(cfg_.ttis));

  for (int tti = 0; tti < cfg_.ttis; ++tti) {
    const uint64_t t0 = static_cast<uint64_t>(tti) * T;
    const uint64_t t1 = t0 + T;
    TtiRecord rec;
    rec.tti = tti;
    rec.stress = city.any_stress(tti);

    // ---- Arrivals: correlated offered load, shed cells dropped at the
    // door (their radio state rides on decayed powers).
    const std::vector<int> arrivals = city.draw_arrivals(tti);
    for (int c = 0; c < cells; ++c) {
      rec.offered += city.offered_rate(c);
      const std::string cell_tag = "cell" + std::to_string(c);
      for (int k = 0; k < arrivals[static_cast<size_t>(c)]; ++k) {
        ++r.requests;
        ++rec.arrivals;
        if (cfg_.brownout && brownout.shed(c)) {
          ++r.shed_rejected;
          ++rec.shed;
          r.metrics.counter(cell_tag + ".shed").inc();
          continue;
        }
        Req q;
        q.id = next_id++;
        q.cell = c;
        q.arrival = t0 + offset_rng.next_below(static_cast<uint32_t>(T));
        q.deadline = q.arrival + slack;
        q.ready = q.arrival;
        // Observation snapshot + per-UE-group jitter, quantized Q3.12.
        const std::vector<double> obs = city.observe(c, input_n);
        q.input.reserve(obs.size());
        for (double v : obs) {
          const double jittered =
              v + jitter_rng.next_in(-cfg_.obs_jitter, cfg_.obs_jitter);
          q.input.push_back(static_cast<int16_t>(quantize(
              std::clamp(jittered, -7.9, 7.9))));
        }
        q.golden = integrity::golden_checks(net, cluster_->tanh_table(),
                                            cluster_->sig_table(), q.input);
        pending.push_back(std::move(q));
      }
    }

    // ---- Serving loop over [t0, t1): EDF + storm-hardened provable
    // admission + retries + quarantine, CheckedRun per execution.
    for (;;) {
      // Earliest-free core still inside this TTI (ties: lowest index).
      int ci = -1;
      for (int i = 0; i < cfg_.cores; ++i) {
        if (clock[static_cast<size_t>(i)] >= t1) continue;
        if (ci < 0 ||
            clock[static_cast<size_t>(i)] < clock[static_cast<size_t>(ci)]) {
          ci = i;
        }
      }
      if (ci < 0 || pending.empty()) break;
      uint64_t now = std::max(clock[static_cast<size_t>(ci)], t0);

      // EDF over ready requests; if none is ready yet, idle the core
      // forward to the next release (or out of the TTI).
      size_t pick = pending.size();
      uint64_t min_ready = std::numeric_limits<uint64_t>::max();
      for (size_t i = 0; i < pending.size(); ++i) {
        const Req& q = pending[i];
        min_ready = std::min(min_ready, q.ready);
        if (q.ready > now) continue;
        if (pick == pending.size() || q.deadline < pending[pick].deadline ||
            (q.deadline == pending[pick].deadline && q.id < pending[pick].id)) {
          pick = i;
        }
      }
      if (pick == pending.size()) {
        if (min_ready >= t1) break;
        clock[static_cast<size_t>(ci)] = std::max(now, min_ready);
        continue;
      }

      Req q = std::move(pending[pick]);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
      const int c = q.cell;

      // Brownout gate at dispatch: the cell may have shed after arrival.
      const serve::ServiceLevel slevel =
          cfg_.brownout ? brownout.level(c) : serve::ServiceLevel::kNormal;
      if (slevel == serve::ServiceLevel::kShed) {
        ++r.shed_rejected;
        ++rec.shed;
        r.metrics.counter("cell" + std::to_string(c) + ".shed").inc();
        continue;
      }
      const bool economy = slevel >= serve::ServiceLevel::kEconomy;
      const kernels::OptLevel level = economy ? cfg_.fallback_level : cfg_.level;

      // Storm-hardened admission charge: a sound upper bound on the cycles
      // a *successful* attempt can consume. Fault-free executions finish
      // within the certified WCET; a faulted execution with rollback can
      // re-execute each layer up to layer_retries times (<= WCET x
      // (1 + layer_retries) total) and is hard-capped by the campaign
      // watchdog either way — the tighter of the two bounds is charged,
      // then widened by the brownout margin (>= 1 only tightens admission,
      // so kProvable stays a guarantee under storm multipliers too).
      const uint64_t wcet = cfg_.admission == serve::Admission::kProvable
                                ? cluster_->provable_single_cycles(cfg_.network, level)
                                : cluster_->estimated_single_cycles(cfg_.network, level);
      uint64_t bounded = wcet;
      if (faults_on) {
        const uint64_t wd = cluster_->watchdog_cycles(cfg_.network, level);
        if (cfg_.integrity_rollback) {
          bounded = wcet * static_cast<uint64_t>(1 + cfg_.layer_retries);
        }
        if (wd > 0) bounded = std::min(bounded, wd);
        bounded = std::max(bounded, wcet);
      }
      const double margin = cfg_.brownout ? brownout.admission_margin(c) : 1.0;
      const uint64_t charge =
          static_cast<uint64_t>(std::ceil(static_cast<double>(bounded) * margin));
      if (now + charge > q.deadline) {
        ++r.admission_rejected;
        ++rec.rejected;
        continue;
      }

      // ---- Execute on core ci at `now` via CheckedRun (run to
      // completion; rollbacks happen inside step()).
      const double storm_mult = city.storm_multiplier(c, tti);
      cluster_->bind(ci, cfg_.network, false, level);
      const kernels::BuiltNetwork& bn = cluster_->built_single(cfg_.network, level);
      integrity::CheckedRunConfig rc;
      rc.detect = cfg_.integrity_detect;
      rc.rollback = cfg_.integrity_rollback;
      rc.layer_retries = cfg_.layer_retries;
      rc.watchdog_cycles =
          faults_on ? cluster_->watchdog_cycles(cfg_.network, level) : 0;
      integrity::CheckedRun run(&cluster_->backend(ci, faults_on),
                                &cluster_->memory(ci), &bn, rc);
      if (rc.detect) run.set_golden(q.golden);
      run.begin(q.input);
      std::unique_ptr<fault::FaultInjector> injector;
      if (faults_on) {
        fault::FaultSpec spec = cfg_.base_fault;
        for (double& rate : spec.rate) rate *= storm_mult;
        spec.seed = derive_stream(fault_seed, exec_counter);
        if (spec.tcdm.empty()) {
          spec.tcdm = {kernels::kDataBase, kernels::kDataBase + bn.data_bytes};
        }
        spec.text = {};
        injector = std::make_unique<fault::FaultInjector>(spec);
        injector->arm(&cluster_->core(ci), &cluster_->memory(ci));
      }
      ++exec_counter;
      while (run.step() == integrity::CheckedRun::State::kBoundary) {
      }
      if (injector) injector->disarm();
      if (faults_on) cluster_->scrub_pla(ci);

      const uint64_t done = now + run.cycles();
      clock[static_cast<size_t>(ci)] = done;
      r.integrity_detections += run.counters().detections;
      r.integrity_rollbacks += run.counters().rollbacks;

      // A completed run retired ebreak without an integrity escalation and
      // read back the output block; anything else is an attempt failure.
      bool success = !run.integrity_failed() &&
                     run.last_result().exit == iss::RunResult::Exit::kEbreak &&
                     !run.outputs().empty();

      if (success && run.outputs() != q.golden.outputs.back()) {
        // Final golden firewall: ABFT passed but the served bytes differ
        // from the host reference (fold collision). Blocked here — the
        // decision never reaches the city.
        ++r.corrupted_blocked;
        success = false;
      }

      if (success) {
        consec_fail[static_cast<size_t>(ci)] = 0;
        ++r.served;
        ++rec.served;
        if (economy) {
          ++r.served_fallback;
          ++rec.served_fallback;
        }
        if (done > q.deadline) ++r.deadline_misses_admitted;
        r.metrics.counter("cell" + std::to_string(c) + ".served").inc();
        Fresh f{done, q.id, run.outputs()};
        if (done <= t1) {
          keep_freshest(fresh[static_cast<size_t>(c)], std::move(f));
        } else {
          keep_freshest(fresh_next[static_cast<size_t>(c)], std::move(f));
        }
        continue;
      }

      // Failure: trap, watchdog kill, integrity escalation, or firewall
      // block. Request retry ladder + core quarantine, as the scheduler.
      ++r.exec_failures;
      int& fails = consec_fail[static_cast<size_t>(ci)];
      ++fails;
      ++q.attempts;
      if (q.attempts > cfg_.max_retries) {
        ++r.failed;
      } else {
        ++r.retries;
        q.ready = done + static_cast<uint64_t>(q.attempts) * cfg_.retry_backoff_cycles;
        pending.push_back(std::move(q));
      }
      if (fails >= cfg_.quarantine_threshold) {
        ++r.quarantines;
        clock[static_cast<size_t>(ci)] = done + cfg_.quarantine_cooldown_cycles;
        fails = 0;
      }
    }

    // ---- TTI boundary: apply decisions, score, publish, evaluate.
    for (int c = 0; c < cells; ++c) {
      std::optional<Fresh>& slot = fresh[static_cast<size_t>(c)];
      if (slot) {
        // Structurally golden-verified above; count what reaches the env.
        city.apply_decision(c, slot->outputs);
        ++rec.fresh_cells;
      } else {
        city.carry_stale(c);
      }
      slot.reset();
    }
    std::swap(fresh, fresh_next);

    double backlog_total = 0;
    for (int c = 0; c < cells; ++c) {
      const double a = city.achieved_rate(c);
      const double o = city.oracle_rate(c);
      const double v = city.values()[static_cast<size_t>(c)];
      r.achieved_total += a;
      r.oracle_total += o;
      r.weighted_achieved += v * a;
      r.weighted_oracle += v * o;
      // Stress split is a *time* window over the whole city: during a surge
      // or storm TTI the degradation can land anywhere (shed low-value
      // cells, admission-rejected calm cells), so the ISSUE's "aggregate
      // sum-rate during the storm" is the city-wide sum over stress TTIs.
      if (rec.stress) {
        r.stress_achieved += a;
        r.stress_oracle += o;
      } else {
        r.calm_achieved += a;
        r.calm_oracle += o;
      }
      rec.achieved += a;
      rec.oracle += o;

      int backlog = 0;
      for (const Req& q : pending) backlog += (q.cell == c) ? 1 : 0;
      backlog_total += backlog;
      const double pressure = static_cast<double>(backlog) / cap_cell;
      r.metrics.gauge("cell" + std::to_string(c) + ".pressure_x1000")
          .set(static_cast<int64_t>(pressure * 1000.0));

      // Environment evolution under congestion feedback: the rate deficit
      // a cell actually suffered raises its channels' busy pressure.
      const double deficit =
          o > 0 ? std::clamp(1.0 - a / o, 0.0, 1.0) : 0.0;
      city.step_env(c, deficit);
    }
    r.metrics.gauge("cluster.pressure_x1000")
        .set(static_cast<int64_t>(backlog_total / cap_total * 1000.0));

    if (cfg_.brownout) {
      brownout.evaluate(r.metrics, static_cast<uint64_t>(tti));
      for (int c = 0; c < cells; ++c) {
        ++rec.level_counts[static_cast<int>(brownout.level(c))];
      }
      if (r.stress_end_tti >= 0 && tti >= r.stress_end_tti &&
          r.recovery_tti < 0 && brownout.all_normal()) {
        r.recovery_tti = tti;
      }
    } else {
      rec.level_counts[0] = cells;
    }
    r.ttis.push_back(rec);
  }

  r.unserved_at_end = pending.size();
  r.transitions = brownout.transitions();
  return r;
}

obs::Json scenario_result_to_json(const ScenarioConfig& cfg,
                                  const ScenarioResult& r) {
  obs::Json j = obs::Json::object();

  obs::Json jc = obs::Json::object();
  jc.set("network", cfg.network);
  jc.set("cores", static_cast<int64_t>(cfg.cores));
  jc.set("cells", static_cast<int64_t>(cfg.city.cells));
  jc.set("ttis", static_cast<int64_t>(cfg.ttis));
  jc.set("admission", std::string(serve::admission_name(cfg.admission)));
  jc.set("brownout", cfg.brownout);
  jc.set("integrity_detect", cfg.integrity_detect);
  jc.set("integrity_rollback", cfg.integrity_rollback);
  jc.set("base_tcdm_rate", cfg.base_fault.rate_of(fault::Target::kTcdm));
  jc.set("base_regfile_rate", cfg.base_fault.rate_of(fault::Target::kRegFile));
  jc.set("base_pla_rate", cfg.base_fault.rate_of(fault::Target::kPlaLut));
  jc.set("seed", static_cast<int64_t>(cfg.seed));
  jc.set("city_seed", static_cast<int64_t>(cfg.city.seed));
  j.set("config", std::move(jc));

  obs::Json jt = obs::Json::object();
  jt.set("requests", r.requests);
  jt.set("served", r.served);
  jt.set("served_fallback", r.served_fallback);
  jt.set("shed_rejected", r.shed_rejected);
  jt.set("admission_rejected", r.admission_rejected);
  jt.set("failed", r.failed);
  jt.set("retries", r.retries);
  jt.set("exec_failures", r.exec_failures);
  jt.set("quarantines", r.quarantines);
  jt.set("unserved_at_end", r.unserved_at_end);
  jt.set("deadline_misses_admitted", r.deadline_misses_admitted);
  jt.set("integrity_detections", r.integrity_detections);
  jt.set("integrity_rollbacks", r.integrity_rollbacks);
  jt.set("corrupted_blocked", r.corrupted_blocked);
  jt.set("silent_to_env", r.silent_to_env);
  j.set("totals", std::move(jt));

  obs::Json jq = obs::Json::object();
  jq.set("rate_ratio", r.rate_ratio());
  jq.set("stress_ratio", r.stress_ratio());
  jq.set("calm_ratio", r.calm_ratio());
  jq.set("weighted_ratio", r.weighted_ratio());
  jq.set("achieved_total", r.achieved_total);
  jq.set("oracle_total", r.oracle_total);
  jq.set("stress_achieved", r.stress_achieved);
  jq.set("stress_oracle", r.stress_oracle);
  j.set("quality", std::move(jq));

  obs::Json jr = obs::Json::object();
  jr.set("stress_end_tti", static_cast<int64_t>(r.stress_end_tti));
  jr.set("recovery_tti", static_cast<int64_t>(r.recovery_tti));
  jr.set("transitions", static_cast<int64_t>(r.transitions.size()));
  j.set("recovery", std::move(jr));

  obs::Json jtr = obs::Json::array();
  for (const serve::ServiceTransition& t : r.transitions) {
    obs::Json row = obs::Json::object();
    row.set("cell", static_cast<int64_t>(t.cell));
    row.set("tti", t.at);
    row.set("from", std::string(serve::service_level_name(t.from)));
    row.set("to", std::string(serve::service_level_name(t.to)));
    jtr.push(std::move(row));
  }
  j.set("level_transitions", std::move(jtr));

  obs::Json jtt = obs::Json::array();
  for (const TtiRecord& t : r.ttis) {
    obs::Json row = obs::Json::object();
    row.set("tti", static_cast<int64_t>(t.tti));
    row.set("offered", t.offered);
    row.set("arrivals", static_cast<int64_t>(t.arrivals));
    row.set("served", static_cast<int64_t>(t.served));
    row.set("served_fallback", static_cast<int64_t>(t.served_fallback));
    row.set("shed", static_cast<int64_t>(t.shed));
    row.set("rejected", static_cast<int64_t>(t.rejected));
    row.set("fresh_cells", static_cast<int64_t>(t.fresh_cells));
    row.set("achieved", t.achieved);
    row.set("oracle", t.oracle);
    row.set("stress", t.stress);
    obs::Json lv = obs::Json::array();
    for (int lc : t.level_counts) lv.push(static_cast<int64_t>(lc));
    row.set("levels", std::move(lv));
    jtt.push(std::move(row));
  }
  j.set("ttis", std::move(jtt));

  j.set("metrics", r.metrics.to_json());
  return j;
}

}  // namespace rnnasip::scenario
