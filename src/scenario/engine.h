// Closed-loop scenario engine: drives a serve::Cluster against City
// traffic, TTI by TTI, with the full robustness ladder in the loop —
// EDF dispatch, provable-WCET admission (storm-hardened: a faulted
// execution with rollback enabled is charged the tighter of the campaign
// watchdog and WCET x (1 + layer_retries), both sound upper bounds on a
// *successful* attempt), bounded retries with deterministic backoff,
// K-consecutive-failure core quarantine, ABFT detection + layer rollback
// (integrity::CheckedRun), and a final golden firewall: a decision's
// outputs must match the host reference bit-for-bit before they are
// applied to the cell's radio state, so no silently corrupted decision can
// ever reach the environment (any fold-collision escape lands in
// `corrupted_blocked`, never in the city).
//
// Per TTI boundary the engine applies each cell's freshest verified
// decision (or decays stale powers), scores achieved vs WMMSE-oracle
// sum-rate on the same faded field, publishes per-cell pressure gauges
// into the metrics registry, lets the BrownoutController re-evaluate
// service levels (economy level, admission tightening, value-ordered
// shedding), and evolves the environment under congestion feedback.
//
// Everything is deterministic from ScenarioConfig: one seed reproduces the
// whole city, every fault campaign, and the byte-exact JSON envelope.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/scenario/city.h"
#include "src/serve/brownout.h"
#include "src/serve/cluster.h"
#include "src/serve/scheduler.h"

namespace rnnasip::scenario {

struct ScenarioConfig {
  CityConfig city;
  /// Decision network (suite name). ahmed19's FC 8->24->24->4 sigmoid head
  /// matches a 4-pair cell: 4 normalized direct gains + 4 channel
  /// occupancies in, 4 power fractions out.
  std::string network = "ahmed19";
  int cores = 4;
  kernels::OptLevel level = kernels::OptLevel::kLoadCompute;
  kernels::OptLevel fallback_level = kernels::OptLevel::kInputTiling;
  int ttis = 96;
  /// TTI length as a multiple of the primary flavor's calibrated
  /// single-execution cycles (sets how many decisions one core can serve
  /// per TTI).
  double tti_cycles_factor = 6.0;
  /// Request deadline = arrival + slack x TTI length.
  double deadline_slack_ttis = 1.0;
  serve::Admission admission = serve::Admission::kProvable;
  /// Ambient SEU rates; a fault storm multiplies every rate for
  /// executions serving the stormed cell.
  fault::FaultSpec base_fault;
  int max_retries = 2;
  uint64_t retry_backoff_cycles = 2048;
  int quarantine_threshold = 3;
  uint64_t quarantine_cooldown_cycles = 200'000;
  bool integrity_detect = true;
  bool integrity_rollback = true;
  int layer_retries = 2;
  bool brownout = true;
  serve::BrownoutConfig brownout_cfg;
  /// Per-request observation jitter amplitude (uniform, pre-quantization)
  /// — distinct UE groups in one cell see slightly different channels.
  double obs_jitter = 0.02;
  uint64_t seed = 0x5EED05;  ///< request jitter + fault campaign streams
};

/// One TTI's compact record (one row per TTI in the JSON envelope).
struct TtiRecord {
  int tti = 0;
  double offered = 0.0;    ///< summed per-cell offered rate
  int arrivals = 0;
  int served = 0;          ///< completions that finished inside this TTI
  int served_fallback = 0; ///< of those, at the economy (fallback) level
  int shed = 0;            ///< arrivals dropped because their cell was shed
  int rejected = 0;        ///< admission rejections inside this TTI
  int fresh_cells = 0;     ///< cells that got a fresh decision this TTI
  double achieved = 0.0;   ///< summed per-cell achieved sum-rate
  double oracle = 0.0;     ///< summed per-cell WMMSE oracle sum-rate
  bool stress = false;     ///< any cell inside a storm/surge window
  std::array<int, 4> level_counts = {0, 0, 0, 0};  ///< brownout level mix after eval
};

struct ScenarioResult {
  // Request accounting.
  uint64_t requests = 0;
  uint64_t served = 0;
  uint64_t served_fallback = 0;
  uint64_t shed_rejected = 0;
  uint64_t admission_rejected = 0;
  uint64_t failed = 0;          ///< retries exhausted
  uint64_t retries = 0;
  uint64_t exec_failures = 0;   ///< trap/watchdog/integrity-escalation attempts
  uint64_t quarantines = 0;
  uint64_t unserved_at_end = 0; ///< still pending when the run ended
  /// Deadline misses among *admitted* (served) requests — provably zero
  /// under Admission::kProvable with the storm-hardened charge.
  uint64_t deadline_misses_admitted = 0;
  // Integrity accounting.
  uint64_t integrity_detections = 0;
  uint64_t integrity_rollbacks = 0;
  /// Attempts whose outputs passed ABFT but failed the final golden
  /// firewall — blocked before reaching the environment.
  uint64_t corrupted_blocked = 0;
  /// Corrupted decisions actually applied to the environment. Structurally
  /// zero: every applied decision is golden-compared first.
  uint64_t silent_to_env = 0;
  // Decision quality (sum-rates accumulated over all (tti, cell) points).
  double achieved_total = 0.0;
  double oracle_total = 0.0;
  double stress_achieved = 0.0;  ///< over (tti, cell) inside stress windows
  double stress_oracle = 0.0;
  double calm_achieved = 0.0;
  double calm_oracle = 0.0;
  double weighted_achieved = 0.0;  ///< value-weighted variants
  double weighted_oracle = 0.0;
  // Brownout recovery.
  int stress_end_tti = -1;  ///< exclusive end of the last storm/surge
  int recovery_tti = -1;    ///< first TTI >= stress_end with all cells normal
  std::vector<serve::ServiceTransition> transitions;
  std::vector<TtiRecord> ttis;
  /// Per-cell gauges/counters as published during the run (pressure,
  /// served, shed) — the registry the brownout controller actually read.
  obs::MetricsRegistry metrics;

  double rate_ratio() const {
    return oracle_total > 0 ? achieved_total / oracle_total : 0.0;
  }
  double stress_ratio() const {
    return stress_oracle > 0 ? stress_achieved / stress_oracle : 0.0;
  }
  double calm_ratio() const {
    return calm_oracle > 0 ? calm_achieved / calm_oracle : 0.0;
  }
  double weighted_ratio() const {
    return weighted_oracle > 0 ? weighted_achieved / weighted_oracle : 0.0;
  }
};

class ScenarioEngine {
 public:
  explicit ScenarioEngine(const ScenarioConfig& cfg);

  /// Run the whole scenario (cfg.ttis TTIs) and return the result. One
  /// call per engine instance.
  ScenarioResult run();

  uint64_t tti_cycles() const { return tti_cycles_; }
  const serve::Cluster& cluster() const { return *cluster_; }

 private:
  ScenarioConfig cfg_;
  std::unique_ptr<serve::Cluster> cluster_;
  uint64_t tti_cycles_ = 0;
};

/// Byte-deterministic JSON for the bench envelope: config echo, totals,
/// stress/calm split, recovery, per-TTI rows, brownout transitions.
obs::Json scenario_result_to_json(const ScenarioConfig& cfg,
                                  const ScenarioResult& r);

}  // namespace rnnasip::scenario
