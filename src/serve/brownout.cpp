#include "src/serve/brownout.h"

#include "src/common/check.h"

namespace rnnasip::serve {

namespace {

ServiceLevel step_down(ServiceLevel level) {
  switch (level) {
    case ServiceLevel::kNormal: return ServiceLevel::kNormal;
    case ServiceLevel::kEconomy: return ServiceLevel::kNormal;
    case ServiceLevel::kCritical: return ServiceLevel::kEconomy;
    case ServiceLevel::kShed: return ServiceLevel::kCritical;
  }
  return ServiceLevel::kNormal;
}

ServiceLevel step_up(ServiceLevel level) {
  switch (level) {
    case ServiceLevel::kNormal: return ServiceLevel::kEconomy;
    case ServiceLevel::kEconomy: return ServiceLevel::kCritical;
    // Escalation stops at kCritical; only the cluster-wide shed check may
    // take a cell to kShed.
    case ServiceLevel::kCritical: return ServiceLevel::kCritical;
    case ServiceLevel::kShed: return ServiceLevel::kShed;
  }
  return ServiceLevel::kNormal;
}

}  // namespace

const char* service_level_name(ServiceLevel level) {
  switch (level) {
    case ServiceLevel::kNormal: return "normal";
    case ServiceLevel::kEconomy: return "economy";
    case ServiceLevel::kCritical: return "critical";
    case ServiceLevel::kShed: return "shed";
  }
  return "?";
}

BrownoutController::BrownoutController(const BrownoutConfig& cfg,
                                       std::vector<double> cell_values)
    : cfg_(cfg),
      values_(std::move(cell_values)),
      levels_(values_.size(), ServiceLevel::kNormal),
      calm_streak_(values_.size(), 0) {
  RNNASIP_CHECK(!values_.empty());
  RNNASIP_CHECK(cfg_.enter_pressure > cfg_.exit_pressure);
  RNNASIP_CHECK(cfg_.hold_evals >= 1);
  RNNASIP_CHECK(cfg_.admission_margin >= 1.0);
  RNNASIP_CHECK(cfg_.min_live_cells >= 0 &&
                cfg_.min_live_cells <= static_cast<int>(values_.size()));
}

ServiceLevel BrownoutController::level(int cell) const {
  RNNASIP_CHECK(cell >= 0 && cell < cell_count());
  return levels_[static_cast<size_t>(cell)];
}

double BrownoutController::admission_margin(int cell) const {
  return level(cell) >= ServiceLevel::kCritical ? cfg_.admission_margin : 1.0;
}

bool BrownoutController::all_normal() const {
  for (ServiceLevel l : levels_) {
    if (l != ServiceLevel::kNormal) return false;
  }
  return true;
}

void BrownoutController::set_level(int cell, ServiceLevel to, uint64_t now) {
  ServiceLevel& slot = levels_[static_cast<size_t>(cell)];
  if (slot == to) return;
  transitions_.push_back({cell, now, slot, to});
  slot = to;
  calm_streak_[static_cast<size_t>(cell)] = 0;
}

void BrownoutController::evaluate(const obs::MetricsRegistry& metrics, uint64_t now) {
  const double cluster_pressure =
      static_cast<double>(metrics.gauge_value("cluster.pressure_x1000")) / 1000.0;

  for (int c = 0; c < cell_count(); ++c) {
    const std::string gauge = "cell" + std::to_string(c) + ".pressure_x1000";
    const double pressure = static_cast<double>(metrics.gauge_value(gauge)) / 1000.0;
    const ServiceLevel current = levels_[static_cast<size_t>(c)];

    if (pressure >= cfg_.enter_pressure && current < ServiceLevel::kCritical) {
      set_level(c, step_up(current), now);
      continue;
    }
    // Calm requires the cell *and* the cluster quiet: a cell whose own
    // backlog drained only because its requests were shed must not recover
    // into a still-burning storm and immediately re-shed.
    const bool calm =
        pressure <= cfg_.exit_pressure && cluster_pressure <= cfg_.exit_pressure;
    int& streak = calm_streak_[static_cast<size_t>(c)];
    if (!calm) {
      streak = 0;
      continue;
    }
    if (++streak >= cfg_.hold_evals && current != ServiceLevel::kNormal) {
      set_level(c, step_down(current), now);  // resets the streak
    }
  }

  if (cluster_pressure >= cfg_.shed_pressure) {
    int live = 0;
    for (ServiceLevel l : levels_) live += (l != ServiceLevel::kShed) ? 1 : 0;
    if (live > cfg_.min_live_cells) {
      // Shed exactly one more cell per evaluation: the lowest-value live
      // cell (ties: highest index), so degradation is incremental and
      // value-ordered rather than a cliff.
      int victim = -1;
      for (int c = 0; c < cell_count(); ++c) {
        if (levels_[static_cast<size_t>(c)] == ServiceLevel::kShed) continue;
        if (victim < 0 || values_[static_cast<size_t>(c)] <=
                              values_[static_cast<size_t>(victim)]) {
          victim = c;
        }
      }
      if (victim >= 0) set_level(victim, ServiceLevel::kShed, now);
    }
  }
}

}  // namespace rnnasip::serve
