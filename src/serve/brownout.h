// Brownout controller: per-cell graceful degradation for the serving
// cluster under correlated overload (flash crowds, handover bursts) and
// fault storms.
//
// The controller never touches the cluster directly. It reads per-cell
// pressure gauges that the scenario engine (or any other traffic source)
// publishes into an obs::MetricsRegistry, and answers three questions per
// cell: which program level to serve at, how much to tighten admission, and
// whether to shed the cell outright. Degradation is *graceful* by
// construction:
//
//   kNormal   -> serve at the primary optimization level;
//   kEconomy  -> serve at the cheaper fallback level (outputs are
//                bit-identical across levels — only cycles change, so
//                economy trades latency headroom, never correctness);
//   kCritical -> economy + admission tightening: the WCET charged at
//                admission is multiplied by `admission_margin` (> 1 only
//                tightens a sound bound, so kProvable stays a guarantee);
//   kShed     -> the cell gets no decisions at all; its radio state rides
//                on decayed stale powers until the storm passes.
//
// Escalation is per-cell and immediate (one level per evaluation under
// sustained pressure); shedding is cluster-wide and value-ordered — when
// aggregate pressure passes `shed_pressure`, the *lowest-value* non-shed
// cell sheds first, mirroring real brownout tiers. De-escalation is
// hysteretic: a cell steps down one level only after `hold_evals`
// consecutive calm evaluations, which yields a provable recovery bound
// (recovery_bound_evals) — from any state, once pressure stays calm, every
// cell is back at kNormal within that many evaluations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace rnnasip::serve {

/// Per-cell service level, ordered from full service to none.
enum class ServiceLevel { kNormal = 0, kEconomy = 1, kCritical = 2, kShed = 3 };

const char* service_level_name(ServiceLevel level);

struct BrownoutConfig {
  /// Per-cell pressure (backlog / per-TTI capacity share, published x1000
  /// as an integer gauge) at or above which the cell escalates one level.
  double enter_pressure = 1.5;
  /// Pressure at or below which an evaluation counts as calm.
  double exit_pressure = 0.75;
  /// Consecutive calm evaluations required to de-escalate one level.
  int hold_evals = 3;
  /// Cluster-aggregate pressure at or above which one more cell sheds
  /// (lowest value first) per evaluation.
  double shed_pressure = 3.0;
  /// WCET multiplier charged at admission while a cell is at kCritical or
  /// above. Must be >= 1: inflating a sound upper bound keeps it sound.
  double admission_margin = 1.5;
  /// Never shed below this many live cells, whatever the pressure.
  int min_live_cells = 1;
};

/// One recorded level change (for traces and the bench JSON).
struct ServiceTransition {
  int cell = 0;
  uint64_t at = 0;  ///< evaluation index (TTI) of the change
  ServiceLevel from = ServiceLevel::kNormal;
  ServiceLevel to = ServiceLevel::kNormal;
};

class BrownoutController {
 public:
  /// `cell_values` ranks cells for shed ordering (higher = more valuable,
  /// shed last). One entry per cell; all cells start at kNormal.
  BrownoutController(const BrownoutConfig& cfg, std::vector<double> cell_values);

  /// Evaluate once per TTI against the published gauges:
  ///   "cell<i>.pressure_x1000"  per-cell backlog pressure, fixed-point x1000
  ///   "cluster.pressure_x1000"  aggregate pressure, fixed-point x1000
  /// `now` is the evaluation index (TTI number) recorded on transitions.
  void evaluate(const obs::MetricsRegistry& metrics, uint64_t now);

  int cell_count() const { return static_cast<int>(levels_.size()); }
  ServiceLevel level(int cell) const;
  bool shed(int cell) const { return level(cell) == ServiceLevel::kShed; }
  /// True when the cell serves at the fallback program level.
  bool economy(int cell) const { return level(cell) >= ServiceLevel::kEconomy; }
  /// WCET multiplier to charge at admission for this cell (>= 1).
  double admission_margin(int cell) const;
  bool all_normal() const;

  /// Provable recovery bound: once every evaluation is calm (per-cell and
  /// aggregate pressure at or below exit_pressure), every cell reaches
  /// kNormal within this many evaluations — each hold_evals-long calm
  /// streak steps one of at most three levels down.
  int recovery_bound_evals() const { return 3 * cfg_.hold_evals; }

  const std::vector<ServiceTransition>& transitions() const { return transitions_; }
  const BrownoutConfig& config() const { return cfg_; }

 private:
  void set_level(int cell, ServiceLevel to, uint64_t now);

  BrownoutConfig cfg_;
  std::vector<double> values_;
  std::vector<ServiceLevel> levels_;
  std::vector<int> calm_streak_;
  std::vector<ServiceTransition> transitions_;
};

}  // namespace rnnasip::serve
