#include "src/serve/cluster.h"

#include <cstring>

#include "src/common/check.h"
#include "src/kernels/network.h"
#include "src/obs/profile.h"

namespace rnnasip::serve {

namespace {

/// Per-core private memory: buffers at kDataBase, shared segments mapped at
/// kTextBase / kParamBase. 8 MiB covers the largest suite image with room.
constexpr uint32_t kCoreMemBytes = 8u << 20;

std::shared_ptr<std::vector<uint8_t>> capture_text(const assembler::Program& p) {
  const auto words = p.encode_words();
  auto bytes = std::make_shared<std::vector<uint8_t>>(words.size() * 4);
  std::memcpy(bytes->data(), words.data(), bytes->size());
  return bytes;
}

std::shared_ptr<std::vector<uint8_t>> capture_params(const iss::Memory& master,
                                                     uint32_t base, uint32_t size) {
  const uint32_t rounded = (size + 3u) & ~3u;  // word-align the segment tail
  const auto words = master.read_words_signed(base, rounded / 4);
  auto bytes = std::make_shared<std::vector<uint8_t>>(rounded);
  std::memcpy(bytes->data(), words.data(), rounded);
  return bytes;
}

}  // namespace

Cluster::Cluster(ClusterConfig cfg, const std::vector<std::string>& networks)
    : cfg_(cfg), names_(networks) {
  RNNASIP_CHECK(cfg_.cores >= 1);
  RNNASIP_CHECK(cfg_.batch >= 1);
  RNNASIP_CHECK(!networks.empty());
  const auto tanh_tbl = activation::PlaTable::build(cfg_.core_config.tanh_spec);
  const auto sig_tbl = activation::PlaTable::build(cfg_.core_config.sig_spec);
  for (const std::string& name : names_) {
    if (images_.count(name)) continue;
    Image img{rrm::RrmNetwork(rrm::find_network(name), cfg_.seed), {}, {}, {}, {}, {}, {}};
    {
      iss::Memory master(kCoreMemBytes);
      img.single = img.net.build(&master, cfg_.level, tanh_tbl, sig_tbl,
                                 cfg_.max_tile, kernels::kParamBase);
      img.single_text = capture_text(img.single.program);
      img.single_params =
          capture_params(master, img.single.param_base, img.single.param_bytes);
    }
    if (cfg_.batch >= 2 && img.net.fc_only()) {
      iss::Memory master(kCoreMemBytes);
      const auto layers = img.net.fc_params();
      img.batched = kernels::build_fc_batch_network(
          &master, layers, cfg_.batch, cfg_.level, kernels::kParamBase);
      img.batched_text = capture_text(img.batched->program);
      img.batched_params =
          capture_params(master, img.batched->param_base, img.batched->param_bytes);
    }
    images_.emplace(name, std::move(img));
  }
  lanes_.resize(static_cast<size_t>(cfg_.cores));
  for (Lane& lane : lanes_) {
    lane.mem = std::make_unique<iss::Memory>(kCoreMemBytes);
    lane.core = std::make_unique<iss::Core>(lane.mem.get(), cfg_.core_config);
  }
}

const Cluster::Image& Cluster::image(const std::string& name) const {
  auto it = images_.find(name);
  RNNASIP_CHECK_MSG(it != images_.end(), "network not loaded in cluster: " << name);
  return it->second;
}

const rrm::RrmNetwork& Cluster::network(const std::string& name) const {
  return image(name).net;
}

bool Cluster::batchable(const std::string& name) const {
  return image(name).batched.has_value();
}

uint32_t Cluster::param_base(const std::string& name) const {
  return image(name).single.param_base;
}

uint32_t Cluster::param_bytes(const std::string& name) const {
  return image(name).single.param_bytes;
}

uint64_t Cluster::shared_param_bytes() const {
  uint64_t total = 0;
  for (const auto& [name, img] : images_) {
    total += img.single_params->size();
    if (img.batched) total += img.batched_params->size();
  }
  return total;
}

void Cluster::bind(int core, const std::string& name, bool batched) {
  RNNASIP_CHECK(core >= 0 && core < cfg_.cores);
  Lane& lane = lanes_[static_cast<size_t>(core)];
  const Image& img = image(name);
  if (batched) RNNASIP_CHECK_MSG(img.batched, name << " has no batched program");
  if (lane.bound == &img && lane.bound_batched == batched) return;
  lane.mem->unmap_segments();
  // Text and parameters are both shared read-only: the memory map, not
  // convention, is what stops a core from corrupting another's weights.
  if (batched) {
    lane.mem->map_segment(img.batched->program.base, img.batched_text, true);
    lane.mem->map_segment(img.batched->param_base, img.batched_params, true);
  } else {
    lane.mem->map_segment(img.single.program.base, img.single_text, true);
    lane.mem->map_segment(img.single.param_base, img.single_params, true);
  }
  lane.core->invalidate_decode_cache();
  lane.bound = &img;
  lane.bound_batched = batched;
}

uint64_t Cluster::run_bound(Lane& lane, const obs::RegionMap& regions,
                            uint32_t text_base) {
  std::optional<obs::RegionProfiler> profiler;
  if (cfg_.observe) {
    profiler.emplace(&regions, text_base);
    profiler->attach(*lane.core);
  }
  const auto res = lane.core->run();
  RNNASIP_CHECK_MSG(res.ok(), "serving run trapped: " << res.trap_message);
  if (profiler) {
    profiler->finish();
    accumulate_regions(regions, profiler->counters(), profiler->unattributed());
    lane.core->set_trace(nullptr);
    lane.core->set_stall_hook(nullptr);
  }
  return res.cycles;
}

void Cluster::accumulate_regions(const obs::RegionMap& map,
                                 const std::vector<obs::RegionCounters>& counters,
                                 const obs::RegionCounters& unattributed) {
  auto add = [this](const std::string& name, uint64_t cycles) {
    if (cycles == 0) return;
    for (auto& [n, c] : region_cycles_) {
      if (n == name) {
        c += cycles;
        return;
      }
    }
    region_cycles_.emplace_back(name, cycles);
  };
  for (size_t i = 0; i < counters.size(); ++i) {
    add(map.defs()[i].name, counters[i].cycles);
  }
  add("unattributed", unattributed.cycles);
}

ExecResult Cluster::run_single(int core, const std::string& name,
                               std::span<const int16_t> input) {
  bind(core, name, false);
  Lane& lane = lanes_[static_cast<size_t>(core)];
  const Image& img = *lane.bound;
  const kernels::BuiltNetwork& net = img.single;
  RNNASIP_CHECK(static_cast<int>(input.size()) == net.input_count);
  // Every request is an independent per-TTI inference: fresh recurrent
  // state, exactly like a fresh Engine run.
  kernels::reset_state(*lane.mem, net);
  lane.mem->write_halves(net.input_addr, input);
  lane.core->reset(net.program.base);
  ExecResult r;
  r.cycles = run_bound(lane, net.regions, net.program.base);
  r.outputs.push_back(
      lane.mem->read_halves(net.output_addr, static_cast<size_t>(net.output_count)));
  return r;
}

ExecResult Cluster::run_batched(int core, const std::string& name,
                                std::span<const std::vector<int16_t>> inputs) {
  bind(core, name, true);
  Lane& lane = lanes_[static_cast<size_t>(core)];
  const kernels::BatchedFcNet& net = *lane.bound->batched;
  const int filled = static_cast<int>(inputs.size());
  RNNASIP_CHECK(filled >= 1 && filled <= net.batch);
  const std::vector<int16_t> zeros(static_cast<size_t>(net.input_count), 0);
  for (int s = 0; s < net.batch; ++s) {
    const std::vector<int16_t>& in = s < filled ? inputs[static_cast<size_t>(s)] : zeros;
    RNNASIP_CHECK(static_cast<int>(in.size()) == net.input_count);
    lane.mem->write_halves(
        net.input_addr + static_cast<uint32_t>(2 * s * net.input_count), in);
  }
  lane.core->reset(net.program.base);
  ExecResult r;
  r.cycles = run_bound(lane, net.regions, net.program.base);
  for (int s = 0; s < filled; ++s) {
    r.outputs.push_back(lane.mem->read_halves(
        net.output_addr + static_cast<uint32_t>(2 * s * net.output_count),
        static_cast<size_t>(net.output_count)));
  }
  return r;
}

}  // namespace rnnasip::serve
