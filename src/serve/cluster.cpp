#include "src/serve/cluster.h"

#include <algorithm>
#include <cstring>

#include "src/analysis/network_lint.h"
#include "src/analysis/wcet.h"
#include "src/common/check.h"
#include "src/kernels/layout.h"
#include "src/kernels/network.h"
#include "src/obs/profile.h"

namespace rnnasip::serve {

namespace {

/// Per-core private memory: buffers at kDataBase, shared segments mapped at
/// kTextBase / kParamBase. 8 MiB covers the largest suite image with room.
constexpr uint32_t kCoreMemBytes = 8u << 20;

std::shared_ptr<std::vector<uint8_t>> capture_text(const assembler::Program& p) {
  const auto words = p.encode_words();
  auto bytes = std::make_shared<std::vector<uint8_t>>(words.size() * 4);
  std::memcpy(bytes->data(), words.data(), bytes->size());
  return bytes;
}

std::shared_ptr<std::vector<uint8_t>> capture_params(const iss::Memory& master,
                                                     uint32_t base, uint32_t size) {
  const uint32_t rounded = (size + 3u) & ~3u;  // word-align the segment tail
  const auto words = master.read_words_signed(base, rounded / 4);
  auto bytes = std::make_shared<std::vector<uint8_t>>(rounded);
  std::memcpy(bytes->data(), words.data(), rounded);
  return bytes;
}

}  // namespace

Cluster::Cluster(ClusterConfig cfg, const std::vector<std::string>& networks)
    : cfg_(cfg), names_(networks) {
  RNNASIP_CHECK(cfg_.cores >= 1);
  RNNASIP_CHECK(cfg_.batch >= 1);
  RNNASIP_CHECK(!networks.empty());
  tanh_pristine_ = activation::PlaTable::build(cfg_.core_config.tanh_spec);
  sig_pristine_ = activation::PlaTable::build(cfg_.core_config.sig_spec);
  for (const std::string& name : names_) {
    if (images_.count(name)) continue;
    Image img{rrm::RrmNetwork(rrm::find_network(name), cfg_.seed), {}, {}, {}, {}, 0};
    build_flavor(img, cfg_.level, tanh_pristine_, sig_pristine_);
    if (cfg_.fallback_level && *cfg_.fallback_level != cfg_.level) {
      build_flavor(img, *cfg_.fallback_level, tanh_pristine_, sig_pristine_);
    }
    if (cfg_.batch >= 2 && img.net.fc_only()) {
      iss::Memory master(kCoreMemBytes);
      const auto layers = img.net.fc_params();
      img.batched = kernels::build_fc_batch_network(
          &master, layers, cfg_.batch, cfg_.level, kernels::kParamBase);
      img.batched_text = capture_text(img.batched->program);
      img.batched_params =
          capture_params(master, img.batched->param_base, img.batched->param_bytes);
    }
    images_.emplace(name, std::move(img));
  }
  lanes_.resize(static_cast<size_t>(cfg_.cores));
  for (Lane& lane : lanes_) {
    lane.mem = std::make_unique<iss::Memory>(kCoreMemBytes);
    lane.core = std::make_unique<iss::Core>(lane.mem.get(), cfg_.core_config);
    lane.issb.attach(lane.core.get());
  }
}

std::shared_ptr<const translate::TranslatedProgram> Cluster::translated_single(
    const std::string& name, kernels::OptLevel level) {
  Flavor& f = flavor(name, level);
  if (!f.timage) {
    auto tr = translate::translate(f.single.program, analysis::memory_map_of(f.single),
                                   cfg_.core_config);
    RNNASIP_CHECK_MSG(tr.ok(), "translation refused for serving flavor "
                                   << name << "@" << kernels::opt_level_letter(level)
                                   << " [" << tr.error.code << "]: " << tr.error.message);
    f.timage = tr.program;
  }
  return f.timage;
}

std::shared_ptr<const translate::TranslatedProgram> Cluster::translated_batched(
    const std::string& name) {
  auto it = images_.find(name);
  RNNASIP_CHECK_MSG(it != images_.end(), "network not loaded in cluster: " << name);
  Image& img = it->second;
  RNNASIP_CHECK_MSG(img.batched, name << " has no batched program");
  if (!img.batched_timage) {
    // The batched program has no BuiltNetwork, so derive its map directly:
    // same segment intent as memory_map_of (text/params read-only, private
    // buffers writable).
    iss::MemoryMap map;
    map.add({"text", img.batched->program.base, img.batched->program.size_bytes(),
             /*writable=*/false});
    if (img.batched->data_bytes != 0) {
      map.add({"data", kernels::kDataBase, img.batched->data_bytes, /*writable=*/true});
    }
    if (img.batched->param_bytes != 0) {
      map.add({"params", img.batched->param_base, img.batched->param_bytes,
               /*writable=*/false});
    }
    auto tr = translate::translate(img.batched->program, map, cfg_.core_config);
    RNNASIP_CHECK_MSG(tr.ok(), "translation refused for batched program of "
                                   << name << " [" << tr.error.code
                                   << "]: " << tr.error.message);
    img.batched_timage = tr.program;
  }
  return img.batched_timage;
}

exec::ExecutionBackend& Cluster::backend(int core, bool need_iss) {
  RNNASIP_CHECK(core >= 0 && core < cfg_.cores);
  Lane& lane = lanes_[static_cast<size_t>(core)];
  // Fault injection and the region profiler hook the interpreter, so
  // faulted executions and observed clusters always run on the ISS — the
  // caller sees which backend ran via ExecResult::backend / kind().
  if (cfg_.backend != ExecBackend::kTranslated || need_iss || cfg_.observe) {
    return lane.issb;
  }
  RNNASIP_CHECK_MSG(lane.bound != nullptr, "backend() before bind()");
  const std::string& name = lane.bound->net.def().name;
  auto img = lane.bound_batched ? translated_batched(name)
                                : translated_single(name, lane.bound_level);
  if (!lane.tcore) {
    lane.tcore =
        std::make_unique<translate::TranslatedCore>(lane.mem.get(), cfg_.core_config);
  }
  if (lane.tbound != img) {
    lane.tcore->bind(img);
    lane.tbound = img;
  }
  // bind() remaps shared segments under the lane, so re-capture the view.
  lane.tcore->refresh_memory_view();
  return *lane.tcore;
}

void Cluster::build_flavor(Image& img, kernels::OptLevel level,
                           const activation::PlaTable& tanh_tbl,
                           const activation::PlaTable& sig_tbl) {
  iss::Memory master(kCoreMemBytes);
  Flavor f;
  f.single = img.net.build(&master, level, tanh_tbl, sig_tbl, cfg_.max_tile,
                           kernels::kParamBase, cfg_.integrity);
  f.text = capture_text(f.single.program);
  f.params = capture_params(master, f.single.param_base, f.single.param_bytes);
  img.flavors.emplace(level, std::move(f));
}

const Cluster::Image& Cluster::image(const std::string& name) const {
  auto it = images_.find(name);
  RNNASIP_CHECK_MSG(it != images_.end(), "network not loaded in cluster: " << name);
  return it->second;
}

Cluster::Flavor& Cluster::flavor(const std::string& name, kernels::OptLevel level) {
  auto it = images_.find(name);
  RNNASIP_CHECK_MSG(it != images_.end(), "network not loaded in cluster: " << name);
  auto fit = it->second.flavors.find(level);
  RNNASIP_CHECK_MSG(fit != it->second.flavors.end(),
                    name << " has no level-" << kernels::opt_level_letter(level)
                         << " flavor in this cluster");
  return fit->second;
}

const rrm::RrmNetwork& Cluster::network(const std::string& name) const {
  return image(name).net;
}

bool Cluster::batchable(const std::string& name) const {
  return image(name).batched.has_value();
}

uint32_t Cluster::param_base(const std::string& name) const {
  return image(name).flavors.at(cfg_.level).single.param_base;
}

uint32_t Cluster::param_bytes(const std::string& name) const {
  return image(name).flavors.at(cfg_.level).single.param_bytes;
}

uint64_t Cluster::shared_param_bytes() const {
  uint64_t total = 0;
  for (const auto& [name, img] : images_) {
    for (const auto& [level, f] : img.flavors) total += f.params->size();
    if (img.batched) total += img.batched_params->size();
  }
  return total;
}

uint64_t Cluster::estimated_single_cycles(const std::string& name,
                                          kernels::OptLevel level) {
  Flavor& f = flavor(name, level);
  if (f.est_cycles == 0) {
    // One calibration run on a scratch core: dense-kernel cycle counts are
    // input-independent, so a zero-input run measures any request's cost.
    iss::Memory mem(kCoreMemBytes);
    iss::Core core(&mem, cfg_.core_config);
    mem.map_segment(f.single.program.base, f.text, true);
    mem.map_segment(f.single.param_base, f.params, true);
    kernels::reset_state(mem, f.single);
    const std::vector<int16_t> zeros(static_cast<size_t>(f.single.input_count), 0);
    mem.write_halves(f.single.input_addr, zeros);
    core.reset(f.single.program.base);
    // Integrity flavors yield with ecall at each layer boundary; the
    // calibration cost is the full pass including the fold code (what a
    // served request pays), so just resume across the yields.
    uint64_t cycles = 0;
    for (;;) {
      const auto res = core.run();
      cycles += res.cycles;
      RNNASIP_CHECK_MSG(res.ok(), "calibration run trapped: " << res.trap_message);
      if (res.exit == iss::RunResult::Exit::kEbreak) break;
      core.set_pc(res.pc + 4);
    }
    f.est_cycles = cycles;
  }
  return f.est_cycles;
}

uint64_t Cluster::provable_single_cycles(const std::string& name,
                                         kernels::OptLevel level) {
  Flavor& f = flavor(name, level);
  if (f.wcet_cycles == 0) {
    const analysis::StaticBounds b =
        analysis::static_bounds(f.single, cfg_.core_config.timing);
    // An unbounded program (no certified WCET) degrades to calibrated
    // admission — still exact for these input-independent kernels, just no
    // longer carrying a proof.
    f.wcet_cycles = b.bounded() ? b.max_cycles
                                : estimated_single_cycles(name, level);
  }
  return f.wcet_cycles;
}

uint64_t Cluster::watchdog_cycles(const std::string& name, kernels::OptLevel level) {
  if (cfg_.watchdog_cycles != 0) return cfg_.watchdog_cycles;
  Flavor& f = flavor(name, level);
  if (f.watchdog_cycles == 0) {
    // Serving knows the exact cost of every flavor (cycle counts are
    // input-independent), so the automatic watchdog is tight: a faulted
    // execution either finishes on schedule or has diverged, and a hung
    // core should burn at most ~one extra request of cycles before the
    // kill. The certified-WCET campaign rule (max_cycles x 2) caps it —
    // with an exact WCET that cap is the binding term, and it also guards
    // against calibration ever over-measuring.
    const uint64_t calibrated = 2 * estimated_single_cycles(name, level) + 1'024;
    f.watchdog_cycles = std::min(
        calibrated, analysis::campaign_watchdog(f.single, cfg_.core_config.timing));
  }
  return f.watchdog_cycles;
}

void Cluster::bind(int core, const std::string& name, bool batched,
                   std::optional<kernels::OptLevel> level) {
  RNNASIP_CHECK(core >= 0 && core < cfg_.cores);
  const kernels::OptLevel lvl = level.value_or(cfg_.level);
  Lane& lane = lanes_[static_cast<size_t>(core)];
  const Image& img = image(name);
  if (batched) RNNASIP_CHECK_MSG(img.batched, name << " has no batched program");
  if (lane.bound == &img && lane.bound_batched == batched &&
      (batched || lane.bound_level == lvl)) {
    return;
  }
  lane.mem->unmap_segments();
  // Text and parameters are both shared read-only: the memory map, not
  // convention, is what stops a core from corrupting another's weights.
  if (batched) {
    lane.mem->map_segment(img.batched->program.base, img.batched_text, true);
    lane.mem->map_segment(img.batched->param_base, img.batched_params, true);
  } else {
    const Flavor& f = flavor(name, lvl);
    lane.mem->map_segment(f.single.program.base, f.text, true);
    lane.mem->map_segment(f.single.param_base, f.params, true);
  }
  lane.core->invalidate_decode_cache();
  lane.bound = &img;
  lane.bound_batched = batched;
  lane.bound_level = lvl;
}

void Cluster::run_bound(Lane& lane, exec::ExecutionBackend& be,
                        const std::string& obs_name, const obs::RegionMap& regions,
                        uint32_t text_base, const fault::FaultSpec* fault,
                        uint32_t data_lo, uint32_t data_hi, uint64_t watchdog,
                        ExecResult* out) {
  out->backend = be.kind();
  std::optional<obs::RegionProfiler> profiler;
  if (cfg_.observe) {
    profiler.emplace(&regions, text_base);
    profiler->attach(*lane.core);
  }
  // Arm the campaign only when a rate is positive: a null/zero spec leaves
  // the execution bit-identical to the fault-free path (no hook, no RNG).
  std::optional<fault::FaultInjector> injector;
  iss::RunLimits limits;
  if (fault != nullptr && fault->any_enabled()) {
    fault::FaultSpec spec = *fault;
    // Flips stay inside this core's transient state. The TCDM range is the
    // private buffer region; text is shared read-only across cores, so the
    // kInstr target stays inert (an empty range never aims).
    if (spec.tcdm.empty()) spec.tcdm = {data_lo, data_hi};
    spec.text = {};
    injector.emplace(spec);
    injector->arm(lane.core.get(), lane.mem.get());
    limits.max_cycles = watchdog;
  }
  // Resume across integrity yields (plain programs never ecall). The
  // watchdog bounds the whole execution, so each segment gets the
  // remaining budget.
  uint64_t cycles = 0;
  iss::RunResult res;
  for (;;) {
    iss::RunLimits seg = limits;
    if (limits.max_cycles != 0) {
      if (cycles >= limits.max_cycles) {
        res.exit = iss::RunResult::Exit::kWatchdog;
        res.trap = iss::Trap{iss::TrapCause::kWatchdog, res.pc, 0,
                             "cycle watchdog expired at a layer boundary"};
        res.trap_message = res.trap.message;
        break;
      }
      seg.max_cycles = limits.max_cycles - cycles;
    }
    res = be.run(seg);
    cycles += res.cycles;
    if (res.exit != iss::RunResult::Exit::kEcall) break;
    be.set_pc(res.pc + 4);
  }
  res.cycles = cycles;
  if (injector) {
    out->fault_events = injector->events();
    injector->disarm();
    // Scrub the PLA LUTs: campaign flips there would otherwise persist
    // into later (possibly fault-free) executions on this core. Models the
    // periodic configuration scrubbing always-on silicon applies to
    // quasi-static state; registers/SPRs are cleared by the next reset()
    // and the private buffers are rewritten before they are read.
    lane.core->mutable_tanh_table() = tanh_pristine_;
    lane.core->mutable_sig_table() = sig_pristine_;
  } else {
    RNNASIP_CHECK_MSG(res.ok(), "serving run trapped: " << res.trap_message);
  }
  if (profiler) {
    profiler->finish();
    accumulate_regions(obs_name, regions, profiler->counters(),
                       profiler->unattributed());
    lane.core->set_trace(nullptr);
    lane.core->set_stall_hook(nullptr);
  }
  out->cycles = res.cycles;
  if (!res.ok()) out->failure = ExecFailure{res.exit, res.trap};
}

void Cluster::accumulate_regions(const std::string& obs_name,
                                 const obs::RegionMap& map,
                                 const std::vector<obs::RegionCounters>& counters,
                                 const obs::RegionCounters& unattributed) {
  auto add = [this](const std::string& name, uint64_t cycles) {
    if (cycles == 0) return;
    for (auto& [n, c] : region_cycles_) {
      if (n == name) {
        c += cycles;
        return;
      }
    }
    region_cycles_.emplace_back(name, cycles);
  };
  for (size_t i = 0; i < counters.size(); ++i) {
    add(map.defs()[i].name, counters[i].cycles);
  }
  add("unattributed", unattributed.cycles);

  // Per-flavor region tree: merge this execution's self counters into the
  // flavor's aggregated NetObservation (created on first execution). The
  // tree keeps parent links, so the flamegraph fold preserves nesting.
  obs::NetObservation* obs = nullptr;
  for (obs::NetObservation& o : observations_) {
    if (o.name == obs_name) {
      obs = &o;
      break;
    }
  }
  if (obs == nullptr) {
    observations_.emplace_back();
    obs = &observations_.back();
    obs->name = obs_name;
    obs->map = map;
    obs->counters.resize(map.defs().size());
  }
  RNNASIP_CHECK(obs->counters.size() == counters.size());
  for (size_t i = 0; i < counters.size(); ++i) {
    obs->counters[i].merge(counters[i]);
    obs->cycles += counters[i].cycles;
    obs->instrs += counters[i].instrs;
    obs->macs += counters[i].macs;
  }
  obs->unattributed.merge(unattributed);
  obs->cycles += unattributed.cycles;
  obs->instrs += unattributed.instrs;
  obs->macs += unattributed.macs;
}

void Cluster::scrub_pla(int core) {
  RNNASIP_CHECK(core >= 0 && core < cfg_.cores);
  Lane& lane = lanes_[static_cast<size_t>(core)];
  lane.core->mutable_tanh_table() = tanh_pristine_;
  lane.core->mutable_sig_table() = sig_pristine_;
}

ExecResult Cluster::run_single(int core, const std::string& name,
                               std::span<const int16_t> input,
                               const fault::FaultSpec* fault) {
  return run_single_at(core, cfg_.level, name, input, fault);
}

ExecResult Cluster::run_single_at(int core, kernels::OptLevel level,
                                  const std::string& name,
                                  std::span<const int16_t> input,
                                  const fault::FaultSpec* fault) {
  bind(core, name, false, level);
  Lane& lane = lanes_[static_cast<size_t>(core)];
  const kernels::BuiltNetwork& net = flavor(name, level).single;
  RNNASIP_CHECK(static_cast<int>(input.size()) == net.input_count);
  // Every request is an independent per-TTI inference: fresh recurrent
  // state, exactly like a fresh Engine run.
  kernels::reset_state(*lane.mem, net);
  lane.mem->write_halves(net.input_addr, input);
  const bool faulted = fault != nullptr && fault->any_enabled();
  exec::ExecutionBackend& be = backend(core, faulted);
  be.reset(net.program.base);
  ExecResult r;
  run_bound(lane, be, name + "@" + kernels::opt_level_letter(level), net.regions,
            net.program.base, fault, kernels::kDataBase,
            kernels::kDataBase + net.data_bytes,
            faulted ? watchdog_cycles(name, level) : 0, &r);
  if (r.ok()) {
    r.outputs.push_back(
        lane.mem->read_halves(net.output_addr, static_cast<size_t>(net.output_count)));
  }
  return r;
}

ExecResult Cluster::run_batched(int core, const std::string& name,
                                std::span<const std::vector<int16_t>> inputs,
                                const fault::FaultSpec* fault) {
  bind(core, name, true);
  Lane& lane = lanes_[static_cast<size_t>(core)];
  const kernels::BatchedFcNet& net = *lane.bound->batched;
  const int filled = static_cast<int>(inputs.size());
  RNNASIP_CHECK(filled >= 1 && filled <= net.batch);
  const std::vector<int16_t> zeros(static_cast<size_t>(net.input_count), 0);
  for (int s = 0; s < net.batch; ++s) {
    const std::vector<int16_t>& in = s < filled ? inputs[static_cast<size_t>(s)] : zeros;
    RNNASIP_CHECK(static_cast<int>(in.size()) == net.input_count);
    lane.mem->write_halves(
        net.input_addr + static_cast<uint32_t>(2 * s * net.input_count), in);
  }
  const bool faulted = fault != nullptr && fault->any_enabled();
  exec::ExecutionBackend& be = backend(core, faulted);
  be.reset(net.program.base);
  ExecResult r;
  uint64_t watchdog = 0;
  if (faulted) {
    Image& img = images_.at(name);
    if (img.batched_watchdog == 0 && cfg_.watchdog_cycles == 0) {
      // The batched program has no BuiltNetwork for the static verifier;
      // bound it by B single lanes of the primary flavor instead.
      img.batched_watchdog =
          watchdog_cycles(name, cfg_.level) * static_cast<uint64_t>(net.batch);
    }
    watchdog = cfg_.watchdog_cycles != 0 ? cfg_.watchdog_cycles : img.batched_watchdog;
  }
  run_bound(lane, be, name + "@batch", net.regions, net.program.base, fault,
            kernels::kDataBase, kernels::kDataBase + net.data_bytes, watchdog, &r);
  if (r.ok()) {
    for (int s = 0; s < filled; ++s) {
      r.outputs.push_back(lane.mem->read_halves(
          net.output_addr + static_cast<uint32_t>(2 * s * net.output_count),
          static_cast<size_t>(net.output_count)));
    }
  }
  return r;
}

}  // namespace rnnasip::serve
