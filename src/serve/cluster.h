// Multi-core serving cluster: N independent extended RI5CY cores sharing
// read-only weight memory.
//
// Per network the cluster builds one program image with a parameter/buffer
// split (kernels::kParamBase): text and parameters are captured into
// shared backings, mapped read-only into every core's private memory
// (iss::Memory::map_segment). The memory map itself enforces the sharing
// contract — a store into the weight segment from any core raises
// kMemWriteProtected. Buffers (activations, recurrent state, I/O) stay in
// each core's private flat storage, so cores run the same network
// concurrently without interfering.
//
// Two program flavors per network:
//   - single: the classic one-sample BuiltNetwork program;
//   - batched (FC-only nets, batch >= 2): build_fc_batch_network coalesces
//     B samples into one execution, restoring the 2-D tiling of Sec. II-A.
// Both compute bit-exact per-sample results (same accumulation order), so
// the scheduler can mix them freely.
//
// Simulated time: each execution reports its own cycle count (the core's
// RunResult), which the scheduler turns into per-core clocks. "The
// hardware" is N single-issue cores — no host threads; everything is
// deterministic.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/iss/core.h"
#include "src/kernels/fc_batch.h"
#include "src/obs/profile.h"
#include "src/rrm/networks.h"

namespace rnnasip::serve {

struct ClusterConfig {
  int cores = 4;
  kernels::OptLevel level = kernels::OptLevel::kInputTiling;
  /// Batch capacity B of the batched program (1 = no batched flavor).
  int batch = 1;
  int max_tile = 8;
  uint64_t seed = 0x52414D;  ///< network parameter seed (as rrm::Engine)
  iss::Core::Config core_config;
  /// Attach a RegionProfiler to every execution and aggregate per-region
  /// cycles across the whole serving run (region_cycles()).
  bool observe = false;
};

/// One program execution on one core.
struct ExecResult {
  uint64_t cycles = 0;  ///< cycles this execution took on its core
  /// Per-sample outputs: one vector for a single run, `filled` vectors for
  /// a batched run (padding slots are dropped).
  std::vector<std::vector<int16_t>> outputs;
};

class Cluster {
 public:
  /// Builds shared images for `networks` (suite names) and cfg.cores cores.
  Cluster(ClusterConfig cfg, const std::vector<std::string>& networks);

  int cores() const { return cfg_.cores; }
  const ClusterConfig& config() const { return cfg_; }
  const std::vector<std::string>& networks() const { return names_; }

  const rrm::RrmNetwork& network(const std::string& name) const;
  /// FC-only networks coalesce when the cluster was built with batch >= 2.
  bool batchable(const std::string& name) const;

  /// Run one request (single forward pass, fresh recurrent state) on core
  /// `core`.
  ExecResult run_single(int core, const std::string& name,
                        std::span<const int16_t> input);

  /// Run up to B coalesced same-network requests as one batched execution;
  /// missing slots are zero-padded (the fixed-B program always runs all B
  /// lanes, so cycles equal the full-batch cost).
  ExecResult run_batched(int core, const std::string& name,
                         std::span<const std::vector<int16_t>> inputs);

  /// Weight bytes resident once per network vs what N private copies would
  /// hold (the sharing win the read-only segment buys).
  uint64_t shared_param_bytes() const;

  /// The shared read-only parameter segment of one network — test surface
  /// for the write-protection contract.
  uint32_t param_base(const std::string& name) const;
  uint32_t param_bytes(const std::string& name) const;
  iss::Core& core(int core) { return *lanes_[static_cast<size_t>(core)].core; }
  iss::Memory& memory(int core) { return *lanes_[static_cast<size_t>(core)].mem; }
  /// Map `name`'s image into core `core` (what run_* do on demand).
  void bind(int core, const std::string& name, bool batched);

  /// With cfg.observe: region name -> cycles aggregated over every
  /// execution so far (insertion-ordered by first appearance).
  const std::vector<std::pair<std::string, uint64_t>>& region_cycles() const {
    return region_cycles_;
  }

 private:
  struct Image {
    rrm::RrmNetwork net;
    kernels::BuiltNetwork single;
    std::shared_ptr<std::vector<uint8_t>> single_text;
    std::shared_ptr<std::vector<uint8_t>> single_params;
    std::optional<kernels::BatchedFcNet> batched;
    std::shared_ptr<std::vector<uint8_t>> batched_text;
    std::shared_ptr<std::vector<uint8_t>> batched_params;
  };
  struct Lane {
    std::unique_ptr<iss::Memory> mem;
    std::unique_ptr<iss::Core> core;
    const Image* bound = nullptr;
    bool bound_batched = false;
  };

  const Image& image(const std::string& name) const;
  uint64_t run_bound(Lane& lane, const obs::RegionMap& regions, uint32_t text_base);
  void accumulate_regions(const obs::RegionMap& map,
                          const std::vector<obs::RegionCounters>& counters,
                          const obs::RegionCounters& unattributed);

  ClusterConfig cfg_;
  std::vector<std::string> names_;
  std::map<std::string, Image> images_;
  std::vector<Lane> lanes_;
  std::vector<std::pair<std::string, uint64_t>> region_cycles_;
};

}  // namespace rnnasip::serve
